(* The paper's centrepiece (§5.1-§5.2): derive block LU mechanically from
   the point algorithm, watch each compiler step, verify equivalence, and
   see why partial pivoting additionally needs commutativity knowledge.

   Run with:  dune exec examples/lu_blocking.exe *)

let show_derivation name entry =
  Printf.printf "==== %s (%s) ====\n" name entry.Blockability.paper_ref;
  print_string
    (Stmt.block_to_string entry.Blockability.kernel.Kernel_def.block);
  match Blockability.derive entry with
  | Error m -> Printf.printf "FAILED: %s\n" m
  | Ok { result; steps } ->
      print_endline "\n-- compiler steps:";
      List.iter
        (fun (s : Blocker.trace_step) -> Printf.printf "   %s: %s\n" s.name s.detail)
        steps;
      print_endline "\n-- derived block algorithm:";
      print_string (Stmt.to_string result);
      (match Blockability.verify entry ~bindings:[ ("N", 30) ] ~seed:123 with
      | Ok () ->
          print_endline
            "-- verified: bit-identical to the point algorithm (N=30, ragged blocks)"
      | Error m -> Printf.printf "-- VERIFICATION FAILED: %s\n" m);
      print_newline ()

let () =
  show_derivation "LU decomposition" (Option.get (Blockability.find "lu"));
  show_derivation "LU with partial pivoting"
    (Option.get (Blockability.find "lu_pivot"));
  (* The §5.2 point: without commutativity knowledge the derivation is
     impossible — running the plain-dependence driver on the pivoting
     kernel must fail. *)
  print_endline "==== pivoting without commutativity knowledge ====";
  (match Blocker.block_lu ~block_size_var:"KS" K_lu_pivot.point_loop with
  | Ok _ -> print_endline "unexpectedly succeeded!"
  | Error m -> Printf.printf "refused, as the paper predicts:\n  %s\n" m);
  print_newline ();
  (* And the Section-6 answer for algorithms like Householder QR that have
     no derivable block form: write the block algorithm in the extended
     language and let the compiler pick the block size. *)
  print_endline "==== Figure 11: block LU in the extended language ====";
  print_string (Ext.to_string Ext.fig11_block_lu);
  match Lower.lower ~machine:Arch.rs6000_540 Ext.fig11_block_lu with
  | Ok lowered ->
      print_endline "-- lowered (block size chosen for the RS/6000-540 cache):";
      print_string (Stmt.to_string lowered)
  | Error m -> Printf.printf "lowering failed: %s\n" m
