(* §4: IF-inspection on the guarded SGEMM fragment.

   Shows the inspector/executor code the transformation generates
   (Figure 4), verifies it, and demonstrates the run-time behaviour: the
   naive unroll-and-jam (guard replicated innermost) loses, inspection
   wins, and the win grows with the density of B.

   Run with:  dune exec examples/matmul_inspection.exe *)

let time f =
  let t0 = Monotonic_clock.now () in
  f ();
  Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9

let () =
  print_endline "== the guarded point loop ==";
  print_string (Stmt.to_string (Stmt.Loop K_matmul.nest));
  let entry = Option.get (Blockability.find "matmul") in
  (match Blockability.derive entry with
  | Error m -> Printf.printf "derivation failed: %s\n" m
  | Ok { result; _ } ->
      print_endline "\n== after IF-inspection (Figure 4) ==";
      print_string (Stmt.to_string result));
  (match Blockability.verify entry ~bindings:[ ("N", 40); ("FREQ_PCT", 15) ] with
  | Ok () -> print_endline "-- verified equivalent by interpretation"
  | Error m -> Printf.printf "-- FAILED: %s\n" m);

  let n = 300 in
  Printf.printf "\nnative timings, %dx%d:\n" n n;
  Printf.printf "%-10s %10s %10s %10s %10s\n" "freq" "original" "uj" "uj+if" "speedup";
  List.iter
    (fun freq_pct ->
      let a = Linalg.random ~seed:4 n n in
      let b = N_matmul.make_b ~seed:5 ~n ~freq_pct () in
      let c = Linalg.create n n in
      let bench f =
        time (fun () ->
            Array.fill c.Linalg.a 0 (n * n) 0.0;
            f ~a ~b ~c)
      in
      let t0 = bench N_matmul.original in
      let t1 = bench N_matmul.uj in
      let t2 = bench N_matmul.uj_if in
      Printf.printf "%9d%% %9.2fms %9.2fms %9.2fms %10.2f\n" freq_pct (t0 *. 1e3)
        (t1 *. 1e3) (t2 *. 1e3) (t0 /. t2))
    [ 2; 10; 25; 50; 90 ]
