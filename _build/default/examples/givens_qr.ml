(* §5.4: the Givens QR optimization — index-set splitting, scalar
   expansion, fused IF-inspection, and interchange, ending with
   stride-one access to A(J,K).

   Run with:  dune exec examples/givens_qr.exe *)

let time f =
  let t0 = Monotonic_clock.now () in
  f ();
  Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9

let () =
  print_endline "== point Givens QR (Figure 9) ==";
  print_string (Stmt.to_string (Stmt.Loop K_givens.point_loop));
  (match Givens_opt.optimize K_givens.point_loop with
  | Error m -> Printf.printf "optimization failed: %s\n" m
  | Ok ({ result; steps }, _names) ->
      print_endline "\n-- compiler steps:";
      List.iter
        (fun (s : Blocker.trace_step) -> Printf.printf "   %s: %s\n" s.name s.detail)
        steps;
      print_endline "\n== optimized (Figure 10) ==";
      print_string (Stmt.to_string result));
  let entry = Option.get (Blockability.find "givens") in
  (match Blockability.verify entry ~bindings:[ ("M", 40); ("N", 28) ] with
  | Ok () -> print_endline "-- verified equivalent by interpretation"
  | Error m -> Printf.printf "-- FAILED: %s\n" m);

  (* native timing across sizes: the win grows as the matrix outgrows the
     cache (the paper saw 2.04x at 300 and 5.49x at 500) *)
  print_endline "\nnative timings:";
  List.iter
    (fun n ->
      let a0 = Linalg.random ~seed:6 n n in
      let bench f =
        let best = ref infinity in
        for _ = 1 to 3 do
          let x = Linalg.copy_mat a0 in
          let t = time (fun () -> f x) in
          if t < !best then best := t
        done;
        !best
      in
      let t0 = bench N_givens.point and t1 = bench N_givens.optimized in
      Printf.printf "  %4dx%-4d point %8.1fms  optimized %8.1fms  speedup %.2f\n"
        n n (t0 *. 1e3) (t1 *. 1e3) (t0 /. t1))
    [ 100; 200; 400; 800 ]
