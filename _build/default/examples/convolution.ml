(* The §3.2 oil-exploration kernels: trapezoidal and rhomboidal iteration
   spaces.  Shows MIN/MAX index-set splitting on the IR, then times the
   native variants the transformation sequence produces.

   Run with:  dune exec examples/convolution.exe *)

let time f =
  let t0 = Monotonic_clock.now () in
  f ();
  Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9

let () =
  print_endline "== adjoint convolution, point form ==";
  print_string (Stmt.to_string (Stmt.Loop K_conv.aconv_loop));
  (match Split_minmax.remove_all K_conv.aconv_loop with
  | Error m -> Printf.printf "split failed: %s\n" m
  | Ok block ->
      print_endline "\n== after index-set splitting the MIN bound ==";
      print_string (Stmt.block_to_string block);
      match
        Kernel_def.equivalent K_conv.aconv block
          ~bindings:[ ("N1", 50); ("N2", 11); ("N3", 64) ]
          ~seed:5
      with
      | Ok () -> print_endline "-- verified equivalent by interpretation"
      | Error m -> Printf.printf "-- FAILED: %s\n" m);

  print_endline "\n== convolution (MAX lower bound and MIN upper bound) ==";
  print_string (Stmt.to_string (Stmt.Loop K_conv.conv_loop));
  (match Split_minmax.remove_all K_conv.conv_loop with
  | Error m -> Printf.printf "split failed: %s\n" m
  | Ok block ->
      Printf.printf "\n== fully split: %d loops (paper: \"four separate loops\") ==\n"
        (List.length block);
      print_string (Stmt.block_to_string block));

  (* native timing, the T1 experiment in miniature *)
  let n1 = 400 in
  let s = N_conv.make ~n1 ~n2:n1 ~n3:(4 * n1 / 3) () in
  let bench f =
    time (fun () ->
        for _ = 1 to 200 do
          N_conv.reset s;
          f s
        done)
  in
  let t0 = bench N_conv.aconv and t1 = bench N_conv.aconv_opt in
  Printf.printf
    "\naconv n=%d: original %.1fms, split+unroll-and-jam %.1fms (speedup %.2f)\n"
    n1 (t0 *. 1e3) (t1 *. 1e3) (t0 /. t1);
  let t0 = bench N_conv.conv and t1 = bench N_conv.conv_opt in
  Printf.printf
    "conv  n=%d: original %.1fms, split+unroll-and-jam %.1fms (speedup %.2f)\n"
    n1 (t0 *. 1e3) (t1 *. 1e3) (t0 /. t1)
