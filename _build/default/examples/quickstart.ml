(* Quickstart: the §2.3 running example.

   Build a loop nest in the IR, ask the dependence analysis what reuse it
   carries, block it with strip-mine-and-interchange, check the result is
   equivalent by interpretation, and compare simulated cache behaviour.

   Run with:  dune exec examples/quickstart.exe *)

open Builder

let () =
  (* DO J = 1,N / DO I = 1,M : A(I) = A(I) + B(J)  — B has temporal reuse
     across I, A has reuse across J that a big M pushes out of cache. *)
  let nest =
    do_ "J" (i 1) (v "N")
      [ do_ "I" (i 1) (v "M") [ set1 "A" (v "I") (a1 "A" (v "I") +. a1 "B" (v "J")) ] ]
  in
  let l = match nest with Stmt.Loop l -> l | _ -> assert false in
  print_endline "== the point loop ==";
  print_string (Stmt.to_string nest);

  (* dependence view *)
  let ctx = Symbolic.assume_pos (Symbolic.assume_pos Symbolic.empty "N") "M" in
  print_endline "\n== dependences (reuse opportunities) ==";
  List.iter
    (fun d -> print_endline ("  " ^ Dependence.to_string d))
    (Dependence.all ~include_input:true ~ctx [ nest ]);

  (* block it *)
  let blocked =
    match
      Blocker.strip_mine_and_interchange ~block_size:(Expr.var "JS")
        ~new_index:"JJ" ~levels:1 l
    with
    | Ok b -> b
    | Error m -> failwith m
  in
  print_endline "\n== after strip-mine-and-interchange (block size JS) ==";
  print_string (Stmt.to_string (Stmt.Loop blocked));

  (* prove nothing changed, by running both *)
  let make () =
    let env = Env.create () in
    let n = 40 and m = 4000 in
    Env.set_iscalar env "N" n;
    Env.set_iscalar env "M" m;
    Env.set_iscalar env "JS" 8;
    Env.add_farray env "A" [ (1, m) ];
    Env.add_farray env "B" [ (1, n) ];
    let rng = Lcg.create 7 in
    Env.fill_farray env "B" (fun _ -> Lcg.float rng 1.0);
    env
  in
  let e1 = make () and e2 = make () in
  Exec.run e1 [ nest ];
  Exec.run e2 [ Stmt.Loop blocked ];
  (match Env.diff e1 e2 with
  | None -> print_endline "\ninterpreter check: identical results"
  | Some msg -> failwith msg);

  (* and show the cache win on a small simulated cache *)
  let machine = Arch.small_test in
  let sim block =
    let env = make () in
    Trace.run machine env ~arrays:[ "A"; "B" ] block
  in
  let before = sim [ nest ] and after = sim [ Stmt.Loop blocked ] in
  Printf.printf
    "simulated %s: point %d misses, blocked %d misses (%.1fx fewer)\n"
    machine.Arch.name before.misses after.misses
    Stdlib.(float_of_int before.misses /. float_of_int (max 1 after.misses))
