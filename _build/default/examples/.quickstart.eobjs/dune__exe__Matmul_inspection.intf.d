examples/matmul_inspection.mli:
