examples/matmul_inspection.ml: Array Blockability Int64 K_matmul Linalg List Monotonic_clock N_matmul Option Printf Stmt
