examples/lu_blocking.ml: Arch Blockability Blocker Ext K_lu_pivot Kernel_def List Lower Option Printf Stmt
