examples/quickstart.mli:
