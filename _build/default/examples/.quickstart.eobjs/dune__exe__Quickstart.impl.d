examples/quickstart.ml: Arch Blocker Builder Dependence Env Exec Expr Lcg List Printf Stdlib Stmt Symbolic Trace
