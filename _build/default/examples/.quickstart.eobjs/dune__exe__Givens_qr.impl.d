examples/givens_qr.ml: Blockability Blocker Givens_opt Int64 K_givens Linalg List Monotonic_clock N_givens Option Printf Stmt
