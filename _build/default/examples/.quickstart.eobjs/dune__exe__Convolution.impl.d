examples/convolution.ml: Int64 K_conv Kernel_def List Monotonic_clock N_conv Printf Split_minmax Stmt
