examples/lu_blocking.mli:
