examples/convolution.mli:
