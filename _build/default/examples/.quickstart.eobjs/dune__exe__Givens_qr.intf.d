examples/givens_qr.mli:
