(** The Section-6 language extensions: [BLOCK DO], [IN DO], [LAST].

    Householder QR shows that some block algorithms have no point-code
    counterpart a compiler could derive; the paper proposes expressing
    such algorithms in a *block form with the blocking factor left to
    the compiler*.  [BLOCK DO] declares a loop whose step (the block
    size) the compiler chooses; [IN DO] iterates over the current block
    of a named [BLOCK DO]; [LAST k] denotes the last index value of the
    current block of [k].

    Within extended statements, [LAST k] is written in ordinary
    expressions as the pseudo-reference [Expr.idx "LAST" [Expr.var k]];
    {!Lower} replaces it. *)

type stmt =
  | Exec of Stmt.t
      (** an ordinary IR statement (no extended loops inside) *)
  | Do of { index : string; lo : Expr.t; hi : Expr.t; body : stmt list }
      (** an ordinary loop whose body may contain extended statements *)
  | Block_do of { index : string; lo : Expr.t; hi : Expr.t; body : stmt list }
  | In_do of {
      block_index : string;  (** which [BLOCK DO] this iterates within *)
      index : string;
      bounds : (Expr.t * Expr.t) option;
          (** explicit bounds (may use [LAST]); [None] = the whole block *)
      body : stmt list;
    }

val last : string -> Expr.t
(** [last k] is the [LAST(k)] pseudo-expression. *)

val fig11_block_lu : stmt
(** Figure 11: block LU decomposition written in the extended language. *)

val to_string : stmt -> string
(** Render with BLOCK DO / IN ... DO / LAST(...) syntax. *)
