type stmt =
  | Exec of Stmt.t
  | Do of { index : string; lo : Expr.t; hi : Expr.t; body : stmt list }
  | Block_do of { index : string; lo : Expr.t; hi : Expr.t; body : stmt list }
  | In_do of {
      block_index : string;
      index : string;
      bounds : (Expr.t * Expr.t) option;
      body : stmt list;
    }

let last k = Expr.idx "LAST" [ Expr.var k ]

(* Figure 11 verbatim:

   BLOCK DO K = 1,N-1
     IN K DO KK
       DO I = KK+1,N           A(I,KK) = A(I,KK)/A(KK,KK)
       DO J = KK+1,LAST(K)
         DO I = KK+1,N         A(I,J) = A(I,J) - A(I,KK)*A(KK,J)
     DO J = LAST(K)+1,N
       DO I = K+1,N
         IN K DO KK = K,MIN(LAST(K),I-1)
                               A(I,J) = A(I,J) - A(I,KK)*A(KK,J)
*)
let fig11_block_lu =
  let open Builder in
  let vn = v "N" and vk = v "K" and vkk = v "KK" and vi = v "I" and vj = v "J" in
  let scale =
    Exec (do_ "I" (vkk +! i 1) vn [ set2 "A" vi vkk (a2 "A" vi vkk /. a2 "A" vkk vkk) ])
  in
  let panel_update =
    Exec
      (do_ "J" (vkk +! i 1) (last "K")
         [
           do_ "I" (vkk +! i 1) vn
             [ set2 "A" vi vj (a2 "A" vi vj -. (a2 "A" vi vkk *. a2 "A" vkk vj)) ];
         ])
  in
  let trailing =
    Do
      {
        index = "J";
        lo = last "K" +! i 1;
        hi = vn;
        body =
          [
            Do
              {
                index = "I";
                lo = vk +! i 1;
                hi = vn;
                body =
                  [
                    In_do
                      {
                        block_index = "K";
                        index = "KK";
                        bounds = Some (vk, Expr.min_ (last "K") (vi -! i 1));
                        body =
                          [
                            Exec
                              (set2 "A" vi vj
                                 (a2 "A" vi vj -. (a2 "A" vi vkk *. a2 "A" vkk vj)));
                          ];
                      };
                  ];
              };
          ];
      }
  in
  Block_do
    {
      index = "K";
      lo = i 1;
      hi = vn -! i 1;
      body =
        [
          In_do
            {
              block_index = "K";
              index = "KK";
              bounds = None;
              body = [ scale; panel_update ];
            };
          trailing;
        ];
    }

let rec render indent buf s =
  let pad = String.make indent ' ' in
  let line l = Buffer.add_string buf (pad ^ l ^ "\n") in
  match s with
  | Exec stmt ->
      String.split_on_char '\n' (Stmt.to_string stmt)
      |> List.iter (fun l -> if l <> "" then line l)
  | Do { index; lo; hi; body } ->
      line
        (Printf.sprintf "DO %s = %s, %s" index (Expr.to_string lo)
           (Expr.to_string hi));
      List.iter (render (indent + 2) buf) body;
      line "END DO"
  | Block_do { index; lo; hi; body } ->
      line
        (Printf.sprintf "BLOCK DO %s = %s, %s" index (Expr.to_string lo)
           (Expr.to_string hi));
      List.iter (render (indent + 2) buf) body;
      line "END DO"
  | In_do { block_index; index; bounds; body } ->
      (match bounds with
      | None -> line (Printf.sprintf "IN %s DO %s" block_index index)
      | Some (lo, hi) ->
          line
            (Printf.sprintf "IN %s DO %s = %s, %s" block_index index
               (Expr.to_string lo) (Expr.to_string hi)));
      List.iter (render (indent + 2) buf) body;
      line "END DO"

let to_string s =
  let buf = Buffer.create 256 in
  render 0 buf s;
  Buffer.contents buf
