(* Environment: for each enclosing BLOCK DO index, its (block size, hi). *)
type blocks = (string * (int * Expr.t)) list

let last_of (blocks : blocks) k =
  match List.assoc_opt k blocks with
  | Some (ks, hi) ->
      Ok (Expr.min_ (Expr.add (Expr.var k) (Expr.Int (ks - 1))) hi)
  | None -> Error ("LAST(" ^ k ^ ") outside BLOCK DO " ^ k)

(* Replace LAST(k) pseudo-references in an expression. *)
let rec subst_last blocks (e : Expr.t) =
  let ( let* ) = Result.bind in
  match e with
  | Expr.Int _ | Expr.Var _ -> Ok e
  | Expr.Bin (op, a, b) ->
      let* a = subst_last blocks a in
      let* b = subst_last blocks b in
      Ok (Expr.Bin (op, a, b))
  | Expr.Min (a, b) ->
      let* a = subst_last blocks a in
      let* b = subst_last blocks b in
      Ok (Expr.min_ a b)
  | Expr.Max (a, b) ->
      let* a = subst_last blocks a in
      let* b = subst_last blocks b in
      Ok (Expr.max_ a b)
  | Expr.Idx ("LAST", [ Expr.Var k ]) -> last_of blocks k
  | Expr.Idx (name, subs) ->
      let* subs =
        List.fold_right
          (fun s acc ->
            let* acc = acc in
            let* s = subst_last blocks s in
            Ok (s :: acc))
          subs (Ok [])
      in
      Ok (Expr.Idx (name, subs))

let lower ?block_size ~machine ext =
  let ( let* ) = Result.bind in
  let ks_default =
    match block_size with Some b -> b | None -> Arch.block_size machine ()
  in
  let rec go blocks (s : Ext.stmt) =
    match s with
    | Ext.Exec stmt ->
        (* Plain statements may still mention LAST in bounds/subscripts. *)
        let result = ref (Ok ()) in
        let stmt' =
          Stmt.map_expr
            (fun e ->
              match subst_last blocks e with
              | Ok e' -> e'
              | Error m ->
                  if !result = Ok () then result := Error m;
                  e)
            stmt
        in
        let* () = !result in
        Ok stmt'
    | Ext.Do { index; lo; hi; body } ->
        let* lo = subst_last blocks lo in
        let* hi = subst_last blocks hi in
        let* body = go_block blocks body in
        Ok (Stmt.loop index lo hi body)
    | Ext.Block_do { index; lo; hi; body } ->
        let* lo = subst_last blocks lo in
        let* hi = subst_last blocks hi in
        let blocks = (index, (ks_default, hi)) :: blocks in
        let* body = go_block blocks body in
        Ok (Stmt.loop ~step:(Expr.Int ks_default) index lo hi body)
    | Ext.In_do { block_index; index; bounds; body } -> (
        match List.assoc_opt block_index blocks with
        | None -> Error ("IN " ^ block_index ^ " DO outside its BLOCK DO")
        | Some (_ks, _hi) ->
            let* lo, hi =
              match bounds with
              | None ->
                  let* l = last_of blocks block_index in
                  Ok (Expr.var block_index, l)
              | Some (lo, hi) ->
                  let* lo = subst_last blocks lo in
                  let* hi = subst_last blocks hi in
                  Ok (lo, hi)
            in
            let* body = go_block blocks body in
            Ok (Stmt.loop index lo hi body))
  and go_block blocks body =
    List.fold_right
      (fun s acc ->
        let* acc = acc in
        let* s = go blocks s in
        Ok (s :: acc))
      body (Ok [])
  in
  go [] ext
