lib/lang/lower.mli: Arch Ext Stmt
