lib/lang/ext.mli: Expr Stmt
