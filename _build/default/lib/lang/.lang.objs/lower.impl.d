lib/lang/lower.ml: Arch Expr Ext List Result Stmt
