lib/lang/ext.ml: Buffer Builder Expr List Printf Stmt String
