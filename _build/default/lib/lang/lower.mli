(** Lowering of the extended language to plain IR.

    The compiler-chosen detail is the blocking factor: each [BLOCK DO]
    gets the block size from {!Arch.block_size} (or an explicit
    override), its step becomes that constant, [IN k DO] loops iterate
    over [k .. LAST(k)], and [LAST(k)] lowers to
    [MIN(k + ks - 1, hi_k)].  The result is ordinary IR, valid for any
    problem size (ragged last blocks handled by the MIN). *)

val lower :
  ?block_size:int -> machine:Arch.t -> Ext.stmt -> (Stmt.t, string) result
(** Errors on an [IN k DO] or [LAST(k)] outside a [BLOCK DO k]. *)
