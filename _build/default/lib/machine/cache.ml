type t = {
  line_bits : int;
  n_sets : int;
  assoc : int;
  (* tags.(set * assoc + way) = line tag, or -1 when invalid.  LRU order is
     maintained by ages: ages.(slot) increases with staleness. *)
  tags : int array;
  ages : int array;
  mutable n_accesses : int;
  mutable n_hits : int;
}

type stats = { accesses : int; hits : int; misses : int }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~size_bytes ~line_bytes ~assoc =
  if not (is_pow2 size_bytes && is_pow2 line_bytes) then
    invalid_arg "Cache.create: sizes must be powers of two";
  if assoc < 1 || size_bytes mod (line_bytes * assoc) <> 0 then
    invalid_arg "Cache.create: bad associativity";
  let n_sets = size_bytes / (line_bytes * assoc) in
  {
    line_bits = log2 line_bytes;
    n_sets;
    assoc;
    tags = Array.make (n_sets * assoc) (-1);
    ages = Array.make (n_sets * assoc) 0;
    n_accesses = 0;
    n_hits = 0;
  }

let access t addr =
  t.n_accesses <- t.n_accesses + 1;
  let line = addr lsr t.line_bits in
  let set = line mod t.n_sets in
  let base = set * t.assoc in
  let found = ref (-1) in
  for w = 0 to t.assoc - 1 do
    if t.tags.(base + w) = line then found := w
  done;
  if !found >= 0 then begin
    t.n_hits <- t.n_hits + 1;
    let hit_age = t.ages.(base + !found) in
    for w = 0 to t.assoc - 1 do
      if t.ages.(base + w) < hit_age then t.ages.(base + w) <- t.ages.(base + w) + 1
    done;
    t.ages.(base + !found) <- 0;
    true
  end
  else begin
    (* Evict the oldest way. *)
    let victim = ref 0 in
    for w = 1 to t.assoc - 1 do
      if t.ages.(base + w) > t.ages.(base + !victim) then victim := w
    done;
    for w = 0 to t.assoc - 1 do
      t.ages.(base + w) <- t.ages.(base + w) + 1
    done;
    t.tags.(base + !victim) <- line;
    t.ages.(base + !victim) <- 0;
    false
  end

let stats t =
  { accesses = t.n_accesses; hits = t.n_hits; misses = t.n_accesses - t.n_hits }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.ages 0 (Array.length t.ages) 0;
  t.n_accesses <- 0;
  t.n_hits <- 0

let miss_ratio s =
  if s.accesses = 0 then 0.0 else float_of_int s.misses /. float_of_int s.accesses
