(** Cycle-count cost model over simulated cache statistics. *)

val memory_cycles : Arch.t -> Cache.stats -> int
(** hits * hit_cycles + misses * miss_cycles. *)

val speedup : baseline:int -> optimized:int -> float
(** baseline / optimized as a float; 1.0 when optimized is 0. *)
