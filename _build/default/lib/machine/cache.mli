(** Set-associative LRU cache simulator.

    The paper's measurements were taken on an IBM RS/6000 model 540; we
    cannot rerun those, so the repository substitutes this simulator (fed
    by the IR interpreter's memory trace) to reproduce the *memory
    behaviour* each transformation is supposed to change: miss counts
    before and after blocking.  Write misses allocate (the RS/6000 data
    cache was write-allocate); replacement is true LRU per set. *)

type t

type stats = { accesses : int; hits : int; misses : int }

val create : size_bytes:int -> line_bytes:int -> assoc:int -> t
(** [size_bytes] and [line_bytes] must be powers of two, and
    [size_bytes mod (line_bytes * assoc) = 0]. *)

val access : t -> int -> bool
(** [access t addr] touches the byte address; returns [true] on hit.
    Updates LRU state. *)

val stats : t -> stats
val reset : t -> unit

val miss_ratio : stats -> float
(** misses / accesses, 0 when there were no accesses. *)
