type t = {
  name : string;
  cache_bytes : int;
  line_bytes : int;
  assoc : int;
  elt_bytes : int;
  miss_cycles : int;
  hit_cycles : int;
}

let rs6000_540 =
  {
    name = "RS/6000-540";
    cache_bytes = 64 * 1024;
    line_bytes = 128;
    assoc = 4;
    elt_bytes = 8;
    miss_cycles = 15;
    hit_cycles = 1;
  }

let small_test =
  {
    name = "small-test";
    cache_bytes = 2 * 1024;
    line_bytes = 32;
    assoc = 1;
    elt_bytes = 8;
    miss_cycles = 15;
    hit_cycles = 1;
  }

let modern_l1 =
  {
    name = "modern-L1";
    cache_bytes = 32 * 1024;
    line_bytes = 64;
    assoc = 8;
    elt_bytes = 8;
    miss_cycles = 20;
    hit_cycles = 1;
  }

let fresh_cache m =
  Cache.create ~size_bytes:m.cache_bytes ~line_bytes:m.line_bytes ~assoc:m.assoc

let block_size m ?(working_set_arrays = 3) () =
  let budget = m.cache_bytes / 3 / (working_set_arrays * m.elt_bytes) in
  let rec grow b = if b * b * 4 <= budget * 2 && b < 256 then grow (b * 2) else b in
  let b = grow 8 in
  max 8 (min 256 b)
