lib/machine/arch.ml: Cache
