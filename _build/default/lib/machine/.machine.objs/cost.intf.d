lib/machine/cost.mli: Arch Cache
