lib/machine/arch.mli: Cache
