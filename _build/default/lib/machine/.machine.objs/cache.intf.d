lib/machine/cache.mli:
