lib/machine/cost.ml: Arch Cache
