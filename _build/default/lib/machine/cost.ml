let memory_cycles (m : Arch.t) (s : Cache.stats) =
  (s.hits * m.hit_cycles) + (s.misses * m.miss_cycles)

let speedup ~baseline ~optimized =
  if optimized = 0 then 1.0 else float_of_int baseline /. float_of_int optimized
