(** Target machine descriptions.

    The blocking transformations are machine-independent; the *choice of
    block size* is not.  A [Machine.t] carries the cache geometry used by
    the simulator and by the block-size heuristics in [Transform.Blocker]
    and [Lang.Lower]. *)

type t = {
  name : string;
  cache_bytes : int;
  line_bytes : int;
  assoc : int;
  elt_bytes : int;  (** REAL*8 => 8 *)
  miss_cycles : int;  (** memory latency on a cache miss *)
  hit_cycles : int;
}

val rs6000_540 : t
(** An RS/6000 model 540-like data cache: 64 KB, 4-way, 128-byte lines,
    with the 10-20 cycle miss latency range the paper's introduction
    cites (we use 15). *)

val small_test : t
(** A deliberately tiny cache (2 KB direct-mapped, 32-byte lines) so unit
    tests can provoke capacity misses with small arrays. *)

val modern_l1 : t
(** A 32 KB 8-way L1 with 64-byte lines, for ablation benches. *)

val fresh_cache : t -> Cache.t

val block_size : t -> ?working_set_arrays:int -> unit -> int
(** A block-size heuristic in elements: the largest power of two [b] such
    that [working_set_arrays] blocks of [b x b] elements fit in a third
    of the cache (leaving room for cross-interference), clamped to
    [8, 256].  This is the "machine-dependent detail" the Section-6
    language extensions delegate to the compiler. *)
