(** Dense column-major matrices for the native benchmark kernels.

    The native kernels mirror the Fortran codes: column-major layout,
    1-based logical indexing mapped to a flat [float array].  They are
    the timed subjects of the benchmark harness (the IR interpreter is
    for semantics and cache simulation, not wall-clock measurement). *)

type mat = { m : int; n : int; a : float array }
(** [a.((j-1)*m + (i-1))] is element (i, j). *)

val create : int -> int -> mat
val idx : mat -> int -> int -> int
val get : mat -> int -> int -> float
val set : mat -> int -> int -> float -> unit

val random : ?seed:int -> int -> int -> mat
val random_diag_dominant : ?seed:int -> int -> mat
val copy_mat : mat -> mat

val max_abs_diff : mat -> mat -> float

val frobenius : mat -> float

val vec_random : ?seed:int -> int -> float array

val max_abs_diff_vec : float array -> float array -> float
