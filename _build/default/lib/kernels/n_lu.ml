open Linalg

let point t =
  let n = t.n and m = t.m and a = t.a in
  assert (m = n);
  for k = 1 to n - 1 do
    let kc = (k - 1) * m in
    let piv = a.(kc + k - 1) in
    for i = k + 1 to n do
      a.(kc + i - 1) <- a.(kc + i - 1) /. piv
    done;
    for j = k + 1 to n do
      let jc = (j - 1) * m in
      let akj = a.(jc + k - 1) in
      for i = k + 1 to n do
        a.(jc + i - 1) <- a.(jc + i - 1) -. (a.(kc + i - 1) *. akj)
      done
    done
  done

(* Shared panel factorization: the point algorithm restricted to columns
   [k .. kend] (rows k..n), exactly the head group of Figure 6. *)
let panel t ~k ~kend =
  let n = t.n and m = t.m and a = t.a in
  for kk = k to kend do
    let kkc = (kk - 1) * m in
    let piv = a.(kkc + kk - 1) in
    for i = kk + 1 to n do
      a.(kkc + i - 1) <- a.(kkc + i - 1) /. piv
    done;
    for j = kk + 1 to min kend n do
      let jc = (j - 1) * m in
      let akj = a.(jc + kk - 1) in
      for i = kk + 1 to n do
        a.(jc + i - 1) <- a.(jc + i - 1) -. (a.(kkc + i - 1) *. akj)
      done
    done
  done

(* "1": Sorensen-style hand block — panel, then the trailing update as a
   sequence of rank-1 updates with stride-one inner loops. *)
let sorensen ~block t =
  let n = t.n and m = t.m and a = t.a in
  assert (m = n);
  let k = ref 1 in
  while !k <= n - 1 do
    let kend = min (!k + block - 1) (n - 1) in
    panel t ~k:!k ~kend;
    for j = kend + 1 to n do
      let jc = (j - 1) * m in
      for kk = !k to kend do
        let kkc = (kk - 1) * m in
        let akj = a.(jc + kk - 1) in
        for i = kk + 1 to n do
          a.(jc + i - 1) <- a.(jc + i - 1) -. (a.(kkc + i - 1) *. akj)
        done
      done
    done;
    k := !k + block
  done

(* "2": the Figure-6 form the compiler derives — trailing update with the
   elimination (KK) loop innermost. *)
let blocked ~block t =
  let n = t.n and m = t.m and a = t.a in
  assert (m = n);
  let k = ref 1 in
  while !k <= n - 1 do
    let kend = min (!k + block - 1) (n - 1) in
    panel t ~k:!k ~kend;
    for j = kend + 1 to n do
      let jc = (j - 1) * m in
      for i = !k + 1 to n do
        let kmax = min kend (i - 1) in
        let x = ref a.(jc + i - 1) in
        for kk = !k to kmax do
          x := !x -. (a.(((kk - 1) * m) + i - 1) *. a.(jc + kk - 1))
        done;
        a.(jc + i - 1) <- !x
      done
    done;
    k := !k + block
  done

(* "2+": Figure 6 plus unroll-and-jam of the trailing column loop (by 4)
   and scalar replacement of the accumulators. *)
let blocked_opt ~block t =
  let n = t.n and m = t.m and a = t.a in
  assert (m = n);
  let k = ref 1 in
  while !k <= n - 1 do
    let kend = min (!k + block - 1) (n - 1) in
    panel t ~k:!k ~kend;
    let j = ref (kend + 1) in
    while !j + 3 <= n do
      let j0 = (!j - 1) * m
      and j1 = !j * m
      and j2 = (!j + 1) * m
      and j3 = (!j + 2) * m in
      for i = !k + 1 to n do
        let kmax = min kend (i - 1) in
        let s0 = ref a.(j0 + i - 1)
        and s1 = ref a.(j1 + i - 1)
        and s2 = ref a.(j2 + i - 1)
        and s3 = ref a.(j3 + i - 1) in
        for kk = !k to kmax do
          let aik = a.(((kk - 1) * m) + i - 1) in
          s0 := !s0 -. (aik *. a.(j0 + kk - 1));
          s1 := !s1 -. (aik *. a.(j1 + kk - 1));
          s2 := !s2 -. (aik *. a.(j2 + kk - 1));
          s3 := !s3 -. (aik *. a.(j3 + kk - 1))
        done;
        a.(j0 + i - 1) <- !s0;
        a.(j1 + i - 1) <- !s1;
        a.(j2 + i - 1) <- !s2;
        a.(j3 + i - 1) <- !s3
      done;
      j := !j + 4
    done;
    (* remainder columns *)
    for j = !j to n do
      let jc = (j - 1) * m in
      for i = !k + 1 to n do
        let kmax = min kend (i - 1) in
        let x = ref a.(jc + i - 1) in
        for kk = !k to kmax do
          x := !x -. (a.(((kk - 1) * m) + i - 1) *. a.(jc + kk - 1))
        done;
        a.(jc + i - 1) <- !x
      done
    done;
    k := !k + block
  done
