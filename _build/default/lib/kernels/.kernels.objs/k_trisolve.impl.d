lib/kernels/k_trisolve.ml: Builder Env Kernel_def Lcg List Stdlib Stmt
