lib/kernels/k_lu.ml: Builder Env Kernel_def Lcg List Stdlib Stmt
