lib/kernels/n_householder.mli: Linalg
