lib/kernels/k_lu_pivot.mli: Env Kernel_def Stmt
