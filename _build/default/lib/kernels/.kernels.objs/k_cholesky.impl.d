lib/kernels/k_cholesky.ml: Array Builder Env Kernel_def Lcg List Stdlib Stmt
