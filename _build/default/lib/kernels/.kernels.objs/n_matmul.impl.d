lib/kernels/n_matmul.ml: Array Lcg Linalg
