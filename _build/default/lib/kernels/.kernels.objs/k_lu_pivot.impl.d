lib/kernels/k_lu_pivot.ml: Builder Env Kernel_def Lcg List Stdlib Stmt
