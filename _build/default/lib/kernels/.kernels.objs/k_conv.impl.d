lib/kernels/k_conv.ml: Builder Env Expr Kernel_def Lcg List Stmt
