lib/kernels/n_lu_pivot.ml: Array Float Linalg
