lib/kernels/k_trisolve.mli: Kernel_def Stmt
