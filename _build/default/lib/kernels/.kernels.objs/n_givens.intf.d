lib/kernels/n_givens.mli: Linalg
