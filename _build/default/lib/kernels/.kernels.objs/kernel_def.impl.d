lib/kernels/kernel_def.ml: Env Exec List Stmt
