lib/kernels/linalg.ml: Array Float Lcg
