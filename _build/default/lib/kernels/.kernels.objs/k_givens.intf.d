lib/kernels/k_givens.mli: Kernel_def Stmt
