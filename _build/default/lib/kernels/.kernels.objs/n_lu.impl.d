lib/kernels/n_lu.ml: Array Linalg
