lib/kernels/kernel_def.mli: Env Stmt
