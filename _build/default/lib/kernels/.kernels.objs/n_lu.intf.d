lib/kernels/n_lu.mli: Linalg
