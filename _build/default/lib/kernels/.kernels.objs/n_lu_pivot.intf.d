lib/kernels/n_lu_pivot.mli: Linalg
