lib/kernels/n_conv.mli:
