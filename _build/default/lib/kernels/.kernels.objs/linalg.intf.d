lib/kernels/linalg.mli:
