lib/kernels/k_conv.mli: Kernel_def Stmt
