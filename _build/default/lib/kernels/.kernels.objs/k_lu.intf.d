lib/kernels/k_lu.mli: Env Kernel_def Stmt
