lib/kernels/n_conv.ml: Array Lcg
