lib/kernels/k_cholesky.mli: Kernel_def Stmt
