lib/kernels/k_matmul.ml: Builder Env Kernel_def Lcg List Stdlib Stmt
