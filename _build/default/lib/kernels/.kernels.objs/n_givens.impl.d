lib/kernels/n_givens.ml: Array Linalg
