lib/kernels/k_givens.ml: Builder Env Kernel_def Lcg List Stdlib Stmt
