lib/kernels/n_matmul.mli: Linalg
