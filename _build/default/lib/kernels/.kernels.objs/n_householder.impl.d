lib/kernels/n_householder.ml: Array Linalg
