lib/kernels/k_matmul.mli: Kernel_def Stmt
