(** Native Givens QR for the §5.4 table (T5).

    - [point] — Figure 9: rotations applied row-pair by row-pair with the
      column sweep innermost-but-one; the [A(L,K)]/[A(J,K)] accesses
      stride across columns (stride [M] in column-major storage), which
      is what makes the point code slow;
    - [optimized] — Figure 10: rotation coefficients are computed and
      stored per row in a [J] sweep that also performs IF-inspection of
      the zero guard; the update then runs with [K] outermost and [J]
      innermost (stride-one [A(J,K)], [A(L,K)] kept in a scalar).

    Bit-identical results (per column the same rotations apply in the
    same order; the [A(L,K)] scalar chain reassociates nothing). *)

val point : Linalg.mat -> unit
val optimized : Linalg.mat -> unit
