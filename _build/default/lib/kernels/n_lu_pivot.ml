open Linalg

let swap_rows t r1 r2 =
  if r1 <> r2 then begin
    let m = t.m and a = t.a in
    for j = 0 to t.n - 1 do
      let c = j * m in
      let tau = a.(c + r1 - 1) in
      a.(c + r1 - 1) <- a.(c + r2 - 1);
      a.(c + r2 - 1) <- tau
    done
  end

let pivot_of t k =
  let m = t.m and a = t.a in
  let kc = (k - 1) * m in
  let imax = ref k and amax = ref (Float.abs a.(kc + k - 1)) in
  for i = k + 1 to t.n do
    let x = Float.abs a.(kc + i - 1) in
    if x > !amax then begin
      amax := x;
      imax := i
    end
  done;
  !imax

(* One elimination step: pivot, swap, scale, and update columns
   [k+1 .. jend] (the panel bound; [jend = n] recovers the point
   algorithm). *)
let step t k ~jend =
  let n = t.n and m = t.m and a = t.a in
  swap_rows t k (pivot_of t k);
  let kc = (k - 1) * m in
  let piv = a.(kc + k - 1) in
  for i = k + 1 to n do
    a.(kc + i - 1) <- a.(kc + i - 1) /. piv
  done;
  for j = k + 1 to jend do
    let jc = (j - 1) * m in
    let akj = a.(jc + k - 1) in
    for i = k + 1 to n do
      a.(jc + i - 1) <- a.(jc + i - 1) -. (a.(kc + i - 1) *. akj)
    done
  done

let point t =
  assert (t.m = t.n);
  for k = 1 to t.n - 1 do
    step t k ~jend:t.n
  done

let trailing_plain t ~k ~kend =
  let n = t.n and m = t.m and a = t.a in
  for j = kend + 1 to n do
    let jc = (j - 1) * m in
    for i = k + 1 to n do
      let kmax = min kend (i - 1) in
      let x = ref a.(jc + i - 1) in
      for kk = k to kmax do
        x := !x -. (a.(((kk - 1) * m) + i - 1) *. a.(jc + kk - 1))
      done;
      a.(jc + i - 1) <- !x
    done
  done

let trailing_opt t ~k ~kend =
  let n = t.n and m = t.m and a = t.a in
  let j = ref (kend + 1) in
  while !j + 3 <= n do
    let j0 = (!j - 1) * m
    and j1 = !j * m
    and j2 = (!j + 1) * m
    and j3 = (!j + 2) * m in
    for i = k + 1 to n do
      let kmax = min kend (i - 1) in
      let s0 = ref a.(j0 + i - 1)
      and s1 = ref a.(j1 + i - 1)
      and s2 = ref a.(j2 + i - 1)
      and s3 = ref a.(j3 + i - 1) in
      for kk = k to kmax do
        let aik = a.(((kk - 1) * m) + i - 1) in
        s0 := !s0 -. (aik *. a.(j0 + kk - 1));
        s1 := !s1 -. (aik *. a.(j1 + kk - 1));
        s2 := !s2 -. (aik *. a.(j2 + kk - 1));
        s3 := !s3 -. (aik *. a.(j3 + kk - 1))
      done;
      a.(j0 + i - 1) <- !s0;
      a.(j1 + i - 1) <- !s1;
      a.(j2 + i - 1) <- !s2;
      a.(j3 + i - 1) <- !s3
    done;
    j := !j + 4
  done;
  for j = !j to n do
    let jc = (j - 1) * m in
    for i = k + 1 to n do
      let kmax = min kend (i - 1) in
      let x = ref a.(jc + i - 1) in
      for kk = k to kmax do
        x := !x -. (a.(((kk - 1) * m) + i - 1) *. a.(jc + kk - 1))
      done;
      a.(jc + i - 1) <- !x
    done
  done

let with_trailing trailing ~block t =
  assert (t.m = t.n);
  let n = t.n in
  let k = ref 1 in
  while !k <= n - 1 do
    let kend = min (!k + block - 1) (n - 1) in
    (* Panel: the point algorithm, updates restricted to panel columns —
       but swaps and pivot searches act on whole rows, as in Figure 8. *)
    for kk = !k to kend do
      step t kk ~jend:(min kend n)
    done;
    trailing t ~k:!k ~kend;
    k := !k + block
  done

let blocked ~block t = with_trailing trailing_plain ~block t
let blocked_opt ~block t = with_trailing trailing_opt ~block t
