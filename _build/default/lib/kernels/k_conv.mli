(** Convolution and adjoint convolution of two time series (§3.2), the
    oil-exploration kernels with trapezoidal/rhomboidal iteration spaces:

    adjoint convolution

    {v
    DO I = 0, N3
      DO K = I, MIN(I + N2, N1)
        F3(I) = F3(I) + DT*F1(K)*F2(I-K)
    v}

    convolution

    {v
    DO I = 0, N3
      DO K = MAX(0, I - N2), MIN(I, N1)
        F3(I) = F3(I) + DT*F1(K)*F2(I-K)
    v}

    [F2] is indexed by [I-K], which is in [[-N2, 0]] for the adjoint
    kernel and [[0, N2]] for the direct one; the environment declares it
    over [[-N2, N2]].  [DT] is a REAL scalar. *)

val aconv_loop : Stmt.loop
val conv_loop : Stmt.loop

val aconv : Kernel_def.t
val conv : Kernel_def.t
(** Parameters: [N1] (length of F1 range), [N2], [N3]. *)
