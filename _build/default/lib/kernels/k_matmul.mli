(** Guarded matrix multiply from BLAS SGEMM (§4):

    {v
    DO J = 1, N
      DO K = 1, N
        IF (B(K,J) .NE. 0.0) THEN
          DO I = 1, N
            C(I,J) = C(I,J) + A(I,K) * B(K,J)
    v}

    (The paper writes [IF (B(K,J).EQ.0) GOTO 20]; the structured guard is
    the same computation.)  The workload generator controls the
    frequency and run structure of nonzeros in [B], matching the paper's
    experiment where [Frequency] is how often [B(K,J) = 1]. *)

val nest : Stmt.loop
(** The J loop. *)

val guarded_k_loop : Stmt.loop
(** The K loop with the guard — the input to IF-inspection. *)

val kernel : Kernel_def.t
(** Parameters: [N]; arrays [A], [B], [C].  [B]'s sparsity is driven by
    the [FREQ_PCT] parameter (percentage 0-100 of nonzero entries,
    arranged in runs). *)
