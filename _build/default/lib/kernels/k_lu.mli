(** LU decomposition without pivoting (§5.1), point algorithm in IR.

    {v
    DO K = 1, N-1
      DO I = K+1, N
        A(I,K) = A(I,K) / A(K,K)
      DO J = K+1, N
        DO I = K+1, N
          A(I,J) = A(I,J) - A(I,K)*A(K,J)
    v} *)

val point_loop : Stmt.loop
(** The K loop. *)

val kernel : Kernel_def.t

val fill_matrix : Env.t -> n:int -> seed:int -> unit
(** Declare and fill [A] (1..n, 1..n) with a random diagonally dominant
    matrix so elimination without pivoting is well conditioned. *)
