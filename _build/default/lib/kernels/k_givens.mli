(** QR decomposition with Givens rotations (§5.4, Figure 9):

    {v
    DO L = 1, N
      DO J = L+1, M
        IF (A(J,L) .NE. 0.0) THEN
          DEN = SQRT(A(L,L)*A(L,L) + A(J,L)*A(J,L))
          C = A(L,L)/DEN
          S = A(J,L)/DEN
          DO K = L, N
            A1 = A(L,K);  A2 = A(J,K)
            A(L,K) =  C*A1 + S*A2
            A(J,K) = -S*A1 + C*A2
    v}

    [A] is M x N with M >= N. *)

val point_loop : Stmt.loop
val kernel : Kernel_def.t
(** Parameters: [M] (rows), [N] (columns). *)
