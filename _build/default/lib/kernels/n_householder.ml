open Linalg

(* Generate the reflector for column k (rows k..m): v has implicit 1 in
   position k; the tail is stored below the diagonal.  Returns tau such
   that H = I - tau * v * v^T annihilates A(k+1..m, k). *)
let reflector t k =
  let m = t.m and a = t.a in
  let kc = (k - 1) * m in
  let alpha = a.(kc + k - 1) in
  let norm2 = ref 0.0 in
  for i = k + 1 to m do
    let x = a.(kc + i - 1) in
    norm2 := !norm2 +. (x *. x)
  done;
  if !norm2 = 0.0 then 0.0
  else begin
    let beta =
      let r = sqrt ((alpha *. alpha) +. !norm2) in
      if alpha >= 0.0 then -.r else r
    in
    let tau = (beta -. alpha) /. beta in
    let scale = 1.0 /. (alpha -. beta) in
    for i = k + 1 to m do
      a.(kc + i - 1) <- a.(kc + i - 1) *. scale
    done;
    a.(kc + k - 1) <- beta;
    tau
  end

(* Apply H = I - tau*v*v^T (v from column k) to column j (rows k..m). *)
let apply_reflector t ~k ~tau j =
  if tau <> 0.0 then begin
    let m = t.m and a = t.a in
    let kc = (k - 1) * m and jc = (j - 1) * m in
    let w = ref a.(jc + k - 1) in
    for i = k + 1 to m do
      w := !w +. (a.(kc + i - 1) *. a.(jc + i - 1))
    done;
    let w = tau *. !w in
    a.(jc + k - 1) <- a.(jc + k - 1) -. w;
    for i = k + 1 to m do
      a.(jc + i - 1) <- a.(jc + i - 1) -. (a.(kc + i - 1) *. w)
    done
  end

let point t =
  let n = t.n in
  let taus = Array.make (n + 1) 0.0 in
  for k = 1 to n do
    let tau = reflector t k in
    taus.(k) <- tau;
    for j = k + 1 to n do
      apply_reflector t ~k ~tau j
    done
  done;
  taus

(* Compact WY: factor a panel of [b] columns pointwise, build the b x b
   upper-triangular T with Q = I - V T V^T, then apply to the trailing
   columns with matrix-matrix work:  W = V^T C;  W := T^T W;  C -= V W. *)
let blocked ~block t =
  let m = t.m and n = t.n and a = t.a in
  let taus = Array.make (n + 1) 0.0 in
  let bT = Array.make (block * block) 0.0 in
  let w = Array.make (block * n) 0.0 in
  let kb = ref 1 in
  while !kb <= n do
    let bend = min (!kb + block - 1) n in
    let bs = bend - !kb + 1 in
    (* Panel: point algorithm restricted to panel columns. *)
    for k = !kb to bend do
      let tau = reflector t k in
      taus.(k) <- tau;
      for j = k + 1 to bend do
        apply_reflector t ~k ~tau j
      done
    done;
    (* Build T (bs x bs, column-major in bT):
       T(1..i-1, i) = -tau_i * T(1..i-1, 1..i-1) * (V_{1..i-1}^T v_i),
       T(i,i) = tau_i. *)
    for i = 1 to bs do
      let ki = !kb + i - 1 in
      let tau = taus.(ki) in
      bT.(((i - 1) * block) + i - 1) <- tau;
      if i > 1 then begin
        (* z = V_{1..i-1}^T v_i  (length i-1) *)
        let z = Array.make (i - 1) 0.0 in
        for p = 1 to i - 1 do
          let kp = !kb + p - 1 in
          let cp = (kp - 1) * m and ci = (ki - 1) * m in
          (* rows ki..m of v_i (unit at ki), rows kp..m of v_p (unit at kp);
             overlap starts at ki. *)
          let acc = ref a.(cp + ki - 1) (* v_p at row ki times v_i's 1 *) in
          for r = ki + 1 to m do
            acc := !acc +. (a.(cp + r - 1) *. a.(ci + r - 1))
          done;
          z.(p - 1) <- !acc
        done;
        (* T(1..i-1, i) = -tau * T(1..i-1,1..i-1) * z *)
        for r = 1 to i - 1 do
          let acc = ref 0.0 in
          for p = r to i - 1 do
            acc := !acc +. (bT.(((p - 1) * block) + r - 1) *. z.(p - 1))
          done;
          bT.(((i - 1) * block) + r - 1) <- -.tau *. !acc
        done
      end
    done;
    (* Apply (I - V T V^T)^T = I - V T^T V^T to trailing columns. *)
    let ntrail = n - bend in
    if ntrail > 0 then begin
      (* W(p, j) = v_p^T c_j  for p = 1..bs, trailing j. *)
      for j = 1 to ntrail do
        let jc = (bend + j - 1) * m in
        for p = 1 to bs do
          let kp = !kb + p - 1 in
          let cp = (kp - 1) * m in
          let acc = ref a.(jc + kp - 1) in
          for r = kp + 1 to m do
            acc := !acc +. (a.(cp + r - 1) *. a.(jc + r - 1))
          done;
          w.(((j - 1) * block) + p - 1) <- !acc
        done
      done;
      (* W := T^T W  (T upper triangular => T^T lower). *)
      for j = 1 to ntrail do
        let wc = (j - 1) * block in
        for p = bs downto 1 do
          let acc = ref 0.0 in
          for q = 1 to p do
            acc := !acc +. (bT.(((p - 1) * block) + q - 1) *. w.(wc + q - 1))
          done;
          w.(wc + p - 1) <- !acc
        done
      done;
      (* C -= V W. *)
      for j = 1 to ntrail do
        let jc = (bend + j - 1) * m and wc = (j - 1) * block in
        for p = 1 to bs do
          let kp = !kb + p - 1 in
          let cp = (kp - 1) * m in
          let wpj = w.(wc + p - 1) in
          a.(jc + kp - 1) <- a.(jc + kp - 1) -. wpj;
          for r = kp + 1 to m do
            a.(jc + r - 1) <- a.(jc + r - 1) -. (a.(cp + r - 1) *. wpj)
          done
        done
      done
    end;
    kb := !kb + block
  done;
  taus

let r_of t =
  let r = create t.n t.n in
  for j = 1 to t.n do
    for i = 1 to min j t.n do
      set r i j (get t i j)
    done
  done;
  r
