open Linalg

let make_b ?(seed = 5) ~n ~freq_pct () =
  let b = create n n in
  let rng = Lcg.create seed in
  let p = float_of_int freq_pct /. 100.0 in
  let run_len = 4 in
  for j = 1 to n do
    let k = ref 1 in
    while !k <= n do
      if Lcg.bool rng (p /. float_of_int run_len) then begin
        let stop = min n (!k + run_len - 1) in
        for kk = !k to stop do
          set b kk j (0.5 +. Lcg.float rng 0.5)
        done;
        k := stop + 1
      end
      else incr k
    done
  done;
  b

let original ~a ~b ~c =
  let n = a.n and m = a.m in
  let aa = a.a and ba = b.a and ca = c.a in
  for j = 1 to n do
    let jc = (j - 1) * m in
    for k = 1 to n do
      let bkj = ba.(((j - 1) * b.m) + k - 1) in
      if bkj <> 0.0 then begin
        let kc = (k - 1) * m in
        for i = 1 to m do
          ca.(jc + i - 1) <- ca.(jc + i - 1) +. (aa.(kc + i - 1) *. bkj)
        done
      end
    done
  done

(* The paper's strawman: unroll-and-jam K by 2 with the guards replicated
   in the innermost loop. *)
let uj ~a ~b ~c =
  let n = a.n and m = a.m in
  let aa = a.a and ba = b.a and ca = c.a in
  for j = 1 to n do
    let jc = (j - 1) * m and bj = (j - 1) * b.m in
    let k = ref 1 in
    while !k + 1 <= n do
      let b0 = ba.(bj + !k - 1) and b1 = ba.(bj + !k) in
      let k0 = (!k - 1) * m and k1 = !k * m in
      for i = 1 to m do
        if b0 <> 0.0 then
          ca.(jc + i - 1) <- ca.(jc + i - 1) +. (aa.(k0 + i - 1) *. b0);
        if b1 <> 0.0 then
          ca.(jc + i - 1) <- ca.(jc + i - 1) +. (aa.(k1 + i - 1) *. b1)
      done;
      k := !k + 2
    done;
    if !k = n then begin
      let b0 = ba.(bj + n - 1) in
      if b0 <> 0.0 then begin
        let k0 = (n - 1) * m in
        for i = 1 to m do
          ca.(jc + i - 1) <- ca.(jc + i - 1) +. (aa.(k0 + i - 1) *. b0)
        done
      end
    end
  done

(* IF-inspection: record the nonzero ranges of column J, then run the
   unguarded update over the ranges with K unrolled by 2. *)
let uj_if ~a ~b ~c =
  let n = a.n and m = a.m in
  let aa = a.a and ba = b.a and ca = c.a in
  let klb = Array.make ((n / 2) + 2) 0 and kub = Array.make ((n / 2) + 2) 0 in
  for j = 1 to n do
    let jc = (j - 1) * m and bj = (j - 1) * b.m in
    (* inspector *)
    let kc = ref 0 and flag = ref false in
    for k = 1 to n do
      if ba.(bj + k - 1) <> 0.0 then begin
        if not !flag then begin
          incr kc;
          klb.(!kc) <- k;
          flag := true
        end
      end
      else if !flag then begin
        kub.(!kc) <- k - 1;
        flag := false
      end
    done;
    if !flag then kub.(!kc) <- n;
    (* executor: K unrolled by 4 within each range (plus a pairwise and a
       single-step remainder); each C(I,J) still accumulates its nonzero
       Ks in increasing order, so results stay bit-identical *)
    for kn = 1 to !kc do
      let k = ref klb.(kn) in
      let kend = kub.(kn) in
      while !k + 3 <= kend do
        let b0 = ba.(bj + !k - 1) and b1 = ba.(bj + !k)
        and b2 = ba.(bj + !k + 1) and b3 = ba.(bj + !k + 2) in
        let k0 = (!k - 1) * m and k1 = !k * m
        and k2 = (!k + 1) * m and k3 = (!k + 2) * m in
        for i = 1 to m do
          let x = ca.(jc + i - 1) in
          let x = x +. (aa.(k0 + i - 1) *. b0) in
          let x = x +. (aa.(k1 + i - 1) *. b1) in
          let x = x +. (aa.(k2 + i - 1) *. b2) in
          ca.(jc + i - 1) <- x +. (aa.(k3 + i - 1) *. b3)
        done;
        k := !k + 4
      done;
      while !k + 1 <= kend do
        let b0 = ba.(bj + !k - 1) and b1 = ba.(bj + !k) in
        let k0 = (!k - 1) * m and k1 = !k * m in
        for i = 1 to m do
          ca.(jc + i - 1) <-
            (ca.(jc + i - 1) +. (aa.(k0 + i - 1) *. b0)) +. (aa.(k1 + i - 1) *. b1)
        done;
        k := !k + 2
      done;
      if !k = kend then begin
        let b0 = ba.(bj + !k - 1) in
        let k0 = (!k - 1) * m in
        for i = 1 to m do
          ca.(jc + i - 1) <- ca.(jc + i - 1) +. (aa.(k0 + i - 1) *. b0)
        done
      end
    done
  done
