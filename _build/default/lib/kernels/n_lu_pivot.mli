(** Native LU-with-partial-pivoting variants for the §5.2 table (T4).

    - [point] — Figure 7 plus the pivot search;
    - [blocked] — the Figure-8 block form, derivable only with
      commutativity knowledge (row swaps commute with whole-column
      updates): the point algorithm runs on the panel columns, the
      trailing update is deferred per block;
    - [blocked_opt] — Figure 8 plus unroll-and-jam and scalar
      replacement on the trailing update ("1+").

    All variants produce bit-identical factors (the commuted operations
    perform the same floating-point operations on the same values). *)

val point : Linalg.mat -> unit
val blocked : block:int -> Linalg.mat -> unit
val blocked_opt : block:int -> Linalg.mat -> unit
