(** Householder QR (§5.3) — the paper's *non-blockable* algorithm.

    The block form applies several reflectors at once as
    [Q = I - V*T*V^T]; the triangular factor [T] involves computation
    and storage with no counterpart in the point algorithm, which is why
    no dependence-based compiler transformation can derive it.  Both
    forms are implemented natively so the benchmark can still show the
    block form's memory advantage; DESIGN.md and the paper's §5.3/§6
    explain why this one needs the language extension instead of a
    compiler derivation.

    Both routines overwrite [A] (m x n, m >= n) with [R] in the upper
    triangle and the Householder vectors below the diagonal (LAPACK
    convention, implicit unit leading element), returning the scalar
    factors [tau]. *)

val point : Linalg.mat -> float array
(** One reflector at a time, applied directly to the whole trailing
    matrix. *)

val blocked : block:int -> Linalg.mat -> float array
(** Panel factorization + compact-WY ([T] matrix) application to the
    trailing matrix. *)

val r_of : Linalg.mat -> Linalg.mat
(** Extract the upper-triangular R (for comparisons). *)
