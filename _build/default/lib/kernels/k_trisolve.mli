(** Forward substitution (unit-free lower-triangular solve) — not one of
    the paper's four study algorithms, but exactly the shape its §8
    "breadth of coverage" asks about: the same scale/update recurrence as
    LU, one dimension lower.

    {v
    DO K = 1, N
      X(K) = B(K) / A(K,K)
      DO I = K+1, N
        B(I) = B(I) - A(I,K)*X(K)
    v}

    The generic {!Blocker.block_lu} driver blocks it: IndexSetSplit
    finds the split of [I] at [K+KS-1], distribution isolates the
    deferred update, and the strip loop sinks inward — yielding the
    blocked (panel) forward solve. *)

val point_loop : Stmt.loop
val kernel : Kernel_def.t
