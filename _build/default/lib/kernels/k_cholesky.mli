(** Cholesky factorization (lower triangle, in place) — a second §8
    "breadth" algorithm.  Same scale/update recurrence as LU but with a
    square root on the diagonal and a triangular trailing update:

    {v
    DO K = 1, N
      A(K,K) = SQRT(A(K,K))
      DO I = K+1, N
        A(I,K) = A(I,K) / A(K,K)
      DO J = K+1, N
        DO I = J, N
          A(I,J) = A(I,J) - A(I,K)*A(J,K)
    v}

    Blockable by the generic {!Blocker.block_lu} driver. *)

val point_loop : Stmt.loop
val kernel : Kernel_def.t
