open Linalg

let point t =
  let m = t.m and n = t.n and a = t.a in
  for l = 1 to n do
    let lc = (l - 1) * m in
    for j = l + 1 to m do
      if a.(lc + j - 1) <> 0.0 then begin
        let all = a.(lc + l - 1) and ajl = a.(lc + j - 1) in
        let den = sqrt ((all *. all) +. (ajl *. ajl)) in
        let c = all /. den and s = ajl /. den in
        for k = l to n do
          let kc = (k - 1) * m in
          let a1 = a.(kc + l - 1) and a2 = a.(kc + j - 1) in
          a.(kc + l - 1) <- (c *. a1) +. (s *. a2);
          a.(kc + j - 1) <- (-.s *. a1) +. (c *. a2)
        done
      end
    done
  done

let optimized t =
  let m = t.m and n = t.n and a = t.a in
  let cs = Array.make (m + 1) 0.0 and sn = Array.make (m + 1) 0.0 in
  let jlb = Array.make ((m / 2) + 2) 0 and jub = Array.make ((m / 2) + 2) 0 in
  for l = 1 to n do
    let lc = (l - 1) * m in
    (* Setup sweep: rotation coefficients, the eliminated column, and the
       inspection of the zero guard. *)
    let jc = ref 0 and flag = ref false in
    for j = l + 1 to m do
      if a.(lc + j - 1) <> 0.0 then begin
        let all = a.(lc + l - 1) and ajl = a.(lc + j - 1) in
        let den = sqrt ((all *. all) +. (ajl *. ajl)) in
        let c = all /. den and s = ajl /. den in
        cs.(j) <- c;
        sn.(j) <- s;
        a.(lc + l - 1) <- (c *. all) +. (s *. ajl);
        a.(lc + j - 1) <- (-.s *. all) +. (c *. ajl);
        if not !flag then begin
          incr jc;
          jlb.(!jc) <- j;
          flag := true
        end
      end
      else if !flag then begin
        jub.(!jc) <- j - 1;
        flag := false
      end
    done;
    if !flag then jub.(!jc) <- m;
    (* Executor: K outermost, J innermost (stride-one), A(L,K) in a
       scalar. *)
    for k = l + 1 to n do
      let kc = (k - 1) * m in
      let alk = ref a.(kc + l - 1) in
      for jn = 1 to !jc do
        for j = jlb.(jn) to jub.(jn) do
          let a1 = !alk and a2 = a.(kc + j - 1) in
          alk := (cs.(j) *. a1) +. (sn.(j) *. a2);
          a.(kc + j - 1) <- (-.sn.(j) *. a1) +. (cs.(j) *. a2)
        done
      done;
      a.(kc + l - 1) <- !alk
    done
  done
