(** LU decomposition with partial pivoting (§5.2, Figure 7), point
    algorithm in IR, including the pivot search the paper's listing
    elides:

    {v
    DO K = 1, N-1
      IMAX = K
      AMAX = ABS(A(K,K))
      DO I = K+1, N
        IF (ABS(A(I,K)) .GT. AMAX) THEN  AMAX = ABS(A(I,K)); IMAX = I
      DO J = 1, N
        TAU = A(K,J); A(K,J) = A(IMAX,J); A(IMAX,J) = TAU
      DO I = K+1, N
        A(I,K) = A(I,K) / A(K,K)
      DO J = K+1, N
        DO I = K+1, N
          A(I,J) = A(I,J) - A(I,K)*A(K,J)
    v} *)

val point_loop : Stmt.loop
val kernel : Kernel_def.t

val fill_matrix : Env.t -> n:int -> seed:int -> unit
(** A general random matrix (pivoting handles the conditioning). *)
