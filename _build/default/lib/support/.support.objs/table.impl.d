lib/support/table.ml: Buffer List Printf String
