lib/support/table.mli:
