lib/support/lcg.ml: Int64
