lib/support/lcg.mli:
