(** Deterministic pseudo-random numbers for workload generation.

    Benchmarks and tests need reproducible inputs; this is a small, fast,
    splittable linear congruential generator so results do not depend on
    OCaml's [Random] state or its version-to-version changes. *)

type t

val create : int -> t
(** [create seed] makes a generator. Equal seeds give equal streams. *)

val split : t -> t
(** A generator statistically independent of the parent's future output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). [bound] must be > 0. *)

val float : t -> float -> float
(** [float t x] draws uniformly from [0, x). *)

val uniform : t -> float
(** Draw from [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)
