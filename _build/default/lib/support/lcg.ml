type t = { mutable state : int64 }

(* Knuth's MMIX multiplier; 64-bit state, top 48 bits used. *)
let multiplier = 6364136223846793005L
let increment = 1442695040888963407L

let create seed = { state = Int64.of_int (seed * 2654435761 + 1) }

let next t =
  t.state <- Int64.add (Int64.mul t.state multiplier) increment;
  t.state

let bits48 t = Int64.to_int (Int64.shift_right_logical (next t) 16)

let split t =
  let s = next t in
  { state = Int64.logxor s 0x9E3779B97F4A7C15L }

let int t bound =
  assert (bound > 0);
  bits48 t mod bound

let uniform t = float_of_int (bits48 t) /. 281474976710656.0
let float t x = uniform t *. x
let bool t p = uniform t < p
