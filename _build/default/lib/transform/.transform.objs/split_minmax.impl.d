lib/transform/split_minmax.ml: Affine Expr List Result Stmt
