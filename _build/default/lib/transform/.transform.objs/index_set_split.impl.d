lib/transform/index_set_split.ml: Affine Expr Ir_util List Section Stmt Symbolic
