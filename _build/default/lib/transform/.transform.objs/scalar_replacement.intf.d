lib/transform/scalar_replacement.mli: Expr Stmt Symbolic
