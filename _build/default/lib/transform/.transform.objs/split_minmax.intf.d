lib/transform/split_minmax.mli: Stmt
