lib/transform/commutativity.mli: Dependence Stmt
