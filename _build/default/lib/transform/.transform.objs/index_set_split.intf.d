lib/transform/index_set_split.mli: Expr Ir_util Stmt Symbolic
