lib/transform/unroll_and_jam.mli: Stmt Symbolic
