lib/transform/scalar_replacement.ml: Expr Hashtbl Ir_util List Section Stmt String
