lib/transform/blocker.mli: Expr Stmt Symbolic
