lib/transform/commutativity.ml: Array Dependence Expr List Stmt String
