lib/transform/simplify_bounds.mli: Expr Stmt Symbolic
