lib/transform/simplify_bounds.ml: Affine Expr List Stmt Symbolic
