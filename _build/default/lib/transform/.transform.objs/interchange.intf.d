lib/transform/interchange.mli: Dependence Stmt Symbolic
