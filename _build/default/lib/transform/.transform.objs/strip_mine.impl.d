lib/transform/strip_mine.ml: Expr Ir_util List Stmt
