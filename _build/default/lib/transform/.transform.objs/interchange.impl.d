lib/transform/interchange.ml: Affine Dependence Expr List Result Stmt
