lib/transform/strip_mine.mli: Expr Stmt
