lib/transform/givens_opt.mli: Blocker If_inspection Stmt
