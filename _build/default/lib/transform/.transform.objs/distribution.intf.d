lib/transform/distribution.mli: Dependence Stmt Symbolic
