lib/transform/scalar_expansion.ml: Expr Ir_util List Stmt String
