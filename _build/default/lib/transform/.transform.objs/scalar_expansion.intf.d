lib/transform/scalar_expansion.mli: Stmt
