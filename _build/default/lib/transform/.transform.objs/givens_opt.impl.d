lib/transform/givens_opt.ml: Blocker Expr If_inspection Interchange Ir_util List Printf Result Scalar_expansion Stmt String Symbolic
