lib/transform/if_inspection.mli: Stmt Symbolic
