lib/transform/distribution.ml: Array Ddg Dependence Hashtbl Int List Printf Result Stmt
