lib/transform/unroll_and_jam.ml: Affine Expr Ir_util List Result Stmt Symbolic
