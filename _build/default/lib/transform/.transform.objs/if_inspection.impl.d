lib/transform/if_inspection.ml: Affine Builder Expr Ir_util List Section Stmt String
