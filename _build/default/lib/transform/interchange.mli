(** Loop interchange, including the paper's triangular variants (§3.1).

    Rectangular interchange swaps two perfectly nested loops whose
    bounds are independent.  The triangular forms implement the bound
    modification derived in the paper: for

    {v
    DO II = rlo, rhi
      DO J = a*II + beta, M      (a > 0)
    v}

    interchange yields

    {v
    DO J = a*rlo + beta, M
      DO II = rlo, MIN((J - beta)/a, rhi)
    v}

    and symmetrically when the *upper* inner bound depends on [II].
    Integer division here is Fortran's (truncation); the formulas are
    exact when [J - beta] stays nonnegative, which the caller must
    ensure (all kernels in this repository have positive index spaces).

    Interchange legality is dependence-based; [legal_by_vectors] refuses
    when any dependence could have a [(<, >)] pattern on the two loops.
    The triangular entry points perform the *geometric* transformation
    only — callers combine them with their own legality argument (in the
    LU driver, the paper's §5.1 derivation backed by section analysis). *)

val rectangular :
  ?check:(Symbolic.t * Dependence.t list) -> Stmt.loop -> (Stmt.loop, string) result
(** Swap a depth-2 perfect nest with independent bounds.  With [check],
    refuse if some dependence's direction vector could be reversed. *)

val legal_by_vectors : Dependence.t list -> outer_level:int -> bool
(** No dependence has a possibly-[<] at [outer_level] combined with a
    possibly-[>] at [outer_level + 1] (0-based loop levels among the
    common loops). *)

val triangular_lower : Stmt.loop -> (Stmt.loop, string) result
(** Inner *lower* bound is an affine function of the outer index with
    positive coefficient; inner upper bound independent. *)

val triangular_upper : Stmt.loop -> (Stmt.loop, string) result
(** Inner *upper* bound is an affine function of the outer index with
    positive coefficient; inner lower bound independent. *)

val triangular : Stmt.loop -> (Stmt.loop, string) result
(** Dispatch between {!rectangular}, {!triangular_lower} and
    {!triangular_upper} by inspecting which inner bound mentions the
    outer index. *)
