(** Scalar expansion: turn a loop-private scalar into an array indexed by
    the loop, removing the anti/output dependences the scalar carries so
    the loop can be distributed (used in the Givens QR optimization,
    where the rotation coefficients [C]/[S] must survive distribution of
    the [J] loop). *)

val apply :
  scalar:string -> array_name:string -> Stmt.loop -> (Stmt.loop, string) result
(** Replace every definition and use of REAL scalar [scalar] in the
    loop's body by [array_name(index)].  Fails if the scalar is live on
    entry (used before defined in some iteration — checked
    syntactically: the first access textually must be a write) or if
    [array_name] is already in use. *)
