let rec expr ~ctx (e : Expr.t) =
  match e with
  | Expr.Int _ | Expr.Var _ -> e
  | Expr.Bin (op, a, b) -> (
      let a = expr ~ctx a and b = expr ~ctx b in
      match op with
      | Expr.Add -> Expr.add a b
      | Expr.Sub -> Expr.sub a b
      | Expr.Mul -> Expr.mul a b
      | Expr.Div -> Expr.div a b)
  | Expr.Min (a, b) -> (
      let a = expr ~ctx a and b = expr ~ctx b in
      match Affine.of_expr a, Affine.of_expr b with
      | Some fa, Some fb ->
          if Symbolic.prove_le ctx fa fb then a
          else if Symbolic.prove_le ctx fb fa then b
          else Expr.min_ a b
      | _ -> Expr.min_ a b)
  | Expr.Max (a, b) -> (
      let a = expr ~ctx a and b = expr ~ctx b in
      match Affine.of_expr a, Affine.of_expr b with
      | Some fa, Some fb ->
          if Symbolic.prove_ge ctx fa fb then a
          else if Symbolic.prove_ge ctx fb fa then b
          else Expr.max_ a b
      | _ -> Expr.max_ a b)
  | Expr.Idx (name, subs) -> Expr.Idx (name, List.map (expr ~ctx) subs)

let block ~ctx stmts =
  List.map (Stmt.map_expr (expr ~ctx)) stmts
