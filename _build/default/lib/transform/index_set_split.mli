(** Index-set splitting (Section 3 of the paper).

    [at_point] is the primitive: one loop becomes two loops over
    non-intersecting halves of the original index set, execution order
    unchanged.  [procedure] is Procedure IndexSetSplit (Figure 3): given
    a transformation-preventing dependence, use section analysis to find
    the sub-range on which the conflict actually occurs and return the
    split point that isolates it. *)

val at_point : Stmt.loop -> Expr.t -> Stmt.t list
(** [at_point l p] returns

    {v
    DO i = lo, MIN(hi, p)  body
    DO i = MAX(lo, MIN(hi, p) + 1), hi  body
    v}

    Always legal for step-1 loops; raises [Invalid_argument] on other
    steps. *)

type split_plan = {
  loop : Stmt.loop;  (** the inner loop whose index set to split *)
  point : Expr.t;  (** split after this value *)
  conflict_first : bool;
      (** true when the dependence is confined to the first (low) part *)
}

val procedure :
  ctx:Symbolic.t ->
  source:Ir_util.access ->
  sink:Ir_util.access ->
  split_candidates:Stmt.loop list ->
  (split_plan, string) result
(** Figure 3: compute the sections of the dependence's source and sink
    (each over the execution of its own enclosing loops as recorded in
    the access), intersect and union them; if they are equal, fail.
    Otherwise set the subscript of the larger section's reference equal
    to the boundary between the common and disjoint parts and solve for
    that reference's inner-loop induction variable (which must be one of
    [split_candidates]). *)
