(** Resolve MIN/MAX loop bounds that are decidable under context facts.

    Index-set splitting introduces bounds like [MAX(K+1, K+KS)]; when the
    context proves one arm dominates for *all* parameter values (here
    [KS >= 1] gives [K+KS >= K+1]), the bound is replaced by that arm.
    Only universally valid facts may be in [ctx] — the simplification is
    applied to emitted code. *)

val expr : ctx:Symbolic.t -> Expr.t -> Expr.t

val block : ctx:Symbolic.t -> Stmt.t list -> Stmt.t list
(** Simplify every loop bound (and subscript) in the block. *)
