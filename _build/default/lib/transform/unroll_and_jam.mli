(** Unroll-and-jam (register blocking).

    Unrolls an outer loop by a constant factor and fuses ("jams") the
    resulting copies of the inner loop, so the inner loop body carries
    [factor] outer iterations' worth of work and outer-loop-invariant
    values can be held in registers.

    [rectangular] requires the inner bounds to be independent of the
    outer index; a remainder loop handles trip counts not divisible by
    the factor (the paper's "pre-loop", here placed after).

    [triangular] implements §3.1 for inner *lower* bounds of the form
    [II + beta] (unit coefficient): the iteration space below the line
    [J = (I+IS-1) + beta] stays a (shrunken) triangular nest, and the
    rectangular region above it is unrolled. *)

val rectangular : factor:int -> Stmt.loop -> (Stmt.t list, string) result
(** [rectangular ~factor l] where [l.body] is one inner loop.  Returns
    the unrolled main loop plus the remainder loop. *)

val triangular : factor:int -> Stmt.loop -> (Stmt.t list, string) result
(** [triangular ~factor l] for [DO I / DO J = I + beta, M].  Returns the
    main blocked loop (triangular sub-nest + unrolled rectangular part)
    plus the remainder loop. *)

val upper_triangular : factor:int -> Stmt.loop -> (Stmt.t list, string) result
(** [upper_triangular ~factor l] for [DO I / DO J = L, I + beta] — the
    inner *upper* bound tracks the outer index with unit coefficient and
    the lower bound is independent (the first region of the convolution
    kernel).  The jammed rectangle is [L .. I + beta]; rows above the
    first extend it with a per-row tail. *)

val rhomboidal :
  ctx:Symbolic.t -> factor:int -> Stmt.loop -> (Stmt.t list, string) result
(** [rhomboidal ~ctx ~factor l] for [DO I / DO J = I + b1, I + b2] — both
    inner bounds track the outer index with unit coefficient (the
    convolution kernels after MIN/MAX removal).  The block decomposes
    into a head triangle, a jammed rectangle [I+factor-1+b1 .. I+b2],
    and a tail triangle.  Requires [b2 - b1 >= factor - 1] (provable in
    [ctx]) so the three parts tile the rhomboid exactly. *)
