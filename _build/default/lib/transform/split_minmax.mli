(** Trapezoidal and rhomboidal iteration spaces (§3.2).

    A [MIN] in an inner loop's upper bound (or a [MAX] in its lower
    bound) defines two regions of the outer iteration space; splitting
    the outer index set at the crossover point leaves each new loop with
    a simple bound, after which the triangular/rectangular machinery
    applies.  For

    {v
    DO I = 1, N
      DO J = L, MIN(a*I + beta, M)
    v}

    the crossover is at [I = (M - beta) / a]: below it the bound is
    [a*I + beta], above it [M].  [MAX] lower bounds are handled dually,
    and the convolution kernel's combination of both yields up to four
    loops (the paper's rhomboidal case). *)

val split_inner_min : Stmt.loop -> (Stmt.t list, string) result
(** Remove one [MIN] from the hi bound of the immediately nested loop by
    splitting the outer index set.  Exactly one [MIN] argument may
    depend on the outer index, affinely with positive coefficient. *)

val split_inner_max : Stmt.loop -> (Stmt.t list, string) result
(** Dual: remove one [MAX] from the lo bound of the nested loop. *)

val remove_all : Stmt.loop -> (Stmt.t list, string) result
(** Iterate {!split_inner_min}/{!split_inner_max} until every generated
    loop has simple inner bounds.  Loops whose inner bound has no
    MIN/MAX pass through unchanged. *)
