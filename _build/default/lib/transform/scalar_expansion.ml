let apply ~scalar ~array_name (l : Stmt.loop) =
  let block = [ Stmt.Loop l ] in
  (* Expanding in place (array named like the scalar) is allowed: once
     every occurrence is rewritten, the rank-0 name is gone. *)
  let arrays =
    List.filter_map
      (fun (n, rank, _) ->
        if rank > 0 || not (String.equal n scalar) then Some n else None)
      (Ir_util.arrays_of block)
  in
  if List.mem array_name arrays || List.mem array_name (Ir_util.index_vars block)
  then Error (array_name ^ " is already in use")
  else
    let accs =
      List.filter
        (fun (a : Ir_util.access) -> String.equal a.array scalar && a.subs = [])
        (Ir_util.accesses [ Stmt.Loop l ])
    in
    match accs with
    | [] -> Error (scalar ^ " does not occur in the loop")
    | first :: _ when first.kind <> Ir_util.Write ->
        Error (scalar ^ " may be live on entry: first access is a read")
    | _ ->
        let idx = Expr.var l.index in
        let rec rewrite_f (fe : Stmt.fexpr) =
          match fe with
          | Stmt.Fvar v when String.equal v scalar -> Stmt.Ref (array_name, [ idx ])
          | Stmt.Fconst _ | Stmt.Fvar _ | Stmt.Ref _ | Stmt.Of_int _ -> fe
          | Stmt.Fbin (op, a, b) -> Stmt.Fbin (op, rewrite_f a, rewrite_f b)
          | Stmt.Fneg a -> Stmt.Fneg (rewrite_f a)
          | Stmt.Fcall (f, args) -> Stmt.Fcall (f, List.map rewrite_f args)
        in
        let rec rewrite_c (c : Stmt.cond) =
          match c with
          | Stmt.Fcmp (r, a, b) -> Stmt.Fcmp (r, rewrite_f a, rewrite_f b)
          | Stmt.Icmp _ -> c
          | Stmt.Not a -> Stmt.Not (rewrite_c a)
          | Stmt.And (a, b) -> Stmt.And (rewrite_c a, rewrite_c b)
          | Stmt.Or (a, b) -> Stmt.Or (rewrite_c a, rewrite_c b)
        in
        let rec rewrite (s : Stmt.t) =
          match s with
          | Stmt.Assign (v, [], rhs) when String.equal v scalar ->
              Stmt.Assign (array_name, [ idx ], rewrite_f rhs)
          | Stmt.Assign (a, subs, rhs) -> Stmt.Assign (a, subs, rewrite_f rhs)
          | Stmt.Iassign _ -> s
          | Stmt.If (c, t, e) ->
              Stmt.If (rewrite_c c, List.map rewrite t, List.map rewrite e)
          | Stmt.Loop il -> Stmt.Loop { il with body = List.map rewrite il.body }
        in
        Ok { l with body = List.map rewrite l.body }
