(** Strip mining: split one loop's iteration space into blocks.

    [DO I = lo, hi] becomes

    {v
    DO I = lo, hi, IS
      DO II = I, MIN(I + IS - 1, hi)
    v}

    Strip mining alone is always legal (it only renames the traversal);
    it is the first step of strip-mine-and-interchange and of
    unroll-and-jam. *)

val apply :
  block_size:Expr.t -> new_index:string -> Stmt.loop -> (Stmt.loop, string) result
(** Returns the new outer loop (whose body is the single strip loop).
    Fails when the loop's step is not 1 or the new index name collides
    with a variable used in the loop. *)
