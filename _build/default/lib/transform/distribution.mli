(** Loop distribution (loop fission).

    Splits one loop around groups of its body statements.  Legality is
    the Allen–Kennedy condition: every group must be a union of strongly
    connected components of the loop's statement dependence graph, and
    the groups must appear in an order compatible with the condensation
    (no dependence may point from a later group to an earlier one).

    [apply_with_override] supports the paper's §5.2 result: a predicate
    can declare specific dependences ignorable (commutativity knowledge)
    before the SCC test. *)

val apply :
  ctx:Symbolic.t -> Stmt.loop -> groups:int list list -> (Stmt.t list, string) result
(** [apply ~ctx l ~groups] distributes [l] around the listed groups of
    body-statement indices (each group keeps textual order; the groups
    must partition [0 .. n-1]). *)

val apply_with_override :
  ctx:Symbolic.t ->
  ignore_dep:(Dependence.t -> bool) ->
  Stmt.loop ->
  groups:int list list ->
  (Stmt.t list, string) result

val auto : ctx:Symbolic.t -> Stmt.loop -> (Stmt.t list, string) result
(** Maximal distribution: one loop per SCC in topological order. *)
