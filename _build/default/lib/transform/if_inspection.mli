(** IF-inspection (Section 4).

    Given a loop whose body is a guarded inner computation,

    {v
    DO K = lo, hi
      IF (guard(K)) THEN  <computation>  END IF
    v}

    generate an inspector that records the maximal ranges of [K] on
    which the guard holds into range tables [KLB]/[KUB], and an executor
    that runs the computation over exactly those ranges:

    {v
    KC = 0 ; FLAG = 0
    DO K = lo, hi
      IF (guard) THEN  IF (FLAG = 0) { KC += 1; KLB(KC) = K; FLAG = 1 }
      ELSE             IF (FLAG = 1) { KUB(KC) = K - 1; FLAG = 0 }
    END DO
    IF (FLAG = 1) { KUB(KC) = hi; FLAG = 0 }
    DO KN = 1, KC
      DO K = KLB(KN), KUB(KN)
        <computation>
    v}

    The computation, now unguarded, is eligible for unroll-and-jam.

    Safety requires that executing the guard for all [K] up front sees
    the same values as the original interleaving: the computation must
    not write anything the guard reads, and the guard must not depend on
    the computation's inner loop indices. *)

type names = {
  counter : string;  (** e.g. [KC] *)
  lb : string;  (** range lower-bound table *)
  ub : string;  (** range upper-bound table *)
  flag : string;
  range_index : string;  (** e.g. [KN] *)
}

val default_names : prefix:string -> used:string list -> names

val apply : names:names -> Stmt.loop -> (Stmt.t list, string) result
(** The loop's body must be a single [IF] with an empty else-branch.
    The returned block is inspector followed by executor; the caller
    must declare [lb]/[ub] as INTEGER arrays at least as long as the
    maximal number of ranges ((hi-lo)/2 + 1). *)

val split_guarded :
  ctx:Symbolic.t ->
  names:names ->
  setup_len:int ->
  Stmt.loop ->
  (Stmt.t list * Stmt.loop, string) result
(** The fused form used for Givens QR (Figure 10), where the guard reads
    data the guarded body modifies, so the guard cannot be re-evaluated
    by a separate inspector.  The loop body must be [IF (guard) stmts];
    the first [setup_len] statements of [stmts] stay under the guard
    (with range recording fused in) and the remainder (the "apply" part)
    moves to an executor loop over the recorded ranges, which is
    returned separately so the caller can interchange it.

    Safety (checked): moving apply(i) after setup(k) for k > i requires
    every cross pair of accesses between the apply part and the
    guard/setup part with a write to be either provably disjoint
    (sections over the loop's execution under [ctx]) or an identical
    array subscript that varies injectively with the loop index (a
    same-iteration value channel like [C(J)]). *)
