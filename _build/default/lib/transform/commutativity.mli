(** Commutativity knowledge (§5.2).

    Data dependence alone cannot block LU with partial pivoting: moving
    the row interchanges of later elimination steps ahead of earlier
    column updates reverses a dependence.  But a row interchange
    commutes with a whole-column update — both versions compute the same
    final values, though intermediate values flow through different
    locations.  The paper proposes pattern matching to recognize this
    pair of operations and license ignoring the preventing recurrence.

    This module implements that pattern matcher:

    - a {e row swap} is [T = A(r1,J); A(r1,J) = A(r2,J); A(r2,J) = T]
      inside a [J] loop sweeping full rows of [A];
    - a {e column update} is [A(I,J) = A(I,J) - A(I,k)*A(k,J)] (or [+])
      inside an [I] loop sweeping a column.

    [may_ignore] licenses ignoring a dependence between a row-swap
    statement group and a column-update statement when deciding
    distribution legality. *)

val is_row_swap : Stmt.t -> bool
(** Does this statement (a loop over row elements) perform a row
    interchange of a 2-D array via a temporary? *)

val is_column_update : Stmt.t -> bool
(** Is this a (nest of loops around a) whole-column update of the
    Gaussian-elimination form? *)

val may_ignore : Stmt.loop -> Dependence.t -> bool
(** True when the dependence connects a row-swap group and a
    column-update group among the immediate body statements of the
    loop — the §5.2 license for distribution. *)
