(** The §5.4 Givens QR optimization driver (Figure 10).

    Input: the point algorithm's [L] loop (Figure 9 shape: a [J] sweep
    whose guarded body computes rotation coefficients and applies the
    rotation to columns [L..N]).  Steps, each with a mechanical check:

    + index-set split the rotation's [K] loop at [L] and peel the
      [K = L] iteration into the guarded setup (the recurrence on
      [A(L,L)]/[A(J,L)] only exists for the element column, exactly the
      section observation in the paper);
    + expand the rotation coefficients [C], [S] over [J] so they survive
      distribution, and privatize the rotation temporaries in the apply
      part by renaming;
    + fuse IF-inspection into the setup sweep and move the apply part to
      an executor over the recorded ranges
      ({!If_inspection.split_guarded}, which checks cross-iteration
      safety via sections);
    + interchange the executor so [K] is outermost and [J] innermost
      (stride-one access to [A(J,K)], [A(L,K)] invariant in the
      innermost loop). *)

val scratch_arrays : names:If_inspection.names -> string list
(** Integer scratch the caller must declare: [lb], [ub] tables. *)

val optimize :
  Stmt.loop -> (Stmt.t Blocker.traced * If_inspection.names, string) result
(** Returns the optimized [L] loop and the inspector names used (so the
    caller can size the range tables: at most [(M-L)/2 + 1] ranges). *)
