(** IR traversal utilities shared by analysis and transformations. *)

type space = Float_data | Int_data

type kind = Read | Write

(** One array or scalar access, with its statement context.  Scalars are
    modelled as rank-0 accesses ([subs = []]); this lets the dependence
    machinery treat scalar recurrences (e.g. the [TAU] temporary in the
    pivoting code) uniformly. *)
type access = {
  array : string;
  subs : Expr.t list;
  kind : kind;
  space : space;
  path : Stmt.path;  (** path of the enclosing statement *)
  loops : Stmt.loop list;  (** enclosing loops, outermost first *)
  pos : int;  (** textual order of the enclosing statement *)
}

val accesses : Stmt.t list -> access list
(** Every access in the block, in textual order.  For an assignment the
    right-hand side reads precede the left-hand side write, matching
    Fortran evaluation order.  Reads occurring in loop bounds and IF
    conditions are included (they can be sources of dependences that
    prevent interchange, as in Givens QR). *)

val arrays_of : Stmt.t list -> (string * int * space) list
(** Array names with their rank and element space, sorted by name.
    Scalars (rank 0) are included. *)

val index_vars : Stmt.t list -> string list
(** All loop index variables, outermost-first preorder. *)

val symbolic_params : Stmt.t list -> string list
(** Free integer variables that are not loop indices and not written by
    the block — the problem sizes ([N]) and block sizes ([KS]). *)

val fresh : used:string list -> string -> string
(** [fresh ~used base] returns [base] or [base2], [base3], ... — the
    first name not in [used]. *)

val plot_iteration_space :
  bindings:(string * int) list -> width:int -> height:int -> Stmt.loop -> string
(** ASCII rendering of a depth-2 iteration space (outer loop vertical,
    inner horizontal), used to regenerate the paper's Figure 1.  Symbolic
    bounds are closed with [bindings]. *)
