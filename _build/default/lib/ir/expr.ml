type binop = Add | Sub | Mul | Div

type t =
  | Int of int
  | Var of string
  | Bin of binop * t * t
  | Min of t * t
  | Max of t * t
  | Idx of string * t list

let rec equal a b =
  match a, b with
  | Int x, Int y -> x = y
  | Var x, Var y -> String.equal x y
  | Bin (o1, a1, b1), Bin (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | Min (a1, b1), Min (a2, b2) | Max (a1, b1), Max (a2, b2) ->
      equal a1 a2 && equal b1 b2
  | Idx (n1, l1), Idx (n2, l2) ->
      String.equal n1 n2
      && List.length l1 = List.length l2
      && List.for_all2 equal l1 l2
  | (Int _ | Var _ | Bin _ | Min _ | Max _ | Idx _), _ -> false

let compare = Stdlib.compare

let int n = Int n
let var v = Var v
let idx name subs = Idx (name, subs)

let with_offset e k = if k = 0 then e else Bin (Add, e, Int k)

let add a b =
  match a, b with
  | Int 0, e | e, Int 0 -> e
  | Int x, Int y -> Int (x + y)
  | Int x, Bin (Add, e, Int y) | Bin (Add, e, Int y), Int x -> with_offset e (x + y)
  | _ -> Bin (Add, a, b)

let sub a b =
  match a, b with
  | e, Int 0 -> e
  | Int x, Int y -> Int (x - y)
  | Bin (Add, e, Int y), Int x -> with_offset e (y - x)
  | _ -> if equal a b then Int 0 else Bin (Sub, a, b)

let mul a b =
  match a, b with
  | Int 0, _ | _, Int 0 -> Int 0
  | Int 1, e | e, Int 1 -> e
  | Int x, Int y -> Int (x * y)
  | _ -> Bin (Mul, a, b)

let div a b =
  match a, b with
  | e, Int 1 -> e
  | Int x, Int y when y <> 0 -> Int (x / y)
  | _ -> Bin (Div, a, b)

let min_ a b =
  match a, b with
  | Int x, Int y -> Int (min x y)
  | _ -> if equal a b then a else Min (a, b)

let max_ a b =
  match a, b with
  | Int x, Int y -> Int (max x y)
  | _ -> if equal a b then a else Max (a, b)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let succ e = add e (Int 1)
let pred e = sub e (Int 1)

let rec free_vars_acc acc = function
  | Int _ -> acc
  | Var v -> v :: acc
  | Bin (_, a, b) | Min (a, b) | Max (a, b) -> free_vars_acc (free_vars_acc acc a) b
  | Idx (name, subs) -> List.fold_left free_vars_acc (name :: acc) subs

let free_vars e = List.sort_uniq String.compare (free_vars_acc [] e)

let rec subst bindings e =
  match e with
  | Int _ -> e
  | Var v -> ( match List.assoc_opt v bindings with Some e' -> e' | None -> e)
  | Bin (op, a, b) -> (
      let a = subst bindings a and b = subst bindings b in
      match op with Add -> add a b | Sub -> sub a b | Mul -> mul a b | Div -> div a b)
  | Min (a, b) -> min_ (subst bindings a) (subst bindings b)
  | Max (a, b) -> max_ (subst bindings a) (subst bindings b)
  | Idx (name, subs) -> Idx (name, List.map (subst bindings) subs)

let mentions v e = List.mem v (free_vars e)

let rec simplify e =
  match e with
  | Int _ | Var _ -> e
  | Bin (op, a, b) -> (
      let a = simplify a and b = simplify b in
      match op with Add -> add a b | Sub -> sub a b | Mul -> mul a b | Div -> div a b)
  | Min (a, b) -> min_ (simplify a) (simplify b)
  | Max (a, b) -> max_ (simplify a) (simplify b)
  | Idx (name, subs) -> Idx (name, List.map simplify subs)

let rec eval lookup lookup_arr = function
  | Int n -> n
  | Var v -> lookup v
  | Bin (op, a, b) -> (
      let x = eval lookup lookup_arr a and y = eval lookup lookup_arr b in
      match op with
      | Add -> Stdlib.( + ) x y
      | Sub -> Stdlib.( - ) x y
      | Mul -> Stdlib.( * ) x y
      | Div -> x / y)
  | Min (a, b) -> Stdlib.min (eval lookup lookup_arr a) (eval lookup lookup_arr b)
  | Max (a, b) -> Stdlib.max (eval lookup lookup_arr a) (eval lookup lookup_arr b)
  | Idx (name, subs) -> lookup_arr name (List.map (eval lookup lookup_arr) subs)

(* Precedence: 0 = additive, 1 = multiplicative, 2 = atom. *)
let rec to_string_prec prec e =
  let paren needed s = if needed then "(" ^ s ^ ")" else s in
  match e with
  | Int n -> if n < 0 then paren (prec > 1) (string_of_int n) else string_of_int n
  | Var v -> v
  | Bin (Add, a, Int n) when n < 0 ->
      paren (prec > 0) (to_string_prec 0 a ^ " - " ^ string_of_int (-n))
  | Bin (Add, a, b) ->
      paren (prec > 0) (to_string_prec 0 a ^ " + " ^ to_string_prec 1 b)
  | Bin (Sub, a, b) ->
      paren (prec > 0) (to_string_prec 0 a ^ " - " ^ to_string_prec 1 b)
  | Bin (Mul, a, b) ->
      paren (prec > 1) (to_string_prec 1 a ^ "*" ^ to_string_prec 2 b)
  | Bin (Div, a, b) ->
      paren (prec > 1) (to_string_prec 1 a ^ "/" ^ to_string_prec 2 b)
  | Min (a, b) -> "MIN(" ^ to_string_prec 0 a ^ ", " ^ to_string_prec 0 b ^ ")"
  | Max (a, b) -> "MAX(" ^ to_string_prec 0 a ^ ", " ^ to_string_prec 0 b ^ ")"
  | Idx (name, subs) ->
      name ^ "(" ^ String.concat ", " (List.map (to_string_prec 0) subs) ^ ")"

let to_string e = to_string_prec 0 e
let pp fmt e = Format.pp_print_string fmt (to_string e)
