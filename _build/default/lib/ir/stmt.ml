type rel = Eq | Ne | Lt | Le | Gt | Ge
type fbinop = FAdd | FSub | FMul | FDiv

type fexpr =
  | Fconst of float
  | Fvar of string
  | Ref of string * Expr.t list
  | Fbin of fbinop * fexpr * fexpr
  | Fneg of fexpr
  | Fcall of string * fexpr list
  | Of_int of Expr.t

type cond =
  | Fcmp of rel * fexpr * fexpr
  | Icmp of rel * Expr.t * Expr.t
  | Not of cond
  | And of cond * cond
  | Or of cond * cond

type t =
  | Assign of string * Expr.t list * fexpr
  | Iassign of string * Expr.t list * Expr.t
  | If of cond * t list * t list
  | Loop of loop

and loop = {
  index : string;
  lo : Expr.t;
  hi : Expr.t;
  step : Expr.t;
  body : t list;
}

let loop ?(step = Expr.Int 1) index lo hi body = Loop { index; lo; hi; step; body }

let rec equal_fexpr a b =
  match a, b with
  | Fconst x, Fconst y -> x = y
  | Fvar x, Fvar y -> String.equal x y
  | Ref (n1, s1), Ref (n2, s2) ->
      String.equal n1 n2 && List.length s1 = List.length s2
      && List.for_all2 Expr.equal s1 s2
  | Fbin (o1, a1, b1), Fbin (o2, a2, b2) ->
      o1 = o2 && equal_fexpr a1 a2 && equal_fexpr b1 b2
  | Fneg a, Fneg b -> equal_fexpr a b
  | Fcall (n1, l1), Fcall (n2, l2) ->
      String.equal n1 n2 && List.length l1 = List.length l2
      && List.for_all2 equal_fexpr l1 l2
  | Of_int a, Of_int b -> Expr.equal a b
  | (Fconst _ | Fvar _ | Ref _ | Fbin _ | Fneg _ | Fcall _ | Of_int _), _ -> false

let rec equal_cond a b =
  match a, b with
  | Fcmp (r1, a1, b1), Fcmp (r2, a2, b2) ->
      r1 = r2 && equal_fexpr a1 a2 && equal_fexpr b1 b2
  | Icmp (r1, a1, b1), Icmp (r2, a2, b2) ->
      r1 = r2 && Expr.equal a1 a2 && Expr.equal b1 b2
  | Not a, Not b -> equal_cond a b
  | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) ->
      equal_cond a1 a2 && equal_cond b1 b2
  | (Fcmp _ | Icmp _ | Not _ | And _ | Or _), _ -> false

let rec equal a b =
  match a, b with
  | Assign (n1, s1, r1), Assign (n2, s2, r2) ->
      String.equal n1 n2 && List.length s1 = List.length s2
      && List.for_all2 Expr.equal s1 s2 && equal_fexpr r1 r2
  | Iassign (n1, s1, r1), Iassign (n2, s2, r2) ->
      String.equal n1 n2 && List.length s1 = List.length s2
      && List.for_all2 Expr.equal s1 s2 && Expr.equal r1 r2
  | If (c1, t1, e1), If (c2, t2, e2) ->
      equal_cond c1 c2 && equal_block t1 t2 && equal_block e1 e2
  | Loop l1, Loop l2 ->
      String.equal l1.index l2.index && Expr.equal l1.lo l2.lo
      && Expr.equal l1.hi l2.hi && Expr.equal l1.step l2.step
      && equal_block l1.body l2.body
  | (Assign _ | Iassign _ | If _ | Loop _), _ -> false

and equal_block a b = List.length a = List.length b && List.for_all2 equal a b

type hop = I of int | Then_ | Else_
type path = hop list

let bad () = invalid_arg "Stmt: bad path"

let rec get_at block path =
  match path with
  | [] -> bad ()
  | [ I n ] -> ( match List.nth_opt block n with Some s -> s | None -> bad ())
  | I n :: rest -> (
      match List.nth_opt block n with
      | Some (Loop l) -> get_at l.body rest
      | Some (If (_, t, e)) -> (
          match rest with
          | Then_ :: rest' -> get_at t rest'
          | Else_ :: rest' -> get_at e rest'
          | I _ :: _ | [] -> bad ())
      | Some (Assign _ | Iassign _) | None -> bad ())
  | (Then_ | Else_) :: _ -> bad ()

let rec replace_at block path stmts =
  match path with
  | [] -> bad ()
  | [ I n ] ->
      if n < 0 || n >= List.length block then bad ();
      List.concat (List.mapi (fun i s -> if i = n then stmts else [ s ]) block)
  | I n :: rest ->
      List.mapi
        (fun i s ->
          if i <> n then s
          else
            match s with
            | Loop l -> Loop { l with body = replace_at l.body rest stmts }
            | If (c, t, e) -> (
                match rest with
                | Then_ :: rest' -> If (c, replace_at t rest' stmts, e)
                | Else_ :: rest' -> If (c, t, replace_at e rest' stmts)
                | I _ :: _ | [] -> bad ())
            | Assign _ | Iassign _ -> bad ())
        block
  | (Then_ | Else_) :: _ -> bad ()

let update_loop_at block path f =
  match get_at block path with
  | Loop l -> replace_at block path (f l)
  | Assign _ | Iassign _ | If _ -> invalid_arg "Stmt.update_loop_at: not a loop"

let find_loops block =
  let acc = ref [] in
  let rec walk prefix block =
    List.iteri
      (fun i s ->
        let here = prefix @ [ I i ] in
        match s with
        | Loop l ->
            acc := (here, l) :: !acc;
            walk here l.body
        | If (_, t, e) ->
            walk (here @ [ Then_ ]) t;
            walk (here @ [ Else_ ]) e
        | Assign _ | Iassign _ -> ())
      block
  in
  walk [] block;
  List.rev !acc

let loop_nest s =
  let rec go acc = function
    | Loop l -> (
        match l.body with
        | [ (Loop _ as inner) ] -> go (l :: acc) inner
        | body -> Some (List.rev (l :: acc), body))
    | Assign _ | Iassign _ | If _ -> None
  in
  go [] s

let rec subst_fexpr bindings fe =
  match fe with
  | Fconst _ | Fvar _ -> fe
  | Ref (name, subs) -> Ref (name, List.map (Expr.subst bindings) subs)
  | Fbin (op, a, b) -> Fbin (op, subst_fexpr bindings a, subst_fexpr bindings b)
  | Fneg a -> Fneg (subst_fexpr bindings a)
  | Fcall (name, args) -> Fcall (name, List.map (subst_fexpr bindings) args)
  | Of_int e -> Of_int (Expr.subst bindings e)

let rec subst_cond bindings c =
  match c with
  | Fcmp (r, a, b) -> Fcmp (r, subst_fexpr bindings a, subst_fexpr bindings b)
  | Icmp (r, a, b) -> Icmp (r, Expr.subst bindings a, Expr.subst bindings b)
  | Not a -> Not (subst_cond bindings a)
  | And (a, b) -> And (subst_cond bindings a, subst_cond bindings b)
  | Or (a, b) -> Or (subst_cond bindings a, subst_cond bindings b)

let rec subst bindings s =
  match bindings with
  | [] -> s
  | _ -> (
      match s with
      | Assign (name, subs, rhs) ->
          Assign (name, List.map (Expr.subst bindings) subs, subst_fexpr bindings rhs)
      | Iassign (name, subs, rhs) ->
          Iassign (name, List.map (Expr.subst bindings) subs, Expr.subst bindings rhs)
      | If (c, t, e) ->
          If (subst_cond bindings c, subst_block bindings t, subst_block bindings e)
      | Loop l ->
          let inner = List.remove_assoc l.index bindings in
          Loop
            {
              l with
              lo = Expr.subst bindings l.lo;
              hi = Expr.subst bindings l.hi;
              step = Expr.subst bindings l.step;
              body = subst_block inner l.body;
            })

and subst_block bindings block = List.map (subst bindings) block

let rec rename_in_fexpr old fresh fe =
  match fe with
  | Fvar v when String.equal v old -> Fvar fresh
  | Fconst _ | Fvar _ | Of_int _ | Ref _ -> fe
  | Fbin (op, a, b) ->
      Fbin (op, rename_in_fexpr old fresh a, rename_in_fexpr old fresh b)
  | Fneg a -> Fneg (rename_in_fexpr old fresh a)
  | Fcall (name, args) -> Fcall (name, List.map (rename_in_fexpr old fresh) args)

let rec rename_in_cond old fresh c =
  match c with
  | Fcmp (r, a, b) -> Fcmp (r, rename_in_fexpr old fresh a, rename_in_fexpr old fresh b)
  | Icmp _ -> c
  | Not a -> Not (rename_in_cond old fresh a)
  | And (a, b) -> And (rename_in_cond old fresh a, rename_in_cond old fresh b)
  | Or (a, b) -> Or (rename_in_cond old fresh a, rename_in_cond old fresh b)

let rec rename_fvar old fresh s =
  match s with
  | Assign (name, [], rhs) when String.equal name old ->
      Assign (fresh, [], rename_in_fexpr old fresh rhs)
  | Assign (name, subs, rhs) -> Assign (name, subs, rename_in_fexpr old fresh rhs)
  | Iassign _ -> s
  | If (c, t, e) ->
      If
        ( rename_in_cond old fresh c,
          List.map (rename_fvar old fresh) t,
          List.map (rename_fvar old fresh) e )
  | Loop l -> Loop { l with body = List.map (rename_fvar old fresh) l.body }

let rec map_expr_fexpr f fe =
  match fe with
  | Fconst _ | Fvar _ -> fe
  | Ref (name, subs) -> Ref (name, List.map f subs)
  | Fbin (op, a, b) -> Fbin (op, map_expr_fexpr f a, map_expr_fexpr f b)
  | Fneg a -> Fneg (map_expr_fexpr f a)
  | Fcall (name, args) -> Fcall (name, List.map (map_expr_fexpr f) args)
  | Of_int e -> Of_int (f e)

let rec map_expr_cond f c =
  match c with
  | Fcmp (r, a, b) -> Fcmp (r, map_expr_fexpr f a, map_expr_fexpr f b)
  | Icmp (r, a, b) -> Icmp (r, f a, f b)
  | Not a -> Not (map_expr_cond f a)
  | And (a, b) -> And (map_expr_cond f a, map_expr_cond f b)
  | Or (a, b) -> Or (map_expr_cond f a, map_expr_cond f b)

let rec map_expr f s =
  match s with
  | Assign (name, subs, rhs) -> Assign (name, List.map f subs, map_expr_fexpr f rhs)
  | Iassign (name, subs, rhs) -> Iassign (name, List.map f subs, f rhs)
  | If (c, t, e) ->
      If (map_expr_cond f c, List.map (map_expr f) t, List.map (map_expr f) e)
  | Loop l ->
      Loop
        {
          l with
          lo = f l.lo;
          hi = f l.hi;
          step = f l.step;
          body = List.map (map_expr f) l.body;
        }

let rec fexprs_of_cond c =
  match c with
  | Fcmp (_, a, b) -> [ a; b ]
  | Icmp _ -> []
  | Not a -> fexprs_of_cond a
  | And (a, b) | Or (a, b) -> fexprs_of_cond a @ fexprs_of_cond b

let fexprs_of s =
  match s with
  | Assign (_, _, rhs) -> [ rhs ]
  | Iassign _ -> []
  | If (c, _, _) -> fexprs_of_cond c
  | Loop _ -> []

let rec iter f block =
  List.iter
    (fun s ->
      f s;
      match s with
      | Loop l -> iter f l.body
      | If (_, t, e) ->
          iter f t;
          iter f e
      | Assign _ | Iassign _ -> ())
    block

(* Rendering lives in Fortran_pp; these call a simple inline version so
   Stmt does not depend on it. *)
let rel_to_string = function
  | Eq -> ".EQ."
  | Ne -> ".NE."
  | Lt -> ".LT."
  | Le -> ".LE."
  | Gt -> ".GT."
  | Ge -> ".GE."

let fbinop_to_string = function FAdd -> " + " | FSub -> " - " | FMul -> "*" | FDiv -> "/"

let float_lit x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%g" x

let rec fexpr_to_string_prec prec fe =
  let paren needed s = if needed then "(" ^ s ^ ")" else s in
  match fe with
  | Fconst x -> float_lit x
  | Fvar v -> v
  | Ref (name, subs) ->
      name ^ "(" ^ String.concat ", " (List.map Expr.to_string subs) ^ ")"
  | Fbin (((FAdd | FSub) as op), a, b) ->
      paren (prec > 0)
        (fexpr_to_string_prec 0 a ^ fbinop_to_string op ^ fexpr_to_string_prec 1 b)
  | Fbin (((FMul | FDiv) as op), a, b) ->
      paren (prec > 1)
        (fexpr_to_string_prec 1 a ^ fbinop_to_string op ^ fexpr_to_string_prec 2 b)
  | Fneg a -> "-" ^ fexpr_to_string_prec 2 a
  | Fcall (name, args) ->
      name ^ "(" ^ String.concat ", " (List.map (fexpr_to_string_prec 0) args) ^ ")"
  | Of_int e -> Expr.to_string e

let fexpr_to_string = fexpr_to_string_prec 0

let rec cond_to_string c =
  match c with
  | Fcmp (r, a, b) ->
      fexpr_to_string a ^ " " ^ rel_to_string r ^ " " ^ fexpr_to_string b
  | Icmp (r, a, b) -> Expr.to_string a ^ " " ^ rel_to_string r ^ " " ^ Expr.to_string b
  | Not a -> ".NOT. (" ^ cond_to_string a ^ ")"
  | And (a, b) -> "(" ^ cond_to_string a ^ ") .AND. (" ^ cond_to_string b ^ ")"
  | Or (a, b) -> "(" ^ cond_to_string a ^ ") .OR. (" ^ cond_to_string b ^ ")"

let rec render indent buf s =
  let pad = String.make indent ' ' in
  let line l = Buffer.add_string buf (pad ^ l ^ "\n") in
  match s with
  | Assign (name, [], rhs) -> line (name ^ " = " ^ fexpr_to_string rhs)
  | Assign (name, subs, rhs) ->
      line
        (name ^ "(" ^ String.concat ", " (List.map Expr.to_string subs) ^ ") = "
       ^ fexpr_to_string rhs)
  | Iassign (name, [], rhs) -> line (name ^ " = " ^ Expr.to_string rhs)
  | Iassign (name, subs, rhs) ->
      line
        (name ^ "(" ^ String.concat ", " (List.map Expr.to_string subs) ^ ") = "
       ^ Expr.to_string rhs)
  | If (c, t, []) ->
      line ("IF (" ^ cond_to_string c ^ ") THEN");
      List.iter (render (indent + 2) buf) t;
      line "END IF"
  | If (c, t, e) ->
      line ("IF (" ^ cond_to_string c ^ ") THEN");
      List.iter (render (indent + 2) buf) t;
      line "ELSE";
      List.iter (render (indent + 2) buf) e;
      line "END IF"
  | Loop l ->
      let step_part =
        if Expr.equal l.step (Expr.Int 1) then "" else ", " ^ Expr.to_string l.step
      in
      line
        ("DO " ^ l.index ^ " = " ^ Expr.to_string l.lo ^ ", " ^ Expr.to_string l.hi
       ^ step_part);
      List.iter (render (indent + 2) buf) l.body;
      line "END DO"

let to_string s =
  let buf = Buffer.create 128 in
  render 0 buf s;
  Buffer.contents buf

let block_to_string block =
  let buf = Buffer.create 256 in
  List.iter (render 0 buf) block;
  Buffer.contents buf
