type space = Float_data | Int_data
type kind = Read | Write

type access = {
  array : string;
  subs : Expr.t list;
  kind : kind;
  space : space;
  path : Stmt.path;
  loops : Stmt.loop list;
  pos : int;
}

let accesses block =
  let acc = ref [] in
  let pos = ref 0 in
  let emit ~loops ~path array subs kind space =
    acc := { array; subs; kind; space; path; loops; pos = !pos } :: !acc
  in
  (* Reads inside an integer expression: integer array elements ([Idx])
     and integer scalars.  Loop indices are not memory and are skipped;
     never-written symbols (problem sizes) produce read records that pair
     with no write and are harmless. *)
  let rec expr_reads ~loops ~path (e : Expr.t) =
    match e with
    | Expr.Int _ -> ()
    | Expr.Var v ->
        if not (List.exists (fun (l : Stmt.loop) -> String.equal l.index v) loops)
        then emit ~loops ~path v [] Read Int_data
    | Expr.Bin (_, a, b) | Expr.Min (a, b) | Expr.Max (a, b) ->
        expr_reads ~loops ~path a;
        expr_reads ~loops ~path b
    | Expr.Idx (name, subs) ->
        List.iter (expr_reads ~loops ~path) subs;
        emit ~loops ~path name subs Read Int_data
  in
  let rec fexpr_reads ~loops ~path (fe : Stmt.fexpr) =
    match fe with
    | Stmt.Fconst _ -> ()
    | Stmt.Fvar v -> emit ~loops ~path v [] Read Float_data
    | Stmt.Ref (name, subs) ->
        List.iter (expr_reads ~loops ~path) subs;
        emit ~loops ~path name subs Read Float_data
    | Stmt.Fbin (_, a, b) ->
        fexpr_reads ~loops ~path a;
        fexpr_reads ~loops ~path b
    | Stmt.Fneg a -> fexpr_reads ~loops ~path a
    | Stmt.Fcall (_, args) -> List.iter (fexpr_reads ~loops ~path) args
    | Stmt.Of_int e -> expr_reads ~loops ~path e
  in
  let rec cond_reads ~loops ~path (c : Stmt.cond) =
    match c with
    | Stmt.Fcmp (_, a, b) ->
        fexpr_reads ~loops ~path a;
        fexpr_reads ~loops ~path b
    | Stmt.Icmp (_, a, b) ->
        expr_reads ~loops ~path a;
        expr_reads ~loops ~path b
    | Stmt.Not a -> cond_reads ~loops ~path a
    | Stmt.And (a, b) | Stmt.Or (a, b) ->
        cond_reads ~loops ~path a;
        cond_reads ~loops ~path b
  in
  let rec walk ~loops prefix block =
    List.iteri
      (fun n s ->
        let path = prefix @ [ Stmt.I n ] in
        (match s with
        | Stmt.Assign (name, subs, rhs) ->
            fexpr_reads ~loops ~path rhs;
            List.iter (expr_reads ~loops ~path) subs;
            emit ~loops ~path name subs Write Float_data
        | Stmt.Iassign (name, subs, rhs) ->
            expr_reads ~loops ~path rhs;
            List.iter (expr_reads ~loops ~path) subs;
            emit ~loops ~path name subs Write Int_data
        | Stmt.If (c, t, e) ->
            cond_reads ~loops ~path c;
            incr pos;
            walk ~loops (path @ [ Stmt.Then_ ]) t;
            walk ~loops (path @ [ Stmt.Else_ ]) e
        | Stmt.Loop l ->
            expr_reads ~loops ~path l.lo;
            expr_reads ~loops ~path l.hi;
            expr_reads ~loops ~path l.step;
            incr pos;
            walk ~loops:(loops @ [ l ]) path l.body);
        incr pos)
      block
  in
  walk ~loops:[] [] block;
  List.rev !acc

let arrays_of block =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let rank = List.length a.subs in
      match Hashtbl.find_opt tbl a.array with
      | Some (r, _) -> if rank > r then Hashtbl.replace tbl a.array (rank, a.space)
      | None -> Hashtbl.add tbl a.array (rank, a.space))
    (accesses block);
  Hashtbl.fold (fun name (rank, space) acc -> (name, rank, space) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let index_vars block =
  List.map (fun (_, (l : Stmt.loop)) -> l.index) (Stmt.find_loops block)

let symbolic_params block =
  let indices = index_vars block in
  let written =
    List.filter_map
      (fun a -> match a.kind, a.subs with Write, [] -> Some a.array | _ -> None)
      (accesses block)
  in
  let vars = ref [] in
  let add_expr e = vars := Expr.free_vars e @ !vars in
  let rec walk_f (fe : Stmt.fexpr) =
    match fe with
    | Stmt.Fconst _ | Stmt.Fvar _ -> ()
    | Stmt.Ref (_, subs) -> List.iter add_expr subs
    | Stmt.Fbin (_, a, b) ->
        walk_f a;
        walk_f b
    | Stmt.Fneg a -> walk_f a
    | Stmt.Fcall (_, args) -> List.iter walk_f args
    | Stmt.Of_int e -> add_expr e
  in
  let rec walk_c (c : Stmt.cond) =
    match c with
    | Stmt.Fcmp (_, a, b) ->
        walk_f a;
        walk_f b
    | Stmt.Icmp (_, a, b) ->
        add_expr a;
        add_expr b
    | Stmt.Not a -> walk_c a
    | Stmt.And (a, b) | Stmt.Or (a, b) ->
        walk_c a;
        walk_c b
  in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Assign (_, subs, rhs) ->
          List.iter add_expr subs;
          walk_f rhs
      | Stmt.Iassign (_, subs, rhs) ->
          List.iter add_expr subs;
          add_expr rhs
      | Stmt.If (c, _, _) -> walk_c c
      | Stmt.Loop l ->
          add_expr l.lo;
          add_expr l.hi;
          add_expr l.step)
    block;
  let arrays =
    List.filter_map
      (fun (n, rank, _) -> if rank > 0 then Some n else None)
      (arrays_of block)
  in
  List.sort_uniq String.compare !vars
  |> List.filter (fun v ->
         (not (List.mem v indices))
         && (not (List.mem v written))
         && not (List.mem v arrays))

let fresh ~used base =
  if not (List.mem base used) then base
  else
    let rec go n =
      let candidate = base ^ string_of_int n in
      if List.mem candidate used then go (n + 1) else candidate
    in
    go 2

let plot_iteration_space ~bindings ~width ~height (l : Stmt.loop) =
  let lookup v =
    match List.assoc_opt v bindings with
    | Some n -> n
    | None -> invalid_arg ("plot_iteration_space: unbound " ^ v)
  in
  let no_arr name _ = invalid_arg ("plot_iteration_space: array " ^ name) in
  let inner =
    match l.body with
    | [ Stmt.Loop il ] -> il
    | _ -> invalid_arg "plot_iteration_space: expected depth-2 nest"
  in
  let eval_with i e =
    Expr.eval (fun v -> if String.equal v l.index then i else lookup v) no_arr e
  in
  let olo = Expr.eval lookup no_arr l.lo and ohi = Expr.eval lookup no_arr l.hi in
  let ilo_of i = eval_with i inner.lo and ihi_of i = eval_with i inner.hi in
  let gmin = ref max_int and gmax = ref min_int in
  for i = olo to ohi do
    let lo = ilo_of i and hi = ihi_of i in
    if lo <= hi then begin
      if lo < !gmin then gmin := lo;
      if hi > !gmax then gmax := hi
    end
  done;
  if !gmin > !gmax then "(empty iteration space)\n"
  else begin
    let buf = Buffer.create 256 in
    let rows = min height (ohi - olo + 1) in
    let cols = min width (!gmax - !gmin + 1) in
    let orange = float_of_int (ohi - olo + 1) in
    let irange = float_of_int (!gmax - !gmin + 1) in
    Buffer.add_string buf
      (Printf.sprintf "%s: %d..%d (rows)   %s: %d..%d (cols)\n" l.index olo ohi
         inner.index !gmin !gmax);
    for r = 0 to rows - 1 do
      let i = olo + int_of_float (float_of_int r /. float_of_int rows *. orange) in
      let lo = ilo_of i and hi = ihi_of i in
      for c = 0 to cols - 1 do
        let j = !gmin + int_of_float (float_of_int c /. float_of_int cols *. irange) in
        Buffer.add_char buf (if j >= lo && j <= hi then '#' else '.')
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf
  end
