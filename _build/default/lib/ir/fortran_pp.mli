(** Fortran-style program rendering for listings and golden tests.

    Statement-level rendering lives in {!Stmt.to_string}; this module
    adds subroutine framing with declarations inferred from the body,
    producing listings comparable to the paper's figures. *)

val listing : Stmt.t list -> string
(** Just the executable statements, 0-indented. *)

val subroutine : name:string -> params:string list -> Stmt.t list -> string
(** A full SUBROUTINE with REAL*8 / INTEGER declarations inferred from
    the body's accesses (arrays declared with assumed shape). *)
