(** Canonical affine forms [c0 + c1*v1 + ... + cn*vn] over named variables.

    Dependence testing and section analysis reason about subscripts and
    bounds in this normal form.  Conversion from {!Expr.t} fails (returns
    [None]) on [MIN]/[MAX]/[Idx]/non-constant products, which is exactly
    the set of expressions the paper's tests treat as "too complex". *)

type t

val const : int -> t
val var : string -> t
val zero : t

val of_expr : Expr.t -> t option
(** Affine interpretation of an expression, if it has one.  Division is
    accepted only when it divides all coefficients exactly. *)

val to_expr : t -> Expr.t
(** Lower back to an expression (deterministic variable order). *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t

val coeff : t -> string -> int
(** Coefficient of a variable (0 if absent). *)

val constant : t -> int
(** The constant term. *)

val vars : t -> string list
(** Variables with nonzero coefficient, sorted. *)

val is_const : t -> int option
(** [Some c] when the form has no variables. *)

val equal : t -> t -> bool

val subst : string -> t -> t -> t
(** [subst v by t] replaces variable [v] with the affine form [by]. *)

val eval : (string -> int) -> t -> int

val split_on : string -> t -> int * t
(** [split_on v t] is [(coeff t v, t without v)]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
