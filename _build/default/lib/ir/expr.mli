(** Integer expressions: loop bounds, subscripts, integer scalar code.

    These are the expressions the paper's transformations manipulate —
    loop bounds like [MIN(J + JS - 1, N)], subscripts like [I + IS - 1].
    Variables name loop indices, symbolic problem sizes ([N]), symbolic
    block sizes ([KS]), or integer scalars introduced by transformations
    (IF-inspection counters).  [Idx] reads an element of an integer array
    (needed for inspector-generated bounds such as [KLB(KN)]). *)

type binop = Add | Sub | Mul | Div
(** [Div] is Fortran integer division truncating toward zero; the
    transformations only introduce it in contexts where the operands are
    nonnegative, where it coincides with floor division. *)

type t =
  | Int of int
  | Var of string
  | Bin of binop * t * t
  | Min of t * t
  | Max of t * t
  | Idx of string * t list  (** integer array element, e.g. [KLB(KN)] *)

val equal : t -> t -> bool
val compare : t -> t -> int

(* Smart constructors performing light constant folding. *)

val int : int -> t
val var : string -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val div : t -> t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t
val idx : string -> t list -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val succ : t -> t
val pred : t -> t

val free_vars : t -> string list
(** Variable names occurring in the expression (no duplicates, sorted);
    includes integer array names used in [Idx]. *)

val subst : (string * t) list -> t -> t
(** Capture-free substitution of variables (not of [Idx] array names). *)

val mentions : string -> t -> bool
(** [mentions v e] is true if variable [v] occurs in [e]. *)

val simplify : t -> t
(** Bottom-up constant folding and identity elimination; also normalizes
    [Min]/[Max] with equal arguments. *)

val eval : (string -> int) -> (string -> int list -> int) -> t -> int
(** [eval lookup lookup_arr e] evaluates a closed expression.
    Division by zero raises [Division_by_zero]. *)

val to_string : t -> string
(** Fortran-like rendering, e.g. ["MIN(J + JS - 1, N)"]. *)

val pp : Format.formatter -> t -> unit
