let listing block = Stmt.block_to_string block

let subroutine ~name ~params block =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "SUBROUTINE %s(%s)\n" name (String.concat ", " params));
  let arrays = Ir_util.arrays_of block in
  let decl space =
    let names =
      List.filter_map
        (fun (n, rank, sp) ->
          if sp <> space then None
          else if rank = 0 then Some n
          else
            let stars = String.concat ", " (List.init rank (fun _ -> "*")) in
            Some (Printf.sprintf "%s(%s)" n stars))
        arrays
    in
    if names <> [] then
      Buffer.add_string buf
        (Printf.sprintf "  %s %s\n"
           (match space with
           | Ir_util.Float_data -> "REAL*8"
           | Ir_util.Int_data -> "INTEGER")
           (String.concat ", " names))
  in
  decl Ir_util.Float_data;
  decl Ir_util.Int_data;
  let idx = Ir_util.index_vars block and sym = Ir_util.symbolic_params block in
  if idx @ sym <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  INTEGER %s\n"
         (String.concat ", " (List.sort_uniq String.compare (idx @ sym))));
  List.iter
    (fun s ->
      let rendered = Stmt.to_string s in
      String.split_on_char '\n' rendered
      |> List.iter (fun line ->
             if line <> "" then Buffer.add_string buf ("  " ^ line ^ "\n")))
    block;
  Buffer.add_string buf "END\n";
  Buffer.contents buf
