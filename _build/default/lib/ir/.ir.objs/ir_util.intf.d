lib/ir/ir_util.mli: Expr Stmt
