lib/ir/stmt.mli: Expr
