lib/ir/stmt.ml: Buffer Expr Float List Printf String
