lib/ir/ir_util.ml: Buffer Expr Hashtbl List Printf Stmt String
