lib/ir/fortran_pp.ml: Buffer Ir_util List Printf Stmt String
