lib/ir/fortran_pp.mli: Stmt
