lib/ir/affine.ml: Expr Format Int List Map String
