(** Statements of the loop-nest IR.

    The IR models the Fortran-77 subset the paper's kernels are written
    in: DO loops, IF/THEN/ELSE, assignments to REAL scalars and arrays,
    and the INTEGER scalars/arrays that IF-inspection introduces
    (counters, range tables, flags).  Control flow is structured — the
    paper's [IF (...) GOTO 20] guards are modelled as block IFs.

    Float-valued expressions ({!fexpr}) are kept separate from the
    integer expressions ({!Expr.t}) used for bounds and subscripts; the
    transformations never need to reason about float arithmetic beyond
    moving it around intact. *)

type rel = Eq | Ne | Lt | Le | Gt | Ge

type fbinop = FAdd | FSub | FMul | FDiv

(** Float-valued (REAL) expressions. *)
type fexpr =
  | Fconst of float
  | Fvar of string  (** REAL scalar *)
  | Ref of string * Expr.t list  (** REAL array element *)
  | Fbin of fbinop * fexpr * fexpr
  | Fneg of fexpr
  | Fcall of string * fexpr list  (** intrinsic: ["SQRT"], ["ABS"] *)
  | Of_int of Expr.t  (** integer expression used as a REAL value *)

type cond =
  | Fcmp of rel * fexpr * fexpr
  | Icmp of rel * Expr.t * Expr.t
  | Not of cond
  | And of cond * cond
  | Or of cond * cond

type t =
  | Assign of string * Expr.t list * fexpr
      (** [Assign (a, subs, rhs)]: REAL store [a(subs) = rhs]; empty
          [subs] means a REAL scalar. *)
  | Iassign of string * Expr.t list * Expr.t
      (** INTEGER store, same convention. *)
  | If of cond * t list * t list
  | Loop of loop

and loop = {
  index : string;
  lo : Expr.t;
  hi : Expr.t;
  step : Expr.t;
  body : t list;
}

val loop : ?step:Expr.t -> string -> Expr.t -> Expr.t -> t list -> t
(** [loop i lo hi body] builds a DO loop with step 1 by default. *)

val equal : t -> t -> bool
val equal_block : t list -> t list -> bool
val equal_fexpr : fexpr -> fexpr -> bool

(** {2 Paths}

    A path addresses a statement inside a block: [I n] selects the [n]-th
    statement of the current block; when the selected statement is a
    {!Loop} the following components address its body, and when it is an
    {!If} the next component must be [Then_] or [Else_]. *)

type hop = I of int | Then_ | Else_
type path = hop list

val get_at : t list -> path -> t
(** Raises [Invalid_argument] on a bad path. *)

val replace_at : t list -> path -> t list -> t list
(** [replace_at block path stmts] splices [stmts] in place of the
    statement at [path]. *)

val update_loop_at : t list -> path -> (loop -> t list) -> t list
(** Like {!replace_at} but checks the target is a loop and passes it to
    the rewriting function. *)

val find_loops : t list -> (path * loop) list
(** All loops in preorder, with their paths. *)

val loop_nest : t -> (loop list * t list) option
(** [loop_nest s] unwinds a perfectly nested prefix: returns the loops
    from outermost to innermost and the innermost non-singleton body.
    [None] when [s] is not a loop. *)

(** {2 Substitution and traversal} *)

val subst_fexpr : (string * Expr.t) list -> fexpr -> fexpr
(** Substitute integer variables occurring in subscripts and [Of_int]. *)

val subst_cond : (string * Expr.t) list -> cond -> cond

val subst : (string * Expr.t) list -> t -> t
(** Substitute integer variables everywhere (bounds, subscripts,
    conditions).  Loop indices shadow: a binding for a loop's own index
    is not applied inside that loop. *)

val subst_block : (string * Expr.t) list -> t list -> t list

val rename_fvar : string -> string -> t -> t
(** [rename_fvar old fresh s] renames a REAL scalar variable. *)

val map_expr : (Expr.t -> Expr.t) -> t -> t
(** Apply a rewriting to every integer expression in the statement
    (bounds, subscripts, integer assignments, conditions). *)

val fexprs_of : t -> fexpr list
(** The float expressions directly contained in one statement (not
    recursing into nested statements). *)

val iter : (t -> unit) -> t list -> unit
(** Preorder traversal of all statements. *)

val to_string : t -> string
val block_to_string : t list -> string
