module Smap = Map.Make (String)

type t = { terms : int Smap.t; const : int }

let norm terms = Smap.filter (fun _ c -> c <> 0) terms
let const c = { terms = Smap.empty; const = c }
let zero = const 0
let var v = { terms = Smap.singleton v 1; const = 0 }

let add a b =
  {
    terms =
      norm
        (Smap.union (fun _ x y -> Some (x + y)) a.terms b.terms);
    const = a.const + b.const;
  }

let scale k a =
  if k = 0 then zero
  else { terms = Smap.map (fun c -> k * c) a.terms; const = k * a.const }

let neg a = scale (-1) a
let sub a b = add a (neg b)

let rec of_expr (e : Expr.t) =
  match e with
  | Expr.Int n -> Some (const n)
  | Expr.Var v -> Some (var v)
  | Expr.Bin (Expr.Add, a, b) -> combine add a b
  | Expr.Bin (Expr.Sub, a, b) -> combine sub a b
  | Expr.Bin (Expr.Mul, a, b) -> (
      match of_expr a, of_expr b with
      | Some fa, Some fb -> (
          match is_const_form fa, is_const_form fb with
          | Some k, _ -> Some (scale k fb)
          | _, Some k -> Some (scale k fa)
          | None, None -> None)
      | _ -> None)
  | Expr.Bin (Expr.Div, a, b) -> (
      match of_expr a, of_expr b with
      | Some fa, Some fb -> (
          match is_const_form fb with
          | Some k
            when k <> 0 && fa.const mod k = 0
                 && Smap.for_all (fun _ c -> c mod k = 0) fa.terms ->
              Some { terms = Smap.map (fun c -> c / k) fa.terms; const = fa.const / k }
          | Some _ | None -> None)
      | _ -> None)
  | Expr.Min _ | Expr.Max _ | Expr.Idx _ -> None

and combine op a b =
  match of_expr a, of_expr b with
  | Some fa, Some fb -> Some (op fa fb)
  | _ -> None

and is_const_form a = if Smap.is_empty a.terms then Some a.const else None

let is_const = is_const_form
let coeff a v = match Smap.find_opt v a.terms with Some c -> c | None -> 0
let constant a = a.const
let vars a = List.map fst (Smap.bindings a.terms)
let equal a b = a.const = b.const && Smap.equal Int.equal a.terms b.terms

let split_on v a = (coeff a v, { a with terms = Smap.remove v a.terms })

let subst v by a =
  let c, rest = split_on v a in
  add rest (scale c by)

let eval lookup a =
  Smap.fold (fun v c acc -> acc + (c * lookup v)) a.terms a.const

let to_expr a =
  let open Expr in
  let terms =
    Smap.fold
      (fun v c acc ->
        let t = if c = 1 then Var v else mul (Int c) (Var v) in
        t :: acc)
      a.terms []
  in
  let body =
    match List.rev terms with
    | [] -> Int a.const
    | first :: rest ->
        let sum = List.fold_left add first rest in
        if a.const = 0 then sum else add sum (Int a.const)
  in
  simplify body

let to_string a = Expr.to_string (to_expr a)
let pp fmt a = Format.pp_print_string fmt (to_string a)
