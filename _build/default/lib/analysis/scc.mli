(** Tarjan's strongly connected components over small integer graphs.

    Used to find recurrences: statements in a cycle of the dependence
    graph must stay together under loop distribution. *)

val compute : n:int -> succ:(int -> int list) -> int list list
(** [compute ~n ~succ] returns the SCCs of the graph on nodes
    [0 .. n-1] in topological order of the condensation (sources
    first: every edge of the condensed graph goes from an earlier
    component to a later one).  Components are sorted internally. *)

val condensation :
  n:int -> succ:(int -> int list) -> int list list * (int * int) list
(** SCCs in topological order (sources first) plus the edges of the
    condensed acyclic graph as (component index, component index). *)
