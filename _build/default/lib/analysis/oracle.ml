exception Unsupported of string

type real_dep = { src_occ : int; snk_occ : int; has_write : bool }

type event = { time : int; occ : int; kind : Ir_util.kind }

let run ~bindings block =
  let statics = Array.of_list (Ir_util.accesses block) in
  (* Occurrences grouped by their statement path, preserving order. *)
  let by_path = Hashtbl.create 16 in
  Array.iteri
    (fun i (a : Ir_util.access) ->
      let existing = try Hashtbl.find by_path a.path with Not_found -> [] in
      Hashtbl.replace by_path a.path (existing @ [ i ]))
    statics;
  let scope = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace scope k v) bindings;
  let lookup v =
    match Hashtbl.find_opt scope v with
    | Some n -> n
    | None -> raise (Unsupported ("unbound variable " ^ v))
  in
  let lookup_arr name _ = raise (Unsupported ("integer array " ^ name)) in
  let eval e = Expr.eval lookup lookup_arr e in
  let time = ref 0 in
  let events : (string * int list, event list) Hashtbl.t = Hashtbl.create 1024 in
  let record occ =
    let a = statics.(occ) in
    let addr = (a.array, List.map eval a.subs) in
    let existing = try Hashtbl.find events addr with Not_found -> [] in
    Hashtbl.replace events addr ({ time = !time; occ; kind = a.kind } :: existing)
  in
  let rec walk prefix stmts =
    List.iteri
      (fun n s ->
        let path = prefix @ [ Stmt.I n ] in
        match s with
        | Stmt.Assign _ | Stmt.Iassign _ ->
            let occs = try Hashtbl.find by_path path with Not_found -> [] in
            List.iter record occs;
            incr time
        | Stmt.If _ -> raise (Unsupported "IF statement")
        | Stmt.Loop l ->
            let lo = eval l.lo and hi = eval l.hi and step = eval l.step in
            if step <= 0 then raise (Unsupported "non-positive step");
            let saved = Hashtbl.find_opt scope l.index in
            let i = ref lo in
            while !i <= hi do
              Hashtbl.replace scope l.index !i;
              walk path l.body;
              i := !i + step
            done;
            (match saved with
            | Some v -> Hashtbl.replace scope l.index v
            | None -> Hashtbl.remove scope l.index))
      stmts
  in
  walk [] block;
  let deps = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _addr evs ->
      let evs = List.sort (fun a b -> Int.compare a.time b.time) evs in
      let rec pairs = function
        | [] -> ()
        | e :: rest ->
            List.iter
              (fun e' ->
                (* Same time step means same statement: the textual order
                   within the statement (reads before write) decides. *)
                let ordered =
                  e.time < e'.time || (e.time = e'.time && e.occ < e'.occ)
                in
                if ordered then
                  let has_write =
                    e.kind = Ir_util.Write || e'.kind = Ir_util.Write
                  in
                  Hashtbl.replace deps (e.occ, e'.occ, has_write) ())
              rest;
            pairs rest
      in
      pairs evs)
    events;
  Hashtbl.fold
    (fun (src_occ, snk_occ, has_write) () acc -> { src_occ; snk_occ; has_write } :: acc)
    deps []
  |> List.sort compare

let agrees ~bindings ~ctx block =
  let real = run ~bindings block in
  let statics = Array.of_list (Ir_util.accesses block) in
  let reported = Dependence.all ~include_input:true ~ctx block in
  (* The dependence analysis re-enumerates accesses, so records must be
     matched structurally, not physically. *)
  let same (a : Ir_util.access) (b : Ir_util.access) =
    a.path = b.path && a.kind = b.kind
    && String.equal a.array b.array
    && List.length a.subs = List.length b.subs
    && List.for_all2 Expr.equal a.subs b.subs
  in
  let found (r : real_dep) =
    List.exists
      (fun (d : Dependence.t) ->
        same d.source statics.(r.src_occ) && same d.sink statics.(r.snk_occ))
      reported
  in
  match List.find_opt (fun r -> r.has_write && not (found r)) real with
  | None -> Ok "conservative"
  | Some r ->
      let a = statics.(r.src_occ) and b = statics.(r.snk_occ) in
      Error
        (Printf.sprintf "missed dependence: %s(occ %d) -> %s(occ %d)" a.array
           r.src_occ b.array r.snk_occ)
