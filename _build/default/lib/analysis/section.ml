type dim = { los : Affine.t list; his : Affine.t list; step : int }
type t = { array : string; dims : dim list; exact : bool }

let max_candidates = 4

let dedup afs =
  let rec go acc = function
    | [] -> List.rev acc
    | a :: rest ->
        if List.exists (Affine.equal a) acc then go acc rest else go (a :: acc) rest
  in
  let r = go [] afs in
  if List.length r > max_candidates then
    (* Keep the primary candidates only. *)
    List.filteri (fun i _ -> i < max_candidates) r
  else r

(* Valid affine lower-bound candidates of a loop's index: the loop runs
   from [lo], so any affine arm of a MAX lower bound is a valid lower
   bound (MAX >= each arm... i.e. each arm <= true lo).  [exact] is false
   when candidates come from MAX arms. *)
let loop_lo_bounds (l : Stmt.loop) =
  match Affine.of_expr l.lo with
  | Some a -> ([ a ], true)
  | None -> (
      match l.lo with
      | Expr.Max (a, b) ->
          let cands = List.filter_map Affine.of_expr [ a; b ] in
          (cands, false)
      | _ -> ([], false))

let loop_hi_bounds (l : Stmt.loop) =
  match Affine.of_expr l.hi with
  | Some a -> ([ a ], true)
  | None -> (
      match l.hi with
      | Expr.Min (a, b) ->
          let cands = List.filter_map Affine.of_expr [ a; b ] in
          (cands, false)
      | _ -> ([], false))

(* Eliminate the loop indices of [within] from the affine subscript [e],
   producing candidate interval bounds.  Loops are processed
   innermost-first so bounds referencing outer contained indices get those
   indices eliminated later. *)
let interval_of ~within e =
  let exact = ref true in
  let rec elim loops (los, his) =
    match loops with
    | [] -> Some (los, his)
    | (l : Stmt.loop) :: outer ->
        let lo_cands, lo_exact = loop_lo_bounds l in
        let hi_cands, hi_exact = loop_hi_bounds l in
        let step dir afs =
          (* dir = true: this is the lower end (minimize); substitute the
             index's lower bounds for positive coefficients and upper
             bounds for negative ones. *)
          let result =
            List.concat_map
              (fun aff ->
                let c = Affine.coeff aff l.index in
                if c = 0 then [ aff ]
                else begin
                  let cands, ex =
                    if (c > 0) = dir then ((lo_cands, lo_exact) : _ * bool)
                    else (hi_cands, hi_exact)
                  in
                  if not ex then exact := false;
                  if cands = [] then []
                  else List.map (fun b -> Affine.subst l.index b aff) cands
                end)
              afs
          in
          dedup result
        in
        let los' = step true los and his' = step false his in
        if los' = [] || his' = [] then None else elim outer (los', his')
  in
  match elim (List.rev within) ([ e ], [ e ]) with
  | Some (los, his) -> Some (los, his, !exact)
  | None -> None

let dim_of_subscript ~within sub =
  match Affine.of_expr sub with
  | None -> None
  | Some e -> (
      match interval_of ~within e with
      | None -> None
      | Some (los, his, exact) ->
          let contained =
            List.filter (fun (l : Stmt.loop) -> Affine.coeff e l.index <> 0) within
          in
          let step =
            match contained with
            | [ l ] -> (
                match l.step with
                | Expr.Int s -> max 1 (abs (s * Affine.coeff e l.index))
                | _ -> 1)
            | _ -> 1
          in
          let exact =
            exact && List.length contained <= 1
            && List.length los = 1 && List.length his = 1
          in
          Some ({ los; his; step }, exact))

let of_ref ~ctx:_ ~within array subs =
  let rec build dims exact = function
    | [] -> Some { array; dims = List.rev dims; exact }
    | sub :: rest -> (
        match dim_of_subscript ~within sub with
        | Some (d, ex) -> build (d :: dims) (exact && ex) rest
        | None -> None)
  in
  build [] true subs

let of_access ~ctx ~within (acc : Ir_util.access) =
  of_ref ~ctx ~within acc.array acc.subs

let same_shape s1 s2 =
  String.equal s1.array s2.array && List.length s1.dims = List.length s2.dims

let dim_separated ctx d1 d2 =
  (* Some valid upper bound of d1 lies strictly below some valid lower
     bound of d2 (then d1's true range is entirely below d2's), or
     symmetrically. *)
  List.exists (fun h -> List.exists (fun l -> Symbolic.prove_lt ctx h l) d2.los) d1.his
  || List.exists
       (fun h -> List.exists (fun l -> Symbolic.prove_lt ctx h l) d1.los)
       d2.his

let disjoint ctx s1 s2 =
  same_shape s1 s2 && List.exists2 (dim_separated ctx) s1.dims s2.dims

(* d1's true range inside d2's: some candidate lo of d1 dominates every
   candidate lo of d2 (hence dominates d2's true lo), and dually. *)
let dim_subset ctx d1 d2 =
  List.exists
    (fun l1 -> List.for_all (fun l2 -> Symbolic.prove_ge ctx l1 l2) d2.los)
    d1.los
  && List.exists
       (fun h1 -> List.for_all (fun h2 -> Symbolic.prove_le ctx h1 h2) d2.his)
       d1.his
  && (d2.step = 1
     || (d1.step mod d2.step = 0
        &&
        match d1.los, d2.los with
        | [ l1 ], [ l2 ] -> (
            match Affine.is_const (Affine.sub l1 l2) with
            | Some delta -> delta mod d2.step = 0
            | None -> false)
        | _ -> false))

let subset ctx s1 s2 =
  same_shape s1 s2 && List.for_all2 (dim_subset ctx) s1.dims s2.dims

let equal ctx s1 s2 = subset ctx s1 s2 && subset ctx s2 s1

let pairs xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs
let lo_pairs d1 d2 = pairs d1.los d2.los
let hi_pairs d1 d2 = pairs d1.his d2.his

let to_string s =
  let dim_str d =
    let first = function a :: _ -> Affine.to_string a | [] -> "?" in
    let base = first d.los ^ ":" ^ first d.his in
    if d.step = 1 then base else base ^ ":" ^ string_of_int d.step
  in
  s.array ^ "(" ^ String.concat ", " (List.map dim_str s.dims) ^ ")"
  ^ if s.exact then "" else " (hull)"
