(** Brute-force dependence ground truth on concrete bounds.

    Enumerates every iteration of a straight-line loop nest (no IFs, no
    integer-array bounds), recording each access's address and time
    stamp, and reports which static access pairs really have a
    dependence.  Used by the test suite to validate that the symbolic
    analysis is conservative: every real dependence must be reported by
    {!Dependence.all}, and [Dependence] claiming independence must imply
    absence here. *)

exception Unsupported of string

type real_dep = {
  src_occ : int;  (** index into [Ir_util.accesses block] *)
  snk_occ : int;
  has_write : bool;
}

val run : bindings:(string * int) list -> Stmt.t list -> real_dep list
(** All (source-occurrence, sink-occurrence) pairs with a common address
    and source executing strictly before sink, plus same-statement pairs
    at the same time step in textual order.  [bindings] closes symbolic
    parameters. *)

val agrees :
  bindings:(string * int) list ->
  ctx:Symbolic.t ->
  Stmt.t list ->
  (string, string) result
(** Check conservativeness of the symbolic analysis against the ground
    truth on this block; [Error msg] describes the first real dependence
    the analysis missed. *)
