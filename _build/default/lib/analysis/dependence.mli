(** Data-dependence analysis over the loop-nest IR.

    Implements the classical subscript tests (ZIV, strong SIV, GCD) with
    symbolic constants, producing hybrid distance/direction vectors over
    the loops common to the two accesses, plus a section-based
    independence test: if the sections touched by the two references over
    the whole execution of their common nest are provably disjoint, no
    dependence exists — this is the refinement that makes index-set
    splitting pay off, per the paper.

    The tests are conservative: [dependences] may report a dependence
    that does not exist (with direction [*]), but when it reports none,
    none exists (validated against {!Oracle} in the test suite). *)

type kind = Flow | Anti | Output | Input

(** Possible source-to-sink iteration differences on one common loop. *)
type delem = {
  lt : bool;  (** sink at a later iteration *)
  eq : bool;  (** same iteration *)
  gt : bool;  (** would be negative: only as input to vector pruning *)
  dist : int option;  (** exact distance when known *)
}

type t = {
  kind : kind;
  source : Ir_util.access;
  sink : Ir_util.access;
  vector : delem list;  (** per common loop, outermost first *)
  carrier : int option;
      (** index (0-based, outermost first) of the carrying loop among the
          common loops; [None] = loop-independent *)
}

val common_loops : Ir_util.access -> Ir_util.access -> Stmt.loop list

val between :
  ctx:Symbolic.t -> Ir_util.access -> Ir_util.access -> t list
(** All dependences with [source] executing before [sink] — both those
    carried by a common loop (leftmost non-[=] direction is [<]) and the
    loop-independent one when the first access textually precedes the
    second.  The pair must reference the same array with at least one
    write (reads-only pairs yield [Input] dependences and are produced
    too; filter by kind if unwanted). *)

val all :
  ?include_input:bool -> ctx:Symbolic.t -> Stmt.t list -> t list
(** Dependences between all access pairs of the block. *)

val carried_by : t -> Stmt.loop -> bool
(** Is the dependence carried by this loop (physical identity against
    the common-loop list)? *)

val kind_to_string : kind -> string
val to_string : t -> string
