(** Bounded regular section analysis (Havlak–Kennedy style).

    A section describes the portion of an array accessed by a reference
    over the whole execution of a loop nest, as per-dimension
    [lo : hi : step] ranges with affine, possibly symbolic bounds — the
    representation the paper says is "equivalent to Fortran 90 array
    notation" and the input to Procedure IndexSetSplit.

    Loop bounds of the form [MIN(a, b)] / [MAX(a, b)] make a dimension's
    true bound the min/max of several affine candidates; a dimension
    therefore carries a *list* of valid lower bounds (the true lower
    bound is their maximum) and of valid upper bounds (true = minimum).
    Tests quantify over the candidates, so e.g. {!disjoint} can use
    whichever [MIN] arm the context can compare.

    Sections are rectangular hulls: per-dimension the ranges are exact
    for affine single-index subscripts, but correlations between
    dimensions are not represented.  {!disjoint} is sound
    unconditionally; {!subset}/{!equal} are sound on the hulls. *)

type dim = {
  los : Affine.t list;  (** valid lower bounds; true lo = max of these *)
  his : Affine.t list;  (** valid upper bounds; true hi = min of these *)
  step : int;
}

type t = { array : string; dims : dim list; exact : bool }

val of_access :
  ctx:Symbolic.t -> within:Stmt.loop list -> Ir_util.access -> t option
(** [of_access ~ctx ~within acc] is the section touched by [acc] over the
    full execution of the loops [within] (outermost first; indices of
    loops not in [within] stay symbolic).  [None] when a subscript is not
    affine or a needed loop bound has no affine candidate. *)

val of_ref :
  ctx:Symbolic.t -> within:Stmt.loop list -> string -> Expr.t list -> t option

val disjoint : Symbolic.t -> t -> t -> bool
(** Provably no common element: in some dimension, a valid upper bound of
    one section lies strictly below a valid lower bound of the other. *)

val subset : Symbolic.t -> t -> t -> bool
val equal : Symbolic.t -> t -> t -> bool

val lo_pairs : dim -> dim -> (Affine.t * Affine.t) list
(** All candidate (lo of first, lo of second) pairs, for boundary
    search in Procedure IndexSetSplit. *)

val hi_pairs : dim -> dim -> (Affine.t * Affine.t) list

val to_string : t -> string
(** Fortran-90-like notation with the primary bound candidates, e.g.
    [A(K+1:N, K:K+KS-1)]. *)
