lib/analysis/section.ml: Affine Expr Ir_util List Stmt String Symbolic
