lib/analysis/symbolic.mli: Affine Format Stmt
