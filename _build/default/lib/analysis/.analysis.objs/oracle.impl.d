lib/analysis/oracle.ml: Array Dependence Expr Hashtbl Int Ir_util List Printf Stmt String
