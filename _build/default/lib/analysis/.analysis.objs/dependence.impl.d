lib/analysis/dependence.ml: Affine Array Expr Ir_util List Printf Section Stmt String Symbolic
