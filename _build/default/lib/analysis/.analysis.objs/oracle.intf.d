lib/analysis/oracle.mli: Stmt Symbolic
