lib/analysis/dependence.mli: Ir_util Stmt Symbolic
