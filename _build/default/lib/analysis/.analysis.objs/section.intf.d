lib/analysis/section.mli: Affine Expr Ir_util Stmt Symbolic
