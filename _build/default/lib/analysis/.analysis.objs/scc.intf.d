lib/analysis/scc.mli:
