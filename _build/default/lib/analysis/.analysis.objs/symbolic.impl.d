lib/analysis/symbolic.ml: Affine Expr Format Hashtbl List Stmt
