lib/analysis/scc.ml: Array Int List
