lib/analysis/ddg.mli: Dependence Stmt Symbolic
