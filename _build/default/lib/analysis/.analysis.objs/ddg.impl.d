lib/analysis/ddg.ml: Dependence List Scc Stmt
