let compute ~n ~succ =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comps = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succ v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> assert false
      in
      comps := List.sort Int.compare (pop []) :: !comps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  !comps

let condensation ~n ~succ =
  (* Tarjan emits components in reverse topological order of the
     condensation; [compute] accumulates by consing, so the result is in
     topological order (sources first). *)
  let comps = compute ~n ~succ in
  let comp_of = Array.make n (-1) in
  List.iteri (fun ci nodes -> List.iter (fun v -> comp_of.(v) <- ci) nodes) comps;
  let edges = ref [] in
  for v = 0 to n - 1 do
    List.iter
      (fun w ->
        if comp_of.(v) <> comp_of.(w) then begin
          let e = (comp_of.(v), comp_of.(w)) in
          if not (List.mem e !edges) then edges := e :: !edges
        end)
      (succ v)
  done;
  (comps, !edges)
