(** Statement-level dependence graph of a loop body.

    Nodes are the immediate statements of the loop's body.  An edge
    [a -> b] exists when some dependence runs from an access in
    statement [a] to an access in statement [b] and is either
    loop-independent or carried by the loop itself.  Strongly connected
    components of this graph are the minimal distribution blocks: loop
    distribution may split the body only between components, in
    topological order (Allen–Kennedy). *)

type edge = { from_stmt : int; to_stmt : int; dep : Dependence.t }

type t = {
  loop : Stmt.loop;
  n : int;  (** number of body statements *)
  edges : edge list;
  sccs : int list list;  (** topological order, each sorted *)
}

val build : ctx:Symbolic.t -> Stmt.loop -> t

val same_scc : t -> int -> int -> bool

val preventing_edges : t -> int -> int -> Dependence.t list
(** [preventing_edges g a b] — when [a] and [b] sit in one SCC, the
    dependences on edges inside that SCC (the recurrence a transformation
    like distribution must break, and the input to IndexSetSplit). *)

val distribution_order : t -> int list list option
(** Partition of body-statement indices into distribution blocks in a
    legal execution order, or [None] when the body is a single SCC
    (distribution impossible). *)
