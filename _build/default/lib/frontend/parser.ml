exception Parse_error of { line : int; message : string }

type state = { toks : (Lexer.token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let line_of st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st message = raise (Parse_error { line = line_of st; message })

let expect st tok what =
  if peek st = tok then advance st else fail st ("expected " ^ what)

let skip_newlines st =
  while peek st = Lexer.Newline do
    advance st
  done

let end_of_statement st =
  match peek st with
  | Lexer.Newline -> skip_newlines st
  | Lexer.Eof -> ()
  | _ -> fail st "expected end of statement"

let is_integer_name name =
  String.length name > 0 && name.[0] >= 'I' && name.[0] <= 'N'

let intrinsics = [ "SQRT"; "DSQRT"; "ABS"; "DABS"; "SIGN"; "DSIGN" ]

(* ---------- integer expressions ---------- *)

let rec iexpr st =
  let rec additive acc =
    match peek st with
    | Lexer.Plus ->
        advance st;
        additive (Expr.add acc (iterm st))
    | Lexer.Minus ->
        advance st;
        additive (Expr.sub acc (iterm st))
    | _ -> acc
  in
  additive (iterm st)

and iterm st =
  let rec multiplicative acc =
    match peek st with
    | Lexer.Star ->
        advance st;
        multiplicative (Expr.mul acc (iatom st))
    | Lexer.Slash ->
        advance st;
        multiplicative (Expr.div acc (iatom st))
    | _ -> acc
  in
  multiplicative (iatom st)

and iatom st =
  match peek st with
  | Lexer.Int_lit n ->
      advance st;
      Expr.Int n
  | Lexer.Minus ->
      advance st;
      Expr.sub (Expr.Int 0) (iatom st)
  | Lexer.Lparen ->
      advance st;
      let e = iexpr st in
      expect st Lexer.Rparen ")";
      e
  | Lexer.Ident ("MIN" | "MAX" as f) ->
      advance st;
      expect st Lexer.Lparen "(";
      let a = iexpr st in
      expect st Lexer.Comma ",";
      let b = iexpr st in
      (* MIN/MAX may take more arguments; fold them. *)
      let rec more acc =
        match peek st with
        | Lexer.Comma ->
            advance st;
            let c = iexpr st in
            more (if f = "MIN" then Expr.min_ acc c else Expr.max_ acc c)
        | _ -> acc
      in
      let base = if f = "MIN" then Expr.min_ a b else Expr.max_ a b in
      let e = more base in
      expect st Lexer.Rparen ")";
      e
  | Lexer.Ident name when is_integer_name name || name = "LAST" ->
      advance st;
      if peek st = Lexer.Lparen then begin
        advance st;
        let subs = ref [ iexpr st ] in
        while peek st = Lexer.Comma do
          advance st;
          subs := iexpr st :: !subs
        done;
        expect st Lexer.Rparen ")";
        Expr.Idx (name, List.rev !subs)
      end
      else Expr.Var name
  | Lexer.Ident name -> fail st ("REAL entity " ^ name ^ " in an INTEGER expression")
  | _ -> fail st "expected an integer expression"

(* ---------- float expressions ---------- *)

let rec fexpr st =
  let rec additive acc =
    match peek st with
    | Lexer.Plus ->
        advance st;
        additive (Stmt.Fbin (Stmt.FAdd, acc, fterm st))
    | Lexer.Minus ->
        advance st;
        additive (Stmt.Fbin (Stmt.FSub, acc, fterm st))
    | _ -> acc
  in
  additive (fterm st)

and fterm st =
  let rec multiplicative acc =
    match peek st with
    | Lexer.Star ->
        advance st;
        multiplicative (Stmt.Fbin (Stmt.FMul, acc, fatom st))
    | Lexer.Slash ->
        advance st;
        multiplicative (Stmt.Fbin (Stmt.FDiv, acc, fatom st))
    | _ -> acc
  in
  multiplicative (fatom st)

and fatom st =
  match peek st with
  | Lexer.Float_lit x ->
      advance st;
      Stmt.Fconst x
  | Lexer.Int_lit _ | Lexer.Ident ("MIN" | "MAX" | "LAST") ->
      Stmt.Of_int (iexpr st)
  | Lexer.Minus ->
      advance st;
      Stmt.Fneg (fatom st)
  | Lexer.Lparen ->
      advance st;
      let e = fexpr st in
      expect st Lexer.Rparen ")";
      e
  | Lexer.Ident f when List.mem f intrinsics ->
      advance st;
      expect st Lexer.Lparen "(";
      let args = ref [ fexpr st ] in
      while peek st = Lexer.Comma do
        advance st;
        args := fexpr st :: !args
      done;
      expect st Lexer.Rparen ")";
      Stmt.Fcall (f, List.rev !args)
  | Lexer.Ident name when is_integer_name name -> Stmt.Of_int (iexpr st)
  | Lexer.Ident name ->
      advance st;
      if peek st = Lexer.Lparen then begin
        advance st;
        let subs = ref [ iexpr st ] in
        while peek st = Lexer.Comma do
          advance st;
          subs := iexpr st :: !subs
        done;
        expect st Lexer.Rparen ")";
        Stmt.Ref (name, List.rev !subs)
      end
      else Stmt.Fvar name
  | _ -> fail st "expected an expression"

(* ---------- conditions ---------- *)

let as_int (fe : Stmt.fexpr) =
  match fe with Stmt.Of_int e -> Some e | _ -> None

let rec cond st = cond_or st

and cond_or st =
  let left = cond_and st in
  if peek st = Lexer.Or_op then begin
    advance st;
    Stmt.Or (left, cond_or st)
  end
  else left

and cond_and st =
  let left = cond_not st in
  if peek st = Lexer.And_op then begin
    advance st;
    Stmt.And (left, cond_and st)
  end
  else left

and cond_not st =
  if peek st = Lexer.Not_op then begin
    advance st;
    Stmt.Not (cond_not st)
  end
  else cond_primary st

and cond_primary st =
  (* '(' could open a nested condition or a parenthesized operand; try the
     condition first and backtrack. *)
  if peek st = Lexer.Lparen then begin
    let saved = st.pos in
    advance st;
    match cond st with
    | c when peek st = Lexer.Rparen ->
        advance st;
        c
    | _ ->
        st.pos <- saved;
        comparison st
    | exception Parse_error _ ->
        st.pos <- saved;
        comparison st
  end
  else comparison st

and comparison st =
  let left = fexpr st in
  match peek st with
  | Lexer.Rel r -> (
      advance st;
      let right = fexpr st in
      match as_int left, as_int right with
      | Some a, Some b -> Stmt.Icmp (r, a, b)
      | _ -> Stmt.Fcmp (r, left, right))
  | _ -> fail st "expected a relational operator"

(* ---------- statements ---------- *)

let rec statements st ~until =
  skip_newlines st;
  let out = ref [] in
  let rec loop () =
    match peek st with
    | Lexer.Eof -> ()
    | Lexer.Ident name when List.mem name until -> ()
    | Lexer.Ident "END" -> (
        match fst st.toks.(st.pos + 1) with
        | Lexer.Ident suffix when List.mem ("END" ^ suffix) until -> ()
        | _ -> fail st "unexpected END")
    | _ ->
        out := statement st :: !out;
        skip_newlines st;
        loop ()
  in
  loop ();
  List.rev !out

and close_block st keyword =
  (* Accept ENDDO / END DO / ENDIF / END IF. *)
  (match peek st with
  | Lexer.Ident k when k = "END" ^ keyword -> advance st
  | Lexer.Ident "END" -> (
      advance st;
      match peek st with
      | Lexer.Ident k when k = keyword -> advance st
      | _ -> fail st ("expected END " ^ keyword))
  | _ -> fail st ("expected END " ^ keyword));
  end_of_statement st

and statement st : Ext.stmt =
  match peek st with
  | Lexer.Ident "DO" ->
      advance st;
      let index =
        match peek st with
        | Lexer.Ident name ->
            advance st;
            name
        | _ -> fail st "expected a loop index"
      in
      expect st Lexer.Assign_op "=";
      let lo = iexpr st in
      expect st Lexer.Comma ",";
      let hi = iexpr st in
      let step =
        if peek st = Lexer.Comma then begin
          advance st;
          Some (iexpr st)
        end
        else None
      in
      end_of_statement st;
      let body = statements st ~until:[ "ENDDO" ] in
      close_block st "DO";
      (match step with
      | None -> Ext.Do { index; lo; hi; body }
      | Some s -> (
          match plain_block body with
          | Some plain -> Ext.Exec (Stmt.Loop { index; lo; hi; step = s; body = plain })
          | None -> fail st "stepped DO cannot contain extended statements"))
  | Lexer.Ident "BLOCK" ->
      advance st;
      (match peek st with
      | Lexer.Ident "DO" -> advance st
      | _ -> fail st "expected DO after BLOCK");
      let index =
        match peek st with
        | Lexer.Ident name ->
            advance st;
            name
        | _ -> fail st "expected a loop index"
      in
      expect st Lexer.Assign_op "=";
      let lo = iexpr st in
      expect st Lexer.Comma ",";
      let hi = iexpr st in
      end_of_statement st;
      let body = statements st ~until:[ "ENDDO" ] in
      close_block st "DO";
      Ext.Block_do { index; lo; hi; body }
  | Lexer.Ident "IN" ->
      advance st;
      let block_index =
        match peek st with
        | Lexer.Ident name ->
            advance st;
            name
        | _ -> fail st "expected a BLOCK DO index"
      in
      (match peek st with
      | Lexer.Ident "DO" -> advance st
      | _ -> fail st "expected DO");
      let index =
        match peek st with
        | Lexer.Ident name ->
            advance st;
            name
        | _ -> fail st "expected a loop index"
      in
      let bounds =
        if peek st = Lexer.Assign_op then begin
          advance st;
          let lo = iexpr st in
          expect st Lexer.Comma ",";
          let hi = iexpr st in
          Some (lo, hi)
        end
        else None
      in
      end_of_statement st;
      let body = statements st ~until:[ "ENDDO" ] in
      close_block st "DO";
      Ext.In_do { block_index; index; bounds; body }
  | Lexer.Ident "IF" ->
      advance st;
      expect st Lexer.Lparen "(";
      let c = cond st in
      expect st Lexer.Rparen ")";
      (match peek st with
      | Lexer.Ident "THEN" -> advance st
      | _ -> fail st "expected THEN");
      end_of_statement st;
      let then_body = statements st ~until:[ "ELSE"; "ENDIF" ] in
      let else_body =
        match peek st with
        | Lexer.Ident "ELSE" ->
            advance st;
            end_of_statement st;
            statements st ~until:[ "ENDIF" ]
        | _ -> []
      in
      close_block st "IF";
      let to_plain what body =
        match plain_block body with
        | Some plain -> plain
        | None -> fail st ("extended statement inside an IF " ^ what)
      in
      Ext.Exec
        (Stmt.If (c, to_plain "branch" then_body, to_plain "branch" else_body))
  | Lexer.Ident name ->
      advance st;
      let subs =
        if peek st = Lexer.Lparen then begin
          advance st;
          let subs = ref [ iexpr st ] in
          while peek st = Lexer.Comma do
            advance st;
            subs := iexpr st :: !subs
          done;
          expect st Lexer.Rparen ")";
          List.rev !subs
        end
        else []
      in
      expect st Lexer.Assign_op "=";
      let s =
        if is_integer_name name then Stmt.Iassign (name, subs, iexpr st)
        else Stmt.Assign (name, subs, fexpr st)
      in
      end_of_statement st;
      Ext.Exec s
  | _ -> fail st "expected a statement"

and plain_block (body : Ext.stmt list) : Stmt.t list option =
  let rec conv acc = function
    | [] -> Some (List.rev acc)
    | Ext.Exec s :: rest -> conv (s :: acc) rest
    | Ext.Do { index; lo; hi; body } :: rest -> (
        match plain_block body with
        | Some plain -> conv (Stmt.loop index lo hi plain :: acc) rest
        | None -> None)
    | (Ext.Block_do _ | Ext.In_do _) :: _ -> None
  in
  conv [] body

let program src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let result = statements st ~until:[] in
  skip_newlines st;
  (match peek st with
  | Lexer.Eof -> ()
  | _ -> fail st "trailing input");
  result

let stmts src =
  let prog = program src in
  match plain_block prog with
  | Some plain -> plain
  | None ->
      raise
        (Parse_error
           { line = 0; message = "program uses BLOCK DO / IN DO extensions" })
