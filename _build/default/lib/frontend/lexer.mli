(** Tokenizer for the mini-Fortran surface syntax.

    Line-oriented like Fortran: newlines are tokens (statement
    separators); [!] starts a comment to end of line.  Relational and
    logical operators use the F77 dotted forms ([.EQ.], [.AND.], ...).
    Keywords are case-insensitive; identifiers are uppercased (Fortran
    is case-insensitive, and the IR kernels use upper case). *)

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Plus | Minus | Star | Slash
  | Lparen | Rparen | Comma
  | Assign_op  (** [=] *)
  | Rel of Stmt.rel
  | And_op | Or_op | Not_op
  | Newline
  | Eof

exception Lex_error of { line : int; message : string }

val tokenize : string -> (token * int) list
(** Token with its 1-based line number. *)
