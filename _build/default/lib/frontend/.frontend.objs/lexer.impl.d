lib/frontend/lexer.ml: List Printf Stmt String
