lib/frontend/parser.mli: Ext Stmt
