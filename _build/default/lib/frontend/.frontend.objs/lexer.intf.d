lib/frontend/lexer.mli: Stmt
