lib/frontend/parser.ml: Array Expr Ext Lexer List Stmt String
