(** Recursive-descent parser for the mini-Fortran surface syntax.

    Supports the subset the paper's kernels are written in: [DO] loops,
    block [IF]/[THEN]/[ELSE], assignments, [MIN]/[MAX]/[SQRT]/[ABS]
    intrinsics, plus the Section-6 extensions [BLOCK DO], [IN ... DO]
    and [LAST].  Fortran implicit typing applies: names starting with
    I-N are INTEGER, others REAL.

    {v
    DO 10-style labels are not supported; close loops with END DO.
    v} *)

exception Parse_error of { line : int; message : string }

val program : string -> Ext.stmt list
(** Parse a whole program (possibly using the extensions). *)

val stmts : string -> Stmt.t list
(** Parse a plain program; raises {!Parse_error} if extended constructs
    are present. *)
