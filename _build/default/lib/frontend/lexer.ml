type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Plus | Minus | Star | Slash
  | Lparen | Rparen | Comma
  | Assign_op
  | Rel of Stmt.rel
  | And_op | Or_op | Not_op
  | Newline
  | Eof

exception Lex_error of { line : int; message : string }

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let dotted line word =
  match String.uppercase_ascii word with
  | "EQ" -> Rel Stmt.Eq
  | "NE" -> Rel Stmt.Ne
  | "LT" -> Rel Stmt.Lt
  | "LE" -> Rel Stmt.Le
  | "GT" -> Rel Stmt.Gt
  | "GE" -> Rel Stmt.Ge
  | "AND" -> And_op
  | "OR" -> Or_op
  | "NOT" -> Not_op
  | other -> raise (Lex_error { line; message = "unknown operator ." ^ other ^ "." })

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let emit t = tokens := (t, !line) :: !tokens in
  let pos = ref 0 in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      emit Newline;
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '!' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      if !pos < n && src.[!pos] = '.' && not (!pos + 1 < n && is_alpha src.[!pos + 1])
      then begin
        incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done;
        if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
          incr pos;
          if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then incr pos;
          while !pos < n && is_digit src.[!pos] do
            incr pos
          done
        end;
        emit (Float_lit (float_of_string (String.sub src start (!pos - start))))
      end
      else emit (Int_lit (int_of_string (String.sub src start (!pos - start))))
    end
    else if is_alpha c then begin
      let start = !pos in
      while !pos < n && (is_alpha src.[!pos] || is_digit src.[!pos]) do
        incr pos
      done;
      emit (Ident (String.uppercase_ascii (String.sub src start (!pos - start))))
    end
    else if c = '.' then begin
      (* Either a dotted operator or a leading-dot float like [.5]. *)
      if !pos + 1 < n && is_digit src.[!pos + 1] then begin
        let start = !pos in
        incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done;
        emit (Float_lit (float_of_string ("0" ^ String.sub src start (!pos - start))))
      end
      else begin
        let close =
          try String.index_from src (!pos + 1) '.'
          with Not_found ->
            raise (Lex_error { line = !line; message = "unterminated dotted operator" })
        in
        let word = String.sub src (!pos + 1) (close - !pos - 1) in
        emit (dotted !line word);
        pos := close + 1
      end
    end
    else begin
      (match c with
      | '+' -> emit Plus
      | '-' -> emit Minus
      | '*' -> emit Star
      | '/' -> emit Slash
      | '(' -> emit Lparen
      | ')' -> emit Rparen
      | ',' -> emit Comma
      | '=' -> emit Assign_op
      | other ->
          raise
            (Lex_error
               { line = !line; message = Printf.sprintf "unexpected character %c" other }));
      incr pos
    end
  done;
  emit Eof;
  List.rev !tokens
