lib/interp/env.mli:
