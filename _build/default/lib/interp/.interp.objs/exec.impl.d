lib/interp/exec.ml: Env Expr Float Hashtbl Int Ir_util List Printf Stmt
