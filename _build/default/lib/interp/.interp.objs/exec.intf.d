lib/interp/exec.mli: Env Expr Ir_util Stmt
