lib/interp/env.ml: Array Float Hashtbl List Printf String
