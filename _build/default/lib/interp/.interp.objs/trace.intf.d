lib/interp/trace.mli: Arch Cache Env Exec Stmt
