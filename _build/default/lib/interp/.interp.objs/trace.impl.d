lib/interp/trace.ml: Arch Cache Env Exec Hashtbl List
