(** IR interpreter.

    Executes a statement block against an {!Env.t}.  Two uses:

    - ground truth for the transformation test suite: a transformation is
      correct when interpreting the original and the transformed IR from
      equal initial environments yields equal final environments;
    - memory tracing: [hook] fires on every array *element* access in
      execution order, which {!Trace} feeds to the cache simulator.

    DO-loop semantics are Fortran's: bounds and step are evaluated once
    on entry, the trip count is [max 0 ((hi - lo + step) / step)], and
    the index variable is local to the loop. *)

exception Error of string

type hook = string -> int list -> Ir_util.kind -> unit
(** [hook array indices kind]; [indices] are the subscript values. *)

val run : ?hook:hook -> Env.t -> Stmt.t list -> unit
(** Execute the block, mutating [env].  Raises {!Error} on undefined
    variables, bad subscripts, or an unknown intrinsic. *)

val eval_expr : Env.t -> (string * int) list -> Expr.t -> int
(** Evaluate an integer expression under loop-index bindings (exposed
    for the analysis oracle). *)
