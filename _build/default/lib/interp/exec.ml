exception Error of string

type hook = string -> int list -> Ir_util.kind -> unit

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type state = {
  env : Env.t;
  scope : (string, int) Hashtbl.t;  (** loop indices, innermost wins *)
  hook : hook option;
}

let lookup_int st v =
  match Hashtbl.find_opt st.scope v with
  | Some n -> n
  | None -> (
      try Env.iscalar st.env v
      with Failure msg -> err "%s" msg)

let touch st name idx kind =
  match st.hook with Some h -> h name idx kind | None -> ()

let rec eval_i st (e : Expr.t) =
  match e with
  | Expr.Int n -> n
  | Expr.Var v -> lookup_int st v
  | Expr.Bin (op, a, b) -> (
      let x = eval_i st a and y = eval_i st b in
      match op with
      | Expr.Add -> x + y
      | Expr.Sub -> x - y
      | Expr.Mul -> x * y
      | Expr.Div -> if y = 0 then err "division by zero" else x / y)
  | Expr.Min (a, b) -> min (eval_i st a) (eval_i st b)
  | Expr.Max (a, b) -> max (eval_i st a) (eval_i st b)
  | Expr.Idx (name, subs) ->
      let idx = List.map (eval_i st) subs in
      touch st name idx Ir_util.Read;
      (try Env.get_i st.env name idx with Failure msg -> err "%s" msg)

let intrinsic name args =
  match name, args with
  | ("SQRT" | "DSQRT"), [ x ] ->
      if x < 0.0 then err "SQRT of negative %g" x else sqrt x
  | ("ABS" | "DABS"), [ x ] -> Float.abs x
  | ("SIGN" | "DSIGN"), [ a; b ] -> if b >= 0.0 then Float.abs a else -.Float.abs a
  | _ -> err "unknown intrinsic %s/%d" name (List.length args)

let rec eval_f st (fe : Stmt.fexpr) =
  match fe with
  | Stmt.Fconst x -> x
  | Stmt.Fvar v -> (
      try Env.fscalar st.env v with Failure msg -> err "%s" msg)
  | Stmt.Ref (name, subs) ->
      let idx = List.map (eval_i st) subs in
      touch st name idx Ir_util.Read;
      (try Env.get_f st.env name idx with Failure msg -> err "%s" msg)
  | Stmt.Fbin (op, a, b) -> (
      let x = eval_f st a and y = eval_f st b in
      match op with
      | Stmt.FAdd -> x +. y
      | Stmt.FSub -> x -. y
      | Stmt.FMul -> x *. y
      | Stmt.FDiv -> x /. y)
  | Stmt.Fneg a -> -.eval_f st a
  | Stmt.Fcall (name, args) -> intrinsic name (List.map (eval_f st) args)
  | Stmt.Of_int e -> float_of_int (eval_i st e)

let eval_rel (r : Stmt.rel) c =
  match r with
  | Stmt.Eq -> c = 0
  | Stmt.Ne -> c <> 0
  | Stmt.Lt -> c < 0
  | Stmt.Le -> c <= 0
  | Stmt.Gt -> c > 0
  | Stmt.Ge -> c >= 0

let rec eval_cond st (c : Stmt.cond) =
  match c with
  | Stmt.Fcmp (r, a, b) -> eval_rel r (Float.compare (eval_f st a) (eval_f st b))
  | Stmt.Icmp (r, a, b) -> eval_rel r (Int.compare (eval_i st a) (eval_i st b))
  | Stmt.Not a -> not (eval_cond st a)
  | Stmt.And (a, b) -> eval_cond st a && eval_cond st b
  | Stmt.Or (a, b) -> eval_cond st a || eval_cond st b

let rec exec st (s : Stmt.t) =
  match s with
  | Stmt.Assign (name, [], rhs) ->
      let x = eval_f st rhs in
      Env.set_fscalar st.env name x
  | Stmt.Assign (name, subs, rhs) ->
      let x = eval_f st rhs in
      let idx = List.map (eval_i st) subs in
      touch st name idx Ir_util.Write;
      (try Env.set_f st.env name idx x with Failure msg -> err "%s" msg)
  | Stmt.Iassign (name, [], rhs) ->
      if Hashtbl.mem st.scope name then err "assignment to loop index %s" name;
      let x = eval_i st rhs in
      Env.set_iscalar st.env name x
  | Stmt.Iassign (name, subs, rhs) ->
      let x = eval_i st rhs in
      let idx = List.map (eval_i st) subs in
      touch st name idx Ir_util.Write;
      (try Env.set_i st.env name idx x with Failure msg -> err "%s" msg)
  | Stmt.If (c, t, e) ->
      if eval_cond st c then exec_block st t else exec_block st e
  | Stmt.Loop l ->
      let lo = eval_i st l.lo and hi = eval_i st l.hi and step = eval_i st l.step in
      if step = 0 then err "DO %s: zero step" l.index;
      let trips = max 0 ((hi - lo + step) / step) in
      let saved = Hashtbl.find_opt st.scope l.index in
      let i = ref lo in
      for _ = 1 to trips do
        Hashtbl.replace st.scope l.index !i;
        exec_block st l.body;
        i := !i + step
      done;
      (match saved with
      | Some old -> Hashtbl.replace st.scope l.index old
      | None -> Hashtbl.remove st.scope l.index)

and exec_block st block = List.iter (exec st) block

let run ?hook env block =
  let st = { env; scope = Hashtbl.create 8; hook } in
  exec_block st block

let eval_expr env bindings e =
  let st = { env; scope = Hashtbl.create 8; hook = None } in
  List.iter (fun (k, v) -> Hashtbl.replace st.scope k v) bindings;
  eval_i st e
