(* blockc — command-line driver for the blockability toolkit.

   Subcommands: list, show, derive, verify, simulate, parse, lower. *)

open Cmdliner

let entry_conv =
  let parse s =
    match Blockability.find s with
    | Some e -> Ok e
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown kernel %s (try: %s)" s
               (String.concat ", " (Blockability.names ()))))
  in
  let print fmt (e : Blockability.entry) = Format.pp_print_string fmt e.name in
  Arg.conv (parse, print)

let kernel_arg =
  Arg.(required & pos 0 (some entry_conv) None & info [] ~docv:"KERNEL")

let binding_conv =
  let parse s =
    match String.split_on_char '=' s with
    | [ k; v ] -> (
        match int_of_string_opt v with
        | Some n -> Ok (String.uppercase_ascii k, n)
        | None -> Error (`Msg ("bad binding value: " ^ s)))
    | _ -> Error (`Msg ("bindings look like N=300, got " ^ s))
  in
  let print fmt (k, v) = Format.fprintf fmt "%s=%d" k v in
  Arg.conv (parse, print)

let bindings_arg =
  Arg.(
    value
    & opt_all binding_conv []
    & info [ "p"; "param" ] ~docv:"NAME=INT" ~doc:"Problem parameter binding.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload random seed.")

let machine_conv =
  let parse = function
    | "rs6000" -> Ok Arch.rs6000_540
    | "small" -> Ok Arch.small_test
    | "modern" -> Ok Arch.modern_l1
    | s -> Error (`Msg ("unknown machine " ^ s ^ " (rs6000|small|modern)"))
  in
  let print fmt (m : Arch.t) = Format.pp_print_string fmt m.name in
  Arg.conv (parse, print)

let machine_arg =
  Arg.(
    value
    & opt machine_conv Arch.rs6000_540
    & info [ "machine" ] ~doc:"Cache model: rs6000, small, or modern.")

let or_default bindings = if bindings = [] then None else Some bindings

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Blockability.entry) ->
        Printf.printf "%-10s %-28s %s\n" e.name e.paper_ref
          e.kernel.Kernel_def.description)
      Blockability.entries
  in
  Cmd.v (Cmd.info "list" ~doc:"List the paper's kernels.")
    Term.(const run $ const ())

(* ---- show ---- *)

let show_cmd =
  let run e =
    print_string
      (Fortran_pp.subroutine ~name:(String.uppercase_ascii e.Blockability.name)
         ~params:e.Blockability.kernel.Kernel_def.params
         e.Blockability.kernel.Kernel_def.block)
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a kernel's point algorithm.")
    Term.(const run $ kernel_arg)

(* ---- derive ---- *)

let derive_cmd =
  let run e =
    match Blockability.derive e with
    | Error m ->
        prerr_endline ("derivation failed: " ^ m);
        exit 1
    | Ok { Blocker.result; steps } ->
        List.iter
          (fun (s : Blocker.trace_step) ->
            Printf.printf "--- %s: %s\n" s.name s.detail)
          steps;
        print_string (Stmt.to_string result)
  in
  Cmd.v
    (Cmd.info "derive"
       ~doc:"Run the compiler driver on a kernel and print the result.")
    Term.(const run $ kernel_arg)

(* ---- verify ---- *)

let verify_cmd =
  let run e bindings seed =
    match Blockability.verify ?bindings:(or_default bindings) ~seed e with
    | Ok () -> print_endline "equivalent: transformed kernel matches the point kernel"
    | Error m ->
        prerr_endline m;
        exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Interpret point and transformed kernels and compare memory.")
    Term.(const run $ kernel_arg $ bindings_arg $ seed_arg)

(* ---- simulate ---- *)

let simulate_cmd =
  let run e bindings seed machine =
    match
      Blockability.simulate ?bindings:(or_default bindings) ~seed ~machine e
    with
    | Error m ->
        prerr_endline m;
        exit 1
    | Ok r ->
        let pr what (s : Cache.stats) cycles =
          Printf.printf "%-12s accesses %9d  misses %9d  miss-rate %5.2f%%  mem-cycles %10d\n"
            what s.accesses s.misses
            (100.0 *. Cache.miss_ratio s)
            cycles
        in
        Printf.printf "machine: %s\n" machine.Arch.name;
        pr "point" r.point_stats r.point_cycles;
        pr "transformed" r.transformed_stats r.transformed_cycles;
        Printf.printf "memory-cycle speedup: %.2f\n"
          (Cost.speedup ~baseline:r.point_cycles ~optimized:r.transformed_cycles)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Trace both kernels through the cache simulator.")
    Term.(const run $ kernel_arg $ bindings_arg $ seed_arg $ machine_arg)

(* ---- sections ---- *)

let sections_cmd =
  let run e =
    let block = e.Blockability.kernel.Kernel_def.block in
    let loops = List.map snd (Stmt.find_loops block) in
    let ctx =
      List.fold_left Symbolic.assume_pos
        (Symbolic.of_loop_context loops)
        (Ir_util.symbolic_params block)
    in
    List.iter
      (fun (a : Ir_util.access) ->
        if a.space = Ir_util.Float_data && a.subs <> [] then
          let kind = match a.kind with Ir_util.Write -> "write" | _ -> "read " in
          match Section.of_access ~ctx ~within:a.loops a with
          | Some s ->
              Printf.printf "%s %s(%s)  =>  %s\n" kind a.array
                (String.concat ", " (List.map Expr.to_string a.subs))
                (Section.to_string s)
          | None ->
              Printf.printf "%s %s(%s)  =>  (not affine)\n" kind a.array
                (String.concat ", " (List.map Expr.to_string a.subs)))
      (Ir_util.accesses block)
  in
  Cmd.v
    (Cmd.info "sections"
       ~doc:"Print the array section of every reference in a kernel.")
    Term.(const run $ kernel_arg)

(* ---- parse / lower ---- *)

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_cmd =
  let run path =
    match Parser.program (read_file path) with
    | prog -> List.iter (fun s -> print_string (Ext.to_string s)) prog
    | exception Parser.Parse_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" path line message;
        exit 1
    | exception Lexer.Lex_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" path line message;
        exit 1
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse a mini-Fortran file and echo the program.")
    Term.(const run $ file_arg)

let lower_cmd =
  let block_arg =
    Arg.(value & opt (some int) None & info [ "block-size" ] ~doc:"Override the block size.")
  in
  let run path machine block_size =
    match Parser.program (read_file path) with
    | exception Parser.Parse_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" path line message;
        exit 1
    | exception Lexer.Lex_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" path line message;
        exit 1
    | prog ->
        List.iter
          (fun s ->
            match Lower.lower ?block_size ~machine s with
            | Ok stmt -> print_string (Stmt.to_string stmt)
            | Error m ->
                prerr_endline m;
                exit 1)
          prog
  in
  Cmd.v
    (Cmd.info "lower"
       ~doc:"Lower BLOCK DO / IN DO extensions, choosing the block size.")
    Term.(const run $ file_arg $ machine_arg $ block_arg)

let () =
  let doc = "compiler blockability of numerical algorithms (Carr-Kennedy SC'92)" in
  let info = Cmd.info "blockc" ~doc in
  exit (Cmd.eval (Cmd.group info
    [ list_cmd; show_cmd; derive_cmd; verify_cmd; simulate_cmd; sections_cmd; parse_cmd; lower_cmd ]))
