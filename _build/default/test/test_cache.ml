open Helpers

let direct_mapped_conflict () =
  (* 2 KB direct-mapped, 32-byte lines: addresses 0 and 2048 conflict. *)
  let c = Cache.create ~size_bytes:2048 ~line_bytes:32 ~assoc:1 in
  check_bool "cold miss" false (Cache.access c 0);
  check_bool "hit" true (Cache.access c 8);
  check_bool "conflict evicts" false (Cache.access c 2048);
  check_bool "and misses again" false (Cache.access c 0)

let associativity_helps () =
  let c = Cache.create ~size_bytes:2048 ~line_bytes:32 ~assoc:2 in
  ignore (Cache.access c 0);
  ignore (Cache.access c 2048);
  check_bool "both resident" true (Cache.access c 0 && Cache.access c 2048)

let lru_order () =
  let c = Cache.create ~size_bytes:128 ~line_bytes:32 ~assoc:2 in
  (* one set spans addresses congruent mod 64; three conflicting lines *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 64);
  ignore (Cache.access c 0);
  (* 64 is now LRU; inserting 128 evicts it *)
  ignore (Cache.access c 128);
  check_bool "0 survives" true (Cache.access c 0);
  check_bool "64 evicted" false (Cache.access c 64)

let spatial_locality () =
  let c = Cache.create ~size_bytes:65536 ~line_bytes:128 ~assoc:4 in
  for i = 0 to 1023 do
    ignore (Cache.access c (i * 8))
  done;
  let s = Cache.stats c in
  check_int "one miss per line" (1024 * 8 / 128) s.misses

let reset_works () =
  let c = Cache.create ~size_bytes:1024 ~line_bytes:32 ~assoc:1 in
  ignore (Cache.access c 0);
  Cache.reset c;
  let s = Cache.stats c in
  check_int "zeroed" 0 s.accesses;
  check_bool "cold again" false (Cache.access c 0)

let bad_geometry () =
  Alcotest.check_raises "not a power of two"
    (Invalid_argument "Cache.create: sizes must be powers of two") (fun () ->
      ignore (Cache.create ~size_bytes:1000 ~line_bytes:32 ~assoc:1))

let gen_trace =
  QCheck2.Gen.(list_size (int_range 0 500) (int_range 0 4095))

let suite =
  ( "cache",
    [
      case "direct-mapped conflicts" direct_mapped_conflict;
      case "associativity" associativity_helps;
      case "LRU replacement" lru_order;
      case "spatial locality" spatial_locality;
      case "reset" reset_works;
      case "geometry validation" bad_geometry;
      qcase "stats are consistent" gen_trace (fun addrs ->
          let c = Cache.create ~size_bytes:1024 ~line_bytes:32 ~assoc:2 in
          List.iter (fun a -> ignore (Cache.access c a)) addrs;
          let s = Cache.stats c in
          s.accesses = List.length addrs
          && s.hits + s.misses = s.accesses
          && s.hits >= 0 && s.misses >= 0);
      qcase "repeating a short trace hits" gen_trace (fun addrs ->
          (* a trace touching < capacity distinct lines, replayed, all hits *)
          let distinct =
            List.sort_uniq Int.compare (List.map (fun a -> a / 32) addrs)
          in
          QCheck2.assume (List.length distinct <= 8);
          let c = Cache.create ~size_bytes:1024 ~line_bytes:32 ~assoc:32 in
          List.iter (fun a -> ignore (Cache.access c a)) addrs;
          let before = (Cache.stats c).misses in
          List.iter (fun a -> ignore (Cache.access c a)) addrs;
          (Cache.stats c).misses = before);
    ] )
