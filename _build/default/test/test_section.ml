open Helpers
open Builder

(* Sections of the strip-mined LU kernel must match the paper's Figure 5:
   statement 20's A(I,KK) covers A(K+1:N, K:K+KS-1) and statement 10's
   A(I,J) covers A(K+1:N, K+1:N). *)

let lu_setup () =
  let stripped =
    ok_or_fail "strip"
      (Strip_mine.apply ~block_size:(Expr.var "KS") ~new_index:"KK" K_lu.point_loop)
  in
  let kk = match stripped.body with [ Stmt.Loop l ] -> l | _ -> assert false in
  let ctx = Symbolic.of_loop_context [ stripped; kk ] in
  let ctx = Symbolic.assume_pos ctx "KS" in
  let ctx = Symbolic.assume_pos ctx "N" in
  (ctx, kk)

let find_access kk ~stmt ~kind ~subs_str =
  let accs = Ir_util.accesses [ Stmt.Loop kk ] in
  List.find
    (fun (a : Ir_util.access) ->
      a.kind = kind
      && (match a.path with Stmt.I 0 :: Stmt.I k :: _ -> k = stmt | _ -> false)
      && String.concat "," (List.map Expr.to_string a.subs) = subs_str)
    accs

let figure5 () =
  let ctx, kk = lu_setup () in
  let scale_write = find_access kk ~stmt:0 ~kind:Ir_util.Write ~subs_str:"I,KK" in
  let update_write = find_access kk ~stmt:1 ~kind:Ir_util.Write ~subs_str:"I,J" in
  let sec a =
    match Section.of_access ~ctx ~within:a.Ir_util.loops a with
    | Some s -> s
    | None -> Alcotest.fail "section not computable"
  in
  let s20 = sec scale_write and s10 = sec update_write in
  check_string "statement 20 section" "A(K + 1:N, K:K + KS - 1) (hull)"
    (Section.to_string s20);
  check_string "statement 10 section" "A(K + 1:N, K + 1:N)"
    (Section.to_string s10);
  check_bool "not equal" false (Section.equal ctx s20 s10);
  check_bool "not disjoint" false (Section.disjoint ctx s20 s10)

let disjoint_after_split () =
  let ctx, _ = lu_setup () in
  (* col ranges [K, K+KS-1] vs [K+KS, N] are provably disjoint *)
  let open Affine in
  let d1 =
    {
      Section.los = [ var "K" ];
      his = [ sub (add (var "K") (var "KS")) (const 1) ];
      step = 1;
    }
  in
  let d2 = { Section.los = [ add (var "K") (var "KS") ]; his = [ var "N" ]; step = 1 } in
  let s1 = { Section.array = "A"; dims = [ d1 ]; exact = true } in
  let s2 = { Section.array = "A"; dims = [ d2 ]; exact = true } in
  check_bool "disjoint" true (Section.disjoint ctx s1 s2);
  check_bool "not subset" false (Section.subset ctx s1 s2)

let rows_columns_elements () =
  let ctx = Symbolic.assume_pos Symbolic.empty "N" in
  let ctx = Symbolic.assume_ge ctx (Affine.var "N") (Affine.const 5) in
  let loop_j =
    match do_ "J" (i 1) (v "N") [] with Stmt.Loop l -> l | _ -> assert false
  in
  let row = Section.of_ref ~ctx ~within:[ loop_j ] "A" [ i 3; v "J" ] in
  let elt = Section.of_ref ~ctx ~within:[ loop_j ] "A" [ i 3; i 5 ] in
  match row, elt with
  | Some row, Some elt ->
      check_string "row section" "A(3:3, 1:N)" (Section.to_string row);
      check_bool "element inside row" true (Section.subset ctx elt row);
      check_bool "row not inside element" false (Section.subset ctx row elt)
  | _ -> Alcotest.fail "sections not computable"

let strided_section () =
  let ctx = Symbolic.empty in
  let loop =
    match do_ "I" (i 0) (i 10) [] with Stmt.Loop l -> l | _ -> assert false
  in
  match Section.of_ref ~ctx ~within:[ loop ] "A" [ i 2 *! v "I" ] with
  | Some s ->
      check_string "stride 2" "A(0:20:2)" (Section.to_string s);
      (* odd singleton is disjoint from the even section by stride...
         hull-wise they overlap, so disjoint must say false (sound). *)
      let odd = Section.of_ref ~ctx ~within:[] "A" [ i 3 ] in
      check_bool "no false disjointness" false
        (Section.disjoint ctx s (Option.get odd))
  | None -> Alcotest.fail "section not computable"

let min_bound_candidates () =
  (* Both MIN arms become valid upper-bound candidates. *)
  let ctx = Symbolic.assume_pos Symbolic.empty "KS" in
  let loop =
    match
      do_ "KK" (v "K") (Expr.min_ (v "K" +! v "KS" -! i 1) (v "N" -! i 1)) []
    with
    | Stmt.Loop l -> l
    | _ -> assert false
  in
  match Section.of_ref ~ctx ~within:[ loop ] "A" [ v "KK" ] with
  | Some s ->
      let d = List.hd s.dims in
      check_int "two hi candidates" 2 (List.length d.his);
      check_bool "inexact" false s.exact
  | None -> Alcotest.fail "section not computable"

let non_affine_subscript () =
  let ctx = Symbolic.empty in
  let loop =
    match do_ "I" (i 1) (i 8) [] with Stmt.Loop l -> l | _ -> assert false
  in
  check_bool "indirect subscript has no section" true
    (Section.of_ref ~ctx ~within:[ loop ] "A" [ Expr.idx "P" [ v "I" ] ] = None)

let suite =
  ( "section",
    [
      case "Figure 5 sections" figure5;
      case "disjointness after split" disjoint_after_split;
      case "rows, columns, elements" rows_columns_elements;
      case "strided sections" strided_section;
      case "MIN-bound candidates" min_bound_candidates;
      case "non-affine refused" non_affine_subscript;
    ] )
