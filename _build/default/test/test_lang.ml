open Helpers

(* ---- lowering ---- *)

let fig11_lowers_and_matches (n, ks, seed) =
  let ks = max 1 ks in
  match Lower.lower ~machine:Arch.rs6000_540 ~block_size:ks Ext.fig11_block_lu with
  | Error _ -> false
  | Ok stmt ->
      Kernel_def.equivalent K_lu.kernel [ stmt ] ~bindings:[ ("N", n) ] ~seed
      = Ok ()

let lowering_errors () =
  let bad =
    Ext.In_do { block_index = "K"; index = "KK"; bounds = None; body = [] }
  in
  check_bool "IN DO outside BLOCK DO" true
    (Result.is_error (Lower.lower ~machine:Arch.rs6000_540 bad));
  let bad_last =
    Ext.Do
      {
        index = "I";
        lo = Expr.Int 1;
        hi = Ext.last "K";
        body = [];
      }
  in
  check_bool "LAST outside BLOCK DO" true
    (Result.is_error (Lower.lower ~machine:Arch.rs6000_540 bad_last))

let machine_chooses_block () =
  match Lower.lower ~machine:Arch.rs6000_540 Ext.fig11_block_lu with
  | Ok (Stmt.Loop l) -> (
      match l.step with
      | Expr.Int ks -> check_bool "sane block size" true (ks >= 8 && ks <= 256)
      | _ -> Alcotest.fail "constant step expected")
  | _ -> Alcotest.fail "lowering failed"

(* ---- frontend ---- *)

let parse_lu_matches_builder () =
  let src =
    "DO K = 1, N - 1\n\
     \  DO I = K + 1, N\n\
     \    A(I, K) = A(I, K) / A(K, K)\n\
     \  END DO\n\
     \  DO J = K + 1, N\n\
     \    DO I = K + 1, N\n\
     \      A(I, J) = A(I, J) - A(I, K) * A(K, J)\n\
     \    END DO\n\
     \  END DO\n\
     END DO\n"
  in
  check_bool "structural match" true
    (Stmt.equal_block (Parser.stmts src) [ Stmt.Loop K_lu.point_loop ])

let parse_guard_and_intrinsics () =
  let src =
    "DO J = 2, M\n\
     \  IF (A(J, 1) .NE. 0.0) THEN\n\
     \    DEN = SQRT(A(1,1)*A(1,1) + A(J,1)*A(J,1))\n\
     \    C = A(1, 1) / DEN\n\
     \  ELSE\n\
     \    C = 1.0\n\
     \  END IF\n\
     END DO\n"
  in
  match Parser.stmts src with
  | [ Stmt.Loop { body = [ Stmt.If (Stmt.Fcmp (Stmt.Ne, _, _), t, e) ]; _ } ] ->
      check_int "then branch" 2 (List.length t);
      check_int "else branch" 1 (List.length e)
  | _ -> Alcotest.fail "unexpected shape"

let parse_integer_statements () =
  let src = "KC = KC + 1\nKLB(KC) = K\n" in
  match Parser.stmts src with
  | [ Stmt.Iassign ("KC", [], _); Stmt.Iassign ("KLB", [ Expr.Var "KC" ], Expr.Var "K") ]
    ->
      ()
  | _ -> Alcotest.fail "integer statements"

let parse_logicals () =
  let src = "IF (I .LT. N .AND. .NOT. (X .GT. 0.0)) THEN\nY = 1.0\nEND IF\n" in
  match Parser.stmts src with
  | [ Stmt.If (Stmt.And (Stmt.Icmp (Stmt.Lt, _, _), Stmt.Not _), _, []) ] -> ()
  | _ -> Alcotest.fail "logical operators"

let parse_block_do_roundtrip () =
  let src = Ext.to_string Ext.fig11_block_lu in
  match Parser.program src with
  | [ ext ] -> check_string "round trip" src (Ext.to_string ext)
  | _ -> Alcotest.fail "expected one statement"

let parse_errors () =
  let expect_error src =
    match Parser.stmts src with
    | exception Parser.Parse_error _ -> ()
    | exception Lexer.Lex_error _ -> ()
    | _ -> Alcotest.failf "expected a parse error for %S" src
  in
  expect_error "DO I = 1\nEND DO\n";
  expect_error "DO I = 1, N\n";
  expect_error "A(I = 1\n";
  expect_error "IF (X) THEN\nEND IF\n";
  expect_error "X = .FOO. 1\n"

let parsed_kernel_runs () =
  (* parse, interpret, compare against the builder kernel end to end *)
  let src =
    "DO I = 0, N3\n\
     \  DO K = I, MIN(I + N2, N1)\n\
     \    F3(I) = F3(I) + DT * F1(K) * F2(I - K)\n\
     \  END DO\n\
     END DO\n"
  in
  let parsed = Parser.stmts src in
  equivalent K_conv.aconv parsed
    ~bindings:[ ("N1", 12); ("N2", 4); ("N3", 15) ]
    ~seed:8

let suite =
  ( "lang-frontend",
    [
      qcase ~count:30 "Figure 11 lowers to point-equivalent code"
        QCheck2.Gen.(triple (int_range 1 20) (int_range 1 9) (int_range 0 99))
        fig11_lowers_and_matches;
      case "lowering error cases" lowering_errors;
      case "machine chooses the block size" machine_chooses_block;
      case "parse LU" parse_lu_matches_builder;
      case "parse guard and intrinsics" parse_guard_and_intrinsics;
      case "parse integer statements" parse_integer_statements;
      case "parse logical operators" parse_logicals;
      case "BLOCK DO round trip" parse_block_do_roundtrip;
      case "parse errors" parse_errors;
      case "parsed kernel runs" parsed_kernel_runs;
    ] )
