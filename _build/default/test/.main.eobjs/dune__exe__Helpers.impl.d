test/helpers.ml: Alcotest Env Exec Expr Kernel_def List QCheck2 QCheck_alcotest
