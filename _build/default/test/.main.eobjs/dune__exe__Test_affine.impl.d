test/test_affine.ml: Affine Alcotest Expr Helpers List QCheck2
