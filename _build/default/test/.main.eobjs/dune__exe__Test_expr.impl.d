test/test_expr.ml: Alcotest Expr Helpers QCheck2 Stdlib
