test/test_native.ml: Array Float Helpers Linalg List N_conv N_givens N_householder N_lu N_lu_pivot N_matmul Printf QCheck2
