test/main.mli:
