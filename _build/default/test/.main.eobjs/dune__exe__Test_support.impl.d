test/test_support.ml: Alcotest Helpers Lcg List QCheck2 String Table
