test/test_cache.ml: Alcotest Cache Helpers Int List QCheck2
