test/test_trace.ml: Alcotest Arch Blockability Builder Env Helpers Option Trace
