test/test_stmt_interp.ml: Alcotest Array Builder Env Exec Expr Helpers List Stmt
