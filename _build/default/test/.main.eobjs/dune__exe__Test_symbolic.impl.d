test/test_symbolic.ml: Affine Alcotest Builder Expr Helpers QCheck2 Stmt Symbolic
