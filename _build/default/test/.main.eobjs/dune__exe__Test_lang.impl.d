test/test_lang.ml: Alcotest Arch Expr Ext Helpers K_conv K_lu Kernel_def Lexer List Lower Parser QCheck2 Result Stmt
