test/test_section.ml: Affine Alcotest Builder Expr Helpers Ir_util K_lu List Option Section Stmt String Strip_mine Symbolic
