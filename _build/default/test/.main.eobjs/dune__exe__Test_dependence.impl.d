test/test_dependence.ml: Alcotest Builder Ddg Dependence Expr Helpers K_conv K_lu List Oracle QCheck2 Stmt Strip_mine Symbolic
