open Helpers

(* Random affine-ish expressions over a fixed variable set. *)
let gen_expr =
  let open QCheck2.Gen in
  let var = oneofl [ "I"; "J"; "K"; "N" ] in
  sized @@ fix (fun self n ->
      if n = 0 then oneof [ map Expr.int (int_range (-9) 9); map Expr.var var ]
      else
        frequency
          [
            (2, map Expr.int (int_range (-9) 9));
            (2, map Expr.var var);
            (3, map2 Expr.add (self (n / 2)) (self (n / 2)));
            (3, map2 Expr.sub (self (n / 2)) (self (n / 2)));
            (2, map2 Expr.mul (map Expr.int (int_range (-3) 3)) (self (n / 2)));
            (2, map2 Expr.min_ (self (n / 2)) (self (n / 2)));
            (2, map2 Expr.max_ (self (n / 2)) (self (n / 2)));
          ])

let test_env = [ ("I", 3); ("J", -2); ("K", 7); ("N", 10) ]

let constant_folding () =
  let open Expr in
  check_bool "add fold" true (equal (add (Int 2) (Int 3)) (Int 5));
  check_bool "mul zero" true (equal (mul (Int 0) (Var "N")) (Int 0));
  check_bool "add zero" true (equal (add (Var "I") (Int 0)) (Var "I"));
  check_bool "sub self" true (equal (sub (Var "I") (Var "I")) (Int 0));
  check_bool "div one" true (equal (div (Var "N") (Int 1)) (Var "N"));
  check_bool "min same" true (equal (min_ (Var "I") (Var "I")) (Var "I"))

let printing () =
  let open Expr in
  check_string "min" "MIN(J + JS - 1, N)"
    (to_string (min_ (sub (add (Var "J") (Var "JS")) (Int 1)) (Var "N")));
  check_string "mul prec" "2*(I + 1)"
    (to_string (Bin (Mul, Int 2, Bin (Add, Var "I", Int 1))));
  check_string "neg const" "K + KS - 1"
    (to_string (add (add (Var "K") (Var "KS")) (Int (-1))));
  check_string "idx" "KLB(KN)" (to_string (idx "KLB" [ Var "KN" ]))

let subst_basics () =
  let open Expr in
  let e = add (Var "I") (mul (Int 2) (Var "J")) in
  let e' = subst [ ("I", Int 5) ] e in
  check_int "subst eval" Stdlib.(5 + (2 * -2)) (eval_expr [ ("J", -2) ] e')

let free_vars () =
  let open Expr in
  let e = min_ (add (Var "I") (Var "N")) (idx "KLB" [ Var "KN" ]) in
  Alcotest.(check (list string))
    "free vars" [ "I"; "KLB"; "KN"; "N" ] (Expr.free_vars e)

let suite =
  ( "expr",
    [
      case "constant folding" constant_folding;
      case "printing" printing;
      case "substitution" subst_basics;
      case "free variables" free_vars;
      qcase "simplify preserves evaluation" gen_expr (fun e ->
          try eval_expr test_env (Expr.simplify e) = eval_expr test_env e
          with Division_by_zero -> true);
      qcase "subst of absent variable is identity" gen_expr (fun e ->
          Expr.equal (Expr.subst [ ("ZZ", Expr.Int 1) ] e) e);
      qcase "eval after shift" gen_expr (fun e ->
          (* substituting I := I + 0 never changes the value *)
          try
            eval_expr test_env (Expr.subst [ ("I", Expr.add (Expr.var "I") (Expr.Int 0)) ] e)
            = eval_expr test_env e
          with Division_by_zero -> true);
    ] )
