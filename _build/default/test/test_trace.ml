open Helpers
open Builder

(* Trace must lay arrays out line-aligned and count one access per array
   element touch, so a stride-1 sweep of 8-byte elements on 128-byte lines
   misses once per 16 elements. *)

let stride_one_sweep () =
  let env = Env.create () in
  let n = 4096 in
  Env.add_farray env "A" [ (1, n) ];
  Env.set_iscalar env "N" n;
  let block = [ do_ "I" (i 1) (v "N") [ set1 "A" (v "I") (fc 1.0) ] ] in
  let stats = Trace.run Arch.rs6000_540 env ~arrays:[ "A" ] block in
  check_int "one access per element" n stats.accesses;
  check_int "one miss per line" (n * 8 / 128) stats.misses

(* B(J) reused across I iterations: after the cold miss every touch of a
   resident line hits. *)
let temporal_reuse () =
  let env = Env.create () in
  let m = 64 and n = 8 in
  Env.add_farray env "A" [ (1, m) ];
  Env.add_farray env "B" [ (1, n) ];
  Env.set_iscalar env "M" m;
  Env.set_iscalar env "N" n;
  let block =
    [
      do_ "J" (i 1) (v "N")
        [ do_ "I" (i 1) (v "M") [ set1 "A" (v "I") (a1 "A" (v "I") +. a1 "B" (v "J")) ] ];
    ]
  in
  let stats = Trace.run Arch.rs6000_540 env ~arrays:[ "A"; "B" ] block in
  (* footprint fits the 64KB cache: only cold misses *)
  let lines = ((m * 8) + 127) / 128 + (((n * 8) + 127) / 128) in
  check_int "only cold misses" lines stats.misses

let untracked_arrays_ignored () =
  let env = Env.create () in
  Env.add_farray env "A" [ (1, 16) ];
  Env.add_farray env "B" [ (1, 16) ];
  let block =
    [ do_ "I" (i 1) (i 16) [ set1 "A" (v "I") (a1 "B" (v "I")) ] ]
  in
  let stats = Trace.run Arch.small_test env ~arrays:[ "A" ] block in
  check_int "only A is traced" 16 stats.accesses

let simulate_counts_match () =
  (* point and transformed LU touch the same number of elements *)
  let entry = Option.get (Blockability.find "lu") in
  match
    Blockability.simulate ~machine:Arch.small_test
      ~bindings:[ ("N", 20); ("KS", 4) ]
      entry
  with
  | Error m -> Alcotest.fail m
  | Ok r ->
      check_int "same element touches" r.point_stats.accesses
        r.transformed_stats.accesses

let suite =
  ( "trace",
    [
      case "stride-one sweep" stride_one_sweep;
      case "temporal reuse" temporal_reuse;
      case "untracked arrays ignored" untracked_arrays_ignored;
      case "transformation preserves access counts" simulate_counts_match;
    ] )
