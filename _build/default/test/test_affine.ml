open Helpers

let gen_affine =
  let open QCheck2.Gen in
  let term = pair (int_range (-5) 5) (oneofl [ "I"; "J"; "N"; "KS" ]) in
  map2
    (fun const terms ->
      List.fold_left
        (fun acc (c, v) -> Affine.add acc (Affine.scale c (Affine.var v)))
        (Affine.const const) terms)
    (int_range (-20) 20)
    (list_size (int_range 0 5) term)

let env = [ ("I", 4); ("J", -3); ("N", 12); ("KS", 5) ]
let lookup v = List.assoc v env

let of_expr_cases () =
  let open Expr in
  let check_some what e expected_vars =
    match Affine.of_expr e with
    | Some a -> Alcotest.(check (list string)) what expected_vars (Affine.vars a)
    | None -> Alcotest.failf "%s: expected affine" what
  in
  check_some "linear" (add (mul (Int 2) (Var "I")) (Var "N")) [ "I"; "N" ];
  check_some "cancel" (sub (Var "I") (Var "I")) [];
  check_bool "min is not affine" true (Affine.of_expr (min_ (Var "I") (Var "N")) = None);
  check_bool "I*J is not affine" true
    (Affine.of_expr (Bin (Mul, Var "I", Var "J")) = None);
  check_some "div exact" (div (mul (Int 4) (Var "I")) (Int 2)) [ "I" ];
  check_bool "div inexact rejected" true
    (Affine.of_expr (Bin (Div, Var "I", Int 2)) = None)

let suite =
  ( "affine",
    [
      case "of_expr classification" of_expr_cases;
      qcase "to_expr round trip" gen_affine (fun a ->
          match Affine.of_expr (Affine.to_expr a) with
          | Some a' -> Affine.equal a a'
          | None -> false);
      qcase "eval matches expr eval" gen_affine (fun a ->
          Affine.eval lookup a = eval_expr env (Affine.to_expr a));
      qcase "add commutes" (QCheck2.Gen.pair gen_affine gen_affine) (fun (a, b) ->
          Affine.equal (Affine.add a b) (Affine.add b a));
      qcase "sub self is zero" gen_affine (fun a ->
          Affine.equal (Affine.sub a a) Affine.zero);
      qcase "scale distributes" (QCheck2.Gen.pair gen_affine gen_affine)
        (fun (a, b) ->
          Affine.equal
            (Affine.scale 3 (Affine.add a b))
            (Affine.add (Affine.scale 3 a) (Affine.scale 3 b)));
      qcase "split_on reassembles"
        (QCheck2.Gen.pair gen_affine (QCheck2.Gen.oneofl [ "I"; "J"; "N" ]))
        (fun (a, v) ->
          let c, rest = Affine.split_on v a in
          Affine.equal a (Affine.add rest (Affine.scale c (Affine.var v))));
    ] )

let _ = check_int
