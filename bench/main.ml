(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation.  See DESIGN.md's experiment index (T1-T5, F1-F11, X1, PAR).

   Usage:  main.exe [t1|t2|t3|t4|t5|figures|cache|ablation|bechamel|par|obs|profile|native|native-c|serve|all]
                    [--quick] [--json PATH]
                    [--baseline PATH] [--check] [--tolerance F]
                    [--trajectory OUT] [--trajectory-base PATH]

   Absolute 1992 seconds are not reproducible; the claim checked here is
   the *shape*: which variant wins and by roughly what factor.

   [--json PATH] additionally dumps every table produced by the run as
   machine-readable JSON (see Table.json_of_tables), so successive PRs
   leave a perf trajectory behind (BENCH_*.json).

   [--trajectory OUT] writes the dated perf trajectory: the entries of
   [--trajectory-base PATH] (the committed bench/BENCH_trajectory.json;
   missing or empty means the trajectory is just starting) plus one new
   entry holding this run's tables.  See EXPERIMENTS.md for the schema.

   [--baseline PATH] compares this run's tables against a previous
   [--json] dump through Bench_gate and prints the verdict; with
   [--check] a flagged regression exits non-zero (the CI regression
   gate, see `dune build @check`).  [--tolerance F] overrides the
   default slowdown factor (1.5); [--slack S] the absolute seconds of
   grace added on top (0.002). *)

let argv = List.tl (Array.to_list Sys.argv)
let quick = List.mem "--quick" argv

let json_path, baseline_path, check_mode, tolerance, slack, traj_out, traj_base, selected =
  let rec go sel json base check tol slack tout tbase = function
    | [] -> (json, base, check, tol, slack, tout, tbase, List.rev sel)
    | "--quick" :: rest -> go sel json base check tol slack tout tbase rest
    | "--check" :: rest -> go sel json base true tol slack tout tbase rest
    | "--json" :: path :: rest -> go sel (Some path) base check tol slack tout tbase rest
    | "--baseline" :: path :: rest -> go sel json (Some path) check tol slack tout tbase rest
    | "--trajectory" :: path :: rest -> go sel json base check tol slack (Some path) tbase rest
    | "--trajectory-base" :: path :: rest ->
        go sel json base check tol slack tout (Some path) rest
    | "--tolerance" :: f :: rest -> (
        match float_of_string_opt f with
        | Some t when t > 0.0 -> go sel json base check (Some t) slack tout tbase rest
        | _ ->
            Printf.eprintf "main.exe: --tolerance wants a positive float, got %s\n" f;
            exit 2)
    | "--slack" :: f :: rest -> (
        match float_of_string_opt f with
        | Some s when s >= 0.0 -> go sel json base check tol (Some s) tout tbase rest
        | _ ->
            Printf.eprintf "main.exe: --slack wants a non-negative float, got %s\n" f;
            exit 2)
    | [ ("--json" | "--baseline" | "--tolerance" | "--slack" | "--trajectory"
        | "--trajectory-base") as flag ] ->
        Printf.eprintf "main.exe: %s requires an argument\n" flag;
        exit 2
    | a :: rest -> go (a :: sel) json base check tol slack tout tbase rest
  in
  let json, base, check, tol, slack, tout, tbase, sel =
    go [] None None false None None None None argv
  in
  (* Fail fast on an unwritable path rather than after the whole run. *)
  (match json with
  | Some path -> (
      match open_out path with
      | oc -> close_out oc
      | exception Sys_error msg ->
          Printf.eprintf "main.exe: cannot write --json output: %s\n" msg;
          exit 2)
  | None -> ());
  (* ... and on a missing/unreadable baseline. *)
  (match base with
  | Some path when not (Sys.file_exists path) ->
      Printf.eprintf "main.exe: baseline %s does not exist\n" path;
      exit 2
  | _ -> ());
  if check && base = None then begin
    prerr_endline "main.exe: --check requires --baseline PATH";
    exit 2
  end;
  (json, base, check, tol, slack, tout, tbase,
   match sel with [] -> [ "all" ] | l -> l)

let want what = List.mem what selected || List.mem "all" selected

(* Every table goes through [output]: printed for the human, remembered
   for the [--json] trajectory dump. *)
let registry : (string * Table.t) list ref = ref []

let output ~id tbl =
  Table.print tbl;
  registry := !registry @ [ (id, tbl) ]

(* ------------------------------------------------------------------ *)
(* timing                                                              *)
(* ------------------------------------------------------------------ *)

let now_ns () = Monotonic_clock.now ()

(* Give the observability layer a real monotonic clock (its default is
   Sys.time-based) and honour BLOCKABILITY_TRACE for whole-run traces. *)
let () =
  Obs.set_clock (fun () -> Int64.to_int (Monotonic_clock.now ()));
  Obs.init_from_env ()

let time_once f =
  let t0 = now_ns () in
  f ();
  Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9

let time ?(reps = if quick then 2 else 3) f =
  ignore (time_once f) (* warmup *);
  let samples = List.init reps (fun _ -> time_once f) in
  List.fold_left min (List.hd samples) samples

let banner title =
  Printf.printf "\n================ %s ================\n%!" title

(* ------------------------------------------------------------------ *)
(* T1: §3.2 — Aconv / Conv                                             *)
(* ------------------------------------------------------------------ *)

(* The paper iterates each kernel 1000 times on series sized so that 75%
   of the time is spent in the triangular region; we use N3 = 4/3 * N1
   with N2 = N1 so the rhomboidal+triangular split matches that ratio. *)
let t1 () =
  banner "T1  (paper §3.2): adjoint convolution and convolution";
  let tbl =
    Table.create ~title:"Aconv/Conv: original vs index-set split + unroll-and-jam"
      [
        ("Loop", Table.Left); ("Size", Table.Right); ("Original", Table.Right);
        ("Xformed", Table.Right); ("Speedup", Table.Right);
      ]
  in
  let iters = if quick then 60 else 400 in
  let sizes = if quick then [ 300 ] else [ 300; 500 ] in
  List.iter
    (fun n1 ->
      let s = N_conv.make ~n1 ~n2:n1 ~n3:(4 * n1 / 3) () in
      let run f () =
        for _ = 1 to iters do
          N_conv.reset s;
          f s
        done
      in
      let t_orig = time (run N_conv.aconv) in
      let t_opt = time (run N_conv.aconv_opt) in
      Table.add_row tbl
        [ "Aconv"; string_of_int n1; Table.cell_s t_orig; Table.cell_s t_opt;
          Table.cell_f (t_orig /. t_opt) ];
      let t_orig = time (run N_conv.conv) in
      let t_opt = time (run N_conv.conv_opt) in
      Table.add_row tbl
        [ "Conv"; string_of_int n1; Table.cell_s t_orig; Table.cell_s t_opt;
          Table.cell_f (t_orig /. t_opt) ])
    sizes;
  output ~id:"t1" tbl;
  print_string "paper (RS/6000-540): speedups 1.80-1.91\n"

(* ------------------------------------------------------------------ *)
(* T2: §4 — guarded matrix multiply                                    *)
(* ------------------------------------------------------------------ *)

let t2 () =
  banner "T2  (paper §4): SGEMM with a zero guard, 300x300";
  let n = if quick then 150 else 300 in
  let tbl =
    Table.create ~title:"Matrix multiply: IF-inspection enables unroll-and-jam"
      [
        ("Frequency", Table.Right); ("Original", Table.Right); ("UJ", Table.Right);
        ("UJ+IF", Table.Right); ("Speedup", Table.Right);
      ]
  in
  List.iter
    (fun freq_pct ->
      let a = Linalg.random ~seed:4 n n in
      let b = N_matmul.make_b ~seed:5 ~n ~freq_pct () in
      let c = Linalg.create n n in
      let reset () = Array.fill c.Linalg.a 0 (n * n) 0.0 in
      let bench f = time (fun () -> reset (); f ~a ~b ~c) in
      let t_orig = bench N_matmul.original in
      let t_uj = bench N_matmul.uj in
      let t_ujif = bench N_matmul.uj_if in
      Table.add_row tbl
        [
          Printf.sprintf "%d%%" freq_pct; Table.cell_s t_orig; Table.cell_s t_uj;
          Table.cell_s t_ujif; Table.cell_f (t_orig /. t_ujif);
        ])
    [ 2; 10; 50 ];
  output ~id:"t2" tbl;
  print_string "paper: UJ alone slower than original; UJ+IF speedup 1.45-1.48\n"

(* ------------------------------------------------------------------ *)
(* T3: §5.1 — LU without pivoting                                      *)
(* ------------------------------------------------------------------ *)

let t3 () =
  banner "T3  (paper §5.1): LU decomposition without pivoting";
  let tbl =
    Table.create
      ~title:
        "LU: point vs hand block (1) vs derived block (2) vs 2+UJ+scalar (2+) \
         vs recursive (Rec)"
      [
        ("Size", Table.Right); ("Block", Table.Right); ("Point", Table.Right);
        ("1", Table.Right); ("2", Table.Right); ("2+", Table.Right);
        ("Rec", Table.Right); ("Speedup", Table.Right);
      ]
  in
  let sizes = if quick then [ (200, [ 32 ]) ] else [ (300, [ 32; 64 ]); (500, [ 32; 64 ]) ] in
  List.iter
    (fun (n, blocks) ->
      let a0 = Linalg.random_diag_dominant ~seed:2 n in
      let bench f = time (fun () -> f (Linalg.copy_mat a0)) in
      let t_point = bench N_lu.point in
      (* cache-oblivious comparison column: no block parameter to tune *)
      let t_rec = bench (fun m -> N_lu.recursive m) in
      List.iter
        (fun b ->
          let t1v = bench (N_lu.sorensen ~block:b) in
          let t2v = bench (N_lu.blocked ~block:b) in
          let t2p = bench (N_lu.blocked_opt ~block:b) in
          Table.add_row tbl
            [
              string_of_int n; string_of_int b; Table.cell_s t_point;
              Table.cell_s t1v; Table.cell_s t2v; Table.cell_s t2p;
              Table.cell_s t_rec; Table.cell_f (t_point /. t2p);
            ])
        blocks)
    sizes;
  output ~id:"t3" tbl;
  print_string "paper: 1 and 2 within ~8% of point; 2+ speedup 2.5-3.2\n"

(* ------------------------------------------------------------------ *)
(* T4: §5.2 — LU with partial pivoting                                 *)
(* ------------------------------------------------------------------ *)

let t4 () =
  banner "T4  (paper §5.2): LU decomposition with partial pivoting";
  let tbl =
    Table.create ~title:"Pivoting LU: point vs block (1) vs block+UJ+scalar (1+)"
      [
        ("Size", Table.Right); ("Block", Table.Right); ("Point", Table.Right);
        ("1", Table.Right); ("1+", Table.Right); ("Speedup", Table.Right);
      ]
  in
  let sizes = if quick then [ (200, [ 32 ]) ] else [ (300, [ 32; 64 ]); (500, [ 32; 64 ]) ] in
  List.iter
    (fun (n, blocks) ->
      let a0 = Linalg.random ~seed:3 n n in
      let bench f = time (fun () -> f (Linalg.copy_mat a0)) in
      let t_point = bench N_lu_pivot.point in
      List.iter
        (fun b ->
          let t1v = bench (N_lu_pivot.blocked ~block:b) in
          let t1p = bench (N_lu_pivot.blocked_opt ~block:b) in
          Table.add_row tbl
            [
              string_of_int n; string_of_int b; Table.cell_s t_point;
              Table.cell_s t1v; Table.cell_s t1p; Table.cell_f (t_point /. t1p);
            ])
        blocks)
    sizes;
  output ~id:"t4" tbl;
  print_string "paper: 1 close to point; 1+ speedup 2.3-2.7\n"

(* ------------------------------------------------------------------ *)
(* T5: §5.4 — Givens QR (plus §5.3 Householder)                        *)
(* ------------------------------------------------------------------ *)

let t5 () =
  banner "T5  (paper §5.4): QR with Givens rotations";
  let tbl =
    Table.create ~title:"Givens QR: point vs optimized (Figure 10)"
      [
        ("Array size", Table.Left); ("Point", Table.Right);
        ("Optimized", Table.Right); ("Speedup", Table.Right);
      ]
  in
  let sizes = if quick then [ 200 ] else [ 300; 500; 800 ] in
  List.iter
    (fun n ->
      let a0 = Linalg.random ~seed:6 n n in
      let bench f = time (fun () -> f (Linalg.copy_mat a0)) in
      let t_point = bench N_givens.point in
      let t_opt = bench N_givens.optimized in
      Table.add_row tbl
        [
          Printf.sprintf "%dx%d" n n; Table.cell_s t_point; Table.cell_s t_opt;
          Table.cell_f (t_point /. t_opt);
        ])
    sizes;
  output ~id:"t5-givens" tbl;
  print_string "paper: speedup 2.04 at 300, 5.49 at 500 (see also the X1 cache ablation,\n\
which reproduces the factor on the simulated 64KB cache)\n";
  (* §5.3: Householder QR — the non-blockable one; we still show the block
     form's advantage, which the compiler cannot derive (see DESIGN.md). *)
  let tbl2 =
    Table.create
      ~title:"Householder QR (§5.3, not compiler-blockable): point vs WY block"
      [
        ("Array size", Table.Left); ("Point", Table.Right); ("Blocked", Table.Right);
        ("Speedup", Table.Right);
      ]
  in
  List.iter
    (fun n ->
      let a0 = Linalg.random ~seed:7 n n in
      let bench f = time (fun () -> ignore (f (Linalg.copy_mat a0))) in
      let t_point = bench N_householder.point in
      let t_blk = bench (N_householder.blocked ~block:32) in
      Table.add_row tbl2
        [
          Printf.sprintf "%dx%d" n n; Table.cell_s t_point; Table.cell_s t_blk;
          Table.cell_f (t_point /. t_blk);
        ])
    sizes;
  output ~id:"t5-householder" tbl2

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let figures () =
  banner "F1 (iteration space of the triangular example)";
  let open Builder in
  let tri =
    match
      do_ "II" (v "I") (v "I" +! v "IS" -! i 1)
        [ do_ "J" (v "II") (v "N") [ setf "X" (fc 0.0) ] ]
    with
    | Stmt.Loop l -> l
    | _ -> assert false
  in
  print_string
    (Ir_util.plot_iteration_space
       ~bindings:[ ("I", 1); ("IS", 16); ("N", 24) ]
       ~width:48 ~height:16 tri);

  banner "F2/F5 (sections of A in strip-mined LU)";
  let stripped =
    Result.get_ok
      (Strip_mine.apply ~block_size:(Expr.var "KS") ~new_index:"KK" K_lu.point_loop)
  in
  let kk = match stripped.body with [ Stmt.Loop l ] -> l | _ -> assert false in
  let ctx = Symbolic.of_loop_context [ stripped; kk ] in
  List.iter
    (fun (a : Ir_util.access) ->
      if a.space = Ir_util.Float_data && a.subs <> [] && a.kind = Ir_util.Write
      then
        match Section.of_access ~ctx ~within:a.loops a with
        | Some s ->
            Printf.printf "  write %s(%s)  over the KK loop:  %s\n" a.array
              (String.concat "," (List.map Expr.to_string a.subs))
              (Section.to_string s)
        | None -> ())
    (Ir_util.accesses [ Stmt.Loop kk ]);

  banner "F3 (Procedure IndexSetSplit driving the LU derivation)";
  (match Blocker.block_lu ~block_size_var:"KS" K_lu.point_loop with
  | Ok { steps; _ } ->
      List.iter
        (fun (s : Blocker.trace_step) -> Printf.printf "  %s: %s\n" s.name s.detail)
        steps
  | Error e -> Printf.printf "  FAILED: %s\n" e);

  banner "F4 (matrix multiply after IF-inspection)";
  (match Blockability.derive (Option.get (Blockability.find "matmul")) with
  | Ok { result; _ } -> print_string (Stmt.to_string result)
  | Error e -> Printf.printf "FAILED: %s\n" e);

  banner "F6 (block LU, derived mechanically from the point algorithm)";
  (match Blockability.derive (Option.get (Blockability.find "lu")) with
  | Ok { result; _ } -> print_string (Stmt.to_string result)
  | Error e -> Printf.printf "FAILED: %s\n" e);

  banner "F7 (point LU with partial pivoting)";
  print_string (Stmt.to_string (Stmt.Loop K_lu_pivot.point_loop));

  banner "F8 (block LU with pivoting, derived with commutativity knowledge)";
  (match Blockability.derive (Option.get (Blockability.find "lu_pivot")) with
  | Ok { result; _ } -> print_string (Stmt.to_string result)
  | Error e -> Printf.printf "FAILED: %s\n" e);

  banner "F9 (point Givens QR)";
  print_string (Stmt.to_string (Stmt.Loop K_givens.point_loop));

  banner "F10 (optimized Givens QR)";
  (match Blockability.derive (Option.get (Blockability.find "givens")) with
  | Ok { result; _ } -> print_string (Stmt.to_string result)
  | Error e -> Printf.printf "FAILED: %s\n" e);

  banner "breadth (ours, per the paper's §8): the same driver on other kernels";
  List.iter
    (fun name ->
      match Blockability.derive (Option.get (Blockability.find name)) with
      | Ok { result; _ } ->
          Printf.printf "-- %s, blocked mechanically:\n" name;
          print_string (Stmt.to_string result)
      | Error e -> Printf.printf "%s FAILED: %s\n" name e)
    [ "trisolve"; "cholesky" ];

  banner "F11 (block LU in the extended language, and its lowering)";
  print_string (Ext.to_string Ext.fig11_block_lu);
  print_endline "-- lowered with the RS/6000-540 block-size choice:";
  match Lower.lower ~machine:Arch.rs6000_540 Ext.fig11_block_lu with
  | Ok stmt -> print_string (Stmt.to_string stmt)
  | Error e -> Printf.printf "FAILED: %s\n" e

(* ------------------------------------------------------------------ *)
(* X1: cache ablation on the simulated caches                          *)
(* ------------------------------------------------------------------ *)

let cache_ablation () =
  banner "X1  cache-simulator ablation (IR interpreter + LRU cache)";
  let tbl =
    Table.create
      ~title:"Simulated misses, point vs transformed (write-allocate LRU)"
      [
        ("Kernel", Table.Left); ("Machine", Table.Left); ("Params", Table.Left);
        ("Point misses", Table.Right); ("Xformed misses", Table.Right);
        ("Miss ratio", Table.Right); ("Cycle speedup", Table.Right);
      ]
  in
  let cases =
    if quick then [ ("lu", Arch.small_test, [ ("N", 48); ("KS", 4) ]) ]
    else
      [
        ("lu", Arch.small_test, [ ("N", 96); ("KS", 4) ]);
        ("lu", Arch.rs6000_540, [ ("N", 192); ("KS", 16) ]);
        ("lu_pivot", Arch.small_test, [ ("N", 96); ("KS", 4) ]);
        ("givens", Arch.small_test, [ ("M", 64); ("N", 48) ]);
        ("matmul", Arch.small_test, [ ("N", 64); ("FREQ_PCT", 10) ]);
        ("aconv", Arch.small_test, [ ("N1", 400); ("N2", 400); ("N3", 500) ]);
      ]
  in
  List.iter
    (fun (name, (machine : Arch.t), bindings) ->
      let entry = Option.get (Blockability.find name) in
      match Blockability.simulate ~machine ~bindings entry with
      | Error e -> Printf.printf "%s: %s\n" name e
      | Ok r ->
          Table.add_row tbl
            [
              name;
              machine.Arch.name;
              String.concat " "
                (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) bindings);
              string_of_int r.point_stats.misses;
              string_of_int r.transformed_stats.misses;
              Printf.sprintf "%.1f%% -> %.1f%%"
                (100.0 *. Cache.miss_ratio r.point_stats)
                (100.0 *. Cache.miss_ratio r.transformed_stats);
              Table.cell_f
                (Cost.speedup ~baseline:r.point_cycles
                   ~optimized:r.transformed_cycles);
            ])
    cases;
  output ~id:"x1-cache" tbl

(* ------------------------------------------------------------------ *)
(* Ablation: block-size sensitivity and the block-size chooser         *)
(* ------------------------------------------------------------------ *)

let ablation () =
  banner "ablation: block-size sensitivity of blocked LU (2+)";
  let n = if quick then 200 else 500 in
  let a0 = Linalg.random_diag_dominant ~seed:2 n in
  let tbl =
    Table.create ~title:(Printf.sprintf "LU 2+ at N=%d across block sizes" n)
      [ ("Block", Table.Right); ("Time", Table.Right); ("Speedup vs point", Table.Right) ]
  in
  let t_point = time (fun () -> N_lu.point (Linalg.copy_mat a0)) in
  List.iter
    (fun b ->
      let t = time (fun () -> N_lu.blocked_opt ~block:b (Linalg.copy_mat a0)) in
      Table.add_row tbl
        [ string_of_int b; Table.cell_s t; Table.cell_f (t_point /. t) ])
    [ 8; 16; 32; 64; 128; 256 ];
  output ~id:"ablation-block-size" tbl;
  (* and the simulated-machine chooser the Section-6 lowering uses *)
  List.iter
    (fun (m : Arch.t) ->
      Printf.printf "block size chosen for %-12s : %d\n" m.name
        (Arch.block_size m ()))
    [ Arch.rs6000_540; Arch.small_test; Arch.modern_l1 ];
  (* simulated sensitivity on the small cache: misses as KS varies *)
  let entry = Option.get (Blockability.find "lu") in
  let tbl2 =
    Table.create ~title:"Simulated LU misses vs KS (2KB direct-mapped, N=96)"
      [ ("KS", Table.Right); ("Misses", Table.Right); ("Miss ratio", Table.Right) ]
  in
  List.iter
    (fun ks ->
      match
        Blockability.simulate ~machine:Arch.small_test
          ~bindings:[ ("N", 96); ("KS", ks) ]
          entry
      with
      | Ok r ->
          Table.add_row tbl2
            [
              string_of_int ks;
              string_of_int r.transformed_stats.misses;
              Printf.sprintf "%.1f%%" (100.0 *. Cache.miss_ratio r.transformed_stats);
            ]
      | Error m -> Printf.printf "%s\n" m)
    [ 2; 4; 8; 16; 32 ];
  output ~id:"ablation-simulated-ks" tbl2

(* ------------------------------------------------------------------ *)
(* PAR: the multicore runtime on the blocked kernels (beyond the paper)*)
(* ------------------------------------------------------------------ *)

(* Serial "2+"-style variants vs the same kernels fanned out over the
   domain pool at 1, 2, 4 and [recommended_domain_count] lanes.  The
   speedup and scaling-efficiency columns are measured against the
   serial variant at the ND lane count (ND = what Pool.default would
   use, absent BLOCKABILITY_DOMAINS). *)
let par () =
  let nd = Domain.recommended_domain_count () in
  banner
    (Printf.sprintf
       "PAR  (beyond the paper): domain-pool runtime, %d core%s visible" nd
       (if nd = 1 then "" else "s"));
  let lanes = List.sort_uniq compare [ 1; 2; 4; nd ] in
  let pools = List.map (fun d -> (d, Pool.create ~domains:d ())) lanes in
  let tbl =
    Table.create
      ~title:"Parallel blocked kernels: serial vs domain-pool execution"
      ([ ("Kernel", Table.Left); ("Size", Table.Right); ("Serial", Table.Right) ]
      @ List.map (fun d -> (Printf.sprintf "%dD" d, Table.Right)) lanes
      @ [ ("Speedup", Table.Right); ("Eff", Table.Right) ])
  in
  let row name size ~serial ~par =
    let t_serial = time serial in
    let times = List.map (fun (d, p) -> (d, time (fun () -> par p))) pools in
    let t_nd = List.assoc nd times in
    let speedup = t_serial /. t_nd in
    Table.add_row tbl
      ([ name; size; Table.cell_s t_serial ]
      @ List.map (fun (_, t) -> Table.cell_s t) times
      @ [
          Table.cell_f speedup;
          Printf.sprintf "%.0f%%" (100.0 *. speedup /. float_of_int nd);
        ])
  in
  let n_lu = if quick then 200 else 500 in
  let a0 = Linalg.random_diag_dominant ~seed:2 n_lu in
  row "LU blocked"
    (Printf.sprintf "%d/b32" n_lu)
    ~serial:(fun () -> N_lu.blocked_opt ~block:32 (Linalg.copy_mat a0))
    ~par:(fun p -> N_lu.blocked_par ~pool:p ~block:32 (Linalg.copy_mat a0));
  let ap0 = Linalg.random ~seed:3 n_lu n_lu in
  row "LU pivot blocked"
    (Printf.sprintf "%d/b32" n_lu)
    ~serial:(fun () -> N_lu_pivot.blocked_opt ~block:32 (Linalg.copy_mat ap0))
    ~par:(fun p -> N_lu_pivot.blocked_par ~pool:p ~block:32 (Linalg.copy_mat ap0));
  let n_mm = if quick then 150 else 300 in
  let ma = Linalg.random ~seed:4 n_mm n_mm in
  let mb = N_matmul.make_b ~seed:5 ~n:n_mm ~freq_pct:10 () in
  let mc = Linalg.create n_mm n_mm in
  let reset_c () = Array.fill mc.Linalg.a 0 (n_mm * n_mm) 0.0 in
  row "Matmul UJ+IF"
    (Printf.sprintf "%d/10%%" n_mm)
    ~serial:(fun () ->
      reset_c ();
      N_matmul.uj_if ~a:ma ~b:mb ~c:mc)
    ~par:(fun p ->
      reset_c ();
      N_matmul.uj_if_par ~pool:p ~a:ma ~b:mb ~c:mc ());
  let n_cv = if quick then 300 else 500 in
  let cv_iters = if quick then 60 else 200 in
  let s = N_conv.make ~n1:n_cv ~n2:n_cv ~n3:(4 * n_cv / 3) () in
  row "Aconv split+UJ"
    (Printf.sprintf "%dx%d" n_cv cv_iters)
    ~serial:(fun () ->
      for _ = 1 to cv_iters do
        N_conv.reset s;
        N_conv.aconv_opt s
      done)
    ~par:(fun p ->
      for _ = 1 to cv_iters do
        N_conv.reset s;
        N_conv.aconv_opt_par ~pool:p s
      done);
  output ~id:"par" tbl;
  Printf.printf
    "all *_par results are bitwise equal to their serial variants;\n\
     lanes > cores (this host: %d) cannot speed anything up.\n"
    nd;
  List.iter (fun (_, p) -> Pool.shutdown p) pools

(* ------------------------------------------------------------------ *)
(* Bechamel: one Test.make per table                                   *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  banner "Bechamel micro-benchmarks (one Test.make per table)";
  let open Bechamel in
  let n = 120 in
  let conv_series = N_conv.make ~n1:n ~n2:n ~n3:(4 * n / 3) () in
  let lu0 = Linalg.random_diag_dominant ~seed:2 n in
  let lup0 = Linalg.random ~seed:3 n n in
  let giv0 = Linalg.random ~seed:6 n n in
  let ma = Linalg.random ~seed:4 n n in
  let mb = N_matmul.make_b ~seed:5 ~n ~freq_pct:10 () in
  let mc = Linalg.create n n in
  let tests =
    [
      Test.make ~name:"t1-aconv-opt"
        (Staged.stage (fun () ->
             N_conv.reset conv_series;
             N_conv.aconv_opt conv_series));
      Test.make ~name:"t2-matmul-uj-if"
        (Staged.stage (fun () ->
             Array.fill mc.Linalg.a 0 (n * n) 0.0;
             N_matmul.uj_if ~a:ma ~b:mb ~c:mc));
      Test.make ~name:"t3-lu-blocked-opt"
        (Staged.stage (fun () -> N_lu.blocked_opt ~block:32 (Linalg.copy_mat lu0)));
      Test.make ~name:"t4-lu-pivot-blocked-opt"
        (Staged.stage (fun () ->
             N_lu_pivot.blocked_opt ~block:32 (Linalg.copy_mat lup0)));
      Test.make ~name:"t5-givens-optimized"
        (Staged.stage (fun () -> N_givens.optimized (Linalg.copy_mat giv0)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second (if quick then 0.2 else 0.5))
      ~kde:None ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-26s %12.0f ns/run\n" name est
          | _ -> Printf.printf "  %-26s (no estimate)\n" name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* OBS: overhead of the observability layer itself                     *)
(* ------------------------------------------------------------------ *)

(* The claim being timed: with the null sink and metrics off, the
   instrumented runtime is indistinguishable from the seed (the guards
   are single bool-ref reads), and even metrics-on overhead stays small
   because blocked kernels amortize each chunk over real work. *)
let obs_suite () =
  banner "OBS: observability overhead (untraced vs traced blocked LU)";
  let n = if quick then 200 else 400 in
  let a0 = Linalg.random_diag_dominant ~seed:2 n in
  let pool = Pool.create ~domains:(min 4 (Domain.recommended_domain_count ())) () in
  let run () = N_lu.blocked_par ~pool ~block:32 (Linalg.copy_mat a0) in
  let tbl =
    Table.create
      ~title:(Printf.sprintf "Parallel blocked LU at N=%d, observability on/off" n)
      [ ("Variant", Table.Left); ("Time", Table.Right); ("vs off", Table.Right) ]
  in
  let t_off = time run in
  Table.add_row tbl [ "metrics off (null sink)"; Table.cell_s t_off; Table.cell_f 1.0 ];
  (* serve-daemon default: no tracing sink, no metrics, but the flight
     recorder ring captures every event — the "always on" cost. *)
  Obs.set_sink (Obs.Recorder.sink ());
  let t_rec = time run in
  Obs.set_sink Obs.null;
  Obs.Recorder.clear ();
  Table.add_row tbl
    [ "recorder only (ring sink)"; Table.cell_s t_rec; Table.cell_f (t_rec /. t_off) ];
  Obs.Metrics.set_enabled true;
  let t_on = time run in
  Obs.Metrics.set_enabled false;
  Table.add_row tbl
    [ "metrics on"; Table.cell_s t_on; Table.cell_f (t_on /. t_off) ];
  let mem, _events = Obs.memory () in
  Obs.set_sink mem;
  Obs.Metrics.set_enabled true;
  let t_trace = time run in
  Obs.Metrics.set_enabled false;
  Obs.set_sink Obs.null;
  Table.add_row tbl
    [ "metrics + memory sink"; Table.cell_s t_trace; Table.cell_f (t_trace /. t_off) ];
  Pool.shutdown pool;
  output ~id:"obs-overhead" tbl;
  (* PROF-CONT: overhead of the continuous span-stack sampler on the
     same workload.  The sampled domains only pay for maintaining the
     per-domain span stack (one cons per span); the ticker domain does
     the folding.  The acceptance bar is < 5% at ~100 Hz. *)
  let ptbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Parallel blocked LU at N=%d, span-stack sampler on/off" n)
      [ ("Variant", Table.Left); ("Time", Table.Right); ("vs off", Table.Right) ]
  in
  let ppool = Pool.create ~domains:(min 4 (Domain.recommended_domain_count ())) () in
  let prun () = N_lu.blocked_par ~pool:ppool ~block:32 (Linalg.copy_mat a0) in
  let t_base = time prun in
  Table.add_row ptbl
    [ "sampler off"; Table.cell_s t_base; Table.cell_f 1.0 ];
  let sampled hz label =
    Obs.Sampler.start ~hz ();
    let t = time prun in
    Obs.Sampler.stop ();
    (* On a 1-core box the busy bench thread starves the ticker thread
       of its own domain (samples land only at yield points); worker
       domains of a real pool are sampled at the full rate. *)
    Printf.printf "  %s: %d samples, %d distinct stacks\n%!" label
      (Obs.Sampler.samples ())
      (List.length (Obs.Sampler.folded ()));
    Obs.Sampler.reset ();
    Table.add_row ptbl
      [ label; Table.cell_s t; Table.cell_f (t /. t_base) ]
  in
  sampled 97. "sampler 97 Hz";
  sampled 997. "sampler 997 Hz";
  Pool.shutdown ppool;
  output ~id:"prof-cont" ptbl;
  (* and what the metrics actually recorded, as a smoke test *)
  Obs.Metrics.set_enabled true;
  let p2 = Pool.create ~domains:2 () in
  N_lu.blocked_par ~pool:p2 ~block:32 (Linalg.copy_mat a0);
  Pool.shutdown p2;
  print_string (Obs.Metrics.report ());
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* PROFILE: cost of the memory-hierarchy profiler's attribution tiers  *)
(* ------------------------------------------------------------------ *)

(* The claim being timed: attribution is zero-cost when disabled.  The
   interpreter's hook signature carries a [ref_id], but without a refmap
   the bare run and the flat single-level trace are exactly the seed's
   code paths; only opting into the full profiler (hierarchy walk +
   reuse-distance engine + per-reference counters) pays for it. *)
let profile_suite () =
  banner "PROFILE: per-reference attribution overhead (interpreted LU)";
  let entry = Option.get (Blockability.find "lu") in
  let kernel = entry.Blockability.kernel in
  let n = if quick then 32 else 64 in
  let bindings = [ ("N", n) ] in
  let block = kernel.Kernel_def.block in
  let arrays = kernel.Kernel_def.traced in
  let machine = Arch.rs6000_540 in
  let fresh () = Kernel_def.make_env kernel ~bindings ~seed:42 in
  let tbl =
    Table.create
      ~title:(Printf.sprintf "Interpreted LU at N=%d: hook tiers" n)
      [ ("Variant", Table.Left); ("Time", Table.Right); ("vs bare", Table.Right) ]
  in
  let t_bare = time (fun () -> Exec.run (fresh ()) block) in
  Table.add_row tbl [ "no hook"; Table.cell_s t_bare; Table.cell_f 1.0 ];
  let t_flat =
    time (fun () -> ignore (Trace.run machine (fresh ()) ~arrays block))
  in
  Table.add_row tbl
    [
      "flat cache trace (attribution off)"; Table.cell_s t_flat;
      Table.cell_f (t_flat /. t_bare);
    ];
  let t_prof =
    time (fun () -> ignore (Trace.run_profile machine (fresh ()) ~arrays block))
  in
  Table.add_row tbl
    [
      "hierarchy profiler (attribution on)"; Table.cell_s t_prof;
      Table.cell_f (t_prof /. t_bare);
    ];
  output ~id:"profile-overhead" tbl

(* ------------------------------------------------------------------ *)
(* NATIVE: JIT-compiled kernels — the paper's speedups on real hardware *)
(* ------------------------------------------------------------------ *)

(* Every other table times hand-written OCaml ports; this one times the
   IR itself, lowered by lib/codegen and verified bitwise against the
   interpreter before the clock starts (native_compare refuses to time
   a diverging plugin).  The Model column is the cache simulator's
   memory-cycle ratio at the verification size — prediction next to
   measurement, which is the paper's whole argument. *)
let native_suite () =
  banner "NATIVE  JIT-compiled point vs transformed kernels";
  match Jit.available () with
  | Error m -> Printf.printf "native suite skipped: %s\n" m
  | Ok () ->
      let tbl =
        Table.create ~title:"Native (JIT) point vs transformed, bitwise-verified"
          [
            ("Kernel", Table.Left); ("Params", Table.Left);
            ("Point", Table.Right); ("Xformed", Table.Right);
            ("Speedup", Table.Right); ("Model", Table.Right);
          ]
      in
      let reps = if quick then 2 else 3 in
      let cases =
        if quick then
          [
            ("lu", [ ("N", 256) ], Some 32);
            ("lu_opt", [ ("N", 256) ], Some 32);
            ("lu_opt", [ ("N", 512) ], Some 32);
            ("lu_pivot", [ ("N", 256) ], Some 32);
            ("lu_pivot_opt", [ ("N", 256) ], Some 32);
            ("matmul", [ ("N", 192); ("FREQ_PCT", 10) ], None);
            ("givens", [ ("M", 192); ("N", 192) ], None);
          ]
        else
          [
            ("lu", [ ("N", 384) ], Some 32);
            ("lu", [ ("N", 640) ], Some 32);
            ("lu_opt", [ ("N", 384) ], Some 32);
            ("lu_opt", [ ("N", 640) ], Some 32);
            ("lu_opt", [ ("N", 1024) ], Some 32);
            ("lu_pivot", [ ("N", 384) ], Some 32);
            ("lu_pivot_opt", [ ("N", 384) ], Some 32);
            ("lu_pivot_opt", [ ("N", 640) ], Some 32);
            ("matmul", [ ("N", 320); ("FREQ_PCT", 10) ], None);
            ("givens", [ ("M", 384); ("N", 384) ], None);
            ("conv", [ ("N1", 1200); ("N2", 1200); ("N3", 1600) ], None);
          ]
      in
      List.iter
        (fun (name, bindings, block) ->
          let entry = Option.get (Blockability.find name) in
          match Blockability.native_compare ~bindings ~reps ?block entry with
          | Error m -> Printf.printf "%s: %s\n" name m
          | Ok r ->
              Table.add_row tbl
                [
                  name;
                  String.concat " "
                    (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                       r.Blockability.nt_bindings);
                  Table.cell_s r.Blockability.nt_point_s;
                  Table.cell_s r.Blockability.nt_transformed_s;
                  Table.cell_f r.Blockability.nt_speedup;
                  (match r.Blockability.nt_model_speedup with
                  | None -> "-"
                  | Some m -> Printf.sprintf "%.2fx" m);
                ])
        cases;
      output ~id:"native" tbl;
      print_string
        "every row is bitwise-verified against the interpreter before timing;\n\
         paper (RS/6000-540): blocked LU 2.5-3.2x, Givens 2.04-5.49x\n"

(* ------------------------------------------------------------------ *)
(* NATIVE-C: the same measurement through the C backend               *)
(* ------------------------------------------------------------------ *)

(* The paper's blocking argument is about memory traffic, so the
   point-vs-blocked ratio should survive a change of scalar code
   generator.  This table runs native_compare once per backend on the
   same kernels: each row is bitwise-verified against the interpreter
   (so the two backends are transitively bitwise-equal), and the
   Speedup column should roughly agree down the pairs — a divergence
   would mean the ratio was an artifact of one compiler, not of the
   blocking. *)
let native_c_suite () =
  banner "NATIVE-C  point vs transformed, per code-generation backend";
  match (Jit.available (), Cc.available ()) with
  | Error m, _ -> Printf.printf "native-c suite skipped: %s\n" m
  | _, Error m -> Printf.printf "native-c suite skipped: %s\n" m
  | Ok (), Ok () ->
      let tbl =
        Table.create ~title:"Native point vs transformed, per backend"
          [
            ("Kernel", Table.Left); ("Params", Table.Left);
            ("Backend", Table.Left); ("Point", Table.Right);
            ("Xformed", Table.Right); ("Speedup", Table.Right);
          ]
      in
      let reps = if quick then 2 else 3 in
      let cases =
        if quick then
          [
            ("lu", [ ("N", 256) ], Some 32);
            ("lu_opt", [ ("N", 256) ], Some 32);
            ("lu_pivot_opt", [ ("N", 256) ], Some 32);
            ("givens", [ ("M", 192); ("N", 192) ], None);
          ]
        else
          [
            ("lu", [ ("N", 384) ], Some 32);
            ("lu_opt", [ ("N", 384) ], Some 32);
            ("lu_opt", [ ("N", 640) ], Some 32);
            ("lu_pivot_opt", [ ("N", 384) ], Some 32);
            ("givens", [ ("M", 384); ("N", 384) ], None);
          ]
      in
      List.iter
        (fun (name, bindings, block) ->
          let entry = Option.get (Blockability.find name) in
          List.iter
            (fun backend ->
              match
                Blockability.native_compare ~backend ~bindings ~reps ?block
                  entry
              with
              | Error m ->
                  let module B = (val backend : Backend.S) in
                  Printf.printf "%s (%s): %s\n" name B.tag m
              | Ok r ->
                  Table.add_row tbl
                    [
                      name;
                      String.concat " "
                        (List.map
                           (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                           r.Blockability.nt_bindings);
                      r.Blockability.nt_backend;
                      Table.cell_s r.Blockability.nt_point_s;
                      Table.cell_s r.Blockability.nt_transformed_s;
                      Table.cell_f r.Blockability.nt_speedup;
                    ])
            Backend.all)
        cases;
      output ~id:"native-c" tbl;
      print_string
        "same IR, same buffers, two code generators; the point-vs-blocked\n\
         ratio should survive the backend swap\n"

(* ------------------------------------------------------------------ *)
(* SERVE: the batched compile/execute request service                  *)
(* ------------------------------------------------------------------ *)

(* Measures the service's two claims end to end, through the same
   [Serve.handle_line] the daemon runs: a warm-blueprint compile request
   is a hash lookup (>= 10x under the cold ocamlopt run), and a batch
   dispatch over the domain pool beats the same executions issued one
   request at a time — with identical result digests, since every item
   runs in its own environment. *)
let serve_suite () =
  banner "SERVE  blueprint-keyed compile/execute service";
  match Jit.available () with
  | Error m -> Printf.printf "serve suite skipped: %s\n" m
  | Ok () ->
      (* A fresh on-disk cache so each structure's first compile is a
         real ocamlopt run; the kernels here are ones no other suite
         compiles, so the in-process memo is cold too. *)
      let tmp = Filename.temp_file "blockc-serve-bench" "" in
      Sys.remove tmp;
      Unix.mkdir tmp 0o700;
      Unix.putenv "BLOCKC_JIT_CACHE" tmp;
      let exec_pool = Pool.default () in
      let request line =
        let t0 = Unix.gettimeofday () in
        let resp, _ = Serve.handle_line ~exec_pool line in
        (resp, Unix.gettimeofday () -. t0)
      in
      let jfield name = function
        | Json_min.Object kvs -> List.assoc_opt name kvs
        | _ -> None
      in
      let jstr name j =
        match jfield name j with Some (Json_min.String s) -> s | _ -> "?"
      in
      let parse resp =
        match Json_min.parse resp with
        | Ok v -> v
        | Error m -> failwith ("serve response did not parse: " ^ m)
      in
      let tbl =
        Table.create ~title:"serve: cold vs warm-blueprint compile requests"
          [
            ("Kernel", Table.Left); ("Cold", Table.Right);
            ("Warm", Table.Right); ("Ratio", Table.Right);
            ("Dispositions", Table.Left);
          ]
      in
      List.iter
        (fun kernel ->
          let line =
            Printf.sprintf
              "{\"op\":\"compile\",\"kernel\":\"%s\",\"variant\":\"transformed\"}"
              kernel
          in
          let r1, cold = request line in
          let r2, warm = request line in
          let d1 = jstr "disposition" (parse r1)
          and d2 = jstr "disposition" (parse r2) in
          Table.add_row tbl
            [
              kernel; Table.cell_s cold; Table.cell_s warm;
              Printf.sprintf "%.0fx" (cold /. warm);
              Printf.sprintf "%s -> %s" d1 d2;
            ])
        [ "cholesky"; "trisolve" ];
      output ~id:"serve_compile" tbl;
      let tbl =
        Table.create
          ~title:"serve: batched vs sequential execution of one blueprint"
          [
            ("Dispatch", Table.Left); ("Requests", Table.Right);
            ("Total", Table.Right); ("Speedup", Table.Right);
            ("Results", Table.Left);
          ]
      in
      let sizes = List.init (if quick then 8 else 16) (fun i -> 48 + (8 * i)) in
      let n = List.length sizes in
      let digests_of j =
        match jfield "digests" j with
        | Some (Json_min.Array ds) ->
            List.map (function Json_min.String s -> s | _ -> "?") ds
        | _ -> []
      in
      let seq_digests = ref [] in
      let seq_s =
        time_once (fun () ->
            seq_digests :=
              List.map
                (fun sz ->
                  let line =
                    Printf.sprintf
                      "{\"op\":\"execute\",\"kernel\":\"cholesky\",\"bindings\":{\"N\":%d}}"
                      sz
                  in
                  jstr "digest" (parse (fst (request line))))
                sizes)
      in
      let batch_digests = ref [] in
      let batch_s =
        time_once (fun () ->
            let line =
              Printf.sprintf
                "{\"op\":\"batch\",\"kernel\":\"cholesky\",\"sizes\":[%s]}"
                (String.concat "," (List.map string_of_int sizes))
            in
            batch_digests := digests_of (parse (fst (request line))))
      in
      let bitwise =
        if !seq_digests = !batch_digests && !batch_digests <> [] then
          "bitwise equal"
        else "DIGEST MISMATCH"
      in
      Table.add_row tbl
        [ "sequential"; string_of_int n; Table.cell_s seq_s; "1.00x"; "-" ];
      Table.add_row tbl
        [
          "batched"; "1"; Table.cell_s batch_s;
          Printf.sprintf "%.2fx" (seq_s /. batch_s); bitwise;
        ];
      output ~id:"serve_batch" tbl;
      Printf.printf
        "warm compile is a blueprint-key hash lookup; the batch is one \
         request fanned across %d domains\n"
        (Pool.size exec_pool)

(* ------------------------------------------------------------------ *)
(* the regression gate                                                 *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_gate path =
  let fail msg =
    Printf.eprintf "bench gate: %s\n" msg;
    exit 2
  in
  let baseline =
    match Json_min.parse (read_file path) with
    | Ok v -> v
    | Error m -> fail (path ^ ": " ^ m)
  in
  let current =
    match Json_min.parse (Table.json_of_tables !registry) with
    | Ok v -> v
    | Error m -> fail ("current run: " ^ m)
  in
  match Bench_gate.compare ?tolerance ?slack_s:slack ~baseline ~current () with
  | Error m -> fail m
  | Ok verdict ->
      Printf.printf "\n%s" (Bench_gate.report verdict);
      if check_mode && not (Bench_gate.ok verdict) then exit 1

let () =
  if want "t1" then t1 ();
  if want "t2" then t2 ();
  if want "t3" then t3 ();
  if want "t4" then t4 ();
  if want "t5" then t5 ();
  if want "figures" then figures ();
  if want "cache" then cache_ablation ();
  if want "ablation" then ablation ();
  if want "bechamel" then bechamel_tests ();
  if want "par" then par ();
  if want "obs" then obs_suite ();
  if want "profile" then profile_suite ();
  if want "native" then native_suite ();
  if want "native-c" then native_c_suite ();
  if want "serve" then serve_suite ();
  (match json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Table.json_of_tables !registry);
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote %d table(s) to %s\n" (List.length !registry) path);
  (match traj_out with
  | None -> ()
  | Some out ->
      let entries =
        match traj_base with
        | None -> []
        | Some path -> (
            match Bench_gate.load_trajectory path with
            | Ok [] ->
                Printf.printf "\ntrajectory %s is empty: starting one\n" path;
                []
            | Ok entries -> entries
            | Error m ->
                Printf.eprintf "main.exe: %s\n" m;
                exit 2)
      in
      let tables =
        match Json_min.parse (Table.json_of_tables !registry) with
        | Ok v -> v
        | Error m ->
            Printf.eprintf "main.exe: current run did not serialize: %s\n" m;
            exit 2
      in
      let date =
        let t = Unix.gmtime (Unix.time ()) in
        Printf.sprintf "%04d-%02d-%02d" (t.Unix.tm_year + 1900)
          (t.Unix.tm_mon + 1) t.Unix.tm_mday
      in
      let label =
        String.concat " " selected ^ (if quick then " --quick" else "")
      in
      let doc = Bench_gate.append_trajectory_entry ~date ~label ~tables entries in
      let oc = open_out out in
      output_string oc doc;
      close_out oc;
      Printf.printf "trajectory: %d entr%s -> %s\n"
        (List.length entries + 1)
        (if entries = [] then "y" else "ies")
        out;
      (* Neighbour drift: each run vs the very next one, at a tighter
         tolerance than the gate — surfaces a slope of small slowdowns
         before the 1.5x baseline gate would trip.  Informational: the
         trajectory build must not fail on it. *)
      let all =
        entries @ [ Bench_gate.trajectory_entry ~date ~label ~tables ]
      in
      match Bench_gate.drift all with
      | Error m -> Printf.eprintf "main.exe: drift: %s\n" m
      | Ok steps -> print_string (Bench_gate.drift_report steps));
  Option.iter run_gate baseline_path;
  Printf.printf "\ndone.\n"
