let memory_cycles (m : Arch.t) (s : Cache.stats) =
  (s.hits * m.hit_cycles) + (s.misses * m.miss_cycles)

let speedup ~baseline ~optimized =
  if optimized = 0 then 1.0 else float_of_int baseline /. float_of_int optimized

(* ---- model predictions and their validation --------------------- *)

let predicted_misses r (m : Arch.t) =
  Reuse.misses_for_lines r (m.cache_bytes / m.line_bytes)

let predicted_miss_ratio r (m : Arch.t) =
  Reuse.miss_ratio_for_lines r (m.cache_bytes / m.line_bytes)

let predicted_cycles r (m : Arch.t) =
  let misses = predicted_misses r m in
  let hits = Reuse.accesses r - misses in
  (hits * m.hit_cycles) + (misses * m.miss_cycles)

let divergence ~predicted ~simulated =
  if simulated = 0 then if predicted = 0 then 0.0 else 1.0
  else
    float_of_int (abs (predicted - simulated)) /. float_of_int simulated

type validation = {
  v_predicted : int;
  v_simulated : int;
  v_divergence : float;  (** |predicted - simulated| / simulated *)
  v_ratio_gap : float;  (** |predicted - simulated| miss ratio, absolute *)
}

let validate r (m : Arch.t) (s : Cache.stats) =
  let predicted = predicted_misses r m in
  let ratio p = if s.accesses = 0 then 0.0 else float_of_int p /. float_of_int s.accesses in
  {
    v_predicted = predicted;
    v_simulated = s.misses;
    v_divergence = divergence ~predicted ~simulated:s.misses;
    v_ratio_gap = Float.abs (ratio predicted -. Cache.miss_ratio s);
  }
