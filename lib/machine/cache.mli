(** Set-associative LRU cache simulator.

    The paper's measurements were taken on an IBM RS/6000 model 540; we
    cannot rerun those, so the repository substitutes this simulator (fed
    by the IR interpreter's memory trace) to reproduce the *memory
    behaviour* each transformation is supposed to change: miss counts
    before and after blocking.  Write misses allocate (the RS/6000 data
    cache was write-allocate); replacement is true LRU per set.

    Misses are classified: cold (compulsory — first touch of the line
    ever), capacity (a fully-associative LRU cache of the same total
    size would also miss: stack distance >= number of lines) and
    conflict (only the set mapping made it miss).  The exact
    capacity/conflict split needs a reuse-distance engine running
    alongside the cache, which costs O(log n) per access, so it is
    opt-in via {!create_classified}; plain {!create} caches still count
    cold misses and evictions exactly but lump every non-cold miss into
    [capacity_misses]. *)

type t

type klass = Hit | Cold | Capacity | Conflict

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  evictions : int;  (** valid lines displaced by a fill *)
  cold_misses : int;  (** compulsory: first-ever touch of the line *)
  capacity_misses : int;
      (** would miss even fully-associative; on an unclassified cache
          this is every non-cold miss (capacity OR conflict) *)
  conflict_misses : int;
      (** set-mapping induced; always 0 on unclassified caches *)
}
(** Invariant: [misses = cold_misses + capacity_misses + conflict_misses]
    and [accesses = hits + misses]. *)

val create : size_bytes:int -> line_bytes:int -> assoc:int -> t
(** [size_bytes] and [line_bytes] must be powers of two, and
    [size_bytes mod (line_bytes * assoc) = 0]. *)

val create_classified : size_bytes:int -> line_bytes:int -> assoc:int -> t
(** Like {!create}, plus an internal {!Reuse} engine so every miss is
    exactly classified and reuse-distance histograms are available via
    {!reuse}. *)

val access : t -> int -> bool
(** [access t addr] touches the byte address; returns [true] on hit.
    Updates LRU state. *)

val access_classify : t -> int -> klass
(** Like {!access} but reports what kind of access it was. *)

val access_bytes : t -> int -> bytes:int -> bool
(** [access_bytes t addr ~bytes] touches every line overlapped by the
    byte range [addr, addr+bytes) — one counted access per line, so a
    straddling access costs two.  [true] iff all lines hit. *)

val lines : t -> int
(** Total capacity in lines (sets x associativity). *)

val reuse : t -> Reuse.t option
(** The classification engine ([Some] only for {!create_classified}
    caches).  Its histogram is over this cache's line granularity. *)

val stats : t -> stats
val reset : t -> unit

val miss_ratio : stats -> float
(** misses / accesses, 0 when there were no accesses. *)
