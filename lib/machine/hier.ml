type level_spec = {
  l_name : string;
  l_size : int;
  l_line : int;
  l_assoc : int;
  l_hit_cycles : int;
}

type spec = {
  s_levels : level_spec list;
  s_mem_cycles : int;
  s_tlb_entries : int;
  s_tlb_assoc : int;
  s_page_bytes : int;
  s_tlb_miss_cycles : int;
}

(* Scale a two-level hierarchy off the machine description: L1 is the
   machine's cache verbatim; L2 is 16x larger and 8-way (min the L1
   associativity so tiny test caches stay legal); hitting L2 costs what
   the flat model charged a miss, and memory costs 4x that.  The TLB is
   64 entries of 4 KB pages, 4-way. *)
let of_arch (m : Arch.t) =
  {
    s_levels =
      [
        {
          l_name = "L1";
          l_size = m.cache_bytes;
          l_line = m.line_bytes;
          l_assoc = m.assoc;
          l_hit_cycles = m.hit_cycles;
        };
        {
          l_name = "L2";
          l_size = 16 * m.cache_bytes;
          l_line = m.line_bytes;
          l_assoc = max 8 m.assoc;
          l_hit_cycles = m.miss_cycles;
        };
      ];
    s_mem_cycles = 4 * m.miss_cycles;
    s_tlb_entries = 64;
    s_tlb_assoc = 4;
    s_page_bytes = 4096;
    s_tlb_miss_cycles = 2 * m.miss_cycles;
  }

type level = { l_spec : level_spec; cache : Cache.t }

type t = {
  levels : level array;  (* L1 first *)
  tlb : Cache.t;
  spec : spec;
}

let create ?(classify = true) spec =
  if spec.s_levels = [] then invalid_arg "Hier.create: no levels";
  let levels =
    Array.of_list
      (List.mapi
         (fun i (l : level_spec) ->
           let make =
             (* classify L1 exactly (it also powers the reuse histograms);
                outer levels only need hit/miss/cold counts. *)
             if classify && i = 0 then Cache.create_classified else Cache.create
           in
           {
             l_spec = l;
             cache = make ~size_bytes:l.l_size ~line_bytes:l.l_line ~assoc:l.l_assoc;
           })
         spec.s_levels)
  in
  let tlb =
    Cache.create
      ~size_bytes:(spec.s_tlb_entries * spec.s_page_bytes)
      ~line_bytes:spec.s_page_bytes ~assoc:spec.s_tlb_assoc
  in
  { levels; tlb; spec }

type access_result = {
  hit_level : int;  (** 0 = L1, 1 = L2, ...; [n_levels] = memory *)
  tlb_hit : bool;
  klass : Cache.klass;  (** the L1 outcome (exact when classified) *)
}

let access t addr =
  let klass = Cache.access_classify t.levels.(0).cache addr in
  let n = Array.length t.levels in
  let rec probe i =
    if i >= n then n
    else if Cache.access t.levels.(i).cache addr then i
    else probe (i + 1)
  in
  let hit_level = if klass = Cache.Hit then 0 else probe 1 in
  let tlb_hit = Cache.access t.tlb addr in
  { hit_level; tlb_hit; klass }

let n_levels t = Array.length t.levels

let level_stats t =
  Array.to_list
    (Array.map (fun l -> (l.l_spec.l_name, Cache.stats l.cache)) t.levels)

let tlb_stats t = Cache.stats t.tlb

let reuse t = Cache.reuse t.levels.(0).cache

let l1 t = t.levels.(0).cache

(* Per-level latency model: an access pays the hit cycles of every level
   it probes (the walk stops at the first hit), a full miss additionally
   pays the memory latency, and each TLB miss its refill cost.  With the
   default [of_arch] spec this stays within one L1-hit-cycle per miss of
   the flat [Cost.memory_cycles] model when the working set is
   L2-resident. *)
let cycles t =
  let per_level =
    Array.to_list t.levels
    |> List.map (fun l ->
           let s = Cache.stats l.cache in
           s.Cache.accesses * l.l_spec.l_hit_cycles)
    |> List.fold_left ( + ) 0
  in
  let last = t.levels.(Array.length t.levels - 1) in
  let mem_fetches = (Cache.stats last.cache).Cache.misses in
  let tlb_misses = (Cache.stats t.tlb).Cache.misses in
  per_level + (mem_fetches * t.spec.s_mem_cycles)
  + (tlb_misses * t.spec.s_tlb_miss_cycles)

let reset t =
  Array.iter (fun l -> Cache.reset l.cache) t.levels;
  Cache.reset t.tlb
