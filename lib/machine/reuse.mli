(** Exact LRU reuse-distance (stack-distance) analysis.

    Mattson's classic result: under LRU, an access with stack distance
    [d] (the number of *distinct* lines touched since the previous
    access to the same line) hits in every fully-associative cache with
    more than [d] lines and misses in every smaller one.  Recording the
    exact distance histogram of one trace therefore yields the miss
    ratio of *every* cache size in a single simulation pass — the
    profiler uses this to draw miss-vs-cache-size curves and to
    validate the cost model's predictions against set-associative
    simulation (divergence = conflict misses the stack model cannot
    see).

    Implementation: a Fenwick tree over access timestamps holding one
    mark per distinct line (its last access time); the distance is the
    number of marks past the line's previous timestamp, O(log n) per
    access. *)

type t

val create : unit -> t

val access : t -> int -> int
(** [access t line] records a touch of [line] (any integer id — the
    callers pass cache-line numbers) and returns its stack distance, or
    [-1] for a cold (first-ever) access. *)

val cold : t -> int
(** Number of cold accesses so far. *)

val accesses : t -> int
(** Total accesses so far. *)

val distinct_lines : t -> int
(** Number of distinct lines seen — the trace's total footprint. *)

val histogram : t -> (int * int) list
(** Exact [(distance, count)] pairs, ascending by distance.  Cold
    accesses are not in the histogram; see {!cold}. *)

val max_distance : t -> int
(** Largest distance recorded, [-1] when none. *)

val misses_for_lines : t -> int -> int
(** [misses_for_lines t lines]: misses this trace would take in a
    fully-associative LRU cache of [lines] lines (cold + distances
    >= [lines]). *)

val miss_ratio_for_lines : t -> int -> float

val miss_curve : t -> max_lines:int -> (int * int) list
(** [(lines, misses)] at power-of-two cache sizes [1, 2, 4, ...,
    <= max_lines] — the whole miss-vs-size curve from one pass. *)

val reset : t -> unit
