(** Multi-level memory hierarchy: a stack of LRU caches (L1, L2, ...)
    plus a TLB, probed per simulated access.

    The flat single-cache model in {!Arch}/{!Cache} is what the paper's
    tables need; the profiler wants to know *where* in the hierarchy
    each reference's misses land, so this module composes {!Cache}
    instances into an inclusive probe chain (an access walks L1, L2, ...
    until it hits; every probed level updates its own LRU state) and a
    page-granularity TLB probed on every access.

    The L1 is classified ({!Cache.create_classified}) by default, which
    both splits its misses into cold/capacity/conflict and feeds the
    {!Reuse} engine the profiler derives miss-vs-size curves from. *)

type level_spec = {
  l_name : string;
  l_size : int;
  l_line : int;
  l_assoc : int;
  l_hit_cycles : int;
}

type spec = {
  s_levels : level_spec list;  (** innermost (L1) first; non-empty *)
  s_mem_cycles : int;  (** latency when every level misses *)
  s_tlb_entries : int;
  s_tlb_assoc : int;
  s_page_bytes : int;
  s_tlb_miss_cycles : int;
}

val of_arch : Arch.t -> spec
(** A two-level hierarchy scaled off the machine description: L1 is the
    machine's cache verbatim, L2 is 16x larger (8-way), memory costs 4x
    the machine's miss latency, and the TLB is 64 entries of 4 KB
    pages.  The L2-resident cost degenerates to the flat
    {!Cost.memory_cycles} model. *)

type t

val create : ?classify:bool -> spec -> t
(** [classify] (default true) turns on exact L1 miss classification and
    reuse-distance recording. *)

type access_result = {
  hit_level : int;  (** 0 = L1 hit, 1 = L2 hit, ...; [n_levels t] = memory *)
  tlb_hit : bool;
  klass : Cache.klass;  (** the L1 outcome *)
}

val access : t -> int -> access_result
(** Probe the hierarchy with a byte address. *)

val n_levels : t -> int

val level_stats : t -> (string * Cache.stats) list
(** Per-level stats, innermost first.  Level [i+1]'s accesses equal
    level [i]'s misses (the probe chain). *)

val tlb_stats : t -> Cache.stats

val reuse : t -> Reuse.t option
(** The L1's reuse-distance engine (in L1-line granularity); [None]
    when created with [~classify:false]. *)

val l1 : t -> Cache.t

val cycles : t -> int
(** Memory cycles under the per-level latency model: each access pays
    the hit cycles of every level it probes, plus memory latency per
    full miss and the refill cost per TLB miss. *)

val reset : t -> unit
