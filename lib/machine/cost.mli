(** Cycle-count cost model over simulated cache statistics, and the
    validation layer that confronts its predictions with what the
    set-associative simulation actually measured.

    The analytical side is Mattson's stack-distance model ({!Reuse}): a
    fully-associative LRU cache of the machine's size misses exactly the
    cold accesses plus those with stack distance >= lines.  The
    simulator has finite associativity, so the model under-counts by
    the conflict misses — {!validate} reports that gap per run, which is
    the profiler's "predicted vs simulated" table.  A divergence that
    stays small says the stack model (and anything derived from it, like
    miss-vs-size curves) can be trusted for block-size selection on that
    kernel; a large one flags conflict pathology the model cannot see. *)

val memory_cycles : Arch.t -> Cache.stats -> int
(** hits * hit_cycles + misses * miss_cycles. *)

val speedup : baseline:int -> optimized:int -> float
(** baseline / optimized as a float; 1.0 when optimized is 0. *)

val predicted_misses : Reuse.t -> Arch.t -> int
(** Stack-distance prediction of the machine's cache misses on the
    recorded trace ({!Reuse.misses_for_lines} at the machine's line
    count). *)

val predicted_miss_ratio : Reuse.t -> Arch.t -> float

val predicted_cycles : Reuse.t -> Arch.t -> int
(** {!memory_cycles} over the predicted hit/miss split. *)

val divergence : predicted:int -> simulated:int -> float
(** |predicted - simulated| / simulated (1.0 when simulated is 0 but
    predicted is not; 0.0 when both are 0). *)

type validation = {
  v_predicted : int;
  v_simulated : int;
  v_divergence : float;  (** relative miss-count divergence *)
  v_ratio_gap : float;  (** absolute miss-ratio gap (points) *)
}

val validate : Reuse.t -> Arch.t -> Cache.stats -> validation
(** Compare the stack-distance prediction against one simulated run of
    the same trace ([s] is the simulated cache's stats). *)
