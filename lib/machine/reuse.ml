(* Exact LRU reuse distances (Mattson's stack algorithm) in O(log n) per
   access: a Fenwick tree over access timestamps counts, for each line's
   previous access time p, how many *distinct* lines were touched in
   (p, now) — that count is the stack distance.  The marked timestamps
   are exactly the last-access times of the distinct lines seen so far,
   so the tree never holds more live marks than there are lines. *)

type t = {
  mutable time : int;  (* timestamps are 1-based; [time] = last issued *)
  mutable tree : int array;  (* Fenwick over 1..cap *)
  mutable cap : int;
  last : (int, int) Hashtbl.t;  (* line -> last access time (marked) *)
  hist : (int, int) Hashtbl.t;  (* exact distance -> access count *)
  mutable cold : int;
  mutable max_distance : int;
}

let create () =
  {
    time = 0;
    tree = Array.make 1025 0;
    cap = 1024;
    last = Hashtbl.create 256;
    hist = Hashtbl.create 64;
    cold = 0;
    max_distance = -1;
  }

(* Fenwick primitives, 1-based. *)

let rec tree_add t i v =
  if i <= t.cap then begin
    t.tree.(i) <- t.tree.(i) + v;
    tree_add t (i + (i land -i)) v
  end

let prefix t i =
  let rec go acc i = if i <= 0 then acc else go (acc + t.tree.(i)) (i - (i land -i)) in
  go 0 i

let grow t =
  let cap = t.cap * 2 in
  let tree = Array.make (cap + 1) 0 in
  let old = (t.tree, t.cap) in
  t.tree <- tree;
  t.cap <- cap;
  ignore old;
  (* Re-mark the live timestamps (one per distinct line). *)
  Hashtbl.iter (fun _ ts -> tree_add t ts 1) t.last

let bump_hist t d =
  (match Hashtbl.find_opt t.hist d with
  | Some n -> Hashtbl.replace t.hist d (n + 1)
  | None -> Hashtbl.add t.hist d 1);
  if d > t.max_distance then t.max_distance <- d

let access t line =
  t.time <- t.time + 1;
  if t.time > t.cap then grow t;
  let d =
    match Hashtbl.find_opt t.last line with
    | None ->
        t.cold <- t.cold + 1;
        -1
    | Some p ->
        (* marks strictly after p = distinct other lines since p *)
        let d = Hashtbl.length t.last - prefix t p in
        tree_add t p (-1);
        bump_hist t d;
        d
  in
  tree_add t t.time 1;
  Hashtbl.replace t.last line t.time;
  d

let cold t = t.cold
let accesses t = t.time
let distinct_lines t = Hashtbl.length t.last

let histogram t =
  Hashtbl.fold (fun d n acc -> (d, n) :: acc) t.hist []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let misses_for_lines t lines =
  (* A fully-associative LRU cache of [lines] lines misses exactly the
     cold accesses plus those with stack distance >= lines. *)
  Hashtbl.fold
    (fun d n acc -> if d >= lines then acc + n else acc)
    t.hist t.cold

let miss_ratio_for_lines t lines =
  if t.time = 0 then 0.0
  else float_of_int (misses_for_lines t lines) /. float_of_int t.time

let miss_curve t ~max_lines =
  let rec go acc lines =
    if lines > max_lines then List.rev acc
    else go ((lines, misses_for_lines t lines) :: acc) (lines * 2)
  in
  go [] 1

let reset t =
  t.time <- 0;
  t.tree <- Array.make 1025 0;
  t.cap <- 1024;
  Hashtbl.reset t.last;
  Hashtbl.reset t.hist;
  t.cold <- 0;
  t.max_distance <- -1

let max_distance t = t.max_distance
