type klass = Hit | Cold | Capacity | Conflict

type t = {
  line_bits : int;
  n_sets : int;
  assoc : int;
  (* tags.(set * assoc + way) = line tag, or -1 when invalid.  LRU order is
     maintained by ages: ages.(slot) increases with staleness. *)
  tags : int array;
  ages : int array;
  mutable n_accesses : int;
  mutable n_hits : int;
  mutable n_evictions : int;
  mutable n_cold : int;
  mutable n_capacity : int;
  mutable n_conflict : int;
  seen : (int, unit) Hashtbl.t;  (* lines ever brought in: cold-miss detection *)
  reuse : Reuse.t option;  (* Some = classify capacity vs conflict exactly *)
}

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  evictions : int;
  cold_misses : int;
  capacity_misses : int;
  conflict_misses : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let make ~size_bytes ~line_bytes ~assoc ~reuse =
  if not (is_pow2 size_bytes && is_pow2 line_bytes) then
    invalid_arg "Cache.create: sizes must be powers of two";
  if assoc < 1 || size_bytes mod (line_bytes * assoc) <> 0 then
    invalid_arg "Cache.create: bad associativity";
  let n_sets = size_bytes / (line_bytes * assoc) in
  {
    line_bits = log2 line_bytes;
    n_sets;
    assoc;
    tags = Array.make (n_sets * assoc) (-1);
    ages = Array.make (n_sets * assoc) 0;
    n_accesses = 0;
    n_hits = 0;
    n_evictions = 0;
    n_cold = 0;
    n_capacity = 0;
    n_conflict = 0;
    seen = Hashtbl.create 256;
    reuse;
  }

let create ~size_bytes ~line_bytes ~assoc =
  make ~size_bytes ~line_bytes ~assoc ~reuse:None

let create_classified ~size_bytes ~line_bytes ~assoc =
  make ~size_bytes ~line_bytes ~assoc ~reuse:(Some (Reuse.create ()))

let lines t = t.n_sets * t.assoc
let reuse t = t.reuse

let classify t line =
  (* Exact miss taxonomy: cold = first touch ever; else capacity if even
     a fully-associative LRU cache of the same total size would miss
     (stack distance >= lines); else conflict (set mapping's fault). *)
  match t.reuse with
  | Some r ->
      let d = Reuse.access r line in
      fun ~hit ->
        if hit then Hit
        else if d < 0 then Cold
        else if d >= lines t then Capacity
        else Conflict
  | None ->
      fun ~hit ->
        if hit then Hit
        else if not (Hashtbl.mem t.seen line) then Cold
        else Capacity (* capacity-or-conflict: unclassified caches lump *)

let access_classify t addr =
  t.n_accesses <- t.n_accesses + 1;
  let line = addr lsr t.line_bits in
  let finish = classify t line in
  let set = line mod t.n_sets in
  let base = set * t.assoc in
  let found = ref (-1) in
  for w = 0 to t.assoc - 1 do
    if t.tags.(base + w) = line then found := w
  done;
  if !found >= 0 then begin
    t.n_hits <- t.n_hits + 1;
    let hit_age = t.ages.(base + !found) in
    for w = 0 to t.assoc - 1 do
      if t.ages.(base + w) < hit_age then t.ages.(base + w) <- t.ages.(base + w) + 1
    done;
    t.ages.(base + !found) <- 0;
    finish ~hit:true
  end
  else begin
    let k = finish ~hit:false in
    (match k with
    | Cold -> t.n_cold <- t.n_cold + 1
    | Capacity -> t.n_capacity <- t.n_capacity + 1
    | Conflict -> t.n_conflict <- t.n_conflict + 1
    | Hit -> assert false);
    Hashtbl.replace t.seen line ();
    (* Evict the oldest way. *)
    let victim = ref 0 in
    for w = 1 to t.assoc - 1 do
      if t.ages.(base + w) > t.ages.(base + !victim) then victim := w
    done;
    if t.tags.(base + !victim) >= 0 then t.n_evictions <- t.n_evictions + 1;
    for w = 0 to t.assoc - 1 do
      t.ages.(base + w) <- t.ages.(base + w) + 1
    done;
    t.tags.(base + !victim) <- line;
    t.ages.(base + !victim) <- 0;
    k
  end

let access t addr = access_classify t addr = Hit

let access_bytes t addr ~bytes =
  (* One cache access per line the byte range [addr, addr+bytes) touches,
     so an element straddling a line boundary costs (and warms) both
     lines.  Returns true iff every touched line hit. *)
  if bytes <= 0 then invalid_arg "Cache.access_bytes: bytes must be positive";
  let first = addr lsr t.line_bits and last = (addr + bytes - 1) lsr t.line_bits in
  let all_hit = ref true in
  for line = first to last do
    if not (access t (line lsl t.line_bits)) then all_hit := false
  done;
  !all_hit

let stats t =
  {
    accesses = t.n_accesses;
    hits = t.n_hits;
    misses = t.n_accesses - t.n_hits;
    evictions = t.n_evictions;
    cold_misses = t.n_cold;
    capacity_misses = t.n_capacity;
    conflict_misses = t.n_conflict;
  }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.ages 0 (Array.length t.ages) 0;
  t.n_accesses <- 0;
  t.n_hits <- 0;
  t.n_evictions <- 0;
  t.n_cold <- 0;
  t.n_capacity <- 0;
  t.n_conflict <- 0;
  Hashtbl.reset t.seen;
  Option.iter Reuse.reset t.reuse

let miss_ratio s =
  if s.accesses = 0 then 0.0 else float_of_int s.misses /. float_of_int s.accesses
