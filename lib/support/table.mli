(** Plain-text tables for the benchmark harness and examples.

    The benchmark executable reproduces the paper's tables; this module
    renders aligned ASCII tables from a header row and data rows. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row. Raises [Invalid_argument] if the number
    of cells differs from the number of columns. *)

val render : t -> string
(** Render the table, headers underlined, columns padded per alignment. *)

val print : t -> unit
(** [print t] writes [render t] to standard output. *)

val cell_s : float -> string
(** Format a time in seconds with 2 or 3 significant decimals, e.g. "4.59s". *)

val cell_f : float -> string
(** Format a ratio such as a speedup, e.g. "1.80". *)

val to_json : t -> string
(** The table as one JSON object:
    [{"title": ..., "headers": [...], "rows": [[...], ...]}].  Cells are
    emitted as strings exactly as rendered, so downstream tooling can
    diff trajectories without reparsing the ASCII layout. *)

val json_of_tables : (string * t) list -> string
(** [json_of_tables [(id, t); ...]] is
    [{"tables": [{"id": id, "table": ...}, ...]}] — the benchmark
    harness's [--json] payload. *)
