type align = Left | Right

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ?title columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- cells :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      t.headers
  in
  let buf = Buffer.create 256 in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (String.length title) '=');
      Buffer.add_char buf '\n'
  | None -> ());
  let emit_row cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        let align = List.nth t.aligns i in
        Buffer.add_string buf (pad align (List.nth widths i) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  emit_row (List.map (fun w -> String.make w '-') widths);
  List.iter emit_row rows;
  Buffer.contents buf

let print t = print_string (render t)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_json_strings buf cells =
  Buffer.add_char buf '[';
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape c);
      Buffer.add_char buf '"')
    cells;
  Buffer.add_char buf ']'

let add_json buf t =
  Buffer.add_string buf "{\"title\":";
  (match t.title with
  | Some title ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape title);
      Buffer.add_char buf '"'
  | None -> Buffer.add_string buf "null");
  Buffer.add_string buf ",\"headers\":";
  add_json_strings buf t.headers;
  Buffer.add_string buf ",\"rows\":[";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char buf ',';
      add_json_strings buf row)
    (List.rev t.rows);
  Buffer.add_string buf "]}"

let to_json t =
  let buf = Buffer.create 256 in
  add_json buf t;
  Buffer.contents buf

let json_of_tables tables =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"tables\":[";
  List.iteri
    (fun i (id, t) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"id\":\"";
      Buffer.add_string buf (json_escape id);
      Buffer.add_string buf "\",\"table\":";
      add_json buf t;
      Buffer.add_char buf '}')
    tables;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let cell_s secs =
  if secs >= 10.0 then Printf.sprintf "%.2fs" secs
  else if secs >= 0.1 then Printf.sprintf "%.3fs" secs
  else Printf.sprintf "%.2fms" (secs *. 1000.0)

let cell_f r = Printf.sprintf "%.2f" r
