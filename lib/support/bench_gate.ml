type regression = {
  table : string;
  row : int;
  row_label : string;
  header : string;
  base_s : float;
  cur_s : float;
  ratio : float;
}

type verdict = {
  compared : int;
  regressions : regression list;
  warnings : string list;
}

let parse_time_cell s =
  let s = String.trim s in
  let strip suffix =
    let n = String.length s and m = String.length suffix in
    if n > m && String.equal (String.sub s (n - m) m) suffix then
      float_of_string_opt (String.trim (String.sub s 0 (n - m)))
    else None
  in
  (* longest suffixes first: "ms" also ends in "s" *)
  match strip "ms" with
  | Some v -> Some (v /. 1e3)
  | None -> (
      match strip "us" with
      | Some v -> Some (v /. 1e6)
      | None -> (
          match strip "ns" with
          | Some v -> Some (v /. 1e9)
          | None -> strip "s"))

(* ---- pulling tables out of a Json_min value ---- *)

type table = { id : string; headers : string list; rows : string list list }

let field name = function
  | Json_min.Object kvs -> List.assoc_opt name kvs
  | _ -> None

let as_string_list = function
  | Json_min.Array vs ->
      Some (List.map (function Json_min.String s -> s | _ -> "") vs)
  | _ -> None

let tables_of_json doc =
  match field "tables" doc with
  | Some (Json_min.Array ts) ->
      let parse_one t =
        match (field "id" t, field "table" t) with
        | Some (Json_min.String id), Some tbl -> (
            let headers =
              Option.bind (field "headers" tbl) as_string_list
            in
            match (headers, field "rows" tbl) with
            | Some headers, Some (Json_min.Array rows) ->
                let rows = List.filter_map as_string_list rows in
                Ok { id; headers; rows }
            | _ -> Error ("table " ^ id ^ ": missing headers or rows"))
        | _ -> Error "table entry without id"
      in
      List.fold_left
        (fun acc t ->
          match (acc, parse_one t) with
          | Error _, _ -> acc
          | _, (Error _ as e) -> e
          | Ok l, Ok t -> Ok (t :: l))
        (Ok []) ts
      |> Result.map List.rev
  | _ -> Error "not a json_of_tables document: no \"tables\" array"

let compare ?(tolerance = 1.5) ?(slack_s = 0.002) ~baseline ~current () =
  match (tables_of_json baseline, tables_of_json current) with
  | Error e, _ -> Error ("baseline: " ^ e)
  | _, Error e -> Error ("current: " ^ e)
  | Ok base_tables, Ok cur_tables ->
      let warnings = ref [] and regressions = ref [] and compared = ref 0 in
      let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in
      List.iter
        (fun (bt : table) ->
          match List.find_opt (fun (ct : table) -> ct.id = bt.id) cur_tables with
          | None -> warn "table %s: in baseline but not in current run" bt.id
          | Some ct ->
              if List.length bt.rows <> List.length ct.rows then
                warn "table %s: %d baseline rows vs %d current rows" bt.id
                  (List.length bt.rows) (List.length ct.rows);
              List.iteri
                (fun ri brow ->
                  match List.nth_opt ct.rows ri with
                  | None -> ()
                  | Some crow ->
                      let row_label =
                        match brow with lbl :: _ -> lbl | [] -> ""
                      in
                      List.iteri
                        (fun ci bcell ->
                          match
                            ( parse_time_cell bcell,
                              Option.bind (List.nth_opt crow ci)
                                parse_time_cell )
                          with
                          | Some base_s, Some cur_s ->
                              incr compared;
                              if cur_s > (base_s *. tolerance) +. slack_s then
                                regressions :=
                                  {
                                    table = bt.id;
                                    row = ri;
                                    row_label;
                                    header =
                                      Option.value ~default:""
                                        (List.nth_opt bt.headers ci);
                                    base_s;
                                    cur_s;
                                    ratio = cur_s /. base_s;
                                  }
                                  :: !regressions
                          | _ -> ())
                        brow)
                bt.rows)
        base_tables;
      List.iter
        (fun (ct : table) ->
          if not (List.exists (fun (bt : table) -> bt.id = ct.id) base_tables)
          then warn "table %s: new in current run (no baseline)" ct.id)
        cur_tables;
      Ok
        {
          compared = !compared;
          regressions = List.rev !regressions;
          warnings = List.rev !warnings;
        }

let ok v = v.regressions = []

let report v =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "bench gate: %d time cell(s) compared, %d regression(s)\n"
    v.compared
    (List.length v.regressions);
  List.iter
    (fun r ->
      Printf.bprintf buf
        "  REGRESSION %s row %d (%s) column %S: %.4fs -> %.4fs (%.2fx)\n"
        r.table r.row r.row_label r.header r.base_s r.cur_s r.ratio)
    v.regressions;
  List.iter (fun w -> Printf.bprintf buf "  warning: %s\n" w) v.warnings;
  Buffer.contents buf

(* ---- perf trajectory ----------------------------------------------- *)

let load_trajectory path =
  if not (Sys.file_exists path) then Ok []
  else
    let ic = open_in_bin path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    if String.trim text = "" then Ok []
    else
      match Json_min.parse text with
      | Ok (Json_min.Array entries) -> Ok entries
      | Ok _ -> Error (path ^ ": trajectory must be a JSON array of run entries")
      | Error m -> Error (path ^ ": " ^ m)

let trajectory_entry ~date ~label ~tables =
  Json_min.Object
    [
      ("date", Json_min.String date);
      ("label", Json_min.String label);
      ("tables", tables);
    ]

let append_trajectory_entry ~date ~label ~tables entries =
  Json_min.to_string
    (Json_min.Array (entries @ [ trajectory_entry ~date ~label ~tables ]))
  ^ "\n"

(* ---- drift: neighbour comparison along the trajectory --------------- *)

type drift_step = { ds_from : string; ds_to : string; ds_verdict : verdict }

let entry_name e =
  let s name =
    match field name e with Some (Json_min.String s) -> s | _ -> "?"
  in
  s "date" ^ " [" ^ s "label" ^ "]"

let drift ?(tolerance = 1.2) ?(slack_s = 0.002) entries =
  let rec go acc = function
    | a :: (b :: _ as rest) -> (
        match (field "tables" a, field "tables" b) with
        | Some baseline, Some current -> (
            match compare ~tolerance ~slack_s ~baseline ~current () with
            | Error e ->
                Error
                  (Printf.sprintf "%s -> %s: %s" (entry_name a) (entry_name b)
                     e)
            | Ok v ->
                go
                  ({ ds_from = entry_name a;
                     ds_to = entry_name b;
                     ds_verdict = v }
                  :: acc)
                  rest)
        | _ ->
            Error ("trajectory entry " ^ entry_name a ^ ": no \"tables\""))
    | [] | [ _ ] -> Ok (List.rev acc)
  in
  go [] entries

let drift_ok steps = List.for_all (fun s -> ok s.ds_verdict) steps

let drift_report steps =
  let buf = Buffer.create 256 in
  let drifting =
    List.filter (fun s -> not (ok s.ds_verdict)) steps
  in
  Printf.bprintf buf
    "perf drift: %d adjacent step(s) along the trajectory, %d drifting\n"
    (List.length steps) (List.length drifting);
  List.iter
    (fun s ->
      List.iter
        (fun r ->
          Printf.bprintf buf
            "  DRIFT %s -> %s: %s row %d (%s) column %S: %.4fs -> %.4fs \
             (%.2fx)\n"
            s.ds_from s.ds_to r.table r.row r.row_label r.header r.base_s
            r.cur_s r.ratio)
        s.ds_verdict.regressions)
    drifting;
  Buffer.contents buf
