(** Benchmark regression gate.

    Compares two of the harness's [--json] dumps
    (see {!Table.json_of_tables}) and flags timing cells that got
    slower than the baseline beyond a tolerance.  Built on {!Json_min},
    so the gate — like the rest of the repo — has no external
    dependencies.

    Only cells that parse as times in BOTH dumps are compared
    ("4.59s", "0.123s", "12.30ms", "850ns", "3.1us"); speedup ratios,
    miss counts and labels are ignored — those are claims about shape,
    not wall-clock, and the tier-2 bench tests already check them.
    Structural drift (a table or row present on one side only) is a
    warning, not a failure: adding a benchmark must not fail the
    gate. *)

type regression = {
  table : string;  (** table id, e.g. ["t1"] *)
  row : int;  (** 0-based row index *)
  row_label : string;  (** first cell of the row *)
  header : string;  (** column header *)
  base_s : float;
  cur_s : float;
  ratio : float;  (** [cur_s /. base_s] *)
}

type verdict = {
  compared : int;  (** number of time cells compared *)
  regressions : regression list;
  warnings : string list;  (** structural mismatches *)
}

val parse_time_cell : string -> float option
(** Seconds from a rendered cell; [None] when the cell is not a time. *)

val compare :
  ?tolerance:float ->
  ?slack_s:float ->
  baseline:Json_min.t ->
  current:Json_min.t ->
  unit ->
  (verdict, string) result
(** [compare ~baseline ~current ()] flags every time cell with
    [cur > base *. tolerance +. slack_s].  [tolerance] defaults to 1.5
    (shared machines jitter; the gate hunts order-of-magnitude
    regressions, not percent drift) and [slack_s] to 0.002 so
    microsecond-scale cells never trip on noise.  [Error] only when a
    dump is not structurally a [json_of_tables] document. *)

val ok : verdict -> bool
(** No regressions (warnings don't fail the gate). *)

val report : verdict -> string
(** Human-readable multi-line summary of the comparison. *)

(** {1 Perf trajectory}

    The trajectory file ([bench/BENCH_trajectory.json]) is a JSON array
    of dated run entries, newest last — see EXPERIMENTS.md for the entry
    schema.  It starts life empty, so the readers below treat "nothing
    there yet" as a first-class state rather than a parse error. *)

val load_trajectory : string -> (Json_min.t list, string) result
(** Entries of a trajectory file.  A missing file, an empty file, or a
    bare [[]] all load as [Ok []] — the trajectory simply has no entries
    yet.  Malformed JSON or a non-array document is still an [Error]
    naming the file. *)

val trajectory_entry :
  date:string -> label:string -> tables:Json_min.t -> Json_min.t
(** One run entry of the trajectory array.  [tables] is a parsed
    [Table.json_of_tables] dump of the run being recorded. *)

val append_trajectory_entry :
  date:string -> label:string -> tables:Json_min.t -> Json_min.t list -> string
(** The trajectory document with one more entry appended (rendered,
    newline-terminated). *)

(** {1 Drift}

    The 1.5x regression gate compares against one committed baseline,
    so a slope of small slowdowns — each inside tolerance — can
    accumulate unnoticed until the gate finally trips.  [drift] walks
    the trajectory's {e adjacent} entry pairs with a tighter tolerance
    and surfaces the slope while it is still cheap to bisect. *)

type drift_step = {
  ds_from : string;  (** "date [label]" of the earlier entry *)
  ds_to : string;
  ds_verdict : verdict;  (** neighbour comparison at drift tolerance *)
}

val drift :
  ?tolerance:float ->
  ?slack_s:float ->
  Json_min.t list ->
  (drift_step list, string) result
(** Compare each adjacent pair of trajectory entries ({!load_trajectory}
    order, oldest first) with [tolerance] defaulting to 1.2 — stricter
    than the gate's 1.5, because each step is one run against the very
    next, not against a months-old baseline.  Fewer than two entries
    yield [Ok []]. *)

val drift_ok : drift_step list -> bool
(** No step drifted beyond tolerance. *)

val drift_report : drift_step list -> string
(** Human-readable summary: step count plus one [DRIFT] line per
    flagged cell. *)
