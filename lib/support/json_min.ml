type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let cp = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad \\u escape"
      in
      cp := (!cp * 16) + d;
      advance ()
    done;
    !cp
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let string_body () =
    (* opening quote consumed by caller; escapes are decoded, so the
       resulting [String] holds the actual bytes (UTF-8 for \u). *)
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
                Buffer.add_char buf e;
                go ()
            | 'b' ->
                Buffer.add_char buf '\b';
                go ()
            | 'f' ->
                Buffer.add_char buf '\012';
                go ()
            | 'n' ->
                Buffer.add_char buf '\n';
                go ()
            | 'r' ->
                Buffer.add_char buf '\r';
                go ()
            | 't' ->
                Buffer.add_char buf '\t';
                go ()
            | 'u' ->
                let cp = hex4 () in
                let cp =
                  (* Combine a surrogate pair; a lone surrogate is
                     encoded as-is (WTF-8) so round-tripping never
                     loses information. *)
                  if
                    cp >= 0xD800 && cp <= 0xDBFF
                    && !pos + 6 <= n
                    && s.[!pos] = '\\'
                    && s.[!pos + 1] = 'u'
                  then begin
                    let save = !pos in
                    pos := !pos + 2;
                    let lo = hex4 () in
                    if lo >= 0xDC00 && lo <= 0xDFFF then
                      0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                    else begin
                      pos := save;
                      cp
                    end
                  end
                  else cp
                in
                add_utf8 buf cp;
                go ()
            | _ -> fail "bad escape character")
        | c when Char.code c < 0x20 -> fail "raw control character in string"
        | c ->
            Buffer.add_char buf c;
            go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    (* RFC 8259 int part: "0", or a nonzero digit followed by digits *)
    (match peek () with
    | Some '0' ->
        advance ();
        (match peek () with
        | Some '0' .. '9' -> fail "leading zero"
        | _ -> ())
    | _ -> digits ());
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Object []
        end
        else begin
          let members = ref [] in
          let rec member () =
            skip_ws ();
            expect '"';
            let key = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            members := (key, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                member ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          member ();
          Object (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Array []
        end
        else begin
          let items = ref [] in
          let rec item () =
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                item ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          item ();
          Array (List.rev !items)
        end
    | Some '"' ->
        advance ();
        String (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Number (number ())
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

let validate s = Result.map (fun _ -> ()) (parse s)

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

(* JSON string escaping on output: the two mandatory classes (quote,
   backslash) plus every control character — a cc stderr or a kernel
   error embedded in an NDJSON response must never break the framing. *)
let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Number f -> number_to_string f
  | String s -> escape_string s
  | Array items -> "[" ^ String.concat "," (List.map to_string items) ^ "]"
  | Object fields ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> escape_string k ^ ":" ^ to_string v) fields)
      ^ "}"
