type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_body () =
    (* opening quote consumed by caller *)
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' ->
                Buffer.add_char buf '\\';
                Buffer.add_char buf e;
                go ()
            | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                for _ = 1 to 4 do
                  (match s.[!pos] with
                  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                  | _ -> fail "bad \\u escape");
                  advance ()
                done;
                Buffer.add_string buf "\\u";
                go ()
            | _ -> fail "bad escape character")
        | c when Char.code c < 0x20 -> fail "raw control character in string"
        | c ->
            Buffer.add_char buf c;
            go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    (* RFC 8259 int part: "0", or a nonzero digit followed by digits *)
    (match peek () with
    | Some '0' ->
        advance ();
        (match peek () with
        | Some '0' .. '9' -> fail "leading zero"
        | _ -> ())
    | _ -> digits ());
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Object []
        end
        else begin
          let members = ref [] in
          let rec member () =
            skip_ws ();
            expect '"';
            let key = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            members := (key, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                member ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          member ();
          Object (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Array []
        end
        else begin
          let items = ref [] in
          let rec item () =
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                item ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          item ();
          Array (List.rev !items)
        end
    | Some '"' ->
        advance ();
        String (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Number (number ())
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

let validate s = Result.map (fun _ -> ()) (parse s)

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

let rec to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Number f -> number_to_string f
  | String s -> "\"" ^ s ^ "\""
  | Array items -> "[" ^ String.concat "," (List.map to_string items) ^ "]"
  | Object fields ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> "\"" ^ k ^ "\":" ^ to_string v) fields)
      ^ "}"
