(** A minimal JSON reader: just enough to check that the benchmark
    harness's [--json] output is well-formed without depending on an
    external JSON library.

    Supports the full RFC 8259 grammar (objects, arrays, strings with
    escapes, numbers, [true]/[false]/[null]); strings are validated but
    not decoded. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string  (** raw contents, escapes left as written *)
  | Array of t list
  | Object of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error.  The
    error string includes the offending byte offset. *)

val validate : string -> (unit, string) result
(** [parse] with the value thrown away: the benchmark tests' no-op
    consumer. *)

val to_string : t -> string
(** Render a value back to JSON text.  Strings re-emit their raw
    contents verbatim (escapes were never decoded), so
    [parse s |> to_string] round-trips byte-exactly up to
    whitespace; integral numbers print without a decimal point. *)
