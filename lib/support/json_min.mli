(** A minimal JSON reader/printer: just enough for the benchmark
    harness's [--json] output and the serve protocol, without
    depending on an external JSON library.

    Supports the full RFC 8259 grammar (objects, arrays, strings with
    escapes, numbers, [true]/[false]/[null]).  String escapes are
    decoded on parse ([\n], [\uXXXX] as UTF-8 with surrogate pairs
    combined) and re-escaped on print, so a [String] always holds the
    actual bytes. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string  (** decoded contents (UTF-8 for [\u] escapes) *)
  | Array of t list
  | Object of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error.  The
    error string includes the offending byte offset. *)

val validate : string -> (unit, string) result
(** [parse] with the value thrown away: the benchmark tests' no-op
    consumer. *)

val to_string : t -> string
(** Render a value back to JSON text.  Strings (including object keys)
    are escaped — quotes, backslashes, and every control character —
    so the output is always well-formed JSON on one line, whatever the
    contents (embedded compiler stderr, kernel error messages);
    [parse s |> to_string |> parse] is the identity.  Integral numbers
    print without a decimal point. *)
