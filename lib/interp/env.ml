exception Error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

type ('a, 'elt) arr = { dims : (int * int) array; strides : int array; data : 'elt }

type farr = (float, float array) arr
type iarr = (int, int array) arr

type t = {
  farrays : (string, farr) Hashtbl.t;
  iarrays : (string, iarr) Hashtbl.t;
  fscalars : (string, float) Hashtbl.t;
  iscalars : (string, int) Hashtbl.t;
}

let create () =
  {
    farrays = Hashtbl.create 8;
    iarrays = Hashtbl.create 8;
    fscalars = Hashtbl.create 8;
    iscalars = Hashtbl.create 8;
  }

let total_and_strides dims =
  (* Column-major: first dimension has stride 1. *)
  let n = Array.length dims in
  let strides = Array.make n 1 in
  let total = ref 1 in
  for k = 0 to n - 1 do
    strides.(k) <- !total;
    let lo, hi = dims.(k) in
    if hi < lo then error "empty array dimension";
    total := !total * (hi - lo + 1)
  done;
  (!total, strides)

let add_farray env name dims =
  let dims = Array.of_list dims in
  let total, strides = total_and_strides dims in
  Hashtbl.replace env.farrays name { dims; strides; data = Array.make total 0.0 }

let add_iarray env name dims =
  let dims = Array.of_list dims in
  let total, strides = total_and_strides dims in
  Hashtbl.replace env.iarrays name { dims; strides; data = Array.make total 0 }

let set_fscalar env name x = Hashtbl.replace env.fscalars name x
let set_iscalar env name x = Hashtbl.replace env.iscalars name x

let missing what name = error "undefined %s %s" what name

let find_farr env name =
  match Hashtbl.find_opt env.farrays name with
  | Some a -> a
  | None -> missing "REAL array" name

let find_iarr env name =
  match Hashtbl.find_opt env.iarrays name with
  | Some a -> a
  | None -> missing "INTEGER array" name

let farray_dims env name = Array.to_list (find_farr env name).dims

let offset (type elt) (a : ('a, elt) arr) name idx =
  let n = Array.length a.dims in
  if List.length idx <> n then error "%s expects %d subscripts" name n;
  let off = ref 0 in
  List.iteri
    (fun k i ->
      let lo, hi = a.dims.(k) in
      if i < lo || i > hi then
        error "%s subscript %d = %d out of bounds [%d,%d]" name (k + 1) i lo hi;
      off := !off + ((i - lo) * a.strides.(k)))
    idx;
  !off

let get_f env name idx =
  let a = find_farr env name in
  a.data.(offset a name idx)

let set_f env name idx x =
  let a = find_farr env name in
  a.data.(offset a name idx) <- x

let get_i env name idx =
  let a = find_iarr env name in
  a.data.(offset a name idx)

let set_i env name idx x =
  let a = find_iarr env name in
  a.data.(offset a name idx) <- x

let fscalar env name =
  match Hashtbl.find_opt env.fscalars name with
  | Some x -> x
  | None -> missing "REAL scalar" name

let iscalar env name =
  match Hashtbl.find_opt env.iscalars name with
  | Some x -> x
  | None -> missing "INTEGER scalar" name

let has_iscalar env name = Hashtbl.mem env.iscalars name
let has_fscalar env name = Hashtbl.mem env.fscalars name
let iarray_dims env name = Array.to_list (find_iarr env name).dims

let linear_index env name idx =
  match Hashtbl.find_opt env.farrays name with
  | Some a -> offset a name idx
  | None -> offset (find_iarr env name) name idx

let fill_farray env name f =
  let a = find_farr env name in
  let n = Array.length a.dims in
  let idx = Array.map fst a.dims in
  let total = Array.length a.data in
  for off = 0 to total - 1 do
    a.data.(off) <- f (Array.to_list idx);
    (* Column-major increment: bump the first dimension first. *)
    let rec bump k =
      if k < n then begin
        idx.(k) <- idx.(k) + 1;
        if idx.(k) > snd a.dims.(k) then begin
          idx.(k) <- fst a.dims.(k);
          bump (k + 1)
        end
      end
    in
    bump 0
  done

let farray_data env name = (find_farr env name).data
let iarray_data env name = (find_iarr env name).data

let copy env =
  let dup = create () in
  Hashtbl.iter
    (fun k (a : farr) ->
      Hashtbl.replace dup.farrays k { a with data = Array.copy a.data })
    env.farrays;
  Hashtbl.iter
    (fun k (a : iarr) ->
      Hashtbl.replace dup.iarrays k { a with data = Array.copy a.data })
    env.iarrays;
  Hashtbl.iter (Hashtbl.replace dup.fscalars) env.fscalars;
  Hashtbl.iter (Hashtbl.replace dup.iscalars) env.iscalars;
  dup

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare

let diff ?only ?(tol = 0.0) a b =
  let mismatch = ref None in
  let note msg = if !mismatch = None then mismatch := Some msg in
  let selected name =
    match only with None -> true | Some names -> List.mem name names
  in
  let keys_equal what ta tb =
    let keep = List.filter selected in
    let ka = keep (sorted_keys ta) and kb = keep (sorted_keys tb) in
    if ka <> kb then note (Printf.sprintf "%s sets differ" what)
  in
  keys_equal "REAL array" a.farrays b.farrays;
  (match only with
  | Some _ -> ()
  | None -> keys_equal "INTEGER array" a.iarrays b.iarrays);
  if !mismatch = None then begin
    Hashtbl.iter
      (fun name (fa : farr) ->
        match Hashtbl.find_opt b.farrays name with
        | None -> ()
        | Some fb when not (selected name) -> ignore fb
        | Some fb ->
            if fa.dims <> fb.dims then note (name ^ ": dims differ")
            else
              Array.iteri
                (fun i x ->
                  let y = fb.data.(i) in
                  (* Bitwise, not structural: [Float.equal] conflates
                     -0.0 with 0.0 and all NaN payloads with each
                     other, which is exactly what a cross-backend
                     differential must distinguish. *)
                  let bits_eq =
                    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
                  in
                  let ok =
                    if tol = 0.0 then bits_eq
                    else Float.abs (x -. y) <= tol || bits_eq
                  in
                  if not ok then
                    note
                      (Printf.sprintf "%s[linear %d]: %.17g vs %.17g" name i x y))
                fa.data)
      a.farrays;
    Hashtbl.iter
      (fun name (ia : iarr) ->
        match Hashtbl.find_opt b.iarrays name, only with
        | None, _ | _, Some _ -> ()
        | Some ib, None ->
            if ia.dims <> ib.dims then note (name ^ ": dims differ")
            else
              Array.iteri
                (fun i x ->
                  if ib.data.(i) <> x then
                    note
                      (Printf.sprintf "%s[linear %d]: %d vs %d" name i x
                         ib.data.(i)))
                ia.data)
      a.iarrays
  end;
  !mismatch

let equal ?only ?tol a b = diff ?only ?tol a b = None
