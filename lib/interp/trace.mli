(** Memory-trace adapter: interpreter hook -> cache simulator.

    Lays the environment's arrays out in a flat simulated address space
    (each array base aligned to a cache line) and converts every element
    access into a byte-address cache access.

    Two tiers:
    - {!run}/{!hook}: the flat single-level simulation the paper's
      tables use — cheap, no attribution;
    - {!run_profile}/{!profile_hook}: the memory-hierarchy profiler —
      every access walks a {!Hier} (L1/L2/TLB) and is attributed to its
      static reference site ({!Exec.ref_site}) so misses can be reported
      per reference and per loop nest, with exact L1 miss
      classification and reuse-distance recording. *)

type t

val create : Arch.t -> Env.t -> arrays:string list -> t
(** [create machine env ~arrays] builds a tracer for the named REAL
    arrays of [env] (others are ignored — scalars live in registers). *)

val hook : t -> Exec.hook

val stats : t -> Cache.stats

val stats_by_array : t -> (string * Cache.stats) list
(** Per-array breakdown of the same accesses, sorted by array name; the
    per-array [accesses]/[hits]/[misses] sum to {!stats} (every traced
    access lands in exactly one array; the classification fields are 0
    here — per-array stats count element touches, not line fills). *)

val run : Arch.t -> Env.t -> arrays:string list -> Stmt.t list ->
  Cache.stats
(** Convenience: trace one execution of the block and return the stats. *)

(** {1 Memory-hierarchy profiler} *)

(** Mutable counters for one attribution bucket. *)
type ref_counts = {
  mutable c_accesses : int;
  mutable c_l1_misses : int;  (** did not hit L1 *)
  mutable c_l2_misses : int;  (** did not hit L1 or L2 *)
  mutable c_mem : int;  (** missed every level *)
  mutable c_tlb_misses : int;
  mutable c_cold : int;  (** L1 miss classification... *)
  mutable c_capacity : int;
  mutable c_conflict : int;
}

type ref_profile = { site : Exec.ref_site; counts : ref_counts }

type profiler

val profiler :
  ?spec:Hier.spec ->
  Arch.t ->
  Env.t ->
  arrays:string list ->
  sites:Exec.ref_site list ->
  profiler
(** A profiler over the given machine (hierarchy from [spec], default
    {!Hier.of_arch}) and the block's reference sites. *)

val profile_hook : profiler -> Exec.hook
(** Feed an execution into the profiler.  Pass the matching
    {!Exec.refmap} to {!Exec.run} or every access lands in the
    {!unattributed} bucket. *)

val run_profile :
  ?spec:Hier.spec ->
  Arch.t ->
  Env.t ->
  arrays:string list ->
  Stmt.t list ->
  profiler
(** Build the refmap, profile one execution of the block, return the
    loaded profiler. *)

val hier : profiler -> Hier.t
(** The simulated hierarchy: per-level stats, TLB stats, reuse engine,
    cycle model. *)

val ref_profiles : profiler -> ref_profile list
(** One entry per static reference site, in [ref_id] (textual) order,
    including sites never executed (all-zero counts). *)

val unattributed : profiler -> ref_counts
(** Touches that carried no [ref_id] (hook used without a refmap). *)

val loop_profiles : profiler -> (string * ref_counts) list
(** Aggregated by enclosing loop nest (["K>I>J"]; ["(top)"] outside any
    loop), in first-appearance order. *)
