(** Memory-trace adapter: interpreter hook -> cache simulator.

    Lays the environment's arrays out in a flat simulated address space
    (each array base aligned to a cache line) and converts every element
    access into a byte-address cache access. *)

type t

val create : Arch.t -> Env.t -> arrays:string list -> t
(** [create machine env ~arrays] builds a tracer for the named REAL
    arrays of [env] (others are ignored — scalars live in registers). *)

val hook : t -> Exec.hook

val stats : t -> Cache.stats

val stats_by_array : t -> (string * Cache.stats) list
(** Per-array breakdown of the same accesses, sorted by array name; the
    per-array [accesses]/[hits]/[misses] sum to {!stats} (every traced
    access lands in exactly one array). *)

val run : Arch.t -> Env.t -> arrays:string list -> Stmt.t list ->
  Cache.stats
(** Convenience: trace one execution of the block and return the stats. *)
