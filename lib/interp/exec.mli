(** IR interpreter.

    Executes a statement block against an {!Env.t}.  Two uses:

    - ground truth for the transformation test suite: a transformation is
      correct when interpreting the original and the transformed IR from
      equal initial environments yields equal final environments;
    - memory tracing: [hook] fires on every array *element* access in
      execution order, which {!Trace} feeds to the cache simulator.

    DO-loop semantics are Fortran's: bounds and step are evaluated once
    on entry, the trip count is [max 0 ((hi - lo + step) / step)], and
    the index variable is local to the loop. *)

exception Error of string

type hook = ref_id:int -> string -> int list -> Ir_util.kind -> unit
(** [hook ~ref_id array indices kind]; [indices] are the subscript
    values.  [ref_id] identifies the static reference site the touch
    came from (see {!refmap}); it is {!no_ref} when [run] was given no
    reference map, so hooks that do not care about attribution just
    ignore it. *)

val no_ref : int
(** The [ref_id] passed when no {!refmap} is installed (-1). *)

(** One static array-reference site of a block: the [ref_id]-th place in
    the program text (textual order) that reads or writes an array
    element.  Scalar touches never fire the hook, so scalars have no
    sites. *)
type ref_site = {
  ref_id : int;
  ref_array : string;
  ref_kind : Ir_util.kind;
  ref_space : Ir_util.space;
  ref_text : string;  (** e.g. ["A(I,K)"] — array with source subscripts *)
  ref_loops : string list;  (** enclosing loop indices, outermost first *)
}

type refmap
(** Maps every array-reference node of a block to its {!ref_site}.  The
    map keys on the *physical* IR nodes of the block it was built from,
    so build it from exactly the block you pass to [run]. *)

val refmap : Stmt.t list -> refmap

val ref_sites : refmap -> ref_site list
(** All sites in textual order ([ref_id] = position, starting at 0). *)

val run : ?refs:refmap -> ?hook:hook -> Env.t -> Stmt.t list -> unit
(** Execute the block, mutating [env].  Raises {!Error} on interpreter
    misuse (zero-step loops, loop-index assignment, unknown intrinsics,
    division by zero) and lets {!Env.Error} propagate for environment
    misuse (undefined names, bad subscripts).  With [refs],
    every hook call carries the touching site's [ref_id]; without it
    (the default) attribution is off and costs nothing. *)

val eval_expr : Env.t -> (string * int) list -> Expr.t -> int
(** Evaluate an integer expression under loop-index bindings (exposed
    for the analysis oracle). *)
