exception Error of string

type hook = ref_id:int -> string -> int list -> Ir_util.kind -> unit

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ---- static reference sites ------------------------------------- *)

type ref_site = {
  ref_id : int;
  ref_array : string;
  ref_kind : Ir_util.kind;
  ref_space : Ir_util.space;
  ref_text : string;
  ref_loops : string list;
}

(* The interpreter works directly on the IR tree, so the map from a
   runtime touch back to its static reference site keys on the physical
   identity of the reference node (the [Expr.Idx] / [Stmt.Ref] /
   assignment statement being evaluated).  Structural hashing is only
   the bucket function; equality is [==], so two textually identical
   references at different places in the tree stay distinct.  A subtree
   shared by construction (some transformations reuse terms) registers
   once and both occurrences attribute to that site — harmless, since
   they are the same term. *)
module Phys = Hashtbl.Make (struct
  type t = Obj.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type refmap = { table : int Phys.t; sites : ref_site list }

let no_ref = -1

let refmap block =
  let table = Phys.create 64 in
  let sites = ref [] in
  let next = ref 0 in
  let add node array subs kind space loops =
    if not (Phys.mem table node) then begin
      let id = !next in
      incr next;
      Phys.add table node id;
      sites :=
        {
          ref_id = id;
          ref_array = array;
          ref_kind = kind;
          ref_space = space;
          ref_text =
            Printf.sprintf "%s(%s)" array
              (String.concat "," (List.map Expr.to_string subs));
          ref_loops = loops;
        }
        :: !sites
    end
  in
  let rec expr ~loops (e : Expr.t) =
    match e with
    | Expr.Int _ | Expr.Var _ -> ()
    | Expr.Bin (_, a, b) | Expr.Min (a, b) | Expr.Max (a, b) ->
        expr ~loops a;
        expr ~loops b
    | Expr.Idx (name, subs) ->
        List.iter (expr ~loops) subs;
        add (Obj.repr e) name subs Ir_util.Read Ir_util.Int_data loops
  in
  let rec fexpr ~loops (fe : Stmt.fexpr) =
    match fe with
    | Stmt.Fconst _ | Stmt.Fvar _ -> ()
    | Stmt.Ref (name, subs) ->
        List.iter (expr ~loops) subs;
        add (Obj.repr fe) name subs Ir_util.Read Ir_util.Float_data loops
    | Stmt.Fbin (_, a, b) ->
        fexpr ~loops a;
        fexpr ~loops b
    | Stmt.Fneg a -> fexpr ~loops a
    | Stmt.Fcall (_, args) -> List.iter (fexpr ~loops) args
    | Stmt.Of_int e -> expr ~loops e
  in
  let rec cond ~loops (c : Stmt.cond) =
    match c with
    | Stmt.Fcmp (_, a, b) ->
        fexpr ~loops a;
        fexpr ~loops b
    | Stmt.Icmp (_, a, b) ->
        expr ~loops a;
        expr ~loops b
    | Stmt.Not a -> cond ~loops a
    | Stmt.And (a, b) | Stmt.Or (a, b) ->
        cond ~loops a;
        cond ~loops b
  in
  let rec stmt ~loops (s : Stmt.t) =
    match s with
    | Stmt.Assign (name, subs, rhs) ->
        fexpr ~loops rhs;
        List.iter (expr ~loops) subs;
        if subs <> [] then
          add (Obj.repr s) name subs Ir_util.Write Ir_util.Float_data loops
    | Stmt.Iassign (name, subs, rhs) ->
        expr ~loops rhs;
        List.iter (expr ~loops) subs;
        if subs <> [] then
          add (Obj.repr s) name subs Ir_util.Write Ir_util.Int_data loops
    | Stmt.If (c, t, e) ->
        cond ~loops c;
        List.iter (stmt ~loops) t;
        List.iter (stmt ~loops) e
    | Stmt.Loop l ->
        expr ~loops l.lo;
        expr ~loops l.hi;
        expr ~loops l.step;
        List.iter (stmt ~loops:(loops @ [ l.index ])) l.body
  in
  List.iter (stmt ~loops:[]) block;
  { table; sites = List.rev !sites }

let ref_sites rm = rm.sites

(* ---- execution --------------------------------------------------- *)

type state = {
  env : Env.t;
  scope : (string, int) Hashtbl.t;  (** loop indices, innermost wins *)
  hook : hook option;
  refs : refmap option;
}

let lookup_int st v =
  match Hashtbl.find_opt st.scope v with
  | Some n -> n
  | None -> Env.iscalar st.env v

let touch st node name idx kind =
  match st.hook with
  | None -> ()
  | Some h ->
      let ref_id =
        match st.refs with
        | None -> no_ref
        | Some rm -> ( match Phys.find_opt rm.table node with Some id -> id | None -> no_ref)
      in
      h ~ref_id name idx kind

let rec eval_i st (e : Expr.t) =
  match e with
  | Expr.Int n -> n
  | Expr.Var v -> lookup_int st v
  | Expr.Bin (op, a, b) -> (
      let x = eval_i st a and y = eval_i st b in
      match op with
      | Expr.Add -> x + y
      | Expr.Sub -> x - y
      | Expr.Mul -> x * y
      | Expr.Div -> if y = 0 then err "division by zero" else x / y)
  | Expr.Min (a, b) -> min (eval_i st a) (eval_i st b)
  | Expr.Max (a, b) -> max (eval_i st a) (eval_i st b)
  | Expr.Idx (name, subs) ->
      let idx = List.map (eval_i st) subs in
      touch st (Obj.repr e) name idx Ir_util.Read;
      Env.get_i st.env name idx

let intrinsic name args =
  match name, args with
  | ("SQRT" | "DSQRT"), [ x ] ->
      if x < 0.0 then err "SQRT of negative %g" x else sqrt x
  | ("ABS" | "DABS"), [ x ] -> Float.abs x
  | ("SIGN" | "DSIGN"), [ a; b ] -> if b >= 0.0 then Float.abs a else -.Float.abs a
  | _ -> err "unknown intrinsic %s/%d" name (List.length args)

let rec eval_f st (fe : Stmt.fexpr) =
  match fe with
  | Stmt.Fconst x -> x
  | Stmt.Fvar v -> Env.fscalar st.env v
  | Stmt.Ref (name, subs) ->
      let idx = List.map (eval_i st) subs in
      touch st (Obj.repr fe) name idx Ir_util.Read;
      Env.get_f st.env name idx
  | Stmt.Fbin (op, a, b) -> (
      let x = eval_f st a and y = eval_f st b in
      match op with
      | Stmt.FAdd -> x +. y
      | Stmt.FSub -> x -. y
      | Stmt.FMul -> x *. y
      | Stmt.FDiv -> x /. y)
  | Stmt.Fneg a -> -.eval_f st a
  | Stmt.Fcall (name, args) -> intrinsic name (List.map (eval_f st) args)
  | Stmt.Of_int e -> float_of_int (eval_i st e)

let eval_rel (r : Stmt.rel) c =
  match r with
  | Stmt.Eq -> c = 0
  | Stmt.Ne -> c <> 0
  | Stmt.Lt -> c < 0
  | Stmt.Le -> c <= 0
  | Stmt.Gt -> c > 0
  | Stmt.Ge -> c >= 0

let rec eval_cond st (c : Stmt.cond) =
  match c with
  | Stmt.Fcmp (r, a, b) -> eval_rel r (Float.compare (eval_f st a) (eval_f st b))
  | Stmt.Icmp (r, a, b) -> eval_rel r (Int.compare (eval_i st a) (eval_i st b))
  | Stmt.Not a -> not (eval_cond st a)
  | Stmt.And (a, b) -> eval_cond st a && eval_cond st b
  | Stmt.Or (a, b) -> eval_cond st a || eval_cond st b

let rec exec st (s : Stmt.t) =
  match s with
  | Stmt.Assign (name, [], rhs) ->
      let x = eval_f st rhs in
      Env.set_fscalar st.env name x
  | Stmt.Assign (name, subs, rhs) ->
      let x = eval_f st rhs in
      let idx = List.map (eval_i st) subs in
      touch st (Obj.repr s) name idx Ir_util.Write;
      Env.set_f st.env name idx x
  | Stmt.Iassign (name, [], rhs) ->
      if Hashtbl.mem st.scope name then err "assignment to loop index %s" name;
      let x = eval_i st rhs in
      Env.set_iscalar st.env name x
  | Stmt.Iassign (name, subs, rhs) ->
      let x = eval_i st rhs in
      let idx = List.map (eval_i st) subs in
      touch st (Obj.repr s) name idx Ir_util.Write;
      Env.set_i st.env name idx x
  | Stmt.If (c, t, e) ->
      if eval_cond st c then exec_block st t else exec_block st e
  | Stmt.Loop l ->
      let lo = eval_i st l.lo and hi = eval_i st l.hi and step = eval_i st l.step in
      if step = 0 then err "DO %s: zero step" l.index;
      let trips = max 0 ((hi - lo + step) / step) in
      let saved = Hashtbl.find_opt st.scope l.index in
      let i = ref lo in
      for _ = 1 to trips do
        Hashtbl.replace st.scope l.index !i;
        exec_block st l.body;
        i := !i + step
      done;
      (match saved with
      | Some old -> Hashtbl.replace st.scope l.index old
      | None -> Hashtbl.remove st.scope l.index)

and exec_block st block = List.iter (exec st) block

let run ?refs ?hook env block =
  let st = { env; scope = Hashtbl.create 8; hook; refs } in
  exec_block st block

let eval_expr env bindings e =
  let st = { env; scope = Hashtbl.create 8; hook = None; refs = None } in
  List.iter (fun (k, v) -> Hashtbl.replace st.scope k v) bindings;
  eval_i st e
