(** Runtime environment for the IR interpreter.

    Arrays use Fortran conventions: explicit per-dimension lower bounds
    (the convolution kernels are 0-based, the linear-algebra kernels
    1-based) and column-major storage, so the simulated trace addresses
    have the same spatial-locality structure as the Fortran originals. *)

type t

exception Error of string
(** Raised for every runtime misuse of the environment — undefined
    names, subscript arity mismatches, out-of-bounds subscripts, empty
    array dimensions.  The payload is a human-readable description
    (without any ["Env:"] prefix); drivers catch it for one-line
    diagnostics instead of a backtrace. *)

val create : unit -> t

val add_farray : t -> string -> (int * int) list -> unit
(** [add_farray env name dims] declares a REAL*8 array with inclusive
    per-dimension bounds [(lo, hi)], zero-initialized. *)

val add_iarray : t -> string -> (int * int) list -> unit

val set_fscalar : t -> string -> float -> unit
val set_iscalar : t -> string -> int -> unit

val farray_dims : t -> string -> (int * int) list
val iarray_dims : t -> string -> (int * int) list

val get_f : t -> string -> int list -> float
val set_f : t -> string -> int list -> float -> unit
val get_i : t -> string -> int list -> int
val set_i : t -> string -> int list -> int -> unit

val fscalar : t -> string -> float
val iscalar : t -> string -> int
val has_iscalar : t -> string -> bool
val has_fscalar : t -> string -> bool

val linear_index : t -> string -> int list -> int
(** Column-major element offset of an array element, for tracing. *)

val fill_farray : t -> string -> (int list -> float) -> unit
(** [fill_farray env name f] sets every element from its index vector. *)

val farray_data : t -> string -> float array
(** The underlying column-major storage (shared, not a copy). *)

val iarray_data : t -> string -> int array
(** INTEGER-array counterpart of {!farray_data} (shared, not a copy). *)

val copy : t -> t
(** Deep copy: arrays and scalars are duplicated. *)

val equal : ?only:string list -> ?tol:float -> t -> t -> bool
(** Same declared names, dims, and contents.  [tol] (default 0: exact
    bit equality) bounds the allowed absolute difference per float
    element — needed for transformations that reassociate float
    arithmetic.  With [only], just the named REAL arrays are compared
    (transformation scratch — inspector tables, expanded scalars — is
    ignored). *)

val diff : ?only:string list -> ?tol:float -> t -> t -> string option
(** [None] when equal; otherwise a description of the first mismatch. *)
