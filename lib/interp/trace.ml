type per_array = { base : int; mutable acc : int; mutable hit : int }

(* Flat simulated address space: each traced array gets a line-aligned
   base, elements at column-major offsets. *)
let layout ~line_bytes ~elt_bytes env ~arrays =
  let bases = Hashtbl.create 8 in
  let next = ref 0 in
  let align n = (n + line_bytes - 1) / line_bytes * line_bytes in
  List.iter
    (fun name ->
      Hashtbl.replace bases name !next;
      let total =
        List.fold_left
          (fun acc (lo, hi) -> acc * (hi - lo + 1))
          1 (Env.farray_dims env name)
      in
      next := align (!next + (total * elt_bytes)))
    arrays;
  bases

type t = {
  cache : Cache.t;
  elt_bytes : int;
  bases : (string, per_array) Hashtbl.t;
  env : Env.t;
}

let create (m : Arch.t) env ~arrays =
  let bases = Hashtbl.create 8 in
  Hashtbl.iter
    (fun name base -> Hashtbl.replace bases name { base; acc = 0; hit = 0 })
    (layout ~line_bytes:m.line_bytes ~elt_bytes:m.elt_bytes env ~arrays);
  { cache = Arch.fresh_cache m; elt_bytes = m.elt_bytes; bases; env }

let hook t : Exec.hook =
 fun ~ref_id:_ name idx _kind ->
  match Hashtbl.find_opt t.bases name with
  | None -> ()
  | Some p ->
      let off = Env.linear_index t.env name idx in
      let hit = Cache.access t.cache (p.base + (off * t.elt_bytes)) in
      p.acc <- p.acc + 1;
      if hit then p.hit <- p.hit + 1

let stats t = Cache.stats t.cache

let no_class = { Cache.evictions = 0; cold_misses = 0; capacity_misses = 0; conflict_misses = 0; accesses = 0; hits = 0; misses = 0 }

let stats_by_array t =
  Hashtbl.fold
    (fun name p acc ->
      ( name,
        { no_class with Cache.accesses = p.acc; hits = p.hit; misses = p.acc - p.hit }
      )
      :: acc)
    t.bases []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let run m env ~arrays block =
  let t = create m env ~arrays in
  Exec.run ~hook:(hook t) env block;
  stats t

(* ---- memory-hierarchy profiler ---------------------------------- *)

type ref_counts = {
  mutable c_accesses : int;
  mutable c_l1_misses : int;
  mutable c_l2_misses : int;
  mutable c_mem : int;
  mutable c_tlb_misses : int;
  mutable c_cold : int;
  mutable c_capacity : int;
  mutable c_conflict : int;
}

let zero_counts () =
  {
    c_accesses = 0;
    c_l1_misses = 0;
    c_l2_misses = 0;
    c_mem = 0;
    c_tlb_misses = 0;
    c_cold = 0;
    c_capacity = 0;
    c_conflict = 0;
  }

type ref_profile = { site : Exec.ref_site; counts : ref_counts }

type profiler = {
  p_hier : Hier.t;
  p_elt : int;
  p_bases : (string, int) Hashtbl.t;
  p_env : Env.t;
  p_refs : ref_counts array;  (* indexed by ref_id *)
  p_sites : Exec.ref_site array;
  p_other : ref_counts;  (* unattributed touches (no_ref) *)
}

let profiler ?spec (m : Arch.t) env ~arrays ~sites =
  let spec = match spec with Some s -> s | None -> Hier.of_arch m in
  let sites = Array.of_list sites in
  {
    p_hier = Hier.create spec;
    p_elt = m.elt_bytes;
    p_bases = layout ~line_bytes:m.line_bytes ~elt_bytes:m.elt_bytes env ~arrays;
    p_env = env;
    p_refs = Array.init (Array.length sites) (fun _ -> zero_counts ());
    p_sites = sites;
    p_other = zero_counts ();
  }

let profile_hook p : Exec.hook =
 fun ~ref_id name idx _kind ->
  match Hashtbl.find_opt p.p_bases name with
  | None -> ()
  | Some base ->
      let off = Env.linear_index p.p_env name idx in
      let r = Hier.access p.p_hier (base + (off * p.p_elt)) in
      let c =
        if ref_id >= 0 && ref_id < Array.length p.p_refs then p.p_refs.(ref_id)
        else p.p_other
      in
      let n_levels = Hier.n_levels p.p_hier in
      c.c_accesses <- c.c_accesses + 1;
      if r.Hier.hit_level >= 1 then c.c_l1_misses <- c.c_l1_misses + 1;
      if r.Hier.hit_level >= 2 && n_levels >= 2 then
        c.c_l2_misses <- c.c_l2_misses + 1;
      if r.Hier.hit_level >= n_levels then c.c_mem <- c.c_mem + 1;
      if not r.Hier.tlb_hit then c.c_tlb_misses <- c.c_tlb_misses + 1;
      (match r.Hier.klass with
      | Cache.Hit -> ()
      | Cache.Cold -> c.c_cold <- c.c_cold + 1
      | Cache.Capacity -> c.c_capacity <- c.c_capacity + 1
      | Cache.Conflict -> c.c_conflict <- c.c_conflict + 1)

let hier p = p.p_hier

let ref_profiles p =
  Array.to_list
    (Array.mapi (fun i c -> { site = p.p_sites.(i); counts = c }) p.p_refs)

let unattributed p = p.p_other

let nest_of (site : Exec.ref_site) =
  match site.ref_loops with [] -> "(top)" | l -> String.concat ">" l

let merge_into a b =
  a.c_accesses <- a.c_accesses + b.c_accesses;
  a.c_l1_misses <- a.c_l1_misses + b.c_l1_misses;
  a.c_l2_misses <- a.c_l2_misses + b.c_l2_misses;
  a.c_mem <- a.c_mem + b.c_mem;
  a.c_tlb_misses <- a.c_tlb_misses + b.c_tlb_misses;
  a.c_cold <- a.c_cold + b.c_cold;
  a.c_capacity <- a.c_capacity + b.c_capacity;
  a.c_conflict <- a.c_conflict + b.c_conflict

let loop_profiles p =
  (* Aggregate per loop nest, preserving first-appearance (textual)
     order of the nests. *)
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  Array.iteri
    (fun i c ->
      let nest = nest_of p.p_sites.(i) in
      let agg =
        match Hashtbl.find_opt tbl nest with
        | Some agg -> agg
        | None ->
            let agg = zero_counts () in
            Hashtbl.add tbl nest agg;
            order := nest :: !order;
            agg
      in
      merge_into agg c)
    p.p_refs;
  List.rev_map (fun nest -> (nest, Hashtbl.find tbl nest)) !order

let run_profile ?spec (m : Arch.t) env ~arrays block =
  let refs = Exec.refmap block in
  let p = profiler ?spec m env ~arrays ~sites:(Exec.ref_sites refs) in
  Exec.run ~refs ~hook:(profile_hook p) env block;
  p
