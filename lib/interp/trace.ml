type per_array = { base : int; mutable acc : int; mutable hit : int }

type t = {
  cache : Cache.t;
  elt_bytes : int;
  bases : (string, per_array) Hashtbl.t;
  env : Env.t;
}

let create (m : Arch.t) env ~arrays =
  let bases = Hashtbl.create 8 in
  let next = ref 0 in
  let align n = (n + m.line_bytes - 1) / m.line_bytes * m.line_bytes in
  List.iter
    (fun name ->
      Hashtbl.replace bases name { base = !next; acc = 0; hit = 0 };
      let total =
        List.fold_left
          (fun acc (lo, hi) -> acc * (hi - lo + 1))
          1 (Env.farray_dims env name)
      in
      next := align (!next + (total * m.elt_bytes)))
    arrays;
  { cache = Arch.fresh_cache m; elt_bytes = m.elt_bytes; bases; env }

let hook t : Exec.hook =
 fun name idx _kind ->
  match Hashtbl.find_opt t.bases name with
  | None -> ()
  | Some p ->
      let off = Env.linear_index t.env name idx in
      let hit = Cache.access t.cache (p.base + (off * t.elt_bytes)) in
      p.acc <- p.acc + 1;
      if hit then p.hit <- p.hit + 1

let stats t = Cache.stats t.cache

let stats_by_array t =
  Hashtbl.fold
    (fun name p acc ->
      (name, { Cache.accesses = p.acc; hits = p.hit; misses = p.acc - p.hit })
      :: acc)
    t.bases []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let run m env ~arrays block =
  let t = create m env ~arrays in
  Exec.run ~hook:(hook t) env block;
  stats t
