(* Structure/parameter split for the JIT: see blueprint.mli. *)

type t = {
  key : string;
  block : Stmt.t list;
  shapes : Emit.shapes;
  unsafe : bool;
  bindings : (string * int) list;
}

(* Constants below this threshold are structure, not size: unroll
   offsets, +-1 bound adjustments, steps and split points introduced by
   the transformations all stay literal so the key still distinguishes
   e.g. unroll-by-2 from unroll-by-4.  Everything >= the threshold is
   treated as a problem size and hoisted.  The threshold must be >= 1:
   Emit assumes hoisted parameters are positive when it proves accesses
   in bounds (and re-checks that at run time), so a hoisted binding must
   always satisfy the assumption. *)
let hoist_threshold = 4

(* ---- parameter naming -------------------------------------------- *)

(* Hoisted parameters are named [<prefix>1], [<prefix>2], ... in first-
   occurrence order.  The prefix is chosen so no name already used by
   the program starts with it, which makes every generated name fresh
   without consulting the used set again. *)
let pick_prefix used =
  let taken p = List.exists (fun u -> String.starts_with ~prefix:p u) used in
  let rec go p = if taken p then go (p ^ "X") else p in
  go "BP"

let used_names block shapes =
  let of_block b =
    List.map (fun (name, _, _) -> name) (Ir_util.arrays_of b)
    @ Ir_util.index_vars b
    @ Ir_util.symbolic_params b
  in
  let of_shapes =
    List.concat_map
      (fun (arr, dims) ->
        arr
        :: List.concat_map
             (fun (lo, hi) -> Expr.free_vars lo @ Expr.free_vars hi)
             dims)
      shapes
  in
  List.sort_uniq String.compare (of_block block @ of_shapes)

(* ---- hoisting ---------------------------------------------------- *)

type hoist_state = {
  prefix : string;
  mutable params : (int * string) list;  (* constant -> parameter, newest first *)
}

let param_for st k =
  match List.assoc_opt k st.params with
  | Some p -> p
  | None ->
      let p = st.prefix ^ string_of_int (List.length st.params + 1) in
      st.params <- (k, p) :: st.params;
      p

(* Replace every literal >= threshold in a size position by its
   parameter.  Value numbering is by constant: equal constants share one
   parameter, so relations the in-bounds prover needs (a loop bound
   equal to the declared shape extent) survive hoisting. *)
let rec hoist_expr st (e : Expr.t) : Expr.t =
  match e with
  | Expr.Int k when k >= hoist_threshold -> Expr.Var (param_for st k)
  | Expr.Int _ | Expr.Var _ -> e
  | Expr.Bin (op, a, b) -> Expr.Bin (op, hoist_expr st a, hoist_expr st b)
  | Expr.Min (a, b) -> Expr.Min (hoist_expr st a, hoist_expr st b)
  | Expr.Max (a, b) -> Expr.Max (hoist_expr st a, hoist_expr st b)
  | Expr.Idx _ -> e (* inspector-table reads are structure, keep intact *)

let rec hoist_cond st (c : Stmt.cond) : Stmt.cond =
  match c with
  | Stmt.Icmp (r, a, b) -> Stmt.Icmp (r, hoist_expr st a, hoist_expr st b)
  | Stmt.Fcmp _ -> c
  | Stmt.Not c -> Stmt.Not (hoist_cond st c)
  | Stmt.And (a, b) -> Stmt.And (hoist_cond st a, hoist_cond st b)
  | Stmt.Or (a, b) -> Stmt.Or (hoist_cond st a, hoist_cond st b)

(* Only size positions are rewritten: loop bounds, integer guard
   conditions, and the declared shapes.  Subscripts, steps and scalar
   arithmetic keep their literals — they are part of the loop structure
   (offsets of an unrolled group, strides), and hoisting them would only
   weaken the prover without improving reuse. *)
let rec hoist_stmt st (s : Stmt.t) : Stmt.t =
  match s with
  | Stmt.Loop l ->
      Stmt.Loop
        {
          l with
          lo = hoist_expr st l.lo;
          hi = hoist_expr st l.hi;
          body = List.map (hoist_stmt st) l.body;
        }
  | Stmt.If (c, a, b) ->
      Stmt.If
        (hoist_cond st c, List.map (hoist_stmt st) a, List.map (hoist_stmt st) b)
  | Stmt.Assign _ | Stmt.Iassign _ -> s

let hoist_shapes st shapes =
  List.map
    (fun (arr, dims) ->
      (arr, List.map (fun (lo, hi) -> (hoist_expr st lo, hoist_expr st hi)) dims))
    shapes

(* ---- the blueprint ------------------------------------------------ *)

let render_shapes shapes =
  String.concat ";"
    (List.map
       (fun (arr, dims) ->
         arr ^ "("
         ^ String.concat ","
             (List.map
                (fun (lo, hi) -> Expr.to_string lo ^ ":" ^ Expr.to_string hi)
                dims)
         ^ ")")
       shapes)

let of_block ?(unsafe = true) ?(shapes = []) block =
  (* Canonical shape order: the assoc order callers pass is arbitrary
     and must not leak into the key. *)
  let shapes =
    List.sort (fun (a, _) (b, _) -> String.compare a b) shapes
  in
  let st = { prefix = pick_prefix (used_names block shapes); params = [] } in
  let nblock = List.map (hoist_stmt st) block in
  let nshapes = hoist_shapes st shapes in
  let bindings = List.rev_map (fun (k, p) -> (p, k)) st.params in
  let key =
    Digest.to_hex
      (Digest.string
         (String.concat "\x00"
            [
              "blockc-blueprint-v1";
              (if unsafe then "unsafe" else "checked");
              Stmt.block_to_string nblock;
              render_shapes nshapes;
            ]))
  in
  { key; block = nblock; shapes = nshapes; unsafe; bindings }

let specialize t =
  Stmt.subst_block
    (List.map (fun (p, k) -> (p, Expr.Int k)) t.bindings)
    t.block

let describe t =
  Printf.sprintf "blueprint %s (%d hoisted binding%s%s)" t.key
    (List.length t.bindings)
    (if List.length t.bindings = 1 then "" else "s")
    (match t.bindings with
    | [] -> ""
    | bs ->
        ": "
        ^ String.concat ", "
            (List.map (fun (p, k) -> Printf.sprintf "%s=%d" p k) bs))
