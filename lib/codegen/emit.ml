(* IR -> OCaml lowering.  See emit.mli for the contract.

   The generated module binds every array to its flat column-major
   buffer once, keeps scalars in refs, and lowers loops to [for] with
   the interpreter's once-evaluated bounds and trip count.  Name
   mangling is by prefix (loop index [i_], INTEGER scalar [s_], REAL
   scalar [f_], REAL array [a_], INTEGER array [ia_]), so Fortran names
   can never collide with OCaml keywords or each other. *)

module SS = Set.Make (String)
module SM = Map.Make (String)

type shapes = (string * (Expr.t * Expr.t) list) list

let low = String.lowercase_ascii

(* ---- name collection -------------------------------------------- *)

type decls = {
  mutable farr : int SM.t; (* REAL arrays -> rank *)
  mutable iarr : int SM.t; (* INTEGER arrays -> rank *)
  mutable fsc : SS.t; (* REAL scalars (read or written) *)
  mutable fsc_w : SS.t; (* ... assigned somewhere in the block *)
  mutable isc : SS.t; (* INTEGER scalars *)
  mutable isc_w : SS.t;
  mutable bad : string option; (* first unsupported construct *)
}

let fail d fmt =
  Printf.ksprintf (fun m -> if d.bad = None then d.bad <- Some m) fmt

let note_arr d ~float_data name rank =
  let m = if float_data then d.farr else d.iarr in
  (match SM.find_opt name m with
  | Some r when r <> rank ->
      fail d "array %s used with both %d and %d subscripts" name r rank
  | _ -> ());
  if float_data then d.farr <- SM.add name rank d.farr
  else d.iarr <- SM.add name rank d.iarr

let collect block =
  let d =
    {
      farr = SM.empty;
      iarr = SM.empty;
      fsc = SS.empty;
      fsc_w = SS.empty;
      isc = SS.empty;
      isc_w = SS.empty;
      bad = None;
    }
  in
  let rec expr scope (e : Expr.t) =
    match e with
    | Expr.Int _ -> ()
    | Expr.Var v -> if not (SS.mem v scope) then d.isc <- SS.add v d.isc
    | Expr.Bin (_, a, b) | Expr.Min (a, b) | Expr.Max (a, b) ->
        expr scope a;
        expr scope b
    | Expr.Idx (name, subs) ->
        note_arr d ~float_data:false name (List.length subs);
        List.iter (expr scope) subs
  in
  let rec fexpr scope (fe : Stmt.fexpr) =
    match fe with
    | Stmt.Fconst _ -> ()
    | Stmt.Fvar v -> d.fsc <- SS.add v d.fsc
    | Stmt.Ref (name, subs) ->
        note_arr d ~float_data:true name (List.length subs);
        List.iter (expr scope) subs
    | Stmt.Fbin (_, a, b) ->
        fexpr scope a;
        fexpr scope b
    | Stmt.Fneg a -> fexpr scope a
    | Stmt.Fcall (name, args) ->
        (match (name, List.length args) with
        | ("SQRT" | "DSQRT" | "ABS" | "DABS"), 1 | ("SIGN" | "DSIGN"), 2 -> ()
        | _ -> fail d "unknown intrinsic %s/%d" name (List.length args));
        List.iter (fexpr scope) args
    | Stmt.Of_int e -> expr scope e
  in
  let rec cond scope (c : Stmt.cond) =
    match c with
    | Stmt.Fcmp (_, a, b) ->
        fexpr scope a;
        fexpr scope b
    | Stmt.Icmp (_, a, b) ->
        expr scope a;
        expr scope b
    | Stmt.Not a -> cond scope a
    | Stmt.And (a, b) | Stmt.Or (a, b) ->
        cond scope a;
        cond scope b
  in
  let rec stmt scope (s : Stmt.t) =
    match s with
    | Stmt.Assign (name, [], rhs) ->
        d.fsc <- SS.add name d.fsc;
        d.fsc_w <- SS.add name d.fsc_w;
        fexpr scope rhs
    | Stmt.Assign (name, subs, rhs) ->
        note_arr d ~float_data:true name (List.length subs);
        List.iter (expr scope) subs;
        fexpr scope rhs
    | Stmt.Iassign (name, [], rhs) ->
        if SS.mem name scope then fail d "assignment to loop index %s" name;
        d.isc <- SS.add name d.isc;
        d.isc_w <- SS.add name d.isc_w;
        expr scope rhs
    | Stmt.Iassign (name, subs, rhs) ->
        note_arr d ~float_data:false name (List.length subs);
        List.iter (expr scope) subs;
        expr scope rhs
    | Stmt.If (c, t, e) ->
        cond scope c;
        List.iter (stmt scope) t;
        List.iter (stmt scope) e
    | Stmt.Loop l ->
        expr scope l.lo;
        expr scope l.hi;
        expr scope l.step;
        List.iter (stmt (SS.add l.index scope)) l.body
  in
  List.iter (stmt SS.empty) block;
  d

(* ---- in-bounds proofs -------------------------------------------- *)

let rec min_terms (e : Expr.t) =
  match e with Expr.Min (a, b) -> min_terms a @ min_terms b | _ -> [ e ]

let rec max_terms (e : Expr.t) =
  match e with Expr.Max (a, b) -> max_terms a @ max_terms b | _ -> [ e ]

(* [a <= b] at the Expr level, decomposing MIN/MAX into the affine
   queries Symbolic can answer.  Sound, not complete: MIN/MAX nested
   under arithmetic and Idx subscripts fall to [false]. *)
let rec ple ctx (a : Expr.t) (b : Expr.t) =
  match (a, b) with
  | Expr.Max (x, y), _ -> ple ctx x b && ple ctx y b
  | _, Expr.Min (x, y) -> ple ctx a x && ple ctx a y
  | Expr.Min (x, y), _ -> ple ctx x b || ple ctx y b
  | _, Expr.Max (x, y) -> ple ctx a x || ple ctx a y
  | _ -> (
      match (Affine.of_expr a, Affine.of_expr b) with
      | Some a', Some b' -> Symbolic.prove_le ctx a' b'
      | _ -> false)

(* A fact may only enter the context if nothing it mentions is assigned
   by the block: a stale [N >= 1] after [N = 0] would unsoundly license
   an unchecked access.  (Loop indices cannot be assigned — that is an
   interpreter error the emitter also rejects.) *)
let untainted ~tainted a =
  List.for_all (fun v -> not (SS.mem v tainted)) (Affine.vars a)

let assume_ge_safe ~tainted ctx a b =
  if untainted ~tainted a && untainted ~tainted b then
    Symbolic.assume_ge ctx a b
  else ctx

let step_ge1 ctx (e : Expr.t) =
  match Affine.of_expr e with
  | Some a -> Symbolic.prove_ge ctx a (Affine.const 1)
  | None -> false

(* Facts available inside the body of [l]: for a provably positive step,
   every executed iteration satisfies [lo <= index <= hi] (the trip
   count stops at or below [hi]).  MAX in the lower bound and MIN in the
   upper bound decompose into one fact per term. *)
let enter_loop ~tainted ctx (l : Stmt.loop) =
  if not (step_ge1 ctx l.step) then ctx
  else begin
    let ix = Affine.var l.index in
    let ctx =
      List.fold_left
        (fun ctx t ->
          match Affine.of_expr t with
          | Some a -> assume_ge_safe ~tainted ctx ix a
          | None -> ctx)
        ctx (max_terms l.lo)
    in
    List.fold_left
      (fun ctx t ->
        match Affine.of_expr t with
        | Some a -> assume_ge_safe ~tainted ctx a ix
        | None -> ctx)
      ctx (min_terms l.hi)
  end

(* Base facts every backend starts from: the symbolic parameters not
   assigned by the block are positive (re-checked at run time before
   any unchecked access fires), and each declared shape is a nonempty
   dimension ([hi >= lo] is an Env invariant for every array that
   exists).  Returns the context plus the assumed parameter set. *)
let base_ctx ~tainted ~shapes blk =
  let params =
    List.filter (fun p -> not (SS.mem p tainted)) (Ir_util.symbolic_params blk)
  in
  let ctx = List.fold_left Symbolic.assume_pos Symbolic.empty params in
  let ctx =
    List.fold_left
      (fun ctx (_, dims) ->
        List.fold_left
          (fun ctx (lo, hi) ->
            match (Affine.of_expr lo, Affine.of_expr hi) with
            | Some l, Some h -> assume_ge_safe ~tainted ctx h l
            | _ -> ctx)
          ctx dims)
      ctx shapes
  in
  (ctx, SS.of_list params)

(* ---- rendering ---------------------------------------------------- *)

type st = {
  d : decls;
  shapes : shapes;
  unsafe : bool;
  tainted : SS.t; (* INTEGER scalars the block assigns *)
  body : Buffer.t;
  mutable proved : SS.t; (* arrays with at least one unchecked access *)
  mutable assumed : SS.t; (* parameters whose positivity a proof used *)
}

let line st ind fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string st.body (String.make (2 * ind) ' ');
      Buffer.add_string st.body s;
      Buffer.add_char st.body '\n')
    fmt

let float_lit x =
  if Float.is_nan x then "Float.nan"
  else if x = Float.infinity then "Float.infinity"
  else if x = Float.neg_infinity then "Float.neg_infinity"
  else begin
    let valid s = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s in
    let fix s = if valid s then s else s ^ "." in
    let s = Printf.sprintf "%g" x in
    let s = if float_of_string s = x then fix s else fix (Printf.sprintf "%.17g" x) in
    if s.[0] = '-' then "(" ^ s ^ ")" else s
  end

(* Flat column-major offset of [subs] into array [name]; [dp] is the
   mangled-name prefix pair (data, dims/lows/strides) for the space. *)
let flat_index pe ~ipfx name subs =
  let nm = low name in
  let terms =
    List.mapi
      (fun k sub ->
        if k = 0 then Printf.sprintf "(%s - %sl0_%s)" (pe sub) ipfx nm
        else
          Printf.sprintf "((%s - %sl%d_%s) * %st%d_%s)" (pe sub) ipfx k nm ipfx
            k nm)
      subs
  in
  match terms with [ t ] -> t | _ -> "(" ^ String.concat " + " terms ^ ")"

let in_bounds st ctx name subs =
  st.unsafe
  &&
  match ctx with
  | None -> false
  | Some ctx -> (
      match List.assoc_opt name st.shapes with
      | Some dims when List.length dims = List.length subs ->
          let ok =
            List.for_all2
              (fun (lo, hi) s -> ple ctx lo s && ple ctx s hi)
              dims subs
          in
          if ok then st.proved <- SS.add name st.proved;
          ok
      | _ -> false)

let rec pe st scope ctx (e : Expr.t) =
  match e with
  | Expr.Int n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | Expr.Var v ->
      if SS.mem v scope then "i_" ^ low v else "!s_" ^ low v
  | Expr.Bin (op, a, b) ->
      let o =
        match op with
        | Expr.Add -> "+"
        | Expr.Sub -> "-"
        | Expr.Mul -> "*"
        | Expr.Div -> "/"
      in
      Printf.sprintf "(%s %s %s)" (pe st scope ctx a) o (pe st scope ctx b)
  | Expr.Min (a, b) ->
      Printf.sprintf "(imin %s %s)" (pe st scope ctx a) (pe st scope ctx b)
  | Expr.Max (a, b) ->
      Printf.sprintf "(imax %s %s)" (pe st scope ctx a) (pe st scope ctx b)
  | Expr.Idx (name, subs) ->
      let idx = flat_index (pe st scope ctx) ~ipfx:"i" name subs in
      if in_bounds st ctx name subs then
        Printf.sprintf "(Array.unsafe_get ia_%s %s)" (low name) idx
      else Printf.sprintf "ia_%s.(%s)" (low name) idx

let rec pf st scope ctx (fe : Stmt.fexpr) =
  match fe with
  | Stmt.Fconst x -> float_lit x
  | Stmt.Fvar v -> "!f_" ^ low v
  | Stmt.Ref (name, subs) ->
      let idx = flat_index (pe st scope ctx) ~ipfx:"" name subs in
      if in_bounds st ctx name subs then
        Printf.sprintf "(Array.unsafe_get a_%s %s)" (low name) idx
      else Printf.sprintf "a_%s.(%s)" (low name) idx
  | Stmt.Fbin (op, a, b) ->
      let o =
        match op with
        | Stmt.FAdd -> "+."
        | Stmt.FSub -> "-."
        | Stmt.FMul -> "*."
        | Stmt.FDiv -> "/."
      in
      Printf.sprintf "(%s %s %s)" (pf st scope ctx a) o (pf st scope ctx b)
  | Stmt.Fneg a -> Printf.sprintf "(-. %s)" (pf st scope ctx a)
  | Stmt.Fcall (("SQRT" | "DSQRT"), [ x ]) ->
      Printf.sprintf "(fsqrt %s)" (pf st scope ctx x)
  | Stmt.Fcall (("ABS" | "DABS"), [ x ]) ->
      Printf.sprintf "(Float.abs %s)" (pf st scope ctx x)
  | Stmt.Fcall (("SIGN" | "DSIGN"), [ a; b ]) ->
      Printf.sprintf "(fsign %s %s)" (pf st scope ctx a) (pf st scope ctx b)
  | Stmt.Fcall _ -> "0.0" (* rejected during collection *)
  | Stmt.Of_int e -> Printf.sprintf "(float_of_int %s)" (pe st scope ctx e)

let rel_op (r : Stmt.rel) =
  match r with
  | Stmt.Eq -> "="
  | Stmt.Ne -> "<>"
  | Stmt.Lt -> "<"
  | Stmt.Le -> "<="
  | Stmt.Gt -> ">"
  | Stmt.Ge -> ">="

let rec pc st scope ctx (c : Stmt.cond) =
  match c with
  | Stmt.Fcmp (r, a, b) ->
      (* Float.compare, as in the interpreter: total order, NaN = NaN. *)
      Printf.sprintf "(Float.compare %s %s %s 0)" (pf st scope ctx a)
        (pf st scope ctx b) (rel_op r)
  | Stmt.Icmp (r, a, b) ->
      Printf.sprintf "(%s %s %s)" (pe st scope ctx a) (rel_op r)
        (pe st scope ctx b)
  | Stmt.Not a -> Printf.sprintf "(not %s)" (pc st scope ctx a)
  | Stmt.And (a, b) ->
      Printf.sprintf "(%s && %s)" (pc st scope ctx a) (pc st scope ctx b)
  | Stmt.Or (a, b) ->
      Printf.sprintf "(%s || %s)" (pc st scope ctx a) (pc st scope ctx b)

let rec stmt st scope ctx ind (s : Stmt.t) =
  match s with
  | Stmt.Assign (name, [], rhs) ->
      line st ind "f_%s := %s;" (low name) (pf st scope ctx rhs)
  | Stmt.Assign (name, subs, rhs) ->
      let rhs = pf st scope ctx rhs in
      let idx = flat_index (pe st scope ctx) ~ipfx:"" name subs in
      if in_bounds st ctx name subs then
        line st ind "Array.unsafe_set a_%s %s %s;" (low name) idx rhs
      else line st ind "a_%s.(%s) <- %s;" (low name) idx rhs
  | Stmt.Iassign (name, [], rhs) ->
      line st ind "s_%s := %s;" (low name) (pe st scope ctx rhs)
  | Stmt.Iassign (name, subs, rhs) ->
      let rhs = pe st scope ctx rhs in
      let idx = flat_index (pe st scope ctx) ~ipfx:"i" name subs in
      if in_bounds st ctx name subs then
        line st ind "Array.unsafe_set ia_%s %s %s;" (low name) idx rhs
      else line st ind "ia_%s.(%s) <- %s;" (low name) idx rhs
  | Stmt.If (c, t, e) ->
      line st ind "if %s then begin" (pc st scope ctx c);
      block st scope ctx (ind + 1) t;
      if e = [] then line st ind "end;"
      else begin
        line st ind "end";
        line st ind "else begin";
        block st scope ctx (ind + 1) e;
        line st ind "end;"
      end
  | Stmt.Loop l ->
      let ix = low l.index in
      let inner_scope = SS.add l.index scope in
      (* A re-bound index invalidates the outer facts about its name; no
         way to retract them, so stop proving inside. *)
      let ctx' =
        if SS.mem l.index scope then None
        else Option.map (fun c -> enter_loop ~tainted:st.tainted c l) ctx
      in
      line st ind "let lo_%s = %s in" ix (pe st scope ctx l.lo);
      line st ind "let hi_%s = %s in" ix (pe st scope ctx l.hi);
      (match l.step with
      | Expr.Int 1 ->
          line st ind "for i_%s = lo_%s to hi_%s do" ix ix ix;
          block st inner_scope ctx' (ind + 1) l.body;
          line st ind "done;"
      | step ->
          line st ind "let st_%s = %s in" ix (pe st scope ctx step);
          line st ind "if st_%s = 0 then failwith \"DO %s: zero step\";" ix
            l.index;
          line st ind "let n_%s = (hi_%s - lo_%s + st_%s) / st_%s in" ix ix ix
            ix ix;
          line st ind "let r_%s = ref lo_%s in" ix ix;
          line st ind "for _ = 1 to n_%s do" ix;
          line st (ind + 1) "let i_%s = !r_%s in" ix ix;
          block st inner_scope ctx' (ind + 1) l.body;
          line st (ind + 1) "r_%s := i_%s + st_%s;" ix ix ix;
          line st ind "done;")

and block st scope ctx ind = function
  | [] -> line st ind "();"
  | stmts -> List.iter (stmt st scope ctx ind) stmts

(* ---- assembly ----------------------------------------------------- *)

let header name =
  Printf.sprintf
    "(* %s — OCaml lowered from the mini-Fortran IR by blockc's codegen.\n\
    \   Self-contained (Stdlib only).  The host obtains [run] through the\n\
    \   Blockc_kernel exception raised when the plugin is loaded. *)\n"
    name

let fn_type =
  "(string -> int) * (string -> float) * (string -> float array)\n\
  \  * (string -> int array) * (string -> int array) * (string -> int array)\n\
  \  * (string -> float -> unit) * (string -> int -> unit) -> unit"

let source ?(unsafe = true) ?(shapes = []) ~name blk =
  let d = collect blk in
  match d.bad with
  | Some m -> Error (Printf.sprintf "cannot compile %s: %s" name m)
  | None ->
      let st =
        {
          d;
          shapes;
          unsafe;
          tainted = d.isc_w;
          body = Buffer.create 4096;
          proved = SS.empty;
          assumed = SS.empty;
        }
      in
      let ctx, assumed = base_ctx ~tainted:st.tainted ~shapes blk in
      st.assumed <- assumed;
      block st SS.empty (Some ctx) 1 blk;
      (* The body pass recorded which arrays carry unchecked accesses
         and which parameters the proofs assumed positive; now build
         the prelude around it. *)
      let b = Buffer.create 8192 in
      let out fmt = Printf.ksprintf (fun s -> Buffer.add_string b s) fmt in
      out "%s\n" (header name);
      out "exception Blockc_kernel of\n  (%s)\n\n" fn_type;
      out "let imin (a : int) (b : int) = if a <= b then a else b\n";
      out "let imax (a : int) (b : int) = if a >= b then a else b\n\n";
      out
        "let fsqrt x =\n\
        \  if x < 0.0 then failwith (Printf.sprintf \"SQRT of negative %%g\" x)\n\
        \  else sqrt x\n\n";
      out "let fsign a b = if b >= 0.0 then Float.abs a else -.Float.abs a\n\n";
      out
        "let run ((geti : string -> int), (getf : string -> float),\n\
        \         (getfa : string -> float array), (getia : string -> int array),\n\
        \         (getfd : string -> int array), (getid : string -> int array),\n\
        \         (setf : string -> float -> unit), (seti : string -> int -> unit)) =\n";
      out "  ignore (geti, getf, getfa, getia, getfd, getid, setf, seti);\n";
      out "  ignore (imin, imax, fsqrt, fsign);\n";
      (* REAL arrays: buffer, dims, per-dimension lows and strides. *)
      let emit_arr ~ipfx ~data ~dims name rank =
        let nm = low name in
        out "  let %s%s = %s %S in\n" (if ipfx = "i" then "ia_" else "a_") nm
          data name;
        out "  let %sd_%s = %s %S in\n" ipfx nm dims name;
        out "  let %sl0_%s = %sd_%s.(0) in\n" ipfx nm ipfx nm;
        for k = 1 to rank - 1 do
          out "  let %sl%d_%s = %sd_%s.(%d) in\n" ipfx k nm ipfx nm (2 * k);
          let prev =
            if k = 1 then "1"
            else Printf.sprintf "%st%d_%s" ipfx (k - 1) nm
          in
          out "  let %st%d_%s = %s * (%sd_%s.(%d) - %sd_%s.(%d) + 1) in\n" ipfx
            k nm prev ipfx nm ((2 * (k - 1)) + 1) ipfx nm (2 * (k - 1))
        done
      in
      SM.iter (fun name rank -> emit_arr ~ipfx:"" ~data:"getfa" ~dims:"getfd" name rank) d.farr;
      SM.iter (fun name rank -> emit_arr ~ipfx:"i" ~data:"getia" ~dims:"getid" name rank) d.iarr;
      (* Scalars: refs initialized from the host (0 / 0.0 when unset),
         written back below. *)
      SS.iter
        (fun v -> out "  let s_%s = ref (geti %S) in\n" (low v) v)
        d.isc;
      SS.iter (fun v -> out "  let f_%s = ref (getf %S) in\n" (low v) v) d.fsc;
      (* Everything the in-bounds proofs assumed, re-checked: declared
         shapes match the actual dims, assumed parameters are >= 1. *)
      if not (SS.is_empty st.proved) then begin
        SS.iter
          (fun v ->
            out
              "  if !s_%s < 1 then failwith \"%s: unchecked accesses assume %s >= 1\";\n"
              (low v) name v)
          st.assumed;
        List.iter
          (fun (arr, dims) ->
            match SM.find_opt arr d.farr with
            | None -> ()
            | Some rank when rank <> List.length dims -> ()
            | Some _ ->
                let checks =
                  List.concat
                    (List.mapi
                       (fun k (lo, hi) ->
                         let p = pe st SS.empty None in
                         [
                           Printf.sprintf "d_%s.(%d) = %s" (low arr) (2 * k)
                             (p lo);
                           Printf.sprintf "d_%s.(%d) = %s" (low arr)
                             ((2 * k) + 1) (p hi);
                         ])
                       dims)
                in
                out
                  "  if not (%s) then failwith \"%s: %s dims differ from the declared shape\";\n"
                  (String.concat " && " checks) name arr)
          shapes
      end;
      Buffer.add_buffer b st.body;
      (* Write scalars back so the host environment sees the kernel's
         scalar results (loop indices stay internal, as in Fortran). *)
      SS.iter (fun v -> out "  seti %S !s_%s;\n" v (low v)) d.isc_w;
      SS.iter (fun v -> out "  setf %S !f_%s;\n" v (low v)) d.fsc_w;
      out "  ()\n\n";
      out "let () = raise (Blockc_kernel run)\n";
      Ok (Buffer.contents b)
