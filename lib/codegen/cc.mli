(** System-cc back end: compiling {!Emit_c} output and running it
    in-process.

    The pipeline is [cc -std=c99 -O2 -shared -fPIC -ffp-contract=off]
    on the emitted C, then [dlopen] through a small stub.  Objects
    share the OCaml plugins' content-addressed cache
    ([Jit.cache_dir], [bk_<key>.so] next to [bk_<key>.cmxs]); the key
    is the blueprint digest combined with the backend tag and the
    first line of [cc --version], so switching compilers invalidates
    exactly the C half of the cache.  The same
    [BLOCKC_JIT_DISK_CAP] pruning applies after each fresh compile.

    Execution marshals an {!Env.t} onto the fixed kernel ABI per the
    blueprint's {!Emit_c.manifest}: REAL buffers and scalars are
    passed as direct pointers into the OCaml heap (the runtime lock is
    held across the call, so nothing moves), INTEGER state is copied
    in and out.  Results are bitwise comparable with the interpreter
    and the OCaml backend — that is the point. *)

type fn
(** A loaded kernel entry point plus its marshaling manifest. *)

type loaded = {
  key : string;  (** full cache key (blueprint x backend x compiler) *)
  so : string;  (** path of the compiled shared object *)
  cached : bool;
  disposition : Jit.disposition;
  compile_s : float;
  vec_remarks : string list;
      (** the compiler's vectorization remarks ([-fopt-info-vec]),
          persisted as [bk_<key>.vec] beside the object so cache hits
          still report them; [] when the flag is unsupported or no
          loop vectorized *)
  fn : fn;
}

val available : unit -> (unit, string) result
(** [Ok ()] when a C compiler was found (on [PATH] as [cc], or via
    [BLOCKC_CC]); otherwise a one-line reason. *)

val invocations : unit -> int
(** Actual [cc] runs so far in this process (mirrored to
    [Obs.Metrics "cc.invocations"]). *)

val compile_blueprint :
  ?cc:string -> name:string -> Blueprint.t -> (loaded, string) result
(** Compile (or fetch from cache) the shared object for a normalized
    blueprint.  Emission only happens on a cache miss.  [cc] overrides
    compiler discovery.  Run the result with
    {!run}[ ~bindings:bp.Blueprint.bindings]. *)

val run :
  ?bindings:(string * int) list -> fn -> Env.t -> (unit, string) result
(** Execute a loaded kernel against an environment, with the same
    contract as {!Jit.run}: arrays are shared with the environment,
    written scalars are stored back, [bindings] take precedence over
    the environment's integer scalars, and runtime failures (zero
    step, negative SQRT, out-of-bounds checked access) come back as
    [Error]. *)