(* System-cc back end for emitted kernels.

   The pipeline is [cc -std=c99 -O2 -shared -fPIC -ffp-contract=off]
   on the {!Emit_c} output, then [dlopen] through the cc_stubs shim.
   Objects live in the same content-addressed cache as the OCaml
   plugins ([Jit.cache_dir]), keyed by blueprint digest x backend tag
   x [cc --version], so a toolchain upgrade invalidates exactly the C
   half of the cache.  [-ffp-contract=off] is load-bearing: it is what
   makes the object bitwise-comparable with the interpreter and the
   OCaml plugin (no FMA contraction of a*b+c). *)

external cc_load : string -> nativeint = "blockc_cc_load"

external cc_run :
  nativeint ->
  float array array
  * int array
  * int array array
  * int array
  * float array
  * int array ->
  string = "blockc_cc_run"

type fn = { entry : nativeint; mf : Emit_c.manifest }

type loaded = {
  key : string;
  so : string;
  cached : bool;
  disposition : Jit.disposition;
  compile_s : float;
  vec_remarks : string list;
  fn : fn;
}

(* ---- compiler discovery ------------------------------------------ *)

let find_cc () =
  match Sys.getenv_opt "BLOCKC_CC" with
  | Some p -> if Sys.file_exists p then Some p else None
  | None ->
      let path = Option.value (Sys.getenv_opt "PATH") ~default:"" in
      List.find_map
        (fun dir ->
          if dir = "" then None
          else
            let p = Filename.concat dir "cc" in
            if Sys.file_exists p then Some p else None)
        (String.split_on_char ':' path)

let available () =
  match find_cc () with
  | Some _ -> Ok ()
  | None -> Error "cc not found on PATH (set BLOCKC_CC)"

(* First line of [cc --version], memoized: part of the cache key, so
   it must be stable for the life of the process and cheap after the
   first call. *)
let version_mu = Mutex.create ()
let version_memo : (string, string) Hashtbl.t = Hashtbl.create 1

let cc_version compiler =
  Mutex.lock version_mu;
  let v =
    match Hashtbl.find_opt version_memo compiler with
    | Some v -> v
    | None ->
        let v =
          try
            let ic =
              Unix.open_process_in
                (Filename.quote compiler ^ " --version 2>/dev/null")
            in
            let line = try input_line ic with End_of_file -> "" in
            ignore (Unix.close_process_in ic);
            line
          with Unix.Unix_error _ | Sys_error _ -> ""
        in
        Hashtbl.replace version_memo compiler v;
        v
  in
  Mutex.unlock version_mu;
  v

(* ---- compile + load ---------------------------------------------- *)

let invocation_count = ref 0

let invocation_counter =
  lazy
    (Obs.Metrics.counter ~help:"Actual cc runs (C-backend compiles)"
       "cc.invocations")

(* One coarse lock around compile-or-fetch: the C backend has no
   serve-style concurrent-compile workload yet, so single-flighting per
   key is not worth the machinery Jit needs. *)
let mu = Mutex.create ()
let memo : (string, fn) Hashtbl.t = Hashtbl.create 16

let invocations () =
  Mutex.lock mu;
  let n = !invocation_count in
  Mutex.unlock mu;
  n

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error _ -> ""

let first_lines ?(n = 4) s =
  let lines = String.split_on_char '\n' (String.trim s) in
  String.concat " | " (List.filteri (fun i _ -> i < n) lines)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* The compiler's vectorization report ([-fopt-info-vec=FILE]), kept
   next to the cached object as [bk_<key>.vec] so warm loads can still
   answer "which loops vectorized?".  Only the remark lines themselves
   survive the filter; an absent or empty file (flag unsupported, or
   nothing vectorized) is just []. *)
let vec_remarks_of vecf =
  read_file vecf
  |> String.split_on_char '\n'
  |> List.filter_map (fun l ->
         let l = String.trim l in
         if l <> "" && contains_sub l "vectoriz" then Some l else None)

let rec mkdirs p =
  if not (Sys.file_exists p) then begin
    let parent = Filename.dirname p in
    if parent <> p then mkdirs parent;
    try Sys.mkdir p 0o755 with Sys_error _ -> ()
  end

let compile_blueprint ?cc ~name (bp : Blueprint.t) =
  Obs.span ~cat:"jit" "cc.compile_blueprint"
    ~args:[ ("kernel", Obs.Str name) ]
  @@ fun () ->
  let compiler =
    match cc with
    | Some c -> Some c
    | None -> find_cc ()
  in
  match compiler with
  | None -> Error "cc not found on PATH (set BLOCKC_CC)"
  | Some compiler -> (
      match Emit_c.manifest bp.Blueprint.block with
      | Error m -> Error (Printf.sprintf "cannot compile %s: %s" name m)
      | Ok mf -> (
          let key =
            Digest.to_hex
              (Digest.string
                 (cc_version compiler ^ "\x00c-backend\x00" ^ bp.Blueprint.key))
          in
          Mutex.lock mu;
          let memoized = Hashtbl.find_opt memo key in
          Mutex.unlock mu;
          let dir = Jit.cache_dir () in
          let base = "bk_" ^ key in
          let so = Filename.concat dir (base ^ ".so") in
          let vecf = Filename.concat dir (base ^ ".vec") in
          match memoized with
          | Some fn ->
              Ok
                {
                  key;
                  so;
                  cached = true;
                  disposition = Jit.Memo;
                  compile_s = 0.0;
                  vec_remarks = vec_remarks_of vecf;
                  fn;
                }
          | None ->
              Mutex.lock mu;
              let finish r =
                Mutex.unlock mu;
                r
              in
              (* Re-probe under the lock: another thread may have
                 loaded it while we waited. *)
              finish
                (match Hashtbl.find_opt memo key with
                | Some fn ->
                    Ok
                      {
                        key;
                        so;
                        cached = true;
                        disposition = Jit.Memo;
                        compile_s = 0.0;
                        vec_remarks = vec_remarks_of vecf;
                        fn;
                      }
                | None -> (
                    mkdirs dir;
                    let on_disk = Sys.file_exists so in
                    let t0 = Unix.gettimeofday () in
                    let built =
                      if on_disk then Ok ()
                      else
                        match
                          Emit_c.source ~unsafe:bp.Blueprint.unsafe
                            ~shapes:bp.Blueprint.shapes ~name
                            bp.Blueprint.block
                        with
                        | Error _ as e -> e
                        | Ok src ->
                            Obs.span ~cat:"jit" "cc.compile"
                              ~args:
                                [
                                  ("kernel", Obs.Str name);
                                  ("key", Obs.Str key);
                                ]
                            @@ fun () ->
                            let c = Filename.concat dir (base ^ ".c") in
                            let tmp = Filename.concat dir (base ^ ".tmp.so") in
                            let errf = Filename.concat dir (base ^ ".err") in
                            write_file c src;
                            let cmd extra =
                              Printf.sprintf
                                "%s -std=c99 -O2 -shared -fPIC \
                                 -ffp-contract=off%s -o %s %s -lm 2> %s"
                                (Filename.quote compiler) extra
                                (Filename.quote tmp) (Filename.quote c)
                                (Filename.quote errf)
                            in
                            incr invocation_count;
                            Obs.Metrics.incr (Lazy.force invocation_counter);
                            (* First attempt asks for the vectorization
                               report; compilers that reject the flag
                               (it is a GCC spelling) get a clean retry
                               without it. *)
                            (try Sys.remove vecf with Sys_error _ -> ());
                            let rc =
                              match
                                Sys.command
                                  (cmd
                                     (" -fopt-info-vec="
                                     ^ Filename.quote vecf))
                              with
                              | 0 -> 0
                              | _ ->
                                  (try Sys.remove vecf
                                   with Sys_error _ -> ());
                                  Sys.command (cmd "")
                            in
                            if rc <> 0 then
                              Error
                                (Printf.sprintf "%s: cc failed (exit %d): %s"
                                   name rc
                                   (first_lines (read_file errf)))
                            else begin
                              (try Sys.rename tmp so
                               with Sys_error m -> failwith m);
                              Jit.prune_disk_cache ~keep:[ base ^ ".so" ] ();
                              Ok ()
                            end
                    in
                    let compile_s = Unix.gettimeofday () -. t0 in
                    match built with
                    | Error _ as e -> e
                    | Ok () -> (
                        match cc_load so with
                        | entry ->
                            let fn = { entry; mf } in
                            Hashtbl.replace memo key fn;
                            Ok
                              {
                                key;
                                so;
                                cached = on_disk;
                                disposition =
                                  (if on_disk then Jit.Disk else Jit.Compiled);
                                compile_s;
                                vec_remarks = vec_remarks_of vecf;
                                fn;
                              }
                        | exception Failure m ->
                            Error
                              (Printf.sprintf "%s: dlopen failed: %s" name m)))))
      )

(* ---- execution --------------------------------------------------- *)

let flat_dims dims =
  Array.of_list (List.concat_map (fun (lo, hi) -> [ lo; hi ]) dims)

let run ?(bindings = []) fn env =
  Obs.span ~cat:"jit" "cc.run"
  @@ fun () ->
  let mf = fn.mf in
  let geti n =
    match List.assoc_opt n bindings with
    | Some v -> v
    | None -> if Env.has_iscalar env n then Env.iscalar env n else 0
  in
  let getf n = if Env.has_fscalar env n then Env.fscalar env n else 0.0 in
  match
    let fa =
      Array.of_list
        (List.map (fun (n, _) -> Env.farray_data env n) mf.Emit_c.m_farrays)
    in
    let fdim =
      Array.concat
        (List.map
           (fun (n, _) -> flat_dims (Env.farray_dims env n))
           mf.Emit_c.m_farrays)
    in
    let ia =
      Array.of_list
        (List.map (fun (n, _) -> Env.iarray_data env n) mf.Emit_c.m_iarrays)
    in
    let idim =
      Array.concat
        (List.map
           (fun (n, _) -> flat_dims (Env.iarray_dims env n))
           mf.Emit_c.m_iarrays)
    in
    let fsc = Array.of_list (List.map getf mf.Emit_c.m_fscalars) in
    let isc = Array.of_list (List.map geti mf.Emit_c.m_iscalars) in
    let msg = cc_run fn.entry (fa, fdim, ia, idim, fsc, isc) in
    if msg = "" then begin
      (* Scalar results back into the environment, mirroring the OCaml
         plugins' seti/setf write-backs. *)
      List.iteri
        (fun i n ->
          if List.mem n mf.Emit_c.m_fsc_w then Env.set_fscalar env n fsc.(i))
        mf.Emit_c.m_fscalars;
      List.iteri
        (fun i n ->
          if List.mem n mf.Emit_c.m_isc_w then Env.set_iscalar env n isc.(i))
        mf.Emit_c.m_iscalars;
      Ok ()
    end
    else Error msg
  with
  | r -> r
  | exception Env.Error m -> Error m
  | exception Failure m -> Error m