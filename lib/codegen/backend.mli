(** Backend-polymorphic native compilation.

    One signature over the two native substrates — {!Jit} (emitted
    OCaml, [ocamlopt -shared], [Dynlink]) and {!Cc} (emitted C99,
    [cc -shared], [dlopen]) — so every driver that compiles a
    {!Blueprint} and runs it against an {!Env.t} can take the backend
    as a value.  Both substrates share the blueprint normalization,
    the {!Symbolic} in-bounds proofs, the content-addressed artifact
    cache, and the bitwise-agreement contract with the interpreter;
    the fuzzer's three-way differential is what enforces the last. *)

type compiled = {
  bk_tag : string;  (** which backend produced this (["ocaml"], ["c"]) *)
  bk_key : string;  (** full cache key *)
  bk_artifact : string;  (** compiled plugin ([.cmxs]) or object ([.so]) *)
  bk_cached : bool;
  bk_disposition : Jit.disposition;
  bk_compile_s : float;
  bk_remarks : string list;
      (** optimizer remarks about the artifact: the C backend's
          vectorization report ({!Cc.loaded.vec_remarks}); [] for the
          OCaml backend *)
  bk_run : ?bindings:(string * int) list -> Env.t -> (unit, string) result;
      (** {!Jit.run} contract: arrays shared with the environment,
          written scalars stored back, [bindings] close hoisted
          parameters, runtime failures are [Error]. *)
}

module type S = sig
  val tag : string

  val available : unit -> (unit, string) result
  (** Whether this backend's toolchain is usable in this process. *)

  val compile_blueprint :
    name:string -> Blueprint.t -> (compiled, string) result
end

module Ocaml : S
module C : S

val all : (module S) list
(** Every backend, OCaml first. *)

val names : string list
(** Their tags, for CLI enumerations and error messages. *)

val of_tag : string -> (module S) option
