(** Compiling emitted kernels to native code and running them in-process.

    The pipeline is [ocamlopt -shared] on the {!Emit} output, then
    [Dynlink.loadfile_private] on the resulting [.cmxs].  Because the
    plugin is self-contained, no [.cmi] is shared with the host: the
    plugin raises [Blockc_kernel run] from its initializer, the load
    surfaces it as [Library's_module_initializers_failed], and the
    closure is pulled out of the exception payload after checking the
    constructor's name.

    Compiled plugins are cached on disk under [_build/.jitcache]
    (override with [BLOCKC_JIT_CACHE]).  The cache key is the
    {!Blueprint} digest xor the compiler version for the
    {!compile_blueprint} path — so one loop structure is one artifact
    no matter how many problem sizes it runs at — and the raw source
    digest for the legacy {!compile} path.  An in-process memo avoids
    even the [Dynlink] load on repeat requests; it is LRU-bounded
    ([BLOCKC_JIT_MEMO_CAP], default 64) so a long-running daemon cannot
    grow without limit, with evictions counted in
    [Obs.Metrics "jit.memo_evictions"].  Concurrent compiles of the
    same key are single-flighted: one request builds, the rest wait and
    share the result ([jit.compile_dedup_hits]).

    Every stage records an Obs span ([jit.emit], [jit.compile],
    [jit.compile_blueprint], [jit.load], [jit.run]) so [--trace] covers
    the native path. *)

type fn
(** A loaded kernel entry point. *)

(** How a compile request was satisfied: from the in-process memo, from
    the on-disk artifact cache, or by actually running [ocamlopt]. *)
type disposition = Memo | Disk | Compiled

val disposition_name : disposition -> string
(** ["memo"], ["disk"] or ["compiled"] — the spelling the CLI's
    [--json] output and the serve protocol use. *)

type loaded = {
  key : string;  (** full cache key (blueprint or source digest) *)
  cmxs : string;  (** path of the compiled plugin *)
  cached : bool;  (** true when the compile step was skipped *)
  disposition : disposition;
  compile_s : float;
      (** wall-clock seconds spent producing the artifact; 0 for memo
          hits, the [ocamlopt] wall time for fresh compiles *)
  fn : fn;
}

val available : unit -> (unit, string) result
(** [Ok ()] when native dynlink works and [ocamlopt] was found (on
    [PATH], or via [BLOCKC_OCAMLOPT]); otherwise a one-line reason —
    callers fall back to the interpreter. *)

val cache_dir : unit -> string

val emit :
  ?unsafe:bool ->
  ?shapes:Emit.shapes ->
  name:string ->
  Stmt.t list ->
  (string, string) result
(** {!Emit.source} wrapped in a [jit.emit] span. *)

val compile : ?ocamlopt:string -> name:string -> string -> (loaded, string) result
(** Compile (or fetch from cache) and load emitted source, keyed by the
    source digest.  [name] is only for diagnostics and spans.
    [ocamlopt] overrides compiler discovery — pointing it at a
    non-compiler is how the fallback path is tested. *)

val compile_blueprint :
  ?ocamlopt:string -> name:string -> Blueprint.t -> (loaded, string) result
(** Compile (or fetch) the plugin for a normalized blueprint, keyed by
    [Blueprint.key] xor the compiler version.  Emission only happens on
    a cache miss: the warm path is a hash lookup.  Run the result with
    {!run}[ ~bindings:bp.Blueprint.bindings]. *)

val run :
  ?bindings:(string * int) list -> fn -> Env.t -> (unit, string) result
(** Execute a loaded kernel against an environment: parameters and
    scalars are read from it, array buffers are shared with it (the
    kernel writes results in place), and scalar results are written
    back.  [bindings] take precedence over the environment's integer
    scalars — they close the parameters a {!Blueprint} hoisted.
    Runtime failures (zero step, negative SQRT, out-of-bounds checked
    access) come back as [Error]. *)

val run_block :
  ?unsafe:bool ->
  ?shapes:Emit.shapes ->
  name:string ->
  Stmt.t list ->
  Env.t ->
  (unit, string) result
(** Blueprint-normalize, compile and run in one step: repeated calls
    with blocks that share a loop structure share one compile. *)

(** {1 Cache introspection}

    Process-wide counters, exact regardless of whether [Obs.Metrics]
    collection is enabled — the compile-count acceptance tests and the
    serve daemon's status report read them. *)

val compiler_invocations : unit -> int
(** Number of actual [ocamlopt] runs so far in this process. *)

val memo_size : unit -> int
(** Entries currently held by the in-process memo. *)

val memo_evictions : unit -> int
(** LRU evictions so far (also mirrored to
    [Obs.Metrics "jit.memo_evictions"] when metrics are on). *)

val dedup_waits : unit -> int
(** Requests that found their key already being compiled and waited for
    the in-flight build instead of starting another. *)

val memo_hits : unit -> int
(** Lookups satisfied by the in-process memo (no Dynlink, no ocamlopt).
    Mirrored to [Obs.Metrics "jit.memo_hits"] when metrics are on. *)

val disk_hits : unit -> int
(** Lookups satisfied by an on-disk [.cmxs] artifact (Dynlink load, no
    ocamlopt).  Mirrored to [Obs.Metrics "jit.disk_hits"]. *)

type disk_cache = {
  entries : int;  (** [bk_*.cmxs] / [bk_*.so] artifacts in {!cache_dir} *)
  bytes : int;  (** their total size *)
  oldest_age_s : float;  (** age of the oldest artifact; 0 when empty *)
}

val disk_stats : unit -> disk_cache
(** Scan the on-disk cache ([bk_*.cmxs] plugins and [bk_*.so]
    C-backend objects).  Advisory (races with concurrent compiles are
    harmless); an absent cache directory reads as empty. *)

val prune_disk_cache : keep:string list -> unit -> unit
(** When [BLOCKC_JIT_DISK_CAP] is set (a byte budget), delete
    artifacts oldest-mtime-first — with their [.ml]/[.c]/[.err]
    siblings — until the cache fits.  [keep] names basenames that are
    never deleted (the artifact just written).  Called automatically
    after every fresh compile on both backends; exposed for tests.
    No-op when the variable is unset or not a positive integer. *)

val disk_evictions : unit -> int
(** Artifacts deleted by {!prune_disk_cache} so far in this process
    (also mirrored to [Obs.Metrics "jit.disk_evictions"]). *)
