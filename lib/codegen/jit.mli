(** Compiling emitted kernels to native code and running them in-process.

    The pipeline is [ocamlopt -shared] on the {!Emit} output, then
    [Dynlink.loadfile_private] on the resulting [.cmxs].  Because the
    plugin is self-contained, no [.cmi] is shared with the host: the
    plugin raises [Blockc_kernel run] from its initializer, the load
    surfaces it as [Library's_module_initializers_failed], and the
    closure is pulled out of the exception payload after checking the
    constructor's name.

    Compiled plugins are cached on disk under [_build/.jitcache]
    (override with [BLOCKC_JIT_CACHE]), keyed by the digest of the
    emitted source and the compiler version, plus an in-process memo so
    a kernel is never loaded twice into one process.

    Every stage records an Obs span ([jit.emit], [jit.compile],
    [jit.load], [jit.run]) so [--trace] covers the native path. *)

type fn
(** A loaded kernel entry point. *)

type loaded = {
  key : string;  (** cache key (source digest) *)
  cmxs : string;  (** path of the compiled plugin *)
  cached : bool;  (** true when the compile step was skipped *)
  fn : fn;
}

val available : unit -> (unit, string) result
(** [Ok ()] when native dynlink works and [ocamlopt] was found (on
    [PATH], or via [BLOCKC_OCAMLOPT]); otherwise a one-line reason —
    callers fall back to the interpreter. *)

val cache_dir : unit -> string

val emit :
  ?unsafe:bool ->
  ?shapes:Emit.shapes ->
  name:string ->
  Stmt.t list ->
  (string, string) result
(** {!Emit.source} wrapped in a [jit.emit] span. *)

val compile : ?ocamlopt:string -> name:string -> string -> (loaded, string) result
(** Compile (or fetch from cache) and load emitted source.  [name] is
    only for diagnostics and spans.  [ocamlopt] overrides compiler
    discovery — pointing it at a non-compiler is how the fallback path
    is tested. *)

val run : fn -> Env.t -> (unit, string) result
(** Execute a loaded kernel against an environment: parameters and
    scalars are read from it, array buffers are shared with it (the
    kernel writes results in place), and scalar results are written
    back.  Runtime failures (zero step, negative SQRT, out-of-bounds
    checked access) come back as [Error]. *)

val run_block :
  ?unsafe:bool ->
  ?shapes:Emit.shapes ->
  name:string ->
  Stmt.t list ->
  Env.t ->
  (unit, string) result
(** [emit] + [compile] + [run] in one step. *)
