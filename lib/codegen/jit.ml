(* ocamlopt -shared + Dynlink back end for emitted kernels. *)

type fn =
  (string -> int)
  * (string -> float)
  * (string -> float array)
  * (string -> int array)
  * (string -> int array)
  * (string -> int array)
  * (string -> float -> unit)
  * (string -> int -> unit)
  -> unit

type loaded = { key : string; cmxs : string; cached : bool; fn : fn }

(* ---- compiler discovery ------------------------------------------ *)

let find_ocamlopt () =
  match Sys.getenv_opt "BLOCKC_OCAMLOPT" with
  | Some p -> if Sys.file_exists p then Some p else None
  | None ->
      let path = Option.value (Sys.getenv_opt "PATH") ~default:"" in
      List.find_map
        (fun dir ->
          if dir = "" then None
          else
            let p = Filename.concat dir "ocamlopt" in
            if Sys.file_exists p then Some p else None)
        (String.split_on_char ':' path)

let available () =
  if not Dynlink.is_native then
    Error "bytecode host: Dynlink cannot load native plugins"
  else
    match find_ocamlopt () with
    | Some _ -> Ok ()
    | None -> Error "ocamlopt not found on PATH (set BLOCKC_OCAMLOPT)"

let cache_dir () =
  let dir =
    Option.value (Sys.getenv_opt "BLOCKC_JIT_CACHE")
      ~default:(Filename.concat "_build" ".jitcache")
  in
  if Filename.is_relative dir then Filename.concat (Sys.getcwd ()) dir else dir

let rec mkdirs p =
  if not (Sys.file_exists p) then begin
    let parent = Filename.dirname p in
    if parent <> p then mkdirs parent;
    try Sys.mkdir p 0o755 with Sys_error _ -> ()
  end

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error _ -> ""

(* ---- emission ----------------------------------------------------- *)

let emit ?unsafe ?shapes ~name blk =
  Obs.span ~cat:"jit" "jit.emit" ~args:[ ("kernel", Obs.Str name) ]
  @@ fun () -> Emit.source ?unsafe ?shapes ~name blk

(* ---- loading ------------------------------------------------------ *)

(* The plugin's initializer raises [Blockc_kernel run].  An exception
   value is a block whose first field is the constructor slot — itself a
   block whose first field is the constructor's name.  Validate the name
   before trusting the payload. *)
let extract (e : exn) : fn option =
  let r = Obj.repr e in
  if Obj.is_block r && Obj.size r = 2 && Obj.is_block (Obj.field r 0) then begin
    let slot = Obj.field r 0 in
    if
      Obj.size slot >= 1
      && Obj.is_block (Obj.field slot 0)
      && Obj.tag (Obj.field slot 0) = Obj.string_tag
    then begin
      let name : string = Obj.obj (Obj.field slot 0) in
      if name = "Blockc_kernel" || String.ends_with ~suffix:".Blockc_kernel" name
      then Some (Obj.obj (Obj.field r 1) : fn)
      else None
    end
    else None
  end
  else None

let load ~name cmxs =
  Obs.span ~cat:"jit" "jit.load"
    ~args:[ ("kernel", Obs.Str name); ("cmxs", Obs.Str cmxs) ]
  @@ fun () ->
  match Dynlink.loadfile_private cmxs with
  | () -> Error (name ^ ": plugin did not provide a kernel entry point")
  | exception Dynlink.Error (Dynlink.Library's_module_initializers_failed e)
    -> (
      match extract e with
      | Some fn -> Ok fn
      | None -> Error (name ^ ": plugin failed to load: " ^ Printexc.to_string e))
  | exception Dynlink.Error err ->
      Error (name ^ ": dynlink: " ^ Dynlink.error_message err)

(* ---- compilation -------------------------------------------------- *)

let memo : (string, fn) Hashtbl.t = Hashtbl.create 16

let first_lines ?(n = 4) s =
  let lines = String.split_on_char '\n' (String.trim s) in
  String.concat " | " (List.filteri (fun i _ -> i < n) lines)

let compile ?ocamlopt ~name source =
  if not Dynlink.is_native then
    Error "bytecode host: Dynlink cannot load native plugins"
  else
    let compiler =
      match ocamlopt with Some p -> Some p | None -> find_ocamlopt ()
    in
    match compiler with
    | None -> Error "ocamlopt not found on PATH (set BLOCKC_OCAMLOPT)"
    | Some compiler -> (
        let key =
          Digest.to_hex (Digest.string (Sys.ocaml_version ^ "\x00" ^ source))
        in
        match Hashtbl.find_opt memo key with
        | Some fn ->
            Ok
              {
                key;
                cmxs = Filename.concat (cache_dir ()) ("bk_" ^ key ^ ".cmxs");
                cached = true;
                fn;
              }
        | None -> (
            let dir = cache_dir () in
            mkdirs dir;
            let base = "bk_" ^ key in
            let ml = Filename.concat dir (base ^ ".ml") in
            let cmxs = Filename.concat dir (base ^ ".cmxs") in
            let on_disk = Sys.file_exists cmxs in
            let built =
              if on_disk then Ok ()
              else
                Obs.span ~cat:"jit" "jit.compile"
                  ~args:[ ("kernel", Obs.Str name); ("key", Obs.Str key) ]
                @@ fun () ->
                write_file ml source;
                let tmp = Filename.concat dir (base ^ ".tmp.cmxs") in
                let errf = Filename.concat dir (base ^ ".err") in
                let cmd =
                  Printf.sprintf "%s -shared -w -a -o %s %s 2> %s"
                    (Filename.quote compiler) (Filename.quote tmp)
                    (Filename.quote ml) (Filename.quote errf)
                in
                let rc = Sys.command cmd in
                if rc <> 0 then
                  Error
                    (Printf.sprintf "%s: ocamlopt failed (exit %d): %s" name rc
                       (first_lines (read_file errf)))
                else begin
                  (try Sys.rename tmp cmxs
                   with Sys_error m -> failwith m);
                  Ok ()
                end
            in
            match built with
            | Error _ as e -> e
            | Ok () -> (
                match load ~name cmxs with
                | Error _ as e -> e
                | Ok fn ->
                    Hashtbl.replace memo key fn;
                    Ok { key; cmxs; cached = on_disk; fn })))

(* ---- execution ---------------------------------------------------- *)

let flat_dims dims =
  Array.of_list (List.concat_map (fun (lo, hi) -> [ lo; hi ]) dims)

let run fn env =
  Obs.span ~cat:"jit" "jit.run"
  @@ fun () ->
  let geti n = if Env.has_iscalar env n then Env.iscalar env n else 0 in
  let getf n = if Env.has_fscalar env n then Env.fscalar env n else 0.0 in
  let getfa = Env.farray_data env in
  let getia = Env.iarray_data env in
  let getfd n = flat_dims (Env.farray_dims env n) in
  let getid n = flat_dims (Env.iarray_dims env n) in
  let setf = Env.set_fscalar env in
  let seti = Env.set_iscalar env in
  match fn (geti, getf, getfa, getia, getfd, getid, setf, seti) with
  | () -> Ok ()
  | exception Env.Error m -> Error m
  | exception Failure m -> Error m
  | exception Division_by_zero -> Error "division by zero"
  | exception Invalid_argument m -> Error ("out of bounds: " ^ m)

let run_block ?unsafe ?shapes ~name blk env =
  match emit ?unsafe ?shapes ~name blk with
  | Error m -> Error m
  | Ok source -> (
      match compile ~name source with
      | Error m -> Error m
      | Ok { fn; _ } -> run fn env)
