(* ocamlopt -shared + Dynlink back end for emitted kernels. *)

type fn =
  (string -> int)
  * (string -> float)
  * (string -> float array)
  * (string -> int array)
  * (string -> int array)
  * (string -> int array)
  * (string -> float -> unit)
  * (string -> int -> unit)
  -> unit

type disposition = Memo | Disk | Compiled

type loaded = {
  key : string;
  cmxs : string;
  cached : bool;
  disposition : disposition;
  compile_s : float;
  fn : fn;
}

let disposition_name = function
  | Memo -> "memo"
  | Disk -> "disk"
  | Compiled -> "compiled"

(* ---- compiler discovery ------------------------------------------ *)

let find_ocamlopt () =
  match Sys.getenv_opt "BLOCKC_OCAMLOPT" with
  | Some p -> if Sys.file_exists p then Some p else None
  | None ->
      let path = Option.value (Sys.getenv_opt "PATH") ~default:"" in
      List.find_map
        (fun dir ->
          if dir = "" then None
          else
            let p = Filename.concat dir "ocamlopt" in
            if Sys.file_exists p then Some p else None)
        (String.split_on_char ':' path)

let available () =
  if not Dynlink.is_native then
    Error "bytecode host: Dynlink cannot load native plugins"
  else
    match find_ocamlopt () with
    | Some _ -> Ok ()
    | None -> Error "ocamlopt not found on PATH (set BLOCKC_OCAMLOPT)"

let cache_dir () =
  let dir =
    Option.value (Sys.getenv_opt "BLOCKC_JIT_CACHE")
      ~default:(Filename.concat "_build" ".jitcache")
  in
  if Filename.is_relative dir then Filename.concat (Sys.getcwd ()) dir else dir

let rec mkdirs p =
  if not (Sys.file_exists p) then begin
    let parent = Filename.dirname p in
    if parent <> p then mkdirs parent;
    try Sys.mkdir p 0o755 with Sys_error _ -> ()
  end

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error _ -> ""

(* ---- emission ----------------------------------------------------- *)

let emit ?unsafe ?shapes ~name blk =
  Obs.span ~cat:"jit" "jit.emit" ~args:[ ("kernel", Obs.Str name) ]
  @@ fun () -> Emit.source ?unsafe ?shapes ~name blk

(* ---- loading ------------------------------------------------------ *)

(* The plugin's initializer raises [Blockc_kernel run].  An exception
   value is a block whose first field is the constructor slot — itself a
   block whose first field is the constructor's name.  Validate the name
   before trusting the payload. *)
let extract (e : exn) : fn option =
  let r = Obj.repr e in
  if Obj.is_block r && Obj.size r = 2 && Obj.is_block (Obj.field r 0) then begin
    let slot = Obj.field r 0 in
    if
      Obj.size slot >= 1
      && Obj.is_block (Obj.field slot 0)
      && Obj.tag (Obj.field slot 0) = Obj.string_tag
    then begin
      let name : string = Obj.obj (Obj.field slot 0) in
      if name = "Blockc_kernel" || String.ends_with ~suffix:".Blockc_kernel" name
      then Some (Obj.obj (Obj.field r 1) : fn)
      else None
    end
    else None
  end
  else None

(* Dynlink keeps global state; serialize loads across domains. *)
let dynlink_mu = Mutex.create ()

let load ~name cmxs =
  Obs.span ~cat:"jit" "jit.load"
    ~args:[ ("kernel", Obs.Str name); ("cmxs", Obs.Str cmxs) ]
  @@ fun () ->
  Mutex.lock dynlink_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock dynlink_mu)
    (fun () ->
      match Dynlink.loadfile_private cmxs with
      | () -> Error (name ^ ": plugin did not provide a kernel entry point")
      | exception Dynlink.Error (Dynlink.Library's_module_initializers_failed e)
        -> (
          match extract e with
          | Some fn -> Ok fn
          | None ->
              Error (name ^ ": plugin failed to load: " ^ Printexc.to_string e))
      | exception Dynlink.Error err ->
          Error (name ^ ": dynlink: " ^ Dynlink.error_message err))

(* ---- the in-process memo (bounded, shared, single-flight) --------- *)

(* One lock guards the memo and the in-flight set.  Compilation and
   loading happen outside the lock; a request whose key is already being
   built waits on [built_cond] instead of racing a second ocamlopt —
   the single-flight guarantee the serve daemon relies on. *)
let mu = Mutex.create ()
let built_cond = Condition.create ()

type slot = { sfn : fn; mutable last_used : int }

let memo : (string, slot) Hashtbl.t = Hashtbl.create 16
let in_flight : (string, unit) Hashtbl.t = Hashtbl.create 4
let clock = ref 0
let invocations = ref 0
let evictions = ref 0
let dedup_hits = ref 0
let memo_hit_count = ref 0
let disk_hit_count = ref 0
let disk_eviction_count = ref 0

let memo_cap () =
  match Option.bind (Sys.getenv_opt "BLOCKC_JIT_MEMO_CAP") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> 64

let compiler_invocations () =
  Mutex.lock mu;
  let n = !invocations in
  Mutex.unlock mu;
  n

let memo_evictions () =
  Mutex.lock mu;
  let n = !evictions in
  Mutex.unlock mu;
  n

let memo_size () =
  Mutex.lock mu;
  let n = Hashtbl.length memo in
  Mutex.unlock mu;
  n

let dedup_waits () =
  Mutex.lock mu;
  let n = !dedup_hits in
  Mutex.unlock mu;
  n

let memo_hits () =
  Mutex.lock mu;
  let n = !memo_hit_count in
  Mutex.unlock mu;
  n

let disk_hits () =
  Mutex.lock mu;
  let n = !disk_hit_count in
  Mutex.unlock mu;
  n

let disk_evictions () =
  Mutex.lock mu;
  let n = !disk_eviction_count in
  Mutex.unlock mu;
  n

(* Scan the on-disk artifact cache.  The directory may not exist yet
   (nothing compiled) or race with a concurrent compile renaming a tmp
   file in — both are fine, the scan is advisory introspection. *)
type disk_cache = { entries : int; bytes : int; oldest_age_s : float }

(* A cache artifact: an OCaml plugin or a C-backend shared object. *)
let is_artifact n =
  String.length n > 4
  && String.sub n 0 3 = "bk_"
  && (Filename.check_suffix n ".cmxs" || Filename.check_suffix n ".so")

let disk_stats () =
  let dir = cache_dir () in
  let names = try Sys.readdir dir with Sys_error _ -> [||] in
  let now = Unix.gettimeofday () in
  let entries = ref 0 and bytes = ref 0 and oldest = ref 0.0 in
  Array.iter
    (fun n ->
      if is_artifact n then
        match Unix.stat (Filename.concat dir n) with
        | st ->
            incr entries;
            bytes := !bytes + st.Unix.st_size;
            oldest := Float.max !oldest (now -. st.Unix.st_mtime)
        | exception Unix.Unix_error _ -> ())
    names;
  { entries = !entries; bytes = !bytes; oldest_age_s = !oldest }

let eviction_counter =
  lazy
    (Obs.Metrics.counter ~help:"LRU evictions from the in-process JIT memo"
       "jit.memo_evictions")

let dedup_counter =
  lazy
    (Obs.Metrics.counter
       ~help:"Compiles coalesced onto another request already building the \
              same blueprint"
       "jit.compile_dedup_hits")

let memo_hit_counter =
  lazy
    (Obs.Metrics.counter ~help:"Kernel lookups satisfied by the in-process memo"
       "jit.memo_hits")

let disk_hit_counter =
  lazy
    (Obs.Metrics.counter
       ~help:"Kernel lookups satisfied by an on-disk cmxs artifact"
       "jit.disk_hits")

let disk_eviction_counter =
  lazy
    (Obs.Metrics.counter
       ~help:"Artifacts deleted from the on-disk cache by BLOCKC_JIT_DISK_CAP \
              LRU pruning"
       "jit.disk_evictions")

let disk_cap () =
  match
    Option.bind (Sys.getenv_opt "BLOCKC_JIT_DISK_CAP") int_of_string_opt
  with
  | Some n when n >= 1 -> Some n
  | _ -> None

(* LRU-by-mtime pruning of the on-disk cache, called after each fresh
   compile.  Artifacts ([bk_*.cmxs], [bk_*.so]) are deleted oldest
   first until total artifact bytes fit under BLOCKC_JIT_DISK_CAP;
   each deletion also removes the artifact's source and stderr
   siblings ([.ml]/[.c]/[.err]).  [keep] protects the artifact just
   written, so a cap smaller than one plugin still leaves the current
   kernel runnable.  Best-effort: stat/unlink races with concurrent
   compiles are ignored. *)
let prune_disk_cache ~keep () =
  match disk_cap () with
  | None -> ()
  | Some cap ->
      let dir = cache_dir () in
      let names = try Sys.readdir dir with Sys_error _ -> [||] in
      let arts =
        Array.to_list names
        |> List.filter_map (fun n ->
               if is_artifact n && not (List.mem n keep) then
                 match Unix.stat (Filename.concat dir n) with
                 | st -> Some (n, st.Unix.st_size, st.Unix.st_mtime)
                 | exception Unix.Unix_error _ -> None
               else None)
        |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b)
      in
      let kept_bytes =
        List.fold_left
          (fun acc n ->
            match Unix.stat (Filename.concat dir n) with
            | st -> acc + st.Unix.st_size
            | exception Unix.Unix_error _ -> acc)
          0 keep
      in
      let total =
        List.fold_left (fun acc (_, sz, _) -> acc + sz) kept_bytes arts
      in
      let excess = ref (total - cap) in
      List.iter
        (fun (n, sz, _) ->
          if !excess > 0 then begin
            let stem = Filename.remove_extension (Filename.concat dir n) in
            (try Sys.remove (Filename.concat dir n) with Sys_error _ -> ());
            List.iter
              (fun ext ->
                let p = stem ^ ext in
                try if Sys.file_exists p then Sys.remove p
                with Sys_error _ -> ())
              [ ".ml"; ".c"; ".err" ];
            excess := !excess - sz;
            Mutex.lock mu;
            incr disk_eviction_count;
            Mutex.unlock mu;
            Obs.Metrics.incr (Lazy.force disk_eviction_counter)
          end)
        arts

(* Caller holds [mu]. *)
let memo_touch slot =
  incr clock;
  slot.last_used <- !clock

(* Caller holds [mu].  Evict least-recently-used entries down to the
   cap; the serve daemon compiles unboundedly many distinct blueprints
   over its lifetime and must not hold every closure forever. *)
let memo_insert key fn =
  incr clock;
  Hashtbl.replace memo key { sfn = fn; last_used = !clock };
  let cap = memo_cap () in
  while Hashtbl.length memo > cap do
    let victim =
      Hashtbl.fold
        (fun k s acc ->
          match acc with
          | Some (_, best) when best.last_used <= s.last_used -> acc
          | _ -> Some (k, s))
        memo None
    in
    match victim with
    | None -> assert false (* the table has more than [cap >= 1] entries *)
    | Some (k, _) ->
        Hashtbl.remove memo k;
        incr evictions;
        Obs.Metrics.incr (Lazy.force eviction_counter)
  done

(* ---- compilation -------------------------------------------------- *)

let first_lines ?(n = 4) s =
  let lines = String.split_on_char '\n' (String.trim s) in
  String.concat " | " (List.filteri (fun i _ -> i < n) lines)

(* Build (or fetch) the plugin for [key].  [source] is only forced on a
   memo miss, so the warm path is a hash lookup and nothing else. *)
let compile_keyed ?ocamlopt ~name ~key (source : unit -> (string, string) result)
    =
  if not Dynlink.is_native then
    Error "bytecode host: Dynlink cannot load native plugins"
  else
    let compiler =
      match ocamlopt with Some p -> Some p | None -> find_ocamlopt ()
    in
    match compiler with
    | None -> Error "ocamlopt not found on PATH (set BLOCKC_OCAMLOPT)"
    | Some compiler -> (
        let cmxs_path () =
          Filename.concat (cache_dir ()) ("bk_" ^ key ^ ".cmxs")
        in
        let rec claim waited =
          match Hashtbl.find_opt memo key with
          | Some slot ->
              memo_touch slot;
              incr memo_hit_count;
              Obs.Metrics.incr (Lazy.force memo_hit_counter);
              `Memo slot.sfn
          | None ->
              if Hashtbl.mem in_flight key then begin
                if not waited then begin
                  incr dedup_hits;
                  Obs.Metrics.incr (Lazy.force dedup_counter)
                end;
                Condition.wait built_cond mu;
                claim true
              end
              else begin
                Hashtbl.add in_flight key ();
                `Ours
              end
        in
        Mutex.lock mu;
        let claimed = claim false in
        Mutex.unlock mu;
        match claimed with
        | `Memo fn ->
            Ok
              {
                key;
                cmxs = cmxs_path ();
                cached = true;
                disposition = Memo;
                compile_s = 0.0;
                fn;
              }
        | `Ours -> (
            let release () =
              Mutex.lock mu;
              Hashtbl.remove in_flight key;
              Condition.broadcast built_cond;
              Mutex.unlock mu
            in
            let dir = cache_dir () in
            mkdirs dir;
            let base = "bk_" ^ key in
            let ml = Filename.concat dir (base ^ ".ml") in
            let cmxs = Filename.concat dir (base ^ ".cmxs") in
            let on_disk = Sys.file_exists cmxs in
            let t0 = Unix.gettimeofday () in
            let built =
              if on_disk then Ok ()
              else
                match source () with
                | Error _ as e -> e
                | Ok source ->
                    Obs.span ~cat:"jit" "jit.compile"
                      ~args:[ ("kernel", Obs.Str name); ("key", Obs.Str key) ]
                    @@ fun () ->
                    write_file ml source;
                    let tmp = Filename.concat dir (base ^ ".tmp.cmxs") in
                    let errf = Filename.concat dir (base ^ ".err") in
                    let cmd =
                      Printf.sprintf "%s -shared -w -a -o %s %s 2> %s"
                        (Filename.quote compiler) (Filename.quote tmp)
                        (Filename.quote ml) (Filename.quote errf)
                    in
                    Mutex.lock mu;
                    incr invocations;
                    Mutex.unlock mu;
                    let rc = Sys.command cmd in
                    if rc <> 0 then
                      Error
                        (Printf.sprintf "%s: ocamlopt failed (exit %d): %s" name
                           rc
                           (first_lines (read_file errf)))
                    else begin
                      (try Sys.rename tmp cmxs with Sys_error m -> failwith m);
                      prune_disk_cache ~keep:[ base ^ ".cmxs" ] ();
                      Ok ()
                    end
            in
            let compile_s = Unix.gettimeofday () -. t0 in
            match built with
            | Error _ as e ->
                release ();
                e
            | Ok () -> (
                match load ~name cmxs with
                | Error _ as e ->
                    release ();
                    e
                | Ok fn ->
                    Mutex.lock mu;
                    memo_insert key fn;
                    if on_disk then begin
                      incr disk_hit_count;
                      Obs.Metrics.incr (Lazy.force disk_hit_counter)
                    end;
                    Hashtbl.remove in_flight key;
                    Condition.broadcast built_cond;
                    Mutex.unlock mu;
                    Ok
                      {
                        key;
                        cmxs;
                        cached = on_disk;
                        disposition = (if on_disk then Disk else Compiled);
                        compile_s;
                        fn;
                      })))

let compile ?ocamlopt ~name source =
  let key =
    Digest.to_hex (Digest.string (Sys.ocaml_version ^ "\x00" ^ source))
  in
  compile_keyed ?ocamlopt ~name ~key (fun () -> Ok source)

(* The plugin's module name comes from its file name (the key), so the
   emitted text must not vary with the caller's diagnostic name — one
   blueprint, one source, one artifact. *)
let compile_blueprint ?ocamlopt ~name (bp : Blueprint.t) =
  let key =
    Digest.to_hex
      (Digest.string (Sys.ocaml_version ^ "\x00blueprint\x00" ^ bp.Blueprint.key))
  in
  let source () =
    emit ~unsafe:bp.Blueprint.unsafe ~shapes:bp.Blueprint.shapes
      ~name:("bp_" ^ String.sub bp.Blueprint.key 0 12)
      bp.Blueprint.block
  in
  Obs.span ~cat:"jit" "jit.compile_blueprint"
    ~args:[ ("kernel", Obs.Str name); ("blueprint", Obs.Str bp.Blueprint.key) ]
  @@ fun () -> compile_keyed ?ocamlopt ~name ~key source

(* ---- execution ---------------------------------------------------- *)

let flat_dims dims =
  Array.of_list (List.concat_map (fun (lo, hi) -> [ lo; hi ]) dims)

let run ?(bindings = []) fn env =
  Obs.span ~cat:"jit" "jit.run"
  @@ fun () ->
  let geti n =
    match List.assoc_opt n bindings with
    | Some v -> v
    | None -> if Env.has_iscalar env n then Env.iscalar env n else 0
  in
  let getf n = if Env.has_fscalar env n then Env.fscalar env n else 0.0 in
  let getfa = Env.farray_data env in
  let getia = Env.iarray_data env in
  let getfd n = flat_dims (Env.farray_dims env n) in
  let getid n = flat_dims (Env.iarray_dims env n) in
  let setf = Env.set_fscalar env in
  let seti = Env.set_iscalar env in
  match fn (geti, getf, getfa, getia, getfd, getid, setf, seti) with
  | () -> Ok ()
  | exception Env.Error m -> Error m
  | exception Failure m -> Error m
  | exception Division_by_zero -> Error "division by zero"
  | exception Invalid_argument m -> Error ("out of bounds: " ^ m)

let run_block ?unsafe ?shapes ~name blk env =
  let bp = Blueprint.of_block ?unsafe ?shapes blk in
  match compile_blueprint ~name bp with
  | Error m -> Error m
  | Ok { fn; _ } -> run ~bindings:bp.Blueprint.bindings fn env
