(* IR -> C99 lowering.  See emit_c.mli for the contract.

   The generated translation unit exposes one fixed-ABI entry point,
   [blockc_cc_kernel], that the {!Cc} driver calls through a dlopen
   stub.  The layout mirrors {!Emit}: flat column-major buffers bound
   once in a preamble, scalars as locals written back on exit, loops
   with the interpreter's once-evaluated bounds and trip count, and the
   same name mangling by prefix.  The analysis — which names exist,
   which accesses are provably in bounds, which parameters the proofs
   assumed positive — is Emit's own ([Emit.collect], [Emit.ple],
   [Emit.base_ctx]), so the two backends can never disagree about
   safety.

   Bitwise agreement with the interpreter and the OCaml plugin rests
   on: compiling with [-ffp-contract=off] (no FMA contraction), float
   constants as C99 hex literals (exact), [fcmp] reproducing OCaml's
   [Float.compare] total order, C99 [/] truncating like OCaml's [/],
   and IEEE [sqrt]/[fabs]/negation being exactly rounded in both
   worlds.  Runtime failures (zero step, negative SQRT, out-of-bounds
   checked access) longjmp back to the entry point, which returns
   nonzero with the message in the caller's buffer. *)

module SS = Emit.SS
module SM = Emit.SM

type shapes = Emit.shapes

(* The host-side marshaling contract: which Env names go into the
   fixed-ABI argument arrays, in which order.  Deterministic (sorted by
   name, ranks alongside) and derivable from the block alone, so a
   disk-cached object can be invoked without re-emitting. *)
type manifest = {
  m_farrays : (string * int) list;
  m_iarrays : (string * int) list;
  m_fscalars : string list;
  m_iscalars : string list;
  m_fsc_w : string list;
  m_isc_w : string list;
}

let manifest_of_decls (d : Emit.decls) =
  {
    m_farrays = SM.bindings d.Emit.farr;
    m_iarrays = SM.bindings d.Emit.iarr;
    m_fscalars = SS.elements d.Emit.fsc;
    m_iscalars = SS.elements d.Emit.isc;
    m_fsc_w = SS.elements d.Emit.fsc_w;
    m_isc_w = SS.elements d.Emit.isc_w;
  }

let manifest blk =
  let d = Emit.collect blk in
  match d.Emit.bad with
  | Some m -> Error m
  | None -> Ok (manifest_of_decls d)

let low = String.lowercase_ascii

(* Position of [name] in the sorted list, for indexing the argument
   arrays, plus its flat offset into the packed dims vector. *)
let slot names name =
  let rec go i = function
    | [] -> invalid_arg "Emit_c.slot"
    | (n, _) :: _ when String.equal n name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 names

let dim_offset names name =
  let rec go off = function
    | [] -> invalid_arg "Emit_c.dim_offset"
    | (n, _) :: _ when String.equal n name -> off
    | (_, rank) :: rest -> go (off + (2 * rank)) rest
  in
  go 0 names

let scalar_slot names name =
  let rec go i = function
    | [] -> invalid_arg "Emit_c.scalar_slot"
    | n :: _ when String.equal n name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 names

(* ---- rendering ---------------------------------------------------- *)

type st = {
  d : Emit.decls;
  shapes : shapes;
  unsafe : bool;
  tainted : SS.t;
  body : Buffer.t;
  mutable proved : SS.t;
  mutable assumed : SS.t;
}

let line st ind fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string st.body (String.make (2 * ind) ' ');
      Buffer.add_string st.body s;
      Buffer.add_char st.body '\n')
    fmt

(* C99 hexadecimal float literals are exact: no decimal round-trip to
   trust, no translation-time rounding mode to worry about. *)
let float_lit x =
  if Float.is_nan x then "nan(\"\")"
  else if x = Float.infinity then "INFINITY"
  else if x = Float.neg_infinity then "(-INFINITY)"
  else
    let s = Printf.sprintf "%h" x in
    if s.[0] = '-' then "(" ^ s ^ ")" else s

let flat_index pe ~ipfx name subs =
  let nm = low name in
  let terms =
    List.mapi
      (fun k sub ->
        if k = 0 then Printf.sprintf "(%s - %sl0_%s)" (pe sub) ipfx nm
        else
          Printf.sprintf "((%s - %sl%d_%s) * %st%d_%s)" (pe sub) ipfx k nm ipfx
            k nm)
      subs
  in
  match terms with [ t ] -> t | _ -> "(" ^ String.concat " + " terms ^ ")"

let in_bounds st ctx name subs =
  st.unsafe
  &&
  match ctx with
  | None -> false
  | Some ctx -> (
      match List.assoc_opt name st.shapes with
      | Some dims when List.length dims = List.length subs ->
          let ok =
            List.for_all2
              (fun (lo, hi) s -> Emit.ple ctx lo s && Emit.ple ctx s hi)
              dims subs
          in
          if ok then st.proved <- SS.add name st.proved;
          ok
      | _ -> false)

let rec pe st scope ctx (e : Expr.t) =
  match e with
  | Expr.Int n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | Expr.Var v -> if SS.mem v scope then "i_" ^ low v else "s_" ^ low v
  | Expr.Bin (op, a, b) ->
      let o =
        match op with
        | Expr.Add -> "+"
        | Expr.Sub -> "-"
        | Expr.Mul -> "*"
        | Expr.Div -> "/"
      in
      Printf.sprintf "(%s %s %s)" (pe st scope ctx a) o (pe st scope ctx b)
  | Expr.Min (a, b) ->
      Printf.sprintf "imin(%s, %s)" (pe st scope ctx a) (pe st scope ctx b)
  | Expr.Max (a, b) ->
      Printf.sprintf "imax(%s, %s)" (pe st scope ctx a) (pe st scope ctx b)
  | Expr.Idx (name, subs) ->
      let idx = flat_index (pe st scope ctx) ~ipfx:"i" name subs in
      if in_bounds st ctx name subs then
        Printf.sprintf "ia_%s[%s]" (low name) idx
      else
        Printf.sprintf "bk_geti(bk, ia_%s, %s, ilen_%s, %S)" (low name) idx
          (low name) name

let rec pf st scope ctx (fe : Stmt.fexpr) =
  match fe with
  | Stmt.Fconst x -> float_lit x
  | Stmt.Fvar v -> "f_" ^ low v
  | Stmt.Ref (name, subs) ->
      let idx = flat_index (pe st scope ctx) ~ipfx:"" name subs in
      if in_bounds st ctx name subs then
        Printf.sprintf "a_%s[%s]" (low name) idx
      else
        Printf.sprintf "bk_getf(bk, a_%s, %s, len_%s, %S)" (low name) idx
          (low name) name
  | Stmt.Fbin (op, a, b) ->
      let o =
        match op with
        | Stmt.FAdd -> "+"
        | Stmt.FSub -> "-"
        | Stmt.FMul -> "*"
        | Stmt.FDiv -> "/"
      in
      Printf.sprintf "(%s %s %s)" (pf st scope ctx a) o (pf st scope ctx b)
  | Stmt.Fneg a -> Printf.sprintf "(- %s)" (pf st scope ctx a)
  | Stmt.Fcall (("SQRT" | "DSQRT"), [ x ]) ->
      Printf.sprintf "bk_sqrt(bk, %s)" (pf st scope ctx x)
  | Stmt.Fcall (("ABS" | "DABS"), [ x ]) ->
      Printf.sprintf "fabs(%s)" (pf st scope ctx x)
  | Stmt.Fcall (("SIGN" | "DSIGN"), [ a; b ]) ->
      Printf.sprintf "fsign(%s, %s)" (pf st scope ctx a) (pf st scope ctx b)
  | Stmt.Fcall _ -> "0.0" (* rejected during collection *)
  | Stmt.Of_int e -> Printf.sprintf "((double) %s)" (pe st scope ctx e)

let rel_op (r : Stmt.rel) =
  match r with
  | Stmt.Eq -> "=="
  | Stmt.Ne -> "!="
  | Stmt.Lt -> "<"
  | Stmt.Le -> "<="
  | Stmt.Gt -> ">"
  | Stmt.Ge -> ">="

let rec pc st scope ctx (c : Stmt.cond) =
  match c with
  | Stmt.Fcmp (r, a, b) ->
      (* fcmp reproduces OCaml's Float.compare: total order, NaN = NaN. *)
      Printf.sprintf "(fcmp(%s, %s) %s 0)" (pf st scope ctx a)
        (pf st scope ctx b) (rel_op r)
  | Stmt.Icmp (r, a, b) ->
      Printf.sprintf "(%s %s %s)" (pe st scope ctx a) (rel_op r)
        (pe st scope ctx b)
  | Stmt.Not a -> Printf.sprintf "(!%s)" (pc st scope ctx a)
  | Stmt.And (a, b) ->
      Printf.sprintf "(%s && %s)" (pc st scope ctx a) (pc st scope ctx b)
  | Stmt.Or (a, b) ->
      Printf.sprintf "(%s || %s)" (pc st scope ctx a) (pc st scope ctx b)

let rec stmt st scope ctx ind (s : Stmt.t) =
  match s with
  | Stmt.Assign (name, [], rhs) ->
      line st ind "f_%s = %s;" (low name) (pf st scope ctx rhs)
  | Stmt.Assign (name, subs, rhs) ->
      let rhs = pf st scope ctx rhs in
      let idx = flat_index (pe st scope ctx) ~ipfx:"" name subs in
      if in_bounds st ctx name subs then
        line st ind "a_%s[%s] = %s;" (low name) idx rhs
      else
        line st ind "bk_setf(bk, a_%s, %s, len_%s, %S, %s);" (low name) idx
          (low name) name rhs
  | Stmt.Iassign (name, [], rhs) ->
      line st ind "s_%s = %s;" (low name) (pe st scope ctx rhs)
  | Stmt.Iassign (name, subs, rhs) ->
      let rhs = pe st scope ctx rhs in
      let idx = flat_index (pe st scope ctx) ~ipfx:"i" name subs in
      if in_bounds st ctx name subs then
        line st ind "ia_%s[%s] = %s;" (low name) idx rhs
      else
        line st ind "bk_seti(bk, ia_%s, %s, ilen_%s, %S, %s);" (low name) idx
          (low name) name rhs
  | Stmt.If (c, t, e) ->
      line st ind "if %s {" (pc st scope ctx c);
      block st scope ctx (ind + 1) t;
      if e = [] then line st ind "}"
      else begin
        line st ind "} else {";
        block st scope ctx (ind + 1) e;
        line st ind "}"
      end
  | Stmt.Loop l ->
      let ix = low l.index in
      let inner_scope = SS.add l.index scope in
      (* A re-bound index invalidates the outer facts about its name; no
         way to retract them, so stop proving inside. *)
      let ctx' =
        if SS.mem l.index scope then None
        else Option.map (fun c -> Emit.enter_loop ~tainted:st.tainted c l) ctx
      in
      line st ind "{";
      let ind' = ind + 1 in
      line st ind' "const long lo_%s = %s;" ix (pe st scope ctx l.lo);
      line st ind' "const long hi_%s = %s;" ix (pe st scope ctx l.hi);
      (match l.step with
      | Expr.Int 1 ->
          line st ind' "for (long i_%s = lo_%s; i_%s <= hi_%s; i_%s++) {" ix
            ix ix ix ix;
          block st inner_scope ctx' (ind' + 1) l.body;
          line st ind' "}"
      | step ->
          line st ind' "const long st_%s = %s;" ix (pe st scope ctx step);
          line st ind' "if (st_%s == 0) bk_fail(bk, \"DO %s: zero step\");" ix
            l.index;
          line st ind' "const long n_%s = (hi_%s - lo_%s + st_%s) / st_%s;" ix
            ix ix ix ix;
          line st ind' "long r_%s = lo_%s;" ix ix;
          line st ind' "for (long z_%s = 0; z_%s < n_%s; z_%s++) {" ix ix ix ix;
          line st (ind' + 1) "const long i_%s = r_%s;" ix ix;
          block st inner_scope ctx' (ind' + 1) l.body;
          line st (ind' + 1) "r_%s = i_%s + st_%s;" ix ix ix;
          line st ind' "}");
      line st ind "}"

and block st scope ctx ind = function
  | [] -> line st ind ";"
  | stmts -> List.iter (stmt st scope ctx ind) stmts

(* ---- assembly ----------------------------------------------------- *)

let header name =
  Printf.sprintf
    "/* %s — C99 lowered from the mini-Fortran IR by blockc's codegen.\n\
    \   Self-contained (libc only).  The host calls [blockc_cc_kernel]\n\
    \   through the Cc dlopen stub; buffers are the Env's flat\n\
    \   column-major arrays, passed in manifest (sorted-name) order. */\n"
    name

let helpers =
  "#include <math.h>\n\
   #include <setjmp.h>\n\
   #include <stdio.h>\n\n\
   static long imin(long a, long b) { return a <= b ? a : b; }\n\
   static long imax(long a, long b) { return a >= b ? a : b; }\n\n\
   /* OCaml Float.compare: total order, NaN equal to itself and below\n\
  \   every other value. */\n\
   static int fcmp(double a, double b) {\n\
  \  if (a < b) return -1;\n\
  \  if (a > b) return 1;\n\
  \  if (a == b) return 0;\n\
  \  if (isnan(a)) return isnan(b) ? 0 : -1;\n\
  \  return 1;\n\
   }\n\n\
   static double fsign(double a, double b) {\n\
  \  return b >= 0.0 ? fabs(a) : -fabs(a);\n\
   }\n\n\
   /* Runtime failures unwind to the entry point, which returns nonzero\n\
  \   with the message in the caller's 256-byte buffer. */\n\
   typedef struct { jmp_buf jb; char *err; } bk_ctx;\n\n\
   static void bk_fail(bk_ctx *bk, const char *msg) {\n\
  \  snprintf(bk->err, 256, \"%s\", msg);\n\
  \  longjmp(bk->jb, 1);\n\
   }\n\n\
   static double bk_sqrt(bk_ctx *bk, double x) {\n\
  \  if (x < 0.0) {\n\
  \    snprintf(bk->err, 256, \"SQRT of negative %g\", x);\n\
  \    longjmp(bk->jb, 1);\n\
  \  }\n\
  \  return sqrt(x);\n\
   }\n\n\
   static void bk_oob(bk_ctx *bk, const char *name) {\n\
  \  snprintf(bk->err, 256, \"out of bounds: %s\", name);\n\
  \  longjmp(bk->jb, 1);\n\
   }\n\n\
   static double bk_getf(bk_ctx *bk, const double *a, long off, long n,\n\
  \                      const char *name) {\n\
  \  if (off < 0 || off >= n) bk_oob(bk, name);\n\
  \  return a[off];\n\
   }\n\n\
   static void bk_setf(bk_ctx *bk, double *a, long off, long n,\n\
  \                    const char *name, double v) {\n\
  \  if (off < 0 || off >= n) bk_oob(bk, name);\n\
  \  a[off] = v;\n\
   }\n\n\
   static long bk_geti(bk_ctx *bk, const long *a, long off, long n,\n\
  \                    const char *name) {\n\
  \  if (off < 0 || off >= n) bk_oob(bk, name);\n\
  \  return a[off];\n\
   }\n\n\
   static void bk_seti(bk_ctx *bk, long *a, long off, long n,\n\
  \                    const char *name, long v) {\n\
  \  if (off < 0 || off >= n) bk_oob(bk, name);\n\
  \  a[off] = v;\n\
   }\n"

let source ?(unsafe = true) ?(shapes = []) ~name blk =
  let d = Emit.collect blk in
  match d.Emit.bad with
  | Some m -> Error (Printf.sprintf "cannot compile %s: %s" name m)
  | None ->
      let st =
        {
          d;
          shapes;
          unsafe;
          tainted = d.Emit.isc_w;
          body = Buffer.create 4096;
          proved = SS.empty;
          assumed = SS.empty;
        }
      in
      let ctx, assumed = Emit.base_ctx ~tainted:st.tainted ~shapes blk in
      st.assumed <- assumed;
      block st SS.empty (Some ctx) 1 blk;
      let mf = manifest_of_decls d in
      let b = Buffer.create 8192 in
      let out fmt = Printf.ksprintf (fun s -> Buffer.add_string b s) fmt in
      out "%s\n" (header name);
      out "%s\n" helpers;
      out
        "int blockc_cc_kernel(double **fa, const long *fdim, long **ia,\n\
        \                     const long *idim, double *fsc, long *isc,\n\
        \                     char *err) {\n";
      out "  bk_ctx ctx0;\n";
      out "  bk_ctx *const bk = &ctx0;\n";
      out "  bk->err = err;\n";
      out "  if (setjmp(bk->jb)) return 1;\n";
      out "  (void) fa; (void) fdim; (void) ia; (void) idim;\n";
      out "  (void) fsc; (void) isc; (void) bk;\n";
      (* Arrays: buffer, dims window, per-dimension lows and strides,
         and the flat length for checked accesses. *)
      let emit_arr ~ipfx ~data ~dims names name rank =
        let nm = low name in
        let apfx = if ipfx = "i" then "ia_" else "a_" in
        out "  %s *const %s%s = %s[%d]; /* %s */\n"
          (if ipfx = "i" then "long" else "double")
          apfx nm data (slot names name) name;
        out "  const long *const %sd_%s = %s + %d;\n" ipfx nm dims
          (dim_offset names name);
        out "  const long %sl0_%s = %sd_%s[0];\n" ipfx nm ipfx nm;
        for k = 1 to rank - 1 do
          out "  const long %sl%d_%s = %sd_%s[%d];\n" ipfx k nm ipfx nm (2 * k);
          let prev =
            if k = 1 then "1" else Printf.sprintf "%st%d_%s" ipfx (k - 1) nm
          in
          out "  const long %st%d_%s = %s * (%sd_%s[%d] - %sd_%s[%d] + 1);\n"
            ipfx k nm prev ipfx nm ((2 * (k - 1)) + 1) ipfx nm (2 * (k - 1))
        done;
        let last =
          if rank = 1 then "1"
          else Printf.sprintf "%st%d_%s" ipfx (rank - 1) nm
        in
        out "  const long %slen_%s = %s * (%sd_%s[%d] - %sd_%s[%d] + 1);\n"
          ipfx nm last ipfx nm ((2 * (rank - 1)) + 1) ipfx nm (2 * (rank - 1));
        out "  (void) %s%s; (void) %slen_%s;\n" apfx nm ipfx nm
      in
      List.iter
        (fun (name, rank) ->
          emit_arr ~ipfx:"" ~data:"fa" ~dims:"fdim" mf.m_farrays name rank)
        mf.m_farrays;
      List.iter
        (fun (name, rank) ->
          emit_arr ~ipfx:"i" ~data:"ia" ~dims:"idim" mf.m_iarrays name rank)
        mf.m_iarrays;
      (* Scalars: locals initialized from the packed vectors (the host
         fills unset ones with 0 / 0.0), written back below. *)
      List.iter
        (fun v ->
          out "  long s_%s = isc[%d]; (void) s_%s;\n" (low v)
            (scalar_slot mf.m_iscalars v) (low v))
        mf.m_iscalars;
      List.iter
        (fun v ->
          out "  double f_%s = fsc[%d]; (void) f_%s;\n" (low v)
            (scalar_slot mf.m_fscalars v) (low v))
        mf.m_fscalars;
      (* Everything the in-bounds proofs assumed, re-checked: declared
         shapes match the actual dims, assumed parameters are >= 1. *)
      if not (SS.is_empty st.proved) then begin
        SS.iter
          (fun v ->
            out
              "  if (s_%s < 1) {\n\
              \    snprintf(err, 256, \"%s: unchecked accesses assume %s >= \
               1\");\n\
              \    return 1;\n\
              \  }\n"
              (low v) name v)
          st.assumed;
        List.iter
          (fun (arr, dims) ->
            match SM.find_opt arr d.Emit.farr with
            | None -> ()
            | Some rank when rank <> List.length dims -> ()
            | Some _ ->
                let checks =
                  List.concat
                    (List.mapi
                       (fun k (lo, hi) ->
                         let p = pe st SS.empty None in
                         [
                           Printf.sprintf "d_%s[%d] == %s" (low arr) (2 * k)
                             (p lo);
                           Printf.sprintf "d_%s[%d] == %s" (low arr)
                             ((2 * k) + 1) (p hi);
                         ])
                       dims)
                in
                out
                  "  if (!(%s)) {\n\
                  \    snprintf(err, 256, \"%s: %s dims differ from the \
                   declared shape\");\n\
                  \    return 1;\n\
                  \  }\n"
                  (String.concat " && " checks) name arr)
          st.shapes
      end;
      Buffer.add_buffer b st.body;
      (* Write scalars back so the host environment sees the kernel's
         scalar results (loop indices stay internal, as in Fortran). *)
      List.iter
        (fun v ->
          out "  isc[%d] = s_%s; /* %s */\n" (scalar_slot mf.m_iscalars v)
            (low v) v)
        mf.m_isc_w;
      List.iter
        (fun v ->
          out "  fsc[%d] = f_%s; /* %s */\n" (scalar_slot mf.m_fscalars v)
            (low v) v)
        mf.m_fsc_w;
      out "  return 0;\n";
      out "}\n";
      Ok (Buffer.contents b)
