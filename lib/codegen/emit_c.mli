(** Lowering mini-Fortran IR to self-contained C99.

    The C twin of {!Emit}: the same flat column-major buffers, the same
    Env-binding preamble, the same once-evaluated DO bounds and trip
    count, the same zero-step and negative-SQRT guards — and the same
    {!Symbolic} in-bounds proofs (shared through {!Emit.base_ctx} /
    {!Emit.ple}), under which proven accesses compile to raw pointer
    arithmetic instead of the checked accessors.  The emitted unit
    re-checks at run time everything the proofs assumed: declared
    shapes match the actual dims, assumed parameters are positive.

    The generated translation unit depends only on libc and exports a
    single fixed-ABI entry point,

    {v
    int blockc_cc_kernel(double **fa, const long *fdim, long **ia,
                         const long *idim, double *fsc, long *isc,
                         char *err);
    v}

    returning 0 on success, nonzero with a message in [err] (256 bytes)
    on a runtime failure.  Buffers arrive in {!manifest} order: REAL
    arrays in [fa] with their per-dimension inclusive [(lo, hi)] pairs
    packed in [fdim], INTEGER arrays likewise in [ia]/[idim], and
    scalars packed by sorted name in [fsc]/[isc] (written scalars are
    stored back before returning).  {!Cc} drives compilation and
    marshals an {!Env.t} to this ABI.

    Bitwise agreement with the interpreter and the OCaml backend rests
    on compiling with [-ffp-contract=off], emitting float constants as
    exact C99 hex literals, reproducing [Float.compare]'s total order
    for comparisons, and C99's truncating integer division matching
    OCaml's. *)

type shapes = Emit.shapes

type manifest = {
  m_farrays : (string * int) list;  (** REAL arrays (name, rank), sorted *)
  m_iarrays : (string * int) list;  (** INTEGER arrays, sorted *)
  m_fscalars : string list;  (** REAL scalars, sorted *)
  m_iscalars : string list;  (** INTEGER scalars, sorted *)
  m_fsc_w : string list;  (** REAL scalars the kernel writes *)
  m_isc_w : string list;  (** INTEGER scalars the kernel writes *)
}
(** The host-side marshaling contract.  Deterministic and derivable
    from the block alone ({!manifest}), so a disk-cached object can be
    invoked without re-emitting its source. *)

val manifest : Stmt.t list -> (manifest, string) result
(** [Error] reports the same unsupported constructs {!source} would. *)

val source :
  ?unsafe:bool ->
  ?shapes:shapes ->
  name:string ->
  Stmt.t list ->
  (string, string) result
(** [source ~name block] renders the block as a C99 translation unit.
    [unsafe] (default [true]) enables proven-in-bounds raw accesses;
    with [false] every access goes through the bounds-checked
    accessors. *)
