/* Loading and invoking C-backend kernel objects.
 *
 * The generated translation unit (Emit_c) exports one fixed-ABI entry
 * point; blockc_cc_load dlopens the shared object once per process and
 * hands the function pointer back as a nativeint, and blockc_cc_run
 * marshals the packed argument tuple onto that ABI.
 *
 * Safety argument for the raw pointers (see DESIGN.md): REAL arrays
 * and scalars are passed as direct pointers into the OCaml heap (flat
 * float arrays are unboxed doubles), valid because (a) the argument
 * tuple is rooted for the duration of the call and (b) the runtime
 * lock is NOT released around the kernel, so no GC can run or move the
 * buffers while C holds the pointers.  Other domains that need a
 * stop-the-world collection stall until the kernel returns — kernels
 * are short-lived by construction.  INTEGER arrays and scalars are
 * tagged in the OCaml heap, so they are copied into malloc'd long
 * buffers on the way in and copied back on the way out.
 */

#include <string.h>
#include <dlfcn.h>

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>

#define BK_MAX_ARRAYS 256

typedef int (*bk_kernel)(double **, const long *, long **, const long *,
                         double *, long *, char *);

CAMLprim value blockc_cc_load(value vpath)
{
  CAMLparam1(vpath);
  void *handle;
  void *fn;

  /* Never dlclosed: the content-addressed cache means one object per
     blueprint per compiler, and function pointers must stay valid for
     the life of the process (they are memoized on the OCaml side). */
  handle = dlopen(String_val(vpath), RTLD_NOW | RTLD_LOCAL);
  if (handle == NULL)
    caml_failwith(dlerror());
  fn = dlsym(handle, "blockc_cc_kernel");
  if (fn == NULL)
    caml_failwith("blockc_cc_kernel: symbol not found in kernel object");
  CAMLreturn(caml_copy_nativeint((intnat) fn));
}

/* vargs = (fa, fdim, ia, idim, fsc, isc):
 *   fa   : float array array   REAL arrays, manifest order
 *   fdim : int array           packed per-dimension (lo, hi) pairs
 *   ia   : int array array     INTEGER arrays, manifest order
 *   idim : int array           their packed (lo, hi) pairs
 *   fsc  : float array         REAL scalars (written back in place)
 *   isc  : int array           INTEGER scalars (written back by us)
 * Returns "" on success, the kernel's error message otherwise.
 */
CAMLprim value blockc_cc_run(value vfn, value vargs)
{
  CAMLparam2(vfn, vargs);
  CAMLlocal1(vres);
  value vfa = Field(vargs, 0);
  value vfdim = Field(vargs, 1);
  value via = Field(vargs, 2);
  value vidim = Field(vargs, 3);
  value vfsc = Field(vargs, 4);
  value visc = Field(vargs, 5);

  bk_kernel fn = (bk_kernel) Nativeint_val(vfn);
  mlsize_t n_fa = Wosize_val(vfa);
  mlsize_t n_ia = Wosize_val(via);
  mlsize_t n_fdim = Wosize_val(vfdim);
  mlsize_t n_idim = Wosize_val(vidim);
  mlsize_t n_isc = Wosize_val(visc);
  double *fa[BK_MAX_ARRAYS];
  long *ia[BK_MAX_ARRAYS];
  mlsize_t ia_len[BK_MAX_ARRAYS];
  mlsize_t total, i, j;
  long *buf, *p, *fdim, *idim, *isc;
  char err[256];
  int rc;

  if (n_fa > BK_MAX_ARRAYS || n_ia > BK_MAX_ARRAYS)
    caml_failwith("cc kernel: too many arrays");

  total = n_fdim + n_idim + n_isc;
  for (i = 0; i < n_ia; i++) {
    ia_len[i] = Wosize_val(Field(via, i));
    total += ia_len[i];
  }
  buf = caml_stat_alloc((total ? total : 1) * sizeof(long));
  p = buf;
  fdim = p;
  for (i = 0; i < n_fdim; i++)
    fdim[i] = Long_val(Field(vfdim, i));
  p += n_fdim;
  idim = p;
  for (i = 0; i < n_idim; i++)
    idim[i] = Long_val(Field(vidim, i));
  p += n_idim;
  isc = p;
  for (i = 0; i < n_isc; i++)
    isc[i] = Long_val(Field(visc, i));
  p += n_isc;
  for (i = 0; i < n_ia; i++) {
    value arr = Field(via, i);
    ia[i] = p;
    for (j = 0; j < ia_len[i]; j++)
      p[j] = Long_val(Field(arr, j));
    p += ia_len[i];
  }
  /* Direct heap pointers; no OCaml allocation from here to copy-back. */
  for (i = 0; i < n_fa; i++)
    fa[i] = (double *) Field(vfa, i);

  err[0] = '\0';
  rc = fn(fa, fdim, ia, idim, (double *) vfsc, isc, err);
  err[255] = '\0';

  /* Copy INTEGER state back even on failure: the REAL buffers were
     mutated in place up to the failing statement, so mirroring the
     integer side keeps both backends' partial-failure states aligned. */
  for (i = 0; i < n_isc; i++)
    Field(visc, i) = Val_long(isc[i]);
  for (i = 0; i < n_ia; i++) {
    value arr = Field(via, i);
    long *src = ia[i];
    for (j = 0; j < ia_len[i]; j++)
      Field(arr, j) = Val_long(src[j]);
  }
  caml_stat_free(buf);

  if (rc == 0)
    vres = caml_copy_string("");
  else
    vres = caml_copy_string(err[0] ? err : "kernel failed");
  CAMLreturn(vres);
}
