(** Lowering mini-Fortran IR to self-contained OCaml source.

    The emitted module depends only on [Stdlib]: arrays are the flat
    column-major buffers the interpreter's {!Env} already uses, scalars
    become [ref]s initialized from the host environment and written back
    on exit, and DO loops reproduce the interpreter's trip-count
    semantics exactly (bounds and step evaluated once on entry,
    [trips = max 0 ((hi - lo + step) / step)], zero step is an error).
    Float comparisons compile to [Float.compare] and intrinsics to the
    interpreter's definitions, so a compiled kernel produces bitwise the
    same REAL results as {!Exec.run} on the same environment.

    When [shapes] declares an array's per-dimension bounds as integer
    expressions over the kernel's parameters, every subscript the
    {!Symbolic} prover can show in bounds compiles to
    [Array.unsafe_get]/[unsafe_set] on the flat offset.  The emitted
    module re-checks at run time everything those proofs assumed: that
    the declared shapes match the actual dims, and that the symbolic
    parameters used by the proofs are positive.  Unproven subscripts
    fall back to bounds-checked flat accesses, which cannot corrupt
    memory (though the runtime error message is the flat OCaml one, not
    the interpreter's per-dimension report).

    The module communicates its entry point by raising
    [Blockc_kernel run] at initialization time; {!Jit} catches the
    exception during [Dynlink] loading and extracts the closure, so no
    interface files are shared between host and plugin. *)

type shapes = (string * (Expr.t * Expr.t) list) list
(** Per-array inclusive [(lo, hi)] bounds for each dimension, as integer
    expressions over the kernel's symbolic parameters. *)

val source :
  ?unsafe:bool ->
  ?shapes:shapes ->
  name:string ->
  Stmt.t list ->
  (string, string) result
(** [source ~name block] renders the block as an OCaml compilation unit.
    [unsafe] (default [true]) enables proven-in-bounds unchecked
    accesses; with [false] every access is bounds-checked.  [Error]
    reports constructs the emitter does not support (unknown intrinsics,
    assignment to an enclosing loop index). *)

(** {1 Shared backend analysis}

    The pieces of the lowering that are target-independent — name
    collection and the {!Symbolic} in-bounds proof plumbing — exposed so
    alternative backends ({!Emit_c}) emit from the same facts and can
    never disagree with the OCaml emitter about which accesses are
    provably safe. *)

module SS : Set.S with type elt = string
module SM : Map.S with type key = string

(** Every name the block mentions, classified.  [bad] is the first
    unsupported construct found, if any; a backend must refuse to emit
    when it is set. *)
type decls = {
  mutable farr : int SM.t;  (** REAL arrays -> rank *)
  mutable iarr : int SM.t;  (** INTEGER arrays -> rank *)
  mutable fsc : SS.t;  (** REAL scalars (read or written) *)
  mutable fsc_w : SS.t;  (** ... assigned somewhere in the block *)
  mutable isc : SS.t;  (** INTEGER scalars *)
  mutable isc_w : SS.t;
  mutable bad : string option;  (** first unsupported construct *)
}

val collect : Stmt.t list -> decls
(** One pass over the block: arrays with their ranks, scalars split by
    type and writtenness, plus the supportability verdict (unknown
    intrinsics, assignment to a loop index). *)

val ple : Symbolic.t -> Expr.t -> Expr.t -> bool
(** [a <= b] at the [Expr] level, decomposing MIN/MAX into the affine
    queries {!Symbolic} can answer.  Sound, not complete. *)

val enter_loop : tainted:SS.t -> Symbolic.t -> Stmt.loop -> Symbolic.t
(** Facts available inside a loop body: for a provably positive step,
    [lo <= index <= hi].  Facts mentioning a name in [tainted] (an
    INTEGER scalar the block assigns) are never admitted. *)

val base_ctx :
  tainted:SS.t -> shapes:shapes -> Stmt.t list -> Symbolic.t * SS.t
(** The starting proof context shared by every backend: unassigned
    symbolic parameters assumed positive and declared shapes assumed
    nonempty — everything the emitted preamble re-checks at run time.
    Also returns the assumed parameter set, for those re-checks. *)
