(** Separating loop structure from problem size for the JIT.

    A blueprint is the part of a kernel the code generator actually
    cares about: the loop nest, the access patterns, the declared
    shapes — with every problem-size constant (a literal loop bound, a
    literal shape extent, a literal guard threshold) hoisted out into a
    named parameter bound at call time.  Two programs that differ only
    in those constants normalize to the same blueprint and therefore
    share one compiled plugin: [compile (lu, 256)] and
    [compile (lu, 512)] are one [ocamlopt] invocation plus a hash
    lookup (see {!Jit.compile_blueprint}).

    Hoisting is by value numbering: equal constants share one
    parameter, so a loop bound that equals a declared shape extent
    still equals it after normalization and the {!Emit} in-bounds
    proofs are unaffected.  Constants below a small threshold stay
    literal — they are structure (unroll offsets, +-1 adjustments,
    steps), not size, and distinguish e.g. unroll-by-2 from
    unroll-by-4 in the key.  Kernels whose IR is already symbolic in
    [N] normalize to themselves with an empty binding list.

    The normalized block specialized by [bindings] is semantically
    identical to the input block (the fuzzer cross-checks this:
    interpreting both from the same environment must agree bitwise). *)

type t = {
  key : string;
      (** canonical digest of the normalized structure, the declared
          shapes and the unsafe flag — the JIT cache key component *)
  block : Stmt.t list;  (** the normalized block, to be emitted *)
  shapes : Emit.shapes;  (** normalized shapes, sorted by array name *)
  unsafe : bool;  (** whether emission may use proven unchecked accesses *)
  bindings : (string * int) list;
      (** hoisted parameter values, in first-occurrence order; supplied
          to the compiled kernel at call time ({!Jit.run}'s [bindings]) *)
}

val of_block : ?unsafe:bool -> ?shapes:Emit.shapes -> Stmt.t list -> t
(** Normalize a block (default [unsafe:true], matching {!Emit.source}).
    Pure and deterministic: the same block and shapes always produce
    the same key. *)

val specialize : t -> Stmt.t list
(** Substitute the bindings back into the normalized block — the
    inverse of hoisting, used by audits and the fuzzer's soundness
    check. *)

val describe : t -> string
(** One-line human rendering: key plus the hoisted bindings. *)
