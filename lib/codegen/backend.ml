(* Backend-polymorphic native compilation: one signature over the
   ocamlopt/Dynlink pipeline (Jit) and the cc/dlopen pipeline (Cc), so
   drivers — native_compare, the fuzzer, serve, the CLI — select a
   substrate by tag and are otherwise identical. *)

type compiled = {
  bk_tag : string;
  bk_key : string;
  bk_artifact : string;
  bk_cached : bool;
  bk_disposition : Jit.disposition;
  bk_compile_s : float;
  bk_remarks : string list;
  bk_run : ?bindings:(string * int) list -> Env.t -> (unit, string) result;
}

module type S = sig
  val tag : string
  val available : unit -> (unit, string) result

  val compile_blueprint :
    name:string -> Blueprint.t -> (compiled, string) result
end

module Ocaml : S = struct
  let tag = "ocaml"
  let available = Jit.available

  let compile_blueprint ~name bp =
    match Jit.compile_blueprint ~name bp with
    | Error _ as e -> e
    | Ok (l : Jit.loaded) ->
        Ok
          {
            bk_tag = tag;
            bk_key = l.Jit.key;
            bk_artifact = l.Jit.cmxs;
            bk_cached = l.Jit.cached;
            bk_disposition = l.Jit.disposition;
            bk_compile_s = l.Jit.compile_s;
            bk_remarks = [];
            bk_run = (fun ?bindings env -> Jit.run ?bindings l.Jit.fn env);
          }
end

module C : S = struct
  let tag = "c"
  let available = Cc.available

  let compile_blueprint ~name bp =
    match Cc.compile_blueprint ~name bp with
    | Error _ as e -> e
    | Ok (l : Cc.loaded) ->
        Ok
          {
            bk_tag = tag;
            bk_key = l.Cc.key;
            bk_artifact = l.Cc.so;
            bk_cached = l.Cc.cached;
            bk_disposition = l.Cc.disposition;
            bk_compile_s = l.Cc.compile_s;
            bk_remarks = l.Cc.vec_remarks;
            bk_run = (fun ?bindings env -> Cc.run ?bindings l.Cc.fn env);
          }
end

let all = [ (module Ocaml : S); (module C : S) ]
let names = List.map (fun (module B : S) -> B.tag) all

let of_tag tag =
  List.find_opt (fun (module B : S) -> String.equal B.tag tag) all
