open Stmt

let i n = Expr.Int n
let v name = Expr.Var name
let ( +! ) = Expr.add
let ( -! ) = Expr.sub
let ( *! ) = Expr.mul
let fv name = Fvar name
let fc x = Fconst x
let a1 name sub = Ref (name, [ sub ])
let a2 name s1 s2 = Ref (name, [ s1; s2 ])
let ( +. ) a b = Fbin (FAdd, a, b)
let ( -. ) a b = Fbin (FSub, a, b)
let ( *. ) a b = Fbin (FMul, a, b)
let ( /. ) a b = Fbin (FDiv, a, b)
let sqrt_ a = Fcall ("SQRT", [ a ])
let set1 name sub rhs = Assign (name, [ sub ], rhs)
let set2 name s1 s2 rhs = Assign (name, [ s1; s2 ], rhs)
let setf name rhs = Assign (name, [], rhs)
let seti name rhs = Iassign (name, [], rhs)
let do_ ?step index lo hi body = loop ?step index lo hi body
let if_ c t = If (c, t, [])
let if_else c t e = If (c, t, e)
let feq a b = Fcmp (Eq, a, b)
let fne a b = Fcmp (Ne, a, b)
let fge a b = Fcmp (Ge, a, b)
