(** Concise construction of IR fragments.

    Kernels in {!module:Kernels} are written with these combinators so
    they read close to the paper's Fortran listings. *)

open Stmt

val i : int -> Expr.t
val v : string -> Expr.t

val ( +! ) : Expr.t -> Expr.t -> Expr.t
val ( -! ) : Expr.t -> Expr.t -> Expr.t
val ( *! ) : Expr.t -> Expr.t -> Expr.t

val fv : string -> fexpr
(** REAL scalar. *)

val fc : float -> fexpr

val a1 : string -> Expr.t -> fexpr
(** 1-D REAL array reference. *)

val a2 : string -> Expr.t -> Expr.t -> fexpr
(** 2-D REAL array reference. *)

val ( +. ) : fexpr -> fexpr -> fexpr
val ( -. ) : fexpr -> fexpr -> fexpr
val ( *. ) : fexpr -> fexpr -> fexpr
val ( /. ) : fexpr -> fexpr -> fexpr

val sqrt_ : fexpr -> fexpr

val set1 : string -> Expr.t -> fexpr -> t
(** [set1 a i rhs] is [a(i) = rhs]. *)

val set2 : string -> Expr.t -> Expr.t -> fexpr -> t
(** [set2 a i j rhs] is [a(i,j) = rhs]. *)

val setf : string -> fexpr -> t
(** REAL scalar assignment. *)

val seti : string -> Expr.t -> t
(** INTEGER scalar assignment. *)

val do_ : ?step:Expr.t -> string -> Expr.t -> Expr.t -> t list -> t
val if_ : cond -> t list -> t
val if_else : cond -> t list -> t list -> t

val feq : fexpr -> fexpr -> cond
val fne : fexpr -> fexpr -> cond
val fge : fexpr -> fexpr -> cond
