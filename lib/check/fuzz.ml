(* Differential fuzzing harness: see fuzz.mli for the contract. *)

type variant = {
  v_detail : string;
  v_block : Stmt.t list;
  v_extra_f : (string * (int * int) list) list;
  v_extra_i : (string * (int * int) list) list;
}

type pass_stat = {
  ps_name : string;
  ps_applied : int;
  ps_rejected : int;
  ps_diverged : int;
}

type summary = {
  iters : int;
  seed : int;
  programs : int;
  depth_counts : int array;
  rect : int;
  triangular : int;
  trapezoidal : int;
  guarded : int;
  oracle_checked : int;
  oracle_violations : int;
  reparsed : int;
  native_checked : int;
  native_c_checked : int;
  native_divergences : int;
  native_blueprints : int;
  native_blueprint_reuses : int;
  passes : pass_stat list;
  failures : string list;
}

(* ---- mutable run statistics --------------------------------------- *)

type pstat = {
  mutable applied : int;
  mutable rejected : int;
  mutable diverged : int;
}

type stats = {
  mutable st_programs : int;
  st_depth : int array;
  mutable st_rect : int;
  mutable st_tri : int;
  mutable st_trap : int;
  mutable st_guarded : int;
  mutable st_oracle : int;
  mutable st_oracle_bad : int;
  mutable st_reparsed : int;
  mutable st_native : int;
  mutable st_native_c : int;
  mutable st_native_bad : int;
  st_bp_keys : (string, unit) Hashtbl.t;
  mutable st_bp_reuse : int;
  st_passes : (string, pstat) Hashtbl.t;
}

let fresh_stats () =
  {
    st_programs = 0;
    st_depth = Array.make 3 0;
    st_rect = 0;
    st_tri = 0;
    st_trap = 0;
    st_guarded = 0;
    st_oracle = 0;
    st_oracle_bad = 0;
    st_reparsed = 0;
    st_native = 0;
    st_native_c = 0;
    st_native_bad = 0;
    st_bp_keys = Hashtbl.create 16;
    st_bp_reuse = 0;
    st_passes = Hashtbl.create 16;
  }

let pstat stats name =
  match Hashtbl.find_opt stats.st_passes name with
  | Some p -> p
  | None ->
      let p = { applied = 0; rejected = 0; diverged = 0 } in
      Hashtbl.add stats.st_passes name p;
      p

(* ---- environments and the differential check ---------------------- *)

let real_names = List.map fst Gen_prog.farrays

(* Fills must not depend on declaration order, so each array gets its
   own stream keyed by a simple deterministic string hash ([Hashtbl.hash]
   is version-dependent). *)
let name_hash s =
  String.fold_left (fun acc c -> (acc * 131) + Char.code c) 7 s

let make_env (p : Gen_prog.t) (v : variant option) ~fill_seed =
  let env = Env.create () in
  List.iter (fun (k, x) -> Env.set_iscalar env k x) p.bindings;
  List.iter
    (fun (name, rank) ->
      Env.add_farray env name
        (if rank = 1 then Gen_prog.dims1 else Gen_prog.dims2))
    Gen_prog.farrays;
  (match v with
  | None -> ()
  | Some v ->
      List.iter (fun (n, dims) -> Env.add_farray env n dims) v.v_extra_f;
      List.iter (fun (n, dims) -> Env.add_iarray env n dims) v.v_extra_i);
  List.iter
    (fun (name, _) ->
      let rng = Lcg.create ((fill_seed * 7919) + name_hash name) in
      if String.equal name Gen_prog.guard_array then
        (* genuine zeros so zero-guards take both branches *)
        Env.fill_farray env name (fun _ ->
            if Lcg.bool rng 0.35 then 0.0 else Lcg.float rng 1.0)
      else Env.fill_farray env name (fun _ -> Lcg.float rng 1.0))
    Gen_prog.farrays;
  env

(* Interpret point and transformed blocks from identical environments;
   [Some msg] when the REAL arrays differ bitwise (or the transformed
   code crashes).  Two data fills per program. *)
let diverges (p : Gen_prog.t) (v : variant) =
  let check fill_seed =
    let e_point = make_env p (Some v) ~fill_seed in
    let e_trans = make_env p (Some v) ~fill_seed in
    Exec.run e_point p.block;
    match Exec.run e_trans v.v_block with
    | () -> Env.diff ~only:real_names e_point e_trans
    | exception Env.Error m -> Some ("transformed run raised Env.Error: " ^ m)
    | exception Exec.Error m -> Some ("transformed run raised Exec.Error: " ^ m)
  in
  match check p.fill_seed with
  | Some m -> Some (Printf.sprintf "%s [data fill %d]" m p.fill_seed)
  | None -> (
      match check (p.fill_seed + 1) with
      | Some m -> Some (Printf.sprintf "%s [data fill %d]" m (p.fill_seed + 1))
      | None -> None)

(* ---- program shape helpers ---------------------------------------- *)

let rec has_minmax (e : Expr.t) =
  match e with
  | Expr.Int _ | Expr.Var _ -> false
  | Expr.Bin (_, a, b) -> has_minmax a || has_minmax b
  | Expr.Min _ | Expr.Max _ -> true
  | Expr.Idx (_, subs) -> List.exists has_minmax subs

let is_prefix q path =
  List.length q < List.length path
  && q = List.filteri (fun i _ -> i < List.length q) path

(* Loops with their nesting level (0 = outermost).  Generated programs
   are single-path nests, so level k among a dependence's common loops
   is the loop at level k of the program — which is what makes
   [legal_by_vectors ~outer_level:level] the right gate below. *)
let loops_with_level block =
  let all = Stmt.find_loops block in
  List.map
    (fun (path, l) ->
      let level = List.length (List.filter (fun (q, _) -> is_prefix q path) all) in
      (path, l, level))
    all

(* Base context: parameter positivity only.  Loop-bounds facts are NOT
   global truths of a program — a zero-trip inner loop's [hi >= lo]
   does not hold at statements outside it — so dependence analysis
   derives them per access pair and the site-sensitive passes get only
   their ancestors' facts via [site_ctx]. *)
let ctx_of block =
  List.fold_left Symbolic.assume_pos Symbolic.empty
    (Ir_util.symbolic_params block)

(* [ctx] + bounds facts of the loops strictly enclosing [path]: those
   hold at every execution of the site. *)
let site_ctx ctx block path =
  let ancestors =
    List.filter_map
      (fun (q, l) -> if is_prefix q path then Some l else None)
      (Stmt.find_loops block)
  in
  Symbolic.with_loops ctx ancestors

(* The disjunctive refinement of [site_ctx]: the case contexts of the
   same ancestor loops (see [Symbolic.with_loops_cases]). *)
let site_cases ctx block path =
  let ancestors =
    List.filter_map
      (fun (q, l) -> if is_prefix q path then Some l else None)
      (Stmt.find_loops block)
  in
  Symbolic.with_loops_cases ctx ancestors

let used_names block =
  Ir_util.index_vars block
  @ List.map (fun (n, _, _) -> n) (Ir_util.arrays_of block)
  @ Ir_util.symbolic_params block

let perfect_inner (l : Stmt.loop) =
  match l.body with [ Stmt.Loop inner ] -> Some inner | _ -> None

let site_detail what (l : Stmt.loop) = Printf.sprintf "%s %s" what l.index

let variant detail block = { v_detail = detail; v_block = block; v_extra_f = []; v_extra_i = [] }

(* ---- transformation passes ---------------------------------------- *)

(* Each pass maps a program to the outcome at every applicable site:
   [Ok variant] when the transformation (and its legality gate) went
   through, [Error reason] when it was refused.  Refusals are counted,
   not checked — the differential property only constrains applied
   sites. *)

type pass =
  Gen_prog.t ->
  ctx:Symbolic.t ->
  deps:Dependence.t list Lazy.t ->
  (variant, string) result list

let strip_mine_pass : pass =
 fun p ~ctx:_ ~deps:_ ->
  let block = p.block in
  List.map
    (fun (path, (l : Stmt.loop), _) ->
      let new_index = Ir_util.fresh ~used:(used_names block) (l.index ^ l.index) in
      match Strip_mine.apply ~block_size:(Expr.var "KS") ~new_index l with
      | Ok l' ->
          Ok (variant (site_detail "loop" l) (Stmt.replace_at block path [ Stmt.Loop l' ]))
      | Error m -> Error m)
    (loops_with_level block)

let interchange_pass : pass =
 fun p ~ctx:_ ~deps ->
  let block = p.block in
  List.filter_map
    (fun (path, (l : Stmt.loop), level) ->
      match perfect_inner l with
      | None -> None
      | Some inner ->
          Some
            (if not (Interchange.legal_by_vectors (Lazy.force deps) ~outer_level:level)
             then Error "a dependence with a possible (<,>) direction prevents interchange"
             else
               match Interchange.triangular l with
               | Ok l' ->
                   Ok
                     (variant
                        (Printf.sprintf "pair %s/%s" l.index inner.index)
                        (Stmt.replace_at block path [ Stmt.Loop l' ]))
               | Error m -> Error m))
    (loops_with_level block)

let distribution_pass : pass =
 fun p ~ctx ~deps:_ ->
  let block = p.block in
  List.filter_map
    (fun (path, (l : Stmt.loop), _) ->
      if List.length l.body < 2 then None
      else
        Some
          (match Distribution.auto ~ctx:(site_ctx ctx p.block path) l with
          | Ok stmts ->
              Ok (variant (site_detail "loop" l) (Stmt.replace_at block path stmts))
          | Error m -> Error m))
    (loops_with_level block)

let index_set_split_pass : pass =
 fun p ~ctx:_ ~deps:_ ->
  let block = p.block in
  let ks = List.assoc "KS" p.bindings in
  List.map
    (fun (path, (l : Stmt.loop), _) ->
      let point = Expr.add l.lo (Expr.int ks) in
      match Index_set_split.at_point l point with
      | stmts ->
          Ok
            (variant
               (Printf.sprintf "loop %s at %s" l.index (Expr.to_string point))
               (Stmt.replace_at block path stmts))
      | exception Invalid_argument m -> Error m)
    (loops_with_level block)

let split_minmax_pass : pass =
 fun p ~ctx:_ ~deps:_ ->
  let block = p.block in
  List.filter_map
    (fun (path, (l : Stmt.loop), _) ->
      match perfect_inner l with
      | Some inner when has_minmax inner.lo || has_minmax inner.hi ->
          Some
            (match Split_minmax.remove_all l with
            | Ok stmts ->
                Ok (variant (site_detail "outer loop" l) (Stmt.replace_at block path stmts))
            | Error m -> Error m)
      | _ -> None)
    (loops_with_level block)

let unroll_and_jam_pass : pass =
 fun p ~ctx:_ ~deps ->
  let block = p.block in
  let factor = 2 + (List.assoc "KS" p.bindings land 1) in
  List.filter_map
    (fun (path, (l : Stmt.loop), level) ->
      match perfect_inner l with
      | None -> None
      | Some _ ->
          Some
            (if not (Interchange.legal_by_vectors (Lazy.force deps) ~outer_level:level)
             then
               Error "a dependence with a possible (<,>) direction prevents unroll-and-jam"
             else
               let first_ok acc f = match acc with Ok _ -> acc | Error _ -> f () in
               match
                 List.fold_left first_ok (Error "no variant")
                   [
                     (fun () -> Unroll_and_jam.rectangular ~factor l);
                     (fun () -> Unroll_and_jam.triangular ~factor l);
                     (fun () -> Unroll_and_jam.upper_triangular ~factor l);
                   ]
               with
               | Ok stmts ->
                   Ok
                     (variant
                        (Printf.sprintf "loop %s by %d" l.index factor)
                        (Stmt.replace_at block path stmts))
               | Error m -> Error m))
    (loops_with_level block)

let scalar_replacement_pass : pass =
 fun p ~ctx ~deps:_ ->
  let block = p.block in
  List.filter_map
    (fun (path, (l : Stmt.loop), _) ->
      let has_loop = ref false in
      Stmt.iter (function Stmt.Loop _ -> has_loop := true | _ -> ()) l.body;
      if !has_loop then None
      else
        Some
          (match
             Scalar_replacement.apply
               ~cases:(site_cases ctx p.block path)
               ~ctx:(site_ctx ctx p.block path) l
           with
          | Ok stmts ->
              Ok (variant (site_detail "innermost loop" l) (Stmt.replace_at block path stmts))
          | Error m -> Error m))
    (loops_with_level block)

let scalar_expansion_pass : pass =
 fun p ~ctx:_ ~deps:_ ->
  let block = p.block in
  List.filter_map
    (fun (path, (l : Stmt.loop), _) ->
      let mentions_t =
        List.exists
          (fun (a : Ir_util.access) -> String.equal a.array Gen_prog.temp_scalar)
          (Ir_util.accesses [ Stmt.Loop l ])
      in
      if not mentions_t then None
      else
        Some
          (match
             Scalar_expansion.apply ~scalar:Gen_prog.temp_scalar ~array_name:"TX" l
           with
          | Ok l' ->
              Ok
                {
                  v_detail = site_detail "loop" l;
                  v_block = Stmt.replace_at block path [ Stmt.Loop l' ];
                  v_extra_f = [ ("TX", Gen_prog.dims1) ];
                  v_extra_i = [];
                }
          | Error m -> Error m))
    (loops_with_level block)

let if_inspection_pass : pass =
 fun p ~ctx:_ ~deps:_ ->
  let block = p.block in
  List.filter_map
    (fun (path, (l : Stmt.loop), _) ->
      match l.body with
      | [ Stmt.If (_, _, []) ] ->
          let names =
            If_inspection.default_names ~prefix:l.index ~used:(used_names block)
          in
          Some
            (match If_inspection.apply ~names l with
            | Ok stmts ->
                Ok
                  {
                    v_detail = site_detail "guarded loop" l;
                    v_block = Stmt.replace_at block path stmts;
                    v_extra_f = [];
                    v_extra_i =
                      [ (names.lb, [ (1, 64) ]); (names.ub, [ (1, 64) ]) ];
                  }
            | Error m -> Error m)
      | _ -> None)
    (loops_with_level block)

(* FSA cross-check: wherever {!Fsa.commute} proves two adjacent
   statements equivalent under the site's facts, swapping them must be
   bitwise invisible to the whole program.  This is the differential
   validation of the derived commutativity prover: every [Equivalent]
   verdict gets executed in both orders.  [Unknown] verdicts are
   refusals, not failures — FSA is allowed to give up, never to be
   wrong. *)
let commutativity_pass : pass =
 fun p ~ctx ~deps:_ ->
  let block = p.block in
  let sites =
    ([], None)
    :: List.map (fun (path, l, _) -> (path, Some l)) (loops_with_level block)
  in
  List.concat_map
    (fun (path, encl) ->
      let stmts =
        match encl with Some (l : Stmt.loop) -> l.body | None -> block
      in
      let n = List.length stmts in
      List.filter_map
        (fun i ->
          let arr = Array.of_list stmts in
          let a = arr.(i) and b = arr.(i + 1) in
          let sctx = site_ctx ctx block path in
          let sctx =
            match encl with
            | Some l -> Symbolic.with_loops sctx [ l ]
            | None -> sctx
          in
          let verdict =
            try (Fsa.commute ~fuel:3 ~ctx:sctx [ a ] [ b ]).Fsa.verdict
            with e -> Fsa.Unknown (Printexc.to_string e)
          in
          match verdict with
          | Fsa.Equivalent ->
              arr.(i) <- b;
              arr.(i + 1) <- a;
              let swapped = Array.to_list arr in
              let v_block =
                match encl with
                | Some l ->
                    Stmt.replace_at block path
                      [ Stmt.Loop { l with body = swapped } ]
                | None -> swapped
              in
              let where =
                match encl with
                | Some l -> "in loop " ^ l.index
                | None -> "at top level"
              in
              Some
                (Ok
                   (variant
                      (Printf.sprintf "statements %d,%d %s" i (i + 1) where)
                      v_block))
          | Fsa.Unknown why -> Some (Error why))
        (List.init (max 0 (n - 1)) Fun.id))
    sites

let transform_passes : (string * pass) list =
  [
    ("strip_mine", strip_mine_pass);
    ("interchange", interchange_pass);
    ("distribution", distribution_pass);
    ("index_set_split", index_set_split_pass);
    ("split_minmax", split_minmax_pass);
    ("unroll_and_jam", unroll_and_jam_pass);
    ("scalar_replacement", scalar_replacement_pass);
    ("scalar_expansion", scalar_expansion_pass);
    ("if_inspection", if_inspection_pass);
    ("commutativity", commutativity_pass);
  ]

let pass_names = List.map fst transform_passes @ [ "oracle"; "reparse" ]

(* ---- the two non-transformation checks ---------------------------- *)

let oracle_check (p : Gen_prog.t) =
  let ctx = ctx_of p.block in
  match Oracle.agrees ~bindings:p.bindings ~ctx p.block with
  | Ok _ -> None
  | Error m -> Some m
  | exception Oracle.Unsupported m -> Some ("oracle unexpectedly refused: " ^ m)

let reparse_check (p : Gen_prog.t) =
  let text = Stmt.block_to_string p.block in
  match Parser.stmts text with
  | parsed ->
      Option.map
        (fun m -> "re-parsed program diverges: " ^ m)
        (diverges p (variant "reparse" parsed))
  | exception Parser.Parse_error { line; message } ->
      Some (Printf.sprintf "printed form does not re-parse: line %d: %s" line message)
  | exception Lexer.Lex_error { line; message } ->
      Some (Printf.sprintf "printed form does not re-lex: line %d: %s" line message)

(* Native cross-check: the JIT-compiled point program must be bitwise
   equal to the interpreter on the same data fill.  Generated programs
   have concrete array bounds, so the emitter's shape declarations are
   integer literals and every in-bounds proof that fires is grounded. *)
let native_shapes =
  List.map
    (fun (name, rank) ->
      let dims = if rank = 1 then Gen_prog.dims1 else Gen_prog.dims2 in
      (name, List.map (fun (lo, hi) -> (Expr.Int lo, Expr.Int hi)) dims))
    Gen_prog.farrays

let native_check ~backends stats (p : Gen_prog.t) =
  (* Explicitly through the blueprint layer: generated programs have
     random concrete bounds, so hoisting makes structurally-equal
     programs of different sizes share one compiled plugin — every
     memo hit below is a reuse of a blueprint under fresh size
     bindings, still checked bitwise against the interpreter. *)
  let bp = Blueprint.of_block ~shapes:native_shapes p.block in
  if Hashtbl.mem stats.st_bp_keys bp.Blueprint.key then
    stats.st_bp_reuse <- stats.st_bp_reuse + 1
  else Hashtbl.add stats.st_bp_keys bp.Blueprint.key ();
  let rec compile acc = function
    | [] -> Ok (List.rev acc)
    | b :: rest -> (
        let module B = (val b : Backend.S) in
        match B.compile_blueprint ~name:"fuzz_native" bp with
        | Error m ->
            Error (Printf.sprintf "native compile failed (%s): %s" B.tag m)
        | Ok c -> compile (c :: acc) rest)
  in
  match compile [] backends with
  | Error m -> Some m
  | Ok compiled -> (
      if
        List.exists
          (fun (c : Backend.compiled) ->
            not (String.equal c.Backend.bk_tag "ocaml"))
          compiled
      then stats.st_native_c <- stats.st_native_c + 1;
      (* One interpreter reference per size; every backend is diffed
         against it on the same fill.  interp = ocaml and interp = c
         together imply ocaml = c — the three-way differential. *)
      let diff_run (ps : Gen_prog.t) =
        let e_interp = make_env ps None ~fill_seed:p.fill_seed in
        Exec.run e_interp ps.Gen_prog.block;
        List.fold_left
          (fun acc (c : Backend.compiled) ->
            match acc with
            | Some _ -> acc
            | None -> (
                let e_native = make_env ps None ~fill_seed:p.fill_seed in
                match c.Backend.bk_run ~bindings:bp.Blueprint.bindings e_native with
                | Error m ->
                    Some
                      (Printf.sprintf "native run failed (%s): %s"
                         c.Backend.bk_tag m)
                | Ok () ->
                    Option.map
                      (fun m ->
                        Printf.sprintf
                          "native run (%s) diverges from the interpreter: %s"
                          c.Backend.bk_tag m)
                      (Env.diff ~only:real_names e_interp e_native)))
          None compiled
      in
      match diff_run p with
      | Some m -> Some m
      | None ->
          (* Rerun the same compiled artifacts under rotated size
             bindings — each stays inside the generator's own range
             ([N], [M] in 1-7, [KS] in 1-4), so in-bounds holds —
             and check bitwise again: shape polymorphism exercised
             on every program, not only when two random programs
             happen to share a structure. *)
          stats.st_bp_reuse <- stats.st_bp_reuse + 1;
          let rotate hi v = (v mod hi) + 1 in
          let p2 =
            {
              p with
              Gen_prog.bindings =
                List.map
                  (fun (k, v) ->
                    (k, rotate (if String.equal k "KS" then 4 else 7) v))
                  p.Gen_prog.bindings;
            }
          in
          diff_run p2)

(* ---- the property ------------------------------------------------- *)

let property ?only ~backends stats (p : Gen_prog.t) =
  stats.st_programs <- stats.st_programs + 1;
  let prof = Gen_prog.classify p in
  if prof.depth >= 1 && prof.depth <= 3 then
    stats.st_depth.(prof.depth - 1) <- stats.st_depth.(prof.depth - 1) + 1;
  if prof.rect then stats.st_rect <- stats.st_rect + 1;
  if prof.triangular then stats.st_tri <- stats.st_tri + 1;
  if prof.trapezoidal then stats.st_trap <- stats.st_trap + 1;
  if prof.guarded then stats.st_guarded <- stats.st_guarded + 1;
  let selected name =
    match only with None -> true | Some o -> String.equal o name
  in
  let ctx = ctx_of p.block in
  let deps = lazy (Dependence.all ~ctx p.block) in
  List.iter
    (fun (name, (pass : pass)) ->
      if selected name then
        List.iter
          (fun outcome ->
            let ps = pstat stats name in
            match outcome with
            | Error _ -> ps.rejected <- ps.rejected + 1
            | Ok v -> (
                ps.applied <- ps.applied + 1;
                match diverges p v with
                | None -> ()
                | Some msg ->
                    ps.diverged <- ps.diverged + 1;
                    if Obs.enabled () then
                      Obs.instant ~cat:"fuzz" "fuzz.divergence"
                        ~args:
                          [ ("pass", Obs.Str name); ("site", Obs.Str v.v_detail) ];
                    QCheck2.Test.fail_reportf
                      "pass %s (%s) diverged: %s@.transformed block:@.%s" name
                      v.v_detail msg
                      (Stmt.block_to_string v.v_block)))
          (pass p ~ctx ~deps))
    transform_passes;
  if selected "oracle" && prof.straightline then begin
    stats.st_oracle <- stats.st_oracle + 1;
    match oracle_check p with
    | None -> ()
    | Some m ->
        stats.st_oracle_bad <- stats.st_oracle_bad + 1;
        if Obs.enabled () then
          Obs.instant ~cat:"fuzz" "fuzz.oracle_violation" ~args:[ ("msg", Obs.Str m) ];
        QCheck2.Test.fail_reportf "dependence analysis not conservative: %s" m
  end;
  if selected "reparse" then begin
    stats.st_reparsed <- stats.st_reparsed + 1;
    match reparse_check p with
    | None -> ()
    | Some m -> QCheck2.Test.fail_reportf "%s" m
  end;
  if backends <> [] then begin
    stats.st_native <- stats.st_native + 1;
    match native_check ~backends stats p with
    | None -> ()
    | Some m ->
        stats.st_native_bad <- stats.st_native_bad + 1;
        if Obs.enabled () then
          Obs.instant ~cat:"fuzz" "fuzz.native_divergence"
            ~args:[ ("msg", Obs.Str m) ];
        QCheck2.Test.fail_reportf "%s" m
  end;
  true

(* ---- runner ------------------------------------------------------- *)

let summarize ~iters ~seed stats failures =
  {
    iters;
    seed;
    programs = stats.st_programs;
    depth_counts = Array.copy stats.st_depth;
    rect = stats.st_rect;
    triangular = stats.st_tri;
    trapezoidal = stats.st_trap;
    guarded = stats.st_guarded;
    oracle_checked = stats.st_oracle;
    oracle_violations = stats.st_oracle_bad;
    reparsed = stats.st_reparsed;
    native_checked = stats.st_native;
    native_c_checked = stats.st_native_c;
    native_divergences = stats.st_native_bad;
    native_blueprints = Hashtbl.length stats.st_bp_keys;
    native_blueprint_reuses = stats.st_bp_reuse;
    passes =
      List.map
        (fun (name, _) ->
          let ps = pstat stats name in
          {
            ps_name = name;
            ps_applied = ps.applied;
            ps_rejected = ps.rejected;
            ps_diverged = ps.diverged;
          })
        transform_passes;
    failures;
  }

let run ?only ?(native = false) ?(backend = "ocaml") ~iters ~seed () =
  match only with
  | Some o when not (List.mem o pass_names) ->
      Error
        (Printf.sprintf "unknown pass '%s' (expected one of: %s)" o
           (String.concat ", " pass_names))
  | _ when Option.is_none (Backend.of_tag backend) ->
      Error
        (Printf.sprintf "unknown backend '%s' (expected one of: %s)" backend
           (String.concat ", " Backend.names))
  | _ when native && Result.is_error (Jit.available ()) ->
      Error
        (Printf.sprintf "native mode unavailable: %s"
           (Result.get_error (Jit.available ())))
  | _
    when native
         && String.equal backend "c"
         && Result.is_error (Cc.available ()) ->
      Error
        (Printf.sprintf "c backend unavailable: %s"
           (Result.get_error (Cc.available ())))
  | _ ->
      (* [--backend c] is a three-way differential: the OCaml plugin
         stays in the comparison, so one run pins interpreter, OCaml
         and C to the same bits. *)
      let backends =
        if not native then []
        else if String.equal backend "c" then
          [ (module Backend.Ocaml : Backend.S); (module Backend.C) ]
        else [ (module Backend.Ocaml : Backend.S) ]
      in
      Obs.span ~cat:"fuzz" "fuzz.run"
        ~args:[ ("iters", Obs.Int iters); ("seed", Obs.Int seed) ]
        (fun () ->
          let stats = fresh_stats () in
          let cell =
            QCheck2.Test.make_cell ~count:iters
              ~name:(Printf.sprintf "differential fuzz (seed %d)" seed)
              ~print:Gen_prog.print Gen_prog.gen
              (property ?only ~backends stats)
          in
          let rand = Random.State.make [| seed |] in
          let res = QCheck2.Test.check_cell ~rand cell in
          let failures =
            match QCheck2.TestResult.get_state res with
            | QCheck2.TestResult.Success -> []
            | QCheck2.TestResult.Failed { instances } ->
                List.map (QCheck2.Test.print_c_ex cell) instances
            | QCheck2.TestResult.Failed_other { msg } -> [ msg ]
            | QCheck2.TestResult.Error { instance; exn; backtrace } ->
                [
                  Printf.sprintf "exception %s on:\n%s\n%s"
                    (Printexc.to_string exn)
                    (Gen_prog.print instance.QCheck2.TestResult.instance)
                    backtrace;
                ]
          in
          if Obs.enabled () then
            Obs.instant ~cat:"fuzz" "fuzz.coverage"
              ~args:
                [
                  ("programs", Obs.Int stats.st_programs);
                  ("triangular", Obs.Int stats.st_tri);
                  ("trapezoidal", Obs.Int stats.st_trap);
                  ("guarded", Obs.Int stats.st_guarded);
                  ("oracle_checked", Obs.Int stats.st_oracle);
                  ("failures", Obs.Int (List.length failures));
                ];
          if Obs.Metrics.enabled () then begin
            Obs.Metrics.add (Obs.Metrics.counter "fuzz.programs") stats.st_programs;
            Obs.Metrics.add
              (Obs.Metrics.counter "fuzz.failures")
              (List.length failures)
          end;
          Ok (summarize ~iters ~seed stats failures))

let ok s =
  s.failures = [] && s.oracle_violations = 0 && s.native_divergences = 0
