type t = {
  block : Stmt.t list;
  bindings : (string * int) list;
  fill_seed : int;
}

type profile = {
  depth : int;
  rect : bool;
  triangular : bool;
  trapezoidal : bool;
  guarded : bool;
  straightline : bool;
  uses_temp : bool;
}

let farrays = [ ("A", 1); ("B", 1); ("C", 2); ("D", 2); ("G", 1) ]
let writable = [ ("A", 1); ("B", 1); ("C", 2); ("D", 2) ]
let guard_array = "G"
let temp_scalar = "T"

(* Index values stay within [lo - 1, max(N, M, const) + 1] = [0, 8] and
   subscripts are at most [2*i1 + 2*i2 + 2] or [i1 - i2 - 2], so [-8, 48]
   covers every reachable element with room for the substituted
   subscripts unroll-and-jam introduces ([I + factor - 1 + ...]). *)
let dims1 = [ (-8, 48) ]
let dims2 = [ (-8, 48); (-8, 48) ]

let indices = [| "I"; "J"; "K" |]

open QCheck2.Gen

(* ---- expressions -------------------------------------------------- *)

(* Affine subscript over the in-scope indices (outermost first).  The
   first alternatives are the simplest, so shrinking walks toward a
   constant subscript. *)
let gen_affine scope =
  let n = List.length scope in
  let* kind = int_range 0 (if n >= 2 then 3 else 2) in
  match kind with
  | 0 ->
      let* c = int_range 1 4 in
      pure (Expr.int c)
  | 1 ->
      let* vi = int_range 0 (n - 1) in
      let* c0 = int_range (-2) 2 in
      pure Expr.(add (var (List.nth scope vi)) (int c0))
  | 2 ->
      let* vi = int_range 0 (n - 1) in
      let* c1 = int_range 1 2 in
      let* c0 = int_range (-2) 2 in
      pure Expr.(add (mul (int c1) (var (List.nth scope vi))) (int c0))
  | _ ->
      (* coupled: i1 + i2 + c or i1 - i2 + c *)
      let* vi = int_range 0 (n - 2) in
      let* sign = int_range 0 1 in
      let* c0 = int_range (-2) 2 in
      let a = Expr.var (List.nth scope vi)
      and b = Expr.var (List.nth scope (vi + 1)) in
      pure
        (if sign = 0 then Expr.(add (add a b) (int c0))
         else Expr.(add (sub a b) (int c0)))

let gen_simple_sub scope =
  let* vi = int_range 0 (List.length scope - 1) in
  let* c0 = int_range (-1) 1 in
  pure Expr.(add (var (List.nth scope vi)) (int c0))

let gen_subs scope rank =
  if rank = 1 then map (fun s -> [ s ]) (gen_affine scope)
  else
    let* s1 = gen_simple_sub scope in
    let* s2 = gen_simple_sub scope in
    pure [ s1; s2 ]

let gen_read scope =
  let* ai = int_range 0 (List.length farrays - 1) in
  let name, rank = List.nth farrays ai in
  let* subs = gen_subs scope rank in
  pure (Stmt.Ref (name, subs))

let gen_rhs scope =
  let* kind = int_range 0 3 in
  match kind with
  | 0 -> gen_read scope
  | 1 ->
      let* r = gen_read scope in
      let* c = int_range 1 9 in
      pure (Stmt.Fbin (Stmt.FAdd, r, Stmt.Fconst (float_of_int c)))
  | 2 ->
      let* opk = int_range 0 2 in
      let op = List.nth [ Stmt.FAdd; Stmt.FSub; Stmt.FMul ] opk in
      let* r1 = gen_read scope in
      let* r2 = gen_read scope in
      pure (Stmt.Fbin (op, r1, r2))
  | _ ->
      let* r = gen_read scope in
      pure (Stmt.Fbin (Stmt.FMul, r, Stmt.Fconst 0.5))

(* ---- statements --------------------------------------------------- *)

let gen_assign scope =
  let* ai = int_range 0 (List.length writable - 1) in
  let name, rank = List.nth writable ai in
  let* subs = gen_subs scope rank in
  let* rhs = gen_rhs scope in
  let* upd = int_range 0 2 in
  (* upd > 0 turns it into an update [X(s) = X(s) op rhs]: a recurrence
     when the subscript repeats across iterations. *)
  let rhs =
    match upd with
    | 0 -> rhs
    | 1 -> Stmt.Fbin (Stmt.FAdd, Stmt.Ref (name, subs), rhs)
    | _ -> Stmt.Fbin (Stmt.FMul, Stmt.Ref (name, subs), rhs)
  in
  pure (Stmt.Assign (name, subs, rhs))

(* T = rhs ; X(s) = T op X(s) — fodder for scalar expansion and for the
   scalar-interference safety checks. *)
let gen_scalar_pair scope =
  let* rhs = gen_rhs scope in
  let* ai = int_range 0 (List.length writable - 1) in
  let name, rank = List.nth writable ai in
  let* subs = gen_subs scope rank in
  let* opk = int_range 0 1 in
  let op = if opk = 0 then Stmt.FAdd else Stmt.FMul in
  pure
    [
      Stmt.Assign (temp_scalar, [], rhs);
      Stmt.Assign
        (name, subs, Stmt.Fbin (op, Stmt.Fvar temp_scalar, Stmt.Ref (name, subs)));
    ]

let gen_guard scope =
  let innermost = List.nth scope (List.length scope - 1) in
  let* kind = int_range 0 3 in
  match kind with
  | 0 ->
      let* s = gen_affine scope in
      pure (Stmt.Fcmp (Stmt.Ne, Stmt.Ref (guard_array, [ s ]), Stmt.Fconst 0.))
  | 1 ->
      let* c = int_range 1 2 in
      pure (Stmt.Icmp (Stmt.Le, Expr.var innermost, Expr.(sub (var "N") (int c))))
  | 2 -> pure (Stmt.Icmp (Stmt.Ge, Expr.var innermost, Expr.int 2))
  | _ ->
      (* guard on the scalar temporary: stresses the IF-inspection
         scalar-interference safety check *)
      pure (Stmt.Fcmp (Stmt.Ge, Stmt.Fvar temp_scalar, Stmt.Fconst 0.25))

(* §5.2 shape: IF-guarded element interchange of two rows of a 2-D
   array through the temporary — the partial-pivoting row-swap pattern.
   Exercises scalar replacement under disjunctive contexts and feeds
   the commutativity pass genuinely swap-like material. *)
let gen_swap_unit scope =
  let* ai = int_range 0 1 in
  let name = if ai = 0 then "C" else "D" in
  let* r1 = int_range 1 2 in
  let* r2k = int_range 0 (List.length scope - 1) in
  let* c0 = int_range (-1) 1 in
  let r1e = Expr.int r1 in
  let r2e = Expr.(add (var (List.nth scope r2k)) (int c0)) in
  let* s = gen_simple_sub scope in
  let* g = gen_guard scope in
  pure
    [
      Stmt.If
        ( g,
          [
            Stmt.Assign (temp_scalar, [], Stmt.Ref (name, [ r1e; s ]));
            Stmt.Assign (name, [ r1e; s ], Stmt.Ref (name, [ r2e; s ]));
            Stmt.Assign (name, [ r2e; s ], Stmt.Fvar temp_scalar);
          ],
          [] );
    ]

let gen_unit scope =
  let* k = int_range 0 6 in
  match k with
  | 0 | 1 | 2 -> map (fun s -> [ s ]) (gen_assign scope)
  | 3 -> gen_scalar_pair scope
  | 4 ->
      let* g = gen_guard scope in
      let* s = gen_assign scope in
      pure [ Stmt.If (g, [ s ], []) ]
  | 5 ->
      let* g = gen_guard scope in
      let* body = gen_scalar_pair scope in
      pure [ Stmt.If (g, body, []) ]
  | _ -> gen_swap_unit scope

let gen_body scope =
  let* nstmt = int_range 1 2 in
  let* units = list_repeat nstmt (gen_unit scope) in
  let stmts = List.concat units in
  let* whole_guard = int_range 0 4 in
  if whole_guard = 4 then
    let* g = gen_guard scope in
    pure [ Stmt.If (g, stmts, []) ]
  else pure stmts

(* ---- loop nests --------------------------------------------------- *)

let gen_indep_hi =
  let* k = int_range 0 2 in
  match k with
  | 0 -> pure (Expr.var "N")
  | 1 -> let* c = int_range 3 5 in pure (Expr.int c)
  | _ -> pure (Expr.var "M")

let gen_bounds ~level scope =
  if level = 0 then
    let* hi = gen_indep_hi in
    pure (Expr.int 1, hi)
  else
    let outer = Expr.var (List.nth scope (level - 1)) in
    let* shape = int_range 0 4 in
    match shape with
    | 0 ->
        let* lo = int_range 1 2 in
        let* hi = gen_indep_hi in
        pure (Expr.int lo, hi)
    | 1 ->
        (* triangular, lower bound tracks the outer index *)
        let* b = int_range (-1) 1 in
        let* hi = gen_indep_hi in
        pure (Expr.(add outer (int b)), hi)
    | 2 ->
        (* triangular, upper bound tracks the outer index *)
        let* b = int_range (-1) 1 in
        pure (Expr.int 1, Expr.(add outer (int b)))
    | 3 ->
        (* trapezoidal: MIN upper bound *)
        let* c = int_range 0 2 in
        pure (Expr.int 1, Expr.min_ (Expr.add outer (Expr.int c)) (Expr.var "N"))
    | _ ->
        (* trapezoidal: MAX lower bound *)
        let* c = int_range 0 2 in
        let* hi = gen_indep_hi in
        pure (Expr.max_ (Expr.sub outer (Expr.int c)) (Expr.int 1), hi)

let rec gen_levels ~depth ~level scope =
  if level = depth then gen_body scope
  else
    let idx = indices.(level) in
    let* lo, hi = gen_bounds ~level scope in
    let scope' = scope @ [ idx ] in
    let* inner = gen_levels ~depth ~level:(level + 1) scope' in
    let* pre_k = int_range 0 3 in
    let* body =
      if pre_k = 3 && level + 1 < depth then
        (* imperfect nest: one statement before the inner loop *)
        let* s = gen_assign scope' in
        pure (s :: inner)
      else pure inner
    in
    pure [ Stmt.Loop { Stmt.index = idx; lo; hi; step = Expr.int 1; body } ]

let mentions_temp block =
  List.exists
    (fun (a : Ir_util.access) -> String.equal a.array temp_scalar)
    (Ir_util.accesses block)

let gen =
  let* depth = int_range 1 3 in
  let* nest = gen_levels ~depth ~level:0 [] in
  let* n = int_range 1 7 in
  let* m = int_range 1 7 in
  let* ks = int_range 1 4 in
  let* fill_seed = int_range 0 999 in
  let block =
    (* [T] may be read (guards, update forms) before the first in-loop
       write; a preamble definition keeps the point program total. *)
    if mentions_temp nest then Stmt.Assign (temp_scalar, [], Stmt.Fconst 0.5) :: nest
    else nest
  in
  pure { block; bindings = [ ("N", n); ("M", m); ("KS", ks) ]; fill_seed }

(* ---- classification ----------------------------------------------- *)

let rec expr_has_minmax (e : Expr.t) =
  match e with
  | Expr.Int _ | Expr.Var _ -> false
  | Expr.Bin (_, a, b) -> expr_has_minmax a || expr_has_minmax b
  | Expr.Min _ | Expr.Max _ -> true
  | Expr.Idx (_, subs) -> List.exists expr_has_minmax subs

let classify p =
  let loops = Stmt.find_loops p.block in
  let depth =
    List.fold_left
      (fun acc (path, _) ->
        let d =
          List.length
            (List.filter
               (fun (q, _) ->
                 List.length q < List.length path
                 && q = List.filteri (fun i _ -> i < List.length q) path)
               loops)
        in
        max acc (d + 1))
      0 loops
  in
  let has_if = ref false in
  Stmt.iter (function Stmt.If _ -> has_if := true | _ -> ()) p.block;
  let outer_mentioned (l : Stmt.loop) =
    (* a bound of some deeper loop mentions l's index *)
    List.exists
      (fun (_, (inner : Stmt.loop)) ->
        (not (inner == l))
        && (Expr.mentions l.index inner.lo || Expr.mentions l.index inner.hi))
      loops
  in
  let trapezoidal =
    List.exists
      (fun (_, (l : Stmt.loop)) -> expr_has_minmax l.lo || expr_has_minmax l.hi)
      loops
  in
  let triangular =
    List.exists
      (fun (_, (l : Stmt.loop)) ->
        outer_mentioned l
        &&
        (* count it triangular only when the tracking bound is MIN/MAX-free *)
        List.exists
          (fun (_, (inner : Stmt.loop)) ->
            (Expr.mentions l.index inner.lo && not (expr_has_minmax inner.lo))
            || (Expr.mentions l.index inner.hi && not (expr_has_minmax inner.hi)))
          loops)
      loops
  in
  let rect =
    List.length loops > 1
    && List.exists
         (fun (path, (l : Stmt.loop)) ->
           path <> [ Stmt.I 0 ] && path <> [ Stmt.I 1 ]
           (* non-top loop with bounds free of any enclosing index *)
           && (not (expr_has_minmax l.lo || expr_has_minmax l.hi))
           && List.for_all
                (fun (_, (outer : Stmt.loop)) ->
                  not
                    (Expr.mentions outer.index l.lo
                    || Expr.mentions outer.index l.hi))
                loops)
         loops
  in
  {
    depth;
    rect;
    triangular;
    trapezoidal;
    guarded = !has_if;
    straightline = not !has_if;
    uses_temp = mentions_temp p.block;
  }

let print p =
  Printf.sprintf "! bindings: %s   fill-seed %d\n%s"
    (String.concat " "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) p.bindings))
    p.fill_seed
    (Stmt.block_to_string p.block)
