(** Differential fuzzing harness.

    For every generated program ({!Gen_prog}), the harness

    - applies each transformation pass at every applicable site, gated
      by the same legality machinery the drivers use (dependence
      vectors, SCC condensation, section analysis), and asserts that
      interpreting the transformed block from identical initial
      environments yields bitwise-equal REAL arrays over two randomized
      data fills;
    - cross-checks the fractal-symbolic-analysis prover: wherever
      {!Fsa.commute} proves two adjacent statements equivalent under
      the site's facts (the ["commutativity"] pass), the swapped order
      is interpreted and must agree bitwise — FSA may answer [Unknown],
      never wrongly [Equivalent];
    - cross-validates {!Dependence.all} conservativeness against the
      brute-force {!Oracle} on the program's concrete bindings
      (straight-line programs only — the oracle does not model IFs);
    - checks the printed counterexample form re-parses
      ({!Parser.stmts}) and that the re-parsed program is semantically
      identical, so any printed counterexample can be replayed.

    Failures shrink through {!QCheck2}'s integrated shrinking; the
    reported counterexample is minimal w.r.t. the generator's ordering
    and is printed as parseable mini-Fortran together with the run seed
    and the diverging pass.

    Coverage counters and pass decisions are recorded through {!Obs}
    (category ["fuzz"]) like the other subsystems. *)

val pass_names : string list
(** Valid arguments for [~only]: one transformation pass name, or
    ["oracle"] / ["reparse"] for the two non-transformation checks. *)

type pass_stat = {
  ps_name : string;
  ps_applied : int;  (** sites where the pass applied and was checked *)
  ps_rejected : int;  (** sites where it was structurally or legally refused *)
  ps_diverged : int;  (** applied sites whose interpretation diverged *)
}

type summary = {
  iters : int;  (** requested program count *)
  seed : int;
  programs : int;  (** programs actually executed (> iters while shrinking) *)
  depth_counts : int array;  (** index d = programs of nest depth d+1 *)
  rect : int;
  triangular : int;
  trapezoidal : int;
  guarded : int;  (** programs containing an IF *)
  oracle_checked : int;
  oracle_violations : int;
  reparsed : int;
  native_checked : int;  (** programs also run through the native JIT *)
  native_c_checked : int;
      (** programs additionally run through the C backend (three-way) *)
  native_divergences : int;
      (** native runs that were not bitwise equal to the interpreter *)
  native_blueprints : int;
      (** distinct blueprint keys among the native-checked programs *)
  native_blueprint_reuses : int;
      (** runs satisfied by an already-compiled blueprint under fresh
          size bindings: every program is rerun (and re-checked
          bitwise) at rotated sizes through its just-compiled plugin,
          plus any structural collisions between random programs *)
  passes : pass_stat list;
  failures : string list;  (** rendered, shrunk counterexamples *)
}

val run :
  ?only:string ->
  ?native:bool ->
  ?backend:string ->
  iters:int ->
  seed:int ->
  unit ->
  (summary, string) result
(** Run the fuzzer.  [Error] only for an unknown [~only] name, an
    unknown [~backend] tag, or when [native] is requested on a host
    without the required toolchain; a found counterexample is a [Ok]
    summary with non-empty [failures].

    With [native] (default false), every generated program is
    additionally normalized to a {!Blueprint}, compiled to native code
    ({!Jit.compile_blueprint}) and run under its hoisted size bindings,
    with the result checked bitwise against the interpreter — the same
    differential contract the transformation passes satisfy, applied to
    the code generator, the normalization, and the binding preamble at
    once.  Structurally-equal programs of different sizes share one
    compiled plugin (counted in [native_blueprint_reuses]), so expect
    roughly 100ms of [ocamlopt] per distinct {e structure}, not per
    program, on a cold cache.

    [backend] (default ["ocaml"], a {!Backend.names} tag) selects the
    native comparison set.  ["c"] is a {e three-way} differential: each
    program runs through the interpreter, the OCaml plugin and the
    dlopen'd C object on identical fills (at the base sizes and again
    at rotated sizes), and all three must agree bitwise.  Requires
    [cc]; fails fast with [Error] when {!Cc.available} says otherwise. *)

val ok : summary -> bool
(** No divergences (interpreted or native), no oracle violations, no
    failures. *)
