(** Random well-formed loop nests for the differential fuzzer.

    The generator produces single-path nests (one loop per level, depth
    1-3) in the shape vocabulary of the paper: rectangular bounds,
    triangular bounds where an inner bound tracks the outer index,
    trapezoidal MIN/MAX bounds, zero-guard IFs over a read-only guard
    array, IF-guarded row interchanges through the temporary (the §5.2
    partial-pivoting swap shape), 1-D/2-D affine subscripts (including
    coupled [I-J] forms),
    scalar-temporary statement pairs, and symbolic parameters ([N],
    [M], [KS]) closed by random bindings small enough that every loop's
    full iteration space is interpretable in microseconds.

    Every array subscript a generated program (or any transformation of
    it the harness exercises) can evaluate stays inside [dims1]/[dims2],
    so an out-of-bounds {!Env.Error} during a differential run is always
    a finding, never generator noise.

    Generation goes through {!QCheck2.Gen}, so counterexamples shrink
    for free: every choice is an [int_range] whose low end is the
    simplest alternative (shallowest nest, rectangular bounds, fewest
    statements). *)

type t = {
  block : Stmt.t list;  (** the program: optional [T = 0.0] preamble + one nest *)
  bindings : (string * int) list;
      (** closes the symbolic parameters, always [N], [M] and [KS] *)
  fill_seed : int;  (** base seed for the array data fills *)
}

(** What a program exercises, derived from its structure (not from the
    generation path, so shrunk counterexamples classify correctly). *)
type profile = {
  depth : int;
  rect : bool;  (** some non-outer loop has rectangular bounds *)
  triangular : bool;  (** some inner bound mentions an outer index *)
  trapezoidal : bool;  (** some loop bound carries MIN/MAX *)
  guarded : bool;  (** contains an IF *)
  straightline : bool;  (** no IFs: eligible for the dependence oracle *)
  uses_temp : bool;  (** uses the scalar temporary [T] *)
}

val classify : t -> profile

val farrays : (string * int) list
(** The REAL arrays every generated program may touch: name and rank. *)

val guard_array : string
(** The read-only array zero-guards test (["G"]); never written. *)

val temp_scalar : string
(** The REAL scalar temporary (["T"]). *)

val dims1 : (int * int) list
val dims2 : (int * int) list
(** Declaration bounds for rank-1 / rank-2 arrays, padded so every
    subscript reachable from generated programs is in bounds. *)

val gen : t QCheck2.Gen.t

val print : t -> string
(** Parseable mini-Fortran: a [!]-comment header carrying the bindings
    and fill seed, then the program text ({!Stmt.block_to_string}). *)
