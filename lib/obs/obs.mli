(** Observability: structured events, spans, decision tracing and
    runtime metrics for the whole stack.

    Zero-dependency by design (the runtime library sits below every
    other subsystem and links this).  The disabled state is the default
    and near-free: [enabled ()] is a single bool-ref read, so hot paths
    guard with [if Obs.enabled () then ...] and allocate nothing when no
    sink is installed.  Sinks are pluggable: null (default), a
    human-readable text log, JSON-lines, the Chrome [trace_event]
    format (load the file in [chrome://tracing] / Perfetto), an
    in-memory collector (used by [blockc explain] and the tests), and a
    [tee] combinator.

    Events carry a monotonic nanosecond timestamp, a category, the
    current span-nesting depth, and a list of key/value arguments.
    Decision events ([cat = "decision"]) are the transformation
    engine's evidence log: every strip-mine / interchange /
    distribution / index-set-split / IF-inspection / unroll-and-jam /
    commutativity step records whether it was applied or rejected and
    why. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type kind = Begin | End | Instant

type event = {
  name : string;
  cat : string;
  kind : kind;
  ts : int;  (** nanoseconds, non-decreasing *)
  depth : int;  (** span nesting depth at emission *)
  args : (string * value) list;
}

type sink

val null : sink
(** Drops everything.  The default; [enabled] is [false] under it. *)

val text : out_channel -> sink
(** One indented human-readable line per event. *)

val jsonl : out_channel -> sink
(** One JSON object per line (parseable by [Json_min]). *)

val chrome : out_channel -> sink
(** Chrome [trace_event] format: buffers events, writes the complete
    [{"traceEvents": [...]}] document on [flush]. *)

val memory : unit -> sink * (unit -> event list)
(** An in-memory collector and the function that reads back the events
    collected so far, in emission order. *)

val tee : sink -> sink -> sink

val set_sink : sink -> unit
(** Install a sink (flushes nothing; [flush] does).  Installing [null]
    disables tracing. *)

val current_sink : unit -> sink

val sink_of_name : string -> out_channel -> (sink, string) result
(** ["text" | "json" | "chrome"] — the CLI / env-var sink names. *)

val enabled : unit -> bool
val flush : unit -> unit

val set_clock : (unit -> int) -> unit
(** Replace the timestamp source (nanoseconds).  The default derives
    from [Sys.time]; timestamps are clamped to be non-decreasing. *)

val now_ns : unit -> int

val instant : ?cat:string -> ?args:(string * value) list -> string -> unit

val span : ?cat:string -> ?args:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [span name f] emits a [Begin]/[End] pair around [f ()] (also on
    exception) and tracks nesting depth. *)

val decision :
  transform:string ->
  target:string ->
  applied:bool ->
  reason:string ->
  ?evidence:(string * value) list ->
  unit ->
  unit
(** Record one transformation decision ([cat = "decision"]). *)

val decide :
  transform:string ->
  target:string ->
  ?evidence:(string * value) list ->
  ('a, string) result ->
  ('a, string) result
(** [decide r] records [r] as a decision — applied on [Ok], rejected
    with the error text as reason on [Error] — and returns [r]
    unchanged.  The transformation modules wrap their results with
    this. *)

val init_from_env : unit -> unit
(** Honour [BLOCKABILITY_TRACE=text|json|chrome[:PATH]]: install the
    named sink (writing to [PATH], or stderr when no path is given —
    [chrome] requires a path) and register an exit-time [flush].
    Unknown sink names warn on stderr and leave tracing disabled.
    Call once at program start; does nothing when the variable is
    unset. *)

(** Runtime metrics: cheap process-global counters, log2-bucket
    histograms and accumulating timers, safe to update from multiple
    domains (atomics).  Disabled by default; every update is gated on
    [enabled ()] so instrumented hot paths cost one bool-ref read and
    allocate nothing when metrics are off. *)
module Metrics : sig
  val enabled : unit -> bool
  val set_enabled : bool -> unit

  type counter

  val counter : string -> counter
  (** Find-or-create by name (names are a global registry). *)

  val add : counter -> int -> unit
  val incr : counter -> unit
  val count : counter -> int

  type histogram

  val histogram : string -> histogram
  val observe : histogram -> int -> unit
  (** Bucket [v] by power of two ([v <= 1], [<= 2], [<= 4], ...). *)

  val buckets : histogram -> (int * int) list
  (** [(upper_bound, count)] for the non-empty buckets, ascending. *)

  type timer

  val timer : string -> timer

  val record_ns : timer -> int -> unit
  val time : timer -> (unit -> 'a) -> 'a
  val total_ns : timer -> int
  val calls : timer -> int

  type gauge

  val gauge : string -> gauge
  (** A sampled level (queue depth, memo size) with a high-water mark;
      find-or-create by name like the other metric kinds. *)

  val set_gauge : gauge -> int -> unit
  (** Record the current level; the peak is updated lock-free. *)

  val gauge_value : gauge -> int
  val gauge_peak : gauge -> int

  val snapshot : unit -> (string * int) list
  (** Flat view of everything: ["name"] for counters,
      ["name.ns"]/["name.calls"] for timers, ["name.le_N"] for
      histogram buckets, ["name.value"]/["name.peak"] for gauges.
      Sorted by key. *)

  val report : unit -> string
  (** Human-readable multi-line rendering of [snapshot] plus derived
      rates (mean ns/call for timers). *)

  val reset : unit -> unit
  (** Zero all registered metrics (the registry itself persists). *)
end
