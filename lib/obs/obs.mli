(** Observability: structured events, spans, trace contexts, decision
    tracing, a flight recorder and runtime metrics for the whole stack.

    Depends only on the stdlib and [unix] (for the wall clock); the
    runtime library sits below every other subsystem and links this.
    The disabled state is the default and near-free: [enabled ()] is a
    single bool-ref read, so hot paths guard with
    [if Obs.enabled () then ...] and allocate nothing when no sink is
    installed.  Sinks are pluggable: null (default), a human-readable
    text log, JSON-lines, the Chrome [trace_event] format (load the
    file in [chrome://tracing] / Perfetto), an in-memory collector
    (used by [blockc explain] and the tests), the {!Recorder} ring, and
    a [tee] combinator.

    Events carry a monotonic nanosecond timestamp, a category, the
    emitting domain ([track]), the span-nesting depth {e of that
    domain} (depth is domain-local state — concurrent domains cannot
    corrupt each other's nesting), the active {!Ctx} trace/span ids,
    and a list of key/value arguments.  Decision events
    ([cat = "decision"]) are the transformation engine's evidence log:
    every strip-mine / interchange / distribution / index-set-split /
    IF-inspection / unroll-and-jam / commutativity step records whether
    it was applied or rejected and why. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type kind = Begin | End | Instant

type event = {
  name : string;
  cat : string;
  kind : kind;
  ts : int;  (** nanoseconds, non-decreasing per track *)
  depth : int;  (** span nesting depth of the emitting domain *)
  track : int;  (** emitting domain id *)
  trace : int;  (** trace id of the active {!Ctx}; [0] = no trace *)
  span_id : int;  (** span id of the active {!Ctx}; [0] = none *)
  parent : int;  (** parent span id; [0] = trace root *)
  args : (string * value) list;
}

(** Trace context: the request-scoped identity that stitches spans
    emitted on different domains into one trace.  A context is
    domain-local and propagated {e explicitly} across hops: the serve
    reader creates a {!fresh} root per request, {!Jobq.push} captures
    the submitter's context into the queued item, the worker lane
    restores it, and {!Parallel.for_} re-installs the caller's context
    in every lane (each chunk span then forks a child id).  [Obs.span]
    under an active context forks a child span id automatically, so
    Begin/End events carry their own identity plus their parent's. *)
module Ctx : sig
  type t = { trace_id : int; span_id : int; parent : int }

  val current : unit -> t option
  (** The calling domain's active context, if any. *)

  val fresh : unit -> t
  (** A new root context (trace id = span id, no parent).  Ids are
      process-unique. *)

  val with_ctx : t option -> (unit -> 'a) -> 'a
  (** [with_ctx c f] runs [f] with [c] installed as the calling
      domain's context, restoring the previous one afterwards (also on
      exception). *)

  val id_hex : int -> string
  (** Render an id the way the sinks and serve responses do. *)
end

type sink

val null : sink
(** Drops everything.  The default; [enabled] is [false] under it. *)

val text : out_channel -> sink
(** One indented human-readable line per event. *)

val jsonl : out_channel -> sink
(** One JSON object per line (parseable by [Json_min]); carries
    [track] and, under a trace, [trace]/[span]/[parent] hex ids. *)

val chrome : out_channel -> sink
(** Chrome [trace_event] format: buffers events, writes the complete
    [{"traceEvents": [...]}] document on [flush].  Each domain is its
    own [tid] track; trace/span ids ride in the event args. *)

val memory : unit -> sink * (unit -> event list)
(** An in-memory collector and the function that reads back the events
    collected so far, in emission order. *)

val tee : sink -> sink -> sink

val set_sink : sink -> unit
(** Install a sink (flushes nothing; [flush] does).  Installing [null]
    disables tracing. *)

val current_sink : unit -> sink

val sink_of_name : string -> out_channel -> (sink, string) result
(** ["text" | "json" | "chrome"] — the CLI / env-var sink names. *)

val enabled : unit -> bool
val flush : unit -> unit

val set_clock : (unit -> int) -> unit
(** Replace the timestamp source (nanoseconds).  The default is the
    wall clock ([Unix.gettimeofday], microsecond resolution — real
    time, unlike the CPU-time [Sys.time] it replaced, which collapsed
    sub-millisecond spans to zero); timestamps are clamped to be
    non-decreasing per domain. *)

val now_ns : unit -> int

val instant : ?cat:string -> ?args:(string * value) list -> string -> unit

val span : ?cat:string -> ?args:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [span name f] emits a [Begin]/[End] pair around [f ()] (also on
    exception), tracks the domain-local nesting depth, and — under an
    active {!Ctx} — forks a child span id for the pair's duration.
    While the {!Sampler} is running it additionally maintains the
    calling domain's live span-name stack (one cons per span). *)

val span_stack : unit -> string list
(** The calling domain's live span-name stack, innermost first.  Empty
    unless the {!Sampler} is (or was) running — the stack is only
    maintained while sampling to keep the common case free. *)

val decision :
  transform:string ->
  target:string ->
  applied:bool ->
  reason:string ->
  ?evidence:(string * value) list ->
  unit ->
  unit
(** Record one transformation decision ([cat = "decision"]). *)

val decide :
  transform:string ->
  target:string ->
  ?evidence:(string * value) list ->
  ('a, string) result ->
  ('a, string) result
(** [decide r] records [r] as a decision — applied on [Ok], rejected
    with the error text as reason on [Error] — and returns [r]
    unchanged.  The transformation modules wrap their results with
    this. *)

val init_from_env : unit -> unit
(** Honour [BLOCKABILITY_TRACE=text|json|chrome[:PATH]]: install the
    named sink (writing to [PATH], or stderr when no path is given —
    [chrome] requires a path) and register an exit-time [flush].
    Unknown sink names warn on stderr and leave tracing disabled.
    Call once at program start; does nothing when the variable is
    unset. *)

(** An always-available bounded ring of recent events — post-hoc
    visibility into failures without paying for full tracing.
    {!note} writes straight into the ring regardless of the installed
    sink or [enabled ()] (the serve path notes every request and every
    error); {!sink} additionally adapts the ring into a sink so
    span/instant traffic can be mirrored into it ("recorder only"
    mode).  The ring never touches the disabled-instant fast path, so
    the null sink stays allocation-free. *)
module Recorder : sig
  type ring
  (** A standalone ring, independent of the process-global one the
      module-level functions use. *)

  val create : ?capacity:int -> unit -> ring
  (** [create ()] takes its capacity (min 1) from [BLOCKC_RECORDER_CAP]
      when set to a positive integer, defaulting to 256; [~capacity]
      overrides both.  The process-global ring is created this way at
      module initialisation, so the env var sizes it at startup. *)

  val ring_capacity : ring -> int
  val record_to : ring -> event -> unit
  val recent_of : ring -> event list
  val sink_of : ring -> sink

  val capacity : unit -> int

  val set_capacity : int -> unit
  (** Resize (min 1) and clear the global ring.  Default capacity: 256,
      or [BLOCKC_RECORDER_CAP] at startup. *)

  val note : ?cat:string -> ?args:(string * value) list -> string -> unit
  (** Record an instant directly into the ring (never dropped by the
      enabled-gate; stamped with the caller's clock/ctx/track). *)

  val record : event -> unit

  val recent : unit -> event list
  (** Ring contents, oldest first. *)

  val clear : unit -> unit

  val sink : unit -> sink
  (** A sink writing every emitted event into the ring; installing it
      turns [enabled ()] on without any output channel. *)

  val to_lines : unit -> string list
  (** Human-readable one-line renderings of {!recent}. *)

  val dump : unit -> string
  (** {!to_lines} under a header, or [""] when the ring is empty. *)
end

(** Runtime metrics: cheap process-global counters, log-linear
    (HDR-style) histograms with derived quantiles, accumulating timers
    and gauges, safe to update from multiple domains (atomics).
    Disabled by default; every update is gated on [enabled ()] so
    instrumented hot paths cost one bool-ref read and allocate nothing
    when metrics are off. *)
module Metrics : sig
  val enabled : unit -> bool
  val set_enabled : bool -> unit

  val labelled : string -> (string * string) list -> string
  (** [labelled "serve.errors" [("class", "parse")]] =
      ["serve.errors{class=\"parse\"}"] — the naming convention that
      {!prometheus} renders as one metric family per base name with the
      label block attached to each sample. *)

  type counter

  val counter : ?help:string -> string -> counter
  (** Find-or-create by name (names are a global registry).  [?help]
      registers a doc string for the metric's {!prometheus} [# HELP]
      line, keyed by the label-free base name; the first registration
      wins. *)

  val add : counter -> int -> unit
  val incr : counter -> unit
  val count : counter -> int

  type histogram

  val histogram : ?help:string -> string -> histogram

  val observe : histogram -> int -> unit
  (** Log-linear bucketing: values [0..15] exact, then 16 linear
      sub-buckets per power-of-two octave (quantile quantization error
      < 1/16).  Negative values clamp to 0. *)

  val buckets : histogram -> (int * int) list
  (** [(upper_bound, count)] for the non-empty buckets, ascending. *)

  val percentile : histogram -> float -> int
  (** [percentile h q] for [q] in [0..1]: an upper bound on the value
      at that rank, clamped to the observed maximum; [0] when empty. *)

  val hist_count : histogram -> int
  val hist_sum : histogram -> int
  val hist_max : histogram -> int

  type timer

  val timer : ?help:string -> string -> timer

  val record_ns : timer -> int -> unit
  val time : timer -> (unit -> 'a) -> 'a
  val total_ns : timer -> int
  val calls : timer -> int

  type gauge

  val gauge : ?help:string -> string -> gauge
  (** A sampled level (queue depth, memo size) with a high-water mark;
      find-or-create by name like the other metric kinds. *)

  val set_gauge : gauge -> int -> unit
  (** Record the current level; the peak is updated lock-free. *)

  val gauge_value : gauge -> int
  val gauge_peak : gauge -> int

  val snapshot : unit -> (string * int) list
  (** Flat view of everything: ["name"] for counters,
      ["name.ns"]/["name.calls"] for timers, ["name.le_N"] buckets plus
      ["name.p50"/".p90"/".p99"/".count"/".sum"/".max"] for non-empty
      histograms, ["name.value"]/["name.peak"] for gauges.  Sorted by
      key. *)

  val prometheus : unit -> string
  (** Prometheus text exposition of the full registry: counters as
      [blockc_<name>_total], timers as [_ns_total]/[_calls_total]
      counter pairs, gauges as gauges (plus [_peak]), histograms as
      summaries with [quantile="0.5"/"0.9"/"0.99"] samples, [_sum],
      [_count] and a [_max] gauge.  Inline label blocks (see
      {!labelled}) are preserved, so every label set of one base name
      shares a family and a single [# TYPE] line.  Families whose base
      name was registered with [?help] get a [# HELP] line before
      their [# TYPE]. *)

  val report : unit -> string
  (** Human-readable multi-line rendering of the registry with derived
      rates (mean ns/call for timers) and histogram quantiles. *)

  val reset : unit -> unit
  (** Zero all registered metrics (the registry itself persists). *)
end

(** Continuous profiler: a ticker thread samples every registered
    domain's live span stack at a fixed rate and folds the
    observations into flamegraph-compatible [stack count] rows
    (outermost-first, [';']-joined — feed {!folded_text} straight to
    [flamegraph.pl] or speedscope).  Domains with an empty stack sample
    as [(idle)].  Sampled domains pay one cons per span while the
    sampler runs and nothing when it does not; the sampler reads the
    stacks racily (safe: the field holds an immutable list).

    The ticker is a systhread, not a domain: an extra domain — even a
    sleeping one — joins every stop-the-world minor collection in
    OCaml 5, which is ruinous on small machines, while a thread
    measures within noise.  The flip side: on a fully busy host domain
    the ticks land at thread yield points, so that one domain's
    effective self-sample rate can drop to the runtime's preemption
    tick (~20 Hz); other domains are always sampled at the full
    rate. *)
module Sampler : sig
  val default_hz : float
  (** 97 — prime, so the ticker does not alias with millisecond-period
      work. *)

  val start : ?hz:float -> unit -> unit
  (** Spawn the ticker thread (no-op when running).  Rate precedence:
      [?hz] (if positive), else [BLOCKC_PROFILE_HZ], else
      {!default_hz}.  Registers the calling domain for sampling as a
      side effect. *)

  val stop : unit -> unit
  (** Stop and join the ticker (no-op when not running).  Accumulated
      samples survive; span-stack maintenance turns off. *)

  val ensure : ?hz:float -> unit -> unit
  (** Idempotent {!start} — the first caller wins the rate. *)

  val init_from_env : unit -> unit
  (** Start sampling iff [BLOCKC_PROFILE_HZ] is set to a positive
      number. *)

  val running : unit -> bool

  val hz : unit -> float
  (** The configured rate of the current (or last) run. *)

  val samples : unit -> int
  (** Total per-domain observations folded so far. *)

  val reset : unit -> unit
  (** Drop accumulated samples (the ticker keeps running). *)

  val folded : unit -> (string * int) list
  (** [(stack, count)] rows, most-sampled first (ties by name). *)

  val folded_text : unit -> string
  (** One ["stack count\n"] line per row — the flamegraph "folded"
      format. *)
end
