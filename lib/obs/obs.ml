type value = Str of string | Int of int | Float of float | Bool of bool

type kind = Begin | End | Instant

type event = {
  name : string;
  cat : string;
  kind : kind;
  ts : int;
  depth : int;
  track : int;
  trace : int;
  span_id : int;
  parent : int;
  args : (string * value) list;
}

type sink = { emit : event -> unit; flush_sink : unit -> unit }

let null = { emit = (fun _ -> ()); flush_sink = (fun () -> ()) }

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

(* Wall clock at microsecond resolution.  [Sys.time] (the original
   default) is process CPU time with centisecond-ish granularity:
   sub-millisecond serve spans all collapsed to a zero-length interval.
   Benchmarks still install a true monotonic clock via [set_clock];
   wall time is good enough for traces and request latencies, and
   per-domain clamping (below) keeps each track non-decreasing. *)
let clock = ref (fun () -> int_of_float (Unix.gettimeofday () *. 1e9))
let set_clock f = clock := f

(* ------------------------------------------------------------------ *)
(* Trace context and per-domain state                                  *)
(* ------------------------------------------------------------------ *)

type ctx = { trace_id : int; span_id : int; parent : int }

(* Span depth, the active trace context and the monotonicity clamp are
   all domain-local: two domains emitting spans concurrently must not
   corrupt each other's nesting (the pre-context implementation kept
   one global depth counter and raced).

   [d_stack] is the live span-name stack (innermost first), maintained
   only while the {!Sampler} is running: the field always holds an
   immutable list, so the sampler domain can read it without a lock —
   a racy read sees either the pre- or post-push stack, never a torn
   value, which is exactly the semantics a statistical profiler wants. *)
type dstate = {
  mutable d_depth : int;
  mutable d_ctx : ctx option;
  mutable d_last_ts : int;
  mutable d_stack : string list;
}

(* Cross-domain registry of every domain's [dstate]: DLS is only
   reachable from its own domain, so the sampler needs this side table.
   Registered once per domain at DLS init; entries for terminated
   domains linger harmlessly (their stacks drained to [] when the last
   span closed, so they just sample as idle). *)
let registry_mu = Mutex.create ()
let registry : (int * dstate) list ref = ref []

let dls : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { d_depth = 0; d_ctx = None; d_last_ts = 0; d_stack = [] } in
      let id = (Domain.self () :> int) in
      Mutex.lock registry_mu;
      registry := (id, s) :: !registry;
      Mutex.unlock registry_mu;
      s)

let dstate () = Domain.DLS.get dls

let now_ns () =
  let s = dstate () in
  let t = !clock () in
  if t < s.d_last_ts then s.d_last_ts
  else begin
    s.d_last_ts <- t;
    t
  end

(* Process-unique span/trace ids: an atomic counter salted per process,
   bit-mixed so ids from different processes or restarts don't visually
   collide.  The multiplier and xorshift are invertible mod 2^63, so
   distinct counter values always yield distinct ids. *)
let id_counter = Atomic.make 1

let id_salt =
  int_of_float (Unix.gettimeofday () *. 1e6) lxor (Unix.getpid () * 0x9E3779B9)

let gen_id () =
  let x = Atomic.fetch_and_add id_counter 1 + id_salt in
  let z = x * 0x2545F4914F6CDD1D in
  let z = z lxor (z lsr 29) in
  let z = (z * 0x27220A95) + 0x9E3779B9 in
  let z = (z lxor (z lsr 32)) land max_int in
  if z = 0 then 1 else z

module Ctx = struct
  type t = ctx = { trace_id : int; span_id : int; parent : int }

  let current () = (dstate ()).d_ctx

  let fresh () =
    let id = gen_id () in
    { trace_id = id; span_id = id; parent = 0 }

  let with_ctx c f =
    let s = dstate () in
    let saved = s.d_ctx in
    s.d_ctx <- c;
    Fun.protect ~finally:(fun () -> s.d_ctx <- saved) f

  let id_hex = Printf.sprintf "%012x"
end

(* ------------------------------------------------------------------ *)
(* Global state                                                        *)
(* ------------------------------------------------------------------ *)

let current = ref null
let is_enabled = ref false
let mu = Mutex.create ()

let set_sink s =
  current := s;
  is_enabled := s != null

let current_sink () = !current
let enabled () = !is_enabled

let emit ev =
  let s = !current in
  if s != null then begin
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) (fun () -> s.emit ev)
  end

let flush () =
  let s = !current in
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) (fun () -> s.flush_sink ())

(* ------------------------------------------------------------------ *)
(* Emission API                                                        *)
(* ------------------------------------------------------------------ *)

let mk ~kind ~cat ~args name =
  let s = dstate () in
  let trace, span_id, parent =
    match s.d_ctx with
    | Some c -> (c.trace_id, c.span_id, c.parent)
    | None -> (0, 0, 0)
  in
  {
    name;
    cat;
    kind;
    ts = now_ns ();
    depth = s.d_depth;
    track = (Domain.self () :> int);
    trace;
    span_id;
    parent;
    args;
  }

let instant ?(cat = "event") ?(args = []) name =
  if !is_enabled then emit (mk ~kind:Instant ~cat ~args name)

(* Set by [Sampler.start]/[Sampler.stop]: when true, [span] pushes the
   span name onto the domain's live stack (one cons + two stores on the
   hot path) so the ticker domain can attribute samples.  Kept separate
   from [is_enabled] — sampling does not require a sink. *)
let stack_on = ref false

let span ?(cat = "span") ?(args = []) name f =
  let emit_on = !is_enabled and stacking = !stack_on in
  if not (emit_on || stacking) then f ()
  else begin
    let s = dstate () in
    let saved_ctx = s.d_ctx in
    let saved_stack = s.d_stack in
    if stacking then s.d_stack <- name :: saved_stack;
    if emit_on then begin
      (* Fork a child span id under an active trace so the Begin/End
         pair carries its own identity and its parent's. *)
      (match saved_ctx with
      | Some c ->
          s.d_ctx <-
            Some { trace_id = c.trace_id; span_id = gen_id (); parent = c.span_id }
      | None -> ());
      emit (mk ~kind:Begin ~cat ~args name);
      s.d_depth <- s.d_depth + 1
    end;
    let finish () =
      if emit_on then begin
        s.d_depth <- s.d_depth - 1;
        emit (mk ~kind:End ~cat ~args:[] name);
        s.d_ctx <- saved_ctx
      end;
      if stacking then s.d_stack <- saved_stack
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let span_stack () = (dstate ()).d_stack

let decision ~transform ~target ~applied ~reason ?(evidence = []) () =
  if !is_enabled then
    emit
      (mk ~kind:Instant ~cat:"decision"
         ~args:
           (("target", Str target) :: ("applied", Bool applied)
           :: ("reason", Str reason) :: evidence)
         transform)

let decide ~transform ~target ?(evidence = []) (r : ('a, string) result) =
  if !is_enabled then
    (match r with
    | Ok _ -> decision ~transform ~target ~applied:true ~reason:"legal" ~evidence ()
    | Error m -> decision ~transform ~target ~applied:false ~reason:m ~evidence ());
  r

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let string_of_value = function
  | Str s -> s
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_value buf = function
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape s);
      Buffer.add_char buf '"'
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Bool b -> Buffer.add_string buf (string_of_bool b)

let json_of_args buf args =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape k);
      Buffer.add_string buf "\":";
      json_of_value buf v)
    args;
  Buffer.add_char buf '}'

let kind_name = function Begin -> "begin" | End -> "end" | Instant -> "instant"

(* Trace-context args shared by the jsonl and chrome renderings. *)
let ctx_args ev =
  if ev.trace = 0 then []
  else
    ("trace", Str (Ctx.id_hex ev.trace))
    :: ("span", Str (Ctx.id_hex ev.span_id))
    :: (if ev.parent = 0 then [] else [ ("parent", Str (Ctx.id_hex ev.parent)) ])

let text oc =
  let emit ev =
    let indent = String.make (2 * ev.depth) ' ' in
    let marker = match ev.kind with Begin -> ">" | End -> "<" | Instant -> "." in
    Printf.fprintf oc "%12dns %-9s %s%s %s" ev.ts ev.cat indent marker ev.name;
    List.iter
      (fun (k, v) -> Printf.fprintf oc " %s=%s" k (string_of_value v))
      ev.args;
    output_char oc '\n'
  in
  { emit; flush_sink = (fun () -> Stdlib.flush oc) }

let jsonl oc =
  let emit ev =
    let buf = Buffer.create 128 in
    Buffer.add_string buf "{\"name\":\"";
    Buffer.add_string buf (json_escape ev.name);
    Buffer.add_string buf "\",\"cat\":\"";
    Buffer.add_string buf (json_escape ev.cat);
    Buffer.add_string buf "\",\"kind\":\"";
    Buffer.add_string buf (kind_name ev.kind);
    Buffer.add_string buf
      (Printf.sprintf "\",\"ts\":%d,\"depth\":%d,\"track\":%d" ev.ts ev.depth
         ev.track);
    if ev.trace <> 0 then begin
      Buffer.add_string buf
        (Printf.sprintf ",\"trace\":\"%s\",\"span\":\"%s\"" (Ctx.id_hex ev.trace)
           (Ctx.id_hex ev.span_id));
      if ev.parent <> 0 then
        Buffer.add_string buf
          (Printf.sprintf ",\"parent\":\"%s\"" (Ctx.id_hex ev.parent))
    end;
    Buffer.add_string buf ",\"args\":";
    json_of_args buf ev.args;
    Buffer.add_char buf '}';
    output_string oc (Buffer.contents buf);
    output_char oc '\n'
  in
  { emit; flush_sink = (fun () -> Stdlib.flush oc) }

let chrome oc =
  let events = ref [] in
  let emit ev = events := ev :: !events in
  let flush_sink () =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"traceEvents\":[";
    List.iteri
      (fun i ev ->
        if i > 0 then Buffer.add_char buf ',';
        let ph = match ev.kind with Begin -> "B" | End -> "E" | Instant -> "i" in
        (* One Chrome "thread" track per emitting domain (+1 keeps the
           main domain on the historical tid 1). *)
        Buffer.add_string buf
          (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
             (json_escape ev.name) (json_escape ev.cat) ph
             (float_of_int ev.ts /. 1e3)
             (ev.track + 1));
        (match ev.kind with
        | Instant -> Buffer.add_string buf ",\"s\":\"t\""
        | Begin | End -> ());
        Buffer.add_string buf ",\"args\":";
        json_of_args buf (ctx_args ev @ ev.args);
        Buffer.add_char buf '}')
      (List.rev !events);
    Buffer.add_string buf "]}";
    output_string oc (Buffer.contents buf);
    output_char oc '\n';
    Stdlib.flush oc
  in
  { emit; flush_sink }

let memory () =
  let acc = ref [] in
  ( { emit = (fun ev -> acc := ev :: !acc); flush_sink = (fun () -> ()) },
    fun () -> List.rev !acc )

let tee a b =
  {
    emit =
      (fun ev ->
        a.emit ev;
        b.emit ev);
    flush_sink =
      (fun () ->
        a.flush_sink ();
        b.flush_sink ());
  }

let sink_of_name name oc =
  match name with
  | "text" -> Ok (text oc)
  | "json" -> Ok (jsonl oc)
  | "chrome" -> Ok (chrome oc)
  | _ -> Error (Printf.sprintf "unknown trace sink %S (expected text, json or chrome)" name)

let init_from_env () =
  match Sys.getenv_opt "BLOCKABILITY_TRACE" with
  | None | Some "" -> ()
  | Some spec -> (
      let name, path =
        match String.index_opt spec ':' with
        | Some i ->
            ( String.sub spec 0 i,
              Some (String.sub spec (i + 1) (String.length spec - i - 1)) )
        | None -> (spec, None)
      in
      if name = "chrome" && path = None then
        prerr_endline
          "BLOCKABILITY_TRACE: chrome needs an output file (chrome:PATH); tracing disabled"
      else
        let oc =
          match path with
          | None -> Some stderr
          | Some p -> (
              match open_out p with
              | oc -> Some oc
              | exception Sys_error m ->
                  Printf.eprintf "BLOCKABILITY_TRACE: cannot open %s: %s\n%!" p m;
                  None)
        in
        match oc with
        | None -> ()
        | Some oc -> (
            match sink_of_name name oc with
            | Ok s ->
                set_sink s;
                at_exit (fun () ->
                    flush ();
                    if oc != stderr then close_out_noerr oc)
            | Error m -> Printf.eprintf "BLOCKABILITY_TRACE: %s\n%!" m))

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

module Recorder = struct
  (* A bounded ring of recent events, independent of the sink and of
     [enabled ()]: [note] always lands in the ring, so the serve path
     can afford to record every request and flush the recent history
     when something goes wrong, without paying for full tracing.  The
     ring is mutex-protected (writers are rare and the critical section
     is a few stores); the disabled-instant fast path in [instant] is
     untouched, so the zero-allocation guarantee of the null sink
     still holds.

     Rings are first-class ([create]); the module-level functions
     operate on one process-global ring whose initial capacity honours
     [BLOCKC_RECORDER_CAP] (default 256). *)
  type ring = {
    rmu : Mutex.t;
    mutable rbuf : event option array;
    mutable rhead : int;
    mutable rcount : int;
  }

  let default_capacity () =
    match
      Option.bind (Sys.getenv_opt "BLOCKC_RECORDER_CAP") int_of_string_opt
    with
    | Some n when n >= 1 -> n
    | _ -> 256

  let create ?capacity () =
    let cap =
      match capacity with Some c -> max 1 c | None -> default_capacity ()
    in
    { rmu = Mutex.create (); rbuf = Array.make cap None; rhead = 0; rcount = 0 }

  let global = create ()

  let locked_in r f =
    Mutex.lock r.rmu;
    Fun.protect ~finally:(fun () -> Mutex.unlock r.rmu) f

  let locked f = locked_in global f

  let ring_capacity r = locked_in r (fun () -> Array.length r.rbuf)
  let capacity () = ring_capacity global

  let resize r n =
    locked_in r (fun () ->
        r.rbuf <- Array.make (max 1 n) None;
        r.rhead <- 0;
        r.rcount <- 0)

  let set_capacity n = resize global n

  let clear () =
    locked (fun () ->
        Array.fill global.rbuf 0 (Array.length global.rbuf) None;
        global.rhead <- 0;
        global.rcount <- 0)

  let record_to r ev =
    locked_in r (fun () ->
        let b = r.rbuf in
        let cap = Array.length b in
        b.(r.rhead) <- Some ev;
        r.rhead <- (r.rhead + 1) mod cap;
        if r.rcount < cap then r.rcount <- r.rcount + 1)

  let record ev = record_to global ev

  let note ?(cat = "recorder") ?(args = []) name =
    record (mk ~kind:Instant ~cat ~args name)

  let recent_of r =
    locked_in r (fun () ->
        let b = r.rbuf in
        let cap = Array.length b in
        let out = ref [] in
        for i = r.rcount downto 1 do
          (* oldest slot is head - count (mod cap); walk forward *)
          match b.((r.rhead - i + (2 * cap)) mod cap) with
          | Some ev -> out := ev :: !out
          | None -> ()
        done;
        List.rev !out)

  let recent () = recent_of global

  let sink_of r = { emit = record_to r; flush_sink = (fun () -> ()) }
  let sink () = sink_of global

  let to_lines () =
    List.map
      (fun ev ->
        let b = Buffer.create 64 in
        Buffer.add_string b
          (Printf.sprintf "%12dns %-9s t%d %s %s" ev.ts ev.cat ev.track
             (match ev.kind with Begin -> ">" | End -> "<" | Instant -> ".")
             ev.name);
        List.iter
          (fun (k, v) ->
            Buffer.add_string b (Printf.sprintf " %s=%s" k (string_of_value v)))
          (ctx_args ev @ ev.args);
        Buffer.contents b)
      (recent ())

  let dump () =
    match to_lines () with
    | [] -> ""
    | lines ->
        "flight recorder (oldest first):\n"
        ^ String.concat "\n" (List.map (fun l -> "  " ^ l) lines)
        ^ "\n"
end

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  let on = ref false
  let enabled () = !on
  let set_enabled b = on := b

  type counter = { cname : string; n : int Atomic.t }

  type histogram = {
    hname : string;
    hbuckets : int Atomic.t array;
    hcount : int Atomic.t;
    hsum : int Atomic.t;
    hmax : int Atomic.t;
  }

  type timer = { tname : string; total : int Atomic.t; tcalls : int Atomic.t }
  type gauge = { gname : string; gvalue : int Atomic.t; gpeak : int Atomic.t }

  (* Log-linear (HDR-style) buckets: values 0..15 are exact, then each
     power-of-two octave is split into 16 linear sub-buckets, bounding
     the quantile quantization error at ~6.25% while spanning the full
     63-bit range in under a thousand buckets. *)
  let sub_bits = 4
  let sub_count = 1 lsl sub_bits
  let max_group = 61
  let n_buckets = sub_count + ((max_group - sub_bits + 1) * sub_count)

  let msb v =
    let rec go v i = if v <= 1 then i else go (v lsr 1) (i + 1) in
    go v 0

  let bucket_of v =
    if v < 0 then 0
    else if v < sub_count then v
    else
      let g = min max_group (msb v) in
      let shift = g - sub_bits in
      let sub = (v lsr shift) - sub_count in
      sub_count + (shift * sub_count) + min (sub_count - 1) sub

  (* Inclusive upper bound of bucket [i]. *)
  let bound_of i =
    if i < sub_count then i
    else
      let k = i - sub_count in
      let shift = k / sub_count and sub = k mod sub_count in
      ((sub + sub_count + 1) lsl shift) - 1

  let reg_mu = Mutex.create ()
  let counters : counter list ref = ref []
  let histograms : histogram list ref = ref []
  let timers : timer list ref = ref []
  let gauges : gauge list ref = ref []

  (* Per-metric doc strings, keyed by the label-free base name so every
     label set of one family shares one HELP line (first registration
     wins).  Written under [reg_mu]; read by [prometheus] which also
     holds the registry lists stable. *)
  let helps : (string, string) Hashtbl.t = Hashtbl.create 32

  let base_of name =
    match String.index_opt name '{' with
    | Some i -> String.sub name 0 i
    | None -> name

  let register_help name help =
    match help with
    | None -> ()
    | Some h ->
        let base = base_of name in
        if not (Hashtbl.mem helps base) then Hashtbl.add helps base h

  let labelled name labels =
    match labels with
    | [] -> name
    | _ ->
        name ^ "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
        ^ "}"

  let counter ?help name =
    Mutex.lock reg_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock reg_mu)
      (fun () ->
        register_help name help;
        match List.find_opt (fun c -> String.equal c.cname name) !counters with
        | Some c -> c
        | None ->
            let c = { cname = name; n = Atomic.make 0 } in
            counters := c :: !counters;
            c)

  let add c k = if !on then ignore (Atomic.fetch_and_add c.n k)
  let incr c = add c 1
  let count c = Atomic.get c.n

  let histogram ?help name =
    Mutex.lock reg_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock reg_mu)
      (fun () ->
        register_help name help;
        match List.find_opt (fun h -> String.equal h.hname name) !histograms with
        | Some h -> h
        | None ->
            let h =
              {
                hname = name;
                hbuckets = Array.init n_buckets (fun _ -> Atomic.make 0);
                hcount = Atomic.make 0;
                hsum = Atomic.make 0;
                hmax = Atomic.make 0;
              }
            in
            histograms := h :: !histograms;
            h)

  let observe h v =
    if !on then begin
      let v = max 0 v in
      ignore (Atomic.fetch_and_add h.hbuckets.(bucket_of v) 1);
      ignore (Atomic.fetch_and_add h.hcount 1);
      ignore (Atomic.fetch_and_add h.hsum v);
      let rec bump () =
        let m = Atomic.get h.hmax in
        if v > m && not (Atomic.compare_and_set h.hmax m v) then bump ()
      in
      bump ()
    end

  let buckets h =
    let out = ref [] in
    for i = n_buckets - 1 downto 0 do
      let n = Atomic.get h.hbuckets.(i) in
      if n > 0 then out := (bound_of i, n) :: !out
    done;
    !out

  let hist_count h = Atomic.get h.hcount
  let hist_sum h = Atomic.get h.hsum
  let hist_max h = Atomic.get h.hmax

  let percentile h q =
    let total = hist_count h in
    if total = 0 then 0
    else begin
      let q = Float.min 1.0 (Float.max 0.0 q) in
      let rank = min total (max 1 (int_of_float (ceil (q *. float_of_int total)))) in
      let res = ref (hist_max h) in
      let cum = ref 0 in
      (try
         for i = 0 to n_buckets - 1 do
           let n = Atomic.get h.hbuckets.(i) in
           if n > 0 then begin
             cum := !cum + n;
             if !cum >= rank then begin
               (* the bucket bound can overshoot the largest value seen *)
               res := min (bound_of i) (hist_max h);
               raise Exit
             end
           end
         done
       with Exit -> ());
      !res
    end

  let timer ?help name =
    Mutex.lock reg_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock reg_mu)
      (fun () ->
        register_help name help;
        match List.find_opt (fun t -> String.equal t.tname name) !timers with
        | Some t -> t
        | None ->
            let t = { tname = name; total = Atomic.make 0; tcalls = Atomic.make 0 } in
            timers := t :: !timers;
            t)

  let record_ns t ns =
    if !on then begin
      ignore (Atomic.fetch_and_add t.total ns);
      ignore (Atomic.fetch_and_add t.tcalls 1)
    end

  let time t f =
    if not !on then f ()
    else begin
      let t0 = !clock () in
      let finish () = record_ns t (!clock () - t0) in
      match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e
    end

  let total_ns t = Atomic.get t.total
  let calls t = Atomic.get t.tcalls

  let gauge ?help name =
    Mutex.lock reg_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock reg_mu)
      (fun () ->
        register_help name help;
        match List.find_opt (fun g -> String.equal g.gname name) !gauges with
        | Some g -> g
        | None ->
            let g =
              { gname = name; gvalue = Atomic.make 0; gpeak = Atomic.make 0 }
            in
            gauges := g :: !gauges;
            g)

  let set_gauge g v =
    if !on then begin
      Atomic.set g.gvalue v;
      (* lock-free watermark: lose the race, retry against the new peak *)
      let rec bump () =
        let p = Atomic.get g.gpeak in
        if v > p && not (Atomic.compare_and_set g.gpeak p v) then bump ()
      in
      bump ()
    end

  let gauge_value g = Atomic.get g.gvalue
  let gauge_peak g = Atomic.get g.gpeak

  let quantiles = [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]

  let snapshot () =
    let cs = List.map (fun c -> (c.cname, Atomic.get c.n)) !counters in
    let ts =
      List.concat_map
        (fun t -> [ (t.tname ^ ".ns", total_ns t); (t.tname ^ ".calls", calls t) ])
        !timers
    in
    let hs =
      List.concat_map
        (fun h ->
          if hist_count h = 0 then []
          else
            List.map
              (fun (bound, n) -> (Printf.sprintf "%s.le_%d" h.hname bound, n))
              (buckets h)
            @ List.map (fun (k, q) -> (h.hname ^ "." ^ k, percentile h q)) quantiles
            @ [
                (h.hname ^ ".count", hist_count h);
                (h.hname ^ ".sum", hist_sum h);
                (h.hname ^ ".max", hist_max h);
              ])
        !histograms
    in
    let gs =
      List.concat_map
        (fun g ->
          [ (g.gname ^ ".value", gauge_value g); (g.gname ^ ".peak", gauge_peak g) ])
        !gauges
    in
    List.sort (fun (a, _) (b, _) -> String.compare a b) (cs @ ts @ hs @ gs)

  (* ---- Prometheus text exposition ---- *)

  (* A metric name may carry labels inline — ["serve.errors{class=\"parse\"}"]
     (see [labelled]); the base name is sanitized into the Prometheus
     grammar and the label block is kept verbatim, so every label set of
     one base name lands in one metric family. *)
  let split_labels name =
    match String.index_opt name '{' with
    | Some i -> (String.sub name 0 i, String.sub name i (String.length name - i))
    | None -> (name, "")

  let sanitize base =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      base

  let merge_label labels extra =
    if labels = "" then "{" ^ extra ^ "}"
    else String.sub labels 0 (String.length labels - 1) ^ "," ^ extra ^ "}"

  let prometheus () =
    let buf = Buffer.create 1024 in
    let typed = Hashtbl.create 32 in
    (* HELP precedes TYPE for a family, once, sourced from the doc
       string given at registration (keyed by the label-free base name,
       so suffix families like _peak share the base's text). *)
    let single_line s =
      String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s
    in
    let typeline ?base family kind =
      if not (Hashtbl.mem typed family) then begin
        Hashtbl.add typed family ();
        (match Option.bind base (Hashtbl.find_opt helps) with
        | Some h ->
            Buffer.add_string buf
              (Printf.sprintf "# HELP %s %s\n" family (single_line h))
        | None -> ());
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" family kind)
      end
    in
    let family name suffix =
      let base, labels = split_labels name in
      ("blockc_" ^ sanitize base ^ suffix, labels)
    in
    let line fam labels v =
      Buffer.add_string buf (Printf.sprintf "%s%s %d\n" fam labels v)
    in
    let by_name n a b = String.compare (n a) (n b) in
    List.iter
      (fun c ->
        let fam, labels = family c.cname "_total" in
        typeline ~base:(base_of c.cname) fam "counter";
        line fam labels (Atomic.get c.n))
      (List.sort (by_name (fun c -> c.cname)) !counters);
    List.iter
      (fun t ->
        let fam_ns, labels = family t.tname "_ns_total" in
        typeline ~base:(base_of t.tname) fam_ns "counter";
        line fam_ns labels (total_ns t);
        let fam_calls, _ = family t.tname "_calls_total" in
        typeline ~base:(base_of t.tname) fam_calls "counter";
        line fam_calls labels (calls t))
      (List.sort (by_name (fun t -> t.tname)) !timers);
    List.iter
      (fun g ->
        let fam, labels = family g.gname "" in
        typeline ~base:(base_of g.gname) fam "gauge";
        line fam labels (gauge_value g);
        let fam_peak, _ = family g.gname "_peak" in
        typeline ~base:(base_of g.gname) fam_peak "gauge";
        line fam_peak labels (gauge_peak g))
      (List.sort (by_name (fun g -> g.gname)) !gauges);
    List.iter
      (fun h ->
        if hist_count h > 0 then begin
          let fam, labels = family h.hname "" in
          typeline ~base:(base_of h.hname) fam "summary";
          List.iter
            (fun (_, q) ->
              let ql = merge_label labels (Printf.sprintf "quantile=\"%g\"" q) in
              line fam ql (percentile h q))
            quantiles;
          line (fam ^ "_sum") labels (hist_sum h);
          line (fam ^ "_count") labels (hist_count h);
          let fam_max, _ = family h.hname "_max" in
          typeline ~base:(base_of h.hname) fam_max "gauge";
          line fam_max labels (hist_max h)
        end)
      (List.sort (by_name (fun h -> h.hname)) !histograms);
    Buffer.contents buf

  let report () =
    let buf = Buffer.create 512 in
    Buffer.add_string buf "runtime metrics:\n";
    List.iter
      (fun c -> Buffer.add_string buf (Printf.sprintf "  %-32s %12d\n" c.cname (Atomic.get c.n)))
      (List.sort (fun a b -> String.compare a.cname b.cname) !counters);
    List.iter
      (fun t ->
        let calls = calls t and ns = total_ns t in
        Buffer.add_string buf
          (Printf.sprintf "  %-32s %12dns over %d call(s)%s\n" t.tname ns calls
             (if calls > 0 then Printf.sprintf " (%.0fns/call)" (float_of_int ns /. float_of_int calls)
              else "")))
      (List.sort (fun a b -> String.compare a.tname b.tname) !timers);
    List.iter
      (fun g ->
        Buffer.add_string buf
          (Printf.sprintf "  %-32s %12d (peak %d)\n" g.gname (gauge_value g)
             (gauge_peak g)))
      (List.sort (fun a b -> String.compare a.gname b.gname) !gauges);
    List.iter
      (fun h ->
        if hist_count h > 0 then begin
          Buffer.add_string buf
            (Printf.sprintf "  %s: count %d  p50 %d  p90 %d  p99 %d  max %d\n"
               h.hname (hist_count h) (percentile h 0.5) (percentile h 0.9)
               (percentile h 0.99) (hist_max h));
          List.iter
            (fun (bound, n) ->
              Buffer.add_string buf (Printf.sprintf "    <= %-10d %12d\n" bound n))
            (buckets h)
        end)
      (List.sort (fun a b -> String.compare a.hname b.hname) !histograms);
    Buffer.contents buf

  let reset () =
    Mutex.lock reg_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock reg_mu)
      (fun () ->
        List.iter (fun c -> Atomic.set c.n 0) !counters;
        List.iter (fun t -> Atomic.set t.total 0; Atomic.set t.tcalls 0) !timers;
        List.iter
          (fun h ->
            Array.iter (fun b -> Atomic.set b 0) h.hbuckets;
            Atomic.set h.hcount 0;
            Atomic.set h.hsum 0;
            Atomic.set h.hmax 0)
          !histograms;
        List.iter
          (fun g ->
            Atomic.set g.gvalue 0;
            Atomic.set g.gpeak 0)
          !gauges)
end

module Sampler = struct
  (* Continuous profiler: a ticker systhread wakes up at a fixed rate
     and snapshots every registered domain's current span stack (see
     [registry] / [stack_on] above), folding each observation into a
     [stack -> count] table in flamegraph "folded" form —
     outermost;...;leaf.  The sampled domains pay only the cost of
     maintaining [d_stack] (a cons per span when sampling is on); the
     reads are racy by design, which is safe in OCaml's memory model:
     [d_stack] holds an immutable list, so a torn read is impossible
     and a stale one merely attributes the tick to a neighbouring
     span — noise that statistical profiles tolerate.  Stacks are
     keyed outermost-first, joined with ';', matching flamegraph.pl
     and speedscope input.

     The ticker is a [Thread], NOT a [Domain], deliberately: in OCaml 5
     every additional domain — even one asleep in [Unix.sleepf] —
     participates in each stop-the-world minor collection via its
     backup thread, and on small machines that handshake dominates
     allocation-heavy workloads (measured 15x on a 1-core container;
     a systhread ticker measures within noise of no sampler at all).
     The thread shares its host domain's runtime lock, so on a fully
     busy host domain ticks land at yield points (at worst the ~50ms
     preemption tick) — an effective rate floor that statistical
     profiles tolerate; other domains are sampled at the full rate
     regardless, through the registry side table. *)

  let default_hz = 97.

  let env_hz () =
    match
      Option.bind (Sys.getenv_opt "BLOCKC_PROFILE_HZ") float_of_string_opt
    with
    | Some hz when hz > 0. -> Some hz
    | _ -> None

  let mu = Mutex.create ()
  let counts : (string, int ref) Hashtbl.t = Hashtbl.create 64
  let ticks = ref 0
  let cur_hz = ref default_hz
  let stop_flag = Atomic.make false
  let ticker : Thread.t option ref = ref None

  let tick () =
    Mutex.lock registry_mu;
    let doms = !registry in
    Mutex.unlock registry_mu;
    Mutex.lock mu;
    incr ticks;
    List.iter
      (fun (_, s) ->
        let key =
          match s.d_stack with
          | [] -> "(idle)"
          | st -> String.concat ";" (List.rev st)
        in
        match Hashtbl.find_opt counts key with
        | Some r -> incr r
        | None -> Hashtbl.add counts key (ref 1))
      doms;
    Mutex.unlock mu

  let running () = !ticker <> None
  let hz () = !cur_hz

  let samples () =
    Mutex.lock mu;
    let n = Hashtbl.fold (fun _ r acc -> acc + !r) counts 0 in
    Mutex.unlock mu;
    n

  let reset () =
    Mutex.lock mu;
    Hashtbl.reset counts;
    ticks := 0;
    Mutex.unlock mu

  let start ?hz () =
    if not (running ()) then begin
      let rate =
        match hz with
        | Some h when h > 0. -> h
        | _ -> ( match env_hz () with Some h -> h | None -> default_hz)
      in
      cur_hz := rate;
      stack_on := true;
      Atomic.set stop_flag false;
      (* make sure the calling domain is in the registry even if it has
         never emitted a span yet — otherwise an idle process samples
         nothing at all *)
      ignore (dstate ());
      let period = 1. /. rate in
      ticker :=
        Some
          (Thread.create
             (fun () ->
               while not (Atomic.get stop_flag) do
                 tick ();
                 Unix.sleepf period
               done)
             ())
    end

  let stop () =
    match !ticker with
    | None -> ()
    | Some t ->
        Atomic.set stop_flag true;
        Thread.join t;
        ticker := None;
        stack_on := false

  (* Idempotent start for the serve path: first caller wins the rate. *)
  let ensure ?hz () = if not (running ()) then start ?hz ()

  let init_from_env () =
    match env_hz () with Some hz -> ensure ~hz () | None -> ()

  let folded () =
    Mutex.lock mu;
    let rows = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counts [] in
    Mutex.unlock mu;
    List.sort
      (fun (a, na) (b, nb) ->
        match compare nb na with 0 -> String.compare a b | c -> c)
      rows

  let folded_text () =
    let buf = Buffer.create 256 in
    List.iter
      (fun (k, n) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" k n))
      (folded ());
    Buffer.contents buf
end
