type value = Str of string | Int of int | Float of float | Bool of bool

type kind = Begin | End | Instant

type event = {
  name : string;
  cat : string;
  kind : kind;
  ts : int;
  depth : int;
  args : (string * value) list;
}

type sink = { emit : event -> unit; flush_sink : unit -> unit }

let null = { emit = (fun _ -> ()); flush_sink = (fun () -> ()) }

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

(* [Sys.time] is process CPU time: coarse, but monotone, stdlib-only and
   good enough to order a derivation trace.  Benchmarks install a real
   monotonic clock via [set_clock]. *)
let clock = ref (fun () -> int_of_float (Sys.time () *. 1e9))
let set_clock f = clock := f

let last_ts = ref 0

let now_ns () =
  let t = !clock () in
  if t < !last_ts then !last_ts
  else begin
    last_ts := t;
    t
  end

(* ------------------------------------------------------------------ *)
(* Global state                                                        *)
(* ------------------------------------------------------------------ *)

let current = ref null
let is_enabled = ref false
let depth = ref 0
let mu = Mutex.create ()

let set_sink s =
  current := s;
  is_enabled := s != null

let current_sink () = !current
let enabled () = !is_enabled

let emit ev =
  let s = !current in
  if s != null then begin
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) (fun () -> s.emit ev)
  end

let flush () =
  let s = !current in
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) (fun () -> s.flush_sink ())

(* ------------------------------------------------------------------ *)
(* Emission API                                                        *)
(* ------------------------------------------------------------------ *)

let instant ?(cat = "event") ?(args = []) name =
  if !is_enabled then
    emit { name; cat; kind = Instant; ts = now_ns (); depth = !depth; args }

let span ?(cat = "span") ?(args = []) name f =
  if not !is_enabled then f ()
  else begin
    emit { name; cat; kind = Begin; ts = now_ns (); depth = !depth; args };
    incr depth;
    let finish () =
      decr depth;
      emit { name; cat; kind = End; ts = now_ns (); depth = !depth; args = [] }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let decision ~transform ~target ~applied ~reason ?(evidence = []) () =
  if !is_enabled then
    emit
      {
        name = transform;
        cat = "decision";
        kind = Instant;
        ts = now_ns ();
        depth = !depth;
        args =
          ("target", Str target) :: ("applied", Bool applied)
          :: ("reason", Str reason) :: evidence;
      }

let decide ~transform ~target ?(evidence = []) (r : ('a, string) result) =
  if !is_enabled then
    (match r with
    | Ok _ -> decision ~transform ~target ~applied:true ~reason:"legal" ~evidence ()
    | Error m -> decision ~transform ~target ~applied:false ~reason:m ~evidence ());
  r

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let string_of_value = function
  | Str s -> s
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_value buf = function
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape s);
      Buffer.add_char buf '"'
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Bool b -> Buffer.add_string buf (string_of_bool b)

let json_of_args buf args =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape k);
      Buffer.add_string buf "\":";
      json_of_value buf v)
    args;
  Buffer.add_char buf '}'

let kind_name = function Begin -> "begin" | End -> "end" | Instant -> "instant"

let text oc =
  let emit ev =
    let indent = String.make (2 * ev.depth) ' ' in
    let marker = match ev.kind with Begin -> ">" | End -> "<" | Instant -> "." in
    Printf.fprintf oc "%12dns %-9s %s%s %s" ev.ts ev.cat indent marker ev.name;
    List.iter
      (fun (k, v) -> Printf.fprintf oc " %s=%s" k (string_of_value v))
      ev.args;
    output_char oc '\n'
  in
  { emit; flush_sink = (fun () -> Stdlib.flush oc) }

let jsonl oc =
  let emit ev =
    let buf = Buffer.create 128 in
    Buffer.add_string buf "{\"name\":\"";
    Buffer.add_string buf (json_escape ev.name);
    Buffer.add_string buf "\",\"cat\":\"";
    Buffer.add_string buf (json_escape ev.cat);
    Buffer.add_string buf "\",\"kind\":\"";
    Buffer.add_string buf (kind_name ev.kind);
    Buffer.add_string buf (Printf.sprintf "\",\"ts\":%d,\"depth\":%d,\"args\":" ev.ts ev.depth);
    json_of_args buf ev.args;
    Buffer.add_char buf '}';
    output_string oc (Buffer.contents buf);
    output_char oc '\n'
  in
  { emit; flush_sink = (fun () -> Stdlib.flush oc) }

let chrome oc =
  let events = ref [] in
  let emit ev = events := ev :: !events in
  let flush_sink () =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"traceEvents\":[";
    List.iteri
      (fun i ev ->
        if i > 0 then Buffer.add_char buf ',';
        let ph = match ev.kind with Begin -> "B" | End -> "E" | Instant -> "i" in
        Buffer.add_string buf
          (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":1"
             (json_escape ev.name) (json_escape ev.cat) ph
             (float_of_int ev.ts /. 1e3));
        (match ev.kind with
        | Instant -> Buffer.add_string buf ",\"s\":\"t\""
        | Begin | End -> ());
        Buffer.add_string buf ",\"args\":";
        json_of_args buf ev.args;
        Buffer.add_char buf '}')
      (List.rev !events);
    Buffer.add_string buf "]}";
    output_string oc (Buffer.contents buf);
    output_char oc '\n';
    Stdlib.flush oc
  in
  { emit; flush_sink }

let memory () =
  let acc = ref [] in
  ( { emit = (fun ev -> acc := ev :: !acc); flush_sink = (fun () -> ()) },
    fun () -> List.rev !acc )

let tee a b =
  {
    emit =
      (fun ev ->
        a.emit ev;
        b.emit ev);
    flush_sink =
      (fun () ->
        a.flush_sink ();
        b.flush_sink ());
  }

let sink_of_name name oc =
  match name with
  | "text" -> Ok (text oc)
  | "json" -> Ok (jsonl oc)
  | "chrome" -> Ok (chrome oc)
  | _ -> Error (Printf.sprintf "unknown trace sink %S (expected text, json or chrome)" name)

let init_from_env () =
  match Sys.getenv_opt "BLOCKABILITY_TRACE" with
  | None | Some "" -> ()
  | Some spec -> (
      let name, path =
        match String.index_opt spec ':' with
        | Some i ->
            ( String.sub spec 0 i,
              Some (String.sub spec (i + 1) (String.length spec - i - 1)) )
        | None -> (spec, None)
      in
      if name = "chrome" && path = None then
        prerr_endline
          "BLOCKABILITY_TRACE: chrome needs an output file (chrome:PATH); tracing disabled"
      else
        let oc =
          match path with
          | None -> Some stderr
          | Some p -> (
              match open_out p with
              | oc -> Some oc
              | exception Sys_error m ->
                  Printf.eprintf "BLOCKABILITY_TRACE: cannot open %s: %s\n%!" p m;
                  None)
        in
        match oc with
        | None -> ()
        | Some oc -> (
            match sink_of_name name oc with
            | Ok s ->
                set_sink s;
                at_exit (fun () ->
                    flush ();
                    if oc != stderr then close_out_noerr oc)
            | Error m -> Printf.eprintf "BLOCKABILITY_TRACE: %s\n%!" m))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  let on = ref false
  let enabled () = !on
  let set_enabled b = on := b

  type counter = { cname : string; n : int Atomic.t }
  type histogram = { hname : string; hbuckets : int Atomic.t array }
  type timer = { tname : string; total : int Atomic.t; tcalls : int Atomic.t }
  type gauge = { gname : string; gvalue : int Atomic.t; gpeak : int Atomic.t }

  (* 2^0 .. 2^30, plus an overflow bucket. *)
  let n_buckets = 32

  let reg_mu = Mutex.create ()
  let counters : counter list ref = ref []
  let histograms : histogram list ref = ref []
  let timers : timer list ref = ref []
  let gauges : gauge list ref = ref []

  let counter name =
    Mutex.lock reg_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock reg_mu)
      (fun () ->
        match List.find_opt (fun c -> String.equal c.cname name) !counters with
        | Some c -> c
        | None ->
            let c = { cname = name; n = Atomic.make 0 } in
            counters := c :: !counters;
            c)

  let add c k = if !on then ignore (Atomic.fetch_and_add c.n k)
  let incr c = add c 1
  let count c = Atomic.get c.n

  let histogram name =
    Mutex.lock reg_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock reg_mu)
      (fun () ->
        match List.find_opt (fun h -> String.equal h.hname name) !histograms with
        | Some h -> h
        | None ->
            let h =
              { hname = name; hbuckets = Array.init n_buckets (fun _ -> Atomic.make 0) }
            in
            histograms := h :: !histograms;
            h)

  let bucket_of v =
    let rec go i bound = if v <= bound || i = n_buckets - 1 then i else go (i + 1) (bound * 2) in
    if v <= 1 then 0 else go 0 1

  let observe h v = if !on then ignore (Atomic.fetch_and_add h.hbuckets.(bucket_of v) 1)

  let buckets h =
    let out = ref [] in
    for i = n_buckets - 1 downto 0 do
      let n = Atomic.get h.hbuckets.(i) in
      if n > 0 then out := (1 lsl i, n) :: !out
    done;
    !out

  let timer name =
    Mutex.lock reg_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock reg_mu)
      (fun () ->
        match List.find_opt (fun t -> String.equal t.tname name) !timers with
        | Some t -> t
        | None ->
            let t = { tname = name; total = Atomic.make 0; tcalls = Atomic.make 0 } in
            timers := t :: !timers;
            t)

  let record_ns t ns =
    if !on then begin
      ignore (Atomic.fetch_and_add t.total ns);
      ignore (Atomic.fetch_and_add t.tcalls 1)
    end

  let time t f =
    if not !on then f ()
    else begin
      let t0 = !clock () in
      let finish () = record_ns t (!clock () - t0) in
      match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e
    end

  let total_ns t = Atomic.get t.total
  let calls t = Atomic.get t.tcalls

  let gauge name =
    Mutex.lock reg_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock reg_mu)
      (fun () ->
        match List.find_opt (fun g -> String.equal g.gname name) !gauges with
        | Some g -> g
        | None ->
            let g =
              { gname = name; gvalue = Atomic.make 0; gpeak = Atomic.make 0 }
            in
            gauges := g :: !gauges;
            g)

  let set_gauge g v =
    if !on then begin
      Atomic.set g.gvalue v;
      (* lock-free watermark: lose the race, retry against the new peak *)
      let rec bump () =
        let p = Atomic.get g.gpeak in
        if v > p && not (Atomic.compare_and_set g.gpeak p v) then bump ()
      in
      bump ()
    end

  let gauge_value g = Atomic.get g.gvalue
  let gauge_peak g = Atomic.get g.gpeak

  let snapshot () =
    let cs = List.map (fun c -> (c.cname, Atomic.get c.n)) !counters in
    let ts =
      List.concat_map
        (fun t -> [ (t.tname ^ ".ns", total_ns t); (t.tname ^ ".calls", calls t) ])
        !timers
    in
    let hs =
      List.concat_map
        (fun h ->
          List.map
            (fun (bound, n) -> (Printf.sprintf "%s.le_%d" h.hname bound, n))
            (buckets h))
        !histograms
    in
    let gs =
      List.concat_map
        (fun g ->
          [ (g.gname ^ ".value", gauge_value g); (g.gname ^ ".peak", gauge_peak g) ])
        !gauges
    in
    List.sort (fun (a, _) (b, _) -> String.compare a b) (cs @ ts @ hs @ gs)

  let report () =
    let buf = Buffer.create 512 in
    Buffer.add_string buf "runtime metrics:\n";
    List.iter
      (fun c -> Buffer.add_string buf (Printf.sprintf "  %-32s %12d\n" c.cname (Atomic.get c.n)))
      (List.sort (fun a b -> String.compare a.cname b.cname) !counters);
    List.iter
      (fun t ->
        let calls = calls t and ns = total_ns t in
        Buffer.add_string buf
          (Printf.sprintf "  %-32s %12dns over %d call(s)%s\n" t.tname ns calls
             (if calls > 0 then Printf.sprintf " (%.0fns/call)" (float_of_int ns /. float_of_int calls)
              else "")))
      (List.sort (fun a b -> String.compare a.tname b.tname) !timers);
    List.iter
      (fun g ->
        Buffer.add_string buf
          (Printf.sprintf "  %-32s %12d (peak %d)\n" g.gname (gauge_value g)
             (gauge_peak g)))
      (List.sort (fun a b -> String.compare a.gname b.gname) !gauges);
    List.iter
      (fun h ->
        match buckets h with
        | [] -> ()
        | bs ->
            Buffer.add_string buf (Printf.sprintf "  %s:\n" h.hname);
            List.iter
              (fun (bound, n) ->
                Buffer.add_string buf (Printf.sprintf "    <= %-10d %12d\n" bound n))
              bs)
      (List.sort (fun a b -> String.compare a.hname b.hname) !histograms);
    Buffer.contents buf

  let reset () =
    Mutex.lock reg_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock reg_mu)
      (fun () ->
        List.iter (fun c -> Atomic.set c.n 0) !counters;
        List.iter (fun t -> Atomic.set t.total 0; Atomic.set t.tcalls 0) !timers;
        List.iter (fun h -> Array.iter (fun b -> Atomic.set b 0) h.hbuckets) !histograms;
        List.iter
          (fun g ->
            Atomic.set g.gvalue 0;
            Atomic.set g.gpeak 0)
          !gauges)
end
