open Builder

let point_loop : Stmt.loop =
  let vn = v "N" and vk = v "K" and vi = v "I" and vj = v "J" in
  let root = set2 "A" vk vk (sqrt_ (a2 "A" vk vk)) in
  let scale =
    do_ "I" (vk +! i 1) vn [ set2 "A" vi vk (a2 "A" vi vk /. a2 "A" vk vk) ]
  in
  let update =
    do_ "J" (vk +! i 1) vn
      [
        do_ "I" vj vn
          [ set2 "A" vi vj (a2 "A" vi vj -. (a2 "A" vi vk *. a2 "A" vj vk)) ];
      ]
  in
  match do_ "K" (i 1) vn [ root; scale; update ] with
  | Stmt.Loop l -> l
  | Stmt.Assign _ | Stmt.Iassign _ | Stmt.If _ -> assert false

let kernel : Kernel_def.t =
  {
    name = "cholesky";
    description = "Cholesky factorization (lower triangle, in place)";
    block = [ Stmt.Loop point_loop ];
    params = [ "N" ];
    setup =
      (fun env ~bindings ~seed ->
        let n = List.assoc "N" bindings in
        Env.add_farray env "A" [ (1, n); (1, n) ];
        (* symmetric positive definite: M^T M + n*I, built in place *)
        let rng = Lcg.create seed in
        let m = Array.init n (fun _ -> Array.init n (fun _ -> Stdlib.( -. ) (Lcg.float rng 1.0) 0.5)) in
        for r = 1 to n do
          for c = 1 to n do
            let acc = ref 0.0 in
            for k = 0 to n - 1 do
              acc := Stdlib.( +. ) !acc (Stdlib.( *. ) m.(k).(r - 1) m.(k).(c - 1))
            done;
            Env.set_f env "A" [ r; c ]
              (if r = c then Stdlib.( +. ) !acc (float_of_int n) else !acc)
          done
        done);
    traced = [ "A" ];
    shapes = [ ("A", [ (i 1, v "N"); (i 1, v "N") ]) ];
  }
