(** Native guarded matrix multiply for the §4 table (T2).

    [C += A * B] where zero entries of [B] are skipped by a guard, as in
    the paper's SGEMM fragment.  Variants:

    - [original] — guard on [B(K,J)] around the inner column update;
    - [uj] — unroll-and-jam of the K loop by 2 with the guard moved into
      the innermost loop (the paper's strawman, expected to be slower);
    - [uj_if] — IF-inspection of the K loop, then unroll-and-jam by 2
      inside the recorded ranges (the paper's winner);
    - [uj_if_par] — [uj_if] with the J loop fanned out over a domain
      pool: column J writes only C(:,J), so columns are independent and
      each chunk carries its own inspector scratch.

    All variants accumulate each [C(I,J)] over the same nonzero [K]s in
    the same order, so results are bit-identical (including the parallel
    variant, whatever the schedule). *)

val make_b : ?seed:int -> n:int -> freq_pct:int -> unit -> Linalg.mat
(** [B] with about [freq_pct]% nonzero entries arranged in runs of ~4
    along each column (the run structure is what gives IF-inspection
    ranges to find). *)

val original : a:Linalg.mat -> b:Linalg.mat -> c:Linalg.mat -> unit
val uj : a:Linalg.mat -> b:Linalg.mat -> c:Linalg.mat -> unit
val uj_if : a:Linalg.mat -> b:Linalg.mat -> c:Linalg.mat -> unit

val uj_if_par :
  ?pool:Pool.t -> a:Linalg.mat -> b:Linalg.mat -> c:Linalg.mat -> unit -> unit
