type t = {
  name : string;
  description : string;
  block : Stmt.t list;
  params : string list;
  setup : Env.t -> bindings:(string * int) list -> seed:int -> unit;
  traced : string list;
  shapes : (string * (Expr.t * Expr.t) list) list;
}

(* [shapes] is metadata about what [setup] declares; a mismatch would
   silently disable (or worse, mislead) the codegen bounds proofs, so
   check them against the environment whenever one is built. *)
let check_shapes k env ~bindings =
  let lookup v =
    match List.assoc_opt v bindings with
    | Some n -> n
    | None -> invalid_arg ("kernel " ^ k.name ^ ": shape uses unbound " ^ v)
  in
  let no_arr name _ =
    invalid_arg ("kernel " ^ k.name ^ ": shape uses array " ^ name)
  in
  List.iter
    (fun (arr, dims) ->
      let declared = Env.farray_dims env arr in
      let stated =
        List.map (fun (lo, hi) -> (Expr.eval lookup no_arr lo, Expr.eval lookup no_arr hi)) dims
      in
      if declared <> stated then
        invalid_arg ("kernel " ^ k.name ^ ": declared shape of " ^ arr
                     ^ " does not match setup"))
    k.shapes

let make_env k ~bindings ~seed =
  let env = Env.create () in
  List.iter
    (fun p ->
      match List.assoc_opt p bindings with
      | Some v -> Env.set_iscalar env p v
      | None -> invalid_arg ("kernel " ^ k.name ^ ": missing parameter " ^ p))
    k.params;
  (* Bind any extra parameters the caller supplied too (block sizes). *)
  List.iter (fun (p, v) -> Env.set_iscalar env p v) bindings;
  k.setup env ~bindings ~seed;
  check_shapes k env ~bindings;
  env

let run k ~bindings ~seed =
  let env = make_env k ~bindings ~seed in
  Exec.run env k.block;
  env

let run_block k block ~bindings ~seed =
  let env = make_env k ~bindings ~seed in
  Exec.run env block;
  env

let equivalent ?(tol = 0.0) ?(extra = []) k block ~bindings ~seed =
  let reference = run k ~bindings ~seed in
  let candidate = run_block k block ~bindings:(extra @ bindings) ~seed in
  match Env.diff ~only:k.traced ~tol reference candidate with
  | None -> Ok ()
  | Some msg -> Error (k.name ^ ": transformed kernel diverges: " ^ msg)
