(** Common packaging for the paper's kernels in IR form.

    A kernel bundles its IR with everything needed to execute it: the
    symbolic parameters to bind, the arrays to declare and fill, and the
    arrays whose accesses the cache tracer should follow. *)

type t = {
  name : string;
  description : string;
  block : Stmt.t list;
  params : string list;  (** symbolic parameters, e.g. [["N"]] *)
  setup : Env.t -> bindings:(string * int) list -> seed:int -> unit;
      (** declare and initialize the arrays (and any scalars) *)
  traced : string list;  (** REAL arrays relevant to cache behaviour *)
  shapes : (string * (Expr.t * Expr.t) list) list;
      (** symbolic per-dimension [(lo, hi)] bounds of the arrays [setup]
          declares, as expressions over [params] — what the native code
          generator's in-bounds proofs reason from.  Checked against the
          actual declarations whenever an environment is built, so the
          metadata cannot drift from [setup]. *)
}

val make_env : t -> bindings:(string * int) list -> seed:int -> Env.t
(** Fresh environment with parameters bound as INTEGER scalars and
    arrays initialized by [setup]. *)

val run : t -> bindings:(string * int) list -> seed:int -> Env.t
(** Build an environment and interpret the kernel in it. *)

val run_block :
  t -> Stmt.t list -> bindings:(string * int) list -> seed:int -> Env.t
(** Like {!run} but executing a transformed variant of the kernel's IR
    against the same initial data. *)

val equivalent :
  ?tol:float ->
  ?extra:(string * int) list ->
  t ->
  Stmt.t list ->
  bindings:(string * int) list ->
  seed:int ->
  (unit, string) result
(** Interpret the kernel and the transformed block from identical
    initial environments and compare the kernel's [traced] arrays in the
    final memory states (scratch arrays a transformation introduces are
    ignored).  [extra] binds parameters only the transformed code needs
    (e.g. the block size). *)
