(** Native LU-with-partial-pivoting variants for the §5.2 table (T4).

    - [point] — Figure 7 plus the pivot search;
    - [blocked] — the Figure-8 block form, derivable only with
      commutativity knowledge (row swaps commute with whole-column
      updates): the point algorithm runs on the panel columns, the
      trailing update is deferred per block;
    - [blocked_opt] — Figure 8 plus unroll-and-jam and scalar
      replacement on the trailing update ("1+");
    - [blocked_par] — "1+" with the deferred trailing update fanned out
      over [pool] (default {!Pool.default}).  Legal for the same §5.2
      commutativity reason the block form exists at all: every row swap
      of the block happens in the serial panel, so the parallel trailing
      columns see a fixed row order and are mutually independent.  Chunk
      starts are aligned to the jam width, so the result is bitwise
      equal to [blocked_opt] and deterministic across runs and pool
      sizes.

    All variants produce bit-identical factors (the commuted operations
    perform the same floating-point operations on the same values). *)

val point : Linalg.mat -> unit
val blocked : block:int -> Linalg.mat -> unit
val blocked_opt : block:int -> Linalg.mat -> unit
val blocked_par : ?pool:Pool.t -> block:int -> Linalg.mat -> unit
