(** Native convolution kernels for the §3.2 table (T1).

    Arrays are 0-based here: [f1.(k)] for k in [0, n1], [f3.(i)] for i in
    [0, n3], and [f2] is stored with offset [n2] so that logical index
    [i - k] (in [[-n2, n2]]) maps to [f2.(i - k + n2)].

    The [*_opt] variants perform what the paper's transformation
    sequence produces: index-set splitting of the MIN/MAX bounds,
    unroll-and-jam of the outer loop by 4, and scalar replacement of the
    [F3] accumulators.  They are bit-identical to the originals (each
    output element accumulates the same terms in the same order). *)

type series = {
  f1 : float array;
  f2 : float array;  (** offset by n2 *)
  f3 : float array;
  dt : float;
  n1 : int;
  n2 : int;
  n3 : int;
}

val make : ?seed:int -> n1:int -> n2:int -> n3:int -> unit -> series
val reset : series -> unit
(** Zero the output [f3]. *)

val aconv : series -> unit
val aconv_opt : series -> unit

val aconv_opt_par : ?pool:Pool.t -> series -> unit
(** [aconv_opt] with each split region's row range fanned out over
    [pool] (default {!Pool.default}).  Every output row is written by
    exactly one chunk and chunk starts are aligned to the jam width, so
    the result is bitwise equal to [aconv_opt] and deterministic across
    runs and pool sizes. *)

val conv : series -> unit
val conv_opt : series -> unit
