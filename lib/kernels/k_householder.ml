open Builder

(* Point Householder QR (§5.3): one reflector per column K, applied to
   the whole trailing matrix.  M x N, M >= N; V holds the current
   reflector, S/S2/NRM/B are accumulator scalars.  The sign choice is
   simplified (v1 = a11 + ||a||), which is all the dependence structure
   needs — the blockability question never reaches numerics. *)
let point_loop : Stmt.loop =
  let vk = v "K" and vi = v "I" and vj = v "J" in
  let norm_loop =
    do_ "I" vk (v "M") [ setf "S" (fv "S" +. (a2 "A" vi vk *. a2 "A" vi vk)) ]
  in
  let copy_loop = do_ "I" (vk +! i 1) (v "M") [ set1 "V" vi (a2 "A" vi vk) ] in
  let apply_loop =
    do_ "J" vk (v "N")
      [
        setf "S2" (fc 0.0);
        do_ "I" vk (v "M") [ setf "S2" (fv "S2" +. (a1 "V" vi *. a2 "A" vi vj)) ];
        do_ "I" vk (v "M")
          [ set2 "A" vi vj (a2 "A" vi vj -. (a1 "V" vi *. (fv "S2" /. fv "B"))) ];
      ]
  in
  match
    do_ "K" (i 1) (v "N")
      [
        setf "S" (fc 0.0);
        norm_loop;
        setf "NRM" (sqrt_ (fv "S"));
        set1 "V" vk (a2 "A" vk vk +. fv "NRM");
        copy_loop;
        setf "B" (fv "NRM" *. (fv "NRM" +. a2 "A" vk vk));
        if_ (fne (fv "B") (fc 0.0)) [ apply_loop ];
      ]
  with
  | Stmt.Loop l -> l
  | Stmt.Assign _ | Stmt.Iassign _ | Stmt.If _ -> assert false

let setup env ~bindings ~seed =
  let m = List.assoc "M" bindings and n = List.assoc "N" bindings in
  Env.add_farray env "A" [ (1, m); (1, n) ];
  Env.add_farray env "V" [ (1, m) ];
  let rng = Lcg.create seed in
  Env.fill_farray env "A" (fun _ -> Stdlib.( -. ) (Lcg.float rng 2.0) 1.0)

let kernel : Kernel_def.t =
  {
    name = "householder";
    description = "QR decomposition with Householder reflections (point algorithm)";
    block = [ Stmt.Loop point_loop ];
    params = [ "M"; "N" ];
    setup;
    traced = [ "A" ];
    shapes =
      [ ("A", [ (i 1, v "M"); (i 1, v "N") ]); ("V", [ (i 1, v "M") ]) ];
  }
