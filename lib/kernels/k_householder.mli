(** Point Householder QR in the IR (§5.3) — the paper's *non-blockable*
    kernel.

    The block form (compact-WY, see {!N_householder}) computes the
    triangular factor [T], computation and storage with no counterpart
    in this point code; the paper's point is that no dependence-based
    transformation can derive it.  This IR form exists so the compiler
    driver can *attempt* the derivation and the observability layer can
    record exactly where and why it is rejected
    ([blockc explain householder]). *)

val point_loop : Stmt.loop

val kernel : Kernel_def.t
