type series = {
  f1 : float array;
  f2 : float array;
  f3 : float array;
  dt : float;
  n1 : int;
  n2 : int;
  n3 : int;
}

let make ?(seed = 1) ~n1 ~n2 ~n3 () =
  let rng = Lcg.create seed in
  {
    f1 = Array.init (n1 + 1) (fun _ -> Lcg.float rng 1.0);
    f2 = Array.init (2 * n2 + n3 + 1) (fun _ -> Lcg.float rng 1.0);
    f3 = Array.make (n3 + 1) 0.0;
    dt = 0.01;
    n1;
    n2;
    n3;
  }

let reset s = Array.fill s.f3 0 (Array.length s.f3) 0.0

(* Hot loops index the series through unchecked accessors; [check]
   asserts the index-space bounds once per entry point: K stays in
   [0, n1], I in [0, n3], and I - K + n2 in [0, 2*n2 + n3]. *)
let ug = Array.unsafe_get
let us = Array.unsafe_set

let check s =
  assert (Array.length s.f1 >= s.n1 + 1);
  assert (Array.length s.f2 >= (2 * s.n2) + s.n3 + 1);
  assert (Array.length s.f3 >= s.n3 + 1)

let aconv s =
  check s;
  let { f1; f2; f3; dt; n1; n2; n3 } = s in
  for i = 0 to n3 do
    let hi = min (i + n2) n1 in
    let acc = ref (ug f3 i) in
    for k = i to hi do
      acc := !acc +. (dt *. ug f1 k *. ug f2 (i - k + n2))
    done;
    us f3 i !acc
  done

let conv s =
  check s;
  let { f1; f2; f3; dt; n1; n2; n3 } = s in
  for i = 0 to n3 do
    let lo = max 0 (i - n2) and hi = min i n1 in
    let acc = ref (ug f3 i) in
    for k = lo to hi do
      acc := !acc +. (dt *. ug f1 k *. ug f2 (i - k + n2))
    done;
    us f3 i !acc
  done

(* Unroll-and-jam by 4 over rows [i0 .. i1] whose per-row k range is
   [lo i, hi i]: per block, the intersection rectangle is jammed with the
   four accumulators in scalars (sharing each [dt * f1.(k)] load), and
   the head/tail triangles run per row.  Per-row accumulation order is
   unchanged (head, rectangle, tail are consecutive k sub-ranges), so the
   result is bit-identical to the plain loops. *)
let jam4 ~dt ~f1 ~f2 ~f3 ~n2 ~i0 ~i1 ~lo ~hi =
  let plain_row r klo khi =
    if klo <= khi then begin
      let acc = ref (ug f3 r) in
      for k = klo to khi do
        acc := !acc +. (dt *. ug f1 k *. ug f2 (r - k + n2))
      done;
      us f3 r !acc
    end
  in
  let i = ref i0 in
  while !i + 3 <= i1 do
    let r0 = !i in
    let rect_lo =
      max (max (lo r0) (lo (r0 + 1))) (max (lo (r0 + 2)) (lo (r0 + 3)))
    in
    let rect_hi =
      min (min (hi r0) (hi (r0 + 1))) (min (hi (r0 + 2)) (hi (r0 + 3)))
    in
    if rect_hi - rect_lo >= 4 then begin
      for r = r0 to r0 + 3 do
        plain_row r (lo r) (min (hi r) (rect_lo - 1))
      done;
      let s0 = ref (ug f3 r0)
      and s1 = ref (ug f3 (r0 + 1))
      and s2 = ref (ug f3 (r0 + 2))
      and s3 = ref (ug f3 (r0 + 3)) in
      for k = rect_lo to rect_hi do
        let x = dt *. ug f1 k in
        s0 := !s0 +. (x *. ug f2 (r0 - k + n2));
        s1 := !s1 +. (x *. ug f2 (r0 + 1 - k + n2));
        s2 := !s2 +. (x *. ug f2 (r0 + 2 - k + n2));
        s3 := !s3 +. (x *. ug f2 (r0 + 3 - k + n2))
      done;
      us f3 r0 !s0;
      us f3 (r0 + 1) !s1;
      us f3 (r0 + 2) !s2;
      us f3 (r0 + 3) !s3;
      for r = r0 to r0 + 3 do
        plain_row r (max (lo r) (rect_hi + 1)) (hi r)
      done
    end
    else
      for r = r0 to r0 + 3 do
        plain_row r (lo r) (hi r)
      done;
    i := !i + 4
  done;
  for r = !i to i1 do
    plain_row r (lo r) (hi r)
  done

let aconv_opt s =
  check s;
  let { f1; f2; f3; dt; n1; n2; n3 } = s in
  (* Index-set split at the trapezoid crossover I = N1 - N2. *)
  let split = min n3 (n1 - n2) in
  (* Rhomboidal part: K in [I, I+N2]. *)
  jam4 ~dt ~f1 ~f2 ~f3 ~n2 ~i0:0 ~i1:split
    ~lo:(fun i -> i)
    ~hi:(fun i -> i + n2);
  (* Triangular part: K in [I, N1]. *)
  jam4 ~dt ~f1 ~f2 ~f3 ~n2 ~i0:(max 0 (split + 1)) ~i1:n3
    ~lo:(fun i -> i)
    ~hi:(fun _ -> n1)

(* Parallel [aconv_opt]: every output row I is written exactly once, so
   the two split regions each fan their row range out over the pool.
   Chunk starts are aligned to the jam width (4), so each chunk's
   group-of-4 decomposition coincides with the serial one and the result
   is bitwise equal to [aconv_opt].  The triangular region's rows get
   cheaper as I grows — the guided tail keeps lanes balanced. *)
let aconv_opt_par ?pool s =
  check s;
  let { f1; f2; f3; dt; n1; n2; n3 } = s in
  let split = min n3 (n1 - n2) in
  let region ~i0 ~i1 ~lo ~hi =
    Parallel.for_ ?pool ~chunking:(Parallel.Guided { min_chunk = 16 })
      ~align:4 ~lo:i0 ~hi:i1
      (fun c0 c1 -> jam4 ~dt ~f1 ~f2 ~f3 ~n2 ~i0:c0 ~i1:c1 ~lo ~hi)
  in
  region ~i0:0 ~i1:split ~lo:(fun i -> i) ~hi:(fun i -> i + n2);
  region ~i0:(max 0 (split + 1)) ~i1:n3 ~lo:(fun i -> i) ~hi:(fun _ -> n1)

let conv_opt s =
  check s;
  let { f1; f2; f3; dt; n1; n2; n3 } = s in
  (* Full MIN/MAX removal gives four regions (paper §3.2). *)
  let s1 = min (min n3 n1) (n2 - 1) in
  jam4 ~dt ~f1 ~f2 ~f3 ~n2 ~i0:0 ~i1:s1 ~lo:(fun _ -> 0) ~hi:(fun i -> i);
  jam4 ~dt ~f1 ~f2 ~f3 ~n2
    ~i0:(max 0 (s1 + 1))
    ~i1:(min n3 n1)
    ~lo:(fun i -> i - n2)
    ~hi:(fun i -> i);
  let s3lo = max 0 (min n3 n1 + 1) in
  let s3hi = min n3 (n2 - 1) in
  jam4 ~dt ~f1 ~f2 ~f3 ~n2 ~i0:s3lo ~i1:s3hi ~lo:(fun _ -> 0) ~hi:(fun _ -> n1);
  jam4 ~dt ~f1 ~f2 ~f3 ~n2
    ~i0:(max s3lo (s3hi + 1))
    ~i1:n3
    ~lo:(fun i -> i - n2)
    ~hi:(fun _ -> n1)
