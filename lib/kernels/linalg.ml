type mat = { m : int; n : int; a : float array }

let create m n = { m; n; a = Array.make (m * n) 0.0 }
let idx t i j = ((j - 1) * t.m) + (i - 1)
let get t i j = t.a.(idx t i j)
let set t i j x = t.a.(idx t i j) <- x

let random ?(seed = 1) m n =
  let t = create m n in
  let rng = Lcg.create seed in
  for k = 0 to (m * n) - 1 do
    t.a.(k) <- Lcg.float rng 2.0 -. 1.0
  done;
  t

let random_diag_dominant ?(seed = 1) n =
  let t = random ~seed n n in
  for i = 1 to n do
    set t i i (get t i i +. float_of_int n)
  done;
  t

let copy_mat t = { t with a = Array.copy t.a }

(* The comparison/norm loops run over every element on every property
   test; a single length assert up front lets the body use unchecked
   reads. *)
let max_abs_diff x y =
  assert (x.m = y.m && x.n = y.n && Array.length x.a = Array.length y.a);
  let worst = ref 0.0 in
  for k = 0 to Array.length x.a - 1 do
    let d = Float.abs (Array.unsafe_get x.a k -. Array.unsafe_get y.a k) in
    if d > !worst then worst := d
  done;
  !worst

let frobenius t =
  let acc = ref 0.0 in
  for k = 0 to Array.length t.a - 1 do
    let x = Array.unsafe_get t.a k in
    acc := !acc +. (x *. x)
  done;
  sqrt !acc

let vec_random ?(seed = 1) n =
  let rng = Lcg.create seed in
  Array.init n (fun _ -> Lcg.float rng 1.0)

let max_abs_diff_vec x y =
  assert (Array.length x = Array.length y);
  let worst = ref 0.0 in
  for k = 0 to Array.length x - 1 do
    let d = Float.abs (Array.unsafe_get x k -. Array.unsafe_get y k) in
    if d > !worst then worst := d
  done;
  !worst
