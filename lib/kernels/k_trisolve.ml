open Builder

let point_loop : Stmt.loop =
  let vn = v "N" and vk = v "K" and vi = v "I" in
  let solve = set1 "X" vk (a1 "B" vk /. a2 "A" vk vk) in
  let update =
    do_ "I" (vk +! i 1) vn
      [ set1 "B" vi (a1 "B" vi -. (a2 "A" vi vk *. a1 "X" vk)) ]
  in
  match do_ "K" (i 1) vn [ solve; update ] with
  | Stmt.Loop l -> l
  | Stmt.Assign _ | Stmt.Iassign _ | Stmt.If _ -> assert false

let kernel : Kernel_def.t =
  {
    name = "trisolve";
    description = "forward substitution (lower-triangular solve)";
    block = [ Stmt.Loop point_loop ];
    params = [ "N" ];
    setup =
      (fun env ~bindings ~seed ->
        let n = List.assoc "N" bindings in
        Env.add_farray env "A" [ (1, n); (1, n) ];
        Env.add_farray env "B" [ (1, n) ];
        Env.add_farray env "X" [ (1, n) ];
        let rng = Lcg.create seed in
        Env.fill_farray env "A" (fun idx ->
            match idx with
            | [ r; c ] ->
                let base = Stdlib.( -. ) (Lcg.float rng 1.0) 0.5 in
                if r = c then Stdlib.( +. ) base (float_of_int n) else base
            | _ -> assert false);
        Env.fill_farray env "B" (fun _ -> Lcg.float rng 1.0));
    traced = [ "A"; "B"; "X" ];
    shapes =
      [
        ("A", [ (i 1, v "N"); (i 1, v "N") ]);
        ("B", [ (i 1, v "N") ]);
        ("X", [ (i 1, v "N") ]);
      ];
  }
