open Builder

let abs_ e = Stmt.Fcall ("ABS", [ e ])

let point_loop : Stmt.loop =
  let vn = v "N" and vk = v "K" and vi = v "I" and vj = v "J" in
  let vmax = v "IMAX" in
  let find_pivot =
    [
      seti "IMAX" vk;
      setf "AMAX" (abs_ (a2 "A" vk vk));
      do_ "I" (vk +! i 1) vn
        [
          if_
            (Stmt.Fcmp (Stmt.Gt, abs_ (a2 "A" vi vk), fv "AMAX"))
            [ setf "AMAX" (abs_ (a2 "A" vi vk)); seti "IMAX" vi ];
        ];
    ]
  in
  let swap =
    do_ "J" (i 1) vn
      [
        setf "TAU" (a2 "A" vk vj);
        set2 "A" vk vj (a2 "A" vmax vj);
        set2 "A" vmax vj (fv "TAU");
      ]
  in
  let scale =
    do_ "I" (vk +! i 1) vn [ set2 "A" vi vk (a2 "A" vi vk /. a2 "A" vk vk) ]
  in
  let update =
    do_ "J" (vk +! i 1) vn
      [
        do_ "I" (vk +! i 1) vn
          [ set2 "A" vi vj (a2 "A" vi vj -. (a2 "A" vi vk *. a2 "A" vk vj)) ];
      ]
  in
  match do_ "K" (i 1) (vn -! i 1) (find_pivot @ [ swap; scale; update ]) with
  | Stmt.Loop l -> l
  | Stmt.Assign _ | Stmt.Iassign _ | Stmt.If _ -> assert false

let fill_matrix env ~n ~seed =
  Env.add_farray env "A" [ (1, n); (1, n) ];
  let rng = Lcg.create seed in
  Env.fill_farray env "A" (fun _ -> Stdlib.( -. ) (Lcg.float rng 2.0) 1.0)

let kernel : Kernel_def.t =
  {
    name = "lu_pivot";
    description = "LU decomposition with partial pivoting (point algorithm)";
    block = [ Stmt.Loop point_loop ];
    params = [ "N" ];
    setup =
      (fun env ~bindings ~seed ->
        let n = List.assoc "N" bindings in
        fill_matrix env ~n ~seed);
    traced = [ "A" ];
    shapes = [ ("A", [ (i 1, v "N"); (i 1, v "N") ]) ];
  }
