open Linalg

(* Hot loops index [a] through unchecked accessors; each entry point
   asserts once that the flat array covers the m*n index space. *)
let ug = Array.unsafe_get
let us = Array.unsafe_set
let check t = assert (t.m = t.n && Array.length t.a >= t.m * t.n)

let swap_rows t r1 r2 =
  if r1 <> r2 then begin
    let m = t.m and a = t.a in
    for j = 0 to t.n - 1 do
      let c = j * m in
      let tau = ug a (c + r1 - 1) in
      us a (c + r1 - 1) (ug a (c + r2 - 1));
      us a (c + r2 - 1) tau
    done
  end

let pivot_of t k =
  let m = t.m and a = t.a in
  let kc = (k - 1) * m in
  let imax = ref k and amax = ref (Float.abs (ug a (kc + k - 1))) in
  for i = k + 1 to t.n do
    let x = Float.abs (ug a (kc + i - 1)) in
    if x > !amax then begin
      amax := x;
      imax := i
    end
  done;
  !imax

(* One elimination step: pivot, swap, scale, and update columns
   [k+1 .. jend] (the panel bound; [jend = n] recovers the point
   algorithm). *)
let step t k ~jend =
  let n = t.n and m = t.m and a = t.a in
  swap_rows t k (pivot_of t k);
  let kc = (k - 1) * m in
  let piv = ug a (kc + k - 1) in
  for i = k + 1 to n do
    us a (kc + i - 1) (ug a (kc + i - 1) /. piv)
  done;
  for j = k + 1 to jend do
    let jc = (j - 1) * m in
    let akj = ug a (jc + k - 1) in
    for i = k + 1 to n do
      us a (jc + i - 1) (ug a (jc + i - 1) -. (ug a (kc + i - 1) *. akj))
    done
  done

let point t =
  check t;
  for k = 1 to t.n - 1 do
    step t k ~jend:t.n
  done

let trailing_plain t ~k ~kend =
  let n = t.n and m = t.m and a = t.a in
  for j = kend + 1 to n do
    let jc = (j - 1) * m in
    for i = k + 1 to n do
      let kmax = min kend (i - 1) in
      let x = ref (ug a (jc + i - 1)) in
      for kk = k to kmax do
        x := !x -. (ug a (((kk - 1) * m) + i - 1) *. ug a (jc + kk - 1))
      done;
      us a (jc + i - 1) !x
    done
  done

(* The "1+" trailing update over an explicit column range: unroll-and-jam
   by 4 with scalar accumulators, remainder columns plain.  As in
   {!N_lu.trailing_cols}, per-column updates apply in increasing KK
   order, so any column-range decomposition is bit-identical. *)
let trailing_cols t ~k ~kend ~jlo ~jhi =
  let m = t.m and a = t.a in
  let j = ref jlo in
  while !j + 3 <= jhi do
    let j0 = (!j - 1) * m
    and j1 = !j * m
    and j2 = (!j + 1) * m
    and j3 = (!j + 2) * m in
    for i = k + 1 to t.n do
      let kmax = min kend (i - 1) in
      let s0 = ref (ug a (j0 + i - 1))
      and s1 = ref (ug a (j1 + i - 1))
      and s2 = ref (ug a (j2 + i - 1))
      and s3 = ref (ug a (j3 + i - 1)) in
      for kk = k to kmax do
        let aik = ug a (((kk - 1) * m) + i - 1) in
        s0 := !s0 -. (aik *. ug a (j0 + kk - 1));
        s1 := !s1 -. (aik *. ug a (j1 + kk - 1));
        s2 := !s2 -. (aik *. ug a (j2 + kk - 1));
        s3 := !s3 -. (aik *. ug a (j3 + kk - 1))
      done;
      us a (j0 + i - 1) !s0;
      us a (j1 + i - 1) !s1;
      us a (j2 + i - 1) !s2;
      us a (j3 + i - 1) !s3
    done;
    j := !j + 4
  done;
  for j = !j to jhi do
    let jc = (j - 1) * m in
    for i = k + 1 to t.n do
      let kmax = min kend (i - 1) in
      let x = ref (ug a (jc + i - 1)) in
      for kk = k to kmax do
        x := !x -. (ug a (((kk - 1) * m) + i - 1) *. ug a (jc + kk - 1))
      done;
      us a (jc + i - 1) !x
    done
  done

let trailing_opt t ~k ~kend = trailing_cols t ~k ~kend ~jlo:(kend + 1) ~jhi:t.n

let with_trailing trailing ~block t =
  check t;
  let n = t.n in
  let k = ref 1 in
  while !k <= n - 1 do
    let kend = min (!k + block - 1) (n - 1) in
    (* Panel: the point algorithm, updates restricted to panel columns —
       but swaps and pivot searches act on whole rows, as in Figure 8. *)
    for kk = !k to kend do
      step t kk ~jend:(min kend n)
    done;
    trailing t ~k:!k ~kend;
    k := !k + block
  done

let blocked ~block t = with_trailing trailing_plain ~block t
let blocked_opt ~block t = with_trailing trailing_opt ~block t

(* "1P": the §5.2 commutativity argument is what makes this legal — row
   swaps commute with whole-column updates, so all swaps for the block
   land during the serial panel and the deferred trailing update sees a
   fixed row order.  At that point the trailing columns are independent
   and fan out over the pool exactly as in the unpivoted case. *)
let blocked_par ?pool ~block t =
  with_trailing
    (fun t ~k ~kend ->
      Parallel.for_ ?pool ~chunking:(Parallel.Guided { min_chunk = 8 })
        ~align:4 ~lo:(kend + 1) ~hi:t.n
        (fun jlo jhi -> trailing_cols t ~k ~kend ~jlo ~jhi))
    ~block t
