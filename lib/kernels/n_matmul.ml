open Linalg

(* Hot loops index the flat arrays through unchecked accessors; each
   entry point asserts the index-space bound once. *)
let ug = Array.unsafe_get
let us = Array.unsafe_set

let check ~a ~b ~c =
  assert (a.m = c.m && a.n = b.m && b.n = c.n);
  assert (Array.length a.a >= a.m * a.n);
  assert (Array.length b.a >= b.m * b.n);
  assert (Array.length c.a >= c.m * c.n)

let make_b ?(seed = 5) ~n ~freq_pct () =
  let b = create n n in
  let rng = Lcg.create seed in
  let p = float_of_int freq_pct /. 100.0 in
  let run_len = 4 in
  for j = 1 to n do
    let k = ref 1 in
    while !k <= n do
      if Lcg.bool rng (p /. float_of_int run_len) then begin
        let stop = min n (!k + run_len - 1) in
        for kk = !k to stop do
          set b kk j (0.5 +. Lcg.float rng 0.5)
        done;
        k := stop + 1
      end
      else incr k
    done
  done;
  b

let original ~a ~b ~c =
  check ~a ~b ~c;
  let n = a.n and m = a.m in
  let aa = a.a and ba = b.a and ca = c.a in
  for j = 1 to n do
    let jc = (j - 1) * m in
    for k = 1 to n do
      let bkj = ug ba (((j - 1) * b.m) + k - 1) in
      if bkj <> 0.0 then begin
        let kc = (k - 1) * m in
        for i = 1 to m do
          us ca (jc + i - 1) (ug ca (jc + i - 1) +. (ug aa (kc + i - 1) *. bkj))
        done
      end
    done
  done

(* The paper's strawman: unroll-and-jam K by 2 with the guards replicated
   in the innermost loop. *)
let uj ~a ~b ~c =
  check ~a ~b ~c;
  let n = a.n and m = a.m in
  let aa = a.a and ba = b.a and ca = c.a in
  for j = 1 to n do
    let jc = (j - 1) * m and bj = (j - 1) * b.m in
    let k = ref 1 in
    while !k + 1 <= n do
      let b0 = ug ba (bj + !k - 1) and b1 = ug ba (bj + !k) in
      let k0 = (!k - 1) * m and k1 = !k * m in
      for i = 1 to m do
        if b0 <> 0.0 then
          us ca (jc + i - 1) (ug ca (jc + i - 1) +. (ug aa (k0 + i - 1) *. b0));
        if b1 <> 0.0 then
          us ca (jc + i - 1) (ug ca (jc + i - 1) +. (ug aa (k1 + i - 1) *. b1))
      done;
      k := !k + 2
    done;
    if !k = n then begin
      let b0 = ug ba (bj + n - 1) in
      if b0 <> 0.0 then begin
        let k0 = (n - 1) * m in
        for i = 1 to m do
          us ca (jc + i - 1) (ug ca (jc + i - 1) +. (ug aa (k0 + i - 1) *. b0))
        done
      end
    end
  done

(* IF-inspection of one column J: record the nonzero ranges of B(:,J)
   into the [klb]/[kub] scratch, then run the unguarded update over the
   ranges with K unrolled by 4 (plus pairwise and single-step
   remainders).  Each C(I,J) accumulates its nonzero Ks in increasing
   order, so results stay bit-identical to [original] — and because the
   column touches only C(:,J), any set of columns can run in any order
   or concurrently. *)
let uj_if_col ~a ~b ~c ~klb ~kub j =
  let n = a.n and m = a.m in
  let aa = a.a and ba = b.a and ca = c.a in
  let jc = (j - 1) * m and bj = (j - 1) * b.m in
  (* inspector *)
  let kc = ref 0 and flag = ref false in
  for k = 1 to n do
    if ug ba (bj + k - 1) <> 0.0 then begin
      if not !flag then begin
        incr kc;
        us klb !kc k;
        flag := true
      end
    end
    else if !flag then begin
      us kub !kc (k - 1);
      flag := false
    end
  done;
  if !flag then us kub !kc n;
  (* executor *)
  for kn = 1 to !kc do
    let k = ref (ug klb kn) in
    let kend = ug kub kn in
    while !k + 3 <= kend do
      let b0 = ug ba (bj + !k - 1)
      and b1 = ug ba (bj + !k)
      and b2 = ug ba (bj + !k + 1)
      and b3 = ug ba (bj + !k + 2) in
      let k0 = (!k - 1) * m
      and k1 = !k * m
      and k2 = (!k + 1) * m
      and k3 = (!k + 2) * m in
      for i = 1 to m do
        let x = ug ca (jc + i - 1) in
        let x = x +. (ug aa (k0 + i - 1) *. b0) in
        let x = x +. (ug aa (k1 + i - 1) *. b1) in
        let x = x +. (ug aa (k2 + i - 1) *. b2) in
        us ca (jc + i - 1) (x +. (ug aa (k3 + i - 1) *. b3))
      done;
      k := !k + 4
    done;
    while !k + 1 <= kend do
      let b0 = ug ba (bj + !k - 1) and b1 = ug ba (bj + !k) in
      let k0 = (!k - 1) * m and k1 = !k * m in
      for i = 1 to m do
        us ca (jc + i - 1)
          ((ug ca (jc + i - 1) +. (ug aa (k0 + i - 1) *. b0))
          +. (ug aa (k1 + i - 1) *. b1))
      done;
      k := !k + 2
    done;
    if !k = kend then begin
      let b0 = ug ba (bj + !k - 1) in
      let k0 = (!k - 1) * m in
      for i = 1 to m do
        us ca (jc + i - 1) (ug ca (jc + i - 1) +. (ug aa (k0 + i - 1) *. b0))
      done
    end
  done

let scratch n = (Array.make ((n / 2) + 2) 0, Array.make ((n / 2) + 2) 0)

(* IF-inspection: record the nonzero ranges of column J, then run the
   unguarded update over the ranges with K unrolled. *)
let uj_if ~a ~b ~c =
  check ~a ~b ~c;
  let klb, kub = scratch a.n in
  for j = 1 to a.n do
    uj_if_col ~a ~b ~c ~klb ~kub j
  done

(* Parallel IF-inspection: the J loop carries no dependence (column J
   writes only C(:,J)), so columns fan out over the pool.  Each chunk
   gets its own inspector scratch; per-column work is identical to
   [uj_if], so the result is bitwise equal regardless of schedule. *)
let uj_if_par ?pool ~a ~b ~c () =
  check ~a ~b ~c;
  Parallel.for_ ?pool ~chunking:(Parallel.Guided { min_chunk = 4 }) ~lo:1
    ~hi:a.n (fun jlo jhi ->
      let klb, kub = scratch a.n in
      for j = jlo to jhi do
        uj_if_col ~a ~b ~c ~klb ~kub j
      done)
