open Builder

let body =
  let vi = v "I" and vk = v "K" in
  [ set1 "F3" vi (a1 "F3" vi +. (fv "DT" *. a1 "F1" vk *. a1 "F2" (vi -! vk))) ]

let aconv_loop : Stmt.loop =
  let vi = v "I" in
  let inner = do_ "K" vi (Expr.min_ (vi +! v "N2") (v "N1")) body in
  match do_ "I" (i 0) (v "N3") [ inner ] with
  | Stmt.Loop l -> l
  | Stmt.Assign _ | Stmt.Iassign _ | Stmt.If _ -> assert false

let conv_loop : Stmt.loop =
  let vi = v "I" in
  let inner =
    do_ "K"
      (Expr.max_ (i 0) (vi -! v "N2"))
      (Expr.min_ vi (v "N1"))
      body
  in
  match do_ "I" (i 0) (v "N3") [ inner ] with
  | Stmt.Loop l -> l
  | Stmt.Assign _ | Stmt.Iassign _ | Stmt.If _ -> assert false

let setup env ~bindings ~seed =
  let n1 = List.assoc "N1" bindings
  and n2 = List.assoc "N2" bindings
  and n3 = List.assoc "N3" bindings in
  Env.add_farray env "F1" [ (0, max n1 n3) ];
  Env.add_farray env "F2" [ (-n2, max n2 n3) ];
  Env.add_farray env "F3" [ (0, n3) ];
  Env.set_fscalar env "DT" 0.01;
  let rng = Lcg.create seed in
  Env.fill_farray env "F1" (fun _ -> Lcg.float rng 1.0);
  Env.fill_farray env "F2" (fun _ -> Lcg.float rng 1.0);
  Env.fill_farray env "F3" (fun _ -> 0.0)

let make name description loop : Kernel_def.t =
  {
    name;
    description;
    block = [ Stmt.Loop loop ];
    params = [ "N1"; "N2"; "N3" ];
    setup;
    traced = [ "F1"; "F2"; "F3" ];
    shapes =
      [
        ("F1", [ (i 0, Expr.max_ (v "N1") (v "N3")) ]);
        ("F2", [ (i 0 -! v "N2", Expr.max_ (v "N2") (v "N3")) ]);
        ("F3", [ (i 0, v "N3") ]);
      ];
  }

let aconv = make "aconv" "adjoint convolution of two time series" aconv_loop
let conv = make "conv" "convolution of two time series" conv_loop
