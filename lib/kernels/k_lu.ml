open Builder

let point_loop : Stmt.loop =
  let vn = v "N" and vk = v "K" and vi = v "I" and vj = v "J" in
  let scale =
    do_ "I" (vk +! i 1) vn [ set2 "A" vi vk (a2 "A" vi vk /. a2 "A" vk vk) ]
  in
  let update =
    do_ "J" (vk +! i 1) vn
      [
        do_ "I" (vk +! i 1) vn
          [ set2 "A" vi vj (a2 "A" vi vj -. (a2 "A" vi vk *. a2 "A" vk vj)) ];
      ]
  in
  match do_ "K" (i 1) (vn -! i 1) [ scale; update ] with
  | Stmt.Loop l -> l
  | Stmt.Assign _ | Stmt.Iassign _ | Stmt.If _ -> assert false

let fill_matrix env ~n ~seed =
  Env.add_farray env "A" [ (1, n); (1, n) ];
  let rng = Lcg.create seed in
  Env.fill_farray env "A" (fun idx ->
      match idx with
      | [ r; c ] ->
          let base = Stdlib.( -. ) (Lcg.float rng 1.0) 0.5 in
          if r = c then Stdlib.( +. ) base (float_of_int n) else base
      | _ -> assert false)

let kernel : Kernel_def.t =
  {
    name = "lu";
    description = "LU decomposition without pivoting (point algorithm)";
    block = [ Stmt.Loop point_loop ];
    params = [ "N" ];
    setup =
      (fun env ~bindings ~seed ->
        let n = List.assoc "N" bindings in
        fill_matrix env ~n ~seed);
    traced = [ "A" ];
    shapes = [ ("A", [ (i 1, v "N"); (i 1, v "N") ]) ];
  }
