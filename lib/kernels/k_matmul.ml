open Builder

let guarded_k_loop : Stmt.loop =
  let vn = v "N" and vi = v "I" and vj = v "J" and vk = v "K" in
  let inner =
    do_ "I" (i 1) vn
      [ set2 "C" vi vj (a2 "C" vi vj +. (a2 "A" vi vk *. a2 "B" vk vj)) ]
  in
  match do_ "K" (i 1) vn [ if_ (fne (a2 "B" vk vj) (fc 0.0)) [ inner ] ] with
  | Stmt.Loop l -> l
  | Stmt.Assign _ | Stmt.Iassign _ | Stmt.If _ -> assert false

let nest : Stmt.loop =
  match Builder.do_ "J" (Builder.i 1) (Builder.v "N") [ Stmt.Loop guarded_k_loop ] with
  | Stmt.Loop l -> l
  | Stmt.Assign _ | Stmt.Iassign _ | Stmt.If _ -> assert false

(* B's nonzeros come in short runs so IF-inspection has ranges to find;
   [freq_pct] is the overall nonzero percentage. *)
let fill env ~n ~freq_pct ~seed =
  Env.add_farray env "A" [ (1, n); (1, n) ];
  Env.add_farray env "B" [ (1, n); (1, n) ];
  Env.add_farray env "C" [ (1, n); (1, n) ];
  let rng = Lcg.create seed in
  Env.fill_farray env "A" (fun _ -> Lcg.float rng 1.0);
  Env.fill_farray env "C" (fun _ -> 0.0);
  (* Column-major fill with run structure along K (the first index). *)
  let p = Stdlib.( /. ) (float_of_int freq_pct) 100.0 in
  let run_len = 4 in
  for j = 1 to n do
    let k = ref 1 in
    while !k <= n do
      if Lcg.bool rng (Stdlib.( /. ) p (float_of_int run_len)) then begin
        (* start a run of nonzeros *)
        let stop = min n (!k + run_len - 1) in
        for kk = !k to stop do
          Env.set_f env "B" [ kk; j ] (Stdlib.( +. ) 0.5 (Lcg.float rng 0.5))
        done;
        k := stop + 1
      end
      else begin
        Env.set_f env "B" [ !k; j ] 0.0;
        incr k
      end
    done
  done

let kernel : Kernel_def.t =
  {
    name = "matmul";
    description = "SGEMM-style matrix multiply with a zero guard on B";
    block = [ Stmt.Loop nest ];
    params = [ "N"; "FREQ_PCT" ];
    setup =
      (fun env ~bindings ~seed ->
        let n = List.assoc "N" bindings in
        let freq_pct = List.assoc "FREQ_PCT" bindings in
        fill env ~n ~freq_pct ~seed);
    traced = [ "A"; "B"; "C" ];
    shapes =
      (let sq = [ (i 1, v "N"); (i 1, v "N") ] in
       [ ("A", sq); ("B", sq); ("C", sq) ]);
  }
