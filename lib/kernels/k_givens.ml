open Builder

let point_loop : Stmt.loop =
  let vl = v "L" and vj = v "J" and vk = v "K" in
  let rotate =
    do_ "K" vl (v "N")
      [
        setf "A1" (a2 "A" vl vk);
        setf "A2" (a2 "A" vj vk);
        set2 "A" vl vk ((fv "C" *. fv "A1") +. (fv "S" *. fv "A2"));
        set2 "A" vj vk ((Stmt.Fneg (fv "S") *. fv "A1") +. (fv "C" *. fv "A2"));
      ]
  in
  let guarded =
    if_
      (fne (a2 "A" vj vl) (fc 0.0))
      [
        setf "DEN"
          (sqrt_ ((a2 "A" vl vl *. a2 "A" vl vl) +. (a2 "A" vj vl *. a2 "A" vj vl)));
        setf "C" (a2 "A" vl vl /. fv "DEN");
        setf "S" (a2 "A" vj vl /. fv "DEN");
        rotate;
      ]
  in
  let j_loop = do_ "J" (vl +! i 1) (v "M") [ guarded ] in
  match do_ "L" (i 1) (v "N") [ j_loop ] with
  | Stmt.Loop l -> l
  | Stmt.Assign _ | Stmt.Iassign _ | Stmt.If _ -> assert false

let setup env ~bindings ~seed =
  let m = List.assoc "M" bindings and n = List.assoc "N" bindings in
  Env.add_farray env "A" [ (1, m); (1, n) ];
  let rng = Lcg.create seed in
  Env.fill_farray env "A" (fun _ -> Stdlib.( -. ) (Lcg.float rng 2.0) 1.0)

let kernel : Kernel_def.t =
  {
    name = "givens";
    description = "QR decomposition with Givens rotations (point algorithm)";
    block = [ Stmt.Loop point_loop ];
    params = [ "M"; "N" ];
    setup;
    traced = [ "A" ];
    shapes = [ ("A", [ (i 1, v "M"); (i 1, v "N") ]) ];
  }
