(** Native LU-without-pivoting variants for the §5.1 table (T3).

    All variants factor in place and must agree bit-for-bit with
    {!point} up to float-reassociation-free transformations (checked in
    the test suite):

    - [point] — the natural point algorithm;
    - [sorensen] — the hand-blocked right-looking variant ("1" in the
      paper's table): panel factorization followed by a blocked trailing
      update with the block loop outermost;
    - [blocked] — the compiler-derived Figure-6 form ("2"): panel, then
      trailing update with the elimination step innermost;
    - [blocked_opt] — Figure 6 plus trapezoidal unroll-and-jam and
      scalar replacement ("2+"): the trailing update unrolls the column
      loop and keeps the accumulators in scalars;
    - [recursive] — cache-oblivious splitting of the column range in
      halves (ReLAPACK-style), bottoming out in a [base]-column panel;
      every level reuses the "2+" trailing kernel;
    - [blocked_par] — "2+" with the trailing update fanned out over
      [pool] (default {!Pool.default}).  The trailing columns are
      dependence-free at a fixed elimination block, and chunk starts are
      aligned to the jam width, so the result is bitwise equal to
      [blocked_opt] and deterministic across runs and pool sizes. *)

val point : Linalg.mat -> unit
val sorensen : block:int -> Linalg.mat -> unit
val blocked : block:int -> Linalg.mat -> unit
val blocked_opt : block:int -> Linalg.mat -> unit
val recursive : ?base:int -> Linalg.mat -> unit
val blocked_par : ?pool:Pool.t -> block:int -> Linalg.mat -> unit
