open Linalg

(* All hot loops below index [a] through these unchecked accessors; each
   entry point asserts once that the flat array really covers the m*n
   index space the loops stay inside. *)
let ug = Array.unsafe_get
let us = Array.unsafe_set
let check t = assert (t.m = t.n && Array.length t.a >= t.m * t.n)

let point t =
  check t;
  let n = t.n and m = t.m and a = t.a in
  for k = 1 to n - 1 do
    let kc = (k - 1) * m in
    let piv = ug a (kc + k - 1) in
    for i = k + 1 to n do
      us a (kc + i - 1) (ug a (kc + i - 1) /. piv)
    done;
    for j = k + 1 to n do
      let jc = (j - 1) * m in
      let akj = ug a (jc + k - 1) in
      for i = k + 1 to n do
        us a (jc + i - 1) (ug a (jc + i - 1) -. (ug a (kc + i - 1) *. akj))
      done
    done
  done

(* Shared panel factorization: the point algorithm restricted to columns
   [k .. kend] (rows k..n), exactly the head group of Figure 6. *)
let panel t ~k ~kend =
  let n = t.n and m = t.m and a = t.a in
  for kk = k to kend do
    let kkc = (kk - 1) * m in
    let piv = ug a (kkc + kk - 1) in
    for i = kk + 1 to n do
      us a (kkc + i - 1) (ug a (kkc + i - 1) /. piv)
    done;
    for j = kk + 1 to min kend n do
      let jc = (j - 1) * m in
      let akj = ug a (jc + kk - 1) in
      for i = kk + 1 to n do
        us a (jc + i - 1) (ug a (jc + i - 1) -. (ug a (kkc + i - 1) *. akj))
      done
    done
  done

(* "1": Sorensen-style hand block — panel, then the trailing update as a
   sequence of rank-1 updates with stride-one inner loops. *)
let sorensen ~block t =
  check t;
  let n = t.n and m = t.m and a = t.a in
  let k = ref 1 in
  while !k <= n - 1 do
    let kend = min (!k + block - 1) (n - 1) in
    panel t ~k:!k ~kend;
    for j = kend + 1 to n do
      let jc = (j - 1) * m in
      for kk = !k to kend do
        let kkc = (kk - 1) * m in
        let akj = ug a (jc + kk - 1) in
        for i = kk + 1 to n do
          us a (jc + i - 1) (ug a (jc + i - 1) -. (ug a (kkc + i - 1) *. akj))
        done
      done
    done;
    k := !k + block
  done

(* "2": the Figure-6 form the compiler derives — trailing update with the
   elimination (KK) loop innermost. *)
let blocked ~block t =
  check t;
  let n = t.n and m = t.m and a = t.a in
  let k = ref 1 in
  while !k <= n - 1 do
    let kend = min (!k + block - 1) (n - 1) in
    panel t ~k:!k ~kend;
    for j = kend + 1 to n do
      let jc = (j - 1) * m in
      for i = !k + 1 to n do
        let kmax = min kend (i - 1) in
        let x = ref (ug a (jc + i - 1)) in
        for kk = !k to kmax do
          x := !x -. (ug a (((kk - 1) * m) + i - 1) *. ug a (jc + kk - 1))
        done;
        us a (jc + i - 1) !x
      done
    done;
    k := !k + block
  done

(* The "2+" trailing update over an explicit column range [jlo .. jhi]:
   unroll-and-jam of the column loop by 4 with the accumulators in
   scalars, plus the plain loop on the (jhi - jlo + 1) mod 4 remainder
   columns.  Per column the elimination steps apply in increasing KK
   order through one load/store chain, so any decomposition of the
   column range reproduces the point results bit-for-bit — which is what
   lets the recursive and parallel drivers below reuse it. *)
let trailing_cols t ~k ~kend ~jlo ~jhi =
  let m = t.m and a = t.a in
  let j = ref jlo in
  while !j + 3 <= jhi do
    let j0 = (!j - 1) * m
    and j1 = !j * m
    and j2 = (!j + 1) * m
    and j3 = (!j + 2) * m in
    for i = k + 1 to t.n do
      let kmax = min kend (i - 1) in
      let s0 = ref (ug a (j0 + i - 1))
      and s1 = ref (ug a (j1 + i - 1))
      and s2 = ref (ug a (j2 + i - 1))
      and s3 = ref (ug a (j3 + i - 1)) in
      for kk = k to kmax do
        let aik = ug a (((kk - 1) * m) + i - 1) in
        s0 := !s0 -. (aik *. ug a (j0 + kk - 1));
        s1 := !s1 -. (aik *. ug a (j1 + kk - 1));
        s2 := !s2 -. (aik *. ug a (j2 + kk - 1));
        s3 := !s3 -. (aik *. ug a (j3 + kk - 1))
      done;
      us a (j0 + i - 1) !s0;
      us a (j1 + i - 1) !s1;
      us a (j2 + i - 1) !s2;
      us a (j3 + i - 1) !s3
    done;
    j := !j + 4
  done;
  for j = !j to jhi do
    let jc = (j - 1) * m in
    for i = k + 1 to t.n do
      let kmax = min kend (i - 1) in
      let x = ref (ug a (jc + i - 1)) in
      for kk = k to kmax do
        x := !x -. (ug a (((kk - 1) * m) + i - 1) *. ug a (jc + kk - 1))
      done;
      us a (jc + i - 1) !x
    done
  done

(* "2+": Figure 6 plus unroll-and-jam of the trailing column loop (by 4)
   and scalar replacement of the accumulators. *)
let blocked_opt ~block t =
  check t;
  let n = t.n in
  let k = ref 1 in
  while !k <= n - 1 do
    let kend = min (!k + block - 1) (n - 1) in
    panel t ~k:!k ~kend;
    trailing_cols t ~k:!k ~kend ~jlo:(kend + 1) ~jhi:n;
    k := !k + block
  done

(* "2P": the parallel form of "2+".  The panel is a recurrence and stays
   serial; the trailing columns are independent (each reads the panel
   and writes only itself), so they fan out across the pool.  Chunk
   starts are aligned to the jam width so the group-of-4 decomposition —
   and therefore the floating-point result — is identical to
   [blocked_opt]'s.  Guided chunking: the region is re-entered once per
   K block on a steadily shrinking column range, so cheap tail chunks
   keep lanes from starving at the barrier. *)
let blocked_par ?pool ~block t =
  check t;
  let n = t.n in
  let k = ref 1 in
  while !k <= n - 1 do
    let kend = min (!k + block - 1) (n - 1) in
    panel t ~k:!k ~kend;
    Parallel.for_ ?pool ~chunking:(Parallel.Guided { min_chunk = 8 }) ~align:4
      ~lo:(kend + 1) ~hi:n
      (fun jlo jhi -> trailing_cols t ~k:!k ~kend ~jlo ~jhi);
    k := !k + block
  done

(* Recursive (cache-oblivious) LU, after ReLAPACK: factor the left half
   of the columns, apply its updates to the right half with the same
   trailing kernel, recurse right.  Updates still reach each column in
   increasing KK order, so the factors equal [point]'s bit-for-bit at
   every base size. *)
let recursive ?(base = 16) t =
  check t;
  let base = max 1 base in
  let rec go ~k0 ~k1 =
    if k1 - k0 + 1 <= base then panel t ~k:k0 ~kend:k1
    else begin
      let mid = (k0 + k1) / 2 in
      go ~k0 ~k1:mid;
      trailing_cols t ~k:k0 ~kend:mid ~jlo:(mid + 1) ~jhi:k1;
      go ~k0:(mid + 1) ~k1
    end
  in
  if t.n > 1 then go ~k0:1 ~k1:t.n
