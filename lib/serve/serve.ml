(* NDJSON compile/execute server on the domain pool: see serve.mli. *)

module J = Json_min

(* ---- JSON construction helpers ---------------------------------- *)

(* Json_min escapes string contents on output, so raw messages (with
   quotes, newlines, compiler stderr) can be wrapped directly. *)
let jstr s = J.String s
let jint n = J.Number (float_of_int n)
let jbindings bs = J.Object (List.map (fun (k, v) -> (k, jint v)) bs)

let wrap ?id ok fields =
  let fields = ("ok", J.Bool ok) :: fields in
  J.Object (match id with None -> fields | Some id -> ("id", id) :: fields)

let errorf ?id fmt =
  Printf.ksprintf (fun m -> wrap ?id false [ ("error", jstr m) ]) fmt

(* ---- request telemetry ------------------------------------------- *)

(* Per-request stage attribution, filled in by the handlers as the
   request flows through compile and execute; mutated only by the
   request's own lane (batch fan-out measures the whole parallel
   region, not per-item, precisely to keep this single-writer).  The
   GC fields are [Gc.counters]/[Gc.quick_stat] deltas captured around the whole op
   dispatch on the worker lane. *)
type timing = {
  mutable t_compile_ns : int;
  mutable t_exec_ns : int;
  mutable t_minor_gcs : int;
  mutable t_major_gcs : int;
  mutable t_promoted_words : int;
  mutable t_allocated_words : int;
}

let new_timing () =
  {
    t_compile_ns = 0;
    t_exec_ns = 0;
    t_minor_gcs = 0;
    t_major_gcs = 0;
    t_promoted_words = 0;
    t_allocated_words = 0;
  }

(* One GC observation point.  Word counts come from [Gc.counters] (the
   only variant that is exact in native code — [quick_stat]'s word
   fields are refreshed only at minor collections, so a request that
   triggers no collection would read an allocation delta of zero);
   collection counts come from [quick_stat]. *)
type gc_probe = {
  p_minor_gcs : int;
  p_major_gcs : int;
  p_minor_w : float;
  p_promoted_w : float;
  p_major_w : float;
}

let gc_probe () =
  let g = Gc.quick_stat () in
  let minor_w, promoted_w, major_w = Gc.counters () in
  {
    p_minor_gcs = g.Gc.minor_collections;
    p_major_gcs = g.Gc.major_collections;
    p_minor_w = minor_w;
    p_promoted_w = promoted_w;
    p_major_w = major_w;
  }

(* Allocation since process start, in words: everything allocated lands
   in the minor heap or directly in the major heap, and promotion would
   otherwise be double-counted. *)
let allocated_words p = p.p_minor_w +. p.p_major_w -. p.p_promoted_w

let record_gc_delta tm p0 p1 =
  tm.t_minor_gcs <- p1.p_minor_gcs - p0.p_minor_gcs;
  tm.t_major_gcs <- p1.p_major_gcs - p0.p_major_gcs;
  tm.t_promoted_words <- int_of_float (p1.p_promoted_w -. p0.p_promoted_w);
  tm.t_allocated_words <-
    int_of_float (allocated_words p1 -. allocated_words p0)

let ok_of resp =
  match resp with
  | J.Object kvs -> (
      match List.assoc_opt "ok" kvs with Some (J.Bool b) -> b | _ -> true)
  | _ -> true

let error_text resp =
  match resp with
  | J.Object kvs -> (
      match List.assoc_opt "error" kvs with
      | Some (J.String s) -> Some s
      | _ -> None)
  | _ -> None

(* Labelled error accounting: [serve.errors] total plus one
   [serve.errors{class=...}] counter per failure class ("parse",
   "missing_op", "unknown_op", "request", "internal"). *)
let count_error cls =
  Obs.Metrics.incr (Obs.Metrics.counter "serve.errors");
  Obs.Metrics.incr
    (Obs.Metrics.counter (Obs.Metrics.labelled "serve.errors" [ ("class", cls) ]))

(* Request latency (queue wait + handling) in the overall and per-op
   log-linear histograms; the metrics op renders their p50/p90/p99. *)
let observe_request ~op ~ns =
  Obs.Metrics.incr
    (Obs.Metrics.counter ~help:"Requests handled (any op, any outcome)"
       "serve.requests");
  Obs.Metrics.observe
    (Obs.Metrics.histogram
       ~help:"Request latency: queue wait plus handling, nanoseconds"
       "serve.request.ns")
    ns;
  Obs.Metrics.observe
    (Obs.Metrics.histogram (Obs.Metrics.labelled "serve.request.ns" [ ("op", op) ]))
    ns

(* Per-request GC cost distributions, fed from the [timing] deltas.
   Registered eagerly at module init: a [lazy] here would be forced
   concurrently from worker domains, and [Lazy.force] is not
   domain-safe (a racing force raises [CamlinternalLazy.Undefined]). *)
let gc_minor_hist =
  Obs.Metrics.histogram ~help:"Minor collections triggered per request"
    "serve.gc.minor_gcs"

let gc_major_hist =
  Obs.Metrics.histogram ~help:"Major collections triggered per request"
    "serve.gc.major_gcs"

let gc_promoted_hist =
  Obs.Metrics.histogram ~help:"Words promoted to the major heap per request"
    "serve.gc.promoted_words"

let gc_alloc_hist =
  Obs.Metrics.histogram ~help:"Words allocated per request"
    "serve.gc.allocated_words"

let observe_gc tm =
  Obs.Metrics.observe gc_minor_hist tm.t_minor_gcs;
  Obs.Metrics.observe gc_major_hist tm.t_major_gcs;
  Obs.Metrics.observe gc_promoted_hist tm.t_promoted_words;
  Obs.Metrics.observe gc_alloc_hist tm.t_allocated_words

(* Structured slow/alloc-heavy request log: requests breaching either
   threshold land in the flight recorder (and a counter), so a [dump]
   after a latency incident names the offending ops without tracing. *)
let slow_request_ns =
  Option.bind (Sys.getenv_opt "BLOCKC_SLOW_REQUEST_NS") int_of_string_opt

let alloc_heavy_words =
  Option.bind (Sys.getenv_opt "BLOCKC_ALLOC_HEAVY_WORDS") int_of_string_opt

let note_heavy ~op ~total_ns tm =
  let breach lim v = match lim with Some t -> t >= 0 && v >= t | None -> false in
  let slow = breach slow_request_ns total_ns in
  let heavy = breach alloc_heavy_words tm.t_allocated_words in
  if slow || heavy then begin
    Obs.Metrics.incr
      (Obs.Metrics.counter
         ~help:"Requests breaching BLOCKC_SLOW_REQUEST_NS or \
                BLOCKC_ALLOC_HEAVY_WORDS"
         "serve.slow_requests");
    Obs.Recorder.note ~cat:"serve" "serve.slow_request"
      ~args:
        [
          ("op", Obs.Str op);
          ("ns", Obs.Int total_ns);
          ("allocated_words", Obs.Int tm.t_allocated_words);
          ("minor_gcs", Obs.Int tm.t_minor_gcs);
          ("major_gcs", Obs.Int tm.t_major_gcs);
          ("slow", Obs.Bool slow);
          ("alloc_heavy", Obs.Bool heavy);
        ]
  end

let with_telemetry ~trace_hex ~queue_ns ~tm ~total_ns resp =
  match resp with
  | J.Object kvs ->
      J.Object
        (kvs
        @ [
            ("trace_id", J.String trace_hex);
            ( "server",
              (* GC fields stay flat inside this object (no nesting):
                 clients strip or match the whole block with {[^}]*}. *)
              J.Object
                [
                  ("queue_ns", jint queue_ns);
                  ("compile_ns", jint tm.t_compile_ns);
                  ("exec_ns", jint tm.t_exec_ns);
                  ("total_ns", jint total_ns);
                  ("minor_gcs", jint tm.t_minor_gcs);
                  ("major_gcs", jint tm.t_major_gcs);
                  ("promoted_words", jint tm.t_promoted_words);
                  ("allocated_words", jint tm.t_allocated_words);
                ] );
          ])
  | other -> other

(* ---- request decoding ------------------------------------------- *)

let field req name =
  match req with J.Object kvs -> List.assoc_opt name kvs | _ -> None

let str_field req name =
  match field req name with Some (J.String s) -> Some s | _ -> None

let as_int = function
  | J.Number f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let int_field req name = Option.bind (field req name) as_int
let request_id req = field req "id"

let bindings_of_json j =
  match j with
  | J.Object kvs ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (k, v) :: rest -> (
            match as_int v with
            | Some n -> go ((k, n) :: acc) rest
            | None -> Error ("binding " ^ k ^ " is not an integer"))
      in
      go [] kvs
  | _ -> Error "bindings must be an object of integers"

let bindings_field req =
  match field req "bindings" with
  | None -> Ok []
  | Some j -> bindings_of_json j

let seed_field req = Option.value (int_field req "seed") ~default:42

(* ---- kernel / variant plumbing ---------------------------------- *)

let kernel_of req =
  match str_field req "kernel" with
  | None -> Error "missing \"kernel\""
  | Some name -> (
      match Blockability.find name with
      | Some e -> Ok e
      | None ->
          Error
            ("unknown kernel \"" ^ name ^ "\" (known: "
            ^ String.concat ", " (Blockability.names ())
            ^ ")"))

type variant = Point | Transformed

let variant_name = function Point -> "point" | Transformed -> "transformed"

let variant_of req =
  match Option.value (str_field req "variant") ~default:"point" with
  | "point" -> Ok Point
  | "transformed" -> Ok Transformed
  | v -> Error ("unknown variant \"" ^ v ^ "\" (point | transformed)")

type compiled = {
  c_entry : Blockability.entry;
  c_variant : variant;
  c_bp : Blueprint.t;
  c_cm : Backend.compiled;
}

(* Requests select a code generator with a ["backend"] field (default
   "ocaml"); both backends memoize compiles per blueprint key, so the
   field only costs a compile the first time a (kernel, variant,
   backend) triple is seen. *)
let backend_of req =
  let tag = Option.value (str_field req "backend") ~default:"ocaml" in
  match Backend.of_tag tag with
  | Some b -> Ok b
  | None ->
      Error
        (Printf.sprintf "unknown backend \"%s\" (%s)" tag
           (String.concat " | " Backend.names))

(* Derivation is pure and the kernel registry is fixed, so the server
   derives each kernel once; repeat compile/execute requests go
   straight to the blueprint lookup.  Duplicate derivations during a
   race are benign (deterministic result). *)
let derived_mu = Mutex.create ()

let derived : (string, (Stmt.t list, string) result) Hashtbl.t =
  Hashtbl.create 8

let derived_block entry =
  let name = entry.Blockability.name in
  Mutex.lock derived_mu;
  match Hashtbl.find_opt derived name with
  | Some r ->
      Mutex.unlock derived_mu;
      r
  | None ->
      Mutex.unlock derived_mu;
      let r =
        match Blockability.derive entry with
        | Error e -> Error ("derivation failed: " ^ e)
        | Ok { Blocker.result; _ } -> Ok [ result ]
      in
      Mutex.lock derived_mu;
      Hashtbl.replace derived name r;
      Mutex.unlock derived_mu;
      r

let compile_variant ?tm ~backend entry variant =
  let t0 = Obs.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      match tm with
      | Some tm -> tm.t_compile_ns <- tm.t_compile_ns + (Obs.now_ns () - t0)
      | None -> ())
  @@ fun () ->
  let block =
    match variant with
    | Point -> Ok entry.Blockability.kernel.Kernel_def.block
    | Transformed -> derived_block entry
  in
  match block with
  | Error _ as e -> e
  | Ok block -> (
      let bp =
        Blueprint.of_block
          ~shapes:entry.Blockability.kernel.Kernel_def.shapes block
      in
      let name =
        entry.Blockability.name ^ "_" ^ variant_name variant
      in
      let module B = (val backend : Backend.S) in
      match B.compile_blueprint ~name bp with
      | Error _ as e -> e
      | Ok cm ->
          Ok { c_entry = entry; c_variant = variant; c_bp = bp; c_cm = cm })

(* Environments mirror [Blockability.native_compare]: the kernel's own
   setup, then the entry's scratch arrays ([extra_setup]); the
   transformed variant additionally needs the entry's extra bindings
   (block sizes), with caller-supplied values taking precedence. *)
let env_for c ~bindings ~seed =
  let entry = c.c_entry in
  let bindings =
    if bindings = [] then entry.Blockability.default_bindings else bindings
  in
  let bindings =
    match c.c_variant with
    | Point -> bindings
    | Transformed -> entry.Blockability.extra_bindings @ bindings
  in
  let env =
    Kernel_def.make_env entry.Blockability.kernel ~bindings ~seed
  in
  entry.Blockability.extra_setup env ~bindings;
  env

(* The bitwise-comparison handle: an MD5 of the kernel's traced REAL
   arrays after the run.  Two runs agree on this digest iff they agree
   bitwise on every result array. *)
let digest_env entry env =
  let arrays =
    List.map
      (fun a -> (a, Env.farray_data env a))
      entry.Blockability.kernel.Kernel_def.traced
  in
  Digest.to_hex (Digest.string (Marshal.to_string arrays []))

let run_one ?tm c ~bindings ~seed =
  match env_for c ~bindings ~seed with
  | exception Invalid_argument m -> Error m
  | env -> (
      let t0 = Unix.gettimeofday () in
      let finish () =
        let dt = Unix.gettimeofday () -. t0 in
        (match tm with
        | Some tm -> tm.t_exec_ns <- tm.t_exec_ns + int_of_float (dt *. 1e9)
        | None -> ());
        dt
      in
      match
        c.c_cm.Backend.bk_run ~bindings:c.c_bp.Blueprint.bindings env
      with
      | Error m ->
          ignore (finish ());
          Error m
      | Ok () ->
          let dt = finish () in
          Ok (digest_env c.c_entry env, dt))

(* ---- per-op handlers -------------------------------------------- *)

let compile_fields c =
  [
    ("kernel", jstr c.c_entry.Blockability.name);
    ("variant", jstr (variant_name c.c_variant));
    ("backend", jstr c.c_cm.Backend.bk_tag);
    ("blueprint", jstr c.c_bp.Blueprint.key);
    ("key", jstr c.c_cm.Backend.bk_key);
    ( "disposition",
      jstr (Jit.disposition_name c.c_cm.Backend.bk_disposition) );
    ("compile_s", J.Number c.c_cm.Backend.bk_compile_s);
    ("cached", J.Bool c.c_cm.Backend.bk_cached);
    (* "cmxs" kept for older clients; "artifact" is backend-neutral *)
    ("cmxs", jstr c.c_cm.Backend.bk_artifact);
    ("artifact", jstr c.c_cm.Backend.bk_artifact);
    ("hoisted", jbindings c.c_bp.Blueprint.bindings);
  ]

let handle_kernels ?id () =
  let one (e : Blockability.entry) =
    J.Object
      [
        ("name", jstr e.Blockability.name);
        ("paper_ref", jstr e.Blockability.paper_ref);
        ( "params",
          J.Array
            (List.map jstr e.Blockability.kernel.Kernel_def.params) );
        ("default_bindings", jbindings e.Blockability.default_bindings);
        ("blockable", J.Bool e.Blockability.blockable);
      ]
  in
  wrap ?id true
    [ ("kernels", J.Array (List.map one Blockability.entries)) ]

let handle_derive ?id req =
  match kernel_of req with
  | Error m -> errorf ?id "%s" m
  | Ok entry -> (
      let name = entry.Blockability.name in
      match Blockability.derive entry with
      | Error reason ->
          (* The paper's negative results: rejection is the correct
             outcome for a non-blockable kernel, not a server error. *)
          wrap ?id true
            [
              ("kernel", jstr name);
              ("blockable", J.Bool false);
              ("reason", jstr reason);
            ]
      | Ok { Blocker.result; steps } ->
          let step (s : Blocker.trace_step) =
            J.Object
              [
                ("name", jstr s.Blocker.name);
                ("detail", jstr s.Blocker.detail);
              ]
          in
          wrap ?id true
            [
              ("kernel", jstr name);
              ("blockable", J.Bool true);
              ("steps", J.Array (List.map step steps));
              ("result", jstr (Stmt.block_to_string [ result ]));
            ])

let handle_compile ~tm ?id req =
  match (kernel_of req, variant_of req, backend_of req) with
  | Error m, _, _ | _, Error m, _ | _, _, Error m -> errorf ?id "%s" m
  | Ok entry, Ok variant, Ok backend -> (
      match compile_variant ~tm ~backend entry variant with
      | Error m -> errorf ?id "%s" m
      | Ok c -> wrap ?id true (compile_fields c))

let handle_execute ~tm ?id req =
  match
    (kernel_of req, variant_of req, bindings_field req, backend_of req)
  with
  | Error m, _, _, _ | _, Error m, _, _ | _, _, Error m, _ | _, _, _, Error m
    ->
      errorf ?id "%s" m
  | Ok entry, Ok variant, Ok bindings, Ok backend -> (
      match compile_variant ~tm ~backend entry variant with
      | Error m -> errorf ?id "%s" m
      | Ok c -> (
          match run_one ~tm c ~bindings ~seed:(seed_field req) with
          | Error m -> errorf ?id "%s" m
          | Ok (digest, run_s) ->
              wrap ?id true
                [
                  ("kernel", jstr entry.Blockability.name);
                  ("variant", jstr (variant_name variant));
                  ("backend", jstr c.c_cm.Backend.bk_tag);
                  ("digest", jstr digest);
                  ("run_s", J.Number run_s);
                  ( "disposition",
                    jstr
                      (Jit.disposition_name c.c_cm.Backend.bk_disposition)
                  );
                ]))

let batch_items entry req =
  match (field req "bindings_list", field req "sizes") with
  | Some (J.Array items), None ->
      let rec go acc i = function
        | [] -> Ok (List.rev acc)
        | j :: rest -> (
            match bindings_of_json j with
            | Ok bs -> go (bs :: acc) (i + 1) rest
            | Error m -> Error (Printf.sprintf "item %d: %s" i m))
      in
      go [] 0 items
  | None, Some (J.Array sizes) ->
      (* Shorthand: bind every kernel parameter to the one integer. *)
      let params = entry.Blockability.kernel.Kernel_def.params in
      let rec go acc i = function
        | [] -> Ok (List.rev acc)
        | j :: rest -> (
            match as_int j with
            | Some n -> go (List.map (fun p -> (p, n)) params :: acc) (i + 1) rest
            | None -> Error (Printf.sprintf "size %d is not an integer" i))
      in
      go [] 0 sizes
  | _ ->
      Error
        "batch needs \"bindings_list\" (array of binding objects) or \
         \"sizes\" (array of integers)"

let batch_size_metric = Obs.Metrics.histogram "serve.batch_size"

(* [Pool.run] regions on one pool must not overlap, and two request
   lanes could otherwise dispatch batches concurrently onto the shared
   default pool — serialize the fan-out, not the compile. *)
let batch_mu = Mutex.create ()

let handle_batch ~exec_pool ~tm ?id req =
  match (kernel_of req, variant_of req, backend_of req) with
  | Error m, _, _ | _, Error m, _ | _, _, Error m -> errorf ?id "%s" m
  | Ok entry, Ok variant, Ok backend -> (
      match batch_items entry req with
      | Error m -> errorf ?id "%s" m
      | Ok [] -> errorf ?id "empty batch"
      | Ok items -> (
          match compile_variant ~tm ~backend entry variant with
          | Error m -> errorf ?id "%s" m
          | Ok c ->
              let seed = seed_field req in
              let items = Array.of_list items in
              let n = Array.length items in
              Obs.Metrics.observe batch_size_metric n;
              let results = Array.make n (Error "not run") in
              let t0 = Unix.gettimeofday () in
              Obs.span ~cat:"serve" "serve.batch"
                ~args:
                  [
                    ("kernel", Obs.Str entry.Blockability.name);
                    ("n", Obs.Int n);
                  ]
                (fun () ->
                  Mutex.lock batch_mu;
                  Fun.protect
                    ~finally:(fun () -> Mutex.unlock batch_mu)
                    (fun () ->
                      Parallel.for_ ~pool:exec_pool ~lo:0 ~hi:(n - 1)
                        (fun clo chi ->
                          for i = clo to chi do
                            (* Per-item timing + GC delta, measured on
                               the executing lane (quick_stat counters
                               are domain-local; slot i has a single
                               writer). *)
                            results.(i) <-
                              (try
                                 let g0 = gc_probe () in
                                 match run_one c ~bindings:items.(i) ~seed with
                                 | Error _ as e -> e
                                 | Ok (digest, dt) ->
                                     let g1 = gc_probe () in
                                     let itm = new_timing () in
                                     record_gc_delta itm g0 g1;
                                     Ok (digest, dt, itm)
                               with e -> Error (Printexc.to_string e))
                          done)));
              let run_s = Unix.gettimeofday () -. t0 in
              (* whole-fan-out wall time: per-item adds would race *)
              tm.t_exec_ns <- tm.t_exec_ns + int_of_float (run_s *. 1e9);
              let bad = ref None in
              Array.iteri
                (fun i r ->
                  match (r, !bad) with
                  | Error m, None ->
                      bad := Some (Printf.sprintf "item %d: %s" i m)
                  | _ -> ())
                results;
              (match !bad with
              | Some m -> errorf ?id "%s" m
              | None ->
                  let oks =
                    Array.to_list results |> List.map Result.get_ok
                  in
                  let digests = List.map (fun (d, _, _) -> jstr d) oks in
                  let item_json (digest, dt, itm) =
                    J.Object
                      [
                        ("digest", jstr digest);
                        ("ns", jint (int_of_float (dt *. 1e9)));
                        ("minor_gcs", jint itm.t_minor_gcs);
                        ("major_gcs", jint itm.t_major_gcs);
                        ("promoted_words", jint itm.t_promoted_words);
                        ("allocated_words", jint itm.t_allocated_words);
                      ]
                  in
                  wrap ?id true
                    [
                      ("kernel", jstr entry.Blockability.name);
                      ("variant", jstr (variant_name variant));
                      ("backend", jstr c.c_cm.Backend.bk_tag);
                      ("n", jint n);
                      ( "disposition",
                        jstr
                          (Jit.disposition_name
                             c.c_cm.Backend.bk_disposition) );
                      ("digests", J.Array digests);
                      ("items", J.Array (List.map item_json oks));
                      ("run_s", J.Number run_s);
                    ])))

let handle_profile ?id req =
  match (kernel_of req, bindings_field req) with
  | Error m, _ | _, Error m -> errorf ?id "%s" m
  | Ok entry, Ok bindings -> (
      let bindings =
        if bindings = [] then entry.Blockability.default_bindings
        else bindings
      in
      match
        Blockability.simulate ~bindings ~seed:(seed_field req)
          ~machine:Arch.rs6000_540 entry
      with
      | Error m -> errorf ?id "%s" m
      | Ok s ->
          wrap ?id true
            [
              ("kernel", jstr entry.Blockability.name);
              ( "point_misses",
                jint s.Blockability.point_stats.Cache.misses );
              ( "transformed_misses",
                jint s.Blockability.transformed_stats.Cache.misses );
              ("point_cycles", jint s.Blockability.point_cycles);
              ( "transformed_cycles",
                jint s.Blockability.transformed_cycles );
            ])

let handle_status ?id () =
  let d = Jit.disk_stats () in
  wrap ?id true
    [
      ("compiler_invocations", jint (Jit.compiler_invocations ()));
      ("memo_size", jint (Jit.memo_size ()));
      ("memo_evictions", jint (Jit.memo_evictions ()));
      ("memo_hits", jint (Jit.memo_hits ()));
      ("disk_hits", jint (Jit.disk_hits ()));
      ("dedup_waits", jint (Jit.dedup_waits ()));
      ("cache_dir", jstr (Jit.cache_dir ()));
      ("disk_entries", jint d.Jit.entries);
      ("disk_bytes", jint d.Jit.bytes);
      ("disk_oldest_age_s", J.Number d.Jit.oldest_age_s);
      ("disk_evictions", jint (Jit.disk_evictions ()));
      ("cc_invocations", jint (Cc.invocations ()));
      ("cc_available", J.Bool (Result.is_ok (Cc.available ())));
      ("sampler_running", J.Bool (Obs.Sampler.running ()));
      ("sampler_hz", J.Number (Obs.Sampler.hz ()));
      ("sampler_samples", jint (Obs.Sampler.samples ()));
    ]

(* The flame op: first call (or a ["hz"] field) starts the sampler if
   it is not already running — profiling on demand, no restart — and
   every call returns the folded-stack accumulation so far.  A
   ["reset":true] drops the accumulation after rendering, giving
   interval profiles. *)
let handle_flame ?id req =
  let hz =
    match field req "hz" with
    | Some (J.Number f) when f > 0. -> Some f
    | _ -> None
  in
  Obs.Sampler.ensure ?hz ();
  let resp =
    wrap ?id true
      [
        ("hz", J.Number (Obs.Sampler.hz ()));
        ("samples", jint (Obs.Sampler.samples ()));
        ("folded", jstr (Obs.Sampler.folded_text ()));
      ]
  in
  (match field req "reset" with
  | Some (J.Bool true) -> Obs.Sampler.reset ()
  | _ -> ());
  resp

let handle_metrics ?id () =
  wrap ?id true
    [
      ("metrics", jstr (Obs.Metrics.prometheus ()));
      ("metrics_enabled", J.Bool (Obs.Metrics.enabled ()));
    ]

let json_of_obs_value = function
  | Obs.Str s -> jstr s
  | Obs.Int n -> jint n
  | Obs.Float f -> J.Number f
  | Obs.Bool b -> J.Bool b

let json_of_recorded (e : Obs.event) =
  let base =
    [
      (* epoch nanoseconds exceed double precision: ship as a string *)
      ("ts", jstr (string_of_int e.Obs.ts));
      ("cat", jstr e.Obs.cat);
      ("name", jstr e.Obs.name);
      ( "kind",
        jstr
          (match e.Obs.kind with
          | Obs.Begin -> "begin"
          | Obs.End -> "end"
          | Obs.Instant -> "instant") );
      ("track", jint e.Obs.track);
    ]
  in
  let ctx =
    if e.Obs.trace = 0 then []
    else
      ("trace", jstr (Obs.Ctx.id_hex e.Obs.trace))
      :: ("span", jstr (Obs.Ctx.id_hex e.Obs.span_id))
      ::
      (if e.Obs.parent = 0 then []
       else [ ("parent", jstr (Obs.Ctx.id_hex e.Obs.parent)) ])
  in
  let args =
    List.map (fun (k, v) -> (k, json_of_obs_value v)) e.Obs.args
  in
  J.Object (base @ ctx @ [ ("args", J.Object args) ])

let handle_dump ?id () =
  let events = Obs.Recorder.recent () in
  wrap ?id true
    [
      ("capacity", jint (Obs.Recorder.capacity ()));
      ("n", jint (List.length events));
      ("events", J.Array (List.map json_of_recorded events));
    ]

(* ---- dispatch ---------------------------------------------------- *)

let handle_request ?(queue_ns = 0) ~exec_pool req =
  let id = request_id req in
  (* Every request runs under a trace context: the one the reader
     attached at enqueue time (restored by the Jobq hop), or a fresh
     root when the handler is driven directly. *)
  let ctx =
    match Obs.Ctx.current () with
    | Some _ as c -> c
    | None -> Some (Obs.Ctx.fresh ())
  in
  Obs.Ctx.with_ctx ctx @@ fun () ->
  let trace_hex =
    match ctx with Some c -> Obs.Ctx.id_hex c.Obs.Ctx.trace_id | None -> ""
  in
  let tm = new_timing () in
  let t0 = Obs.now_ns () in
  let g0 = gc_probe () in
  let op_name, (resp, stop), bad_op =
    match str_field req "op" with
    | None -> ("(none)", (errorf ?id "missing \"op\"", false), Some "missing_op")
    | Some op ->
        let result =
          Obs.span ~cat:"serve" "serve.request"
            ~args:[ ("op", Obs.Str op) ]
            (fun () ->
              match op with
              | "ping" -> ((wrap ?id true [ ("pong", J.Bool true) ], false), None)
              | "shutdown" ->
                  ((wrap ?id true [ ("stopping", J.Bool true) ], true), None)
              | "kernels" -> ((handle_kernels ?id (), false), None)
              | "status" -> ((handle_status ?id (), false), None)
              | "metrics" -> ((handle_metrics ?id (), false), None)
              | "flame" -> ((handle_flame ?id req, false), None)
              | "dump" -> ((handle_dump ?id (), false), None)
              | "derive" -> ((handle_derive ?id req, false), None)
              | "compile" -> ((handle_compile ~tm ?id req, false), None)
              | "execute" -> ((handle_execute ~tm ?id req, false), None)
              | "batch" -> ((handle_batch ~exec_pool ~tm ?id req, false), None)
              | "profile" -> ((handle_profile ?id req, false), None)
              | op -> ((errorf ?id "unknown op \"%s\"" op, false), Some "unknown_op"))
        in
        let (resp, stop), cls = result in
        (op, (resp, stop), cls)
  in
  record_gc_delta tm g0 (gc_probe ());
  let total_ns = queue_ns + (Obs.now_ns () - t0) in
  let ok = ok_of resp in
  observe_request ~op:op_name ~ns:total_ns;
  observe_gc tm;
  note_heavy ~op:op_name ~total_ns tm;
  if not ok then
    count_error (Option.value bad_op ~default:"request");
  Obs.Recorder.note ~cat:"serve" "serve.request"
    ~args:
      (("op", Obs.Str op_name) :: ("ok", Obs.Bool ok)
       :: ("ns", Obs.Int total_ns)
       ::
       (match error_text resp with
       | Some m when not ok -> [ ("error", Obs.Str m) ]
       | _ -> []));
  (with_telemetry ~trace_hex ~queue_ns ~tm ~total_ns resp, stop)

let handle_line ?queue_ns ~exec_pool line =
  match J.parse line with
  | Error e ->
      count_error "parse";
      Obs.Recorder.note ~cat:"serve" "serve.parse_error"
        ~args:[ ("error", Obs.Str e) ];
      (J.to_string (errorf "parse error: %s" e), false)
  | Ok req -> (
      match handle_request ?queue_ns ~exec_pool req with
      | resp, stop -> (J.to_string resp, stop)
      | exception e ->
          let msg = Printexc.to_string e in
          count_error "internal";
          Obs.Recorder.note ~cat:"serve" "serve.internal_error"
            ~args:[ ("error", Obs.Str msg) ];
          (* a handler blew up: flush the flight recorder for post-hoc
             context (the dump op only helps when the client asks) *)
          prerr_string (Obs.Recorder.dump ());
          Stdlib.flush stderr;
          ( J.to_string (errorf ?id:(request_id req) "internal error: %s" msg),
            false ))

(* ---- server loops ------------------------------------------------ *)

let is_shutdown line =
  match J.parse line with
  | Ok req -> str_field req "op" = Some "shutdown"
  | Error _ -> false

let run_channel ~qpool ~exec_pool ic oc =
  let q = Jobq.create ~name:"serve" () in
  let out_mu = Mutex.create () in
  let stopping = Atomic.make false in
  let respond s =
    Mutex.lock out_mu;
    output_string oc s;
    output_char oc '\n';
    flush oc;
    Mutex.unlock out_mu
  in
  let reader =
    Domain.spawn (fun () ->
        let rec loop () =
          match input_line ic with
          | exception End_of_file -> Jobq.close q
          | line ->
              let line = String.trim line in
              if line = "" then loop ()
              else begin
                (* Each request line gets a fresh root trace context;
                   [Jobq.push] captures it, the worker lane restores it,
                   so the queue hop stays on the request's trace.  The
                   payload carries the enqueue stamp for the response's
                   queue_ns. *)
                Obs.Ctx.with_ctx
                  (Some (Obs.Ctx.fresh ()))
                  (fun () -> Jobq.push q (Obs.now_ns (), line));
                (* Stop reading past a shutdown so the pipe's remaining
                   bytes (if any) are left alone and the lanes drain
                   out. *)
                if is_shutdown line then Jobq.close q else loop ()
              end
        in
        loop ())
  in
  (* Lane utilization: each lane of this connection accumulates its
     request-handling wall time into a cumulative per-lane gauge, so a
     scraper can diff successive values against wall clock.  Lane ids
     come from a dispenser — Pool lanes have no public index here. *)
  let lane_ids = Atomic.make 0 in
  Pool.run qpool (fun () ->
      let lane = Atomic.fetch_and_add lane_ids 1 in
      let busy_gauge =
        Obs.Metrics.gauge
          ~help:"Cumulative busy nanoseconds of one serve request lane"
          (Obs.Metrics.labelled "serve.lane_busy_ns"
             [ ("lane", string_of_int lane) ])
      in
      Jobq.drain q (fun (enqueued_ns, line) ->
          let queue_ns = max 0 (Obs.now_ns () - enqueued_ns) in
          let t0 = Obs.now_ns () in
          let resp, stop = handle_line ~queue_ns ~exec_pool line in
          Obs.Metrics.set_gauge busy_gauge
            (Obs.Metrics.gauge_value busy_gauge + (Obs.now_ns () - t0));
          if stop then Atomic.set stopping true;
          respond resp));
  Domain.join reader;
  Atomic.get stopping

(* The daemon always serves with metrics on (the metrics op is useless
   otherwise) and keeps at least the flight recorder listening: when no
   sink was installed by --trace / BLOCKABILITY_TRACE, spans are
   mirrored into the bounded ring — "recorder only" mode — so a dump
   after a failure has context without full-tracing cost. *)
let enable_telemetry () =
  Obs.Metrics.set_enabled true;
  if not (Obs.enabled ()) then Obs.set_sink (Obs.Recorder.sink ());
  (* Continuous profiling opt-in: BLOCKC_PROFILE_HZ starts the span-
     stack sampler at daemon startup (the flame op can also start it
     on demand later). *)
  Obs.Sampler.init_from_env ()

let run_stdio ?(workers = 2) () =
  enable_telemetry ();
  let qpool = Pool.create ~name:"serve" ~domains:(max 1 workers) () in
  let (_ : bool) =
    run_channel ~qpool ~exec_pool:(Pool.default ()) stdin stdout
  in
  Pool.shutdown qpool

(* A leftover socket file from a crashed daemon would make every
   restart fail with EADDRINUSE, but blindly unlinking would silently
   hijack the path from a daemon that is still alive.  Distinguish the
   two with a connect probe: a live daemon accepts (refuse to start); a
   stale file refuses the connection (unlink and proceed). *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      Fun.protect
        ~finally:(fun () ->
          try Unix.close probe with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect probe (Unix.ADDR_UNIX path) with
          | () -> true
          | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) ->
              false)
    in
    if live then
      failwith
        (Printf.sprintf "socket %s is in use by a running daemon" path);
    try Sys.remove path with Sys_error _ -> ()
  end

let run_socket ?(workers = 2) path =
  enable_telemetry ();
  claim_socket_path path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let qpool = Pool.create ~name:"serve" ~domains:(max 1 workers) () in
  let exec_pool = Pool.default () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Sys.remove path with Sys_error _ -> ());
      Pool.shutdown qpool)
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let stopped = run_channel ~qpool ~exec_pool ic oc in
        (try close_out oc with Sys_error _ -> ());
        if not stopped then accept_loop ()
      in
      accept_loop ())
