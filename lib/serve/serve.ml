(* NDJSON compile/execute server on the domain pool: see serve.mli. *)

module J = Json_min

(* ---- JSON construction helpers ---------------------------------- *)

(* Json_min strings are raw (escapes are never decoded), so anything we
   wrap in [J.String] must already be valid JSON string contents —
   error messages carry quotes and newlines, escape them here. *)
let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = J.String (escape s)
let jint n = J.Number (float_of_int n)

let jbindings bs =
  J.Object (List.map (fun (k, v) -> (escape k, jint v)) bs)

let wrap ?id ok fields =
  let fields = ("ok", J.Bool ok) :: fields in
  J.Object (match id with None -> fields | Some id -> ("id", id) :: fields)

let errorf ?id fmt =
  Printf.ksprintf (fun m -> wrap ?id false [ ("error", jstr m) ]) fmt

(* ---- request decoding ------------------------------------------- *)

let field req name =
  match req with J.Object kvs -> List.assoc_opt name kvs | _ -> None

let str_field req name =
  match field req name with Some (J.String s) -> Some s | _ -> None

let as_int = function
  | J.Number f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let int_field req name = Option.bind (field req name) as_int
let request_id req = field req "id"

let bindings_of_json j =
  match j with
  | J.Object kvs ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (k, v) :: rest -> (
            match as_int v with
            | Some n -> go ((k, n) :: acc) rest
            | None -> Error ("binding " ^ k ^ " is not an integer"))
      in
      go [] kvs
  | _ -> Error "bindings must be an object of integers"

let bindings_field req =
  match field req "bindings" with
  | None -> Ok []
  | Some j -> bindings_of_json j

let seed_field req = Option.value (int_field req "seed") ~default:42

(* ---- kernel / variant plumbing ---------------------------------- *)

let kernel_of req =
  match str_field req "kernel" with
  | None -> Error "missing \"kernel\""
  | Some name -> (
      match Blockability.find name with
      | Some e -> Ok e
      | None ->
          Error
            ("unknown kernel \"" ^ name ^ "\" (known: "
            ^ String.concat ", " (Blockability.names ())
            ^ ")"))

type variant = Point | Transformed

let variant_name = function Point -> "point" | Transformed -> "transformed"

let variant_of req =
  match Option.value (str_field req "variant") ~default:"point" with
  | "point" -> Ok Point
  | "transformed" -> Ok Transformed
  | v -> Error ("unknown variant \"" ^ v ^ "\" (point | transformed)")

type compiled = {
  c_entry : Blockability.entry;
  c_variant : variant;
  c_bp : Blueprint.t;
  c_loaded : Jit.loaded;
}

(* Derivation is pure and the kernel registry is fixed, so the server
   derives each kernel once; repeat compile/execute requests go
   straight to the blueprint lookup.  Duplicate derivations during a
   race are benign (deterministic result). *)
let derived_mu = Mutex.create ()

let derived : (string, (Stmt.t list, string) result) Hashtbl.t =
  Hashtbl.create 8

let derived_block entry =
  let name = entry.Blockability.name in
  Mutex.lock derived_mu;
  match Hashtbl.find_opt derived name with
  | Some r ->
      Mutex.unlock derived_mu;
      r
  | None ->
      Mutex.unlock derived_mu;
      let r =
        match Blockability.derive entry with
        | Error e -> Error ("derivation failed: " ^ e)
        | Ok { Blocker.result; _ } -> Ok [ result ]
      in
      Mutex.lock derived_mu;
      Hashtbl.replace derived name r;
      Mutex.unlock derived_mu;
      r

let compile_variant entry variant =
  let block =
    match variant with
    | Point -> Ok entry.Blockability.kernel.Kernel_def.block
    | Transformed -> derived_block entry
  in
  match block with
  | Error _ as e -> e
  | Ok block -> (
      let bp =
        Blueprint.of_block
          ~shapes:entry.Blockability.kernel.Kernel_def.shapes block
      in
      let name =
        entry.Blockability.name ^ "_" ^ variant_name variant
      in
      match Jit.compile_blueprint ~name bp with
      | Error _ as e -> e
      | Ok l ->
          Ok { c_entry = entry; c_variant = variant; c_bp = bp; c_loaded = l })

(* Environments mirror [Blockability.native_compare]: the kernel's own
   setup, then the entry's scratch arrays ([extra_setup]); the
   transformed variant additionally needs the entry's extra bindings
   (block sizes), with caller-supplied values taking precedence. *)
let env_for c ~bindings ~seed =
  let entry = c.c_entry in
  let bindings =
    if bindings = [] then entry.Blockability.default_bindings else bindings
  in
  let bindings =
    match c.c_variant with
    | Point -> bindings
    | Transformed -> entry.Blockability.extra_bindings @ bindings
  in
  let env =
    Kernel_def.make_env entry.Blockability.kernel ~bindings ~seed
  in
  entry.Blockability.extra_setup env ~bindings;
  env

(* The bitwise-comparison handle: an MD5 of the kernel's traced REAL
   arrays after the run.  Two runs agree on this digest iff they agree
   bitwise on every result array. *)
let digest_env entry env =
  let arrays =
    List.map
      (fun a -> (a, Env.farray_data env a))
      entry.Blockability.kernel.Kernel_def.traced
  in
  Digest.to_hex (Digest.string (Marshal.to_string arrays []))

let run_one c ~bindings ~seed =
  match env_for c ~bindings ~seed with
  | exception Invalid_argument m -> Error m
  | env -> (
      let t0 = Unix.gettimeofday () in
      match
        Jit.run ~bindings:c.c_bp.Blueprint.bindings c.c_loaded.Jit.fn env
      with
      | Error m -> Error m
      | Ok () ->
          Ok (digest_env c.c_entry env, Unix.gettimeofday () -. t0))

(* ---- per-op handlers -------------------------------------------- *)

let compile_fields c =
  [
    ("kernel", jstr c.c_entry.Blockability.name);
    ("variant", jstr (variant_name c.c_variant));
    ("blueprint", jstr c.c_bp.Blueprint.key);
    ("key", jstr c.c_loaded.Jit.key);
    ( "disposition",
      jstr (Jit.disposition_name c.c_loaded.Jit.disposition) );
    ("compile_s", J.Number c.c_loaded.Jit.compile_s);
    ("cached", J.Bool c.c_loaded.Jit.cached);
    ("cmxs", jstr c.c_loaded.Jit.cmxs);
    ("hoisted", jbindings c.c_bp.Blueprint.bindings);
  ]

let handle_kernels ?id () =
  let one (e : Blockability.entry) =
    J.Object
      [
        ("name", jstr e.Blockability.name);
        ("paper_ref", jstr e.Blockability.paper_ref);
        ( "params",
          J.Array
            (List.map jstr e.Blockability.kernel.Kernel_def.params) );
        ("default_bindings", jbindings e.Blockability.default_bindings);
        ("blockable", J.Bool e.Blockability.blockable);
      ]
  in
  wrap ?id true
    [ ("kernels", J.Array (List.map one Blockability.entries)) ]

let handle_derive ?id req =
  match kernel_of req with
  | Error m -> errorf ?id "%s" m
  | Ok entry -> (
      let name = entry.Blockability.name in
      match Blockability.derive entry with
      | Error reason ->
          (* The paper's negative results: rejection is the correct
             outcome for a non-blockable kernel, not a server error. *)
          wrap ?id true
            [
              ("kernel", jstr name);
              ("blockable", J.Bool false);
              ("reason", jstr reason);
            ]
      | Ok { Blocker.result; steps } ->
          let step (s : Blocker.trace_step) =
            J.Object
              [
                ("name", jstr s.Blocker.name);
                ("detail", jstr s.Blocker.detail);
              ]
          in
          wrap ?id true
            [
              ("kernel", jstr name);
              ("blockable", J.Bool true);
              ("steps", J.Array (List.map step steps));
              ("result", jstr (Stmt.block_to_string [ result ]));
            ])

let handle_compile ?id req =
  match kernel_of req with
  | Error m -> errorf ?id "%s" m
  | Ok entry -> (
      match variant_of req with
      | Error m -> errorf ?id "%s" m
      | Ok variant -> (
          match compile_variant entry variant with
          | Error m -> errorf ?id "%s" m
          | Ok c -> wrap ?id true (compile_fields c)))

let handle_execute ?id req =
  match (kernel_of req, variant_of req, bindings_field req) with
  | Error m, _, _ | _, Error m, _ | _, _, Error m -> errorf ?id "%s" m
  | Ok entry, Ok variant, Ok bindings -> (
      match compile_variant entry variant with
      | Error m -> errorf ?id "%s" m
      | Ok c -> (
          match run_one c ~bindings ~seed:(seed_field req) with
          | Error m -> errorf ?id "%s" m
          | Ok (digest, run_s) ->
              wrap ?id true
                [
                  ("kernel", jstr entry.Blockability.name);
                  ("variant", jstr (variant_name variant));
                  ("digest", jstr digest);
                  ("run_s", J.Number run_s);
                  ( "disposition",
                    jstr
                      (Jit.disposition_name c.c_loaded.Jit.disposition)
                  );
                ]))

let batch_items entry req =
  match (field req "bindings_list", field req "sizes") with
  | Some (J.Array items), None ->
      let rec go acc i = function
        | [] -> Ok (List.rev acc)
        | j :: rest -> (
            match bindings_of_json j with
            | Ok bs -> go (bs :: acc) (i + 1) rest
            | Error m -> Error (Printf.sprintf "item %d: %s" i m))
      in
      go [] 0 items
  | None, Some (J.Array sizes) ->
      (* Shorthand: bind every kernel parameter to the one integer. *)
      let params = entry.Blockability.kernel.Kernel_def.params in
      let rec go acc i = function
        | [] -> Ok (List.rev acc)
        | j :: rest -> (
            match as_int j with
            | Some n -> go (List.map (fun p -> (p, n)) params :: acc) (i + 1) rest
            | None -> Error (Printf.sprintf "size %d is not an integer" i))
      in
      go [] 0 sizes
  | _ ->
      Error
        "batch needs \"bindings_list\" (array of binding objects) or \
         \"sizes\" (array of integers)"

let batch_size_metric = lazy (Obs.Metrics.histogram "serve.batch_size")

(* [Pool.run] regions on one pool must not overlap, and two request
   lanes could otherwise dispatch batches concurrently onto the shared
   default pool — serialize the fan-out, not the compile. *)
let batch_mu = Mutex.create ()

let handle_batch ~exec_pool ?id req =
  match (kernel_of req, variant_of req) with
  | Error m, _ | _, Error m -> errorf ?id "%s" m
  | Ok entry, Ok variant -> (
      match batch_items entry req with
      | Error m -> errorf ?id "%s" m
      | Ok [] -> errorf ?id "empty batch"
      | Ok items -> (
          match compile_variant entry variant with
          | Error m -> errorf ?id "%s" m
          | Ok c ->
              let seed = seed_field req in
              let items = Array.of_list items in
              let n = Array.length items in
              Obs.Metrics.observe (Lazy.force batch_size_metric) n;
              let results = Array.make n (Error "not run") in
              let t0 = Unix.gettimeofday () in
              Obs.span ~cat:"serve" "serve.batch"
                ~args:
                  [
                    ("kernel", Obs.Str entry.Blockability.name);
                    ("n", Obs.Int n);
                  ]
                (fun () ->
                  Mutex.lock batch_mu;
                  Fun.protect
                    ~finally:(fun () -> Mutex.unlock batch_mu)
                    (fun () ->
                      Parallel.for_ ~pool:exec_pool ~lo:0 ~hi:(n - 1)
                        (fun clo chi ->
                          for i = clo to chi do
                            results.(i) <-
                              (try
                                 Result.map fst
                                   (run_one c ~bindings:items.(i) ~seed)
                               with e -> Error (Printexc.to_string e))
                          done)));
              let run_s = Unix.gettimeofday () -. t0 in
              let bad = ref None in
              Array.iteri
                (fun i r ->
                  match (r, !bad) with
                  | Error m, None ->
                      bad := Some (Printf.sprintf "item %d: %s" i m)
                  | _ -> ())
                results;
              (match !bad with
              | Some m -> errorf ?id "%s" m
              | None ->
                  let digests =
                    Array.to_list results
                    |> List.map (fun r -> jstr (Result.get_ok r))
                  in
                  wrap ?id true
                    [
                      ("kernel", jstr entry.Blockability.name);
                      ("variant", jstr (variant_name variant));
                      ("n", jint n);
                      ( "disposition",
                        jstr
                          (Jit.disposition_name
                             c.c_loaded.Jit.disposition) );
                      ("digests", J.Array digests);
                      ("run_s", J.Number run_s);
                    ])))

let handle_profile ?id req =
  match (kernel_of req, bindings_field req) with
  | Error m, _ | _, Error m -> errorf ?id "%s" m
  | Ok entry, Ok bindings -> (
      let bindings =
        if bindings = [] then entry.Blockability.default_bindings
        else bindings
      in
      match
        Blockability.simulate ~bindings ~seed:(seed_field req)
          ~machine:Arch.rs6000_540 entry
      with
      | Error m -> errorf ?id "%s" m
      | Ok s ->
          wrap ?id true
            [
              ("kernel", jstr entry.Blockability.name);
              ( "point_misses",
                jint s.Blockability.point_stats.Cache.misses );
              ( "transformed_misses",
                jint s.Blockability.transformed_stats.Cache.misses );
              ("point_cycles", jint s.Blockability.point_cycles);
              ( "transformed_cycles",
                jint s.Blockability.transformed_cycles );
            ])

let handle_status ?id () =
  wrap ?id true
    [
      ("compiler_invocations", jint (Jit.compiler_invocations ()));
      ("memo_size", jint (Jit.memo_size ()));
      ("memo_evictions", jint (Jit.memo_evictions ()));
      ("dedup_waits", jint (Jit.dedup_waits ()));
      ("cache_dir", jstr (Jit.cache_dir ()));
    ]

(* ---- dispatch ---------------------------------------------------- *)

let handle_request ~exec_pool req =
  let id = request_id req in
  match str_field req "op" with
  | None -> (errorf ?id "missing \"op\"", false)
  | Some op ->
      Obs.span ~cat:"serve" "serve.request"
        ~args:[ ("op", Obs.Str op) ]
        (fun () ->
          match op with
          | "ping" -> (wrap ?id true [ ("pong", J.Bool true) ], false)
          | "shutdown" ->
              (wrap ?id true [ ("stopping", J.Bool true) ], true)
          | "kernels" -> (handle_kernels ?id (), false)
          | "status" -> (handle_status ?id (), false)
          | "derive" -> (handle_derive ?id req, false)
          | "compile" -> (handle_compile ?id req, false)
          | "execute" -> (handle_execute ?id req, false)
          | "batch" -> (handle_batch ~exec_pool ?id req, false)
          | "profile" -> (handle_profile ?id req, false)
          | op -> (errorf ?id "unknown op \"%s\"" op, false))

let handle_line ~exec_pool line =
  match J.parse line with
  | Error e -> (J.to_string (errorf "parse error: %s" e), false)
  | Ok req -> (
      match handle_request ~exec_pool req with
      | resp, stop -> (J.to_string resp, stop)
      | exception e ->
          ( J.to_string
              (errorf ?id:(request_id req) "internal error: %s"
                 (Printexc.to_string e)),
            false ))

(* ---- server loops ------------------------------------------------ *)

let is_shutdown line =
  match J.parse line with
  | Ok req -> str_field req "op" = Some "shutdown"
  | Error _ -> false

let run_channel ~qpool ~exec_pool ic oc =
  let q = Jobq.create ~name:"serve" () in
  let out_mu = Mutex.create () in
  let stopping = Atomic.make false in
  let respond s =
    Mutex.lock out_mu;
    output_string oc s;
    output_char oc '\n';
    flush oc;
    Mutex.unlock out_mu
  in
  let reader =
    Domain.spawn (fun () ->
        let rec loop () =
          match input_line ic with
          | exception End_of_file -> Jobq.close q
          | line ->
              let line = String.trim line in
              if line = "" then loop ()
              else begin
                Jobq.push q line;
                (* Stop reading past a shutdown so the pipe's remaining
                   bytes (if any) are left alone and the lanes drain
                   out. *)
                if is_shutdown line then Jobq.close q else loop ()
              end
        in
        loop ())
  in
  Pool.run qpool (fun () ->
      Jobq.drain q (fun line ->
          let resp, stop = handle_line ~exec_pool line in
          if stop then Atomic.set stopping true;
          respond resp));
  Domain.join reader;
  Atomic.get stopping

let run_stdio ?(workers = 2) () =
  let qpool = Pool.create ~domains:(max 1 workers) in
  let (_ : bool) =
    run_channel ~qpool ~exec_pool:(Pool.default ()) stdin stdout
  in
  Pool.shutdown qpool

let run_socket ?(workers = 2) path =
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let qpool = Pool.create ~domains:(max 1 workers) in
  let exec_pool = Pool.default () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Sys.remove path with Sys_error _ -> ());
      Pool.shutdown qpool)
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let stopped = run_channel ~qpool ~exec_pool ic oc in
        (try close_out oc with Sys_error _ -> ());
        if not stopped then accept_loop ()
      in
      accept_loop ())
