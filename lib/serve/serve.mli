(** [blockc serve]: a batched compile/execute request server on the
    domain pool.

    The protocol is newline-delimited JSON: one request object per
    line, one response object per line.  Responses carry the request's
    ["id"] verbatim (any JSON value) and may arrive out of order —
    requests are distributed over a {!Pool} of worker domains through a
    {!Jobq}, so concurrent clients match responses by id, not by
    position.  Every response has ["ok"]: [true] plus op-specific
    fields, or [false] plus ["error"].

    Requests select an operation with ["op"]:

    - [ping] — liveness check; replies [{"ok":true,"pong":true}].
    - [kernels] — catalogue of the registered kernels (name, paper
      reference, parameters, default bindings, blockability).
    - [derive {"kernel"}] — run the compiler driver; replies with the
      decision [steps] and the transformed IR, or
      [{"blockable":false,"reason":...}] for the paper's negative
      results (that is a successful response, not an error).
    - [compile {"kernel","variant","backend"?}] — blueprint-normalize
      and compile the ["point"] (default) or ["transformed"] variant on
      the requested {!Backend} (["ocaml"], the default, or ["c"]);
      replies with the backend tag, the blueprint digest, the full
      cache key, the cache ["disposition"] (["memo"] / ["disk"] /
      ["compiled"]), the compile wall time, and the on-disk
      ["artifact"] path (also echoed as ["cmxs"] for older clients).
      Repeat compiles of one loop structure are a hash lookup
      ({!Jit.compile_blueprint} / {!Cc.compile_blueprint}).
    - [execute {"kernel","variant","bindings","seed","backend"?}] —
      compile (or fetch) and run once at the given sizes on the
      requested backend; replies with an MD5 digest of the kernel's
      traced arrays after the run (the bitwise-comparison handle) and
      the run wall time.  Digests are backend-independent: both code
      generators are bitwise-checked against the interpreter.
    - [batch
       {"kernel","variant","seed","backend"?,"bindings_list"|"sizes"}] —
      many executions of one blueprint as a single dispatch: compile
      once, then fan the items out across the default pool's domains
      ({!Parallel.for_}).  ["bindings_list"] is an array of binding
      objects; ["sizes"] is shorthand binding every kernel parameter to
      the given integer.  Replies with one digest per item, in request
      order (results are deterministic: each item runs in its own
      environment), plus an ["items"] array giving each item's wall
      time (["ns"]) and GC deltas (["minor_gcs"], ["major_gcs"],
      ["promoted_words"], ["allocated_words"]) measured on the
      executing lane.
    - [profile {"kernel","bindings","seed"}] — cache-simulate both
      variants on the paper's RS/6000-540 model; replies with per-
      variant miss and memory-cycle counts.
    - [status] — process-wide JIT cache counters ([ocamlopt] runs, memo
      size, hits and evictions, disk hits, single-flight dedup waits),
      the cache directory plus its on-disk shape (["disk_entries"],
      ["disk_bytes"], ["disk_oldest_age_s"], ["disk_evictions"] — see
      [BLOCKC_JIT_DISK_CAP]), the C backend state (["cc_available"],
      ["cc_invocations"]), and the
      {!Obs.Sampler} state (["sampler_running"], ["sampler_hz"],
      ["sampler_samples"]).
    - [flame {"hz"?,"reset"?}] — continuous-profiling readout: starts
      the {!Obs.Sampler} on first use (at ["hz"], else
      [BLOCKC_PROFILE_HZ], else the default rate) and replies with the
      accumulated folded-stack profile (["folded"], flamegraph.pl
      input) and the sample count; ["reset":true] drops the
      accumulation after rendering, for interval profiles.
    - [metrics] — the full {!Obs.Metrics} registry as a Prometheus text
      exposition (one JSON-escaped string field ["metrics"]): request
      counts, labelled [serve.errors] classes, and p50/p90/p99/max
      latency summaries overall and per op ([serve.request.ns{op=...}]).
      [blockc stats --socket PATH] is the scraping client.
    - [dump] — flush the {!Obs.Recorder} flight recorder: the bounded
      ring of recent events (every request and error is noted there
      even without tracing), as structured JSON, oldest first.
    - [shutdown] — acknowledge and stop the server loop.

    {b Response telemetry.}  Every response object additionally carries
    ["trace_id"] (the request's trace context in hex — the same id its
    spans carry in any installed sink, so a Chrome trace of a [batch]
    fan-out connects to the response that triggered it) and a
    ["server"] timing breakdown: ["queue_ns"] (time queued between the
    reader and a worker lane), ["compile_ns"] (blueprint normalize +
    JIT, ~0 on memo hits), ["exec_ns"] (native run / batch fan-out
    wall), ["total_ns"] (queue + handling), and the request's GC
    deltas captured around handling on the worker lane:
    ["minor_gcs"], ["major_gcs"], ["promoted_words"],
    ["allocated_words"] (collection counts from [Gc.quick_stat], word
    counts from [Gc.counters] — the variant that stays exact in native
    code between minor collections — also exported
    as the [serve.gc.*] histograms; requests breaching
    [BLOCKC_SLOW_REQUEST_NS] or [BLOCKC_ALLOC_HEAVY_WORDS] are
    additionally noted in the flight recorder as
    [serve.slow_request]).  Responses to requests
    that crashed the handler ([internal error]) carry no telemetry
    fields; the flight recorder is dumped to stderr instead.

    Example session (one request and response per line):

    {v
    > {"id":1,"op":"ping"}
    < {"id":1,"ok":true,"pong":true}
    > {"id":2,"op":"compile","kernel":"lu","variant":"transformed"}
    < {"id":2,"ok":true,"kernel":"lu","variant":"transformed",
       "blueprint":"9f...","key":"c1...","disposition":"compiled",
       "compile_s":0.103,...}
    > {"id":3,"op":"batch","kernel":"lu","variant":"transformed","sizes":[8,12,16]}
    < {"id":3,"ok":true,"n":3,"disposition":"memo","digests":[...],...}
    > {"id":4,"op":"shutdown"}
    < {"id":4,"ok":true,"stopping":true}
    v}

    Observability: each request runs under its own {!Obs.Ctx} trace
    (created by the reader, carried across the {!Jobq} hop, re-installed
    in {!Parallel.for_} lanes) inside a ["serve.request"] span; queue
    wait is the [serve.queue_wait] timer / [serve.depth] gauge (from
    the {!Jobq}); request latency lands in the [serve.request.ns]
    log-linear histograms (overall and per op); failures increment the
    labelled [serve.errors] counters ([class="parse" | "missing_op" |
    "unknown_op" | "request" | "internal"]); batch fan-out sizes land
    in the [serve.batch_size] histogram; and compile dedup hits / memo
    evictions are counted by {!Jit}.  {!run_stdio} / {!run_socket}
    switch metrics on and install the {!Obs.Recorder} ring as the sink
    when no other sink is active. *)

val handle_request :
  ?queue_ns:int -> exec_pool:Pool.t -> Json_min.t -> Json_min.t * bool
(** Process one decoded request; returns the response (including the
    telemetry fields) and whether it was a [shutdown].  [queue_ns]
    (default 0) is the time the request sat queued, reported in the
    response breakdown and included in the latency histograms.
    [exec_pool] runs batch fan-out.  Exposed for the unit tests — the
    server loops call it through {!handle_line}. *)

val handle_line : ?queue_ns:int -> exec_pool:Pool.t -> string -> string * bool
(** Parse one request line and render the response line (no trailing
    newline).  Malformed JSON yields an ["ok":false] response, never an
    exception. *)

val run_channel : qpool:Pool.t -> exec_pool:Pool.t -> in_channel -> out_channel -> bool
(** Serve one connection: a reader domain feeds a {!Jobq} drained by
    [qpool]'s lanes, responses are written mutex-serialized.  Returns
    when the input reaches EOF or a [shutdown] request was processed
    (then [true]). *)

val run_stdio : ?workers:int -> unit -> unit
(** Serve stdin/stdout with [workers] (default 2) request lanes. *)

val run_socket : ?workers:int -> string -> unit
(** Bind a Unix-domain socket at the given path and serve connections
    sequentially until a client sends [shutdown]; the socket file is
    removed on exit.  A socket file left behind by a crashed daemon is
    detected with a connect probe and unlinked; if the probe connects
    (a daemon is still serving the path), raises [Failure] instead of
    hijacking the path. *)
