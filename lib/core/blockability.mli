(** High-level API over the whole system.

    An {!entry} packages one of the paper's kernels with the compiler
    driver that transforms it, the scratch state the transformed code
    needs, and default problem sizes — everything the CLI, the examples
    and the benchmark harness share.

    Typical use:

    {[
      let entry = Option.get (Blockability.find "lu") in
      let { Blocker.result; steps } = Result.get_ok (Blockability.derive entry) in
      print_string (Stmt.to_string result);
      Blockability.verify entry ~bindings:[ ("N", 13) ] ~seed:42
    ]} *)

type entry = {
  name : string;
  paper_ref : string;  (** section / figure in the paper *)
  kernel : Kernel_def.t;
  derive : unit -> (Stmt.t Blocker.traced, string) result;
      (** run the compiler driver on the kernel's IR *)
  extra_bindings : (string * int) list;
      (** parameters only the transformed code uses (block sizes) *)
  extra_setup : Env.t -> bindings:(string * int) list -> unit;
      (** scratch arrays the transformed code needs *)
  default_bindings : (string * int) list;  (** a small default problem *)
  blockable : bool;
      (** whether [derive] is expected to succeed.  [false] marks the
          paper's negative results (Householder, §5.3): [derive] returns
          [Error] with the rejection reason, and that is the correct
          outcome, not a failure of the system. *)
}

val entries : entry list
val find : string -> entry option
val names : unit -> string list

val derive : entry -> (Stmt.t Blocker.traced, string) result

val verify :
  ?bindings:(string * int) list -> ?seed:int -> entry -> (unit, string) result
(** Derive, then check interpreter equivalence of point vs transformed
    on the given (default: entry's default) problem size. *)

type sim_result = {
  point_stats : Cache.stats;
  transformed_stats : Cache.stats;
  point_by_array : (string * Cache.stats) list;
      (** per-array breakdown of [point_stats] (see
          {!Trace.stats_by_array}) *)
  transformed_by_array : (string * Cache.stats) list;
  point_cycles : int;
  transformed_cycles : int;
}

val simulate :
  ?bindings:(string * int) list ->
  ?seed:int ->
  machine:Arch.t ->
  entry ->
  (sim_result, string) result
(** Trace both versions through the cache simulator. *)

(** One variant's memory-hierarchy profile: per-level and TLB stats, the
    per-reference and per-loop-nest miss attribution, the exact LRU
    reuse-distance histogram and the miss-vs-cache-size curve derived
    from it, and the cost-model validation (stack-distance prediction vs
    the simulated, set-associative L1). *)
type kernel_profile = {
  kp_kernel : string;
  kp_variant : string;  (** ["point"] or ["transformed"] *)
  kp_block : int option;  (** the KS binding used, when overridden *)
  kp_levels : (string * Cache.stats) list;  (** innermost (L1) first *)
  kp_tlb : Cache.stats;
  kp_cycles : int;  (** {!Hier.cycles} under the per-level model *)
  kp_refs : Trace.ref_profile list;
  kp_loops : (string * Trace.ref_counts) list;
  kp_hist : (int * int) list;  (** exact reuse distances (L1 lines) *)
  kp_cold : int;
  kp_footprint_lines : int;  (** distinct L1 lines touched *)
  kp_miss_curve : (int * int) list;  (** [(lines, misses)] powers of two *)
  kp_validation : Cost.validation;
}

val profile :
  ?bindings:(string * int) list ->
  ?seed:int ->
  ?machine:Arch.t ->
  ?spec:Hier.spec ->
  ?block:int ->
  entry ->
  (kernel_profile * kernel_profile, string) result
(** Profile point and transformed variants through the memory hierarchy
    (default machine rs6000, hierarchy {!Hier.of_arch}).  [block]
    overrides the kernel's KS binding; an [Error] names kernels without
    one.  When tracing is on, summaries and per-reference attributions
    also stream as ["profile"]-category events. *)

(** Wall-clock comparison of the point and transformed variants compiled
    to native code (see {!Jit}).  Times are best-of-[reps] for one full
    kernel run; [cached] flags report whether the plugin came from the
    on-disk JIT cache (first compiles cost ~100ms of [ocamlopt]). *)
type native_result = {
  nt_backend : string;  (** which {!Backend} produced the numbers *)
  nt_point_s : float;
  nt_transformed_s : float;
  nt_speedup : float;  (** point / transformed *)
  nt_point_cached : bool;
  nt_transformed_cached : bool;
  nt_model_speedup : float option;
      (** cache-model memory-cycle ratio at [verify_bindings] (the
          rs6000 machine model), for comparison against the measured
          wall-clock ratio *)
  nt_bindings : (string * int) list;
  nt_verify_bindings : (string * int) list;
}

val native_compare :
  ?backend:(module Backend.S) ->
  ?bindings:(string * int) list ->
  ?verify_bindings:(string * int) list ->
  ?seed:int ->
  ?reps:int ->
  ?block:int ->
  entry ->
  (native_result, string) result
(** Derive, compile both variants natively on [backend] (default
    {!Backend.Ocaml}; pass {!Backend.C} to measure without the OCaml
    allocator in the loop), check each is bitwise equal to the
    interpreter at [verify_bindings] (default: the entry's small
    default problem), then time both at [bindings] (default likewise —
    pass something larger for meaningful numbers).  [block] overrides
    the KS binding as in {!profile}.  Any divergence from the
    interpreter is an [Error]: the native path never trades correctness
    for speed. *)

val profile_sweep :
  ?bindings:(string * int) list ->
  ?seed:int ->
  ?machine:Arch.t ->
  ?spec:Hier.spec ->
  blocks:int list ->
  entry ->
  ((int * kernel_profile) list, string) result
(** The transformed variant profiled at each block size.  Feed the
    [(block, L1 misses)] pairs to {!Blocker.choose_block_size} to turn
    the sweep into a cited block-size decision. *)
