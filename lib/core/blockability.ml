type entry = {
  name : string;
  paper_ref : string;
  kernel : Kernel_def.t;
  derive : unit -> (Stmt.t Blocker.traced, string) result;
  extra_bindings : (string * int) list;
  extra_setup : Env.t -> bindings:(string * int) list -> unit;
  default_bindings : (string * int) list;
  blockable : bool;
}

let no_extra (_ : Env.t) ~bindings:(_ : (string * int) list) = ()

let untraced result = { Blocker.result; steps = [] }

(* ---- matmul: IF-inspection of the guarded K loop ---- *)

let matmul_names =
  If_inspection.default_names ~prefix:"K"
    ~used:(Ir_util.index_vars [ Stmt.Loop K_matmul.nest ])

let matmul_derive () =
  match If_inspection.apply ~names:matmul_names K_matmul.guarded_k_loop with
  | Error _ as e -> e
  | Ok block ->
      Ok (untraced (Stmt.Loop { K_matmul.nest with body = block }))

let matmul_scratch env ~bindings =
  let n = List.assoc "N" bindings in
  Env.add_iarray env matmul_names.If_inspection.lb [ (1, (n / 2) + 1) ];
  Env.add_iarray env matmul_names.If_inspection.ub [ (1, (n / 2) + 1) ]

(* ---- Givens ---- *)

let givens_names = ref None

let givens_derive () =
  match Givens_opt.optimize K_givens.point_loop with
  | Error _ as e -> e
  | Ok (traced, names) ->
      givens_names := Some names;
      Ok traced

let givens_scratch env ~bindings =
  (match !givens_names with
  | None -> ignore (givens_derive ())
  | Some _ -> ());
  match !givens_names with
  | None -> ()
  | Some names ->
      let m = List.assoc "M" bindings in
      Env.add_iarray env names.If_inspection.lb [ (1, (m / 2) + 1) ];
      Env.add_iarray env names.If_inspection.ub [ (1, (m / 2) + 1) ];
      Env.add_farray env "C" [ (1, m) ];
      Env.add_farray env "S" [ (1, m) ]

(* ---- convolutions: MIN/MAX removal + shape-matched unroll-and-jam ---- *)

(* The rhomboidal unroll requires the band to be at least as wide as the
   register block; verification and benchmarks bind N2 accordingly. *)
let conv_factor = 4

let conv_ctx =
  let ctx = Symbolic.empty in
  let ctx = List.fold_left Symbolic.assume_pos ctx [ "N1"; "N2"; "N3" ] in
  Symbolic.assume_ge ctx (Affine.var "N2") (Affine.const (conv_factor - 1))

let split_derive loop () =
  match Blocker.block_trapezoid ~ctx:conv_ctx ~factor:conv_factor loop with
  | Error _ as e -> e
  | Ok { result = [ s ]; steps } -> Ok { Blocker.result = s; steps }
  | Ok { result = block; steps } ->
      (* The traced result type carries one statement; wrap the region
         list in a one-trip loop. *)
      Ok { Blocker.result = Stmt.loop "ONE_" (Expr.Int 1) (Expr.Int 1) block; steps }

(* ---- Householder: the paper's negative result (§5.3) ---- *)

let householder_derive () =
  let r =
    match Blocker.block_lu ~block_size_var:"KS" K_householder.point_loop with
    | Ok _ ->
        (* §5.3 says this must not happen; surface it loudly if it does. *)
        Error
          "derivation unexpectedly succeeded — the §5.3 non-blockability \
           claim is violated; the driver is accepting an illegal \
           transformation"
    | Error mechanical ->
        Error
          ("not blockable (§5.3): the block algorithm computes the \
            compact-WY triangular factor T — computation and storage with \
            no counterpart in the point code, so no dependence-based \
            transformation sequence can derive it.  Mechanical derivation \
            stops at: " ^ mechanical)
  in
  (match r with
  | Error reason ->
      Obs.decision ~transform:"block" ~target:"householder" ~applied:false
        ~reason ()
  | Ok _ -> ());
  r

let entries =
  [
    {
      name = "lu";
      paper_ref = "§5.1, Figures 5-6";
      kernel = K_lu.kernel;
      derive = (fun () -> Blocker.block_lu ~block_size_var:"KS" K_lu.point_loop);
      extra_bindings = [ ("KS", 8) ];
      extra_setup = no_extra;
      default_bindings = [ ("N", 24) ];
      blockable = true;
    };
    {
      name = "lu_opt";
      paper_ref = "§5.1, Table 3 (2+)";
      kernel = K_lu.kernel;
      derive =
        (fun () ->
          Blocker.block_lu_opt ~block_size_var:"KS" ~factor:4 K_lu.point_loop);
      extra_bindings = [ ("KS", 8) ];
      extra_setup = no_extra;
      default_bindings = [ ("N", 24) ];
      blockable = true;
    };
    {
      name = "lu_pivot";
      paper_ref = "§5.2, Figures 7-8";
      kernel = K_lu_pivot.kernel;
      derive =
        (fun () -> Blocker.block_lu_pivot ~block_size_var:"KS" K_lu_pivot.point_loop);
      extra_bindings = [ ("KS", 8) ];
      extra_setup = no_extra;
      default_bindings = [ ("N", 24) ];
      blockable = true;
    };
    {
      name = "lu_pivot_opt";
      paper_ref = "§5.2, Table 4 (1+)";
      kernel = K_lu_pivot.kernel;
      derive =
        (fun () ->
          Blocker.block_lu_pivot_opt ~block_size_var:"KS" ~factor:4
            K_lu_pivot.point_loop);
      extra_bindings = [ ("KS", 8) ];
      extra_setup = no_extra;
      default_bindings = [ ("N", 24) ];
      blockable = true;
    };
    {
      name = "trisolve";
      paper_ref = "§8 breadth (ours)";
      kernel = K_trisolve.kernel;
      derive =
        (fun () -> Blocker.block_lu ~block_size_var:"KS" K_trisolve.point_loop);
      extra_bindings = [ ("KS", 8) ];
      extra_setup = no_extra;
      default_bindings = [ ("N", 24) ];
      blockable = true;
    };
    {
      name = "cholesky";
      paper_ref = "§8 breadth (ours)";
      kernel = K_cholesky.kernel;
      derive =
        (fun () -> Blocker.block_lu ~block_size_var:"KS" K_cholesky.point_loop);
      extra_bindings = [ ("KS", 8) ];
      extra_setup = no_extra;
      default_bindings = [ ("N", 24) ];
      blockable = true;
    };
    {
      name = "matmul";
      paper_ref = "§4, Figure 4";
      kernel = K_matmul.kernel;
      derive = matmul_derive;
      extra_bindings = [];
      extra_setup = matmul_scratch;
      default_bindings = [ ("N", 24); ("FREQ_PCT", 10) ];
      blockable = true;
    };
    {
      name = "givens";
      paper_ref = "§5.4, Figures 9-10";
      kernel = K_givens.kernel;
      derive = givens_derive;
      extra_bindings = [];
      extra_setup = givens_scratch;
      default_bindings = [ ("M", 16); ("N", 12) ];
      blockable = true;
    };
    {
      name = "aconv";
      paper_ref = "§3.2 (adjoint convolution)";
      kernel = K_conv.aconv;
      derive = split_derive K_conv.aconv_loop;
      extra_bindings = [];
      extra_setup = no_extra;
      default_bindings = [ ("N1", 40); ("N2", 9); ("N3", 50) ];
      blockable = true;
    };
    {
      name = "conv";
      paper_ref = "§3.2 (convolution)";
      kernel = K_conv.conv;
      derive = split_derive K_conv.conv_loop;
      extra_bindings = [];
      extra_setup = no_extra;
      default_bindings = [ ("N1", 40); ("N2", 9); ("N3", 50) ];
      blockable = true;
    };
    {
      name = "householder";
      paper_ref = "§5.3 (non-blockable)";
      kernel = K_householder.kernel;
      derive = householder_derive;
      extra_bindings = [ ("KS", 8) ];
      extra_setup = no_extra;
      default_bindings = [ ("M", 16); ("N", 12) ];
      blockable = false;
    };
  ]

let find name = List.find_opt (fun e -> String.equal e.name name) entries
let names () = List.map (fun e -> e.name) entries
let derive e = e.derive ()

let with_scratch entry =
  {
    entry.kernel with
    Kernel_def.setup =
      (fun env ~bindings ~seed ->
        entry.kernel.Kernel_def.setup env ~bindings ~seed;
        entry.extra_setup env ~bindings);
  }

let verify ?bindings ?(seed = 42) entry =
  let bindings = Option.value bindings ~default:entry.default_bindings in
  match derive entry with
  | Error e -> Error ("derivation failed: " ^ e)
  | Ok { result; _ } ->
      Kernel_def.equivalent (with_scratch entry) [ result ]
        ~extra:entry.extra_bindings ~bindings ~seed

type sim_result = {
  point_stats : Cache.stats;
  transformed_stats : Cache.stats;
  point_by_array : (string * Cache.stats) list;
  transformed_by_array : (string * Cache.stats) list;
  point_cycles : int;
  transformed_cycles : int;
}

(* ---- memory-hierarchy profiling --------------------------------- *)

type kernel_profile = {
  kp_kernel : string;
  kp_variant : string;
  kp_block : int option;
  kp_levels : (string * Cache.stats) list;
  kp_tlb : Cache.stats;
  kp_cycles : int;
  kp_refs : Trace.ref_profile list;
  kp_loops : (string * Trace.ref_counts) list;
  kp_hist : (int * int) list;
  kp_cold : int;
  kp_footprint_lines : int;
  kp_miss_curve : (int * int) list;
  kp_validation : Cost.validation;
}

let obs_emit_profile kp =
  if Obs.enabled () then begin
    let l1 = snd (List.hd kp.kp_levels) in
    Obs.instant ~cat:"profile" "profile.summary"
      ~args:
        [
          ("kernel", Obs.Str kp.kp_kernel);
          ("variant", Obs.Str kp.kp_variant);
          ("block", Obs.Int (Option.value kp.kp_block ~default:0));
          ("l1_misses", Obs.Int l1.Cache.misses);
          ("cycles", Obs.Int kp.kp_cycles);
          ("predicted_misses", Obs.Int kp.kp_validation.Cost.v_predicted);
          ("divergence", Obs.Float kp.kp_validation.Cost.v_divergence);
        ];
    List.iter
      (fun (r : Trace.ref_profile) ->
        if r.counts.Trace.c_accesses > 0 then
          Obs.instant ~cat:"profile" "profile.ref"
            ~args:
              [
                ("kernel", Obs.Str kp.kp_kernel);
                ("variant", Obs.Str kp.kp_variant);
                ("ref", Obs.Str r.site.Exec.ref_text);
                ("ref_id", Obs.Int r.site.Exec.ref_id);
                ( "nest",
                  Obs.Str (String.concat ">" r.site.Exec.ref_loops) );
                ("accesses", Obs.Int r.counts.Trace.c_accesses);
                ("l1_misses", Obs.Int r.counts.Trace.c_l1_misses);
                ("l2_misses", Obs.Int r.counts.Trace.c_l2_misses);
                ("tlb_misses", Obs.Int r.counts.Trace.c_tlb_misses);
              ])
      kp.kp_refs
  end

let profile_block ~machine ~spec ~kernel_name ~variant ~block env ~arrays
    stmts =
  Obs.span ~cat:"profile" "profile.run"
    ~args:[ ("kernel", Obs.Str kernel_name); ("variant", Obs.Str variant) ]
  @@ fun () ->
  let p = Trace.run_profile ?spec machine env ~arrays stmts in
  let h = Trace.hier p in
  let levels = Hier.level_stats h in
  let l1_stats = snd (List.hd levels) in
  let reuse = Option.get (Hier.reuse h) in
  let kp =
    {
      kp_kernel = kernel_name;
      kp_variant = variant;
      kp_block = block;
      kp_levels = levels;
      kp_tlb = Hier.tlb_stats h;
      kp_cycles = Hier.cycles h;
      kp_refs = Trace.ref_profiles p;
      kp_loops = Trace.loop_profiles p;
      kp_hist = Reuse.histogram reuse;
      kp_cold = Reuse.cold reuse;
      kp_footprint_lines = Reuse.distinct_lines reuse;
      kp_miss_curve =
        Reuse.miss_curve reuse
          ~max_lines:(max 1 (4 * machine.Arch.cache_bytes / machine.Arch.line_bytes));
      kp_validation = Cost.validate reuse machine l1_stats;
    }
  in
  obs_emit_profile kp;
  kp

let block_bindings entry = function
  | None -> Ok entry.extra_bindings
  | Some b ->
      if List.mem_assoc "KS" entry.extra_bindings then
        Ok (("KS", b) :: List.remove_assoc "KS" entry.extra_bindings)
      else
        Error
          (Printf.sprintf
             "%s has no block-size parameter (KS); --sweep/--block do not \
              apply"
             entry.name)

let profile ?bindings ?(seed = 42) ?(machine = Arch.rs6000_540) ?spec ?block
    entry =
  let bindings = Option.value bindings ~default:entry.default_bindings in
  match derive entry with
  | Error e -> Error ("derivation failed: " ^ e)
  | Ok { result; _ } -> (
      match block_bindings entry block with
      | Error e -> Error e
      | Ok extra ->
          let kernel = with_scratch entry in
          let arrays = entry.kernel.Kernel_def.traced in
          let env1 = Kernel_def.make_env kernel ~bindings ~seed in
          let point =
            profile_block ~machine ~spec ~kernel_name:entry.name
              ~variant:"point" ~block:None env1 ~arrays
              kernel.Kernel_def.block
          in
          let env2 =
            Kernel_def.make_env kernel ~bindings:(extra @ bindings) ~seed
          in
          let transformed =
            profile_block ~machine ~spec ~kernel_name:entry.name
              ~variant:"transformed" ~block env2 ~arrays [ result ]
          in
          Ok (point, transformed))

let profile_sweep ?bindings ?(seed = 42) ?(machine = Arch.rs6000_540) ?spec
    ~blocks entry =
  match blocks with
  | [] -> Error "empty block-size sweep"
  | blocks -> (
      match block_bindings entry (Some (List.hd blocks)) with
      | Error e -> Error e
      | Ok _ ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | b :: rest -> (
                match profile ?bindings ~seed ~machine ?spec ~block:b entry with
                | Error e -> Error e
                | Ok (_, transformed) -> go ((b, transformed) :: acc) rest)
          in
          go [] blocks)

let traced_run machine env ~arrays block =
  let t = Trace.create machine env ~arrays in
  Exec.run ~hook:(Trace.hook t) env block;
  (Trace.stats t, Trace.stats_by_array t)

let simulate ?bindings ?(seed = 42) ~machine entry =
  let bindings = Option.value bindings ~default:entry.default_bindings in
  match derive entry with
  | Error e -> Error ("derivation failed: " ^ e)
  | Ok { result; _ } ->
      let kernel = with_scratch entry in
      let arrays = entry.kernel.Kernel_def.traced in
      let env1 = Kernel_def.make_env kernel ~bindings ~seed in
      let point_stats, point_by_array =
        traced_run machine env1 ~arrays kernel.Kernel_def.block
      in
      let env2 =
        Kernel_def.make_env kernel
          ~bindings:(entry.extra_bindings @ bindings)
          ~seed
      in
      let transformed_stats, transformed_by_array =
        traced_run machine env2 ~arrays [ result ]
      in
      Ok
        {
          point_stats;
          transformed_stats;
          point_by_array;
          transformed_by_array;
          point_cycles = Cost.memory_cycles machine point_stats;
          transformed_cycles = Cost.memory_cycles machine transformed_stats;
        }

(* ---- native execution (lib/codegen) ----------------------------- *)

type native_result = {
  nt_backend : string;
  nt_point_s : float;
  nt_transformed_s : float;
  nt_speedup : float;
  nt_point_cached : bool;
  nt_transformed_cached : bool;
  nt_model_speedup : float option;
  nt_bindings : (string * int) list;
  nt_verify_bindings : (string * int) list;
}

(* Native results must be bitwise equal to the interpreter on the same
   initial environment; a diff here is a codegen bug, never tolerance.
   [run] is the compiled artifact's entry point, whichever backend
   produced it. *)
let native_verify kernel ~traced run block ~bindings ~seed =
  match Kernel_def.make_env kernel ~bindings ~seed with
  | exception Invalid_argument m -> Some m
  | env_i -> (
      match Exec.run env_i block with
      | exception Exec.Error m -> Some ("interpreter failed: " ^ m)
      | exception Env.Error m -> Some ("interpreter failed: " ^ m)
      | () -> (
          let env_n = Kernel_def.make_env kernel ~bindings ~seed in
          match run env_n with
          | Error m -> Some ("native run failed: " ^ m)
          | Ok () -> Env.diff ~only:traced env_i env_n))

let native_time kernel run ~bindings ~seed ~reps =
  let best = ref infinity in
  let failed = ref None in
  for _ = 1 to max 1 reps do
    if !failed = None then begin
      let env = Kernel_def.make_env kernel ~bindings ~seed in
      let t0 = Obs.now_ns () in
      match run env with
      | Error m -> failed := Some m
      | Ok () ->
          let dt = float_of_int (Obs.now_ns () - t0) /. 1e9 in
          if dt < !best then best := dt
    end
  done;
  match !failed with Some m -> Error m | None -> Ok !best

let native_compare ?(backend = (module Backend.Ocaml : Backend.S)) ?bindings
    ?verify_bindings ?(seed = 42) ?(reps = 3) ?block entry =
  let module B = (val backend) in
  let bindings = Option.value bindings ~default:entry.default_bindings in
  let verify_bindings =
    Option.value verify_bindings ~default:entry.default_bindings
  in
  match derive entry with
  | Error e -> Error ("derivation failed: " ^ e)
  | Ok { result; _ } -> (
      match block_bindings entry block with
      | Error e -> Error e
      | Ok extra -> (
          let kernel = with_scratch entry in
          let shapes = entry.kernel.Kernel_def.shapes in
          let traced = entry.kernel.Kernel_def.traced in
          (* Blueprint-keyed: all sizes of one structure share a single
             compiled artifact, so comparing a kernel at several [N]s
             costs one compiler run per variant per backend,
             process-wide. *)
          let compile variant blk =
            let bp = Blueprint.of_block ~shapes blk in
            Result.map
              (fun c -> (c, bp.Blueprint.bindings))
              (B.compile_blueprint ~name:(entry.name ^ "_" ^ variant) bp)
          in
          match
            (compile "point" kernel.Kernel_def.block, compile "transformed" [ result ])
          with
          | Error m, _ | _, Error m -> Error m
          | Ok (point, point_bb), Ok (transformed, transformed_bb) -> (
              let point_run env = point.Backend.bk_run ~bindings:point_bb env in
              let transformed_run env =
                transformed.Backend.bk_run ~bindings:transformed_bb env
              in
              let bad =
                match
                  native_verify kernel ~traced point_run
                    kernel.Kernel_def.block ~bindings:verify_bindings ~seed
                with
                | Some m -> Some ("point: " ^ m)
                | None -> (
                    match
                      native_verify kernel ~traced transformed_run [ result ]
                        ~bindings:(extra @ verify_bindings) ~seed
                    with
                    | Some m -> Some ("transformed: " ^ m)
                    | None -> None)
              in
              match bad with
              | Some m -> Error (entry.name ^ ": native diverges: " ^ m)
              | None -> (
                  match
                    ( native_time kernel point_run ~bindings ~seed ~reps,
                      native_time kernel transformed_run
                        ~bindings:(extra @ bindings) ~seed ~reps )
                  with
                  | Error m, _ -> Error (entry.name ^ ": point: " ^ m)
                  | _, Error m -> Error (entry.name ^ ": transformed: " ^ m)
                  | Ok tp, Ok tt ->
                      let model =
                        match
                          simulate ~bindings:verify_bindings ~seed
                            ~machine:Arch.rs6000_540 entry
                        with
                        | Ok s when s.transformed_cycles > 0 ->
                            Some
                              (float_of_int s.point_cycles
                              /. float_of_int s.transformed_cycles)
                        | _ -> None
                      in
                      Ok
                        {
                          nt_backend = B.tag;
                          nt_point_s = tp;
                          nt_transformed_s = tt;
                          nt_speedup = (if tt > 0.0 then tp /. tt else 0.0);
                          nt_point_cached = point.Backend.bk_cached;
                          nt_transformed_cached = transformed.Backend.bk_cached;
                          nt_model_speedup = model;
                          nt_bindings = bindings;
                          nt_verify_bindings = verify_bindings;
                        }))))
