let at_point (l : Stmt.loop) p =
  if not (Expr.equal l.step (Expr.Int 1)) then
    invalid_arg "Index_set_split.at_point: step must be 1";
  let low = { l with hi = Expr.min_ l.hi p } in
  (* The second loop starts at p+1 (clamped to lo): when p >= hi it is
     empty, when p < lo the first loop is empty — coverage is exact in
     every case, and [p + 1] keeps the bound affine so later analysis
     (section disjointness for distribution) stays precise. *)
  let high = { l with lo = Expr.max_ l.lo (Expr.succ p) } in
  [ Stmt.Loop low; Stmt.Loop high ]

type split_plan = { loop : Stmt.loop; point : Expr.t; conflict_first : bool }

type side = Hi_side | Lo_side

(* Solve [a*v + rest = boundary] for [v], returning the last index value of
   the part that touches the common region.  Only [a > 0] is supported (the
   paper notes the extension to [a < 0] is trivial; our kernels do not need
   it). *)
let solve_split ~side ~a ~rest boundary =
  if a <= 0 then None
  else
    let open Expr in
    match side with
    | Hi_side ->
        (* conflict where a*v + rest <= boundary *)
        Some (div (sub boundary (Affine.to_expr rest)) (Int a))
    | Lo_side ->
        (* conflict where a*v + rest >= boundary; first (clean) part is
           a*v + rest <= boundary - 1 *)
        Some (div (sub (pred boundary) (Affine.to_expr rest)) (Int a))

(* A boundary candidate between the common and disjoint parts of one
   dimension.  Hi-side: some valid upper bound [h1] of one section lies
   provably below some valid upper bound of the other — everything the
   first section touches in this dimension is <= h1, so [h1] bounds the
   common region from above and the *other* section (the larger one)
   extends beyond it.  Lo-side dually. *)
let candidate_of_dim ~ctx ~(s1 : Section.t) ~(s2 : Section.t) i =
  let d1 = List.nth s1.dims i and d2 = List.nth s2.dims i in
  let first_proved f pairs =
    List.find_map (fun (a, b) -> if f a b then Some (a, b) else None) pairs
  in
  match first_proved (Symbolic.prove_lt ctx) (Section.hi_pairs d1 d2) with
  | Some (h1, _) -> Some (Hi_side, h1, false)  (* s2 is larger above *)
  | None -> (
      match first_proved (Symbolic.prove_lt ctx) (Section.hi_pairs d2 d1) with
      | Some (h2, _) -> Some (Hi_side, h2, true)  (* s1 is larger above *)
      | None -> (
          match first_proved (Symbolic.prove_gt ctx) (Section.lo_pairs d1 d2) with
          | Some (l1, _) -> Some (Lo_side, l1, false)  (* s2 extends below *)
          | None -> (
              match
                first_proved (Symbolic.prove_gt ctx) (Section.lo_pairs d2 d1)
              with
              | Some (l2, _) -> Some (Lo_side, l2, true)
              | None -> None)))

let access_to_string (a : Ir_util.access) =
  if a.subs = [] then a.array
  else
    a.array ^ "(" ^ String.concat ", " (List.map Expr.to_string a.subs) ^ ")"

let procedure ~ctx ~(source : Ir_util.access) ~(sink : Ir_util.access)
    ~split_candidates =
  let decide ?(evidence = []) r =
    Obs.decide ~transform:"index-set-split"
      ~target:(access_to_string source ^ " -> " ^ access_to_string sink)
      ~evidence r
  in
  match
    ( Section.of_access ~ctx ~within:source.loops source,
      Section.of_access ~ctx ~within:sink.loops sink )
  with
  | None, _ | _, None ->
      decide (Error "sections of the dependence are not computable")
  | Some s1, Some s2 ->
      let section_evidence =
        [
          ("source_section", Obs.Str (Section.to_string s1));
          ("sink_section", Obs.Str (Section.to_string s2));
        ]
      in
      let decide r =
        let evidence =
          section_evidence
          @
          match r with
          | Ok plan ->
              [
                ("split_loop", Obs.Str plan.loop.Stmt.index);
                ("split_point", Obs.Str (Expr.to_string plan.point));
                ("conflict_first", Obs.Bool plan.conflict_first);
              ]
          | Error _ -> []
        in
        decide ~evidence r
      in
      decide
      @@
      if List.length s1.dims <> List.length s2.dims then
        Error "sections have different ranks"
      else if Section.equal ctx s1 s2 then
        Error "intersection and union are equal: no disjoint region to split off"
      else begin
        let candidate_indices = List.init (List.length s1.dims) (fun i -> i) in
        let try_dim i =
          match candidate_of_dim ~ctx ~s1 ~s2 i with
          | None -> None
          | Some (side, boundary, larger_is_s1) -> (
              let larger = if larger_is_s1 then source else sink in
              let sub = List.nth larger.subs i in
              match Affine.of_expr sub with
              | None -> None
              | Some aff -> (
                  (* The subscript must depend on exactly one candidate
                     loop's index. *)
                  let cands =
                    List.filter
                      (fun (l : Stmt.loop) -> Affine.coeff aff l.index <> 0)
                      split_candidates
                  in
                  match cands with
                  | [ l ] -> (
                      let a, rest = Affine.split_on l.index aff in
                      (* [rest] must not involve other loops we could split,
                         or the solution would not be a valid bound. *)
                      let rest_clean =
                        List.for_all
                          (fun (l' : Stmt.loop) ->
                            Affine.coeff rest l'.index = 0)
                          split_candidates
                      in
                      if not rest_clean then None
                      else
                        match
                          solve_split ~side ~a ~rest (Affine.to_expr boundary)
                        with
                        | Some point ->
                            Some
                              { loop = l; point; conflict_first = (side = Hi_side) }
                        | None -> None)
                  | _ -> None))
        in
        let rec first_some = function
          | [] ->
              Error
                "no dimension yields a solvable boundary for the candidate loops"
          | i :: rest -> (
              match try_dim i with Some plan -> Ok plan | None -> first_some rest)
        in
        first_some candidate_indices
      end
