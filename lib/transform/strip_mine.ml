let apply ~block_size ~new_index (l : Stmt.loop) =
  Obs.decide ~transform:"strip-mine" ~target:l.index
    ~evidence:
      [
        ("block_size", Obs.Str (Expr.to_string block_size));
        ("strip_index", Obs.Str new_index);
        ("range", Obs.Str (Expr.to_string l.lo ^ " .. " ^ Expr.to_string l.hi));
      ]
  @@
  if not (Expr.equal l.step (Expr.Int 1)) then
    Error "strip mining requires step 1"
  else
    let used =
      l.index
      :: (Ir_util.index_vars l.body
         @ Ir_util.symbolic_params [ Stmt.Loop l ]
         @ List.concat_map Expr.free_vars [ l.lo; l.hi ])
    in
    if List.mem new_index used then Error ("index " ^ new_index ^ " already in use")
    else
      let body = Stmt.subst_block [ (l.index, Expr.var new_index) ] l.body in
      let strip =
        Stmt.loop new_index (Expr.var l.index)
          (Expr.min_ (Expr.add (Expr.var l.index) (Expr.pred block_size)) l.hi)
          body
      in
      Ok { l with step = block_size; body = [ strip ] }
