exception Exposed

(* A read of [scalar] is exposed when it may execute before every write
   of [scalar] in the same iteration of the expanded loop: renaming it
   would read an array element the loop has not defined yet.  Branch
   joins keep "written" only when both sides write; inner loops may run
   zero times, so their writes never count for what follows them. *)
let exposed_read ~scalar body =
  let rec reads_f (fe : Stmt.fexpr) =
    match fe with
    | Stmt.Fvar v -> String.equal v scalar
    | Stmt.Fconst _ | Stmt.Of_int _ -> false
    | Stmt.Ref (_, subs) -> List.exists reads_e subs
    | Stmt.Fbin (_, a, b) -> reads_f a || reads_f b
    | Stmt.Fneg a -> reads_f a
    | Stmt.Fcall (_, args) -> List.exists reads_f args
  and reads_e e = List.mem scalar (Expr.free_vars e) in
  let rec reads_c (c : Stmt.cond) =
    match c with
    | Stmt.Fcmp (_, a, b) -> reads_f a || reads_f b
    | Stmt.Icmp (_, a, b) -> reads_e a || reads_e b
    | Stmt.Not a -> reads_c a
    | Stmt.And (a, b) | Stmt.Or (a, b) -> reads_c a || reads_c b
  in
  let rec stmt written (s : Stmt.t) =
    match s with
    | Stmt.Assign (v, subs, rhs) ->
        if (not written) && (reads_f rhs || List.exists reads_e subs) then
          raise Exposed;
        written || (String.equal v scalar && subs = [])
    | Stmt.Iassign (_, subs, rhs) ->
        if (not written) && (reads_e rhs || List.exists reads_e subs) then
          raise Exposed;
        written
    | Stmt.If (c, t, e) ->
        if (not written) && reads_c c then raise Exposed;
        let wt = block written t and we = block written e in
        wt && we
    | Stmt.Loop il ->
        if (not written) && (reads_e il.lo || reads_e il.hi || reads_e il.step)
        then raise Exposed;
        ignore (block written il.body);
        written
  and block written stmts = List.fold_left stmt written stmts in
  try
    ignore (block false body);
    false
  with Exposed -> true

let apply ~scalar ~array_name (l : Stmt.loop) =
  let block = [ Stmt.Loop l ] in
  (* Expanding in place (array named like the scalar) is allowed: once
     every occurrence is rewritten, the rank-0 name is gone. *)
  let arrays =
    List.filter_map
      (fun (n, rank, _) ->
        if rank > 0 || not (String.equal n scalar) then Some n else None)
      (Ir_util.arrays_of block)
  in
  if List.mem array_name arrays || List.mem array_name (Ir_util.index_vars block)
  then Error (array_name ^ " is already in use")
  else
    let accs =
      List.filter
        (fun (a : Ir_util.access) -> String.equal a.array scalar && a.subs = [])
        (Ir_util.accesses [ Stmt.Loop l ])
    in
    match accs with
    | [] -> Error (scalar ^ " does not occur in the loop")
    | _ when exposed_read ~scalar l.body ->
        Error
          (scalar
         ^ " may be live on entry: a read is not dominated by a write in the \
            same iteration")
    | _ ->
        let idx = Expr.var l.index in
        let rec rewrite_f (fe : Stmt.fexpr) =
          match fe with
          | Stmt.Fvar v when String.equal v scalar -> Stmt.Ref (array_name, [ idx ])
          | Stmt.Fconst _ | Stmt.Fvar _ | Stmt.Ref _ | Stmt.Of_int _ -> fe
          | Stmt.Fbin (op, a, b) -> Stmt.Fbin (op, rewrite_f a, rewrite_f b)
          | Stmt.Fneg a -> Stmt.Fneg (rewrite_f a)
          | Stmt.Fcall (f, args) -> Stmt.Fcall (f, List.map rewrite_f args)
        in
        let rec rewrite_c (c : Stmt.cond) =
          match c with
          | Stmt.Fcmp (r, a, b) -> Stmt.Fcmp (r, rewrite_f a, rewrite_f b)
          | Stmt.Icmp _ -> c
          | Stmt.Not a -> Stmt.Not (rewrite_c a)
          | Stmt.And (a, b) -> Stmt.And (rewrite_c a, rewrite_c b)
          | Stmt.Or (a, b) -> Stmt.Or (rewrite_c a, rewrite_c b)
        in
        let rec rewrite (s : Stmt.t) =
          match s with
          | Stmt.Assign (v, [], rhs) when String.equal v scalar ->
              Stmt.Assign (array_name, [ idx ], rewrite_f rhs)
          | Stmt.Assign (a, subs, rhs) -> Stmt.Assign (a, subs, rewrite_f rhs)
          | Stmt.Iassign _ -> s
          | Stmt.If (c, t, e) ->
              Stmt.If (rewrite_c c, List.map rewrite t, List.map rewrite e)
          | Stmt.Loop il -> Stmt.Loop { il with body = List.map rewrite il.body }
        in
        Ok { l with body = List.map rewrite l.body }
