let check_factor factor =
  if factor < 2 then Error "unroll factor must be at least 2" else Ok ()

let inner_of (l : Stmt.loop) =
  match l.body with
  | [ Stmt.Loop inner ] -> Ok inner
  | _ -> Error "unroll-and-jam requires a perfectly nested inner loop"

(* Remainder loop covering the iterations the unrolled main loop misses:
   starts at lo + factor * ((hi - lo + 1) / factor). *)
let remainder_loop (l : Stmt.loop) factor =
  let open Expr in
  let trip = add (sub l.hi l.lo) (Int 1) in
  let start = add l.lo (mul (Int factor) (div trip (Int factor))) in
  { l with lo = simplify start }

let copies (l : Stmt.loop) factor body =
  List.concat_map
    (fun k ->
      Stmt.subst_block
        [ (l.index, Expr.add (Expr.var l.index) (Expr.Int k)) ]
        body)
    (List.init factor (fun k -> k))

let rectangular ~factor (l : Stmt.loop) =
  let ( let* ) = Result.bind in
  let* () = check_factor factor in
  let* inner = inner_of l in
  if not (Expr.equal l.step (Expr.Int 1)) then Error "outer step must be 1"
  else if Expr.mentions l.index inner.lo || Expr.mentions l.index inner.hi then
    Error "inner bounds depend on the outer index: use triangular"
  else
    let jammed = { inner with body = copies l factor inner.body } in
    let main =
      {
        l with
        hi = Expr.simplify (Expr.sub l.hi (Expr.Int (factor - 1)));
        step = Expr.Int factor;
        body = [ Stmt.Loop jammed ];
      }
    in
    Ok [ Stmt.Loop main; Stmt.Loop (remainder_loop l factor) ]

let triangular ~factor (l : Stmt.loop) =
  let ( let* ) = Result.bind in
  let* () = check_factor factor in
  let* inner = inner_of l in
  if not (Expr.equal l.step (Expr.Int 1)) then Error "outer step must be 1"
  else if Expr.mentions l.index inner.hi then
    Error "inner upper bound depends on the outer index"
  else
    let* beta =
      match Affine.of_expr inner.lo with
      | None -> Error "inner lower bound is not affine"
      | Some aff ->
          let a, rest = Affine.split_on l.index aff in
          if a <> 1 then Error "only unit coefficient supported"
          else Ok (Affine.to_expr rest)
    in
    let fm1 = factor - 1 and fm2 = factor - 2 in
    let open Expr in
    let i = var l.index in
    (* Triangular part: II = I .. I+IS-2, J = II+beta .. MIN(I+IS-2+beta, M). *)
    let ii = Ir_util.fresh ~used:(l.index :: Ir_util.index_vars [ Stmt.Loop l ]) (l.index ^ l.index) in
    let tri_inner_hi = min_ (add (add i (Int fm2)) beta) inner.hi in
    let tri_body =
      Stmt.subst_block [ (l.index, var ii) ] inner.body
    in
    let tri =
      Stmt.loop ii i
        (add i (Int fm2))
        [ Stmt.loop inner.index (add (var ii) beta) tri_inner_hi tri_body ]
    in
    (* Rectangular part: J = I+IS-1+beta .. M, body unrolled over the block. *)
    let rect =
      Stmt.loop inner.index
        (add (add i (Int fm1)) beta)
        inner.hi
        (copies l factor inner.body)
    in
    let main =
      {
        l with
        hi = Expr.simplify (sub l.hi (Int fm1));
        step = Int factor;
        body = [ tri; rect ];
      }
    in
    Ok [ Stmt.Loop main; Stmt.Loop (remainder_loop l factor) ]

let rhomboidal ~ctx ~factor (l : Stmt.loop) =
  let ( let* ) = Result.bind in
  let* () = check_factor factor in
  let* inner = inner_of l in
  if not (Expr.equal l.step (Expr.Int 1)) then Error "outer step must be 1"
  else
    let unit_offset bound =
      match Affine.of_expr bound with
      | None -> Error "inner bound is not affine"
      | Some aff ->
          let a, rest = Affine.split_on l.index aff in
          if a <> 1 then Error "only unit coefficient supported" else Ok rest
    in
    let* b1 = unit_offset inner.lo in
    let* b2 = unit_offset inner.hi in
    (* The jammed rectangle must be at least as wide as the block. *)
    if
      not
        (Symbolic.prove_ge ctx (Affine.sub b2 b1)
           (Affine.const (factor - 1)))
    then Error "rhomboid too narrow for this unroll factor"
    else begin
      let fm1 = factor - 1 and fm2 = factor - 2 in
      let b1e = Affine.to_expr b1 and b2e = Affine.to_expr b2 in
      let open Expr in
      let i = var l.index in
      let used = l.index :: Ir_util.index_vars [ Stmt.Loop l ] in
      let ii = Ir_util.fresh ~used (l.index ^ l.index) in
      let row body = Stmt.subst_block [ (l.index, var ii) ] body in
      (* Head triangle: rows I .. I+u-2, columns below the rectangle. *)
      let head =
        Stmt.loop ii i
          (add i (Int fm2))
          [
            Stmt.loop inner.index
              (add (var ii) b1e)
              (min_ (add (var ii) b2e) (add (add i (Int fm2)) b1e))
              (row inner.body);
          ]
      in
      (* Jammed rectangle: columns I+u-1+b1 .. I+b2, all rows unrolled. *)
      let rect =
        Stmt.loop inner.index
          (add (add i (Int fm1)) b1e)
          (add i b2e)
          (copies l factor inner.body)
      in
      (* Tail triangle: rows I+1 .. I+u-1, columns above the rectangle. *)
      let tail =
        Stmt.loop ii
          (add i (Int 1))
          (add i (Int fm1))
          [
            Stmt.loop inner.index
              (max_ (add (var ii) b1e) (add (add i b2e) (Int 1)))
              (add (var ii) b2e)
              (row inner.body);
          ]
      in
      let main =
        {
          l with
          hi = Expr.simplify (sub l.hi (Int fm1));
          step = Int factor;
          body = [ head; rect; tail ];
        }
      in
      Ok [ Stmt.Loop main; Stmt.Loop (remainder_loop l factor) ]
    end

let upper_triangular ~factor (l : Stmt.loop) =
  let ( let* ) = Result.bind in
  let* () = check_factor factor in
  let* inner = inner_of l in
  if not (Expr.equal l.step (Expr.Int 1)) then Error "outer step must be 1"
  else if Expr.mentions l.index inner.lo then
    Error "inner lower bound depends on the outer index"
  else
    let* beta =
      match Affine.of_expr inner.hi with
      | None -> Error "inner upper bound is not affine"
      | Some aff ->
          let a, rest = Affine.split_on l.index aff in
          if a <> 1 then Error "only unit coefficient supported"
          else Ok (Affine.to_expr rest)
    in
    let fm1 = factor - 1 in
    let open Expr in
    let i = var l.index in
    let used = l.index :: Ir_util.index_vars [ Stmt.Loop l ] in
    let ii = Ir_util.fresh ~used (l.index ^ l.index) in
    let row body = Stmt.subst_block [ (l.index, var ii) ] body in
    (* Jammed rectangle: K = lo .. I + beta (row I's range, a subset of
       every later row's). *)
    let rect =
      Stmt.loop inner.index inner.lo (add i beta) (copies l factor inner.body)
    in
    (* Tails: rows I+1 .. I+u-1 cover K = I+beta+1 .. II+beta. *)
    let tail =
      Stmt.loop ii
        (add i (Int 1))
        (add i (Int fm1))
        [
          Stmt.loop inner.index
            (max_ inner.lo (add (add i beta) (Int 1)))
            (add (var ii) beta)
            (row inner.body);
        ]
    in
    let main =
      {
        l with
        hi = Expr.simplify (sub l.hi (Int fm1));
        step = Int factor;
        body = [ rect; tail ];
      }
    in
    Ok [ Stmt.Loop main; Stmt.Loop (remainder_loop l factor) ]

(* ------------------------------------------------------------------ *)
(* Decision tracing: wrap the public shape entry points.               *)
(* ------------------------------------------------------------------ *)

let traced shape f ~factor (l : Stmt.loop) =
  Obs.decide ~transform:"unroll-and-jam" ~target:l.index
    ~evidence:[ ("shape", Obs.Str shape); ("factor", Obs.Int factor) ]
    (f ~factor l)

let rectangular = traced "rectangular" rectangular
let triangular = traced "triangular" triangular
let upper_triangular = traced "upper-triangular" upper_triangular

let rhomboidal ~ctx ~factor l =
  traced "rhomboidal" (fun ~factor l -> rhomboidal ~ctx ~factor l) ~factor l
