(** Commutativity knowledge (§5.2).

    Data dependence alone cannot block LU with partial pivoting: moving
    the row interchanges of later elimination steps ahead of earlier
    column updates reverses a dependence.  But a row interchange
    commutes with a whole-column update — both versions compute the same
    final values, though intermediate values flow through different
    locations.  The paper proposes pattern matching to recognize this
    pair of operations and license ignoring the preventing recurrence.

    Two provers answer {!may_ignore}:

    - the {e derived} prover (default): instantiate the dependence's
      source and sink statements at two generic iterations
      [theta1 < theta2] of the carrying loop, recover range facts for
      the integer scalars each instance reads from its body prefix
      (e.g. the pivot row after the search), and ask {!Fsa.commute}
      whether the instances commute — a machine-checked proof, traced
      as an [Obs] decision with the proof tree as evidence;
    - the {e curated} table ({!may_ignore_curated}, the paper's
      matcher): syntactic row-swap and column-update patterns.  Kept as
      a fallback behind {!use_curated} (the [--curated-commutativity]
      CLI flag) and as a cross-check in the tests. *)

val is_row_swap : Stmt.t -> bool
(** Does this statement (a loop over row elements) perform a row
    interchange of a 2-D array via a temporary? *)

val is_column_update : Stmt.t -> bool
(** Is this a (nest of loops around a) whole-column update of the
    Gaussian-elimination form? *)

val use_curated : bool ref
(** When set, {!may_ignore} consults the curated table instead of
    deriving proofs ([--curated-commutativity]).  Default: [false]. *)

val lookups : unit -> int
(** How many times the curated table has been consulted (a test
    asserts the default derive path consumes zero curated facts). *)

val reset_lookups : unit -> unit

val may_ignore_curated : Stmt.loop -> Dependence.t -> bool
(** The curated matcher: true when the dependence connects a row-swap
    group and a column-update group among the immediate body statements
    of the loop.  Counts a lookup on every call. *)

val may_ignore_derived :
  ctx:Symbolic.t -> Stmt.loop -> Dependence.t -> bool
(** The FSA-backed prover.  [ctx] carries the facts valid at the
    loop's execution point (the blocker passes its universal context).
    Proofs are memoized per (loop, statement pair, facts). *)

val may_ignore : ctx:Symbolic.t -> Stmt.loop -> Dependence.t -> bool
(** Dispatches on {!use_curated}. *)
