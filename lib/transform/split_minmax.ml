let inner_of (l : Stmt.loop) =
  match l.body with
  | [ Stmt.Loop inner ] -> Ok inner
  | _ -> Error "expected a perfectly nested inner loop"

(* Classify the two arguments of a MIN/MAX: exactly one must depend on
   [index], affinely with positive coefficient. *)
let classify index p q =
  let dep e = Expr.mentions index e in
  match dep p, dep q with
  | true, false -> Ok (p, q)
  | false, true -> Ok (q, p)
  | true, true -> Error "both MIN/MAX arguments depend on the outer index"
  | false, false -> Error "neither MIN/MAX argument depends on the outer index"

let coeff_of index e =
  match Affine.of_expr e with
  | None -> Error "bound argument is not affine"
  | Some aff ->
      let a, rest = Affine.split_on index aff in
      if a <= 0 then Error "negative outer-index coefficient unsupported"
      else Ok (a, Affine.to_expr rest)

let floor_div e a = if a = 1 then Expr.simplify e else Expr.div e (Expr.Int a)

let split_outer (l : Stmt.loop) point rebuild_low rebuild_high =
  let low_inner = rebuild_low () and high_inner = rebuild_high () in
  let low =
    { l with hi = Expr.min_ l.hi point; body = [ Stmt.Loop low_inner ] }
  in
  let high =
    {
      l with
      lo = Expr.max_ l.lo (Expr.succ (Expr.min_ l.hi point));
      body = [ Stmt.Loop high_inner ];
    }
  in
  [ Stmt.Loop low; Stmt.Loop high ]

let split_inner_min (l : Stmt.loop) =
  let ( let* ) = Result.bind in
  let* inner = inner_of l in
  match inner.hi with
  | Expr.Min (p, q) ->
      let* dep_arm, free_arm = classify l.index p q in
      let* a, beta = coeff_of l.index dep_arm in
      (* a*I + beta <= free  <=>  I <= (free - beta) / a *)
      let point = floor_div (Expr.sub free_arm beta) a in
      Ok
        (split_outer l point
           (fun () -> { inner with hi = dep_arm })
           (fun () -> { inner with hi = free_arm }))
  | _ -> Error "inner hi bound is not a MIN"

let split_inner_max (l : Stmt.loop) =
  let ( let* ) = Result.bind in
  let* inner = inner_of l in
  match inner.lo with
  | Expr.Max (p, q) ->
      let* dep_arm, free_arm = classify l.index p q in
      let* a, beta = coeff_of l.index dep_arm in
      (* a*I + beta >= free  <=>  I >= ceil((free - beta) / a); below the
         crossover the lower bound is [free], above it [dep]. *)
      let point =
        if a = 1 then Expr.simplify (Expr.pred (Expr.sub free_arm beta))
        else
          (* last I with a*I + beta <= free - 1 *)
          floor_div (Expr.sub (Expr.pred free_arm) beta) a
      in
      Ok
        (split_outer l point
           (fun () -> { inner with lo = free_arm })
           (fun () -> { inner with lo = dep_arm }))
  | _ -> Error "inner lo bound is not a MAX"

(* A MIN/MAX that never mentions the outer index is loop-invariant —
   nothing to split, and no obstacle to unroll-and-jam.  Only splittable
   forms (top-level, with an index-dependent arm) trigger a split; an
   index-dependent MIN/MAX buried deeper is still an error. *)
let rec minmax_on index (e : Expr.t) =
  match e with
  | Expr.Min (a, b) | Expr.Max (a, b) ->
      Expr.mentions index a || Expr.mentions index b
      || minmax_on index a || minmax_on index b
  | Expr.Int _ | Expr.Var _ -> false
  | Expr.Bin (_, a, b) -> minmax_on index a || minmax_on index b
  | Expr.Idx (_, subs) -> List.exists (minmax_on index) subs

let remove_all l =
  let rec process (s : Stmt.t) budget =
    if budget = 0 then Error "too many MIN/MAX splits"
    else
      match s with
      | Stmt.Loop l -> (
          match inner_of l with
          | Error _ -> Ok [ s ]
          | Ok inner ->
              let next =
                match inner.hi with
                | Expr.Min (p, q)
                  when Expr.mentions l.index p || Expr.mentions l.index q ->
                    Some (split_inner_min l)
                | _ -> (
                    match inner.lo with
                    | Expr.Max (p, q)
                      when Expr.mentions l.index p || Expr.mentions l.index q ->
                        Some (split_inner_max l)
                    | _ -> None)
              in
              (match next with
              | None ->
                  if minmax_on l.index inner.lo || minmax_on l.index inner.hi
                  then Error "inner bound has a nested MIN/MAX form"
                  else Ok [ s ]
              | Some (Error _ as e) -> e
              | Some (Ok parts) ->
                  let rec all acc = function
                    | [] -> Ok (List.concat (List.rev acc))
                    | part :: rest -> (
                        match process part (budget - 1) with
                        | Ok ss -> all (ss :: acc) rest
                        | Error _ as e -> e)
                  in
                  all [] parts))
      | Stmt.Assign _ | Stmt.Iassign _ | Stmt.If _ -> Ok [ s ]
  in
  process (Stmt.Loop l) 8
