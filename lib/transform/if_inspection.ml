type names = {
  counter : string;
  lb : string;
  ub : string;
  flag : string;
  range_index : string;
}

let default_names ~prefix ~used =
  let fresh base =
    Ir_util.fresh ~used (prefix ^ base)
  in
  (* fresh is stateless; make names distinct by accumulating. *)
  let counter = fresh "C" in
  let used = counter :: used in
  let lb = Ir_util.fresh ~used (prefix ^ "LB") in
  let used = lb :: used in
  let ub = Ir_util.fresh ~used (prefix ^ "UB") in
  let used = ub :: used in
  let flag = Ir_util.fresh ~used "FLAG" in
  let used = flag :: used in
  let range_index = Ir_util.fresh ~used (prefix ^ "N") in
  { counter; lb; ub; flag; range_index }

let cond_arrays (c : Stmt.cond) =
  let rec of_f (fe : Stmt.fexpr) =
    match fe with
    | Stmt.Fconst _ | Stmt.Fvar _ | Stmt.Of_int _ -> []
    | Stmt.Ref (a, _) -> [ a ]
    | Stmt.Fbin (_, x, y) -> of_f x @ of_f y
    | Stmt.Fneg x -> of_f x
    | Stmt.Fcall (_, args) -> List.concat_map of_f args
  in
  let rec go = function
    | Stmt.Fcmp (_, x, y) -> of_f x @ of_f y
    | Stmt.Icmp _ -> []
    | Stmt.Not x -> go x
    | Stmt.And (x, y) | Stmt.Or (x, y) -> go x @ go y
  in
  List.sort_uniq String.compare (go c)

let cond_vars (c : Stmt.cond) =
  let rec of_f (fe : Stmt.fexpr) =
    match fe with
    | Stmt.Fconst _ -> []
    | Stmt.Fvar v -> [ v ]
    | Stmt.Of_int e -> Expr.free_vars e
    | Stmt.Ref (_, subs) -> List.concat_map Expr.free_vars subs
    | Stmt.Fbin (_, x, y) -> of_f x @ of_f y
    | Stmt.Fneg x -> of_f x
    | Stmt.Fcall (_, args) -> List.concat_map of_f args
  in
  let rec go = function
    | Stmt.Fcmp (_, x, y) -> of_f x @ of_f y
    | Stmt.Icmp (_, x, y) -> Expr.free_vars x @ Expr.free_vars y
    | Stmt.Not x -> go x
    | Stmt.And (x, y) | Stmt.Or (x, y) -> go x @ go y
  in
  List.sort_uniq String.compare (go c)

let written_arrays block =
  List.filter_map
    (fun (a : Ir_util.access) ->
      if a.kind = Ir_util.Write then Some a.array else None)
    (Ir_util.accesses block)
  |> List.sort_uniq String.compare

let apply ~names (l : Stmt.loop) =
  Obs.decide ~transform:"if-inspection" ~target:l.index
    ~evidence:
      (match l.body with
      | [ Stmt.If (guard, _, []) ] ->
          [
            ("guard_arrays", Obs.Str (String.concat ", " (cond_arrays guard)));
            ("ranges_counter", Obs.Str names.counter);
          ]
      | _ -> [])
  @@
  match l.body with
  | [ Stmt.If (guard, computation, []) ] ->
      let guard_arrays = cond_arrays guard in
      let body_writes = written_arrays computation in
      let inner_indices = Ir_util.index_vars computation in
      if List.exists (fun a -> List.mem a body_writes) guard_arrays then
        Error "the computation writes an array the guard reads"
      else if
        (* Scalars too: the inspector precomputes every guard value, so a
           computation that writes any variable the guard reads (directly
           or through a subscript) invalidates the recorded ranges. *)
        List.exists (fun x -> List.mem x body_writes) (cond_vars guard)
      then Error "the computation writes a variable the guard reads"
      else if List.exists (fun v -> List.mem v inner_indices) (cond_vars guard)
      then Error "the guard depends on an inner loop index"
      else begin
        let open Builder in
        let k = v l.index in
        let kc = v names.counter in
        let record_start =
          if_
            (Stmt.Icmp (Stmt.Eq, v names.flag, i 0))
            [
              Stmt.Iassign (names.counter, [], kc +! i 1);
              Stmt.Iassign (names.lb, [ kc ], k);
              Stmt.Iassign (names.flag, [], i 1);
            ]
        in
        let record_end =
          if_
            (Stmt.Icmp (Stmt.Eq, v names.flag, i 1))
            [
              Stmt.Iassign (names.ub, [ kc ], k -! i 1);
              Stmt.Iassign (names.flag, [], i 0);
            ]
        in
        let inspector =
          [
            Stmt.Iassign (names.counter, [], i 0);
            Stmt.Iassign (names.flag, [], i 0);
            Stmt.Loop { l with body = [ if_else guard [ record_start ] [ record_end ] ] };
            if_
              (Stmt.Icmp (Stmt.Eq, v names.flag, i 1))
              [
                Stmt.Iassign (names.ub, [ kc ], l.hi);
                Stmt.Iassign (names.flag, [], i 0);
              ];
          ]
        in
        let executor =
          do_ names.range_index (i 1) kc
            [
              Stmt.Loop
                {
                  l with
                  lo = Expr.idx names.lb [ v names.range_index ];
                  hi = Expr.idx names.ub [ v names.range_index ];
                  body = computation;
                };
            ]
        in
        Ok (inspector @ [ executor ])
      end
  | _ -> Error "IF-inspection expects a body that is a single guarded IF"

(* Cross-pair safety for [split_guarded]: a write access in one part and
   any access in the other part must be provably non-interfering across
   different iterations of the split loop. *)
let cross_safe ~ctx (l : Stmt.loop) (a : Ir_util.access) (b : Ir_util.access) =
  if not (String.equal a.array b.array) then true
  else if a.kind <> Ir_util.Write && b.kind <> Ir_util.Write then true
  else
    let identical_indexed =
      List.length a.subs = List.length b.subs
      && a.subs <> []
      && List.for_all2 Expr.equal a.subs b.subs
      && List.exists
           (fun sub ->
             match Affine.of_expr sub with
             | Some aff -> Affine.coeff aff l.index <> 0
             | None -> false)
           a.subs
    in
    identical_indexed
    ||
    match
      ( Section.of_ref ~ctx ~within:a.loops a.array a.subs,
        Section.of_ref ~ctx ~within:b.loops b.array b.subs )
    with
    | Some sa, Some sb -> Section.disjoint ctx sa sb
    | _ -> false

let split_guarded ~ctx ~names ~setup_len (l : Stmt.loop) =
  Obs.decide ~transform:"if-inspection-split" ~target:l.index
    ~evidence:
      [
        ("setup_len", Obs.Int setup_len);
        ("ranges_counter", Obs.Str names.counter);
      ]
  @@
  match l.body with
  | [ Stmt.If (guard, stmts, []) ] when List.length stmts > setup_len ->
      let rec split k = function
        | rest when k = 0 -> ([], rest)
        | [] -> ([], [])
        | s :: rest ->
            let setup, apply = split (k - 1) rest in
            (s :: setup, apply)
      in
      let setup, apply = split setup_len stmts in
      (* Safety: every write in apply against every access in guard/setup
         and vice versa. *)
      let accesses_of block = Ir_util.accesses [ Stmt.Loop { l with body = block } ] in
      let apply_accs = accesses_of apply in
      let setup_accs =
        accesses_of [ Stmt.If (guard, setup, []) ]
      in
      let offending =
        List.concat_map
          (fun a ->
            List.filter_map
              (fun b ->
                if cross_safe ~ctx l a b then None
                else Some (a.Ir_util.array ^ " vs " ^ b.Ir_util.array))
              setup_accs)
          apply_accs
      in
      if offending <> [] then
        Error
          ("unsafe to defer the apply part past later setups: "
          ^ String.concat ", " (List.sort_uniq String.compare offending))
      else begin
        let open Builder in
        let k = v l.index in
        let kc = v names.counter in
        let record_start =
          if_
            (Stmt.Icmp (Stmt.Eq, v names.flag, i 0))
            [
              Stmt.Iassign (names.counter, [], kc +! i 1);
              Stmt.Iassign (names.lb, [ kc ], k);
              Stmt.Iassign (names.flag, [], i 1);
            ]
        in
        let record_end =
          if_
            (Stmt.Icmp (Stmt.Eq, v names.flag, i 1))
            [
              Stmt.Iassign (names.ub, [ kc ], k -! i 1);
              Stmt.Iassign (names.flag, [], i 0);
            ]
        in
        let inspector_setup =
          [
            Stmt.Iassign (names.counter, [], i 0);
            Stmt.Iassign (names.flag, [], i 0);
            Stmt.Loop
              { l with body = [ if_else guard (setup @ [ record_start ]) [ record_end ] ] };
            if_
              (Stmt.Icmp (Stmt.Eq, v names.flag, i 1))
              [
                Stmt.Iassign (names.ub, [ kc ], l.hi);
                Stmt.Iassign (names.flag, [], i 0);
              ];
          ]
        in
        let executor : Stmt.loop =
          {
            index = names.range_index;
            lo = i 1;
            hi = kc;
            step = i 1;
            body =
              [
                Stmt.Loop
                  {
                    l with
                    lo = Expr.idx names.lb [ v names.range_index ];
                    hi = Expr.idx names.ub [ v names.range_index ];
                    body = apply;
                  };
              ];
          }
        in
        Ok (inspector_setup, executor)
      end
  | _ -> Error "split_guarded expects a body that is a single guarded IF"
