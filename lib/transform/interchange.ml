let inner_of (l : Stmt.loop) =
  match l.body with
  | [ Stmt.Loop inner ] -> Ok inner
  | _ -> Error "interchange requires a perfectly nested pair"

let step1 (l : Stmt.loop) name =
  if Expr.equal l.step (Expr.Int 1) then Ok ()
  else Error (name ^ " loop must have step 1")

let legal_by_vectors deps ~outer_level =
  List.for_all
    (fun (d : Dependence.t) ->
      match List.nth_opt d.vector outer_level, List.nth_opt d.vector (outer_level + 1) with
      | Some a, Some b -> not (a.lt && b.gt)
      | _ -> true)
    deps

let rectangular ?check (l : Stmt.loop) =
  let ( let* ) = Result.bind in
  let* inner = inner_of l in
  let* () = step1 l "outer" in
  let* () = step1 inner "inner" in
  let indep e = not (Expr.mentions l.index e) in
  if not (indep inner.lo && indep inner.hi) then
    Error "inner bounds depend on the outer index: not rectangular"
  else if Expr.mentions inner.index l.lo || Expr.mentions inner.index l.hi then
    Error "outer bounds depend on the inner index"
  else
    let* () =
      match check with
      | None -> Ok ()
      | Some (_ctx, deps) ->
          if legal_by_vectors deps ~outer_level:0 then Ok ()
          else Error "a dependence with direction (<,>) prevents interchange"
    in
    Ok { inner with body = [ Stmt.Loop { l with body = inner.body } ] }

(* Extract [a, beta] from an affine bound [a*II + beta] with a > 0. *)
let linear_in index e =
  match Affine.of_expr e with
  | None -> Error "bound is not affine"
  | Some aff ->
      let a, rest = Affine.split_on index aff in
      if a <= 0 then Error "outer-index coefficient must be positive"
      else Ok (a, Affine.to_expr rest)

let floor_div e a = if a = 1 then e else Expr.div e (Expr.Int a)

let ceil_div e a =
  if a = 1 then e else Expr.div (Expr.add e (Expr.Int (a - 1))) (Expr.Int a)

let triangular_lower (l : Stmt.loop) =
  let ( let* ) = Result.bind in
  let* inner = inner_of l in
  let* () = step1 l "outer" in
  let* () = step1 inner "inner" in
  if Expr.mentions l.index inner.hi then
    Error "inner upper bound also depends on the outer index"
  else
    let* a, beta = linear_in l.index inner.lo in
    (* DO II = rlo, rhi / DO J = a*II+beta, M   ==>
       DO J = a*rlo+beta, M / DO II = rlo, MIN((J-beta)/a, rhi) *)
    let new_outer_lo =
      Expr.simplify (Expr.add (Expr.mul (Expr.Int a) l.lo) beta)
    in
    let new_inner_hi =
      Expr.min_ (floor_div (Expr.sub (Expr.var inner.index) beta) a) l.hi
    in
    Ok
      {
        inner with
        lo = new_outer_lo;
        body =
          [ Stmt.Loop { l with hi = new_inner_hi; body = inner.body } ];
      }

let triangular_upper (l : Stmt.loop) =
  let ( let* ) = Result.bind in
  let* inner = inner_of l in
  let* () = step1 l "outer" in
  let* () = step1 inner "inner" in
  if Expr.mentions l.index inner.lo then
    Error "inner lower bound also depends on the outer index"
  else
    let* a, beta = linear_in l.index inner.hi in
    (* DO II = rlo, rhi / DO J = L, a*II+beta   ==>
       DO J = L, a*rhi+beta / DO II = MAX(rlo, ceil((J-beta)/a)), rhi *)
    let new_outer_hi =
      Expr.simplify (Expr.add (Expr.mul (Expr.Int a) l.hi) beta)
    in
    let new_inner_lo =
      Expr.max_ l.lo (ceil_div (Expr.sub (Expr.var inner.index) beta) a)
    in
    Ok
      {
        inner with
        hi = new_outer_hi;
        body =
          [ Stmt.Loop { l with lo = new_inner_lo; body = inner.body } ];
      }

let triangular (l : Stmt.loop) =
  match inner_of l with
  | Error _ as e -> e
  | Ok inner ->
      let lo_dep = Expr.mentions l.index inner.lo in
      let hi_dep = Expr.mentions l.index inner.hi in
      if lo_dep && hi_dep then
        Error "both inner bounds depend on the outer index"
      else if lo_dep then triangular_lower l
      else if hi_dep then triangular_upper l
      else rectangular l

(* ------------------------------------------------------------------ *)
(* Decision tracing: wrap the public entry points.  A loop whose body   *)
(* is not a perfect pair is a structural probe (drivers use the error   *)
(* to stop sinking), not an interchange decision, so it stays silent.   *)
(* ------------------------------------------------------------------ *)

let evidence_of ~form (l : Stmt.loop) (inner : Stmt.loop) =
  [
    ("form", Obs.Str form);
    ("outer", Obs.Str l.index);
    ("inner", Obs.Str inner.index);
    ("inner_lo", Obs.Str (Expr.to_string inner.lo));
    ("inner_hi", Obs.Str (Expr.to_string inner.hi));
  ]

let traced ~form ?extra l inner r =
  match inner_of l with
  | Error _ -> r ()
  | Ok _ ->
      let evidence =
        evidence_of ~form l inner @ Option.value extra ~default:[]
      in
      Obs.decide ~transform:"interchange"
        ~target:(l.index ^ "<->" ^ inner.index)
        ~evidence (r ())

let rectangular ?check (l : Stmt.loop) =
  match inner_of l with
  | Error _ as e -> e
  | Ok inner ->
      let extra =
        match check with
        | None -> [ ("legality", Obs.Str "bounds independent; no dependence check requested") ]
        | Some (_, deps) ->
            [
              ("legality",
               Obs.Str
                 (Printf.sprintf "%d dependence vector(s) checked for (<,>)"
                    (List.length deps)));
            ]
      in
      traced ~form:"rectangular" ~extra l inner (fun () -> rectangular ?check l)

let triangular (l : Stmt.loop) =
  match inner_of l with
  | Error _ as e -> e
  | Ok inner ->
      let form =
        match
          (Expr.mentions l.index inner.lo, Expr.mentions l.index inner.hi)
        with
        | true, true -> "both-bounds"
        | true, false -> "triangular-lower"
        | false, true -> "triangular-upper"
        | false, false -> "rectangular"
      in
      traced ~form l inner (fun () -> triangular l)
