(* ------------------------------------------------------------------ *)
(* Curated pattern table (the paper's §5.2 matcher)                    *)
(* ------------------------------------------------------------------ *)

(* T = A(r1, j); A(r1, j) = A(r2, j); A(r2, j) = T  within DO j. *)
let swap_body j = function
  | [
      Stmt.Assign (t, [], Stmt.Ref (a1, [ r1; Expr.Var j1 ]));
      Stmt.Assign (a2, [ r1'; Expr.Var j2 ], Stmt.Ref (a3, [ r2; Expr.Var j3 ]));
      Stmt.Assign (a4, [ r2'; Expr.Var j4 ], Stmt.Fvar t');
    ] ->
      String.equal t t'
      && String.equal a1 a2 && String.equal a2 a3 && String.equal a3 a4
      && List.for_all (String.equal j) [ j1; j2; j3; j4 ]
      && Expr.equal r1 r1' && Expr.equal r2 r2'
      && (not (Expr.mentions j r1))
      && not (Expr.mentions j r2)
  | _ -> false

let is_row_swap = function
  | Stmt.Loop l -> swap_body l.index l.body
  | Stmt.Assign _ | Stmt.Iassign _ | Stmt.If _ -> false

(* A(i, j) = A(i, j) -/+ A(i, k) * A(k, j), column index [i] being the
   innermost loop's index. *)
let update_assign i = function
  | Stmt.Assign
      ( a,
        [ Expr.Var i1; j1 ],
        Stmt.Fbin
          ( (Stmt.FSub | Stmt.FAdd),
            Stmt.Ref (a2, [ Expr.Var i2; j2 ]),
            Stmt.Fbin
              (Stmt.FMul, Stmt.Ref (a3, [ Expr.Var i3; k1 ]), Stmt.Ref (a4, [ k2; j3 ]))
          ) ) ->
      String.equal a a2 && String.equal a2 a3 && String.equal a3 a4
      && List.for_all (String.equal i) [ i1; i2; i3 ]
      && Expr.equal j1 j2 && Expr.equal j2 j3 && Expr.equal k1 k2
      && (not (Expr.mentions i j1))
      && not (Expr.mentions i k1)
  | _ -> false

let rec is_column_update = function
  | Stmt.Loop l -> (
      match l.body with
      | [ (Stmt.Loop _ as inner) ] -> is_column_update inner
      | [ stmt ] -> update_assign l.index stmt
      | _ -> false)
  | Stmt.Assign _ | Stmt.Iassign _ | Stmt.If _ -> false

let body_stmt_of_path (path : Stmt.path) =
  match path with
  | Stmt.I 0 :: Stmt.I k :: _ -> Some k
  | _ -> None

let curated_count = ref 0
let lookups () = !curated_count
let reset_lookups () = curated_count := 0
let use_curated = ref false

let may_ignore_curated (l : Stmt.loop) (dep : Dependence.t) =
  incr curated_count;
  let body = Array.of_list l.body in
  match
    (body_stmt_of_path dep.source.path, body_stmt_of_path dep.sink.path)
  with
  | Some a, Some b when a <> b && a < Array.length body && b < Array.length body
    ->
      let sa = body.(a) and sb = body.(b) in
      let ok =
        (is_row_swap sa && is_column_update sb)
        || (is_column_update sa && is_row_swap sb)
      in
      (* Only positive matches are decisions; every other dependence in
         the loop is queried too and would flood the trace. *)
      if ok then
        Obs.decision ~transform:"commutativity" ~target:l.index ~applied:true
          ~reason:
            "curated: row interchange commutes with whole-column updates \
             (§5.2); the dependence between them may be ignored for \
             distribution"
          ~evidence:
            [
              ("dependence", Obs.Str (Dependence.to_string dep));
              ("stmts", Obs.Str (Printf.sprintf "%d <-> %d" a b));
            ]
          ();
      ok
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Derived commutativity via fractal symbolic analysis                 *)
(* ------------------------------------------------------------------ *)

let theta_counter = ref 0

let fresh_theta base =
  incr theta_counter;
  Printf.sprintf "%s.%d" base !theta_counter

(* Facts about the integer scalars an instance reads, recovered from
   the body prefix that runs before it within the same iteration: e.g.
   after the pivot search at iteration [theta], [IMAX] lies in
   [[theta, N]].  Only sound for scalars the {e other} instance neither
   reads (the shared-exposed guard refused those) nor writes. *)
let range_facts ~ctx ~assigned l stmt_idx theta reader other =
  let prefix = List.filteri (fun i _ -> i < stmt_idx) (l : Stmt.loop).body in
  let prefix = Stmt.subst_block [ (l.index, Expr.var theta) ] prefix in
  let reads = Fsa.exposed_reads [ reader ] in
  let other_writes = Fsa.assigned_scalars [ other ] in
  List.fold_left
    (fun ctx (v, (iv : Fsa.interval)) ->
      if
        List.mem v reads && List.mem v assigned
        && not (List.mem v other_writes)
      then
        let ctx =
          match iv.ilo with
          | Some lo -> Symbolic.assume_ge ctx (Affine.var v) lo
          | None -> ctx
        in
        match iv.ihi with
        | Some hi -> Symbolic.assume_le ctx (Affine.var v) hi
        | None -> ctx
      else ctx)
    ctx
    (Fsa.int_ranges ~ctx prefix)

let derive_commute ~ctx (l : Stmt.loop) a b =
  let body = Array.of_list l.body in
  let sa = body.(a) and sb = body.(b) in
  let assigned = Fsa.assigned_scalars l.body in
  let ea = Fsa.exposed_reads [ sa ] and eb = Fsa.exposed_reads [ sb ] in
  let shared =
    List.filter (fun s -> List.mem s eb && List.mem s assigned) ea
  in
  if shared <> [] then
    ( false,
      Printf.sprintf
        "both instances read scalar %s, which the loop body assigns"
        (List.hd shared) )
  else begin
    let t1 = fresh_theta l.index and t2 = fresh_theta l.index in
    let p = Stmt.subst [ (l.index, Expr.var t1) ] sa in
    let q = Stmt.subst [ (l.index, Expr.var t2) ] sb in
    let ctx =
      Symbolic.with_loops ctx [ { l with index = t1 }; { l with index = t2 } ]
    in
    let ctx =
      Symbolic.assume_le ctx
        (Affine.add (Affine.var t1) (Affine.const 1))
        (Affine.var t2)
    in
    let ctx = range_facts ~ctx ~assigned l a t1 sa sb in
    let ctx = range_facts ~ctx ~assigned l b t2 sb sa in
    let ignore_scalars = Fsa.stmt_covered_scalars l.body in
    let r = Fsa.commute ~ignore_scalars ~ctx [ p ] [ q ] in
    match r.Fsa.verdict with
    | Fsa.Equivalent ->
        (true, String.concat "\n" (Fsa.proof_to_lines r.Fsa.proof))
    | Fsa.Unknown why -> (false, why)
  end

let memo : (string, bool * string) Hashtbl.t = Hashtbl.create 16

let may_ignore_derived ~ctx (l : Stmt.loop) (dep : Dependence.t) =
  let n = List.length l.body in
  match
    (body_stmt_of_path dep.source.path, body_stmt_of_path dep.sink.path)
  with
  | Some a, Some b when a <> b && a < n && b < n ->
      let key =
        Printf.sprintf "%d|%d|%s|%s" a b
          (Stmt.to_string (Stmt.Loop l))
          (String.concat ";" (List.map Affine.to_string (Symbolic.facts ctx)))
      in
      let ok, detail =
        match Hashtbl.find_opt memo key with
        | Some r -> r
        | None ->
            let r = derive_commute ~ctx l a b in
            Hashtbl.add memo key r;
            r
      in
      if ok then
        Obs.decision ~transform:"commutativity" ~target:l.index ~applied:true
          ~reason:
            "derived: fractal symbolic analysis proves the reordered \
             instances equivalent; the dependence between them may be \
             ignored for distribution"
          ~evidence:
            [
              ("dependence", Obs.Str (Dependence.to_string dep));
              ("stmts", Obs.Str (Printf.sprintf "%d <-> %d" a b));
              ("proof", Obs.Str detail);
            ]
          ();
      ok
  | _ -> false

let may_ignore ~ctx l dep =
  if !use_curated then may_ignore_curated l dep
  else may_ignore_derived ~ctx l dep
