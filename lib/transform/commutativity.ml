(* T = A(r1, j); A(r1, j) = A(r2, j); A(r2, j) = T  within DO j. *)
let swap_body j = function
  | [
      Stmt.Assign (t, [], Stmt.Ref (a1, [ r1; Expr.Var j1 ]));
      Stmt.Assign (a2, [ r1'; Expr.Var j2 ], Stmt.Ref (a3, [ r2; Expr.Var j3 ]));
      Stmt.Assign (a4, [ r2'; Expr.Var j4 ], Stmt.Fvar t');
    ] ->
      String.equal t t'
      && String.equal a1 a2 && String.equal a2 a3 && String.equal a3 a4
      && List.for_all (String.equal j) [ j1; j2; j3; j4 ]
      && Expr.equal r1 r1' && Expr.equal r2 r2'
      && (not (Expr.mentions j r1))
      && not (Expr.mentions j r2)
  | _ -> false

let is_row_swap = function
  | Stmt.Loop l -> swap_body l.index l.body
  | Stmt.Assign _ | Stmt.Iassign _ | Stmt.If _ -> false

(* A(i, j) = A(i, j) -/+ A(i, k) * A(k, j), column index [i] being the
   innermost loop's index. *)
let update_assign i = function
  | Stmt.Assign
      ( a,
        [ Expr.Var i1; j1 ],
        Stmt.Fbin
          ( (Stmt.FSub | Stmt.FAdd),
            Stmt.Ref (a2, [ Expr.Var i2; j2 ]),
            Stmt.Fbin
              (Stmt.FMul, Stmt.Ref (a3, [ Expr.Var i3; k1 ]), Stmt.Ref (a4, [ k2; j3 ]))
          ) ) ->
      String.equal a a2 && String.equal a2 a3 && String.equal a3 a4
      && List.for_all (String.equal i) [ i1; i2; i3 ]
      && Expr.equal j1 j2 && Expr.equal j2 j3 && Expr.equal k1 k2
      && (not (Expr.mentions i j1))
      && not (Expr.mentions i k1)
  | _ -> false

let rec is_column_update = function
  | Stmt.Loop l -> (
      match l.body with
      | [ (Stmt.Loop _ as inner) ] -> is_column_update inner
      | [ stmt ] -> update_assign l.index stmt
      | _ -> false)
  | Stmt.Assign _ | Stmt.Iassign _ | Stmt.If _ -> false

let body_stmt_of_path (path : Stmt.path) =
  match path with
  | Stmt.I 0 :: Stmt.I k :: _ -> Some k
  | _ -> None

let may_ignore (l : Stmt.loop) (dep : Dependence.t) =
  let body = Array.of_list l.body in
  match
    (body_stmt_of_path dep.source.path, body_stmt_of_path dep.sink.path)
  with
  | Some a, Some b when a <> b && a < Array.length body && b < Array.length body
    ->
      let sa = body.(a) and sb = body.(b) in
      let ok =
        (is_row_swap sa && is_column_update sb)
        || (is_column_update sa && is_row_swap sb)
      in
      (* Only positive matches are decisions; every other dependence in
         the loop is queried too and would flood the trace. *)
      if ok then
        Obs.decision ~transform:"commutativity" ~target:l.index ~applied:true
          ~reason:
            "row interchange commutes with whole-column updates (§5.2): the \
             dependence between them may be ignored for distribution"
          ~evidence:
            [
              ("dependence", Obs.Str (Dependence.to_string dep));
              ("stmts", Obs.Str (Printf.sprintf "%d <-> %d" a b));
            ]
          ();
      ok
  | _ -> false
