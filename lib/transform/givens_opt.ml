let ( let* ) = Result.bind

let scratch_arrays ~(names : If_inspection.names) = [ names.lb; names.ub ]

(* REAL scalars written in [apply] that the setup part also touches must
   be privatized (renamed) in [apply], or deferring apply past later
   setups would read clobbered temporaries. *)
let privatize ~setup ~apply =
  let scalars block kind_filter =
    List.filter_map
      (fun (a : Ir_util.access) ->
        if a.subs = [] && a.space = Ir_util.Float_data && kind_filter a.kind then
          Some a.array
        else None)
      (Ir_util.accesses block)
    |> List.sort_uniq String.compare
  in
  let apply_written = scalars apply (fun k -> k = Ir_util.Write) in
  let setup_touched = scalars setup (fun _ -> true) in
  let shared = List.filter (fun s -> List.mem s setup_touched) apply_written in
  let used = ref (setup_touched @ apply_written) in
  List.fold_left
    (fun apply s ->
      let fresh = Ir_util.fresh ~used:!used (s ^ "P") in
      used := fresh :: !used;
      List.map (Stmt.rename_fvar s fresh) apply)
    apply shared

let optimize (l_loop : Stmt.loop) =
  Obs.span ~cat:"driver" "givens.optimize"
    ~args:[ ("loop", Obs.Str l_loop.index) ]
  @@ fun () ->
  let steps = ref [] in
  let record name detail after =
    Obs.instant ~cat:"driver" ~args:[ ("detail", Obs.Str detail) ] name;
    steps := { Blocker.name; detail; after } :: !steps
  in
  (* Locate the J sweep and the guarded rotation. *)
  let* j_loop =
    match l_loop.body with
    | [ Stmt.Loop j ] -> Ok j
    | _ -> Error "expected a single J sweep inside the L loop"
  in
  let* guard, setup_stmts, k_loop =
    match j_loop.body with
    | [ Stmt.If (guard, stmts, []) ] -> (
        match List.rev stmts with
        | Stmt.Loop k :: rev_setup -> Ok (guard, List.rev rev_setup, k)
        | _ -> Error "guarded body must end with the rotation loop")
    | _ -> Error "expected a single guarded IF inside the J sweep"
  in
  (* Step 1: peel K = L.  The recurrence between the definition of A(L,K)
     and the uses of A(L,L)/A(J,L) exists only for the element column
     (section analysis: the guard/setup reads are confined to column L),
     so splitting the K index set at L isolates it. *)
  let* () =
    if Expr.equal k_loop.lo (Expr.var l_loop.index) then Ok ()
    else Error "rotation loop must start at the eliminated column"
  in
  let peeled =
    Stmt.subst_block [ (k_loop.index, Expr.var l_loop.index) ] k_loop.body
  in
  let k_rest = { k_loop with lo = Expr.succ (Expr.var l_loop.index) } in
  record "index-set-split"
    (Printf.sprintf "split %s at %s: peel the element column" k_loop.index
       l_loop.index)
    [ Stmt.Loop { j_loop with body = peeled @ [ Stmt.Loop k_rest ] } ];
  (* Step 2: privatize rotation temporaries in the apply part. *)
  let setup_all = setup_stmts @ peeled in
  let apply = privatize ~setup:setup_all ~apply:[ Stmt.Loop k_rest ] in
  (* Step 3: expand the coefficient scalars over J so the value channel
     from setup to executor survives distribution. *)
  let j_restructured =
    { j_loop with body = [ Stmt.If (guard, setup_all @ apply, []) ] }
  in
  let coeff_scalars =
    (* Scalars defined in setup and read in apply. *)
    let reads block =
      List.filter_map
        (fun (a : Ir_util.access) ->
          if a.subs = [] && a.space = Ir_util.Float_data && a.kind = Ir_util.Read
          then Some a.array
          else None)
        (Ir_util.accesses block)
      |> List.sort_uniq String.compare
    in
    let writes block =
      List.filter_map
        (fun (a : Ir_util.access) ->
          if a.subs = [] && a.space = Ir_util.Float_data && a.kind = Ir_util.Write
          then Some a.array
          else None)
        (Ir_util.accesses block)
      |> List.sort_uniq String.compare
    in
    List.filter (fun s -> List.mem s (reads apply)) (writes setup_all)
  in
  let* expanded =
    List.fold_left
      (fun acc scalar ->
        let* j = acc in
        Scalar_expansion.apply ~scalar ~array_name:scalar j)
      (Ok j_restructured) coeff_scalars
  in
  record "scalar-expansion"
    (Printf.sprintf "expand %s over %s" (String.concat ", " coeff_scalars)
       j_loop.index)
    [ Stmt.Loop expanded ];
  (* Step 4: fused IF-inspection + distribution of the J sweep. *)
  let used =
    Ir_util.index_vars [ Stmt.Loop l_loop ]
    @ List.map (fun (n, _, _) -> n) (Ir_util.arrays_of [ Stmt.Loop l_loop ])
    @ Ir_util.symbolic_params [ Stmt.Loop l_loop ]
  in
  let names = If_inspection.default_names ~prefix:j_loop.index ~used in
  let ctx =
    List.fold_left Symbolic.assume_pos
      (Symbolic.of_loop_context [ l_loop ])
      (Ir_util.symbolic_params [ Stmt.Loop l_loop ])
  in
  let* inspector_setup, executor =
    If_inspection.split_guarded ~ctx ~names
      ~setup_len:(List.length setup_all) expanded
  in
  record "if-inspection"
    "inspection fused into the setup sweep; apply deferred to an executor"
    (inspector_setup @ [ Stmt.Loop executor ]);
  (* Step 5: interchange the executor to K-outer / J-inner. *)
  let* executor' =
    match executor.body with
    | [ Stmt.Loop j_exec ] ->
        let* swapped = Interchange.rectangular j_exec in
        let* outer = Interchange.rectangular { executor with body = [ Stmt.Loop swapped ] } in
        Ok outer
    | _ -> Error "unexpected executor shape"
  in
  record "interchange"
    "executor interchanged: K outermost, J innermost (stride-one A(J,K))"
    [ Stmt.Loop executor' ];
  let result =
    Stmt.Loop { l_loop with body = inspector_setup @ [ Stmt.Loop executor' ] }
  in
  record "result" "optimized Givens QR" [ result ];
  Ok ({ Blocker.result; steps = List.rev !steps }, names)
