(** Blocking drivers: compositions of the primitive transformations that
    derive the paper's block algorithms from point algorithms.

    Every driver is mechanical: it locates loops structurally, asks the
    dependence/section analyses for legality, and applies the primitive
    transformations.  Planning heuristics may assume full blocks
    ([K + KS <= N]) — the emitted code never depends on that assumption
    (bounds carry MIN/MAX guards), and distribution legality is
    re-checked under universally valid facts only. *)

type trace_step = { name : string; detail : string; after : Stmt.t list }

type 'a traced = { result : 'a; steps : trace_step list }

val strip_mine_and_interchange :
  block_size:Expr.t ->
  new_index:string ->
  levels:int ->
  Stmt.loop ->
  (Stmt.loop, string) result
(** §2.3: strip-mine the outer loop of a perfect nest and sink the strip
    loop inward [levels] positions (rectangular or triangular
    interchange chosen per level). *)

val block_lu : block_size_var:string -> Stmt.loop -> (Stmt.t traced, string) result
(** §5.1: derive block LU decomposition (Figure 6) from the point
    algorithm.  The input must be the point LU K-loop whose body is
    [scale loop; update nest].  Steps performed and checked:

    + strip-mine K by the symbolic block size;
    + attempt distribution of the strip loop — the analysis must report
      the preventing recurrence;
    + Procedure IndexSetSplit finds the split point for the update's
      column loop (sections of the recurrence's endpoints);
    + index-set split + bound simplification;
    + distribution (now provably legal via section disjointness);
    + interchange the strip loop to the innermost position of the
      wide-column nest (rectangular, then triangular). *)

val block_lu_pivot :
  block_size_var:string -> Stmt.loop -> (Stmt.t traced, string) result
(** §5.2: same derivation for LU with partial pivoting.  Plain
    dependence-based distribution must fail (the row-swap recurrence);
    the driver then asks {!Commutativity.may_ignore} to license ignoring
    dependences between row interchanges and whole-column updates, after
    which distribution proceeds and yields Figure 8. *)

val block_lu_opt :
  block_size_var:string ->
  factor:int ->
  Stmt.loop ->
  (Stmt.t traced, string) result
(** §5.1 Table 3's "2+": {!block_lu}, then register blocking of the
    trailing update — MIN/MAX removal splits the update's row loop into
    its triangular and rectangular regions, the shape-matched
    unroll-and-jam runs on each, and scalar replacement promotes
    loop-invariant references in every innermost loop.  Blocking alone
    only reorganizes misses ("2" is within ~8% of point in the paper);
    this is the variant whose measured speedups the paper reports. *)

val block_lu_pivot_opt :
  block_size_var:string ->
  factor:int ->
  Stmt.loop ->
  (Stmt.t traced, string) result
(** §5.2 Table 4's "1+": {!block_lu_pivot}, then the same register
    blocking {!block_lu_opt} applies to plain LU — unroll-and-jam on
    the MIN/MAX-free regions of the trailing update, and scalar
    replacement over {e every} innermost loop, including those under
    the IF-guarded pivot search and row swaps (sites under disjunctive
    bounds use [Symbolic.with_loops_cases] facts). *)

val block_trapezoid :
  ctx:Symbolic.t ->
  factor:int ->
  Stmt.loop ->
  (Stmt.t list traced, string) result
(** §3.2: remove the MIN/MAX bounds by index-set splitting, then apply
    the shape-appropriate unroll-and-jam (triangular, upper-triangular,
    rhomboidal or rectangular) to each region.  [ctx] carries the facts
    that justify the rhomboidal form (e.g. [N2 >= factor - 1]); regions
    that cannot be unrolled are left split but unblocked (partial
    blocking). *)

val choose_block_size : machine:Arch.t -> ?sweep:(int * int) list -> unit -> int
(** The machine-dependent block-size choice the drivers delegate to.
    Without [sweep] this is {!Arch.block_size}'s footprint heuristic.
    With [sweep] — [(block, simulated L1 misses)] pairs from a
    [blockc profile --sweep] run — the measured minimum wins (ties to
    the larger block).  Either way the choice and its evidence are
    recorded as an [Obs] decision, so [blockc explain]-style tooling can
    cite why a block size was picked. *)
