(** Scalar replacement (Callahan–Carr–Kennedy).

    Array references that are invariant with respect to the innermost
    loop are loaded into scalars before the loop (and stored back after
    it when written), exposing the reuse to the register allocator.
    This is the "+" in the paper's "2+"/"1+" variants, applied together
    with unroll-and-jam.

    Safety: a replaced reference's location must not be touched by any
    *other* (possibly aliasing) access inside the loop.  We require, for
    every other access to the same array, that section analysis prove
    disjointness with the replaced element under the caller's context
    facts. *)

val apply :
  ?cases:Symbolic.t list ->
  ctx:Symbolic.t ->
  Stmt.loop ->
  (Stmt.t list, string) result
(** [apply ~ctx l] for an innermost loop [l] (no nested loops).  Returns
    [loads @ [loop'] @ stores].  References that cannot be proven safe
    are simply left in place; the transformation fails only if [l] is
    not innermost.

    [cases], when given and nonempty, is a disjunctive refinement of
    [ctx] (see {!Symbolic.with_loops_cases}): safety must then be
    provable under {e every} case.  This is what lets references under
    loops with MIN/MAX bounds — the shapes unroll-and-jam leaves behind
    — pass the disjointness test. *)

val replaceable :
  ?cases:Symbolic.t list ->
  ctx:Symbolic.t ->
  Stmt.loop ->
  (string * Expr.t list) list
(** The invariant references that pass the safety test (for
    diagnostics). *)
