type trace_step = { name : string; detail : string; after : Stmt.t list }
type 'a traced = { result : 'a; steps : trace_step list }

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Strip-mine-and-interchange (§2.3, §3.1)                             *)
(* ------------------------------------------------------------------ *)

let rec sink levels (strip : Stmt.loop) =
  if levels = 0 then Ok (Stmt.Loop strip)
  else
    let* outer = Interchange.triangular strip in
    match outer.body with
    | [ Stmt.Loop strip' ] ->
        let* sunk = sink (levels - 1) strip' in
        Ok (Stmt.Loop { outer with body = [ sunk ] })
    | _ -> Error "interchange did not produce a nested pair"

let strip_mine_and_interchange ~block_size ~new_index ~levels (l : Stmt.loop) =
  let* stripped = Strip_mine.apply ~block_size ~new_index l in
  match stripped.body with
  | [ Stmt.Loop strip ] ->
      let* sunk = sink levels strip in
      Ok { stripped with body = [ sunk ] }
  | _ -> Error "strip mining did not produce a strip loop"

(* ------------------------------------------------------------------ *)
(* Block LU derivation (§5.1 / §5.2)                                   *)
(* ------------------------------------------------------------------ *)

let find_loop_value block target =
  List.find_opt
    (fun ((_ : Stmt.path), (l : Stmt.loop)) -> l == target)
    (Stmt.find_loops block)

(* Universally valid facts about the strip-mined kernel: positive problem
   and block sizes, plus the bounds of the blocked outer loop and of the
   strip loop (in particular [KK <= K + KS - 1], which bound
   simplification and section disjointness rely on). *)
let universal_ctx ~block_size_var (outer : Stmt.loop) (strip : Stmt.loop) =
  let ctx = Symbolic.empty in
  let ctx = Symbolic.assume_pos ctx block_size_var in
  let ctx =
    List.fold_left Symbolic.assume_pos ctx
      (Ir_util.symbolic_params [ Stmt.Loop outer ])
  in
  List.fold_left Symbolic.assume_nonneg ctx
    (Symbolic.facts (Symbolic.of_loop_context [ outer; strip ]))

(* Planning facts: additionally assume the current block is full and not
   the last one ([K + KS <= hi]).  Sound to use for *choosing* the split
   point only: the emitted split is correct for ragged or final blocks
   because every generated bound keeps its MIN/MAX guard, and
   distribution legality is re-checked under the universal facts. *)
let planning_ctx ~block_size_var (outer : Stmt.loop) ctx =
  match Affine.of_expr outer.hi with
  | Some hi ->
      let kks =
        Affine.add (Affine.var outer.index) (Affine.var block_size_var)
      in
      Symbolic.assume_le ctx kks hi
  | None -> ctx

let split_candidates_of (dep : Dependence.t) (kk : Stmt.loop) =
  let inner_loops (a : Ir_util.access) =
    List.filter (fun (l : Stmt.loop) -> not (String.equal l.index kk.index)) a.loops
  in
  inner_loops dep.source @ inner_loops dep.sink

(* Try one preventing dependence: plan a split, apply it, simplify bounds
   and attempt distribution of [kk] into [prefix stmts] ++ [last stmt]. *)
let try_dep ~ctx ~ctx_plan ~ignore_dep_of (kk : Stmt.loop) (dep : Dependence.t) =
  let* plan =
    Index_set_split.procedure ~ctx:ctx_plan ~source:dep.source ~sink:dep.sink
      ~split_candidates:(split_candidates_of dep kk)
  in
  if not plan.conflict_first then
    Error "only conflict-in-first-part splits are used by this driver"
  else
    match find_loop_value kk.body plan.loop with
    | None -> Error ("loop " ^ plan.loop.index ^ " not found in the strip body")
    | Some (path, target) ->
        let parts = Index_set_split.at_point target plan.point in
        let body' = Stmt.replace_at kk.body path parts in
        let body' = Simplify_bounds.block ~ctx body' in
        let kk' = { kk with body = body' } in
        (* The split statement's second half sits right after the first;
           everything up to and including the first half forms the head
           group.  The target may be nested: the affected top-level
           statement index is the head of [path]. *)
        let top =
          match path with
          | Stmt.I n :: _ -> n
          | _ -> 0
        in
        (* After the splice, the first half of the split loop sits at
           index [top] and the second half at [top + 1]; the head group is
           everything up to and including the first half. *)
        let n = List.length body' in
        if top + 1 >= n then Error "split did not create a tail statement"
        else
          let head = List.init (top + 1) (fun i -> i) in
          let tail = List.init (n - top - 1) (fun i -> top + 1 + i) in
          let* loops =
            Distribution.apply_with_override ~ctx
              ~ignore_dep:(ignore_dep_of ctx kk') kk' ~groups:[ head; tail ]
          in
          Ok (plan, loops)

let preventing_deps ~ctx (kk : Stmt.loop) =
  let g = Ddg.build ~ctx kk in
  let multi = List.filter (fun comp -> List.length comp > 1) g.sccs in
  List.filter_map
    (fun (e : Ddg.edge) ->
      if
        e.from_stmt <> e.to_stmt
        && List.exists
             (fun comp -> List.mem e.from_stmt comp && List.mem e.to_stmt comp)
             multi
      then Some e.dep
      else None)
    g.edges

(* Interchange the strip loop of the distributed tail nest to the
   innermost position: sink it one level at a time (rectangular or
   triangular per level, as the bounds dictate) until no perfectly
   nested loop remains below it.  For LU this is rectangular past the
   split column loop and triangular past the row loop (Figure 6); for a
   depth-2 tail such as triangular solve, one rectangular swap. *)
let interchange_tail (tail : Stmt.t) =
  let rec sink_all (strip : Stmt.loop) =
    match Interchange.triangular strip with
    | Error _ -> Stmt.Loop strip
    | Ok outer -> (
        match outer.body with
        | [ Stmt.Loop inner ] -> Stmt.Loop { outer with body = [ sink_all inner ] }
        | _ -> Stmt.Loop outer)
  in
  match tail with
  | Stmt.Loop kk_tail -> (
      match sink_all kk_tail with
      | Stmt.Loop sunk when sunk == kk_tail ->
          Error "the strip loop could not be interchanged inward"
      | sunk -> Ok sunk)
  | Stmt.Assign _ | Stmt.Iassign _ | Stmt.If _ ->
      Error "distributed tail is not a loop"

let derive ~block_size_var ~ignore_dep_of (l : Stmt.loop) =
  Obs.span ~cat:"driver" "blocker.derive"
    ~args:[ ("loop", Obs.Str l.index); ("block_size", Obs.Str block_size_var) ]
  @@ fun () ->
  let steps = ref [] in
  let record name detail after =
    Obs.instant ~cat:"driver" ~args:[ ("detail", Obs.Str detail) ] name;
    steps := { name; detail; after } :: !steps
  in
  let kk_index =
    Ir_util.fresh
      ~used:(Ir_util.index_vars [ Stmt.Loop l ] @ Ir_util.symbolic_params [ Stmt.Loop l ])
      (l.index ^ l.index)
  in
  let* stripped =
    Strip_mine.apply ~block_size:(Expr.var block_size_var) ~new_index:kk_index l
  in
  record "strip-mine"
    (Printf.sprintf "strip-mine %s by %s (strip index %s)" l.index block_size_var
       kk_index)
    [ Stmt.Loop stripped ];
  let* kk =
    match stripped.body with
    | [ Stmt.Loop kk ] -> Ok kk
    | _ -> Error "strip mining did not produce a strip loop"
  in
  let ctx = universal_ctx ~block_size_var stripped kk in
  let ctx_plan = planning_ctx ~block_size_var stripped ctx in
  (* The point of the exercise: plain distribution must fail. *)
  let* () =
    match Distribution.auto ~ctx kk with
    | Error reason ->
        record "recurrence" ("distribution prevented: " ^ reason) [ Stmt.Loop kk ];
        Ok ()
    | Ok _ -> Error "expected a preventing recurrence; the kernel distributes as-is"
  in
  let deps = preventing_deps ~ctx kk in
  if deps = [] then Error "no preventing dependences found"
  else
    let rec search errs = function
      | [] ->
          Error
            ("no preventing dependence yields a usable split: "
            ^ String.concat "; " (List.sort_uniq String.compare errs))
      | dep :: rest -> (
          match try_dep ~ctx ~ctx_plan ~ignore_dep_of kk dep with
          | Ok (plan, loops) -> Ok (dep, plan, loops)
          | Error e -> search (e :: errs) rest)
    in
    let* dep, plan, loops = search [] deps in
    record "index-set-split"
      (Printf.sprintf "split %s at %s (from %s)" plan.loop.index
         (Expr.to_string plan.point)
         (Dependence.to_string dep))
      loops;
    let* head, tail =
      match loops with
      | [ head; tail ] -> Ok (head, tail)
      | _ -> Error "expected exactly two distributed loops"
    in
    record "distribute" "strip loop distributed around the split" loops;
    let* tail' = interchange_tail tail in
    record "interchange" "strip loop moved innermost in the tail nest" [ tail' ];
    let result = Stmt.Loop { stripped with body = [ head; tail' ] } in
    record "result" "blocked kernel" [ result ];
    Ok { result; steps = List.rev !steps }

let block_lu ~block_size_var l =
  derive ~block_size_var ~ignore_dep_of:(fun _ _ _ -> false) l

let block_lu_pivot ~block_size_var l =
  derive ~block_size_var
    ~ignore_dep_of:(fun ctx kk dep -> Commutativity.may_ignore ~ctx kk dep)
    l


(* ------------------------------------------------------------------ *)
(* Trapezoidal / rhomboidal blocking (§3.2)                            *)
(* ------------------------------------------------------------------ *)

(* After MIN/MAX removal, classify each region's inner-loop bounds and
   apply the matching unroll-and-jam shape. *)
let unroll_region ~ctx ~factor (s : Stmt.t) =
  match s with
  | Stmt.Loop l -> (
      match l.body with
      | [ Stmt.Loop inner ] -> (
          let lo_dep = Expr.mentions l.index inner.lo in
          let hi_dep = Expr.mentions l.index inner.hi in
          match lo_dep, hi_dep with
          | true, true -> Unroll_and_jam.rhomboidal ~ctx ~factor l
          | true, false -> Unroll_and_jam.triangular ~factor l
          | false, true -> Unroll_and_jam.upper_triangular ~factor l
          | false, false -> Unroll_and_jam.rectangular ~factor l)
      | _ -> Error "region is not a perfect depth-2 nest")
  | Stmt.Assign _ | Stmt.Iassign _ | Stmt.If _ -> Error "region is not a loop"

let block_trapezoid ~ctx ~factor (l : Stmt.loop) =
  Obs.span ~cat:"driver" "blocker.trapezoid"
    ~args:[ ("loop", Obs.Str l.index); ("factor", Obs.Int factor) ]
  @@ fun () ->
  let steps = ref [] in
  let record name detail after =
    Obs.instant ~cat:"driver" ~args:[ ("detail", Obs.Str detail) ] name;
    steps := { name; detail; after } :: !steps
  in
  let* regions = Split_minmax.remove_all l in
  record "index-set-split"
    (Printf.sprintf "MIN/MAX removal split the loop into %d region(s)"
       (List.length regions))
    regions;
  let* blocked =
    List.fold_right
      (fun region acc ->
        let* acc = acc in
        match unroll_region ~ctx ~factor region with
        | Ok stmts -> Ok (stmts @ acc)
        | Error _ ->
            (* A region the unroller cannot handle stays as it is —
               partial blocking, as in the paper. *)
            Ok (region :: acc))
      regions (Ok [])
  in
  record "unroll-and-jam"
    (Printf.sprintf "each region register-blocked by %d" factor)
    blocked;
  Ok { result = blocked; steps = List.rev !steps }

(* ------------------------------------------------------------------ *)
(* Block LU "2+": register blocking on top of the cache blocking       *)
(* ------------------------------------------------------------------ *)

(* Innermost loops of [block], deepest-first, each with the loops
   strictly enclosing it (for context facts). *)
let innermost_sites block =
  let all = Stmt.find_loops block in
  let is_prefix q path =
    List.length q < List.length path
    && q = List.filteri (fun i _ -> i < List.length q) path
  in
  let innermost (path, _) =
    not (List.exists (fun (q, _) -> is_prefix path q) all)
  in
  List.rev
    (List.filter_map
       (fun ((path, l) as site) ->
         if innermost site then
           let ancestors =
             List.filter_map
               (fun (q, l') -> if is_prefix q path then Some l' else None)
               all
           in
           Some (path, l, ancestors)
         else None)
       all)

(* Scalar replacement over every innermost loop of [block].  Sites are
   rewritten deepest-first so remaining paths stay valid; references the
   safety analysis cannot clear are simply left in place. *)
let scalar_replace_all ~ctx block =
  let replaced = ref 0 in
  let block =
    List.fold_left
      (fun block (path, (l : Stmt.loop), ancestors) ->
        let site_ctx = Symbolic.with_loops ctx ancestors in
        let cases = Symbolic.with_loops_cases ctx ancestors in
        if Scalar_replacement.replaceable ~cases ~ctx:site_ctx l = [] then block
        else
          match Scalar_replacement.apply ~cases ~ctx:site_ctx l with
          | Ok stmts ->
              incr replaced;
              Stmt.replace_at block path stmts
          | Error _ -> block)
      block (innermost_sites block)
  in
  (block, !replaced)

(* Shared "+" tail: register-block the trailing update of an already
   cache-blocked LU-shaped kernel (with or without pivoting) and run
   scalar replacement over every innermost loop.  [label] names the
   paper's variant in the trace. *)
let opt_tail ~block_size_var ~factor ~label { result; steps } =
  let steps = ref (List.rev steps) in
  let record name detail after =
    Obs.instant ~cat:"driver" ~args:[ ("detail", Obs.Str detail) ] name;
    steps := { name; detail; after } :: !steps
  in
  let* outer, head, tail_j =
    match result with
    | Stmt.Loop ({ body = [ head; Stmt.Loop tail_j ]; _ } as outer) ->
        Ok (outer, head, tail_j)
    | _ -> Error "blocked kernel does not have the head/tail shape"
  in
  let* i_loop =
    match tail_j.body with
    | [ Stmt.Loop i_loop ] -> Ok i_loop
    | _ -> Error "tail column loop is not a perfect nest"
  in
  (* Facts valid inside the tail nest: positive parameters plus the K
     and J loop bounds, under which the strip loop's MIN bound loses its
     [I - 1] arm in the rectangular region. *)
  let base_ctx =
    let ctx = Symbolic.assume_pos Symbolic.empty block_size_var in
    List.fold_left Symbolic.assume_pos ctx
      (Ir_util.symbolic_params [ result ])
  in
  let tail_ctx = Symbolic.with_loops base_ctx [ outer; tail_j ] in
  let* { result = regions; steps = tsteps } =
    block_trapezoid ~ctx:tail_ctx ~factor i_loop
  in
  List.iter (fun (st : trace_step) -> record st.name st.detail st.after) tsteps;
  let full =
    Stmt.Loop { outer with body = [ head; Stmt.Loop { tail_j with body = regions } ] }
  in
  let full, nrep = scalar_replace_all ~ctx:base_ctx [ full ] in
  let* full =
    match full with [ s ] -> Ok s | _ -> Error "scalar replacement changed arity"
  in
  record "scalar-replacement"
    (Printf.sprintf "%d innermost loop(s) register-promoted" nrep)
    [ full ];
  record "result"
    (Printf.sprintf "register-blocked kernel (the paper's %s)" label)
    [ full ];
  Ok { result = full; steps = List.rev !steps }

let block_lu_opt ~block_size_var ~factor (l : Stmt.loop) =
  Obs.span ~cat:"driver" "blocker.block_lu_opt"
    ~args:[ ("loop", Obs.Str l.index); ("factor", Obs.Int factor) ]
  @@ fun () ->
  let* traced = block_lu ~block_size_var l in
  opt_tail ~block_size_var ~factor ~label:"2+" traced

let block_lu_pivot_opt ~block_size_var ~factor (l : Stmt.loop) =
  Obs.span ~cat:"driver" "blocker.block_lu_pivot_opt"
    ~args:[ ("loop", Obs.Str l.index); ("factor", Obs.Int factor) ]
  @@ fun () ->
  let* traced = block_lu_pivot ~block_size_var l in
  opt_tail ~block_size_var ~factor ~label:"1+" traced

(* ------------------------------------------------------------------ *)
(* Block-size choice                                                   *)
(* ------------------------------------------------------------------ *)

let choose_block_size ~(machine : Arch.t) ?(sweep = []) () =
  match sweep with
  | [] ->
      let b = Arch.block_size machine () in
      Obs.decision ~transform:"block-size" ~target:machine.Arch.name
        ~applied:true
        ~reason:"heuristic: three working-set blocks in a third of the cache"
        ~evidence:[ ("block", Obs.Int b) ]
        ();
      b
  | sweep ->
      (* Measured evidence beats the footprint heuristic: take the block
         size with the fewest simulated L1 misses (ties to the larger
         block — fewer strip loops for the same misses). *)
      let best =
        List.fold_left
          (fun (bb, bm) (b, m) ->
            if m < bm || (m = bm && b > bb) then (b, m) else (bb, bm))
          (List.hd sweep) (List.tl sweep)
      in
      let heuristic = Arch.block_size machine () in
      Obs.decision ~transform:"block-size" ~target:machine.Arch.name
        ~applied:true
        ~reason:
          (Printf.sprintf "profile sweep over %d block sizes cites %d misses"
             (List.length sweep) (snd best))
        ~evidence:
          (("block", Obs.Int (fst best))
          :: ("heuristic_block", Obs.Int heuristic)
          :: List.map
               (fun (b, m) -> (Printf.sprintf "misses_b%d" b, Obs.Int m))
               sweep)
        ();
      fst best
