let is_innermost (l : Stmt.loop) =
  List.for_all
    (fun s -> match s with Stmt.Loop _ -> false | _ -> true)
    l.body

(* Distinct (array, subscripts) of rank >= 1 accessed in the loop, with
   their kinds. *)
let grouped_accesses (l : Stmt.loop) =
  let accs = Ir_util.accesses [ Stmt.Loop l ] in
  let groups : (string * Expr.t list, bool ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (a : Ir_util.access) ->
      if a.subs <> [] && a.space = Ir_util.Float_data then begin
        let key = (a.array, a.subs) in
        let known = Hashtbl.mem groups key in
        let written =
          if known then Hashtbl.find groups key else ref false
        in
        if a.kind = Ir_util.Write then written := true;
        if not known then begin
          Hashtbl.add groups key written;
          order := key :: !order
        end
      end)
    accs;
  List.rev_map (fun key -> (key, !(Hashtbl.find groups key))) !order

let invariant (l : Stmt.loop) subs =
  List.for_all (fun e -> not (Expr.mentions l.index e)) subs

let safe ~ctxs (l : Stmt.loop) (array, subs) =
  (* Every other access to the same array must be provably disjoint from
     this element over the loop's execution — in every case of the
     (possibly disjunctive) context. *)
  let within = [ l ] in
  let ctx0 = List.hd ctxs in
  match Section.of_ref ~ctx:ctx0 ~within array subs with
  | None -> false
  | Some mine ->
      List.for_all
        (fun (a : Ir_util.access) ->
          if not (String.equal a.array array) then true
          else if a.subs = [] then true
          else if
            List.length a.subs = List.length subs
            && List.for_all2 Expr.equal a.subs subs
          then true
          else
            match Section.of_ref ~ctx:ctx0 ~within array a.subs with
            | Some theirs ->
                List.for_all (fun ctx -> Section.disjoint ctx mine theirs) ctxs
            | None -> false)
        (Ir_util.accesses [ Stmt.Loop l ])

let ctxs_of ~ctx = function Some (_ :: _ as cs) -> cs | _ -> [ ctx ]

let replaceable ?cases ~ctx l =
  let ctxs = ctxs_of ~ctx cases in
  grouped_accesses l
  |> List.filter_map (fun ((array, subs), _written) ->
         if invariant l subs && safe ~ctxs l (array, subs) then
           Some (array, subs)
         else None)

let rec replace_in_fexpr array subs temp (fe : Stmt.fexpr) =
  match fe with
  | Stmt.Ref (a, s)
    when String.equal a array
         && List.length s = List.length subs
         && List.for_all2 Expr.equal s subs ->
      Stmt.Fvar temp
  | Stmt.Fconst _ | Stmt.Fvar _ | Stmt.Ref _ | Stmt.Of_int _ -> fe
  | Stmt.Fbin (op, x, y) ->
      Stmt.Fbin (op, replace_in_fexpr array subs temp x, replace_in_fexpr array subs temp y)
  | Stmt.Fneg x -> Stmt.Fneg (replace_in_fexpr array subs temp x)
  | Stmt.Fcall (f, args) ->
      Stmt.Fcall (f, List.map (replace_in_fexpr array subs temp) args)

let rec replace_in_cond array subs temp (c : Stmt.cond) =
  match c with
  | Stmt.Fcmp (r, x, y) ->
      Stmt.Fcmp (r, replace_in_fexpr array subs temp x, replace_in_fexpr array subs temp y)
  | Stmt.Icmp _ -> c
  | Stmt.Not x -> Stmt.Not (replace_in_cond array subs temp x)
  | Stmt.And (x, y) ->
      Stmt.And (replace_in_cond array subs temp x, replace_in_cond array subs temp y)
  | Stmt.Or (x, y) ->
      Stmt.Or (replace_in_cond array subs temp x, replace_in_cond array subs temp y)

let rec replace_in_stmt array subs temp (s : Stmt.t) =
  match s with
  | Stmt.Assign (a, lhs_subs, rhs) ->
      let rhs = replace_in_fexpr array subs temp rhs in
      if
        String.equal a array
        && List.length lhs_subs = List.length subs
        && List.for_all2 Expr.equal lhs_subs subs
      then Stmt.Assign (temp, [], rhs)
      else Stmt.Assign (a, lhs_subs, rhs)
  | Stmt.Iassign _ -> s
  | Stmt.If (c, t, e) ->
      Stmt.If
        ( replace_in_cond array subs temp c,
          List.map (replace_in_stmt array subs temp) t,
          List.map (replace_in_stmt array subs temp) e )
  | Stmt.Loop l ->
      Stmt.Loop { l with body = List.map (replace_in_stmt array subs temp) l.body }

let apply ?cases ~ctx (l : Stmt.loop) =
  if not (is_innermost l) then Error "scalar replacement expects an innermost loop"
  else begin
    let ctxs = ctxs_of ~ctx cases in
    let targets =
      grouped_accesses l
      |> List.filter (fun ((_, subs), _) -> invariant l subs)
      |> List.filter (fun (key, _) -> safe ~ctxs l key)
    in
    let used = ref (Ir_util.index_vars [ Stmt.Loop l ]
                    @ List.map (fun (n, _, _) -> n) (Ir_util.arrays_of [ Stmt.Loop l ])) in
    let loads = ref [] and stores = ref [] in
    let body = ref l.body in
    List.iter
      (fun ((array, subs), written) ->
        let temp = Ir_util.fresh ~used:!used ("T" ^ array) in
        used := temp :: !used;
        loads := Stmt.Assign (temp, [], Stmt.Ref (array, subs)) :: !loads;
        if written then
          stores := Stmt.Assign (array, subs, Stmt.Fvar temp) :: !stores;
        body := List.map (replace_in_stmt array subs temp) !body)
      targets;
    Ok (List.rev !loads @ [ Stmt.Loop { l with body = !body } ] @ List.rev !stores)
  end
