let check_partition n groups =
  let covered = List.concat groups in
  let sorted = List.sort Int.compare covered in
  if sorted <> List.init n (fun i -> i) then
    Error "groups must partition the body statements"
  else Ok ()

let build_loops (l : Stmt.loop) groups =
  let body = Array.of_list l.body in
  List.map
    (fun group ->
      let stmts = List.map (fun i -> body.(i)) (List.sort Int.compare group) in
      Stmt.Loop { l with body = stmts })
    groups

let legality ~edges ~groups =
  (* Map statement -> group position. *)
  let pos = Hashtbl.create 8 in
  List.iteri (fun gi group -> List.iter (fun s -> Hashtbl.replace pos s gi) group) groups;
  let violation =
    List.find_opt
      (fun (e : Ddg.edge) ->
        let ga = Hashtbl.find pos e.from_stmt and gb = Hashtbl.find pos e.to_stmt in
        ga > gb)
      edges
  in
  match violation with
  | None -> Ok ()
  | Some e ->
      Error
        (Printf.sprintf
           "dependence from statement %d to statement %d would be reversed: %s"
           e.from_stmt e.to_stmt
           (Dependence.to_string e.dep))

let groups_to_string groups =
  String.concat " | "
    (List.map (fun g -> String.concat "," (List.map string_of_int g)) groups)

let apply_with_override ~ctx ~ignore_dep (l : Stmt.loop) ~groups =
  let ( let* ) = Result.bind in
  let n = List.length l.body in
  let* () = check_partition n groups in
  let g = Ddg.build ~ctx l in
  let edges = List.filter (fun (e : Ddg.edge) -> not (ignore_dep e.dep)) g.edges in
  let ignored = List.length g.edges - List.length edges in
  (* A dependence between statements of the same group never constrains the
     split; between groups, the direction must follow group order.  Edges
     within an SCC that spans two groups show up as one forward and one
     backward edge, so the backward-edge check below subsumes the SCC
     condition. *)
  Obs.decide ~transform:"distribute" ~target:l.index
    ~evidence:
      [
        ("groups", Obs.Str (groups_to_string groups));
        ("edges", Obs.Int (List.length g.edges));
        ("ignored_deps", Obs.Int ignored);
      ]
  @@
  let* () = legality ~edges ~groups in
  Ok (build_loops l groups)

let apply ~ctx l ~groups = apply_with_override ~ctx ~ignore_dep:(fun _ -> false) l ~groups

let auto ~ctx (l : Stmt.loop) =
  let g = Ddg.build ~ctx l in
  Obs.decide ~transform:"distribute-auto" ~target:l.index
    ~evidence:
      [
        ("stmts", Obs.Int g.n);
        ("edges", Obs.Int (List.length g.edges));
        ("sccs", Obs.Int (List.length g.sccs));
      ]
  @@
  match Ddg.distribution_order g with
  | None -> Error "the loop body is a single recurrence: distribution impossible"
  | Some groups -> Ok (build_loops l groups)
