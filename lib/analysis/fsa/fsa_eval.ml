exception Unsupported of string

let unsup fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type qvar = { qv : string; qlo : Affine.t; qhi : Affine.t }
type upd = { uqs : qvar list; upat : Affine.t list; uval : Fsa_term.t }

type state = {
  ints : (string * Affine.t) list;
  ipoison : string list;
  floats : (string * Fsa_term.t) list;
  arrays : (string * upd list) list;
}

let empty = { ints = []; ipoison = []; floats = []; arrays = [] }

(* A frame per enclosing symbolic-trip loop being folded: the REAL
   scalars its body writes, and the float bindings at loop entry.  A
   read of such a scalar before this iteration writes it would observe
   the previous iteration's value — a recurrence the quantified fold
   cannot represent. *)
type frame = { fwritten : string list; fsnapshot : (string * Fsa_term.t) list }

type env = {
  ctx : Symbolic.t;
  log : (string * Affine.t list * Symbolic.t) list ref;
      (** every array read: location and the context it was read under *)
  counter : int ref;
  frames : frame list;
}

let fresh env base =
  incr env.counter;
  Printf.sprintf "%s.%d" base !(env.counter)

let max_updates = 32
let max_term_size = 4000
let max_unroll = 15

let subst_aff bindings a =
  List.fold_left (fun a (v, by) -> Affine.subst v by a) a bindings

(* ---- integer expressions -------------------------------------------- *)

let affine_of st e =
  match Affine.of_expr e with
  | None -> unsup "non-affine integer expression %s" (Expr.to_string e)
  | Some a ->
      List.iter
        (fun v ->
          if List.mem v st.ipoison then
            unsup "read of integer scalar %s with unknown value" v)
        (Affine.vars a);
      subst_aff st.ints a

let decide_atom ctx = function
  | Fsa_term.Aeq (a, b) ->
      if Symbolic.prove_eq ctx a b then Some true
      else if Symbolic.prove_lt ctx a b || Symbolic.prove_gt ctx a b then
        Some false
      else None
  | Fsa_term.Ale (a, b) ->
      if Symbolic.prove_le ctx a b then Some true
      else if Symbolic.prove_gt ctx a b then Some false
      else None

let decide_conj ctx conds =
  let rec go unknown = function
    | [] -> if unknown = [] then `True else `Residual (List.rev unknown)
    | a :: rest -> (
        match decide_atom ctx a with
        | Some true -> go unknown rest
        | Some false -> `False
        | None -> go (a :: unknown) rest)
  in
  go [] conds

(* ---- quantified-store lookup ---------------------------------------- *)

(* Solve [upat (uqs) = probe] for the quantified variables: repeatedly
   pick a dimension where exactly one unsolved variable occurs with
   coefficient +-1 and invert it. *)
let solve_qvars (u : upd) probe =
  let pat = Array.of_list u.upat and pr = Array.of_list probe in
  let n = Array.length pat in
  let apply sol a = subst_aff sol a in
  let rec go sol used pending =
    match pending with
    | [] -> Some (sol, used)
    | _ -> (
        let candidate =
          List.find_map
            (fun (q : qvar) ->
              let rec dims d =
                if d >= n then None
                else if List.mem d used then dims (d + 1)
                else
                  let pd = apply sol pat.(d) in
                  let c = Affine.coeff pd q.qv in
                  if
                    (c = 1 || c = -1)
                    && List.for_all
                         (fun (q' : qvar) ->
                           String.equal q'.qv q.qv
                           || Affine.coeff pd q'.qv = 0)
                         pending
                  then Some (q, d, pd, c)
                  else dims (d + 1)
              in
              dims 0)
            pending
        in
        match candidate with
        | None -> None
        | Some (q, d, pd, c) ->
            (* pd = c*q + r and probe_d = pd  =>  q = c*(probe_d - r). *)
            let r = Affine.sub pd (Affine.scale c (Affine.var q.qv)) in
            let qval = Affine.scale c (Affine.sub pr.(d) r) in
            go
              ((q.qv, qval) :: sol)
              (d :: used)
              (List.filter
                 (fun (q' : qvar) -> not (String.equal q'.qv q.qv))
                 pending))
  in
  if n <> Array.length pr then unsup "array rank mismatch in lookup";
  go [] [] u.uqs

(* The condition under which update [u] covers [probe], and the covered
   value. *)
let resolve_one (u : upd) probe =
  match solve_qvars u probe with
  | None -> unsup "quantified store pattern cannot be inverted"
  | Some (sol, used) ->
      let apply a = subst_aff sol a in
      let eqs =
        List.concat
          (List.mapi
             (fun d (p, pb) ->
               if List.mem d used then []
               else
                 let p' = apply p in
                 if Affine.equal p' pb then [] else [ Fsa_term.Aeq (p', pb) ])
             (List.combine u.upat probe))
      in
      let ranges =
        List.concat_map
          (fun (q : qvar) ->
            let qval = List.assoc q.qv sol in
            [
              Fsa_term.Ale (apply q.qlo, qval);
              Fsa_term.Ale (qval, apply q.qhi);
            ])
          u.uqs
      in
      (eqs @ ranges, Fsa_term.subst sol u.uval)

let read_env env st arr probe =
  env.log := (arr, probe, env.ctx) :: !(env.log);
  let upds = Option.value ~default:[] (List.assoc_opt arr st.arrays) in
  let rec go = function
    | [] -> Fsa_term.Init (arr, probe)
    | u :: rest -> (
        let conds, value = resolve_one u probe in
        match decide_conj env.ctx conds with
        | `True -> value
        | `False -> go rest
        | `Residual atoms -> Fsa_term.Ite (atoms, value, go rest))
  in
  go upds

(* ---- scalars --------------------------------------------------------- *)

let written_since snapshot name floats =
  let rec go l =
    if l == snapshot then false
    else
      match l with
      | [] -> false
      | (n, _) :: tl -> String.equal n name || go tl
  in
  go floats

let scalar_read env st s =
  List.iter
    (fun fr ->
      if List.mem s fr.fwritten && not (written_since fr.fsnapshot s st.floats)
      then unsup "scalar %s carries a value across loop iterations" s)
    env.frames;
  match List.assoc_opt s st.floats with
  | Some t -> t
  | None -> Fsa_term.Sinit s

let rec written_scalars stmts =
  List.concat_map
    (function
      | Stmt.Assign (x, [], _) -> [ `F x ]
      | Stmt.Assign _ -> []
      | Stmt.Iassign (x, [], _) -> [ `I x ]
      | Stmt.Iassign _ -> []
      | Stmt.If (_, t, e) -> written_scalars t @ written_scalars e
      | Stmt.Loop l -> written_scalars l.body)
    stmts

(* ---- evaluation ------------------------------------------------------ *)

let push_upd st a (u : upd) =
  if Fsa_term.size u.uval > max_term_size then unsup "symbolic value too large";
  let old = Option.value ~default:[] (List.assoc_opt a st.arrays) in
  if List.length old >= max_updates then unsup "too many updates on %s" a;
  { st with arrays = (a, u :: old) :: List.remove_assoc a st.arrays }

let rec feval env st = function
  | Stmt.Fconst c -> Fsa_term.Const c
  | Stmt.Fvar s -> scalar_read env st s
  | Stmt.Ref (a, subs) -> read_env env st a (List.map (affine_of st) subs)
  | Stmt.Fbin (op, a, b) -> Fsa_term.Bin (op, feval env st a, feval env st b)
  | Stmt.Fneg a -> Fsa_term.Neg (feval env st a)
  | Stmt.Fcall (f, args) -> Fsa_term.Call (f, List.map (feval env st) args)
  | Stmt.Of_int e -> Fsa_term.Of_int (affine_of st e)

let rec decide_cond env st = function
  | Stmt.Icmp (rel, e1, e2) -> (
      let a = affine_of st e1 and b = affine_of st e2 in
      let one = Affine.const 1 in
      match rel with
      | Stmt.Eq -> decide_atom env.ctx (Fsa_term.Aeq (a, b))
      | Stmt.Ne -> Option.map not (decide_atom env.ctx (Fsa_term.Aeq (a, b)))
      | Stmt.Le -> decide_atom env.ctx (Fsa_term.Ale (a, b))
      | Stmt.Lt -> decide_atom env.ctx (Fsa_term.Ale (a, Affine.sub b one))
      | Stmt.Ge -> decide_atom env.ctx (Fsa_term.Ale (b, a))
      | Stmt.Gt -> decide_atom env.ctx (Fsa_term.Ale (b, Affine.sub a one)))
  | Stmt.Fcmp _ -> None
  | Stmt.Not c -> Option.map not (decide_cond env st c)
  | Stmt.And (a, b) -> (
      match (decide_cond env st a, decide_cond env st b) with
      | Some false, _ | _, Some false -> Some false
      | Some true, Some true -> Some true
      | _ -> None)
  | Stmt.Or (a, b) -> (
      match (decide_cond env st a, decide_cond env st b) with
      | Some true, _ | _, Some true -> Some true
      | Some false, Some false -> Some false
      | _ -> None)

let rec eval env st (s : Stmt.t) =
  match s with
  | Stmt.Iassign (v, [], e) -> (
      match affine_of st e with
      | a ->
          {
            st with
            ints = (v, a) :: st.ints;
            ipoison = List.filter (fun x -> not (String.equal x v)) st.ipoison;
          }
      | exception Unsupported _ -> { st with ipoison = v :: st.ipoison })
  | Stmt.Iassign (_, _ :: _, _) -> unsup "integer array store"
  | Stmt.Assign (x, [], rhs) ->
      let t = feval env st rhs in
      if Fsa_term.size t > max_term_size then unsup "symbolic value too large";
      { st with floats = (x, t) :: st.floats }
  | Stmt.Assign (a, subs, rhs) ->
      let pat = List.map (affine_of st) subs in
      let t = feval env st rhs in
      push_upd st a { uqs = []; upat = pat; uval = t }
  | Stmt.If (c, th, el) -> (
      match decide_cond env st c with
      | Some true -> eval_list env st th
      | Some false -> eval_list env st el
      | None -> unsup "branch condition cannot be decided symbolically")
  | Stmt.Loop l -> eval_loop env st l

and eval_list env st stmts = List.fold_left (eval env) st stmts

and eval_loop env st (l : Stmt.loop) =
  (match Expr.simplify l.step with
  | Expr.Int 1 -> ()
  | _ -> unsup "non-unit loop step");
  List.iter
    (fun v ->
      if List.mem v st.ipoison then
        unsup "loop bound reads integer scalar %s with unknown value" v)
    (Expr.free_vars l.lo @ Expr.free_vars l.hi);
  let ints_expr = List.map (fun (v, a) -> (v, Affine.to_expr a)) st.ints in
  let lo_e = Expr.subst ints_expr l.lo and hi_e = Expr.subst ints_expr l.hi in
  let const_trip =
    match Affine.of_expr (Expr.simplify (Expr.sub hi_e lo_e)) with
    | Some d -> Affine.is_const d
    | None -> None
  in
  match const_trip with
  | Some c when c < 0 -> st
  | Some c when c <= max_unroll ->
      (* Exact unrolling: bitwise-faithful, no parallelism proof needed. *)
      let rec go k st =
        if k > c then st
        else
          let iv = Expr.simplify (Expr.add lo_e (Expr.int k)) in
          let body = Stmt.subst_block [ (l.index, iv) ] l.body in
          go (k + 1) (eval_list env st body)
      in
      go 0 st
  | _ -> fold_loop env st l lo_e hi_e

(* Fold a symbolic-trip loop into quantified updates.  Sound only when
   every (read, write) and (write, write) pair on the same array is
   provably disjoint across distinct iterations — checked below — so
   every iteration's reads may be resolved against the pre-loop store. *)
and fold_loop env st (l : Stmt.loop) lo_e hi_e =
  let lo_a =
    match Affine.of_expr lo_e with
    | Some a -> a
    | None -> unsup "loop lower bound %s is not affine" (Expr.to_string lo_e)
  and hi_a =
    match Affine.of_expr hi_e with
    | Some a -> a
    | None -> unsup "loop upper bound %s is not affine" (Expr.to_string hi_e)
  in
  let trip_atom = Fsa_term.Ale (lo_a, hi_a) in
  if decide_atom env.ctx trip_atom = Some false then st
  else begin
    let ws = written_scalars l.body in
    (match List.filter_map (function `I x -> Some x | `F _ -> None) ws with
    | x :: _ -> unsup "integer scalar %s assigned in a symbolic-trip loop" x
    | [] -> ());
    let wf = List.filter_map (function `F x -> Some x | `I _ -> None) ws in
    let q = fresh env l.index in
    let body = Stmt.subst_block [ (l.index, Expr.var q) ] l.body in
    let ctx_body =
      Symbolic.with_loops env.ctx
        [ { l with index = q; lo = lo_e; hi = hi_e; body = [] } ]
    in
    let log0 = !(env.log) in
    let env_body =
      {
        env with
        ctx = ctx_body;
        frames = { fwritten = wf; fsnapshot = st.floats } :: env.frames;
      }
    in
    let st1 = eval_list env_body st body in
    let rec delta_of cur base =
      if cur == base then []
      else match cur with [] -> [] | x :: tl -> x :: delta_of tl base
    in
    let reads = delta_of !(env.log) log0 in
    (* [chk] proves location [xsubs] (an iteration-[q] read or write,
       valid under [xctx]) distinct from every instance of write [w] at a
       different iteration [th]: some dimension differs either as an
       exact multiple of [q - th], or as an always-nonzero gap. *)
    let chk (xsubs, xctx) (w : upd) =
      let th = fresh env l.index in
      let ren =
        (q, Affine.var th)
        :: List.map
             (fun (uq : qvar) -> (uq.qv, Affine.var (fresh env uq.qv)))
             w.uqs
      in
      let sub_a a = subst_aff ren a in
      let ctx2 = Symbolic.assume_ge xctx (Affine.var th) lo_a in
      let ctx2 = Symbolic.assume_le ctx2 (Affine.var th) hi_a in
      let ctx2 =
        List.fold_left
          (fun ctx (uq : qvar) ->
            let v = sub_a (Affine.var uq.qv) in
            let ctx = Symbolic.assume_ge ctx v (sub_a uq.qlo) in
            Symbolic.assume_le ctx v (sub_a uq.qhi))
          ctx2 w.uqs
      in
      if List.length xsubs <> List.length w.upat then
        unsup "array rank mismatch across loop iterations";
      let ok =
        List.exists2
          (fun xd wd ->
            let d = Affine.sub xd (sub_a wd) in
            let ci = Affine.coeff d q and cj = Affine.coeff d th in
            (ci <> 0 && cj = -ci
            && Affine.constant d = 0
            && List.for_all
                 (fun v -> String.equal v q || String.equal v th)
                 (Affine.vars d))
            || Symbolic.prove_nonneg ctx2 (Affine.sub d (Affine.const 1))
            || Symbolic.prove_nonneg ctx2
                 (Affine.sub (Affine.neg d) (Affine.const 1)))
          xsubs w.upat
      in
      if not ok then
        unsup "cannot separate iterations of %s: possible cross-iteration \
               aliasing"
          l.index
    in
    let add_qfacts ctx qs =
      List.fold_left
        (fun ctx (qv : qvar) ->
          let v = Affine.var qv.qv in
          let ctx = Symbolic.assume_ge ctx v qv.qlo in
          Symbolic.assume_le ctx v qv.qhi)
        ctx qs
    in
    let arr_deltas =
      List.filter_map
        (fun (a, upds) ->
          let base =
            Option.value ~default:[] (List.assoc_opt a st.arrays)
          in
          match delta_of upds base with [] -> None | d -> Some (a, d, base))
        st1.arrays
    in
    List.iter
      (fun (a, dws, _) ->
        List.iter
          (fun (w : upd) ->
            List.iter
              (fun (ra, rsubs, rctx) ->
                if String.equal ra a then chk (rsubs, rctx) w)
              reads;
            List.iter
              (fun (w2 : upd) ->
                chk (w2.upat, add_qfacts ctx_body w2.uqs) w)
              dws)
          dws)
      arr_deltas;
    let qrec = { qv = q; qlo = lo_a; qhi = hi_a } in
    let st2 =
      List.fold_left
        (fun stacc (a, dws, base) ->
          let wrapped =
            List.map (fun w -> { w with uqs = qrec :: w.uqs }) dws
          in
          if List.length wrapped + List.length base > max_updates then
            unsup "too many updates on %s" a;
          {
            stacc with
            arrays = (a, wrapped @ base) :: List.remove_assoc a stacc.arrays;
          })
        st arr_deltas
    in
    (* Final scalar values: the last iteration's, guarded by the trip
       count when the loop may be empty. *)
    let fdelta = delta_of st1.floats st.floats in
    let names = List.sort_uniq String.compare (List.map fst fdelta) in
    List.fold_left
      (fun stacc name ->
        let t = List.assoc name fdelta in
        let t_hi = Fsa_term.subst [ (q, hi_a) ] t in
        let t' =
          match decide_atom env.ctx trip_atom with
          | Some true -> t_hi
          | _ ->
              let prev =
                match List.assoc_opt name st.floats with
                | Some p -> p
                | None -> Fsa_term.Sinit name
              in
              Fsa_term.Ite ([ trip_atom ], t_hi, prev)
        in
        if Fsa_term.size t' > max_term_size then
          unsup "symbolic value too large";
        { stacc with floats = (name, t') :: stacc.floats })
      st2 names
  end

(* ---- entry points ---------------------------------------------------- *)

let eval_block ~ctx stmts =
  let env = { ctx; log = ref []; counter = ref 0; frames = [] } in
  eval_list env empty stmts

let read ~ctx st arr probe =
  let env = { ctx; log = ref []; counter = ref 0; frames = [] } in
  read_env env st arr probe

let scalar st s =
  match List.assoc_opt s st.floats with
  | Some t -> t
  | None -> Fsa_term.Sinit s
