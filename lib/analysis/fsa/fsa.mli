(** Fractal symbolic analysis (FSA).

    Decides whether two program fragments are equivalent — in
    particular whether two statement instances {e commute} — by mapping
    both to canonical symbolic states ({!Fsa_eval}) and comparing the
    states under a fact context.  When a pair is too complex to compare
    directly, the {e fractal} step applies the same semantics-preserving
    simplification to both sides (splitting blocks, abstracting a loop
    to a generic iteration) and recurses, bounded by fuel.  Every
    verdict carries a proof tree; [Unknown] is always sound. *)

type verdict = Equivalent | Unknown of string

type proof = {
  rule : string;  (** "direct", "split-left", "generic-iteration", ... *)
  goal : string;
  verdict : verdict;
  detail : string;
  children : proof list;
}

type result = { verdict : verdict; proof : proof; cases : int }
(** [cases] counts the feasible truth assignments the direct comparison
    checked (summed over subgoals). *)

val equiv_states :
  ctx:Symbolic.t ->
  ?ignore_scalars:string list ->
  Fsa_eval.state ->
  Fsa_eval.state ->
  (int, string) Stdlib.result
(** Compare two symbolic states observably: arrays at fully generic
    probe subscripts, REAL scalars (except [ignore_scalars]) and
    integer scalars.  Undecided atoms are case-split (with provably
    infeasible cases pruned); [Ok n] means the states agree in all [n]
    feasible cases. *)

val equivalent :
  ?ignore_scalars:string list ->
  ctx:Symbolic.t ->
  Stmt.t list ->
  Stmt.t list ->
  result
(** Direct (non-recursive) equivalence of two fragments. *)

val commute :
  ?fuel:int ->
  ?ignore_scalars:string list ->
  ctx:Symbolic.t ->
  Stmt.t list ->
  Stmt.t list ->
  result
(** [commute ~ctx p q] asks whether [p; q] and [q; p] are equivalent,
    trying direct evaluation first and then the fractal rules with
    [fuel] (default 8) bounding the recursion.  Exhausted fuel yields
    [Unknown], never [Equivalent].  The verdict is recorded as an
    [Obs] decision ([transform = "fsa"]) with the rendered proof tree
    as evidence. *)

val proof_to_lines : proof -> string list
(** Indented one-line-per-node rendering of a proof tree. *)

type interval = { ilo : Affine.t option; ihi : Affine.t option }

val int_ranges : ctx:Symbolic.t -> Stmt.t list -> (string * interval) list
(** Forward interval analysis of the integer scalars a fragment
    assigns: branches and loops hull, loop bodies are iterated to a
    (cheap) fixpoint, and unknowns stay unknown.  Used to recover facts
    such as "after the pivot search, [IMAX] lies in [[K, N]]". *)

val assigned_scalars : Stmt.t list -> string list
(** Every scalar (REAL or INTEGER) assigned anywhere in the fragment. *)

val exposed_reads : Stmt.t list -> string list
(** Scalars the fragment may read before it definitely writes them
    (upward-exposed uses; conservative). *)

val stmt_covered_scalars : Stmt.t list -> string list
(** REAL scalars written in the fragment whose every read is covered by
    a write within its own top-level statement — statement-local
    temporaries (like the swap temp) that are dead across statements
    and may be ignored when comparing states. *)
