type atom = Ale of Affine.t * Affine.t | Aeq of Affine.t * Affine.t

let atom_key = function
  | Ale (a, b) -> "le:" ^ Affine.to_string (Affine.sub b a)
  | Aeq (a, b) ->
      let d = Affine.sub a b in
      let s1 = Affine.to_string d and s2 = Affine.to_string (Affine.neg d) in
      "eq:" ^ if String.compare s1 s2 <= 0 then s1 else s2

let subst_aff bindings a =
  List.fold_left (fun a (v, by) -> Affine.subst v by a) a bindings

let atom_subst bindings = function
  | Ale (a, b) -> Ale (subst_aff bindings a, subst_aff bindings b)
  | Aeq (a, b) -> Aeq (subst_aff bindings a, subst_aff bindings b)

let atom_to_string = function
  | Ale (a, b) -> Affine.to_string a ^ " <= " ^ Affine.to_string b
  | Aeq (a, b) -> Affine.to_string a ^ " = " ^ Affine.to_string b

type t =
  | Init of string * Affine.t list
  | Sinit of string
  | Const of float
  | Neg of t
  | Bin of Stmt.fbinop * t * t
  | Call of string * t list
  | Of_int of Affine.t
  | Ite of atom list * t * t

let rec subst bindings = function
  | Init (a, subs) -> Init (a, List.map (subst_aff bindings) subs)
  | Sinit _ | Const _ as t -> t
  | Neg t -> Neg (subst bindings t)
  | Bin (op, a, b) -> Bin (op, subst bindings a, subst bindings b)
  | Call (f, args) -> Call (f, List.map (subst bindings) args)
  | Of_int a -> Of_int (subst_aff bindings a)
  | Ite (conds, t1, t2) ->
      Ite (List.map (atom_subst bindings) conds, subst bindings t1, subst bindings t2)

let atoms t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add a =
    let k = atom_key a in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      out := a :: !out
    end
  in
  let rec go = function
    | Init _ | Sinit _ | Const _ | Of_int _ -> ()
    | Neg t -> go t
    | Bin (_, a, b) -> go a; go b
    | Call (_, args) -> List.iter go args
    | Ite (conds, t1, t2) ->
        List.iter add conds;
        go t1;
        go t2
  in
  go t;
  List.rev !out

let rec size = function
  | Init _ | Sinit _ | Const _ | Of_int _ -> 1
  | Neg t -> 1 + size t
  | Bin (_, a, b) -> 1 + size a + size b
  | Call (_, args) -> List.fold_left (fun n t -> n + size t) 1 args
  | Ite (conds, t1, t2) -> 1 + List.length conds + size t1 + size t2

let rec resolve truth = function
  | Init _ | Sinit _ | Const _ | Of_int _ as t -> t
  | Neg t -> Neg (resolve truth t)
  | Bin (op, a, b) -> Bin (op, resolve truth a, resolve truth b)
  | Call (f, args) -> Call (f, List.map (resolve truth) args)
  | Ite (conds, t1, t2) ->
      if List.for_all (fun a -> truth (atom_key a)) conds then resolve truth t1
      else resolve truth t2

let rec equal_under ctx a b =
  match a, b with
  | Init (x, xs), Init (y, ys) ->
      String.equal x y
      && List.length xs = List.length ys
      && List.for_all2 (Symbolic.prove_eq ctx) xs ys
  | Sinit x, Sinit y -> String.equal x y
  | Const x, Const y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Neg x, Neg y -> equal_under ctx x y
  | Bin (op1, a1, b1), Bin (op2, a2, b2) ->
      op1 = op2 && equal_under ctx a1 a2 && equal_under ctx b1 b2
  | Call (f, xs), Call (g, ys) ->
      String.equal f g
      && List.length xs = List.length ys
      && List.for_all2 (equal_under ctx) xs ys
  | Of_int x, Of_int y -> Symbolic.prove_eq ctx x y
  | Ite (c1, a1, b1), Ite (c2, a2, b2) ->
      List.length c1 = List.length c2
      && List.for_all2 (fun x y -> String.equal (atom_key x) (atom_key y)) c1 c2
      && equal_under ctx a1 a2 && equal_under ctx b1 b2
  | _ -> false

let op_str = function
  | Stmt.FAdd -> "+"
  | Stmt.FSub -> "-"
  | Stmt.FMul -> "*"
  | Stmt.FDiv -> "/"

let rec to_string = function
  | Init (a, subs) ->
      Printf.sprintf "%s0(%s)" a
        (String.concat ", " (List.map Affine.to_string subs))
  | Sinit x -> x ^ "0"
  | Const c -> Printf.sprintf "%g" c
  | Neg t -> "-" ^ to_string t
  | Bin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (to_string a) (op_str op) (to_string b)
  | Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map to_string args))
  | Of_int a -> "real(" ^ Affine.to_string a ^ ")"
  | Ite (conds, t1, t2) ->
      Printf.sprintf "[%s ? %s : %s]"
        (String.concat " & " (List.map atom_to_string conds))
        (to_string t1) (to_string t2)
