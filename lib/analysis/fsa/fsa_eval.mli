(** Symbolic evaluation of IR fragments to canonical symbolic states.

    The evaluator maps a fragment (straight-line code, guarded updates,
    bounded loops) to a {!state}: integer scalars as affine forms, REAL
    scalars as {!Fsa_term.t} values, and arrays as ordered update lists
    over the initial store.  A loop whose trip count is a small known
    constant is unrolled exactly; a loop with symbolic bounds is folded
    into a {e quantified} update (one pattern per written location,
    universally quantified over the iteration space) — sound only when
    the evaluator can prove the loop free of cross-iteration traffic, so
    the fold performs an explicit read/write and write/write
    disjointness check across distinct iterations and raises
    {!Unsupported} when it cannot.

    [Unsupported] is the evaluator's only escape hatch and is always
    sound: the caller treats it as "no verdict", never as equivalence. *)

exception Unsupported of string

type qvar = { qv : string; qlo : Affine.t; qhi : Affine.t }
(** A universally quantified iteration symbol with its range. *)

type upd = { uqs : qvar list; upat : Affine.t list; uval : Fsa_term.t }
(** One (possibly quantified) array update: for every value of [uqs]
    within range, location [upat] holds [uval].  [uqs = []] is a plain
    point store. *)

type state = {
  ints : (string * Affine.t) list;  (** newest binding first *)
  ipoison : string list;  (** integer scalars with unknown values *)
  floats : (string * Fsa_term.t) list;  (** newest binding first *)
  arrays : (string * upd list) list;  (** update lists, newest first *)
}

val empty : state

val eval_block : ctx:Symbolic.t -> Stmt.t list -> state
(** Evaluate a fragment from the generic initial store.  Raises
    {!Unsupported} on anything outside the symbolic fragment language
    (undecidable branches, non-affine subscripts, loops that are neither
    unrollable nor provably iteration-parallel, integer array stores). *)

val read : ctx:Symbolic.t -> state -> string -> Affine.t list -> Fsa_term.t
(** Resolve an array element through the state's update list; undecided
    pattern matches produce [Ite] terms.  Raises {!Unsupported} when a
    quantified pattern cannot be solved against the probe. *)

val scalar : state -> string -> Fsa_term.t
(** Final value of a REAL scalar ([Sinit] when never written). *)

val decide_atom : Symbolic.t -> Fsa_term.atom -> bool option
(** Three-valued truth of an atom under a context. *)
