type verdict = Equivalent | Unknown of string

type proof = {
  rule : string;
  goal : string;
  verdict : verdict;
  detail : string;
  children : proof list;
}

type result = { verdict : verdict; proof : proof; cases : int }

let max_atoms = 8

module S = Set.Make (String)

(* ---- state equivalence ----------------------------------------------- *)

let probe_names rank = List.init rank (fun i -> Printf.sprintf "%%p%d" (i + 1))

let assume_atom ctx a v =
  match (a, v) with
  | Fsa_term.Ale (x, y), true -> Symbolic.assume_le ctx x y
  | Fsa_term.Ale (x, y), false ->
      Symbolic.assume_ge ctx x (Affine.add y (Affine.const 1))
  | Fsa_term.Aeq (x, y), true ->
      Symbolic.assume_le (Symbolic.assume_ge ctx x y) x y
  | Fsa_term.Aeq _, false -> ctx

let case_desc atoms truth =
  String.concat " & "
    (List.map
       (fun a ->
         let s = Fsa_term.atom_to_string a in
         if Hashtbl.find truth (Fsa_term.atom_key a) then s
         else "not(" ^ s ^ ")")
       atoms)

let equiv_states ~ctx ?(ignore_scalars = []) (st_a : Fsa_eval.state)
    (st_b : Fsa_eval.state) =
  try
    if st_a.ipoison <> [] || st_b.ipoison <> [] then
      Error "an integer scalar has an unknown symbolic value"
    else begin
      let int_names =
        List.sort_uniq String.compare
          (List.map fst st_a.ints @ List.map fst st_b.ints)
      in
      let int_of (st : Fsa_eval.state) v =
        match List.assoc_opt v st.ints with
        | Some a -> a
        | None -> Affine.var v
      in
      match
        List.find_opt
          (fun v -> not (Symbolic.prove_eq ctx (int_of st_a v) (int_of st_b v)))
          int_names
      with
      | Some v -> Error (Printf.sprintf "integer scalar %s differs" v)
      | None ->
          let arr_names =
            List.sort_uniq String.compare
              (List.filter_map
                 (fun (a, us) -> if us = [] then None else Some a)
                 (st_a.arrays @ st_b.arrays))
          in
          let rank_of a =
            let side (st : Fsa_eval.state) =
              match List.assoc_opt a st.arrays with
              | Some (u :: _) -> Some (List.length u.Fsa_eval.upat)
              | _ -> None
            in
            match (side st_a, side st_b) with
            | Some r, _ | None, Some r -> r
            | None, None -> 1
          in
          let pairs =
            List.map
              (fun a ->
                let names = probe_names (rank_of a) in
                let probe = List.map Affine.var names in
                ( Printf.sprintf "%s(%s)" a (String.concat "," names),
                  Fsa_eval.read ~ctx st_a a probe,
                  Fsa_eval.read ~ctx st_b a probe ))
              arr_names
          in
          let float_names =
            List.filter
              (fun s -> not (List.mem s ignore_scalars))
              (List.sort_uniq String.compare
                 (List.map fst st_a.floats @ List.map fst st_b.floats))
          in
          let pairs =
            pairs
            @ List.map
                (fun s -> (s, Fsa_eval.scalar st_a s, Fsa_eval.scalar st_b s))
                float_names
          in
          let atoms =
            let seen = Hashtbl.create 16 in
            List.concat_map
              (fun (_, ta, tb) ->
                List.filter
                  (fun a ->
                    let k = Fsa_term.atom_key a in
                    if Hashtbl.mem seen k then false
                    else begin
                      Hashtbl.add seen k ();
                      true
                    end)
                  (Fsa_term.atoms ta @ Fsa_term.atoms tb))
              pairs
          in
          let n = List.length atoms in
          if n > max_atoms then
            Error
              (Printf.sprintf
                 "%d undecidable conditions exceed the case-split budget" n)
          else begin
            let atoms_arr = Array.of_list atoms in
            let truth = Hashtbl.create 16 in
            let kept = ref 0 in
            let exception Mismatch of string in
            let rec go i ctx' =
              if i = n then begin
                (* Prune truth assignments the context refutes: an
                   atom whose provable value contradicts its assigned
                   one makes the case infeasible.  Check proof and
                   disproof independently — when BOTH are provable the
                   accumulated facts are themselves contradictory
                   (e.g. [%p1 = 1] and [%p1 = 2] assumed together,
                   under which anything proves), which also marks the
                   case infeasible. *)
                let consistent =
                  Array.for_all
                    (fun a ->
                      let holds, fails =
                        match a with
                        | Fsa_term.Ale (x, y) ->
                            ( Symbolic.prove_le ctx' x y,
                              Symbolic.prove_gt ctx' x y )
                        | Fsa_term.Aeq (x, y) ->
                            ( Symbolic.prove_eq ctx' x y,
                              Symbolic.prove_lt ctx' x y
                              || Symbolic.prove_gt ctx' x y )
                      in
                      let assigned = Hashtbl.find truth (Fsa_term.atom_key a) in
                      (not (holds && fails))
                      && (not (holds && not assigned))
                      && not (fails && assigned))
                    atoms_arr
                in
                if consistent then begin
                  incr kept;
                  let tr k = Hashtbl.find truth k in
                  List.iter
                    (fun (name, ta, tb) ->
                      if
                        not
                          (Fsa_term.equal_under ctx' (Fsa_term.resolve tr ta)
                             (Fsa_term.resolve tr tb))
                      then
                        raise
                          (Mismatch
                             (if n = 0 then name ^ " differs"
                              else
                                Printf.sprintf "%s differs when %s" name
                                  (case_desc atoms truth))))
                    pairs
                end
              end
              else begin
                let a = atoms_arr.(i) in
                let k = Fsa_term.atom_key a in
                let branch v =
                  match assume_atom ctx' a v with
                  | ctx2 ->
                      Hashtbl.replace truth k v;
                      go (i + 1) ctx2
                  | exception Invalid_argument _ -> ()
                in
                branch true;
                branch false
              end
            in
            match go 0 ctx with
            | () -> Ok !kept
            | exception Mismatch m -> Error m
          end
    end
  with Fsa_eval.Unsupported m -> Error ("unsupported: " ^ m)

(* ---- proofs ----------------------------------------------------------- *)

let rec proof_lines indent (p : proof) =
  let pad = String.make (2 * indent) ' ' in
  let v =
    match p.verdict with
    | Equivalent -> "equivalent"
    | Unknown m -> "unknown (" ^ m ^ ")"
  in
  let detail = if p.detail = "" then "" else ": " ^ p.detail in
  (Printf.sprintf "%s[%s] %s -> %s%s" pad p.rule p.goal v detail)
  :: List.concat_map (proof_lines (indent + 1)) p.children

let proof_to_lines p = proof_lines 0 p

let blurb stmts =
  let s = String.concat "; " (List.map Stmt.to_string stmts) in
  let s =
    String.concat " "
      (List.filter
         (fun w -> w <> "")
         (String.split_on_char ' '
            (String.map (function '\n' | '\t' -> ' ' | c -> c) s)))
  in
  if String.length s > 60 then String.sub s 0 57 ^ "..." else s

let observe r =
  let evidence =
    [
      ("proof", Obs.Str (String.concat "\n" (proof_to_lines r.proof)));
      ("cases", Obs.Int r.cases);
    ]
  in
  (match r.verdict with Equivalent -> Ok () | Unknown m -> Error m)
  |> Obs.decide ~transform:"fsa" ~target:r.proof.goal ~evidence
  |> ignore;
  r

(* ---- direct equivalence ---------------------------------------------- *)

let direct ~ctx ~ignore_scalars p q =
  match
    let st_a = Fsa_eval.eval_block ~ctx p in
    let st_b = Fsa_eval.eval_block ~ctx q in
    equiv_states ~ctx ~ignore_scalars st_a st_b
  with
  | r -> r
  | exception Fsa_eval.Unsupported m -> Error ("unsupported: " ^ m)

let equivalent ?(ignore_scalars = []) ~ctx p q =
  let goal = Printf.sprintf "equal [%s] [%s]" (blurb p) (blurb q) in
  let r =
    match direct ~ctx ~ignore_scalars p q with
    | Ok cases ->
        {
          verdict = Equivalent;
          proof =
            {
              rule = "direct";
              goal;
              verdict = Equivalent;
              detail =
                Printf.sprintf "states match in all %d feasible cases" cases;
              children = [];
            };
          cases;
        }
    | Error why ->
        let v = Unknown why in
        {
          verdict = v;
          proof = { rule = "direct"; goal; verdict = v; detail = why; children = [] };
          cases = 0;
        }
  in
  observe r

(* ---- the fractal recursion ------------------------------------------- *)

let gcounter = ref 0

let gfresh base =
  incr gcounter;
  Printf.sprintf "%s.g%d" base !gcounter

let unit_step (l : Stmt.loop) =
  match Expr.simplify l.step with Expr.Int 1 -> true | _ -> false

(* The fractal step only helps when the direct comparison was too
   complex to carry out; a definite state mismatch is an answer (the
   rules are semantics-preserving, so subgoals would mismatch too). *)
let too_complex why =
  let contains needle =
    let nh = String.length why and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub why i nn = needle || go (i + 1)) in
    go 0
  in
  contains "unsupported" || contains "case-split budget"
  || contains "unknown symbolic value"

let rec commute_rec ~fuel ~ctx ~ignore_scalars p q =
  let goal = Printf.sprintf "commute [%s] with [%s]" (blurb p) (blurb q) in
  if fuel <= 0 then
    let v = Unknown "fuel exhausted" in
    {
      verdict = v;
      proof = { rule = "fuel"; goal; verdict = v; detail = ""; children = [] };
      cases = 0;
    }
  else
    match direct ~ctx ~ignore_scalars (p @ q) (q @ p) with
    | Ok cases ->
        {
          verdict = Equivalent;
          proof =
            {
              rule = "direct";
              goal;
              verdict = Equivalent;
              detail =
                Printf.sprintf "reordered states match in all %d feasible cases"
                  cases;
              children = [];
            };
          cases;
        }
    | Error why when not (too_complex why) ->
        let v = Unknown why in
        {
          verdict = v;
          proof =
            { rule = "direct"; goal; verdict = v; detail = why; children = [] };
          cases = 0;
        }
    | Error why ->
        (* Too complex to compare directly: simplify both sides the
           same way and recurse on the (smaller) obligations. *)
        let sub = commute_rec ~fuel:(fuel - 1) ~ignore_scalars in
        let success = ref None in
        let failures = ref [] in
        let try_rule rule subgoals =
          if !success = None then
            match subgoals () with
            | None -> ()
            | Some children ->
                let cases = List.fold_left (fun n r -> n + r.cases) 0 children in
                let cp = List.map (fun r -> r.proof) children in
                if List.for_all (fun r -> r.verdict = Equivalent) children then
                  success :=
                    Some
                      {
                        verdict = Equivalent;
                        proof =
                          {
                            rule;
                            goal;
                            verdict = Equivalent;
                            detail = "";
                            children = cp;
                          };
                        cases;
                      }
                else
                  failures :=
                    {
                      rule;
                      goal;
                      verdict = Unknown "a subgoal could not be proved";
                      detail = "";
                      children = cp;
                    }
                    :: !failures
        in
        try_rule "split-left" (fun () ->
            match p with
            | _ :: _ :: _ -> Some (List.map (fun s -> sub ~ctx [ s ] q) p)
            | _ -> None);
        try_rule "split-right" (fun () ->
            match q with
            | _ :: _ :: _ -> Some (List.map (fun s -> sub ~ctx p [ s ]) q)
            | _ -> None);
        try_rule "generic-iteration-right" (fun () ->
            match q with
            | [ Stmt.Loop l ] when unit_step l ->
                let th = gfresh l.index in
                let ctx' = Symbolic.with_loops ctx [ { l with index = th } ] in
                let body = Stmt.subst_block [ (l.index, Expr.var th) ] l.body in
                Some [ sub ~ctx:ctx' p body ]
            | _ -> None);
        try_rule "generic-iteration-left" (fun () ->
            match p with
            | [ Stmt.Loop l ] when unit_step l ->
                let th = gfresh l.index in
                let ctx' = Symbolic.with_loops ctx [ { l with index = th } ] in
                let body = Stmt.subst_block [ (l.index, Expr.var th) ] l.body in
                Some [ sub ~ctx:ctx' body q ]
            | _ -> None);
        (match !success with
        | Some r -> r
        | None ->
            let v = Unknown why in
            {
              verdict = v;
              proof =
                {
                  rule = "direct";
                  goal;
                  verdict = v;
                  detail = why;
                  children = List.rev !failures;
                };
              cases = 0;
            })

let commute ?(fuel = 8) ?(ignore_scalars = []) ~ctx p q =
  observe (commute_rec ~fuel ~ctx ~ignore_scalars p q)

(* ---- auxiliary fragment analyses ------------------------------------- *)

type interval = { ilo : Affine.t option; ihi : Affine.t option }

let unknown_iv = { ilo = None; ihi = None }

let int_ranges ~ctx stmts =
  let lookup env v =
    match List.assoc_opt v env with
    | Some iv -> iv
    | None ->
        let a = Affine.var v in
        { ilo = Some a; ihi = Some a }
  in
  let ival env e =
    match Affine.of_expr e with
    | None -> unknown_iv
    | Some a ->
        let c = Affine.const (Affine.constant a) in
        List.fold_left
          (fun acc v ->
            let k = Affine.coeff a v in
            let iv = lookup env v in
            let lo_c, hi_c =
              if k > 0 then
                ( Option.map (Affine.scale k) iv.ilo,
                  Option.map (Affine.scale k) iv.ihi )
              else
                ( Option.map (Affine.scale k) iv.ihi,
                  Option.map (Affine.scale k) iv.ilo )
            in
            {
              ilo =
                (match (acc.ilo, lo_c) with
                | Some x, Some y -> Some (Affine.add x y)
                | _ -> None);
              ihi =
                (match (acc.ihi, hi_c) with
                | Some x, Some y -> Some (Affine.add x y)
                | _ -> None);
            })
          { ilo = Some c; ihi = Some c }
          (Affine.vars a)
  in
  let hull i1 i2 =
    let pick prove a b =
      match (a, b) with
      | Some x, Some y ->
          if prove x y then Some x else if prove y x then Some y else None
      | _ -> None
    in
    {
      ilo = pick (Symbolic.prove_le ctx) i1.ilo i2.ilo;
      ihi = pick (Symbolic.prove_ge ctx) i1.ihi i2.ihi;
    }
  in
  let iv_eq a b =
    let oeq x y =
      match (x, y) with
      | Some p, Some q -> Affine.equal p q
      | None, None -> true
      | _ -> false
    in
    oeq a.ilo b.ilo && oeq a.ihi b.ihi
  in
  let set env v iv = (v, iv) :: List.remove_assoc v env in
  let rec assigned_ints stmts =
    List.concat_map
      (function
        | Stmt.Iassign (v, [], _) -> [ v ]
        | Stmt.Iassign _ | Stmt.Assign _ -> []
        | Stmt.If (_, t, e) -> assigned_ints t @ assigned_ints e
        | Stmt.Loop l -> assigned_ints l.body)
      stmts
  in
  let rec go env stmts = List.fold_left step env stmts
  and step env = function
    | Stmt.Iassign (v, [], e) -> set env v (ival env e)
    | Stmt.Iassign _ | Stmt.Assign _ -> env
    | Stmt.If (_, t, e) ->
        let envt = go env t and enve = go env e in
        let keys =
          List.sort_uniq String.compare (assigned_ints t @ assigned_ints e)
        in
        List.fold_left
          (fun acc v -> set acc v (hull (lookup envt v) (lookup enve v)))
          env keys
    | Stmt.Loop l ->
        let keys = List.sort_uniq String.compare (assigned_ints l.body) in
        let idx_iv = { ilo = (ival env l.lo).ilo; ihi = (ival env l.hi).ihi } in
        let saved = List.assoc_opt l.index env in
        let run env0 = go (set env0 l.index idx_iv) l.body in
        let merge env0 env1 =
          List.fold_left
            (fun acc v -> set acc v (hull (lookup env0 v) (lookup env1 v)))
            env0 keys
        in
        (* The loop may run zero or many times: hull one abstract pass
           with the entry state and keep the result only if a second
           pass is stable. *)
        let m1 = merge env (run env) in
        let m2 = merge m1 (run m1) in
        let stable =
          List.for_all (fun v -> iv_eq (lookup m1 v) (lookup m2 v)) keys
        in
        let out =
          if stable then m1
          else List.fold_left (fun acc v -> set acc v unknown_iv) m1 keys
        in
        (match saved with
        | Some iv -> set out l.index iv
        | None -> List.remove_assoc l.index out)
  in
  go [] stmts

let assigned_scalars stmts =
  let rec go = function
    | Stmt.Assign (x, [], _) | Stmt.Iassign (x, [], _) -> [ x ]
    | Stmt.Assign _ | Stmt.Iassign _ -> []
    | Stmt.If (_, t, e) -> List.concat_map go t @ List.concat_map go e
    | Stmt.Loop l -> List.concat_map go l.body
  in
  List.sort_uniq String.compare (List.concat_map go stmts)

let rec fexpr_reads = function
  | Stmt.Fconst _ -> []
  | Stmt.Fvar s -> [ s ]
  | Stmt.Ref (_, subs) -> List.concat_map Expr.free_vars subs
  | Stmt.Fbin (_, a, b) -> fexpr_reads a @ fexpr_reads b
  | Stmt.Fneg a -> fexpr_reads a
  | Stmt.Fcall (_, args) -> List.concat_map fexpr_reads args
  | Stmt.Of_int e -> Expr.free_vars e

let rec cond_reads = function
  | Stmt.Fcmp (_, a, b) -> fexpr_reads a @ fexpr_reads b
  | Stmt.Icmp (_, a, b) -> Expr.free_vars a @ Expr.free_vars b
  | Stmt.Not c -> cond_reads c
  | Stmt.And (a, b) | Stmt.Or (a, b) -> cond_reads a @ cond_reads b

let exposed_reads stmts =
  let expose written names =
    S.of_list (List.filter (fun n -> not (S.mem n written)) names)
  in
  let rec block written stmts =
    List.fold_left
      (fun (exp_, w) s ->
        let e2, w2 = stmt w s in
        (S.union exp_ e2, w2))
      (S.empty, written) stmts
  and stmt written = function
    | Stmt.Assign (x, [], rhs) ->
        (expose written (fexpr_reads rhs), S.add x written)
    | Stmt.Assign (_, subs, rhs) ->
        ( expose written (List.concat_map Expr.free_vars subs @ fexpr_reads rhs),
          written )
    | Stmt.Iassign (x, [], e) -> (expose written (Expr.free_vars e), S.add x written)
    | Stmt.Iassign (_, subs, e) ->
        ( expose written (List.concat_map Expr.free_vars subs @ Expr.free_vars e),
          written )
    | Stmt.If (c, t, e) ->
        let ec = expose written (cond_reads c) in
        let et, wt = block written t in
        let ee, we = block written e in
        (S.union ec (S.union et ee), S.inter wt we)
    | Stmt.Loop l ->
        let eb =
          expose written
            (Expr.free_vars l.lo @ Expr.free_vars l.hi @ Expr.free_vars l.step)
        in
        let ebody, _ = block written l.body in
        (S.union eb (S.remove l.index ebody), written)
  in
  S.elements (fst (block S.empty stmts))

let stmt_covered_scalars stmts =
  let rec fwritten = function
    | Stmt.Assign (x, [], _) -> [ x ]
    | Stmt.Assign _ | Stmt.Iassign _ -> []
    | Stmt.If (_, t, e) -> List.concat_map fwritten t @ List.concat_map fwritten e
    | Stmt.Loop l -> List.concat_map fwritten l.body
  in
  let written = List.sort_uniq String.compare (List.concat_map fwritten stmts) in
  let uncovered = List.concat_map (fun s -> exposed_reads [ s ]) stmts in
  List.filter (fun x -> not (List.mem x uncovered)) written
