(** Symbolic value terms for fractal symbolic analysis (FSA).

    A term denotes the REAL value a program fragment computes, expressed
    over the {e initial} store: [Init (a, subs)] is the value array [a]
    held at [subs] before the fragment ran, [Sinit x] the initial value
    of scalar [x].  Subscripts are canonical {!Affine} forms over the
    fragment's free integer symbols, so two terms describe the same
    computation iff they are structurally equal with provably-equal
    affine leaves.

    Reads that cannot be resolved exactly produce conditional terms:
    [Ite (atoms, t1, t2)] is [t1] when the conjunction of integer
    {!atom}s holds and [t2] otherwise.  The equivalence checker collects
    every atom, case-splits on the undecided ones, and compares the
    resolved (Ite-free) terms per case. *)

type atom =
  | Ale of Affine.t * Affine.t  (** [Ale (a, b)] is [a <= b]. *)
  | Aeq of Affine.t * Affine.t  (** [Aeq (a, b)] is [a = b]. *)

val atom_key : atom -> string
(** Canonical key: two atoms with the same key denote the same
    condition (differences are sign-normalized). *)

val atom_subst : (string * Affine.t) list -> atom -> atom
val atom_to_string : atom -> string

type t =
  | Init of string * Affine.t list  (** initial array element *)
  | Sinit of string  (** initial REAL scalar *)
  | Const of float
  | Neg of t
  | Bin of Stmt.fbinop * t * t
  | Call of string * t list  (** intrinsic, e.g. [ABS] *)
  | Of_int of Affine.t
  | Ite of atom list * t * t
      (** [t1] when every atom holds, else [t2] *)

val subst : (string * Affine.t) list -> t -> t
(** Substitute integer symbols in every affine leaf (subscripts,
    [Of_int], atom sides). *)

val atoms : t -> atom list
(** Every atom occurring in the term, deduplicated by {!atom_key}. *)

val size : t -> int

val resolve : (string -> bool) -> t -> t
(** [resolve truth t] eliminates every [Ite] given a truth assignment
    for atoms by {!atom_key}; raises [Not_found] when the assignment
    does not cover an atom. *)

val equal_under : Symbolic.t -> t -> t -> bool
(** Structural equality with affine leaves compared by
    [Symbolic.prove_eq] under the context, and float constants compared
    bitwise.  Sound for bitwise result equality: no reassociation or
    other float algebra is applied. *)

val to_string : t -> string
