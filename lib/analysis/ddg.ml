type edge = { from_stmt : int; to_stmt : int; dep : Dependence.t }

type t = {
  loop : Stmt.loop;
  n : int;
  edges : edge list;
  sccs : int list list;
}

(* An access inside [Loop l] analyzed as the block [ [Loop l] ] has a path
   beginning [I 0; I k; ...]: k is the body-statement index. *)
let body_stmt_of_path (path : Stmt.path) =
  match path with
  | Stmt.I 0 :: Stmt.I k :: _ -> Some k
  | _ -> None

let build ~ctx (l : Stmt.loop) =
  let deps = Dependence.all ~ctx [ Stmt.Loop l ] in
  let n = List.length l.body in
  let edges =
    List.filter_map
      (fun (dep : Dependence.t) ->
        match
          ( body_stmt_of_path dep.source.path,
            body_stmt_of_path dep.sink.path )
        with
        | Some a, Some b ->
            (* Keep dependences that cross iterations of [l] (carrier 0) or
               are loop-independent across statements.  Dependences carried
               by inner loops connect a statement to itself at this level
               and do not constrain distribution. *)
            let relevant =
              match dep.carrier with
              | Some 0 -> true
              | Some _ -> false
              | None -> a <> b
            in
            if relevant then Some { from_stmt = a; to_stmt = b; dep } else None
        | _ -> None)
      deps
  in
  let succ v =
    List.filter_map
      (fun e -> if e.from_stmt = v then Some e.to_stmt else None)
      edges
  in
  let sccs = Scc.compute ~n ~succ in
  if Obs.enabled () then
    Obs.instant ~cat:"analysis" "ddg"
      ~args:
        [
          ("loop", Obs.Str l.index);
          ("stmts", Obs.Int n);
          ("edges", Obs.Int (List.length edges));
          ("sccs", Obs.Int (List.length sccs));
          ( "recurrences",
            Obs.Int (List.length (List.filter (fun c -> List.length c > 1) sccs))
          );
        ];
  { loop = l; n; edges; sccs }

let scc_index g v =
  let rec go i = function
    | [] -> invalid_arg "Ddg.scc_index"
    | comp :: rest -> if List.mem v comp then i else go (i + 1) rest
  in
  go 0 g.sccs

let same_scc g a b = scc_index g a = scc_index g b

let preventing_edges g a b =
  if not (same_scc g a b) then []
  else
    let comp = List.nth g.sccs (scc_index g a) in
    List.filter_map
      (fun e ->
        if List.mem e.from_stmt comp && List.mem e.to_stmt comp then Some e.dep
        else None)
      g.edges

let distribution_order g =
  match g.sccs with
  | [ _ ] when g.n > 1 -> None
  | sccs -> Some sccs
