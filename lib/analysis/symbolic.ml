type t = { facts : Affine.t list; cache : (string, bool) Hashtbl.t }

let empty = { facts = []; cache = Hashtbl.create 64 }

let add_fact t f =
  match Affine.is_const f with
  | Some c ->
      if c < 0 then
        invalid_arg "Symbolic: assuming a false constant fact";
      t
  | None ->
      if List.exists (Affine.equal f) t.facts then t
      else { facts = f :: t.facts; cache = Hashtbl.create 64 }

let assume_nonneg t f = add_fact t f
let assume_ge t a b = add_fact t (Affine.sub a b)
let assume_le t a b = add_fact t (Affine.sub b a)
let assume_pos t v = add_fact t (Affine.sub (Affine.var v) (Affine.const 1))

let with_loops init loops =
  List.fold_left
    (fun ctx (l : Stmt.loop) ->
      match Affine.of_expr l.lo, Affine.of_expr l.hi with
      | Some lo, Some hi ->
          let idx = Affine.var l.index in
          let ctx = assume_ge ctx idx lo in
          let ctx = assume_le ctx idx hi in
          assume_ge ctx hi lo
      | _ -> (
          (* MIN/MAX bounds still give one-sided facts. *)
          let ctx =
            match l.lo with
            | Expr.Max (a, b) -> (
                match Affine.of_expr a, Affine.of_expr b with
                | Some fa, Some fb ->
                    let idx = Affine.var l.index in
                    assume_ge (assume_ge ctx idx fa) idx fb
                | _ -> ctx)
            | _ -> (
                match Affine.of_expr l.lo with
                | Some lo -> assume_ge ctx (Affine.var l.index) lo
                | None -> ctx)
          in
          match l.hi with
          | Expr.Min (a, b) -> (
              match Affine.of_expr a, Affine.of_expr b with
              | Some fa, Some fb ->
                  let idx = Affine.var l.index in
                  assume_le (assume_le ctx idx fa) idx fb
              | _ -> ctx)
          | _ -> (
              match Affine.of_expr l.hi with
              | Some hi -> assume_le ctx (Affine.var l.index) hi
              | None -> ctx)))
    init loops

let of_loop_context loops = with_loops empty loops

(* Prove [e >= 0] by searching for a representation
   [e = c + sum(lambda_i * f_i)] with [c >= 0] and positive integer
   multipliers.  The search is variable-directed: it picks the first
   variable with a nonzero coefficient and considers only facts whose
   coefficient on that variable has the same sign (so subtraction
   reduces it), scaling to cancel the variable completely when the
   coefficients divide.  Sound but incomplete; results are memoized per
   context. *)
let prove_nonneg t e =
  let rec go depth e =
    match Affine.vars e with
    | [] -> Affine.constant e >= 0
    | v :: _ ->
        depth > 0
        &&
        let ce = Affine.coeff e v in
        List.exists
          (fun f ->
            let cf = Affine.coeff f v in
            if cf = 0 || cf * ce < 0 then false
            else
              let lam =
                if ce mod cf = 0 && ce / cf > 0 then ce / cf
                else if abs cf <= abs ce then 1
                else 0
              in
              lam > 0 && go (depth - 1) (Affine.sub e (Affine.scale lam f)))
          t.facts
  in
  let key = Affine.to_string e in
  match Hashtbl.find_opt t.cache key with
  | Some r -> r
  | None ->
      let r = go 8 e in
      Hashtbl.add t.cache key r;
      r

let prove_ge t a b = prove_nonneg t (Affine.sub a b)
let prove_gt t a b = prove_nonneg t (Affine.sub (Affine.sub a b) (Affine.const 1))
let prove_le t a b = prove_ge t b a
let prove_lt t a b = prove_gt t b a
let prove_eq t a b = Affine.equal a b || (prove_ge t a b && prove_le t a b)

type order = Lt | Le | Eq | Ge | Gt | Unknown

let compare_ t a b =
  if prove_eq t a b then Eq
  else if prove_lt t a b then Lt
  else if prove_gt t a b then Gt
  else if prove_le t a b then Le
  else if prove_ge t a b then Ge
  else Unknown

let facts t = t.facts

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun f -> Format.fprintf fmt "%s >= 0@ " (Affine.to_string f)) t.facts;
  Format.fprintf fmt "@]"
