type t = { facts : Affine.t list; cache : (string, bool) Hashtbl.t }

let empty = { facts = []; cache = Hashtbl.create 64 }

let add_fact t f =
  match Affine.is_const f with
  | Some c ->
      if c < 0 then
        invalid_arg "Symbolic: assuming a false constant fact";
      t
  | None ->
      if List.exists (Affine.equal f) t.facts then t
      else { facts = f :: t.facts; cache = Hashtbl.create 64 }

let assume_nonneg t f = add_fact t f
let assume_ge t a b = add_fact t (Affine.sub a b)
let assume_le t a b = add_fact t (Affine.sub b a)
let assume_pos t v = add_fact t (Affine.sub (Affine.var v) (Affine.const 1))

(* ---- One-sided affine bounds of loop-bound expressions ------------ *)

(* [cases_of e] computes disjunctive one-sided bound information for an
   arbitrary bound expression: a pair (lower, upper) of CASE LISTS.  The
   execution satisfies at least one case on each side; within a case,
   [e] is >= every affine form listed (lower side) resp. <= every one
   (upper side).  MIN/MAX are where the two sides differ:

     e <= MIN(a, b)  gives  e <= a AND e <= b        (conjunctive)
     e >= MIN(a, b)  gives  e >= a  OR e >= b        (case split)

   and dually for MAX.  [+], [-] and scaling by a constant compose
   bounds pairwise; anything else (Idx, Div, variable products) yields
   the single no-information case [[]]. *)

let max_cases = 16

let dedup_affs l =
  List.fold_left
    (fun acc a -> if List.exists (Affine.equal a) acc then acc else a :: acc)
    [] l
  |> List.rev

let same_case c1 c2 =
  List.length c1 = List.length c2
  && List.for_all (fun a -> List.exists (Affine.equal a) c2) c1

let dedup_cases cs =
  List.fold_left
    (fun acc c -> if List.exists (same_case c) acc then acc else c :: acc)
    [] cs
  |> List.rev

(* Bounds valid in EVERY case: the sound conjunctive core. *)
let intersect_cases = function
  | [] -> []
  | c :: rest ->
      List.filter (fun a -> List.for_all (List.exists (Affine.equal a)) rest) c

let trim cs =
  let cs = dedup_cases cs in
  if List.length cs <= max_cases then cs else [ intersect_cases cs ]

(* Both case-sets hold: cross product, unioning the bound lists. *)
let conj_merge cs1 cs2 =
  List.concat_map
    (fun c1 -> List.map (fun c2 -> dedup_affs (c1 @ c2)) cs2)
    cs1

(* Pairwise arithmetic on bounds, case-wise. *)
let combine2 f cs1 cs2 =
  List.concat_map
    (fun c1 ->
      List.map
        (fun c2 ->
          dedup_affs (List.concat_map (fun x -> List.map (f x) c2) c1))
        cs2)
    cs1

let rec cases_of (e : Expr.t) : Affine.t list list * Affine.t list list =
  match Affine.of_expr e with
  | Some a -> ([ [ a ] ], [ [ a ] ])
  | None -> (
      match e with
      | Expr.Min (a, b) ->
          let la, ua = cases_of a and lb, ub = cases_of b in
          (trim (la @ lb), trim (conj_merge ua ub))
      | Expr.Max (a, b) ->
          let la, ua = cases_of a and lb, ub = cases_of b in
          (trim (conj_merge la lb), trim (ua @ ub))
      | Expr.Bin (Expr.Add, a, b) ->
          let la, ua = cases_of a and lb, ub = cases_of b in
          (trim (combine2 Affine.add la lb), trim (combine2 Affine.add ua ub))
      | Expr.Bin (Expr.Sub, a, b) ->
          let la, ua = cases_of a and lb, ub = cases_of b in
          (trim (combine2 Affine.sub la ub), trim (combine2 Affine.sub ua lb))
      | Expr.Bin (Expr.Mul, Expr.Int c, a) | Expr.Bin (Expr.Mul, a, Expr.Int c)
        ->
          let la, ua = cases_of a in
          let s = List.map (List.map (Affine.scale c)) in
          if c >= 0 then (trim (s la), trim (s ua))
          else (trim (s ua), trim (s la))
      | _ -> ([ [] ], [ [] ]))

let loop_facts ~lo_bounds ~hi_bounds ctx (l : Stmt.loop) =
  let idx = Affine.var l.index in
  let ctx = List.fold_left (fun c b -> assume_ge c idx b) ctx lo_bounds in
  let ctx = List.fold_left (fun c b -> assume_le c idx b) ctx hi_bounds in
  match (Affine.of_expr l.lo, Affine.of_expr l.hi) with
  | Some lo, Some hi -> assume_ge ctx hi lo
  | _ -> ctx

let with_loops init loops =
  List.fold_left
    (fun ctx (l : Stmt.loop) ->
      let lo_cases, _ = cases_of l.lo in
      let _, hi_cases = cases_of l.hi in
      loop_facts ~lo_bounds:(intersect_cases lo_cases)
        ~hi_bounds:(intersect_cases hi_cases) ctx l)
    init loops

let with_loops_cases init loops =
  let step ctxs (l : Stmt.loop) =
    let lo_cases, _ = cases_of l.lo in
    let _, hi_cases = cases_of l.hi in
    let expanded =
      List.concat_map
        (fun ctx ->
          List.concat_map
            (fun lc ->
              List.map
                (fun hc -> loop_facts ~lo_bounds:lc ~hi_bounds:hc ctx l)
                hi_cases)
            lo_cases)
        ctxs
    in
    if List.length expanded > max_cases then
      (* Too many alternatives: keep only the conjunctive core so the
         case count stays bounded (dropping a case would be unsound). *)
      List.map
        (fun ctx ->
          loop_facts ~lo_bounds:(intersect_cases lo_cases)
            ~hi_bounds:(intersect_cases hi_cases) ctx l)
        ctxs
    else expanded
  in
  List.fold_left step [ init ] loops

let of_loop_context loops = with_loops empty loops

(* Prove [e >= 0] by searching for a representation
   [e = c + sum(lambda_i * f_i)] with [c >= 0] and positive integer
   multipliers.  The search is variable-directed: it picks the first
   variable with a nonzero coefficient and considers only facts whose
   coefficient on that variable has the same sign (so subtraction
   reduces it), scaling to cancel the variable completely when the
   coefficients divide.  Sound but incomplete; results are memoized per
   context. *)
let prove_nonneg t e =
  let rec go depth e =
    match Affine.vars e with
    | [] -> Affine.constant e >= 0
    | v :: _ ->
        depth > 0
        &&
        let ce = Affine.coeff e v in
        List.exists
          (fun f ->
            let cf = Affine.coeff f v in
            if cf = 0 || cf * ce < 0 then false
            else
              let lam =
                if ce mod cf = 0 && ce / cf > 0 then ce / cf
                else if abs cf <= abs ce then 1
                else 0
              in
              lam > 0 && go (depth - 1) (Affine.sub e (Affine.scale lam f)))
          t.facts
  in
  let key = Affine.to_string e in
  match Hashtbl.find_opt t.cache key with
  | Some r -> r
  | None ->
      let r = go 8 e in
      Hashtbl.add t.cache key r;
      r

let prove_ge t a b = prove_nonneg t (Affine.sub a b)
let prove_gt t a b = prove_nonneg t (Affine.sub (Affine.sub a b) (Affine.const 1))
let prove_le t a b = prove_ge t b a
let prove_lt t a b = prove_gt t b a
let prove_eq t a b = Affine.equal a b || (prove_ge t a b && prove_le t a b)

type order = Lt | Le | Eq | Ge | Gt | Unknown

let compare_ t a b =
  if prove_eq t a b then Eq
  else if prove_lt t a b then Lt
  else if prove_gt t a b then Gt
  else if prove_le t a b then Le
  else if prove_ge t a b then Ge
  else Unknown

let facts t = t.facts

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun f -> Format.fprintf fmt "%s >= 0@ " (Affine.to_string f)) t.facts;
  Format.fprintf fmt "@]"
