(** Assumption-based comparison of affine forms.

    Section analysis must answer questions like "is [I + IS - 1 <= N]?"
    where [IS] and [N] are symbolic.  A context carries facts of the form
    [affine >= 0]; queries are decided by expressing the query as a
    nonnegative combination of facts (searched to a small depth).  The
    answer [Unknown] is always sound: callers treat it conservatively. *)

type t
(** A conjunction of facts [f >= 0]. *)

val empty : t

val assume_nonneg : t -> Affine.t -> t
val assume_ge : t -> Affine.t -> Affine.t -> t
(** [assume_ge t a b] adds the fact [a >= b]. *)

val assume_le : t -> Affine.t -> Affine.t -> t

val assume_pos : t -> string -> t
(** [assume_pos t v] adds the fact [v >= 1]. *)

val of_loop_context : Stmt.loop list -> t
(** Facts implied by a loop nest when every loop executes at least one
    iteration: for each loop with affine bounds, [index >= lo],
    [index <= hi] and [hi >= lo].  (Used for reasoning *inside* a body;
    emptiness of outer loops makes the body unreachable, so the facts
    hold at every execution point that matters.  Only pass loops that
    enclose every statement under analysis: a possibly-zero-trip inner
    loop's [hi >= lo] does not hold at statements outside it.) *)

val with_loops : t -> Stmt.loop list -> t
(** [with_loops ctx loops] extends [ctx] with the same facts
    {!of_loop_context} derives, for loops known to enclose the
    execution point under analysis.  Bounds are decomposed recursively:
    a MIN in an upper bound (or a MAX in a lower bound) contributes
    every affine arm, and [+]/[-]/scaling by a constant compose, so
    e.g. [hi = MIN(N, K + KS) - 3] yields both [index <= N - 3] and
    [index <= K + KS - 3]. *)

val with_loops_cases : t -> Stmt.loop list -> t list
(** Like {!with_loops}, but keeps the disjunctive structure of the
    awkward sides: a MIN in a {e lower} bound (or a MAX in an upper
    bound) means the index is >= one arm {e or} the other, so the
    context forks.  Returns a nonempty list of contexts whose
    disjunction covers every execution; a property holds iff it is
    provable in EVERY case.  Falls back to the single conjunctive
    context when the case count explodes. *)

val prove_nonneg : t -> Affine.t -> bool
val prove_ge : t -> Affine.t -> Affine.t -> bool
val prove_gt : t -> Affine.t -> Affine.t -> bool
val prove_le : t -> Affine.t -> Affine.t -> bool
val prove_lt : t -> Affine.t -> Affine.t -> bool
val prove_eq : t -> Affine.t -> Affine.t -> bool

type order = Lt | Le | Eq | Ge | Gt | Unknown

val compare_ : t -> Affine.t -> Affine.t -> order
(** Strongest provable relation between two affine forms. *)

val facts : t -> Affine.t list
val pp : Format.formatter -> t -> unit
