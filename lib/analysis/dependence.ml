type kind = Flow | Anti | Output | Input

type delem = { lt : bool; eq : bool; gt : bool; dist : int option }

type t = {
  kind : kind;
  source : Ir_util.access;
  sink : Ir_util.access;
  vector : delem list;
  carrier : int option;
}

let any_dir = { lt = true; eq = true; gt = true; dist = None }

let of_dist d =
  { lt = d > 0; eq = d = 0; gt = d < 0; dist = Some d }

let impossible e = not (e.lt || e.eq || e.gt)

let intersect_elem a b =
  match a.dist, b.dist with
  | Some x, Some y when x <> y -> { lt = false; eq = false; gt = false; dist = None }
  | _ ->
      let dist = match a.dist with Some _ -> a.dist | None -> b.dist in
      { lt = a.lt && b.lt; eq = a.eq && b.eq; gt = a.gt && b.gt; dist }

let common_loops (a : Ir_util.access) (b : Ir_util.access) =
  let rec go la lb =
    match la, lb with
    | x :: ra, y :: rb when x == y -> x :: go ra rb
    | _ -> []
  in
  go a.loops b.loops

(* Dependence equation for one subscript position: [s_src(i) = s_snk(i')].
   Returns [None] for proven independence at this position, or a constraint
   on (i' - i) per common loop. *)
type position_result =
  | Independent
  | Constraints of (string * delem) list  (** only mentioned loops listed *)

let rename_non_common ~common ~tag (acc : Ir_util.access) aff =
  let non_common =
    List.filter (fun (l : Stmt.loop) -> not (List.memq l common)) acc.loops
  in
  List.fold_left
    (fun aff (l : Stmt.loop) ->
      Affine.subst l.index (Affine.var (l.index ^ tag)) aff)
    aff non_common

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let test_position ~ctx ~common ~src ~snk s_src s_snk =
  match Affine.of_expr s_src, Affine.of_expr s_snk with
  | None, _ | _, None -> Constraints []
  | Some f_src, Some f_snk -> (
      let f_src = rename_non_common ~common ~tag:"#src" src f_src in
      let f_snk = rename_non_common ~common ~tag:"#snk" snk f_snk in
      let indices = List.map (fun (l : Stmt.loop) -> l.index) common in
      let coeffs_src = List.map (Affine.coeff f_src) indices in
      let coeffs_snk = List.map (Affine.coeff f_snk) indices in
      let strip aff =
        List.fold_left (fun a v -> snd (Affine.split_on v a)) aff indices
      in
      let c_src = strip f_src and c_snk = strip f_snk in
      let dc = Affine.sub c_src c_snk in
      let involved =
        List.filteri
          (fun k _ -> List.nth coeffs_src k <> 0 || List.nth coeffs_snk k <> 0)
          indices
      in
      match involved with
      | [] -> (
          (* ZIV *)
          match Affine.is_const dc with
          | Some 0 -> Constraints []
          | Some _ -> Independent
          | None ->
              if
                Symbolic.prove_gt ctx dc Affine.zero
                || Symbolic.prove_lt ctx dc Affine.zero
              then Independent
              else Constraints [])
      | [ v ] -> (
          (* SIV on loop v:  a*i + c_src = b*i' + c_snk *)
          let k = ref 0 in
          List.iteri (fun i name -> if String.equal name v then k := i) indices;
          let a = List.nth coeffs_src !k and b = List.nth coeffs_snk !k in
          if a = b && a <> 0 then
            (* strong SIV: i' - i = dc / a *)
            match Affine.is_const dc with
            | Some c ->
                if c mod a <> 0 then Independent
                else Constraints [ (v, of_dist (c / a)) ]
            | None ->
                if Symbolic.prove_eq ctx dc Affine.zero then
                  Constraints [ (v, of_dist 0) ]
                else if
                  (* sign of d = dc / a *)
                  (a > 0 && Symbolic.prove_gt ctx dc Affine.zero)
                  || (a < 0 && Symbolic.prove_lt ctx dc Affine.zero)
                then Constraints [ (v, { lt = true; eq = false; gt = false; dist = None }) ]
                else if
                  (a > 0 && Symbolic.prove_lt ctx dc Affine.zero)
                  || (a < 0 && Symbolic.prove_gt ctx dc Affine.zero)
                then Constraints [ (v, { lt = false; eq = false; gt = true; dist = None }) ]
                else Constraints [ (v, any_dir) ]
          else Constraints [ (v, any_dir) ] (* weak SIV: no direction info *))
      | _ -> (
          (* MIV: GCD test on the constant part when the symbolic parts
             cancel. *)
          match Affine.is_const dc with
          | Some c ->
              let g =
                List.fold_left gcd 0 (coeffs_src @ List.map (fun x -> -x) coeffs_snk)
              in
              if g <> 0 && c mod g <> 0 then Independent else Constraints []
          | None -> Constraints []))

(* The loops of an access strictly inside [l] (physical identity). *)
let loops_below (l : Stmt.loop) (a : Ir_util.access) =
  let rec drop = function
    | [] -> []
    | x :: rest -> if x == l then rest else drop rest
  in
  drop a.loops

let rename_section v fresh (s : Section.t) =
  let by = Affine.var fresh in
  let rename_dim (d : Section.dim) =
    {
      d with
      Section.los = List.map (Affine.subst v by) d.Section.los;
      his = List.map (Affine.subst v by) d.Section.his;
    }
  in
  { s with Section.dims = List.map rename_dim s.Section.dims }

let hi_facts ctx ~idx (l : Stmt.loop) =
  let arms =
    match Affine.of_expr l.hi with
    | Some a -> [ a ]
    | None -> (
        match l.hi with
        | Expr.Min (a, b) -> List.filter_map Affine.of_expr [ a; b ]
        | _ -> [])
  in
  List.fold_left (fun c arm -> Symbolic.assume_le c (Affine.var idx) arm) ctx arms

(* Can loop [common.(c)] really carry a dependence from [src] to [snk]?
   Compare the section [src] touches at one iteration (the loop index
   symbolic) with the section [snk] touches at any strictly later
   iteration (index renamed to a fresh symbol constrained to be larger).
   Provable disjointness refutes the carrier — this is the section-based
   refinement that standard distance/direction abstractions lack (paper
   §3.3). *)
let carried_possible ~ctx common c (src : Ir_util.access) (snk : Ir_util.access) =
  match List.nth_opt common c with
  | None -> true
  | Some (l : Stmt.loop) -> (
      match
        ( Section.of_ref ~ctx ~within:(loops_below l src) src.array src.subs,
          Section.of_ref ~ctx ~within:(loops_below l snk) snk.array snk.subs )
      with
      | Some s1, Some s2 ->
          let later = l.index ^ "'" in
          let s2 = rename_section l.index later s2 in
          let ctx' =
            Symbolic.assume_ge ctx (Affine.var later)
              (Affine.add (Affine.var l.index) (Affine.const 1))
          in
          let ctx' = hi_facts ctx' ~idx:later l in
          not (Section.disjoint ctx' s1 s2)
      | _ -> true)

(* Can a loop-independent dependence (same iteration of every common loop)
   exist?  Sections below the innermost common loop share all common
   indices symbolically. *)
let same_iteration_possible ~ctx common (src : Ir_util.access)
    (snk : Ir_util.access) =
  match List.rev common with
  | [] -> true
  | (l : Stmt.loop) :: _ -> (
      match
        ( Section.of_ref ~ctx ~within:(loops_below l src) src.array src.subs,
          Section.of_ref ~ctx ~within:(loops_below l snk) snk.array snk.subs )
      with
      | Some s1, Some s2 -> not (Section.disjoint ctx s1 s2)
      | _ -> true)

let section_disjoint ~ctx (a : Ir_util.access) (b : Ir_util.access) =
  match
    ( Section.of_access ~ctx ~within:a.loops a,
      Section.of_access ~ctx ~within:b.loops b )
  with
  | Some sa, Some sb -> Section.disjoint ctx sa sb
  | _ -> false

let kind_of (src : Ir_util.access) (snk : Ir_util.access) =
  match src.kind, snk.kind with
  | Ir_util.Write, Ir_util.Read -> Flow
  | Ir_util.Read, Ir_util.Write -> Anti
  | Ir_util.Write, Ir_util.Write -> Output
  | Ir_util.Read, Ir_util.Read -> Input

let between ~ctx (src : Ir_util.access) (snk : Ir_util.access) =
  if
    (not (String.equal src.array snk.array))
    || List.length src.subs <> List.length snk.subs
  then []
  else
    let common = common_loops src snk in
    (* Bounds facts of the common loops hold at both access instances —
       every execution of either statement is inside all of them.  Facts
       about deeper or sibling loops would not (a zero-trip inner loop
       still lets the outer statements run), which is why they are
       derived here per pair instead of trusted from the caller. *)
    let ctx = Symbolic.with_loops ctx common in
    if section_disjoint ~ctx src snk then []
    else
    let indices = List.map (fun (l : Stmt.loop) -> l.index) common in
    let base = List.map (fun _ -> any_dir) indices in
    let results =
      List.map2
        (fun s_src s_snk -> test_position ~ctx ~common ~src ~snk s_src s_snk)
        src.subs snk.subs
    in
    if List.exists (fun r -> r = Independent) results then []
    else
      let vector =
        List.fold_left
          (fun vec r ->
            match r with
            | Independent -> vec
            | Constraints cs ->
                List.mapi
                  (fun k e ->
                    match List.assoc_opt (List.nth indices k) cs with
                    | Some c -> intersect_elem e c
                    | None -> e)
                  vec)
          base results
      in
      if List.exists impossible vector then []
      else
        let kind = kind_of src snk in
        let n = List.length vector in
        let deps = ref [] in
        (* One dependence per possible carrier: loops before the carrier at
           distance 0, the carrier strictly positive. *)
        for c = 0 to n - 1 do
          let ok =
            List.for_all (fun k -> (List.nth vector k).eq) (List.init c (fun i -> i))
            && (List.nth vector c).lt
            && carried_possible ~ctx common c src snk
          in
          if ok then
            let dep_vector =
              List.mapi
                (fun k e ->
                  if k < c then of_dist 0
                  else if k = c then { e with eq = false; gt = false }
                  else e)
                vector
            in
            deps := { kind; source = src; sink = snk; vector = dep_vector; carrier = Some c } :: !deps
        done;
        (* Loop-independent dependence: all-zero vector and textual order. *)
        if
          List.for_all (fun e -> e.eq) vector
          && src.pos < snk.pos
          && same_iteration_possible ~ctx common src snk
        then
          deps :=
            {
              kind;
              source = src;
              sink = snk;
              vector = List.map (fun _ -> of_dist 0) vector;
              carrier = None;
            }
            :: !deps;
        List.rev !deps

let all ?(include_input = false) ~ctx block =
  let accs = Array.of_list (Ir_util.accesses block) in
  let n = Array.length accs in
  let deps = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let a = accs.(i) and b = accs.(j) in
      let relevant =
        (a.kind = Ir_util.Write || b.kind = Ir_util.Write || include_input)
        && (i <> j || a.kind = Ir_util.Write)
      in
      if relevant then deps := between ~ctx a b :: !deps
    done
  done;
  List.concat (List.rev !deps)

let carried_by dep (l : Stmt.loop) =
  match dep.carrier with
  | None -> false
  | Some c -> (
      match List.nth_opt (common_loops dep.source dep.sink) c with
      | Some lc -> lc == l
      | None -> false)

let kind_to_string = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"
  | Input -> "input"

let to_string dep =
  let ref_str (a : Ir_util.access) =
    if a.subs = [] then a.array
    else a.array ^ "(" ^ String.concat "," (List.map Expr.to_string a.subs) ^ ")"
  in
  let elem_str e =
    match e.dist with
    | Some d -> string_of_int d
    | None ->
        let s = (if e.lt then "<" else "") ^ (if e.eq then "=" else "")
                ^ if e.gt then ">" else "" in
        if s = "" then "!" else s
  in
  Printf.sprintf "%s: %s -> %s (%s)%s" (kind_to_string dep.kind)
    (ref_str dep.source) (ref_str dep.sink)
    (String.concat "," (List.map elem_str dep.vector))
    (match dep.carrier with
    | None -> " loop-independent"
    | Some c -> Printf.sprintf " carried by level %d" (c + 1))
