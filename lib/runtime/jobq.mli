(** A closable multi-producer/multi-consumer job queue for the domain
    pool.

    The serve daemon's shape: one reader pushes decoded requests, the
    pool's lanes {!drain} them concurrently, and {!close} after the
    last push lets every lane fall off the end once the backlog is
    empty — no sentinel values, no busy-waiting (consumers park on a
    condition variable).

    Trace propagation: {!push} captures the submitter's {!Obs.Ctx}
    alongside the payload, and {!drain} restores it around the
    consumer's callback — so a request's spans stay on one trace even
    though the queue hop changes domains.  ({!pop} discards the
    context; use {!drain} on worker lanes.)

    Instrumented through {!Obs.Metrics} under the queue's name: a
    [<name>.depth] gauge sampled at every push/pop (with its peak
    high-water mark) and a [<name>.queue_wait] timer accumulating how
    long each job sat queued before a lane picked it up; each dequeue
    also emits a [jobq.dequeue] instant (on the job's trace) when
    tracing is on. *)

type 'a t

val create : ?name:string -> unit -> 'a t
(** An open, empty queue.  [name] (default ["jobq"]) prefixes the
    metrics this queue records. *)

val push : 'a t -> 'a -> unit
(** Enqueue a job (capturing the calling domain's trace context) and
    wake one waiting consumer.
    @raise Invalid_argument on a closed queue. *)

val close : 'a t -> unit
(** No more pushes; waiting and future {!pop}s return [None] once the
    backlog is drained.  Idempotent. *)

val pop : 'a t -> 'a option
(** Dequeue the oldest job, blocking while the queue is empty but not
    yet closed.  [None] means closed-and-drained: the consumer is done. *)

val length : 'a t -> int
(** Jobs currently queued (racy under concurrency, exact when quiesced). *)

val drain : 'a t -> ('a -> unit) -> unit
(** [drain t f] pops and runs jobs until {!pop} returns [None] — the
    body each pool lane runs.  Each job runs under the trace context
    captured at {!push} time. *)
