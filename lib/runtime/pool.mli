(** A lazily-started pool of worker domains for data-parallel kernels.

    A pool of size [d] executes parallel regions on [d] lanes: the
    calling domain plus [d - 1] worker domains.  Workers are spawned on
    the first {!run} (creation is free) and are reused across calls —
    spawning a domain costs ~10-100us, far too much to pay per trailing
    update, so the workers park on a condition variable between regions.

    Pools are not reentrant: calling {!run} from inside a running region
    degrades gracefully to executing the thunk serially on the calling
    lane. *)

type t

val create : ?name:string -> domains:int -> unit -> t
(** [create ~domains ()] makes a pool of [max 1 domains] lanes.  No domain
    is spawned until the first {!run}.  [?name] (default ["pool"])
    labels the pool's metrics — [pool.lane_busy_ns{pool="<name>",...}]. *)

val size : t -> int
(** Number of lanes (including the caller's). *)

val name : t -> string

val lane_busy_ns : t -> int array
(** Cumulative busy nanoseconds per lane (index 0 = the calling
    domain's lane), accumulated only while metrics are enabled.  Also
    published after every region as the
    [pool.lane_busy_ns{pool,lane}] gauges, from which scrapers derive
    utilization by delta. *)

val default : unit -> t
(** The shared process-wide pool.  Its size is
    [BLOCKABILITY_DOMAINS] if that environment variable is set to a
    positive integer, otherwise [Domain.recommended_domain_count ()].
    Created on first use and reused for the life of the process. *)

val run : t -> (unit -> unit) -> unit
(** [run t f] executes [f ()] once on every lane concurrently and
    returns when all lanes have finished.  [f] is expected to
    self-schedule its share of the work (see {!Parallel.for_}).  If any
    lane raises, one of the exceptions is re-raised in the caller after
    all lanes have finished. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  The pool remains usable: the
    next {!run} re-spawns them.  Registered with [at_exit] for every
    pool that ever started workers, so programs terminate cleanly. *)
