(* Closable multi-producer/multi-consumer queue: see jobq.mli. *)

type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  (* enqueue timestamp (ns), submitter's trace context, payload *)
  items : (int * Obs.Ctx.t option * 'a) Queue.t;
  mutable closed : bool;
  depth_gauge : Obs.Metrics.gauge;
  wait_timer : Obs.Metrics.timer;
}

let create ?(name = "jobq") () =
  {
    mu = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    closed = false;
    depth_gauge =
      Obs.Metrics.gauge
        ~help:"Items currently enqueued (set on every push and take)"
        (name ^ ".depth");
    wait_timer =
      Obs.Metrics.timer
        ~help:"Time items spent queued before a consumer took them"
        (name ^ ".queue_wait");
  }

let push t x =
  Mutex.lock t.mu;
  if t.closed then begin
    Mutex.unlock t.mu;
    invalid_arg "Jobq.push: queue is closed"
  end;
  Queue.push (Obs.now_ns (), Obs.Ctx.current (), x) t.items;
  Obs.Metrics.set_gauge t.depth_gauge (Queue.length t.items);
  Condition.signal t.nonempty;
  Mutex.unlock t.mu

let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu

let take t =
  Mutex.lock t.mu;
  let rec go () =
    match Queue.take_opt t.items with
    | Some (enqueued_ns, ctx, x) ->
        Obs.Metrics.set_gauge t.depth_gauge (Queue.length t.items);
        Mutex.unlock t.mu;
        let waited = Obs.now_ns () - enqueued_ns in
        Obs.Metrics.record_ns t.wait_timer waited;
        if Obs.enabled () then
          Obs.Ctx.with_ctx ctx (fun () ->
              Obs.instant ~cat:"runtime" "jobq.dequeue"
                ~args:[ ("wait_ns", Obs.Int waited) ]);
        Some (ctx, x)
    | None ->
        if t.closed then begin
          Mutex.unlock t.mu;
          None
        end
        else begin
          Condition.wait t.nonempty t.mu;
          go ()
        end
  in
  go ()

let pop t = Option.map snd (take t)

let length t =
  Mutex.lock t.mu;
  let n = Queue.length t.items in
  Mutex.unlock t.mu;
  n

let drain t f =
  let rec go () =
    match take t with
    | None -> ()
    | Some (None, x) ->
        f x;
        go ()
    | Some ((Some _ as ctx), x) ->
        Obs.Ctx.with_ctx ctx (fun () -> f x);
        go ()
  in
  go ()
