type t = {
  name : string;
  lanes : int;
  mu : Mutex.t;
  work_cv : Condition.t;
  done_cv : Condition.t;
  mutable task : (unit -> unit) option;
  mutable epoch : int; (* bumped once per region; workers wait for a bump *)
  mutable active : int; (* workers still inside the current region *)
  mutable workers : unit Domain.t list;
  mutable stopping : bool;
  mutable in_region : bool; (* reentrancy guard, caller lane only *)
  mutable exn : exn option; (* first failure observed in the region *)
  busy_ns : int array; (* cumulative per-lane busy ns; slot i written only
                          by lane i (caller = 0), read after the region *)
  mutable lane_gauges : Obs.Metrics.gauge array option; (* lazy, per lane *)
}

let create ?(name = "pool") ~domains () =
  let lanes = max 1 domains in
  {
    name;
    lanes;
    mu = Mutex.create ();
    work_cv = Condition.create ();
    done_cv = Condition.create ();
    task = None;
    epoch = 0;
    active = 0;
    workers = [];
    stopping = false;
    in_region = false;
    exn = None;
    busy_ns = Array.make lanes 0;
    lane_gauges = None;
  }

let size t = t.lanes
let name t = t.name
let lane_busy_ns t = Array.copy t.busy_ns

let lane_gauge_of t i =
  let gs =
    match t.lane_gauges with
    | Some gs -> gs
    | None ->
        let gs =
          Array.init t.lanes (fun i ->
              Obs.Metrics.gauge
                ~help:
                  "Cumulative busy nanoseconds of one pool lane (lane 0 = \
                   the calling domain)"
                (Obs.Metrics.labelled "pool.lane_busy_ns"
                   [ ("pool", t.name); ("lane", string_of_int i) ]))
        in
        t.lane_gauges <- Some gs;
        gs
  in
  gs.(i)

let record_exn t e =
  (* called with t.mu held *)
  if t.exn = None then t.exn <- Some e

let worker t ~epoch0 ~lane =
  (* touch the domain-local Obs state so this lane is in the sampler's
     registry from birth, not from its first span *)
  ignore (Obs.now_ns ());
  let seen = ref epoch0 in
  let rec loop () =
    Mutex.lock t.mu;
    while t.epoch = !seen && not t.stopping do
      Condition.wait t.work_cv t.mu
    done;
    if t.stopping then Mutex.unlock t.mu
    else begin
      seen := t.epoch;
      let f = Option.get t.task in
      Mutex.unlock t.mu;
      let metrics = Obs.Metrics.enabled () in
      let t0 = if metrics then Obs.now_ns () else 0 in
      let failure = try f (); None with e -> Some e in
      if metrics then begin
        let dt = Obs.now_ns () - t0 in
        Obs.Metrics.record_ns (Obs.Metrics.timer "pool.lane_busy") dt;
        t.busy_ns.(lane) <- t.busy_ns.(lane) + dt
      end;
      Mutex.lock t.mu;
      (match failure with Some e -> record_exn t e | None -> ());
      t.active <- t.active - 1;
      if t.active = 0 then Condition.broadcast t.done_cv;
      Mutex.unlock t.mu;
      loop ()
    end
  in
  loop ()

let shutdown t =
  Mutex.lock t.mu;
  let ws = t.workers in
  t.workers <- [];
  t.stopping <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.mu;
  List.iter Domain.join ws;
  Mutex.lock t.mu;
  t.stopping <- false;
  Mutex.unlock t.mu

let ensure_started t =
  (* called with t.mu held; spawn the missing workers lazily *)
  let missing = t.lanes - 1 - List.length t.workers in
  if missing > 0 then begin
    if t.workers = [] then at_exit (fun () -> shutdown t);
    let t0 = if Obs.Metrics.enabled () then Obs.now_ns () else 0 in
    let epoch0 = t.epoch in
    for _ = 1 to missing do
      let lane = List.length t.workers + 1 in
      t.workers <- Domain.spawn (fun () -> worker t ~epoch0 ~lane) :: t.workers
    done;
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.add (Obs.Metrics.counter "pool.domains_spawned") missing;
      Obs.Metrics.record_ns (Obs.Metrics.timer "pool.startup")
        (Obs.now_ns () - t0)
    end
  end

let run t f =
  if t.lanes = 1 || t.in_region then f ()
  else begin
    let metrics = Obs.Metrics.enabled () in
    let t0 = if metrics then Obs.now_ns () else 0 in
    Mutex.lock t.mu;
    ensure_started t;
    t.task <- Some f;
    t.active <- t.lanes - 1;
    t.exn <- None;
    t.epoch <- t.epoch + 1;
    t.in_region <- true;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.mu;
    let t1 = if metrics then Obs.now_ns () else 0 in
    let failure = try f (); None with e -> Some e in
    if metrics then begin
      let dt = Obs.now_ns () - t1 in
      Obs.Metrics.record_ns (Obs.Metrics.timer "pool.lane_busy") dt;
      t.busy_ns.(0) <- t.busy_ns.(0) + dt
    end;
    Mutex.lock t.mu;
    (match failure with Some e -> record_exn t e | None -> ());
    while t.active > 0 do
      Condition.wait t.done_cv t.mu
    done;
    t.task <- None;
    t.in_region <- false;
    let e = t.exn in
    t.exn <- None;
    Mutex.unlock t.mu;
    if metrics then begin
      Obs.Metrics.incr (Obs.Metrics.counter "pool.regions");
      Obs.Metrics.record_ns (Obs.Metrics.timer "pool.region")
        (Obs.now_ns () - t0);
      (* Publish the cumulative per-lane busy time after every region;
         scrapers derive utilization from successive deltas. *)
      for i = 0 to t.lanes - 1 do
        Obs.Metrics.set_gauge (lane_gauge_of t i) t.busy_ns.(i)
      done
    end;
    match e with Some e -> raise e | None -> ()
  end

let default_pool = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let domains =
        match Sys.getenv_opt "BLOCKABILITY_DOMAINS" with
        | Some s -> (
            match int_of_string_opt (String.trim s) with
            | Some n when n >= 1 -> n
            | _ -> Domain.recommended_domain_count ())
        | None -> Domain.recommended_domain_count ()
      in
      let p = create ~name:"default" ~domains () in
      default_pool := Some p;
      p
