type t = {
  lanes : int;
  mu : Mutex.t;
  work_cv : Condition.t;
  done_cv : Condition.t;
  mutable task : (unit -> unit) option;
  mutable epoch : int; (* bumped once per region; workers wait for a bump *)
  mutable active : int; (* workers still inside the current region *)
  mutable workers : unit Domain.t list;
  mutable stopping : bool;
  mutable in_region : bool; (* reentrancy guard, caller lane only *)
  mutable exn : exn option; (* first failure observed in the region *)
}

let create ~domains =
  {
    lanes = max 1 domains;
    mu = Mutex.create ();
    work_cv = Condition.create ();
    done_cv = Condition.create ();
    task = None;
    epoch = 0;
    active = 0;
    workers = [];
    stopping = false;
    in_region = false;
    exn = None;
  }

let size t = t.lanes

let record_exn t e =
  (* called with t.mu held *)
  if t.exn = None then t.exn <- Some e

let worker t ~epoch0 =
  let seen = ref epoch0 in
  let rec loop () =
    Mutex.lock t.mu;
    while t.epoch = !seen && not t.stopping do
      Condition.wait t.work_cv t.mu
    done;
    if t.stopping then Mutex.unlock t.mu
    else begin
      seen := t.epoch;
      let f = Option.get t.task in
      Mutex.unlock t.mu;
      let metrics = Obs.Metrics.enabled () in
      let t0 = if metrics then Obs.now_ns () else 0 in
      let failure = try f (); None with e -> Some e in
      if metrics then
        Obs.Metrics.record_ns (Obs.Metrics.timer "pool.lane_busy")
          (Obs.now_ns () - t0);
      Mutex.lock t.mu;
      (match failure with Some e -> record_exn t e | None -> ());
      t.active <- t.active - 1;
      if t.active = 0 then Condition.broadcast t.done_cv;
      Mutex.unlock t.mu;
      loop ()
    end
  in
  loop ()

let shutdown t =
  Mutex.lock t.mu;
  let ws = t.workers in
  t.workers <- [];
  t.stopping <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.mu;
  List.iter Domain.join ws;
  Mutex.lock t.mu;
  t.stopping <- false;
  Mutex.unlock t.mu

let ensure_started t =
  (* called with t.mu held; spawn the missing workers lazily *)
  let missing = t.lanes - 1 - List.length t.workers in
  if missing > 0 then begin
    if t.workers = [] then at_exit (fun () -> shutdown t);
    let t0 = if Obs.Metrics.enabled () then Obs.now_ns () else 0 in
    let epoch0 = t.epoch in
    for _ = 1 to missing do
      t.workers <- Domain.spawn (fun () -> worker t ~epoch0) :: t.workers
    done;
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.add (Obs.Metrics.counter "pool.domains_spawned") missing;
      Obs.Metrics.record_ns (Obs.Metrics.timer "pool.startup")
        (Obs.now_ns () - t0)
    end
  end

let run t f =
  if t.lanes = 1 || t.in_region then f ()
  else begin
    let metrics = Obs.Metrics.enabled () in
    let t0 = if metrics then Obs.now_ns () else 0 in
    Mutex.lock t.mu;
    ensure_started t;
    t.task <- Some f;
    t.active <- t.lanes - 1;
    t.exn <- None;
    t.epoch <- t.epoch + 1;
    t.in_region <- true;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.mu;
    let t1 = if metrics then Obs.now_ns () else 0 in
    let failure = try f (); None with e -> Some e in
    if metrics then
      Obs.Metrics.record_ns (Obs.Metrics.timer "pool.lane_busy")
        (Obs.now_ns () - t1);
    Mutex.lock t.mu;
    (match failure with Some e -> record_exn t e | None -> ());
    while t.active > 0 do
      Condition.wait t.done_cv t.mu
    done;
    t.task <- None;
    t.in_region <- false;
    let e = t.exn in
    t.exn <- None;
    Mutex.unlock t.mu;
    if metrics then begin
      Obs.Metrics.incr (Obs.Metrics.counter "pool.regions");
      Obs.Metrics.record_ns (Obs.Metrics.timer "pool.region")
        (Obs.now_ns () - t0)
    end;
    match e with Some e -> raise e | None -> ()
  end

let default_pool = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let domains =
        match Sys.getenv_opt "BLOCKABILITY_DOMAINS" with
        | Some s -> (
            match int_of_string_opt (String.trim s) with
            | Some n when n >= 1 -> n
            | _ -> Domain.recommended_domain_count ())
        | None -> Domain.recommended_domain_count ()
      in
      let p = create ~domains in
      default_pool := Some p;
      p
