(** Work-sharing parallel loops on top of {!Pool}.

    The iteration range is decomposed into a chunk list computed
    {e deterministically} from the range, the pool size and the policy —
    never from runtime timing — and lanes then claim chunks
    self-scheduled through an atomic cursor.  Because the decomposition
    is fixed and chunks must be independent, results are bitwise
    reproducible run-to-run no matter which lane executes which chunk.

    Chunking policies:

    - [Static]: one contiguous chunk per lane.  Right for rectangular
      iteration spaces where every index costs the same.
    - [Guided]: decreasing chunk sizes, largest first — chunk [i] covers
      roughly [remaining / (2 * lanes)] indices, never fewer than
      [min_chunk].  Right for the triangular spaces that dominate this
      paper (the LU trailing update shrinks as [K] advances): when a
      parallel region is short, equal static chunks make every lane wait
      for the unluckiest one, while guided chunks let fast lanes pick up
      the small tail pieces. *)

type chunking =
  | Static
  | Guided of { min_chunk : int }

val chunks :
  lanes:int -> chunking:chunking -> align:int -> lo:int -> hi:int ->
  (int * int) array
(** The deterministic chunk decomposition of [[lo, hi]] (inclusive):
    contiguous, disjoint, covering, in increasing order.  Every chunk
    start is congruent to [lo] modulo [align] (so unroll-and-jam
    groupings of [align] consecutive iterations fall entirely inside one
    chunk, keeping parallel results bitwise equal to serial ones).
    Exposed for tests. *)

val for_ :
  ?pool:Pool.t -> ?chunking:chunking -> ?align:int ->
  lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [for_ ~lo ~hi f] calls [f clo chi] over chunks of [[lo, hi]], in
    parallel on [pool] (default: {!Pool.default}).  [f] must treat its
    chunks as independent: no chunk may read state another chunk
    writes.  Empty ranges ([hi < lo]) are a no-op; a 1-lane pool or a
    single-chunk decomposition runs [f lo hi] on the calling domain.

    When tracing is on, the caller's {!Obs.Ctx} is re-installed in
    every lane and each chunk runs inside a [par.chunk] child span —
    the fan-out of one request stays one coherent trace across worker
    domains. *)
