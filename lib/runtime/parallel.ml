type chunking =
  | Static
  | Guided of { min_chunk : int }

let chunks ~lanes ~chunking ~align ~lo ~hi =
  let total = hi - lo + 1 in
  if total <= 0 then [||]
  else
    let align = max 1 align in
    let round_up c = (c + align - 1) / align * align in
    match chunking with
    | Static ->
        (* lane boundaries at i*total/lanes, pushed up to alignment *)
        let cut i =
          if i >= lanes then total else min total (round_up (i * total / lanes))
        in
        let cs = ref [] in
        for i = lanes - 1 downto 0 do
          let s = cut i and e = cut (i + 1) in
          if e > s then cs := (lo + s, lo + e - 1) :: !cs
        done;
        Array.of_list !cs
    | Guided { min_chunk } ->
        let min_chunk = max 1 min_chunk in
        let cs = ref [] and start = ref lo in
        while !start <= hi do
          let remaining = hi - !start + 1 in
          let c = max min_chunk (remaining / (2 * lanes)) in
          let c = min (round_up c) remaining in
          cs := (!start, !start + c - 1) :: !cs;
          start := !start + c
        done;
        Array.of_list (List.rev !cs)

let for_ ?pool ?(chunking = Static) ?(align = 1) ~lo ~hi f =
  if hi >= lo then begin
    let pool = match pool with Some p -> p | None -> Pool.default () in
    let lanes = Pool.size pool in
    if lanes = 1 then f lo hi
    else begin
      let cs = chunks ~lanes ~chunking ~align ~lo ~hi in
      let n = Array.length cs in
      if n <= 1 then f lo hi
      else begin
        let metrics = Obs.Metrics.enabled () in
        if metrics then begin
          Obs.Metrics.incr (Obs.Metrics.counter "par.loops");
          Obs.Metrics.add (Obs.Metrics.counter "par.chunks") n;
          let h =
            Obs.Metrics.histogram
              (match chunking with
              | Static -> "par.chunk_size.static"
              | Guided _ -> "par.chunk_size.guided")
          in
          Array.iter (fun (s, e) -> Obs.Metrics.observe h (e - s + 1)) cs
        end;
        (* Capture the caller's trace context and re-install it in every
           lane, so chunk spans executed on worker domains stay children
           of the span that called [for_]. *)
        let ctx = Obs.Ctx.current () in
        let traced = Obs.enabled () in
        let next = Atomic.make 0 in
        Pool.run pool (fun () ->
            Obs.Ctx.with_ctx ctx (fun () ->
                (* Per-lane busy time: accumulate chunk wall-time locally
                   and fold it into a cumulative per-domain gauge once at
                   lane exit, so scrapers can diff utilization without
                   the lane contending on the registry per chunk. *)
                let lane_busy = ref 0 in
                let continue = ref true in
                while !continue do
                  let i = Atomic.fetch_and_add next 1 in
                  if i >= n then continue := false
                  else
                    let s, e = cs.(i) in
                    let body () =
                      if metrics then begin
                        let t0 = Obs.now_ns () in
                        let finish () =
                          let dt = Obs.now_ns () - t0 in
                          Obs.Metrics.record_ns
                            (Obs.Metrics.timer "par.chunk") dt;
                          lane_busy := !lane_busy + dt
                        in
                        match f s e with
                        | () -> finish ()
                        | exception ex ->
                            finish ();
                            raise ex
                      end
                      else f s e
                    in
                    if traced then
                      Obs.span ~cat:"runtime" "par.chunk"
                        ~args:[ ("lo", Obs.Int s); ("hi", Obs.Int e) ]
                        body
                    else body ()
                done;
                if metrics && !lane_busy > 0 then begin
                  let g =
                    Obs.Metrics.gauge
                      ~help:
                        "Cumulative busy nanoseconds of one domain inside \
                         Parallel.for_ chunks"
                      (Obs.Metrics.labelled "par.lane_busy_ns"
                         [
                           ("domain",
                            string_of_int (Domain.self () :> int));
                         ])
                  in
                  Obs.Metrics.set_gauge g
                    (Obs.Metrics.gauge_value g + !lane_busy)
                end))
      end
    end
  end
