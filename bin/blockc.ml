(* blockc — command-line driver for the blockability toolkit.

   Subcommands: list, show, derive, verify, simulate, explain, profile,
   sections, parse, lower, compile, fuzz, serve, stats.  `blockc
   --explain KERNEL` is a shorthand for the explain subcommand.

   Exit convention (uniform across subcommands, see EXIT STATUS in the
   man pages): 0 = success; 1 = the tool ran but the answer is negative
   (derivation refused, verification diverged, lowering failed, the
   fuzzer found a counterexample); 2 = unusable input or invocation
   (unknown kernel or pass name, parse errors, runtime environment
   errors). *)

open Cmdliner

let exits =
  Cmd.Exit.info 0 ~doc:"on success."
  :: Cmd.Exit.info 1
       ~doc:
         "when the tool ran but the answer is negative: derivation refused, \
          verification diverged, lowering failed, or the fuzzer found a \
          counterexample."
  :: Cmd.Exit.info 2
       ~doc:
         "on unusable input or invocation: unknown kernel or pass name, parse \
          errors, or a runtime environment error."
  :: Cmd.Exit.defaults

(* Every kernel-taking command resolves the name itself: an unknown
   kernel must be a clean exit 2 with the catalogue on stderr — not a
   cmdliner usage dump. *)
let kernel_name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL")

let resolve_kernel name =
  match Blockability.find name with
  | Some e -> e
  | None ->
      Printf.eprintf "blockc: unknown kernel '%s'\nknown kernels: %s\n" name
        (String.concat ", " (Blockability.names ()));
      exit 2

let binding_conv =
  let parse s =
    match String.split_on_char '=' s with
    | [ k; v ] -> (
        match int_of_string_opt v with
        | Some n -> Ok (String.uppercase_ascii k, n)
        | None -> Error (`Msg ("bad binding value: " ^ s)))
    | _ -> Error (`Msg ("bindings look like N=300, got " ^ s))
  in
  let print fmt (k, v) = Format.fprintf fmt "%s=%d" k v in
  Arg.conv (parse, print)

let bindings_arg =
  Arg.(
    value
    & opt_all binding_conv []
    & info [ "p"; "param" ] ~docv:"NAME=INT" ~doc:"Problem parameter binding.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload random seed.")

let machine_conv =
  let parse = function
    | "rs6000" -> Ok Arch.rs6000_540
    | "small" -> Ok Arch.small_test
    | "modern" -> Ok Arch.modern_l1
    | s -> Error (`Msg ("unknown machine " ^ s ^ " (rs6000|small|modern)"))
  in
  let print fmt (m : Arch.t) = Format.pp_print_string fmt m.name in
  Arg.conv (parse, print)

let machine_arg =
  Arg.(
    value
    & opt machine_conv Arch.rs6000_540
    & info [ "machine" ] ~doc:"Cache model: rs6000, small, or modern.")

let or_default bindings = if bindings = [] then None else Some bindings

(* ---- tracing flags (shared by the transformation-running commands) ---- *)

let trace_arg =
  Arg.(
    value
    & opt (some (enum [ ("text", "text"); ("json", "json"); ("chrome", "chrome") ])) None
    & info [ "trace" ] ~docv:"FORMAT"
        ~doc:
          "Emit an observability trace: $(b,text) (human-readable lines), \
           $(b,json) (JSON objects, one per line) or $(b,chrome) (Chrome \
           trace_event; load the file in chrome://tracing or Perfetto). \
           Writes to stderr unless $(b,--trace-out) is given; $(b,chrome) \
           requires $(b,--trace-out).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"PATH" ~doc:"Write the trace to $(docv).")

(* Install the requested sink (or honour BLOCKABILITY_TRACE when no flag
   is given).  Returns an [Error] for usage mistakes so callers can turn
   it into a cmdliner usage error. *)
let setup_trace fmt out =
  match (fmt, out) with
  | None, None ->
      Obs.init_from_env ();
      Ok ()
  | None, Some _ -> Error "--trace-out is only meaningful with --trace"
  | Some "chrome", None ->
      Error
        "--trace chrome requires --trace-out PATH (the trace_event document \
         is written whole on exit and cannot stream to stderr)"
  | Some fmt, out -> (
      match
        match out with
        | None -> Ok stderr
        | Some p -> ( try Ok (open_out p) with Sys_error m -> Error m)
      with
      | Error m -> Error ("--trace-out: " ^ m)
      | Ok oc -> (
          match Obs.sink_of_name fmt oc with
          | Error m -> Error m
          | Ok sink ->
              Obs.set_sink sink;
              at_exit Obs.flush;
              Ok ()))

let curated_arg =
  Arg.(
    value & flag
    & info [ "curated-commutativity" ]
        ~doc:
          "Answer commutativity questions from the curated fact table (the \
           paper's syntactic row-swap/column-update matcher) instead of \
           deriving a proof with fractal symbolic analysis.  Fallback for \
           when the prover is too slow or too weak; the default derive path \
           consumes zero curated facts.")

(* Wrap a command body so --trace/--trace-out (and the global
   --curated-commutativity prover switch) are honoured and usage errors
   are reported through cmdliner. *)
let traced run =
  Term.ret
    Term.(
      const (fun fmt out curated k ->
          if curated then Commutativity.use_curated := true;
          match setup_trace fmt out with
          | Error m -> `Error (true, m)
          | Ok () -> `Ok (k ()))
      $ trace_arg $ trace_out_arg $ curated_arg $ run)

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Blockability.entry) ->
        Printf.printf "%-10s %-28s %s\n" e.name e.paper_ref
          e.kernel.Kernel_def.description)
      Blockability.entries
  in
  Cmd.v (Cmd.info "list" ~doc:"List the paper's kernels." ~exits)
    Term.(const run $ const ())

(* ---- show ---- *)

let show_cmd =
  let run name =
    let e = resolve_kernel name in
    print_string
      (Fortran_pp.subroutine ~name:(String.uppercase_ascii e.Blockability.name)
         ~params:e.Blockability.kernel.Kernel_def.params
         e.Blockability.kernel.Kernel_def.block)
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a kernel's point algorithm." ~exits)
    Term.(const run $ kernel_name_arg)

(* ---- derive ---- *)

let derive_cmd =
  let run name () =
    match Blockability.derive (resolve_kernel name) with
    | Error m ->
        prerr_endline ("derivation failed: " ^ m);
        exit 1
    | Ok { Blocker.result; steps } ->
        List.iter
          (fun (s : Blocker.trace_step) ->
            Printf.printf "--- %s: %s\n" s.name s.detail)
          steps;
        print_string (Stmt.to_string result)
  in
  Cmd.v
    (Cmd.info "derive"
       ~doc:"Run the compiler driver on a kernel and print the result." ~exits)
    (traced Term.(const run $ kernel_name_arg))

(* ---- verify ---- *)

let verify_cmd =
  let run name bindings seed () =
    match
      Blockability.verify ?bindings:(or_default bindings) ~seed
        (resolve_kernel name)
    with
    | Ok () -> print_endline "equivalent: transformed kernel matches the point kernel"
    | Error m ->
        prerr_endline m;
        exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Interpret point and transformed kernels and compare memory."
       ~exits)
    (traced Term.(const run $ kernel_name_arg $ bindings_arg $ seed_arg))

(* ---- simulate ---- *)

let print_by_array ~what by_array =
  List.iter
    (fun (name, (s : Cache.stats)) ->
      Printf.printf "  %-11s %-6s accesses %9d  misses %9d  miss-rate %5.2f%%\n"
        what name s.accesses s.misses
        (100.0 *. Cache.miss_ratio s))
    by_array

let simulate_cmd =
  let run name bindings seed machine () =
    let e = resolve_kernel name in
    match
      Blockability.simulate ?bindings:(or_default bindings) ~seed ~machine e
    with
    | Error m ->
        prerr_endline m;
        exit 1
    | Ok r ->
        let pr what (s : Cache.stats) cycles =
          Printf.printf "%-12s accesses %9d  misses %9d  miss-rate %5.2f%%  mem-cycles %10d\n"
            what s.accesses s.misses
            (100.0 *. Cache.miss_ratio s)
            cycles
        in
        Printf.printf "machine: %s\n" machine.Arch.name;
        pr "point" r.point_stats r.point_cycles;
        print_by_array ~what:"point" r.point_by_array;
        pr "transformed" r.transformed_stats r.transformed_cycles;
        print_by_array ~what:"transformed" r.transformed_by_array;
        Printf.printf "memory-cycle speedup: %.2f\n"
          (Cost.speedup ~baseline:r.point_cycles ~optimized:r.transformed_cycles)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Trace both kernels through the cache simulator." ~exits)
    (traced
       Term.(const run $ kernel_name_arg $ bindings_arg $ seed_arg $ machine_arg))

(* ---- explain ---- *)

let value_to_string = function
  | Obs.Str s -> s
  | Obs.Int n -> string_of_int n
  | Obs.Float f -> Printf.sprintf "%g" f
  | Obs.Bool b -> string_of_bool b

let args_suffix = function
  | [] -> ""
  | args ->
      Printf.sprintf " (%s)"
        (String.concat ", "
           (List.map (fun (k, v) -> k ^ "=" ^ value_to_string v) args))

let print_explain_event (ev : Obs.event) =
  let indent = String.make (2 * ev.depth) ' ' in
  match ev.kind with
  | Obs.End -> ()
  | Obs.Begin -> Printf.printf "%s>> %s%s\n" indent ev.name (args_suffix ev.args)
  | Obs.Instant when String.equal ev.cat "decision" ->
      let str k =
        match List.assoc_opt k ev.args with Some (Obs.Str s) -> s | _ -> ""
      in
      let applied =
        match List.assoc_opt "applied" ev.args with
        | Some (Obs.Bool b) -> b
        | _ -> false
      in
      let reason = str "reason" in
      let evidence =
        List.filter
          (fun (k, _) -> not (List.mem k [ "target"; "applied"; "reason" ]))
          ev.args
      in
      Printf.printf "%s%s %s(%s)%s\n" indent
        (if applied then "[applied ]" else "[rejected]")
        ev.name (str "target")
        (if applied && String.equal reason "legal" then ""
         else ": " ^ reason);
      List.iter
        (fun (k, v) ->
          Printf.printf "%s             %s = %s\n" indent k (value_to_string v))
        evidence
  | Obs.Instant ->
      Printf.printf "%s-- %s%s\n" indent ev.name (args_suffix ev.args)

let explain_run e bindings seed machine =
  Printf.printf "kernel: %s (%s)\n%s\n\n" e.Blockability.name
    e.Blockability.paper_ref e.Blockability.kernel.Kernel_def.description;
  (* Collect every event the derivation emits, on top of whatever sink
     --trace / BLOCKABILITY_TRACE installed. *)
  let mem, events = Obs.memory () in
  let prev = Obs.current_sink () in
  Obs.set_sink (if Obs.enabled () then Obs.tee prev mem else mem);
  let result = Blockability.derive e in
  Obs.set_sink prev;
  print_endline "decision trace:";
  List.iter print_explain_event (events ());
  match result with
  | Error m ->
      Printf.printf "\nverdict: NOT BLOCKABLE\n%s\n" m
  | Ok { Blocker.result = stmt; _ } -> (
      Printf.printf "\nverdict: blockable — final block structure:\n\n%s"
        (Stmt.to_string stmt);
      match
        Blockability.simulate ?bindings:(or_default bindings) ~seed ~machine e
      with
      | Error m -> Printf.printf "\ncache report unavailable: %s\n" m
      | Ok r ->
          Printf.printf "\ncache report (machine %s):\n" machine.Arch.name;
          print_by_array ~what:"point" r.point_by_array;
          print_by_array ~what:"transformed" r.transformed_by_array;
          Printf.printf
            "  total       point misses %d -> transformed misses %d  \
             (memory-cycle speedup %.2f)\n"
            r.point_stats.misses r.transformed_stats.misses
            (Cost.speedup ~baseline:r.point_cycles
               ~optimized:r.transformed_cycles))

let explain_cmd =
  let run name bindings seed machine () =
    explain_run (resolve_kernel name) bindings seed machine
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Replay the compiler driver with decision tracing on and print \
          why each transformation was applied or rejected, the final \
          block structure, and a per-array cache report."
       ~exits)
    (traced
       Term.(const run $ kernel_name_arg $ bindings_arg $ seed_arg $ machine_arg))

(* ---- profile ---- *)

let sweep_conv =
  let parse s =
    match String.index_opt s '.' with
    | Some i
      when i + 1 < String.length s
           && s.[i + 1] = '.'
           && i > 0
           && i + 2 < String.length s -> (
        let lo = String.sub s 0 i
        and hi = String.sub s (i + 2) (String.length s - i - 2) in
        match (int_of_string_opt lo, int_of_string_opt hi) with
        | Some lo, Some hi when lo >= 1 && hi >= lo -> Ok (lo, hi)
        | _ -> Error (`Msg ("bad sweep range: " ^ s)))
    | _ -> Error (`Msg ("sweeps look like 4..64, got " ^ s))
  in
  let print fmt (lo, hi) = Format.fprintf fmt "%d..%d" lo hi in
  Arg.conv (parse, print)

let sweep_arg =
  Arg.(
    value
    & opt (some sweep_conv) None
    & info [ "sweep" ] ~docv:"B1..B2"
        ~doc:
          "Profile the transformed kernel at every power-of-two block \
           size in [B1, B2] and report the sweep (kernels with a KS \
           block-size parameter only).")

let block_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "block" ] ~docv:"B" ~doc:"Override the kernel's block size (KS).")

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the whole profile as JSON on stdout.")

let sweep_blocks (lo, hi) =
  let rec go acc b = if b > hi then List.rev acc else go (b :: acc) (b * 2) in
  go [] lo

(* Render helpers ---------------------------------------------------- *)

let pct num den =
  if den = 0 then "-" else Printf.sprintf "%.2f%%" (100.0 *. float_of_int num /. float_of_int den)

let kind_str = function Ir_util.Read -> "read" | Ir_util.Write -> "write"

let nest_str (site : Exec.ref_site) =
  match site.Exec.ref_loops with [] -> "(top)" | l -> String.concat ">" l

let level_table (kp : Blockability.kernel_profile) =
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "%s %s: per-level hierarchy stats" kp.kp_kernel
           kp.kp_variant)
      [
        ("Level", Table.Left); ("Accesses", Table.Right); ("Misses", Table.Right);
        ("Miss%", Table.Right); ("Evict", Table.Right); ("Cold", Table.Right);
        ("Capacity", Table.Right); ("Conflict", Table.Right);
      ]
  in
  List.iter
    (fun (name, (s : Cache.stats)) ->
      Table.add_row tbl
        [
          name; string_of_int s.accesses; string_of_int s.misses;
          pct s.misses s.accesses; string_of_int s.evictions;
          string_of_int s.cold_misses; string_of_int s.capacity_misses;
          string_of_int s.conflict_misses;
        ])
    (kp.kp_levels @ [ ("TLB", kp.kp_tlb) ]);
  tbl

let ref_table (kp : Blockability.kernel_profile) =
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "%s %s: per-reference miss attribution" kp.kp_kernel
           kp.kp_variant)
      [
        ("Id", Table.Right); ("Ref", Table.Left); ("Kind", Table.Left);
        ("Nest", Table.Left); ("Accesses", Table.Right); ("L1miss", Table.Right);
        ("L2miss", Table.Right); ("Mem", Table.Right); ("TLBmiss", Table.Right);
        ("Cold", Table.Right); ("Cap", Table.Right); ("Conf", Table.Right);
      ]
  in
  List.iter
    (fun (r : Trace.ref_profile) ->
      let c = r.counts in
      if c.Trace.c_accesses > 0 then
        Table.add_row tbl
          [
            string_of_int r.site.Exec.ref_id; r.site.Exec.ref_text;
            kind_str r.site.Exec.ref_kind; nest_str r.site;
            string_of_int c.Trace.c_accesses; string_of_int c.Trace.c_l1_misses;
            string_of_int c.Trace.c_l2_misses; string_of_int c.Trace.c_mem;
            string_of_int c.Trace.c_tlb_misses; string_of_int c.Trace.c_cold;
            string_of_int c.Trace.c_capacity; string_of_int c.Trace.c_conflict;
          ])
    kp.kp_refs;
  tbl

let loop_table (kp : Blockability.kernel_profile) =
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "%s %s: per-loop-nest rollup" kp.kp_kernel kp.kp_variant)
      [
        ("Nest", Table.Left); ("Accesses", Table.Right); ("L1miss", Table.Right);
        ("L1miss%", Table.Right); ("L2miss", Table.Right); ("TLBmiss", Table.Right);
      ]
  in
  List.iter
    (fun (nest, (c : Trace.ref_counts)) ->
      if c.Trace.c_accesses > 0 then
        Table.add_row tbl
          [
            nest; string_of_int c.Trace.c_accesses;
            string_of_int c.Trace.c_l1_misses;
            pct c.Trace.c_l1_misses c.Trace.c_accesses;
            string_of_int c.Trace.c_l2_misses;
            string_of_int c.Trace.c_tlb_misses;
          ])
    kp.kp_loops;
  tbl

(* Reuse-distance histogram, log2-bucketed with ASCII bars. *)
let print_histogram (kp : Blockability.kernel_profile) =
  Printf.printf
    "reuse-distance histogram (%s %s; distances in L1 lines; cold = %d, \
     footprint = %d lines):\n"
    kp.kp_kernel kp.kp_variant kp.kp_cold kp.kp_footprint_lines;
  let bucket_of d = if d <= 0 then 0 else
      let rec go b n = if d < n then b else go (b + 1) (n * 2) in
      go 1 2
  in
  let buckets = Hashtbl.create 16 in
  List.iter
    (fun (d, n) ->
      let b = bucket_of d in
      Hashtbl.replace buckets b ((try Hashtbl.find buckets b with Not_found -> 0) + n))
    kp.kp_hist;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) buckets [] |> List.sort Int.compare in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 kp.kp_hist in
  List.iter
    (fun b ->
      let n = Hashtbl.find buckets b in
      let lo = if b = 0 then 0 else 1 lsl (b - 1) in
      let hi = (1 lsl b) - 1 in
      let label =
        if b = 0 then "0" else if lo = hi then string_of_int lo
        else Printf.sprintf "%d-%d" lo hi
      in
      let bar = String.make (max 1 (60 * n / max 1 total)) '#' in
      Printf.printf "  %12s %9d %s\n" label n bar)
    keys;
  if keys = [] then print_string "  (no reuses recorded)\n"

let print_validation (kp : Blockability.kernel_profile) =
  let v = kp.kp_validation in
  Printf.printf
    "model validation (%s %s): predicted L1 misses %d (stack-distance), \
     simulated %d, divergence %.2f%% (miss-ratio gap %.3f points)\n"
    kp.kp_kernel kp.kp_variant v.Cost.v_predicted v.Cost.v_simulated
    (100.0 *. v.Cost.v_divergence)
    (100.0 *. v.Cost.v_ratio_gap)

(* JSON emission ----------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)
let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"
let jarr items = "[" ^ String.concat "," items ^ "]"

let json_of_stats (s : Cache.stats) =
  jobj
    [
      ("accesses", string_of_int s.accesses); ("hits", string_of_int s.hits);
      ("misses", string_of_int s.misses);
      ("evictions", string_of_int s.evictions);
      ("cold_misses", string_of_int s.cold_misses);
      ("capacity_misses", string_of_int s.capacity_misses);
      ("conflict_misses", string_of_int s.conflict_misses);
    ]

let json_of_counts (c : Trace.ref_counts) =
  [
    ("accesses", string_of_int c.Trace.c_accesses);
    ("l1_misses", string_of_int c.Trace.c_l1_misses);
    ("l2_misses", string_of_int c.Trace.c_l2_misses);
    ("mem", string_of_int c.Trace.c_mem);
    ("tlb_misses", string_of_int c.Trace.c_tlb_misses);
    ("cold", string_of_int c.Trace.c_cold);
    ("capacity", string_of_int c.Trace.c_capacity);
    ("conflict", string_of_int c.Trace.c_conflict);
  ]

let json_of_profile (kp : Blockability.kernel_profile) =
  jobj
    ([
       ("variant", jstr kp.kp_variant);
       ( "block",
         match kp.kp_block with Some b -> string_of_int b | None -> "null" );
       ( "levels",
         jarr
           (List.map
              (fun (name, s) -> jobj [ ("name", jstr name); ("stats", json_of_stats s) ])
              kp.kp_levels) );
       ("tlb", json_of_stats kp.kp_tlb);
       ("cycles", string_of_int kp.kp_cycles);
       ( "refs",
         jarr
           (List.filter_map
              (fun (r : Trace.ref_profile) ->
                if r.counts.Trace.c_accesses = 0 then None
                else
                  Some
                    (jobj
                       ([
                          ("id", string_of_int r.site.Exec.ref_id);
                          ("ref", jstr r.site.Exec.ref_text);
                          ("kind", jstr (kind_str r.site.Exec.ref_kind));
                          ("nest", jstr (nest_str r.site));
                        ]
                       @ json_of_counts r.counts)))
              kp.kp_refs) );
       ( "loops",
         jarr
           (List.filter_map
              (fun (nest, c) ->
                if c.Trace.c_accesses = 0 then None
                else Some (jobj (("nest", jstr nest) :: json_of_counts c)))
              kp.kp_loops) );
       ( "reuse",
         jobj
           [
             ("cold", string_of_int kp.kp_cold);
             ("footprint_lines", string_of_int kp.kp_footprint_lines);
             ( "histogram",
               jarr
                 (List.map
                    (fun (d, n) -> jarr [ string_of_int d; string_of_int n ])
                    kp.kp_hist) );
             ( "miss_curve",
               jarr
                 (List.map
                    (fun (l, m) -> jarr [ string_of_int l; string_of_int m ])
                    kp.kp_miss_curve) );
           ] );
       ( "validation",
         let v = kp.kp_validation in
         jobj
           [
             ("predicted_misses", string_of_int v.Cost.v_predicted);
             ("simulated_misses", string_of_int v.Cost.v_simulated);
             ("divergence", Printf.sprintf "%.6f" v.Cost.v_divergence);
             ("miss_ratio_gap", Printf.sprintf "%.6f" v.Cost.v_ratio_gap);
           ] );
     ])

let l1_misses (kp : Blockability.kernel_profile) =
  (snd (List.hd kp.kp_levels)).Cache.misses

let print_profile kp =
  Table.print (level_table kp);
  Table.print (ref_table kp);
  Table.print (loop_table kp);
  print_histogram kp;
  print_validation kp;
  Printf.printf "memory cycles (per-level model): %d\n\n" kp.kp_cycles

let profile_cmd =
  let run name bindings seed machine block sweep json () =
    let e = resolve_kernel name in
    let bindings = or_default bindings in
    let fail m =
      prerr_endline ("blockc profile: " ^ m);
      exit 1
    in
    let point, transformed =
      match Blockability.profile ?bindings ~seed ~machine ?block e with
      | Ok r -> r
      | Error m -> fail m
    in
    let sweep_results =
      match sweep with
      | None -> []
      | Some range -> (
          match
            Blockability.profile_sweep ?bindings ~seed ~machine
              ~blocks:(sweep_blocks range) e
          with
          | Ok r -> r
          | Error m -> fail m)
    in
    if json then
      print_endline
        (jobj
           ([
              ("kernel", jstr e.Blockability.name);
              ("machine", jstr machine.Arch.name);
              ("point", json_of_profile point);
              ("transformed", json_of_profile transformed);
            ]
           @
           if sweep_results = [] then []
           else
             [
               ( "sweep",
                 jarr (List.map (fun (_, kp) -> json_of_profile kp) sweep_results)
               );
               ( "recommended_block",
                 string_of_int
                   (Blocker.choose_block_size ~machine
                      ~sweep:
                        (List.map (fun (b, kp) -> (b, l1_misses kp)) sweep_results)
                      ()) );
             ]))
    else begin
      Printf.printf "kernel: %s (%s)\nmachine: %s\n\n" e.Blockability.name
        e.Blockability.paper_ref machine.Arch.name;
      print_profile point;
      print_profile transformed;
      Printf.printf
        "point -> transformed: L1 misses %d -> %d, memory cycles %d -> %d \
         (speedup %.2f)\n"
        (l1_misses point) (l1_misses transformed) point.kp_cycles
        transformed.kp_cycles
        (Cost.speedup ~baseline:point.kp_cycles ~optimized:transformed.kp_cycles);
      if sweep_results <> [] then begin
        let tbl =
          Table.create ~title:"Block-size sweep (transformed variant)"
            [
              ("Block", Table.Right); ("L1miss", Table.Right);
              ("L2miss", Table.Right); ("Cycles", Table.Right);
              ("Predicted", Table.Right); ("Divergence", Table.Right);
            ]
        in
        List.iter
          (fun (b, (kp : Blockability.kernel_profile)) ->
            let l2 =
              match kp.kp_levels with
              | _ :: (_, (s : Cache.stats)) :: _ -> s.misses
              | _ -> 0
            in
            Table.add_row tbl
              [
                string_of_int b; string_of_int (l1_misses kp); string_of_int l2;
                string_of_int kp.kp_cycles;
                string_of_int kp.kp_validation.Cost.v_predicted;
                Printf.sprintf "%.2f%%" (100.0 *. kp.kp_validation.Cost.v_divergence);
              ])
          sweep_results;
        Table.print tbl;
        let chosen =
          Blocker.choose_block_size ~machine
            ~sweep:(List.map (fun (b, kp) -> (b, l1_misses kp)) sweep_results)
            ()
        in
        Printf.printf
          "recommended block size: %d (sweep minimum; footprint heuristic \
           says %d)\n"
          chosen
          (Arch.block_size machine ())
      end
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile a kernel through the multi-level memory hierarchy \
          (L1/L2/TLB): per-reference and per-loop-nest miss attribution, \
          exact reuse-distance histograms, miss-vs-cache-size curves and \
          the cost-model validation (stack-distance prediction vs \
          simulation).  $(b,--sweep B1..B2) additionally profiles every \
          power-of-two block size in the range and recommends one."
       ~exits)
    (traced
       Term.(
         const run $ kernel_name_arg $ bindings_arg $ seed_arg $ machine_arg
         $ block_arg $ sweep_arg $ json_flag))

(* ---- sections ---- *)

let sections_cmd =
  let run name =
    let block = (resolve_kernel name).Blockability.kernel.Kernel_def.block in
    let loops = List.map snd (Stmt.find_loops block) in
    let ctx =
      List.fold_left Symbolic.assume_pos
        (Symbolic.of_loop_context loops)
        (Ir_util.symbolic_params block)
    in
    List.iter
      (fun (a : Ir_util.access) ->
        if a.space = Ir_util.Float_data && a.subs <> [] then
          let kind = match a.kind with Ir_util.Write -> "write" | _ -> "read " in
          match Section.of_access ~ctx ~within:a.loops a with
          | Some s ->
              Printf.printf "%s %s(%s)  =>  %s\n" kind a.array
                (String.concat ", " (List.map Expr.to_string a.subs))
                (Section.to_string s)
          | None ->
              Printf.printf "%s %s(%s)  =>  (not affine)\n" kind a.array
                (String.concat ", " (List.map Expr.to_string a.subs)))
      (Ir_util.accesses block)
  in
  Cmd.v
    (Cmd.info "sections"
       ~doc:"Print the array section of every reference in a kernel." ~exits)
    Term.(const run $ kernel_name_arg)

(* ---- parse / lower ---- *)

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_cmd =
  let run path =
    match Parser.program (read_file path) with
    | prog -> List.iter (fun s -> print_string (Ext.to_string s)) prog
    | exception Parser.Parse_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" path line message;
        exit 2
    | exception Lexer.Lex_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" path line message;
        exit 2
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse a mini-Fortran file and echo the program."
       ~exits)
    Term.(const run $ file_arg)

let lower_cmd =
  let block_arg =
    Arg.(value & opt (some int) None & info [ "block-size" ] ~doc:"Override the block size.")
  in
  let run path machine block_size =
    match Parser.program (read_file path) with
    | exception Parser.Parse_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" path line message;
        exit 2
    | exception Lexer.Lex_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" path line message;
        exit 2
    | prog ->
        List.iter
          (fun s ->
            match Lower.lower ?block_size ~machine s with
            | Ok stmt -> print_string (Stmt.to_string stmt)
            | Error m ->
                prerr_endline m;
                exit 1)
          prog
  in
  Cmd.v
    (Cmd.info "lower"
       ~doc:"Lower BLOCK DO / IN DO extensions, choosing the block size."
       ~exits)
    Term.(const run $ file_arg $ machine_arg $ block_arg)

(* ---- compile ---- *)

let json_of_native (r : Blockability.native_result) =
  jobj
    [
      ("backend", jstr r.nt_backend);
      ("point_s", Printf.sprintf "%.6f" r.nt_point_s);
      ("transformed_s", Printf.sprintf "%.6f" r.nt_transformed_s);
      ("speedup", Printf.sprintf "%.4f" r.nt_speedup);
      ("point_cached", string_of_bool r.nt_point_cached);
      ("transformed_cached", string_of_bool r.nt_transformed_cached);
      ( "model_speedup",
        match r.nt_model_speedup with
        | None -> "null"
        | Some x -> Printf.sprintf "%.4f" x );
      ( "bindings",
        jobj (List.map (fun (k, v) -> (k, string_of_int v)) r.nt_bindings) );
      ( "verify_bindings",
        jobj
          (List.map (fun (k, v) -> (k, string_of_int v)) r.nt_verify_bindings)
      );
    ]

let print_native (r : Blockability.native_result) =
  let show bs =
    String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) bs)
  in
  Printf.printf
    "verified: both variants bitwise equal to the interpreter (%s) [%s \
     backend]\n"
    (show r.nt_verify_bindings) r.nt_backend;
  Printf.printf "timed at: %s (best of reps)\n" (show r.nt_bindings);
  let cached c = if c then "  [jit cache hit]" else "  [compiled]" in
  Printf.printf "point:       %10.6f s%s\n" r.nt_point_s
    (cached r.nt_point_cached);
  Printf.printf "transformed: %10.6f s%s\n" r.nt_transformed_s
    (cached r.nt_transformed_cached);
  Printf.printf "speedup: %.2fx%s\n" r.nt_speedup
    (match r.nt_model_speedup with
    | None -> ""
    | Some m -> Printf.sprintf "  (cache model predicts %.2fx)" m)

let backend_arg =
  Arg.(
    value
    & opt (enum [ ("ocaml", "ocaml"); ("c", "c") ]) "ocaml"
    & info [ "backend" ] ~docv:"B"
        ~doc:
          "Native substrate: $(b,ocaml) (emitted OCaml, ocamlopt, Dynlink) \
           or $(b,c) (emitted C99, system cc, dlopen).  Both share the \
           blueprint cache and must agree bitwise with the interpreter.")

let resolve_backend tag =
  match Backend.of_tag tag with
  | Some b -> b
  | None ->
      Printf.eprintf "blockc: unknown backend '%s' (expected one of: %s)\n" tag
        (String.concat ", " Backend.names);
      exit 2

let compile_cmd =
  let emit_arg =
    Arg.(
      value
      & opt (some (enum [ ("ocaml", `Ocaml); ("c", `C) ])) None
      & info [ "emit" ] ~docv:"LANG"
          ~doc:
            "Print the generated source ($(b,ocaml) or $(b,c)) instead of \
             compiling it.")
  in
  let variant_arg =
    Arg.(
      value
      & opt (enum [ ("point", `Point); ("transformed", `Transformed) ]) `Point
      & info [ "variant" ] ~docv:"V"
          ~doc:
            "Which variant to emit or compile when not using $(b,--run): \
             $(b,point) or $(b,transformed).")
  in
  let run_flag =
    Arg.(
      value & flag
      & info [ "run" ]
          ~doc:
            "Compile both variants, check each is bitwise equal to the \
             interpreter, then time them and report the native speedup \
             next to the cache model's prediction.")
  in
  let flame_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flame" ] ~docv:"PATH"
          ~doc:
            "Run the span-stack sampler for the duration of the command \
             (rate from $(b,BLOCKC_PROFILE_HZ), default 97 Hz) and write \
             the folded-stack profile — flamegraph.pl / speedscope input \
             — to $(docv) ($(b,-) for stdout).")
  in
  let run name emit variant do_run backend bindings seed block json flame () =
    let finish_flame =
      match flame with
      | None -> fun () -> ()
      | Some path ->
          Obs.Sampler.start ();
          fun () ->
            Obs.Sampler.stop ();
            let text = Obs.Sampler.folded_text () in
            if path = "-" then print_string text
            else begin
              let oc = open_out path in
              output_string oc text;
              close_out oc;
              Printf.eprintf
                "blockc compile: wrote %d folded stack(s) (%d samples at \
                 %g Hz) to %s\n"
                (List.length (Obs.Sampler.folded ()))
                (Obs.Sampler.samples ()) (Obs.Sampler.hz ()) path
            end
    in
    Fun.protect ~finally:finish_flame @@ fun () ->
    let e = resolve_kernel name in
    let backend = resolve_backend backend in
    let module B = (val backend : Backend.S) in
    let backend_or_exit () =
      match B.available () with
      | Ok () -> ()
      | Error m ->
          Printf.eprintf "blockc compile: %s\n" m;
          exit 2
    in
    if do_run then begin
      backend_or_exit ();
      match
        Blockability.native_compare ~backend ?bindings:(or_default bindings)
          ~seed ?block e
      with
      | Error m ->
          prerr_endline ("blockc compile: " ^ m);
          exit 1
      | Ok r -> if json then print_endline (json_of_native r) else print_native r
    end
    else
      let block_stmts, jname =
        match variant with
        | `Point ->
            (e.Blockability.kernel.Kernel_def.block, e.Blockability.name ^ "_point")
        | `Transformed -> (
            match Blockability.derive e with
            | Ok { Blocker.result; _ } ->
                ([ result ], e.Blockability.name ^ "_transformed")
            | Error m ->
                Printf.eprintf "blockc compile: derivation failed: %s\n" m;
                exit 1)
      in
      let shapes = e.Blockability.kernel.Kernel_def.shapes in
      match emit with
      | Some `Ocaml -> (
          match Jit.emit ~shapes ~name:jname block_stmts with
          | Error m ->
              prerr_endline ("blockc compile: " ^ m);
              exit 1
          | Ok src -> print_string src)
      | Some `C -> (
          match Emit_c.source ~shapes ~name:jname block_stmts with
          | Error m ->
              prerr_endline ("blockc compile: " ^ m);
              exit 1
          | Ok src -> print_string src)
      | None -> (
          backend_or_exit ();
          let bp = Blueprint.of_block ~shapes block_stmts in
          match B.compile_blueprint ~name:jname bp with
          | Error m ->
              prerr_endline ("blockc compile: " ^ m);
              exit 1
          | Ok c ->
              let disposition =
                Jit.disposition_name c.Backend.bk_disposition
              in
              if json then
                print_endline
                  (jobj
                     [
                       ("kernel", jstr e.Blockability.name);
                       ("variant", jstr jname);
                       ("backend", jstr c.Backend.bk_tag);
                       ("blueprint", jstr bp.Blueprint.key);
                       ("key", jstr c.Backend.bk_key);
                       ("disposition", jstr disposition);
                       ("compile_s", Printf.sprintf "%.6f" c.Backend.bk_compile_s);
                       ("artifact", jstr c.Backend.bk_artifact);
                       ("cmxs", jstr c.Backend.bk_artifact);
                       ("cached", string_of_bool c.Backend.bk_cached);
                       ( "vec_remarks",
                         jarr (List.map jstr c.Backend.bk_remarks) );
                     ])
              else
                Printf.printf "compiled %s -> %s (blueprint %s, %s, %.3fs)\n"
                  jname c.Backend.bk_artifact
                  (String.sub bp.Blueprint.key 0 12)
                  disposition c.Backend.bk_compile_s)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Lower a kernel to native code: emit source ($(b,--emit ocaml) or \
          $(b,--emit c)), compile and cache the artifact on the selected \
          $(b,--backend), or with $(b,--run) verify both variants bitwise \
          against the interpreter and time them."
       ~exits)
    (traced
       Term.(
         const run $ kernel_name_arg $ emit_arg $ variant_arg $ run_flag
         $ backend_arg $ bindings_arg $ seed_arg $ block_arg $ json_flag
         $ flame_arg))

(* ---- fuzz ---- *)

let json_of_fuzz (s : Fuzz.summary) =
  jobj
    [
      ("iters", string_of_int s.iters);
      ("seed", string_of_int s.seed);
      ("programs", string_of_int s.programs);
      ( "depth_counts",
        jarr (Array.to_list (Array.map string_of_int s.depth_counts)) );
      ( "coverage",
        jobj
          [
            ("rect", string_of_int s.rect);
            ("triangular", string_of_int s.triangular);
            ("trapezoidal", string_of_int s.trapezoidal);
            ("guarded", string_of_int s.guarded);
          ] );
      ( "oracle",
        jobj
          [
            ("checked", string_of_int s.oracle_checked);
            ("violations", string_of_int s.oracle_violations);
          ] );
      ("reparsed", string_of_int s.reparsed);
      ( "native",
        jobj
          [
            ("checked", string_of_int s.native_checked);
            ("c_checked", string_of_int s.native_c_checked);
            ("divergences", string_of_int s.native_divergences);
            ("blueprints", string_of_int s.native_blueprints);
            ("blueprint_reuses", string_of_int s.native_blueprint_reuses);
          ] );
      ( "passes",
        jarr
          (List.map
             (fun (p : Fuzz.pass_stat) ->
               jobj
                 [
                   ("name", jstr p.ps_name);
                   ("applied", string_of_int p.ps_applied);
                   ("rejected", string_of_int p.ps_rejected);
                   ("diverged", string_of_int p.ps_diverged);
                 ])
             s.passes) );
      ("failures", jarr (List.map jstr s.failures));
      ("ok", if Fuzz.ok s then "true" else "false");
    ]

let print_fuzz (s : Fuzz.summary) =
  Printf.printf
    "fuzz: %d programs (seed %d, %d requested)\n\
     nest depth 1/2/3: %d/%d/%d\n\
     coverage: rectangular %d  triangular %d  trapezoidal %d  guarded %d\n\
     oracle cross-checks: %d (violations %d)  reparse checks: %d\n"
    s.programs s.seed s.iters s.depth_counts.(0) s.depth_counts.(1)
    s.depth_counts.(2) s.rect s.triangular s.trapezoidal s.guarded
    s.oracle_checked s.oracle_violations s.reparsed;
  if s.native_checked > 0 || s.native_divergences > 0 then
    Printf.printf
      "native cross-checks: %d%s (divergences %d, %d blueprints, %d reused)\n"
      s.native_checked
      (if s.native_c_checked > 0 then
         Printf.sprintf " [three-way, %d through the C backend]"
           s.native_c_checked
       else "")
      s.native_divergences s.native_blueprints s.native_blueprint_reuses;
  let tbl =
    Table.create ~title:"Per-pass differential results"
      [
        ("Pass", Table.Left); ("Applied", Table.Right);
        ("Rejected", Table.Right); ("Diverged", Table.Right);
      ]
  in
  List.iter
    (fun (p : Fuzz.pass_stat) ->
      Table.add_row tbl
        [
          p.ps_name; string_of_int p.ps_applied; string_of_int p.ps_rejected;
          string_of_int p.ps_diverged;
        ])
    s.passes;
  Table.print tbl;
  match s.failures with
  | [] -> Printf.printf "result: OK — no divergences, no oracle violations\n"
  | fs ->
      Printf.printf "result: FAIL — %d counterexample(s); replay with --seed %d\n"
        (List.length fs) s.seed;
      List.iteri (fun i f -> Printf.printf "\n--- counterexample %d ---\n%s\n" (i + 1) f) fs

let fuzz_cmd =
  let iters_arg =
    Arg.(
      value & opt int 200
      & info [ "iters" ] ~docv:"N" ~doc:"Number of programs to generate.")
  in
  let only_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"PASS"
          ~doc:
            "Run a single check: a transformation pass name, $(b,oracle), or \
             $(b,reparse).")
  in
  let native_flag =
    Arg.(
      value & flag
      & info [ "native" ]
          ~doc:
            "Also JIT-compile every generated program to native code and \
             check it bitwise against the interpreter (requires the \
             $(b,ocamlopt) toolchain; budget ~100ms per program on a cold \
             cache).")
  in
  let run iters seed only native backend json () =
    ignore (resolve_backend backend);
    (match only with
    | Some o when not (List.mem o Fuzz.pass_names) ->
        Printf.eprintf "blockc: unknown pass '%s'\nknown passes: %s\n" o
          (String.concat ", " Fuzz.pass_names);
        exit 2
    | _ -> ());
    match Fuzz.run ?only ~native ~backend ~iters ~seed () with
    | Error m ->
        Printf.eprintf "blockc fuzz: %s\n" m;
        exit 2
    | Ok s ->
        if json then print_endline (json_of_fuzz s) else print_fuzz s;
        if not (Fuzz.ok s) then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential-test the transformation catalogue on random loop \
          nests: every legal application must leave the interpreter's \
          result bitwise unchanged, and the dependence analysis must stay \
          conservative against a brute-force oracle.  With $(b,--native \
          --backend c), every program additionally runs through both the \
          OCaml plugin and the dlopen'd C object — a three-way bitwise \
          differential against the interpreter.  A non-empty failure list \
          exits 1 and prints shrunk, replayable counterexamples."
       ~exits)
    (traced
       Term.(
         const run $ iters_arg $ seed_arg $ only_arg $ native_flag
         $ backend_arg $ json_flag))

(* ---- serve ---- *)

let serve_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) instead of serving \
             stdin/stdout; connections are served until a client sends \
             $(b,shutdown).")
  in
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:"Request-handling worker domains (default 2).")
  in
  let run socket workers () =
    (match Jit.available () with
    | Ok () -> ()
    | Error m ->
        Printf.eprintf "blockc serve: %s\n" m;
        exit 2);
    match socket with
    | None -> Serve.run_stdio ~workers ()
    | Some path -> (
        (* a live daemon on the path is refused with Failure *)
        try Serve.run_socket ~workers path
        with Failure m ->
          Printf.eprintf "blockc serve: %s\n" m;
          exit 2)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the batched compile/execute request server: newline-delimited \
          JSON requests ($(b,ping), $(b,derive), $(b,compile), $(b,execute), \
          $(b,batch), $(b,profile), $(b,status), $(b,shutdown)) over \
          stdin/stdout or a Unix socket, distributed across a domain pool \
          and sharing one blueprint-keyed JIT cache."
       ~exits)
    (traced Term.(const run $ socket_arg $ workers_arg))

(* ---- stats: scrape a serve daemon's telemetry over its socket ---- *)

let stats_exchange path line =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect sock (Unix.ADDR_UNIX path) with
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))
  | () ->
      Fun.protect
        ~finally:(fun () ->
          try Unix.close sock with Unix.Unix_error _ -> ())
        (fun () ->
          let oc = Unix.out_channel_of_descr sock in
          output_string oc line;
          output_char oc '\n';
          flush oc;
          let ic = Unix.in_channel_of_descr sock in
          match input_line ic with
          | resp -> Ok resp
          | exception End_of_file ->
              Error "connection closed before a response arrived")

let jfield name = function
  | Json_min.Object kvs -> List.assoc_opt name kvs
  | _ -> None

let render_metrics resp =
  match jfield "metrics" resp with
  | Some (Json_min.String s) -> Ok s
  | _ -> Error "response has no \"metrics\" field"

let render_flame resp =
  match jfield "folded" resp with
  | Some (Json_min.String s) -> Ok s
  | _ -> Error "response has no \"folded\" field"

(* One flight-recorder event per line: timestamp, kind, track, name and
   the trace ids — the human-readable view of the [dump] op. *)
let render_dump resp =
  match jfield "events" resp with
  | Some (Json_min.Array evs) ->
      let b = Buffer.create 1024 in
      (match (jfield "n" resp, jfield "capacity" resp) with
      | Some (Json_min.Number n), Some (Json_min.Number cap) ->
          Buffer.add_string b
            (Printf.sprintf "# flight recorder: %d of %d slots\n"
               (int_of_float n) (int_of_float cap))
      | _ -> ());
      List.iter
        (fun ev ->
          let str k =
            match jfield k ev with Some (Json_min.String s) -> s | _ -> "?"
          in
          let num k =
            match jfield k ev with
            | Some (Json_min.Number x) -> int_of_float x
            | _ -> 0
          in
          Buffer.add_string b
            (Printf.sprintf "%s %-2s t%d %-11s %s" (str "ts") (str "kind")
               (num "track") (str "cat") (str "name"));
          (match jfield "trace" ev with
          | Some (Json_min.String t) ->
              Buffer.add_string b (Printf.sprintf " trace=%s" t)
          | _ -> ());
          (match jfield "args" ev with
          | Some (Json_min.Object kvs) when kvs <> [] ->
              Buffer.add_string b
                (" " ^ Json_min.to_string (Json_min.Object kvs))
          | _ -> ());
          Buffer.add_char b '\n')
        evs;
      Ok (Buffer.contents b)
  | _ -> Error "response has no \"events\" field"

let stats_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Unix-domain socket of the $(b,blockc serve --socket) daemon to \
             scrape (required: the stdio daemon owns its only channel).")
  in
  let watch_arg =
    Arg.(
      value
      & opt ~vopt:(Some 2.0) (some float) None
      & info [ "watch" ] ~docv:"SECS"
          ~doc:
            "Re-scrape and re-print every $(docv) seconds (default 2.0) \
             until interrupted, instead of printing once.")
  in
  let dump_arg =
    Arg.(
      value & flag
      & info [ "dump" ]
          ~doc:
            "Flush the daemon's flight recorder (the $(b,dump) op) instead \
             of the metrics exposition.")
  in
  let flame_arg =
    Arg.(
      value & flag
      & info [ "flame" ]
          ~doc:
            "Fetch the daemon's folded-stack profile (the $(b,flame) op — \
             starts the span-stack sampler on first use) instead of the \
             metrics exposition; the output feeds flamegraph.pl or \
             speedscope directly.")
  in
  let run socket watch dump flame () =
    let path =
      match socket with
      | Some p -> p
      | None ->
          prerr_endline
            "blockc stats: --socket PATH is required (point it at a `blockc \
             serve --socket PATH` daemon)";
          exit 2
    in
    let req, render =
      if dump then ({|{"op":"dump"}|}, render_dump)
      else if flame then ({|{"op":"flame"}|}, render_flame)
      else ({|{"op":"metrics"}|}, render_metrics)
    in
    let once () =
      match stats_exchange path req with
      | Error _ as e -> e
      | Ok line -> (
          match Json_min.parse line with
          | Error m -> Error ("unparseable response: " ^ m)
          | Ok resp -> (
              match jfield "ok" resp with
              | Some (Json_min.Bool true) -> render resp
              | _ -> Error ("daemon refused the request: " ^ line)))
    in
    let print_text text =
      print_string text;
      if text = "" || text.[String.length text - 1] <> '\n' then
        print_newline ();
      flush stdout
    in
    match watch with
    | None -> (
        match once () with
        | Ok text -> print_text text
        | Error m ->
            Printf.eprintf "blockc stats: %s\n" m;
            exit 2)
    | Some secs ->
        (* A watch must survive the daemon restarting or the socket
           vanishing mid-flight: reconnect with doubling backoff and
           one warning line per outage, not an exit. *)
        let period = Float.max 0.1 secs in
        let backoff = ref period in
        let down = ref false in
        while true do
          (match once () with
          | Ok text ->
              if !down then
                Printf.eprintf "blockc stats: reconnected to %s\n%!" path;
              down := false;
              backoff := period;
              let t = Unix.localtime (Unix.gettimeofday ()) in
              Printf.printf "--- %02d:%02d:%02d %s\n" t.Unix.tm_hour
                t.Unix.tm_min t.Unix.tm_sec path;
              print_text text
          | Error m ->
              if not !down then begin
                Printf.eprintf
                  "blockc stats: %s — retrying with backoff\n%!" m;
                down := true
              end;
              backoff := Float.min 30.0 (!backoff *. 2.));
          Unix.sleepf (if !down then !backoff else period)
        done
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Scrape a running serve daemon's telemetry over its Unix socket: \
          print the Prometheus text exposition (request counts, labelled \
          error classes, p50/p90/p99 latency summaries per op), re-render \
          periodically with $(b,--watch) (reconnecting with backoff if the \
          daemon restarts), fetch the folded-stack profile with \
          $(b,--flame), or flush the in-memory flight recorder with \
          $(b,--dump)."
       ~exits)
    (traced Term.(const run $ socket_arg $ watch_arg $ dump_arg $ flame_arg))

(* ---- top: live dashboard over the metrics/status ops ------------- *)

(* Parse a Prometheus text exposition into [(sample_name, value)] rows;
   sample names keep their label block verbatim. *)
let parse_prom text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.rindex_opt line ' ' with
           | None -> None
           | Some i ->
               let name = String.sub line 0 i in
               let v = String.sub line (i + 1) (String.length line - i - 1) in
               Option.map (fun f -> (name, f)) (float_of_string_opt v))

let prom_value samples name = List.assoc_opt name samples

(* Extract one label's value out of a sample name:
   [label_value {|m{op="ping",quantile="0.5"}|} "op"] = [Some "ping"]. *)
let label_value name key =
  let pat = key ^ "=\"" in
  let plen = String.length pat and n = String.length name in
  let rec find i =
    if i + plen > n then None
    else if String.sub name i plen = pat then
      let start = i + plen in
      match String.index_from_opt name start '"' with
      | Some stop -> Some (String.sub name start (stop - start))
      | None -> None
    else find (i + 1)
  in
  find 0

let prom_base name =
  match String.index_opt name '{' with
  | Some i -> String.sub name 0 i
  | None -> name

let top_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket of the serve daemon to watch.")
  in
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECS"
          ~doc:"Seconds between refreshes (default 2.0).")
  in
  let iters_arg =
    Arg.(
      value & opt int 0
      & info [ "n"; "iterations" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) refreshes instead of running until \
             interrupted (0 = forever).")
  in
  let scrape path op =
    match stats_exchange path (Printf.sprintf {|{"op":%S}|} op) with
    | Error _ as e -> e
    | Ok line -> (
        match Json_min.parse line with
        | Error m -> Error ("unparseable response: " ^ m)
        | Ok resp -> (
            match jfield "ok" resp with
            | Some (Json_min.Bool true) -> Ok resp
            | _ -> Error ("daemon refused op " ^ op ^ ": " ^ line)))
  in
  let jnum resp name =
    match jfield name resp with
    | Some (Json_min.Number f) -> Some f
    | _ -> None
  in
  let jnum0 resp name = Option.value (jnum resp name) ~default:0.0 in
  let fmt_rate = function
    | None -> "-"
    | Some r when Float.abs r >= 1e6 -> Printf.sprintf "%.2fM/s" (r /. 1e6)
    | Some r when Float.abs r >= 1e3 -> Printf.sprintf "%.1fk/s" (r /. 1e3)
    | Some r -> Printf.sprintf "%.1f/s" r
  in
  let fmt_ns f =
    if f >= 1e9 then Printf.sprintf "%.2fs" (f /. 1e9)
    else if f >= 1e6 then Printf.sprintf "%.1fms" (f /. 1e6)
    else if f >= 1e3 then Printf.sprintf "%.1fus" (f /. 1e3)
    else Printf.sprintf "%.0fns" f
  in
  let fmt_bytes b =
    if b >= 1048576. then Printf.sprintf "%.1fMiB" (b /. 1048576.)
    else if b >= 1024. then Printf.sprintf "%.1fKiB" (b /. 1024.)
    else Printf.sprintf "%.0fB" b
  in
  let render ~path ~iter ~dt_s prev samples status =
    let b = Buffer.create 2048 in
    let rate name =
      (* delta of a monotonically increasing sample over the interval *)
      match (prev, prom_value samples name) with
      | Some (ps, pdt), Some cur when pdt > 0.0 -> (
          ignore pdt;
          match prom_value ps name with
          | Some old when dt_s > 0.0 -> Some ((cur -. old) /. dt_s)
          | _ -> None)
      | _ -> None
    in
    let t = Unix.localtime (Unix.gettimeofday ()) in
    Buffer.add_string b
      (Printf.sprintf "blockc top — %s — %02d:%02d:%02d  (refresh %d)\n" path
         t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec iter);
    let requests =
      Option.value (prom_value samples "blockc_serve_requests_total")
        ~default:0.0
    in
    let errors =
      Option.value (prom_value samples "blockc_serve_errors_total")
        ~default:0.0
    in
    let depth =
      Option.value (prom_value samples "blockc_serve_depth") ~default:0.0
    in
    let depth_peak =
      Option.value (prom_value samples "blockc_serve_depth_peak") ~default:0.0
    in
    Buffer.add_string b
      (Printf.sprintf
         "requests %.0f  (%s)   errors %.0f   queue depth %.0f (peak %.0f)\n"
         requests
         (fmt_rate (rate "blockc_serve_requests_total"))
         errors depth depth_peak);
    (* per-op latency summary rows *)
    let ops =
      List.sort_uniq compare
        (List.filter_map
           (fun (name, _) ->
             if
               prom_base name = "blockc_serve_request_ns"
               && label_value name "quantile" = Some "0.5"
             then label_value name "op"
             else None)
           samples)
    in
    if ops <> [] then begin
      Buffer.add_string b
        (Printf.sprintf "  %-10s %10s %10s %10s\n" "op" "p50" "p99" "count");
      List.iter
        (fun op ->
          let q v =
            prom_value samples
              (Printf.sprintf "blockc_serve_request_ns{op=\"%s\",quantile=\"%s\"}"
                 op v)
          in
          let count =
            prom_value samples
              (Printf.sprintf "blockc_serve_request_ns_count{op=\"%s\"}" op)
          in
          Buffer.add_string b
            (Printf.sprintf "  %-10s %10s %10s %10.0f\n" op
               (match q "0.5" with Some f -> fmt_ns f | None -> "-")
               (match q "0.99" with Some f -> fmt_ns f | None -> "-")
               (Option.value count ~default:0.0)))
        ops
    end;
    (* GC pressure, from the per-request histogram sums *)
    Buffer.add_string b
      (Printf.sprintf
         "gc: minor %s  major %s  alloc %s words  promoted %s words\n"
         (fmt_rate (rate "blockc_serve_gc_minor_gcs_sum"))
         (fmt_rate (rate "blockc_serve_gc_major_gcs_sum"))
         (fmt_rate (rate "blockc_serve_gc_allocated_words_sum"))
         (fmt_rate (rate "blockc_serve_gc_promoted_words_sum")));
    (* lane utilization: busy-ns deltas vs the wall interval *)
    let lanes prefix =
      List.filter_map
        (fun (name, v) ->
          if prom_base name = prefix then
            Option.map (fun l -> (name, l, v)) (label_value name "lane")
          else None)
        samples
      |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)
    in
    let render_lanes title prefix =
      match lanes prefix with
      | [] -> ()
      | ls ->
          Buffer.add_string b (title ^ ":");
          List.iter
            (fun (name, lane, _) ->
              let util =
                match rate name with
                | Some busy_per_s when dt_s > 0.0 ->
                    Printf.sprintf "%3.0f%%" (busy_per_s /. 1e9 *. 100.)
                | _ -> "   -"
              in
              Buffer.add_string b (Printf.sprintf "  [%s] %s" lane util))
            ls;
          Buffer.add_char b '\n'
    in
    render_lanes "serve lanes" "blockc_serve_lane_busy_ns";
    render_lanes "pool lanes" "blockc_pool_lane_busy_ns";
    (* JIT cache + sampler state, from the status op *)
    (match status with
    | None -> ()
    | Some st ->
        Buffer.add_string b
          (Printf.sprintf
             "jit: memo %.0f entries, %.0f hits, %.0f evictions | disk %.0f \
              hits, %.0f artifacts, %s, oldest %.0fs | ocamlopt %.0f\n"
             (jnum0 st "memo_size") (jnum0 st "memo_hits")
             (jnum0 st "memo_evictions") (jnum0 st "disk_hits")
             (jnum0 st "disk_entries")
             (fmt_bytes (jnum0 st "disk_bytes"))
             (jnum0 st "disk_oldest_age_s")
             (jnum0 st "compiler_invocations"));
        let running =
          match jfield "sampler_running" st with
          | Some (Json_min.Bool true) -> true
          | _ -> false
        in
        Buffer.add_string b
          (if running then
             Printf.sprintf "sampler: %g Hz, %.0f samples\n"
               (jnum0 st "sampler_hz") (jnum0 st "sampler_samples")
           else "sampler: off (BLOCKC_PROFILE_HZ or the flame op starts it)\n"));
    Buffer.contents b
  in
  let run socket interval iters () =
    let path =
      match socket with
      | Some p -> p
      | None ->
          prerr_endline
            "blockc top: --socket PATH is required (point it at a `blockc \
             serve --socket PATH` daemon)";
          exit 2
    in
    let interval = Float.max 0.1 interval in
    let clear = Unix.isatty Unix.stdout in
    let prev = ref None in
    let iter = ref 0 in
    let down = ref false in
    let backoff = ref interval in
    let continue () = iters <= 0 || !iter < iters in
    while continue () do
      let t_scrape = Unix.gettimeofday () in
      (match scrape path "metrics" with
      | Error m ->
          if not !down then begin
            Printf.eprintf "blockc top: %s — retrying with backoff\n%!" m;
            down := true
          end;
          backoff := Float.min 30.0 (!backoff *. 2.)
      | Ok metrics_resp ->
          if !down then Printf.eprintf "blockc top: reconnected to %s\n%!" path;
          down := false;
          backoff := interval;
          incr iter;
          let samples =
            match jfield "metrics" metrics_resp with
            | Some (Json_min.String s) -> parse_prom s
            | _ -> []
          in
          let status = Result.to_option (scrape path "status") in
          let dt_s =
            match !prev with Some (_, t_old) -> t_scrape -. t_old | None -> 0.0
          in
          let text =
            render ~path ~iter:!iter ~dt_s
              (Option.map (fun (s, t) -> (s, t)) !prev)
              samples status
          in
          if clear then print_string "\027[2J\027[H";
          print_string text;
          flush stdout;
          prev := Some (samples, t_scrape));
      if continue () then Unix.sleepf (if !down then !backoff else interval)
    done
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard over a serve daemon's $(b,metrics) and $(b,status) \
          ops: queries per second, per-op p50/p99 latency, queue depth, \
          per-lane utilization (busy-ns deltas), GC allocation and \
          collection rates, JIT cache state (memo/disk hits, artifact count \
          and bytes, age) and the continuous-profiling sampler state, \
          refreshed every $(b,--interval) seconds."
       ~exits)
    (traced Term.(const run $ socket_arg $ interval_arg $ iters_arg))

let () =
  let doc = "compiler blockability of numerical algorithms (Carr-Kennedy SC'92)" in
  let info = Cmd.info "blockc" ~doc ~exits in
  (* `blockc --explain KERNEL` without a subcommand = `blockc explain`. *)
  let explain_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"KERNEL"
          ~doc:"Shorthand for the $(b,explain) subcommand.")
  in
  let default =
    Term.ret
      Term.(
        const (fun name bindings seed machine fmt out ->
            match name with
            | None -> `Help (`Pager, None)
            | Some name -> (
                match setup_trace fmt out with
                | Error m -> `Error (true, m)
                | Ok () ->
                    `Ok (explain_run (resolve_kernel name) bindings seed machine)))
        $ explain_opt $ bindings_arg $ seed_arg $ machine_arg $ trace_arg
        $ trace_out_arg)
  in
  let group =
    Cmd.group ~default info
      [ list_cmd; show_cmd; derive_cmd; verify_cmd; simulate_cmd; explain_cmd;
        profile_cmd; sections_cmd; parse_cmd; lower_cmd; compile_cmd;
        fuzz_cmd; serve_cmd; stats_cmd; top_cmd ]
  in
  (* Typed runtime errors become one-line diagnostics, not backtraces. *)
  match Cmd.eval group with
  | exception Env.Error m ->
      Printf.eprintf "blockc: environment error: %s\n" m;
      exit 2
  | exception Exec.Error m ->
      Printf.eprintf "blockc: interpreter error: %s\n" m;
      exit 2
  | code -> exit code
