(* blockc — command-line driver for the blockability toolkit.

   Subcommands: list, show, derive, verify, simulate, explain, sections,
   parse, lower.  `blockc --explain KERNEL` is a shorthand for the
   explain subcommand. *)

open Cmdliner

let entry_conv =
  let parse s =
    match Blockability.find s with
    | Some e -> Ok e
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown kernel %s (try: %s)" s
               (String.concat ", " (Blockability.names ()))))
  in
  let print fmt (e : Blockability.entry) = Format.pp_print_string fmt e.name in
  Arg.conv (parse, print)

let kernel_arg =
  Arg.(required & pos 0 (some entry_conv) None & info [] ~docv:"KERNEL")

let binding_conv =
  let parse s =
    match String.split_on_char '=' s with
    | [ k; v ] -> (
        match int_of_string_opt v with
        | Some n -> Ok (String.uppercase_ascii k, n)
        | None -> Error (`Msg ("bad binding value: " ^ s)))
    | _ -> Error (`Msg ("bindings look like N=300, got " ^ s))
  in
  let print fmt (k, v) = Format.fprintf fmt "%s=%d" k v in
  Arg.conv (parse, print)

let bindings_arg =
  Arg.(
    value
    & opt_all binding_conv []
    & info [ "p"; "param" ] ~docv:"NAME=INT" ~doc:"Problem parameter binding.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload random seed.")

let machine_conv =
  let parse = function
    | "rs6000" -> Ok Arch.rs6000_540
    | "small" -> Ok Arch.small_test
    | "modern" -> Ok Arch.modern_l1
    | s -> Error (`Msg ("unknown machine " ^ s ^ " (rs6000|small|modern)"))
  in
  let print fmt (m : Arch.t) = Format.pp_print_string fmt m.name in
  Arg.conv (parse, print)

let machine_arg =
  Arg.(
    value
    & opt machine_conv Arch.rs6000_540
    & info [ "machine" ] ~doc:"Cache model: rs6000, small, or modern.")

let or_default bindings = if bindings = [] then None else Some bindings

(* ---- tracing flags (shared by the transformation-running commands) ---- *)

let trace_arg =
  Arg.(
    value
    & opt (some (enum [ ("text", "text"); ("json", "json"); ("chrome", "chrome") ])) None
    & info [ "trace" ] ~docv:"FORMAT"
        ~doc:
          "Emit an observability trace: $(b,text) (human-readable lines), \
           $(b,json) (JSON objects, one per line) or $(b,chrome) (Chrome \
           trace_event; load the file in chrome://tracing or Perfetto). \
           Writes to stderr unless $(b,--trace-out) is given; $(b,chrome) \
           requires $(b,--trace-out).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"PATH" ~doc:"Write the trace to $(docv).")

(* Install the requested sink (or honour BLOCKABILITY_TRACE when no flag
   is given).  Returns an [Error] for usage mistakes so callers can turn
   it into a cmdliner usage error. *)
let setup_trace fmt out =
  match (fmt, out) with
  | None, None ->
      Obs.init_from_env ();
      Ok ()
  | None, Some _ -> Error "--trace-out is only meaningful with --trace"
  | Some "chrome", None ->
      Error
        "--trace chrome requires --trace-out PATH (the trace_event document \
         is written whole on exit and cannot stream to stderr)"
  | Some fmt, out -> (
      match
        match out with
        | None -> Ok stderr
        | Some p -> ( try Ok (open_out p) with Sys_error m -> Error m)
      with
      | Error m -> Error ("--trace-out: " ^ m)
      | Ok oc -> (
          match Obs.sink_of_name fmt oc with
          | Error m -> Error m
          | Ok sink ->
              Obs.set_sink sink;
              at_exit Obs.flush;
              Ok ()))

(* Wrap a command body so --trace/--trace-out are honoured and their
   usage errors are reported through cmdliner. *)
let traced run =
  Term.ret
    Term.(
      const (fun fmt out k ->
          match setup_trace fmt out with
          | Error m -> `Error (true, m)
          | Ok () -> `Ok (k ()))
      $ trace_arg $ trace_out_arg $ run)

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Blockability.entry) ->
        Printf.printf "%-10s %-28s %s\n" e.name e.paper_ref
          e.kernel.Kernel_def.description)
      Blockability.entries
  in
  Cmd.v (Cmd.info "list" ~doc:"List the paper's kernels.")
    Term.(const run $ const ())

(* ---- show ---- *)

let show_cmd =
  let run e =
    print_string
      (Fortran_pp.subroutine ~name:(String.uppercase_ascii e.Blockability.name)
         ~params:e.Blockability.kernel.Kernel_def.params
         e.Blockability.kernel.Kernel_def.block)
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a kernel's point algorithm.")
    Term.(const run $ kernel_arg)

(* ---- derive ---- *)

let derive_cmd =
  let run e () =
    match Blockability.derive e with
    | Error m ->
        prerr_endline ("derivation failed: " ^ m);
        exit 1
    | Ok { Blocker.result; steps } ->
        List.iter
          (fun (s : Blocker.trace_step) ->
            Printf.printf "--- %s: %s\n" s.name s.detail)
          steps;
        print_string (Stmt.to_string result)
  in
  Cmd.v
    (Cmd.info "derive"
       ~doc:"Run the compiler driver on a kernel and print the result.")
    (traced Term.(const run $ kernel_arg))

(* ---- verify ---- *)

let verify_cmd =
  let run e bindings seed () =
    match Blockability.verify ?bindings:(or_default bindings) ~seed e with
    | Ok () -> print_endline "equivalent: transformed kernel matches the point kernel"
    | Error m ->
        prerr_endline m;
        exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Interpret point and transformed kernels and compare memory.")
    (traced Term.(const run $ kernel_arg $ bindings_arg $ seed_arg))

(* ---- simulate ---- *)

let print_by_array ~what by_array =
  List.iter
    (fun (name, (s : Cache.stats)) ->
      Printf.printf "  %-11s %-6s accesses %9d  misses %9d  miss-rate %5.2f%%\n"
        what name s.accesses s.misses
        (100.0 *. Cache.miss_ratio s))
    by_array

let simulate_cmd =
  let run e bindings seed machine () =
    match
      Blockability.simulate ?bindings:(or_default bindings) ~seed ~machine e
    with
    | Error m ->
        prerr_endline m;
        exit 1
    | Ok r ->
        let pr what (s : Cache.stats) cycles =
          Printf.printf "%-12s accesses %9d  misses %9d  miss-rate %5.2f%%  mem-cycles %10d\n"
            what s.accesses s.misses
            (100.0 *. Cache.miss_ratio s)
            cycles
        in
        Printf.printf "machine: %s\n" machine.Arch.name;
        pr "point" r.point_stats r.point_cycles;
        print_by_array ~what:"point" r.point_by_array;
        pr "transformed" r.transformed_stats r.transformed_cycles;
        print_by_array ~what:"transformed" r.transformed_by_array;
        Printf.printf "memory-cycle speedup: %.2f\n"
          (Cost.speedup ~baseline:r.point_cycles ~optimized:r.transformed_cycles)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Trace both kernels through the cache simulator.")
    (traced Term.(const run $ kernel_arg $ bindings_arg $ seed_arg $ machine_arg))

(* ---- explain ---- *)

let value_to_string = function
  | Obs.Str s -> s
  | Obs.Int n -> string_of_int n
  | Obs.Float f -> Printf.sprintf "%g" f
  | Obs.Bool b -> string_of_bool b

let args_suffix = function
  | [] -> ""
  | args ->
      Printf.sprintf " (%s)"
        (String.concat ", "
           (List.map (fun (k, v) -> k ^ "=" ^ value_to_string v) args))

let print_explain_event (ev : Obs.event) =
  let indent = String.make (2 * ev.depth) ' ' in
  match ev.kind with
  | Obs.End -> ()
  | Obs.Begin -> Printf.printf "%s>> %s%s\n" indent ev.name (args_suffix ev.args)
  | Obs.Instant when String.equal ev.cat "decision" ->
      let str k =
        match List.assoc_opt k ev.args with Some (Obs.Str s) -> s | _ -> ""
      in
      let applied =
        match List.assoc_opt "applied" ev.args with
        | Some (Obs.Bool b) -> b
        | _ -> false
      in
      let reason = str "reason" in
      let evidence =
        List.filter
          (fun (k, _) -> not (List.mem k [ "target"; "applied"; "reason" ]))
          ev.args
      in
      Printf.printf "%s%s %s(%s)%s\n" indent
        (if applied then "[applied ]" else "[rejected]")
        ev.name (str "target")
        (if applied && String.equal reason "legal" then ""
         else ": " ^ reason);
      List.iter
        (fun (k, v) ->
          Printf.printf "%s             %s = %s\n" indent k (value_to_string v))
        evidence
  | Obs.Instant ->
      Printf.printf "%s-- %s%s\n" indent ev.name (args_suffix ev.args)

let explain_run e bindings seed machine =
  Printf.printf "kernel: %s (%s)\n%s\n\n" e.Blockability.name
    e.Blockability.paper_ref e.Blockability.kernel.Kernel_def.description;
  (* Collect every event the derivation emits, on top of whatever sink
     --trace / BLOCKABILITY_TRACE installed. *)
  let mem, events = Obs.memory () in
  let prev = Obs.current_sink () in
  Obs.set_sink (if Obs.enabled () then Obs.tee prev mem else mem);
  let result = Blockability.derive e in
  Obs.set_sink prev;
  print_endline "decision trace:";
  List.iter print_explain_event (events ());
  match result with
  | Error m ->
      Printf.printf "\nverdict: NOT BLOCKABLE\n%s\n" m
  | Ok { Blocker.result = stmt; _ } -> (
      Printf.printf "\nverdict: blockable — final block structure:\n\n%s"
        (Stmt.to_string stmt);
      match
        Blockability.simulate ?bindings:(or_default bindings) ~seed ~machine e
      with
      | Error m -> Printf.printf "\ncache report unavailable: %s\n" m
      | Ok r ->
          Printf.printf "\ncache report (machine %s):\n" machine.Arch.name;
          print_by_array ~what:"point" r.point_by_array;
          print_by_array ~what:"transformed" r.transformed_by_array;
          Printf.printf
            "  total       point misses %d -> transformed misses %d  \
             (memory-cycle speedup %.2f)\n"
            r.point_stats.misses r.transformed_stats.misses
            (Cost.speedup ~baseline:r.point_cycles
               ~optimized:r.transformed_cycles))

let explain_cmd =
  let run e bindings seed machine () = explain_run e bindings seed machine in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Replay the compiler driver with decision tracing on and print \
          why each transformation was applied or rejected, the final \
          block structure, and a per-array cache report.")
    (traced Term.(const run $ kernel_arg $ bindings_arg $ seed_arg $ machine_arg))

(* ---- sections ---- *)

let sections_cmd =
  let run e =
    let block = e.Blockability.kernel.Kernel_def.block in
    let loops = List.map snd (Stmt.find_loops block) in
    let ctx =
      List.fold_left Symbolic.assume_pos
        (Symbolic.of_loop_context loops)
        (Ir_util.symbolic_params block)
    in
    List.iter
      (fun (a : Ir_util.access) ->
        if a.space = Ir_util.Float_data && a.subs <> [] then
          let kind = match a.kind with Ir_util.Write -> "write" | _ -> "read " in
          match Section.of_access ~ctx ~within:a.loops a with
          | Some s ->
              Printf.printf "%s %s(%s)  =>  %s\n" kind a.array
                (String.concat ", " (List.map Expr.to_string a.subs))
                (Section.to_string s)
          | None ->
              Printf.printf "%s %s(%s)  =>  (not affine)\n" kind a.array
                (String.concat ", " (List.map Expr.to_string a.subs)))
      (Ir_util.accesses block)
  in
  Cmd.v
    (Cmd.info "sections"
       ~doc:"Print the array section of every reference in a kernel.")
    Term.(const run $ kernel_arg)

(* ---- parse / lower ---- *)

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_cmd =
  let run path =
    match Parser.program (read_file path) with
    | prog -> List.iter (fun s -> print_string (Ext.to_string s)) prog
    | exception Parser.Parse_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" path line message;
        exit 1
    | exception Lexer.Lex_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" path line message;
        exit 1
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse a mini-Fortran file and echo the program.")
    Term.(const run $ file_arg)

let lower_cmd =
  let block_arg =
    Arg.(value & opt (some int) None & info [ "block-size" ] ~doc:"Override the block size.")
  in
  let run path machine block_size =
    match Parser.program (read_file path) with
    | exception Parser.Parse_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" path line message;
        exit 1
    | exception Lexer.Lex_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" path line message;
        exit 1
    | prog ->
        List.iter
          (fun s ->
            match Lower.lower ?block_size ~machine s with
            | Ok stmt -> print_string (Stmt.to_string stmt)
            | Error m ->
                prerr_endline m;
                exit 1)
          prog
  in
  Cmd.v
    (Cmd.info "lower"
       ~doc:"Lower BLOCK DO / IN DO extensions, choosing the block size.")
    Term.(const run $ file_arg $ machine_arg $ block_arg)

let () =
  let doc = "compiler blockability of numerical algorithms (Carr-Kennedy SC'92)" in
  let info = Cmd.info "blockc" ~doc in
  (* `blockc --explain KERNEL` without a subcommand = `blockc explain`. *)
  let explain_opt =
    Arg.(
      value
      & opt (some entry_conv) None
      & info [ "explain" ] ~docv:"KERNEL"
          ~doc:"Shorthand for the $(b,explain) subcommand.")
  in
  let default =
    Term.ret
      Term.(
        const (fun e bindings seed machine fmt out ->
            match e with
            | None -> `Help (`Pager, None)
            | Some e -> (
                match setup_trace fmt out with
                | Error m -> `Error (true, m)
                | Ok () -> `Ok (explain_run e bindings seed machine)))
        $ explain_opt $ bindings_arg $ seed_arg $ machine_arg $ trace_arg
        $ trace_out_arg)
  in
  exit (Cmd.eval (Cmd.group ~default info
    [ list_cmd; show_cmd; derive_cmd; verify_cmd; simulate_cmd; explain_cmd;
      sections_cmd; parse_cmd; lower_cmd ]))
