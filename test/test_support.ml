open Helpers

let table_rendering () =
  let t = Table.create ~title:"T" [ ("A", Table.Left); ("B", Table.Right) ] in
  Table.add_row t [ "x"; "10" ];
  Table.add_row t [ "longer"; "7" ];
  let rendered = Table.render t in
  check_bool "has title" true (String.length rendered > 0);
  check_bool "right-aligned" true
    (String.split_on_char '\n' rendered
    |> List.exists (fun line -> line = "x       10"));
  Alcotest.check_raises "arity checked"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "only one" ])

let cells () =
  check_string "seconds" "12.46s" (Table.cell_s 12.46);
  check_string "millis" "2.50ms" (Table.cell_s 0.0025);
  check_string "ratio" "1.80" (Table.cell_f 1.8000001)

let table_json_roundtrip () =
  (* the --json payload must survive a real parse, including escapes *)
  let t =
    Table.create ~title:"quotes \" and \\ and\nnewlines"
      [ ("A \"col\"", Table.Left); ("B", Table.Right) ]
  in
  Table.add_row t [ "x\ty"; "10" ];
  Table.add_row t [ "plain"; "1.80" ];
  (match Json_min.validate (Table.to_json t) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "to_json not parseable: %s" m);
  let doc = Table.json_of_tables [ ("t1", t); ("par", t) ] in
  match Json_min.parse doc with
  | Error m -> Alcotest.failf "json_of_tables not parseable: %s" m
  | Ok (Json_min.Object [ ("tables", Json_min.Array entries) ]) ->
      check_int "two tables" 2 (List.length entries)
  | Ok _ -> Alcotest.fail "unexpected document shape"

let json_rejects_malformed () =
  List.iter
    (fun s ->
      match Json_min.validate s with
      | Ok () -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [
      ""; "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "01"; "1 2"; "nul";
      "{\"a\":1,}"; "\"bad \\x escape\"";
    ];
  List.iter
    (fun s ->
      match Json_min.validate s with
      | Ok () -> ()
      | Error m -> Alcotest.failf "rejected valid %S: %s" s m)
    [
      "null"; "-1.5e-3"; "[]"; "{}"; " [ {\"a\" : [true, false]} ] ";
      "\"esc \\\\ \\u00e9\"";
    ]

let json_escape_roundtrip () =
  (* Escaping happens on output: any byte string survives
     String -> to_string -> parse, including control characters that
     would otherwise break NDJSON framing. *)
  let cases =
    [
      "plain";
      "quote \" backslash \\ slash /";
      "newline \n tab \t return \r";
      "backspace \b formfeed \012";
      "nul \000 esc \027 unit-sep \031";
      "cc: error: unterminated #if\n  12 | {\"nested\": true}\\";
      "";
    ]
  in
  List.iter
    (fun s ->
      let doc = Json_min.to_string (Json_min.Object [ (s, Json_min.String s) ]) in
      check_bool "one line" false (String.contains doc '\n');
      match Json_min.parse doc with
      | Ok (Json_min.Object [ (k, Json_min.String v) ]) ->
          check_string "key round-trips" s k;
          check_string "value round-trips" s v
      | Ok _ -> Alcotest.failf "unexpected shape for %S" s
      | Error m -> Alcotest.failf "re-parse of %S failed: %s" s m)
    cases;
  (* \u escapes decode to UTF-8 (with surrogate pairs combined) and
     re-escape only where JSON requires it. *)
  (match Json_min.parse "\"\\u00e9 \\u0001 \\ud83d\\ude00\"" with
  | Ok (Json_min.String v) ->
      check_string "utf-8 decode" "\xc3\xa9 \x01 \xf0\x9f\x98\x80" v
  | Ok _ | Error _ -> Alcotest.fail "\\u parse failed");
  match Json_min.parse "{\"a\\nb\":1}" with
  | Ok (Json_min.Object [ (k, _) ]) -> check_string "key decoded" "a\nb" k
  | Ok _ | Error _ -> Alcotest.fail "escaped key parse failed"

let lcg_determinism () =
  let a = Lcg.create 42 and b = Lcg.create 42 in
  let xs = List.init 50 (fun _ -> Lcg.int a 1000) in
  let ys = List.init 50 (fun _ -> Lcg.int b 1000) in
  check_bool "same seed, same stream" true (xs = ys);
  let c = Lcg.create 43 in
  let zs = List.init 50 (fun _ -> Lcg.int c 1000) in
  check_bool "different seed, different stream" true (xs <> zs)

let lcg_split_independent () =
  let a = Lcg.create 7 in
  let b = Lcg.split a in
  let xs = List.init 20 (fun _ -> Lcg.int a 100) in
  let ys = List.init 20 (fun _ -> Lcg.int b 100) in
  check_bool "split streams differ" true (xs <> ys)

let suite =
  ( "support",
    [
      case "table rendering" table_rendering;
      case "table cells" cells;
      case "table json roundtrip" table_json_roundtrip;
      case "json_min rejects malformed" json_rejects_malformed;
      case "json_min escapes on output (round-trip)" json_escape_roundtrip;
      case "lcg determinism" lcg_determinism;
      case "lcg split" lcg_split_independent;
      qcase "lcg int in range"
        QCheck2.Gen.(pair (int_range 1 1000) (int_range 0 99999))
        (fun (bound, seed) ->
          let rng = Lcg.create seed in
          let x = Lcg.int rng bound in
          x >= 0 && x < bound);
      qcase "lcg uniform in [0,1)" QCheck2.Gen.(int_range 0 99999) (fun seed ->
          let rng = Lcg.create seed in
          let x = Lcg.uniform rng in
          x >= 0.0 && x < 1.0);
    ] )
